// Tests for the typed View accessors: field-path resolution, all accessor
// kinds, platform independence, and pointer following. Plus close_segment.
#include "client/view.hpp"

#include <gtest/gtest.h>

#include "interweave/interweave.hpp"

namespace iw::client {
namespace {

class ViewTest : public ::testing::Test {
 protected:
  ViewTest() {
    factory_ = [this](const std::string&) {
      return std::make_shared<InProcChannel>(server_);
    };
  }
  std::unique_ptr<Client> make_client(Platform platform = Platform::native()) {
    Client::Options options;
    options.platform = platform;
    return std::make_unique<Client>(factory_, options);
  }

  static const TypeDescriptor* sample_type(Client& c) {
    const TypeDescriptor* inner = c.types().struct_builder("inner")
        .field("id", c.types().primitive(PrimitiveKind::kInt16))
        .field("weight", c.types().primitive(PrimitiveKind::kFloat64))
        .finish();
    return c.types().struct_builder("sample")
        .field("tag", c.types().primitive(PrimitiveKind::kChar))
        .field("count", c.types().primitive(PrimitiveKind::kInt64))
        .field("label", c.types().string_type(10))
        .field("items", c.types().array_of(inner, 4))
        .self_pointer_field("next")
        .finish();
  }

  server::SegmentServer server_;
  Client::ChannelFactory factory_;
};

TEST_F(ViewTest, PathResolution) {
  auto c = make_client();
  const TypeDescriptor* t = sample_type(*c);
  ClientSegment* seg = c->open_segment("host/view1");
  c->write_lock(seg);
  auto* raw = static_cast<uint8_t*>(c->malloc_block(seg, t, "s"));
  View v(*c, raw, t);
  // Units: tag=0, count=1, label=2, items[i]={id,weight} at 3+2i, next=11.
  EXPECT_EQ(v.unit_of("tag"), 0u);
  EXPECT_EQ(v.unit_of("count"), 1u);
  EXPECT_EQ(v.unit_of("label"), 2u);
  EXPECT_EQ(v.unit_of("items[0].id"), 3u);
  EXPECT_EQ(v.unit_of("items[2].weight"), 8u);
  EXPECT_EQ(v.unit_of("next"), 11u);
  EXPECT_THROW(v.unit_of("nope"), Error);
  EXPECT_THROW(v.unit_of("items[9].id"), Error);
  EXPECT_THROW(v.unit_of("tag[0]"), Error);
  EXPECT_THROW(v.unit_of("items[x]"), Error);
  c->write_unlock(seg);
}

TEST_F(ViewTest, AccessorsRoundTripOnNative) {
  auto c = make_client();
  const TypeDescriptor* t = sample_type(*c);
  ClientSegment* seg = c->open_segment("host/view2");
  c->write_lock(seg);
  auto* raw = static_cast<uint8_t*>(c->malloc_block(seg, t, "s"));
  View v(*c, raw, t);
  v.set_int("tag", 'x');
  v.set_int("count", -123456789012345LL);
  v.set_string("label", "hello");
  v.set_int("items[1].id", -7);
  v.set_f64("items[1].weight", 3.25);
  v.set_ptr("next", raw);

  EXPECT_EQ(v.get_int("tag"), 'x');
  EXPECT_EQ(v.get_int("count"), -123456789012345LL);
  EXPECT_EQ(v.get_string("label"), "hello");
  EXPECT_EQ(v.get_int("items[1].id"), -7);
  EXPECT_EQ(v.get_f64("items[1].weight"), 3.25);
  EXPECT_EQ(v.get_ptr("next"), raw);
  // Type confusion is rejected.
  EXPECT_THROW(v.get_f64("tag"), Error);
  EXPECT_THROW(v.get_string("count"), Error);
  EXPECT_THROW(v.get_ptr("label"), Error);
  c->write_unlock(seg);
}

TEST_F(ViewTest, CrossPlatformViewsAgree) {
  auto native = make_client(Platform::native());
  auto sparc = make_client(Platform::sparc32());
  const TypeDescriptor* tn = sample_type(*native);

  ClientSegment* ns = native->open_segment("host/view3");
  native->write_lock(ns);
  auto* raw = static_cast<uint8_t*>(native->malloc_block(ns, tn, "s"));
  View vn(*native, raw, tn);
  vn.set_int("count", 42);
  vn.set_string("label", "abc");
  vn.set_f64("items[3].weight", -0.5);
  native->write_unlock(ns);

  ClientSegment* ss = sparc->open_segment("host/view3");
  sparc->read_lock(ss);
  auto* blk = ss->heap().find_by_name("s");
  ASSERT_NE(blk, nullptr);
  View vs(*sparc, blk);
  EXPECT_EQ(vs.get_int("count"), 42);
  EXPECT_EQ(vs.get_string("label"), "abc");
  EXPECT_EQ(vs.get_f64("items[3].weight"), -0.5);
  sparc->read_unlock(ss);
}

TEST_F(ViewTest, FollowPointers) {
  auto c = make_client();
  const TypeDescriptor* t = sample_type(*c);
  ClientSegment* seg = c->open_segment("host/view4");
  c->write_lock(seg);
  auto* a = static_cast<uint8_t*>(c->malloc_block(seg, t, "a"));
  auto* b = static_cast<uint8_t*>(c->malloc_block(seg, t, "b"));
  View va(*c, a, t);
  View vb(*c, b, t);
  vb.set_int("count", 99);
  va.set_ptr("next", b);
  c->write_unlock(seg);

  View chased = va.follow("next");
  EXPECT_EQ(chased.get_int("count"), 99);
  EXPECT_THROW(vb.follow("next"), Error);  // null
}

TEST_F(ViewTest, CloseSegmentDropsCache) {
  auto c = make_client();
  const TypeDescriptor* int_t = c->types().primitive(PrimitiveKind::kInt32);
  ClientSegment* seg = c->open_segment("host/close1");
  c->write_lock(seg);
  auto* p = static_cast<int32_t*>(c->malloc_block(seg, int_t, "v"));
  *p = 7;
  c->write_unlock(seg);

  // Cannot close while locked.
  c->read_lock(seg);
  EXPECT_THROW(c->close_segment(seg), Error);
  c->read_unlock(seg);

  c->close_segment(seg);
  // The old pointer is no longer part of any segment.
  EXPECT_THROW(c->ptr_to_mip(p), Error);

  // Reopen: fresh cache, data refetched from the server.
  ClientSegment* again = c->open_segment("host/close1");
  c->read_lock(again);
  auto* blk = again->heap().find_by_name("v");
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(*reinterpret_cast<const int32_t*>(blk->data()), 7);
  c->read_unlock(again);
}

}  // namespace
}  // namespace iw::client
