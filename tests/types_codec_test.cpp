// Tests for TypeCodec: serializing descriptor graphs to the wire and
// reconstructing them in a registry with different layout rules — the
// client-registers-types-with-server path.
#include <gtest/gtest.h>

#include "types/registry.hpp"
#include "util/buffer.hpp"

namespace iw {
namespace {

/// Encodes on `src` rules, decodes into a registry with `dst` rules.
const TypeDescriptor* roundtrip(const TypeDescriptor* t, TypeRegistry& dst) {
  Buffer buf;
  TypeCodec::encode_graph(t, buf);
  BufReader r(buf.span());
  const TypeDescriptor* out = TypeCodec::decode_graph(r, dst);
  EXPECT_TRUE(r.at_end());
  return out;
}

TEST(TypeCodec, PrimitiveRoundTrip) {
  TypeRegistry src(Platform::native().rules);
  TypeRegistry dst(LayoutRules::packed_canonical());
  const TypeDescriptor* t = roundtrip(src.primitive(PrimitiveKind::kFloat64), dst);
  EXPECT_EQ(t->kind(), TypeKind::kPrimitive);
  EXPECT_EQ(t->primitive(), PrimitiveKind::kFloat64);
  EXPECT_EQ(t->local_size(), 8u);  // canonical
}

TEST(TypeCodec, StringRoundTripChangesLocalSize) {
  TypeRegistry src(Platform::native().rules);
  TypeRegistry dst(LayoutRules::packed_canonical());
  const TypeDescriptor* t = roundtrip(src.string_type(256), dst);
  EXPECT_EQ(t->kind(), TypeKind::kString);
  EXPECT_EQ(t->string_capacity(), 256u);
  // Packed canonical stores strings as 4-byte out-of-line slots.
  EXPECT_EQ(t->local_size(), 4u);
}

TEST(TypeCodec, StructPreservesPrimOffsetsAcrossRules) {
  TypeRegistry src(Platform::native().rules);
  TypeRegistry dst(LayoutRules::packed_canonical());
  const TypeDescriptor* s = src.struct_builder("rec")
      .field("c", src.primitive(PrimitiveKind::kChar))
      .field("d", src.primitive(PrimitiveKind::kFloat64))
      .field("s", src.string_type(16))
      .finish();
  const TypeDescriptor* out = roundtrip(s, dst);
  ASSERT_EQ(out->kind(), TypeKind::kStruct);
  ASSERT_EQ(out->fields().size(), s->fields().size());
  for (size_t i = 0; i < s->fields().size(); ++i) {
    EXPECT_EQ(out->fields()[i].prim_offset, s->fields()[i].prim_offset);
    EXPECT_EQ(out->fields()[i].name, s->fields()[i].name);
  }
  EXPECT_EQ(out->prim_units(), s->prim_units());
  // Packed layout: char@0, double@1, slot@9 — no padding.
  EXPECT_EQ(out->fields()[1].local_offset, 1u);
  EXPECT_EQ(out->fields()[2].local_offset, 9u);
  EXPECT_EQ(out->local_size(), 13u);
}

TEST(TypeCodec, RecursiveListNodeRoundTrip) {
  TypeRegistry src(Platform::native().rules);
  TypeRegistry dst(Platform::sparc32().rules);
  const TypeDescriptor* node = src.struct_builder("node")
      .field("key", src.primitive(PrimitiveKind::kInt32))
      .self_pointer_field("next")
      .finish();
  const TypeDescriptor* out = roundtrip(node, dst);
  ASSERT_EQ(out->kind(), TypeKind::kStruct);
  ASSERT_EQ(out->fields().size(), 2u);
  const TypeDescriptor* next = out->fields()[1].type;
  ASSERT_EQ(next->kind(), TypeKind::kPointer);
  EXPECT_EQ(next->pointee(), out) << "cycle must close on the decoded node";
  // sparc32: 4-byte pointers, so node = int32 + ptr32 = 8 bytes.
  EXPECT_EQ(out->local_size(), 8u);
}

TEST(TypeCodec, MutuallyRecursiveStructs) {
  TypeRegistry src(Platform::native().rules);
  // a { b* pb }; b { a* pa } — build b with an opaque-then-fixed pointer by
  // declaring a first with a self-ish shape: emulate mutual recursion via
  // two-step: a points to b, b points back to a.
  const TypeDescriptor* a = src.struct_builder("a")
      .field("x", src.primitive(PrimitiveKind::kInt32))
      .self_pointer_field("pa")
      .finish();
  const TypeDescriptor* b = src.struct_builder("b")
      .field("pa", src.pointer_to(a))
      .field("y", src.primitive(PrimitiveKind::kFloat64))
      .finish();
  TypeRegistry dst(LayoutRules::packed_canonical());
  const TypeDescriptor* out = roundtrip(b, dst);
  ASSERT_EQ(out->fields().size(), 2u);
  const TypeDescriptor* pa = out->fields()[0].type;
  ASSERT_EQ(pa->kind(), TypeKind::kPointer);
  ASSERT_NE(pa->pointee(), nullptr);
  EXPECT_EQ(pa->pointee()->struct_name(), "a");
  // And a's own self-cycle survived.
  EXPECT_EQ(pa->pointee()->fields()[1].type->pointee(), pa->pointee());
}

TEST(TypeCodec, OpaquePointerRoundTrip) {
  TypeRegistry src(Platform::native().rules);
  TypeRegistry dst(Platform::native().rules);
  const TypeDescriptor* t = roundtrip(src.pointer_to(nullptr), dst);
  EXPECT_EQ(t->kind(), TypeKind::kPointer);
  EXPECT_EQ(t->pointee(), nullptr);
}

TEST(TypeCodec, ArrayOfStructsRoundTrip) {
  TypeRegistry src(Platform::native().rules);
  TypeRegistry dst(LayoutRules::packed_canonical());
  const TypeDescriptor* pair = src.struct_builder("pair")
      .field("i", src.primitive(PrimitiveKind::kInt32))
      .field("d", src.primitive(PrimitiveKind::kFloat64))
      .finish();
  const TypeDescriptor* arr = src.array_of(pair, 50);
  const TypeDescriptor* out = roundtrip(arr, dst);
  ASSERT_EQ(out->kind(), TypeKind::kArray);
  EXPECT_EQ(out->count(), 50u);
  EXPECT_EQ(out->prim_units(), 100u);
  EXPECT_EQ(out->element_stride(), 12u);  // packed: 4 + 8
}

TEST(TypeCodec, GarbageInputThrowsProtocol) {
  TypeRegistry dst(Platform::native().rules);
  Buffer buf;
  buf.append_u32(1);
  buf.append_u8(99);  // bad tag
  BufReader r(buf.span());
  EXPECT_THROW(TypeCodec::decode_graph(r, dst), Error);

  Buffer empty;
  empty.append_u32(0);
  BufReader r2(empty.span());
  EXPECT_THROW(TypeCodec::decode_graph(r2, dst), Error);
}

TEST(TypeCodec, OutOfRangeIndexThrows) {
  TypeRegistry dst(Platform::native().rules);
  Buffer buf;
  buf.append_u32(1);
  buf.append_u8(3);       // array
  buf.append_u64(4);      // count
  buf.append_u32(7);      // element index out of range
  BufReader r(buf.span());
  EXPECT_THROW(TypeCodec::decode_graph(r, dst), Error);
}

TEST(TypeCodec, EncodeIsDeterministic) {
  TypeRegistry src(Platform::native().rules);
  const TypeDescriptor* s = src.struct_builder("s")
      .field("a", src.array_of(src.primitive(PrimitiveKind::kInt16), 3))
      .field("b", src.string_type(9))
      .finish();
  Buffer b1, b2;
  TypeCodec::encode_graph(s, b1);
  TypeCodec::encode_graph(s, b2);
  ASSERT_EQ(b1.size(), b2.size());
  EXPECT_EQ(0, memcmp(b1.data(), b2.data(), b1.size()));
}

}  // namespace
}  // namespace iw
