// Tests for the small util pieces: errors, logging levels, RNG determinism,
// seqlock reader/writer protocol.
#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rand.hpp"
#include "util/seqlock.hpp"
#include "util/stopwatch.hpp"

namespace iw {
namespace {

TEST(Error, CarriesCodeAndMessage) {
  Error e(ErrorCode::kNotFound, "segment foo");
  EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  EXPECT_STREQ(e.what(), "NotFound: segment foo");
}

TEST(Error, ThrowErrnoPreservesContext) {
  errno = ENOENT;
  try {
    throw_errno("open(/nope)");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find("open(/nope)"), std::string::npos);
  }
}

TEST(Error, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(i)), "Unknown");
  }
}

TEST(Logging, LevelGateWorks) {
  LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  IW_LOG(kError) << "this must not crash even when suppressed";
  set_log_level(old);
}

TEST(Rand, DeterministicAcrossInstances) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rand, BelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rand, UniformInUnitInterval) {
  SplitMix64 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_ns(), 5'000'000);
  sw.restart();
  EXPECT_LT(sw.elapsed_ns(), 5'000'000);
}

TEST(SeqLock, ReaderSeesConsistentPairs) {
  SeqLock lock;
  uint64_t a = 1, b = ~1ULL;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t i = 1; i < 200000 && !stop.load(); ++i) {
      lock.write_begin();
      a = i;
      b = ~i;
      lock.write_end();
    }
    stop = true;
  });
  uint64_t reads = 0;
  while (!stop.load() && reads < 100000) {
    uint32_t seq = lock.read_begin();
    uint64_t ra = a, rb = b;
    if (lock.read_retry(seq)) continue;
    ASSERT_EQ(ra, ~rb) << "torn read";
    ++reads;
  }
  stop = true;
  writer.join();
}

}  // namespace
}  // namespace iw
