// Coherence-model tests: Full, Delta(x), Temporal(x), Diff(x%), the
// adaptive polling/notification protocol, and bandwidth effects.
#include <gtest/gtest.h>

#include <thread>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

class Coherence : public ::testing::Test {
 protected:
  Coherence() {
    factory_ = [this](const std::string&) {
      return std::make_shared<InProcChannel>(server_);
    };
  }

  std::unique_ptr<Client> make_client(Client::Options options = {}) {
    return std::make_unique<Client>(factory_, options);
  }

  /// Writer bumps the segment version by touching one int.
  void bump(Client& writer, ClientSegment* seg, int32_t* data, int value) {
    writer.write_lock(seg);
    data[0] = value;
    writer.write_unlock(seg);
  }

  std::pair<ClientSegment*, int32_t*> make_shared_array(Client& writer,
                                                        const std::string& url) {
    const TypeDescriptor* arr = writer.types().array_of(
        writer.types().primitive(PrimitiveKind::kInt32), 1024);
    ClientSegment* seg = writer.open_segment(url);
    writer.write_lock(seg);
    auto* data = static_cast<int32_t*>(writer.malloc_block(seg, arr, "a"));
    for (int i = 0; i < 1024; ++i) data[i] = i;
    writer.write_unlock(seg);
    return {seg, data};
  }

  server::SegmentServer server_;
  Client::ChannelFactory factory_;
};

TEST_F(Coherence, FullAlwaysCurrent) {
  auto w = make_client();
  auto r = make_client();
  auto [ws, data] = make_shared_array(*w, "host/full");
  ClientSegment* rs = r->open_segment("host/full");
  r->set_coherence(rs, CoherencePolicy::full());

  for (int round = 1; round <= 5; ++round) {
    bump(*w, ws, data, round);
    r->read_lock(rs);
    EXPECT_EQ(rs->version(), ws->version());
    r->read_unlock(rs);
  }
}

TEST_F(Coherence, DeltaToleratesBoundedStaleness) {
  auto w = make_client();
  auto r = make_client();
  auto [ws, data] = make_shared_array(*w, "host/delta");
  ClientSegment* rs = r->open_segment("host/delta");
  r->set_coherence(rs, CoherencePolicy::delta(2));

  // Initial fetch.
  r->read_lock(rs);
  r->read_unlock(rs);
  uint32_t fetched_version = rs->version();

  // One write: within delta-2, reader stays on its cached copy without even
  // contacting the server (notification tells it how far behind it is).
  bump(*w, ws, data, 100);
  uint64_t calls_before = r->stats().read_lock_server_calls;
  r->read_lock(rs);
  EXPECT_EQ(rs->version(), fetched_version);
  r->read_unlock(rs);
  EXPECT_EQ(r->stats().read_lock_server_calls, calls_before);
  EXPECT_GT(r->stats().read_lock_local_hits, 0u);

  // Two more writes: now 3 behind, must update.
  bump(*w, ws, data, 101);
  bump(*w, ws, data, 102);
  r->read_lock(rs);
  EXPECT_EQ(rs->version(), ws->version());
  r->read_unlock(rs);
}

TEST_F(Coherence, TemporalSkipsServerWithinWindow) {
  auto w = make_client();
  auto r = make_client();
  auto [ws, data] = make_shared_array(*w, "host/temporal");
  ClientSegment* rs = r->open_segment("host/temporal");
  r->set_coherence(rs, CoherencePolicy::temporal(10'000));  // 10 s

  r->read_lock(rs);
  r->read_unlock(rs);
  uint32_t v0 = rs->version();
  bump(*w, ws, data, 1);

  uint64_t calls_before = r->stats().read_lock_server_calls;
  r->read_lock(rs);  // inside the 10 s window: no fetch
  EXPECT_EQ(rs->version(), v0);
  r->read_unlock(rs);
  EXPECT_EQ(r->stats().read_lock_server_calls, calls_before);
}

TEST_F(Coherence, TemporalRefreshesAfterWindow) {
  auto w = make_client();
  auto r = make_client();
  auto [ws, data] = make_shared_array(*w, "host/temporal2");
  ClientSegment* rs = r->open_segment("host/temporal2");
  r->set_coherence(rs, CoherencePolicy::temporal(20));  // 20 ms

  r->read_lock(rs);
  r->read_unlock(rs);
  bump(*w, ws, data, 7);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  r->read_lock(rs);
  EXPECT_EQ(rs->version(), ws->version());
  auto* blk = rs->heap().find_by_name("a");
  EXPECT_EQ(reinterpret_cast<const int32_t*>(blk->data())[0], 7);
  r->read_unlock(rs);
}

TEST_F(Coherence, DiffPercentTriggersOnVolume) {
  auto w = make_client();
  auto r = make_client();
  auto [ws, data] = make_shared_array(*w, "host/diffco");
  ClientSegment* rs = r->open_segment("host/diffco");
  // Tolerate up to 25% of the segment changing.
  r->set_coherence(rs, CoherencePolicy::diff(25));

  r->read_lock(rs);
  r->read_unlock(rs);
  uint32_t v0 = rs->version();

  // Tiny write: far below 25%; reader keeps its copy.
  bump(*w, ws, data, 1);
  r->read_lock(rs);
  EXPECT_EQ(rs->version(), v0);
  r->read_unlock(rs);

  // Rewrite most of the segment: exceeds 25%, must update.
  w->write_lock(ws);
  for (int i = 0; i < 1024; ++i) data[i] = -i;
  w->write_unlock(ws);
  r->read_lock(rs);
  EXPECT_EQ(rs->version(), ws->version());
  r->read_unlock(rs);
}

TEST_F(Coherence, RelaxedModelsReduceBandwidth) {
  auto w = make_client();
  auto full_reader = make_client();
  auto delta_reader = make_client();
  auto [ws, data] = make_shared_array(*w, "host/bw");

  ClientSegment* fs = full_reader->open_segment("host/bw");
  full_reader->set_coherence(fs, CoherencePolicy::full());
  ClientSegment* ds = delta_reader->open_segment("host/bw");
  delta_reader->set_coherence(ds, CoherencePolicy::delta(3));

  // Warm both.
  full_reader->read_lock(fs);
  full_reader->read_unlock(fs);
  delta_reader->read_lock(ds);
  delta_reader->read_unlock(ds);
  uint64_t full_base = full_reader->bytes_received();
  uint64_t delta_base = delta_reader->bytes_received();

  for (int round = 1; round <= 12; ++round) {
    w->write_lock(ws);
    for (int i = 0; i < 256; ++i) data[i] = round * 1000 + i;
    w->write_unlock(ws);
    full_reader->read_lock(fs);
    full_reader->read_unlock(fs);
    delta_reader->read_lock(ds);
    delta_reader->read_unlock(ds);
  }
  uint64_t full_bytes = full_reader->bytes_received() - full_base;
  uint64_t delta_bytes = delta_reader->bytes_received() - delta_base;
  EXPECT_LT(delta_bytes, full_bytes)
      << "delta-3 reader should fetch fewer updates than a full reader";
}

TEST_F(Coherence, NotificationsArriveOnWrites) {
  auto w = make_client();
  auto r = make_client();
  auto [ws, data] = make_shared_array(*w, "host/notify");
  ClientSegment* rs = r->open_segment("host/notify");
  r->read_lock(rs);
  r->read_unlock(rs);

  // After the writer commits, the reader's channel has seen a notification
  // (reflected in received-byte growth without any reader-initiated call).
  uint64_t rx_before = r->bytes_received();
  bump(*w, ws, data, 5);
  EXPECT_GT(r->bytes_received(), rx_before)
      << "subscribed reader should receive a version notification";
}

TEST_F(Coherence, UnsubscribedClientStillCorrect) {
  Client::Options options;
  options.subscribe_notifications = false;
  auto w = make_client();
  auto r = make_client(options);
  auto [ws, data] = make_shared_array(*w, "host/nosub");
  ClientSegment* rs = r->open_segment("host/nosub");
  r->set_coherence(rs, CoherencePolicy::delta(5));

  r->read_lock(rs);
  r->read_unlock(rs);
  bump(*w, ws, data, 9);

  // Without notifications the client cannot decide locally; it must ask,
  // and the server's delta check still applies (1 behind <= 5: up to date).
  uint64_t calls_before = r->stats().read_lock_server_calls;
  r->read_lock(rs);
  r->read_unlock(rs);
  EXPECT_EQ(r->stats().read_lock_server_calls, calls_before + 1);
}

TEST_F(Coherence, ServerDecidesDeltaForUnsubscribed) {
  Client::Options options;
  options.subscribe_notifications = false;
  auto w = make_client();
  auto r = make_client(options);
  auto [ws, data] = make_shared_array(*w, "host/svr-delta");
  ClientSegment* rs = r->open_segment("host/svr-delta");
  r->set_coherence(rs, CoherencePolicy::delta(2));

  r->read_lock(rs);
  r->read_unlock(rs);
  uint32_t v0 = rs->version();
  bump(*w, ws, data, 1);

  r->read_lock(rs);
  EXPECT_EQ(rs->version(), v0) << "server should answer 'recent enough'";
  r->read_unlock(rs);
}

}  // namespace
}  // namespace iw
