// Tests for the segment-diff wire format (DiffWriter / DiffReader) and for
// frame encoding.
#include "wire/diff.hpp"

#include <gtest/gtest.h>

#include "wire/frame.hpp"
#include "wire/translate.hpp"

namespace iw {
namespace {

TEST(Frame, HeaderRoundTrip) {
  Frame f;
  f.type = MsgType::kAcquireRead;
  f.request_id = 0xABCD;
  f.payload = {1, 2, 3};
  Buffer out;
  encode_frame(f, out);
  ASSERT_EQ(out.size(), kFrameHeaderSize + 3);
  FrameHeader h = decode_frame_header(out.data());
  EXPECT_EQ(h.type, MsgType::kAcquireRead);
  EXPECT_EQ(h.request_id, 0xABCDu);
  EXPECT_EQ(h.payload_size, 3u);
  EXPECT_EQ(frame_wire_size(f), out.size());
}

TEST(Frame, OversizedPayloadRejected) {
  uint8_t hdr[kFrameHeaderSize] = {0};
  store_be32(hdr + 5, kMaxFramePayload + 1);
  EXPECT_THROW(decode_frame_header(hdr), Error);
}

TEST(Diff, EmptyDiff) {
  Buffer buf;
  DiffWriter w(buf, 3, 4);
  uint64_t size = w.finish();
  EXPECT_EQ(size, buf.size());

  BufReader in(buf.span());
  DiffReader r(in);
  EXPECT_EQ(r.from_version(), 3u);
  EXPECT_EQ(r.to_version(), 4u);
  EXPECT_EQ(r.entry_count(), 0u);
  DiffEntry e;
  EXPECT_FALSE(r.next(&e));
}

TEST(Diff, FreeEntries) {
  Buffer buf;
  DiffWriter w(buf, 0, 1);
  w.add_free(17);
  w.add_free(23);
  w.finish();

  BufReader in(buf.span());
  DiffReader r(in);
  DiffEntry e;
  ASSERT_TRUE(r.next(&e));
  EXPECT_EQ(e.serial, 17u);
  EXPECT_TRUE(e.flags & diff_flags::kFree);
  ASSERT_TRUE(r.next(&e));
  EXPECT_EQ(e.serial, 23u);
  EXPECT_FALSE(r.next(&e));
}

TEST(Diff, ModifiedBlockWithRuns) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* arr = reg.array_of(reg.primitive(PrimitiveKind::kInt32), 100);
  std::vector<int32_t> data(100);
  for (int i = 0; i < 100; ++i) data[i] = i;
  NumericOnlyHooks hooks;

  Buffer buf;
  DiffWriter w(buf, 7, 8);
  w.begin_block(5, 0);
  w.begin_run(10, 3);
  encode_units(*arr, reg.rules(), data.data(), 10, 13, hooks, w.buffer());
  w.begin_run(50, 2);
  encode_units(*arr, reg.rules(), data.data(), 50, 52, hooks, w.buffer());
  w.end_block();
  w.finish();

  BufReader in(buf.span());
  DiffReader r(in);
  DiffEntry e;
  ASSERT_TRUE(r.next(&e));
  EXPECT_EQ(e.serial, 5u);
  EXPECT_EQ(e.flags, 0);

  std::vector<int32_t> out(100, -1);
  DiffRun run = DiffReader::read_run(e.runs);
  EXPECT_EQ(run.start_unit, 10u);
  EXPECT_EQ(run.unit_count, 3u);
  decode_units(*arr, reg.rules(), out.data(), run.start_unit,
               run.start_unit + run.unit_count, hooks, e.runs);
  run = DiffReader::read_run(e.runs);
  EXPECT_EQ(run.start_unit, 50u);
  decode_units(*arr, reg.rules(), out.data(), run.start_unit,
               run.start_unit + run.unit_count, hooks, e.runs);
  EXPECT_TRUE(e.runs.at_end());
  EXPECT_EQ(out[10], 10);
  EXPECT_EQ(out[12], 12);
  EXPECT_EQ(out[50], 50);
  EXPECT_EQ(out[51], 51);
  EXPECT_EQ(out[9], -1);
  EXPECT_EQ(out[13], -1);
}

TEST(Diff, NewBlockCarriesTypeAndName) {
  Buffer buf;
  DiffWriter w(buf, 1, 2);
  w.begin_block(9, diff_flags::kNew | diff_flags::kWhole, 4, "head");
  w.begin_run(0, 1);
  w.buffer().append_u32(0xAA55AA55);
  w.end_block();
  w.finish();

  BufReader in(buf.span());
  DiffReader r(in);
  DiffEntry e;
  ASSERT_TRUE(r.next(&e));
  EXPECT_EQ(e.serial, 9u);
  EXPECT_TRUE(e.flags & diff_flags::kNew);
  EXPECT_TRUE(e.flags & diff_flags::kWhole);
  EXPECT_EQ(e.type_serial, 4u);
  EXPECT_EQ(e.name, "head");
  DiffRun run = DiffReader::read_run(e.runs);
  EXPECT_EQ(run.start_unit, 0u);
  EXPECT_EQ(e.runs.read_u32(), 0xAA55AA55u);
}

TEST(Diff, MultipleBlocksSequential) {
  Buffer buf;
  DiffWriter w(buf, 0, 5);
  for (uint32_t serial = 1; serial <= 10; ++serial) {
    w.begin_block(serial, 0);
    w.begin_run(0, 1);
    w.buffer().append_u32(serial * 100);
    w.end_block();
  }
  w.finish();

  BufReader in(buf.span());
  DiffReader r(in);
  EXPECT_EQ(r.entry_count(), 10u);
  DiffEntry e;
  for (uint32_t serial = 1; serial <= 10; ++serial) {
    ASSERT_TRUE(r.next(&e));
    EXPECT_EQ(e.serial, serial);
    DiffReader::read_run(e.runs);
    EXPECT_EQ(e.runs.read_u32(), serial * 100);
  }
  EXPECT_FALSE(r.next(&e));
  EXPECT_TRUE(in.at_end());
}

TEST(Diff, TruncatedDiffThrows) {
  Buffer buf;
  DiffWriter w(buf, 0, 1);
  w.begin_block(1, 0);
  w.begin_run(0, 4);
  w.buffer().append_u32(1);
  w.end_block();
  w.finish();

  // Clip the buffer mid-entry.
  Buffer clipped;
  clipped.append(buf.data(), buf.size() - 3);
  BufReader in(clipped.span());
  DiffReader r(in);
  DiffEntry e;
  EXPECT_THROW(r.next(&e), Error);
}

TEST(Diff, WriterGuardsMisuse) {
  Buffer buf;
  DiffWriter w(buf, 0, 1);
  EXPECT_THROW(w.end_block(), Error);
  w.begin_block(1, 0);
  EXPECT_THROW(w.begin_block(2, 0), Error);
  EXPECT_THROW(w.add_free(3), Error);
  EXPECT_THROW(w.finish(), Error);
  w.end_block();
  w.finish();
}

}  // namespace
}  // namespace iw
