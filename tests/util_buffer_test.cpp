// Tests for Buffer/BufReader and the endian helpers they are built on.
#include "util/buffer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/endian.hpp"

namespace iw {
namespace {

TEST(Endian, RoundTrips) {
  uint8_t buf[8];
  store_be16(buf, 0x1234);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[1], 0x34);
  EXPECT_EQ(load_be16(buf), 0x1234);

  store_be32(buf, 0xDEADBEEF);
  EXPECT_EQ(buf[0], 0xDE);
  EXPECT_EQ(buf[3], 0xEF);
  EXPECT_EQ(load_be32(buf), 0xDEADBEEFu);

  store_be64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ULL);
}

TEST(Endian, FloatBitPatternsSurviveRoundTrip) {
  uint8_t buf[8];
  for (double v : {0.0, -0.0, 1.5, -123.456, 1e300,
                   std::numeric_limits<double>::infinity()}) {
    store_be_double(buf, v);
    EXPECT_EQ(load_be_double(buf), v);
  }
  store_be_double(buf, std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(load_be_double(buf)));
  for (float v : {0.0f, 3.14f, -1e-30f}) {
    store_be_float(buf, v);
    EXPECT_EQ(load_be_float(buf), v);
  }
}

TEST(Buffer, AppendAndReadBackAllTypes) {
  Buffer b;
  b.append_u8(0xAB);
  b.append_u16(0x1234);
  b.append_u32(0xCAFEBABE);
  b.append_u64(0x1122334455667788ULL);
  b.append_i32(-42);
  b.append_i64(-1e15);
  b.append_f32(2.5f);
  b.append_f64(-0.125);
  b.append_lp_string("hello");

  BufReader r(b.data(), b.size());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xCAFEBABEu);
  EXPECT_EQ(r.read_u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_i64(), -1000000000000000LL);
  EXPECT_EQ(r.read_f32(), 2.5f);
  EXPECT_EQ(r.read_f64(), -0.125);
  EXPECT_EQ(r.read_lp_string(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Buffer, EmptyLpString) {
  Buffer b;
  b.append_lp_string("");
  BufReader r(b.span());
  EXPECT_EQ(r.read_lp_string(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(Buffer, PlaceholderPatching) {
  Buffer b;
  b.append_u8(1);
  size_t off = b.append_placeholder_u32();
  b.append_lp_string("payload");
  b.patch_u32(off, 777);
  BufReader r(b.span());
  EXPECT_EQ(r.read_u8(), 1);
  EXPECT_EQ(r.read_u32(), 777u);
  EXPECT_EQ(r.read_lp_string(), "payload");
}

TEST(Buffer, PatchOutOfRangeThrows) {
  Buffer b;
  b.append_u8(1);
  EXPECT_THROW(b.patch_u32(0, 1), Error);
}

TEST(BufReader, OverrunThrowsProtocolError) {
  Buffer b;
  b.append_u16(7);
  BufReader r(b.span());
  EXPECT_EQ(r.read_u8(), 0);
  try {
    (void)r.read_u32();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocol);
  }
}

TEST(BufReader, TruncatedLpStringThrows) {
  Buffer b;
  b.append_u32(100);  // claims 100 bytes
  b.append_u8('x');
  BufReader r(b.span());
  EXPECT_THROW((void)r.read_lp_string(), Error);
}

TEST(BufReader, SkipAndRemaining) {
  Buffer b;
  b.append_u32(1);
  b.append_u32(2);
  BufReader r(b.span());
  EXPECT_EQ(r.remaining(), 8u);
  r.skip(4);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_EQ(r.read_u32(), 2u);
  EXPECT_THROW(r.skip(1), Error);
}

TEST(Buffer, LargeAppendKeepsContents) {
  Buffer b;
  std::vector<uint8_t> chunk(100000);
  for (size_t i = 0; i < chunk.size(); ++i) chunk[i] = static_cast<uint8_t>(i);
  b.append(chunk.data(), chunk.size());
  b.append(chunk.data(), chunk.size());
  ASSERT_EQ(b.size(), 200000u);
  EXPECT_EQ(b.data()[0], 0);
  EXPECT_EQ(b.data()[100000], 0);
  EXPECT_EQ(b.data()[99999], static_cast<uint8_t>(99999));
}

TEST(Buffer, TakeMovesStorage) {
  Buffer b;
  b.append_lp_string("abc");
  auto v = b.take();
  EXPECT_EQ(v.size(), 7u);
}

}  // namespace
}  // namespace iw
