// Layout tests: per-platform sizes/alignments, machine-independent primitive
// offsets, locate_prim/unit_at_local_offset consistency, run visitation, and
// the isomorphic-descriptor transform.
#include <gtest/gtest.h>

#include "types/registry.hpp"
#include "util/rand.hpp"

namespace iw {
namespace {

TEST(Platform, NativeMatchesHostAbi) {
  Platform p = Platform::native();
  EXPECT_EQ(p.rules.size[static_cast<int>(PrimitiveKind::kInt32)], 4);
  EXPECT_EQ(p.rules.size[static_cast<int>(PrimitiveKind::kPointer)],
            sizeof(void*));
  EXPECT_EQ(p.rules.align[static_cast<int>(PrimitiveKind::kFloat64)],
            alignof(double));
}

TEST(Platform, PresetsDiffer) {
  EXPECT_EQ(Platform::sparc32().rules.byte_order, ByteOrder::kBig);
  EXPECT_EQ(Platform::sparc32().rules.size[static_cast<int>(PrimitiveKind::kPointer)], 4);
  EXPECT_EQ(Platform::packed_le32().rules.align[static_cast<int>(PrimitiveKind::kFloat64)], 2);
  EXPECT_EQ(LayoutRules::packed_canonical().byte_order, ByteOrder::kBig);
  for (int i = 0; i < kNumPrimitiveKinds; ++i) {
    EXPECT_EQ(LayoutRules::packed_canonical().align[i], 1);
  }
}

TEST(TypeRegistry, PrimitiveSingletonsInterned) {
  TypeRegistry reg(Platform::native().rules);
  EXPECT_EQ(reg.primitive(PrimitiveKind::kInt32),
            reg.primitive(PrimitiveKind::kInt32));
  EXPECT_NE(reg.primitive(PrimitiveKind::kInt32),
            reg.primitive(PrimitiveKind::kInt64));
  EXPECT_THROW(reg.primitive(PrimitiveKind::kPointer), Error);
  EXPECT_THROW(reg.primitive(PrimitiveKind::kString), Error);
}

TEST(TypeRegistry, ArrayLayout) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* arr = reg.array_of(reg.primitive(PrimitiveKind::kInt32), 10);
  EXPECT_EQ(arr->kind(), TypeKind::kArray);
  EXPECT_EQ(arr->local_size(), 40u);
  EXPECT_EQ(arr->prim_units(), 10u);
  EXPECT_EQ(arr->element_stride(), 4u);
  EXPECT_EQ(arr, reg.array_of(reg.primitive(PrimitiveKind::kInt32), 10));
}

TEST(TypeRegistry, StructLayoutWithPaddingNative) {
  // struct { char c; double d; int i; } — native x86-64: offsets 0, 8, 16,
  // size 24 (tail padded to 8).
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* s = reg.struct_builder("padded")
      .field("c", reg.primitive(PrimitiveKind::kChar))
      .field("d", reg.primitive(PrimitiveKind::kFloat64))
      .field("i", reg.primitive(PrimitiveKind::kInt32))
      .finish();
  ASSERT_EQ(s->fields().size(), 3u);
  EXPECT_EQ(s->fields()[0].local_offset, 0u);
  EXPECT_EQ(s->fields()[1].local_offset, 8u);
  EXPECT_EQ(s->fields()[2].local_offset, 16u);
  EXPECT_EQ(s->local_size(), 24u);
  EXPECT_EQ(s->local_align(), 8u);
  // Primitive offsets are machine-independent and dense: 0, 1, 2.
  EXPECT_EQ(s->fields()[0].prim_offset, 0u);
  EXPECT_EQ(s->fields()[1].prim_offset, 1u);
  EXPECT_EQ(s->fields()[2].prim_offset, 2u);
  EXPECT_EQ(s->prim_units(), 3u);
}

TEST(TypeRegistry, SameStructDifferentPlatformDifferentLocalSamePrim) {
  TypeRegistry native(Platform::native().rules);
  TypeRegistry packed(Platform::packed_le32().rules);
  auto build = [](TypeRegistry& reg) {
    return reg.struct_builder("mixed")
        .field("c", reg.primitive(PrimitiveKind::kChar))
        .field("d", reg.primitive(PrimitiveKind::kFloat64))
        .field("p", reg.pointer_to(reg.primitive(PrimitiveKind::kInt32)))
        .finish();
  };
  const TypeDescriptor* a = build(native);
  const TypeDescriptor* b = build(packed);
  EXPECT_NE(a->local_size(), b->local_size());       // 24 vs 2+8+4=14
  EXPECT_EQ(b->fields()[1].local_offset, 2u);        // align 2 on packed
  EXPECT_EQ(a->prim_units(), b->prim_units());       // identical unit space
  EXPECT_EQ(a->fields()[2].prim_offset, b->fields()[2].prim_offset);
}

TEST(TypeRegistry, StringTypeLayout) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* s = reg.string_type(256);
  EXPECT_EQ(s->local_size(), 256u);
  EXPECT_EQ(s->prim_units(), 1u);  // one primitive data unit, per the paper
  EXPECT_TRUE(s->has_variable_wire_size());
  EXPECT_THROW(reg.string_type(0), Error);
}

TEST(TypeRegistry, SelfReferentialStruct) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* node = reg.struct_builder("node")
      .field("key", reg.primitive(PrimitiveKind::kInt32))
      .self_pointer_field("next")
      .finish();
  ASSERT_EQ(node->fields().size(), 2u);
  const TypeDescriptor* next = node->fields()[1].type;
  EXPECT_EQ(next->kind(), TypeKind::kPointer);
  EXPECT_EQ(next->pointee(), node);
  EXPECT_EQ(node->local_size(), 16u);  // int + pad + 8-byte pointer
}

TEST(TypeRegistry, IsomorphicCollapsesConsecutiveSameKindFields) {
  TypeRegistry reg(Platform::native().rules);
  StructBuilder b = reg.struct_builder("int_struct");
  for (int i = 0; i < 32; ++i) {
    b.field("f" + std::to_string(i), reg.primitive(PrimitiveKind::kInt32));
  }
  const TypeDescriptor* s = b.finish();
  ASSERT_EQ(s->fields().size(), 1u);  // collapsed into one int[32]
  EXPECT_EQ(s->fields()[0].type->kind(), TypeKind::kArray);
  EXPECT_EQ(s->fields()[0].type->count(), 32u);
  EXPECT_EQ(s->prim_units(), 32u);
  EXPECT_EQ(s->local_size(), 128u);
}

TEST(TypeRegistry, IsomorphicDisabledKeepsFields) {
  TypeRegistry::Options opts;
  opts.isomorphic_descriptors = false;
  TypeRegistry reg(Platform::native().rules, opts);
  StructBuilder b = reg.struct_builder("int_struct");
  for (int i = 0; i < 32; ++i) {
    b.field("f" + std::to_string(i), reg.primitive(PrimitiveKind::kInt32));
  }
  const TypeDescriptor* s = b.finish();
  EXPECT_EQ(s->fields().size(), 32u);
  EXPECT_EQ(s->prim_units(), 32u);
  EXPECT_EQ(s->local_size(), 128u);  // layout identical either way
}

TEST(TypeRegistry, IsomorphicDoesNotCrossKindBoundaries) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* s = reg.struct_builder("mixed")
      .field("a", reg.primitive(PrimitiveKind::kInt32))
      .field("b", reg.primitive(PrimitiveKind::kInt32))
      .field("c", reg.primitive(PrimitiveKind::kFloat64))
      .field("d", reg.primitive(PrimitiveKind::kFloat64))
      .finish();
  ASSERT_EQ(s->fields().size(), 2u);
  EXPECT_EQ(s->fields()[0].type->count(), 2u);
  EXPECT_EQ(s->fields()[1].type->count(), 2u);
  EXPECT_EQ(s->fields()[1].prim_offset, 2u);
}

TEST(TypeDescriptor, LocatePrimWalksNestedTypes) {
  TypeRegistry reg(Platform::native().rules);
  // struct { int i; double d[2]; char name[8(string)]; }
  const TypeDescriptor* s = reg.struct_builder("rec")
      .field("i", reg.primitive(PrimitiveKind::kInt32))
      .field("d", reg.array_of(reg.primitive(PrimitiveKind::kFloat64), 2))
      .field("name", reg.string_type(8))
      .finish();
  // Units: 0 = i, 1..2 = d[0..1], 3 = name.
  EXPECT_EQ(s->prim_units(), 4u);
  PrimLocation u0 = s->locate_prim(0);
  EXPECT_EQ(u0.kind, PrimitiveKind::kInt32);
  EXPECT_EQ(u0.local_offset, 0u);
  PrimLocation u2 = s->locate_prim(2);
  EXPECT_EQ(u2.kind, PrimitiveKind::kFloat64);
  EXPECT_EQ(u2.local_offset, 16u);
  PrimLocation u3 = s->locate_prim(3);
  EXPECT_EQ(u3.kind, PrimitiveKind::kString);
  EXPECT_EQ(u3.local_offset, 24u);
  EXPECT_EQ(u3.string_capacity, 8u);
  EXPECT_THROW(s->locate_prim(4), Error);
}

TEST(TypeDescriptor, UnitAtLocalOffsetInverse) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* s = reg.struct_builder("rec")
      .field("c", reg.primitive(PrimitiveKind::kChar))
      .field("d", reg.primitive(PrimitiveKind::kFloat64))
      .field("i", reg.array_of(reg.primitive(PrimitiveKind::kInt32), 4))
      .finish();
  // Offsets: c@0, d@8, i@16..31; padding 1..7.
  EXPECT_EQ(s->unit_at_local_offset(0).unit_index, 0u);
  // Bytes inside padding map to the following unit.
  EXPECT_EQ(s->unit_at_local_offset(3).unit_index, 1u);
  EXPECT_EQ(s->unit_at_local_offset(8).unit_index, 1u);
  EXPECT_EQ(s->unit_at_local_offset(15).unit_index, 1u);
  EXPECT_EQ(s->unit_at_local_offset(16).unit_index, 2u);
  EXPECT_EQ(s->unit_at_local_offset(19).unit_index, 2u);
  EXPECT_EQ(s->unit_at_local_offset(20).unit_index, 3u);
  EXPECT_EQ(s->unit_at_local_offset(31).unit_index, 5u);
  EXPECT_EQ(s->unit_at_local_offset(31).local_offset, 28u);
}

// Property: for every unit, unit_at_local_offset(locate_prim(u)) == u, on
// every platform, for a family of generated nested types.
class LocateRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(LocateRoundTrip, LocateAndUnitAtAgree) {
  Platform platform;
  std::string name = GetParam();
  if (name == "native") platform = Platform::native();
  else if (name == "sparc32") platform = Platform::sparc32();
  else if (name == "big64") platform = Platform::big64();
  else platform = Platform::packed_le32();

  TypeRegistry reg(platform.rules);
  const TypeDescriptor* inner = reg.struct_builder("inner")
      .field("a", reg.primitive(PrimitiveKind::kChar))
      .field("b", reg.primitive(PrimitiveKind::kInt64))
      .field("s", reg.string_type(5))
      .finish();
  const TypeDescriptor* outer = reg.struct_builder("outer")
      .field("x", reg.primitive(PrimitiveKind::kInt16))
      .field("arr", reg.array_of(inner, 7))
      .field("p", reg.pointer_to(inner))
      .field("tail", reg.array_of(reg.primitive(PrimitiveKind::kFloat32), 3))
      .finish();

  for (uint64_t u = 0; u < outer->prim_units(); ++u) {
    PrimLocation loc = outer->locate_prim(u);
    UnitAtOffset back = outer->unit_at_local_offset(loc.local_offset);
    EXPECT_EQ(back.unit_index, u) << "unit " << u;
    EXPECT_EQ(back.local_offset, loc.local_offset);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, LocateRoundTrip,
                         ::testing::Values("native", "sparc32", "big64",
                                           "packed_le32"));

TEST(TypeDescriptor, VisitRunsCoversExactlyRequestedUnits) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* elem = reg.struct_builder("pair")
      .field("i", reg.primitive(PrimitiveKind::kInt32))
      .field("d", reg.primitive(PrimitiveKind::kFloat64))
      .finish();
  const TypeDescriptor* arr = reg.array_of(elem, 100);
  SplitMix64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t a = rng.below(arr->prim_units());
    uint64_t b = a + 1 + rng.below(arr->prim_units() - a);
    uint64_t covered = 0;
    uint64_t expect_next = a;
    arr->visit_runs(a, b, [&](const PrimRun& run) {
      EXPECT_EQ(run.first_unit, expect_next);
      covered += run.unit_count;
      expect_next = run.first_unit + run.unit_count;
    });
    EXPECT_EQ(covered, b - a);
  }
}

TEST(TypeDescriptor, VisitRunsMergesPrimitiveArray) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* arr = reg.array_of(reg.primitive(PrimitiveKind::kInt32), 1000);
  int runs = 0;
  arr->visit_runs(5, 900, [&](const PrimRun& run) {
    ++runs;
    EXPECT_EQ(run.unit_count, 895u);
    EXPECT_EQ(run.local_offset, 20u);
    EXPECT_EQ(run.local_stride, 4u);
  });
  EXPECT_EQ(runs, 1);
}

TEST(TypeRegistry, StructDedup) {
  TypeRegistry reg(Platform::native().rules);
  auto make = [&] {
    return reg.struct_builder("s")
        .field("a", reg.primitive(PrimitiveKind::kInt32))
        .field("b", reg.string_type(4))
        .finish();
  };
  EXPECT_EQ(make(), make());
}

TEST(TypeRegistry, EmptyStructRejected) {
  TypeRegistry reg(Platform::native().rules);
  EXPECT_THROW(reg.struct_builder("empty").finish(), Error);
}

TEST(TypeRegistry, ArrayValidation) {
  TypeRegistry reg(Platform::native().rules);
  EXPECT_THROW(reg.array_of(nullptr, 3), Error);
  EXPECT_THROW(reg.array_of(reg.primitive(PrimitiveKind::kChar), 0), Error);
}

}  // namespace
}  // namespace iw
