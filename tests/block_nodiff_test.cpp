// Per-block no-diff mode tests: a block repeatedly rewritten almost
// entirely switches to whole-block transmission (skipping faults and twins
// for its pages) while other blocks in the same segment keep fine-grained
// diffing; the probe countdown returns it to diffing mode.
#include <gtest/gtest.h>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

using client::TrackingMode;

class BlockNoDiff : public ::testing::Test {
 protected:
  BlockNoDiff() {
    factory_ = [this](const std::string&) {
      return std::make_shared<InProcChannel>(server_);
    };
  }

  std::unique_ptr<Client> make_client(bool per_block, uint32_t probe = 8) {
    Client::Options options;
    options.tracking = TrackingMode::kVmDiff;
    options.per_block_no_diff = per_block;
    options.no_diff_probe_period = probe;
    return std::make_unique<Client>(factory_, options);
  }

  server::SegmentServer server_;
  Client::ChannelFactory factory_;
};

TEST_F(BlockNoDiff, HotBlockSwitchesColdBlockKeepsDiffing) {
  auto c = make_client(true);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 16384);
  ClientSegment* seg = c->open_segment("host/bnd1");
  c->write_lock(seg);
  auto* hot = static_cast<int32_t*>(c->malloc_block(seg, arr, "hot"));
  auto* cold = static_cast<int32_t*>(c->malloc_block(seg, arr, "cold"));
  c->write_unlock(seg);

  // Two critical sections rewriting all of `hot` and a sliver of `cold`.
  for (int round = 1; round <= 2; ++round) {
    c->write_lock(seg);
    for (int i = 0; i < 16384; ++i) hot[i] = i + round;
    cold[0] = round;
    c->write_unlock(seg);
  }
  auto* hot_blk = seg->heap().find_by_name("hot");
  auto* cold_blk = seg->heap().find_by_name("cold");
  EXPECT_TRUE(hot_blk->block_no_diff);
  EXPECT_FALSE(cold_blk->block_no_diff);
  EXPECT_FALSE(seg->no_diff_active()) << "segment-level mode not triggered";

  // Next section: hot goes whole (and unprotected — fewer faults), cold
  // still produces a fine diff.
  uint64_t faults_before = client::fault_count();
  uint64_t emissions_before = c->stats().block_no_diff_emissions;
  c->write_lock(seg);
  for (int i = 0; i < 16384; ++i) hot[i] = i + 77;
  cold[5] = 5;
  c->write_unlock(seg);
  EXPECT_GT(c->stats().block_no_diff_emissions, emissions_before);
  // hot spans 16 pages; only cold's page (plus boundary pages) may fault.
  EXPECT_LT(client::fault_count() - faults_before, 6u);
}

TEST_F(BlockNoDiff, ContentStaysCorrectForReaders) {
  auto c = make_client(true);
  auto r = make_client(true);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 8192);
  ClientSegment* seg = c->open_segment("host/bnd2");
  c->write_lock(seg);
  auto* hot = static_cast<int32_t*>(c->malloc_block(seg, arr, "hot"));
  c->write_unlock(seg);

  for (int round = 1; round <= 4; ++round) {
    c->write_lock(seg);
    for (int i = 0; i < 8192; ++i) hot[i] = i * round;
    c->write_unlock(seg);
  }
  ClientSegment* rs = r->open_segment("host/bnd2");
  r->read_lock(rs);
  const auto* d = reinterpret_cast<const int32_t*>(
      rs->heap().find_by_name("hot")->data());
  for (int i = 0; i < 8192; ++i) ASSERT_EQ(d[i], i * 4);
  r->read_unlock(rs);
}

TEST_F(BlockNoDiff, ProbeReturnsBlockToDiffing) {
  auto c = make_client(true, /*probe=*/2);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 4096);
  ClientSegment* seg = c->open_segment("host/bnd3");
  c->write_lock(seg);
  auto* hot = static_cast<int32_t*>(c->malloc_block(seg, arr, "hot"));
  c->write_unlock(seg);

  for (int round = 1; round <= 2; ++round) {
    c->write_lock(seg);
    for (int i = 0; i < 4096; ++i) hot[i] = i + round;
    c->write_unlock(seg);
  }
  auto* blk = seg->heap().find_by_name("hot");
  ASSERT_TRUE(blk->block_no_diff);

  // Two whole-block sections burn the probe countdown.
  for (int round = 0; round < 2; ++round) {
    c->write_lock(seg);
    hot[0] = round;
    c->write_unlock(seg);
  }
  EXPECT_FALSE(blk->block_no_diff);
}

TEST_F(BlockNoDiff, DisabledOptionNeverSwitches) {
  auto c = make_client(false);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 4096);
  ClientSegment* seg = c->open_segment("host/bnd4");
  c->write_lock(seg);
  auto* hot = static_cast<int32_t*>(c->malloc_block(seg, arr, "hot"));
  c->write_unlock(seg);
  for (int round = 1; round <= 4; ++round) {
    c->write_lock(seg);
    for (int i = 0; i < 4096; ++i) hot[i] = i + round;
    c->write_unlock(seg);
  }
  EXPECT_FALSE(seg->heap().find_by_name("hot")->block_no_diff);
  EXPECT_EQ(c->stats().block_no_diff_emissions, 0u);
}

TEST_F(BlockNoDiff, SparseWritesResetTheStreak) {
  auto c = make_client(true);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 4096);
  ClientSegment* seg = c->open_segment("host/bnd5");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr, "a"));
  c->write_unlock(seg);

  // Alternate full and sparse modifications: the streak never reaches 2.
  for (int round = 1; round <= 6; ++round) {
    c->write_lock(seg);
    if (round % 2 == 1) {
      for (int i = 0; i < 4096; ++i) data[i] = i + round;
    } else {
      data[0] = round;
    }
    c->write_unlock(seg);
  }
  EXPECT_FALSE(seg->heap().find_by_name("a")->block_no_diff);
}

}  // namespace
}  // namespace iw
