// Regression net for the sharded SegmentServer: 8 TCP client threads hammer
// 8 segments with writer locks, modifications, frees, subscriptions, and
// cross-segment traffic while a background thread checkpoints and scrapes
// stats concurrently. Final segment versions and block contents must equal
// what the (deterministic per-block) writers last committed. Run under
// ThreadSanitizer via -DIW_SANITIZE=thread to verify the two-level locking
// scheme has no races.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "wire/coherence.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

namespace fs = std::filesystem;

constexpr int kThreads = 8;
constexpr int kSegments = 8;
constexpr int kRounds = 30;
constexpr uint32_t kUnits = 64;  // int32 array units per block

std::string seg_name(int s) { return "conc/seg" + std::to_string(s); }
std::string blk_name(int t) { return "blk" + std::to_string(t); }

Frame call(TcpClientChannel& ch, MsgType type,
           const std::function<void(Buffer&)>& fill) {
  Buffer payload;
  fill(payload);
  return ch.call(type, std::move(payload));
}

/// Consumes an append_update payload (u8 flag, [types, diff]) positioned at
/// the flag; returns the server version it brings the client to (or
/// `assumed` when already up to date).
uint32_t consume_update(BufReader& r, uint32_t assumed) {
  if (r.read_u8() == 0) return assumed;
  uint32_t n_types = r.read_u32();
  for (uint32_t i = 0; i < n_types; ++i) {
    r.read_u32();  // serial
    r.skip(r.read_u32());
  }
  DiffReader dr(r);
  DiffEntry e;
  while (dr.next(&e)) {
  }
  return dr.to_version();
}

struct Shared {
  // expected_version[s] = 1 + diffs applied; written under the segment's
  // server-side writer lock semantics, read after join.
  std::atomic<uint32_t> releases[kSegments]{};
  // final_value[s][t]: last value thread t committed to its block in s,
  // -1 when the block finished freed. Written by thread t only, read after
  // join (synchronized by thread join).
  int64_t final_value[kSegments][kThreads];
  std::atomic<uint64_t> notifications{0};
  std::atomic<int> failures{0};

  Shared() {
    for (auto& row : final_value)
      for (auto& v : row) v = -1;
  }
};

void worker(uint16_t port, int t, Shared& sh) {
  try {
    TcpClientChannel ch(port);
    ch.set_notify_handler([&sh](const Frame& f) {
      if (f.type == MsgType::kNotifyVersion) {
        sh.notifications.fetch_add(1, std::memory_order_relaxed);
      }
    });

    const int own = t;
    const int neighbor = (t + 1) % kSegments;
    std::map<int, uint32_t> version;      // my synced version per segment
    std::map<int, uint32_t> block_serial;  // 0 = my block absent

    TypeRegistry scratch(Platform::native().rules);
    Buffer graph;
    TypeCodec::encode_graph(
        scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), kUnits),
        graph);

    for (int s : {own, neighbor}) {
      call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
        p.append_lp_string(seg_name(s));
        p.append_u8(1);
      });
      call(ch, MsgType::kRegisterType, [&](Buffer& p) {
        p.append_lp_string(seg_name(s));
        p.append(graph.span());
      });
      version[s] = 0;
      block_serial[s] = 0;
    }
    call(ch, MsgType::kSubscribe, [&](Buffer& p) {
      p.append_lp_string(seg_name(neighbor));
    });

    for (int round = 1; round <= kRounds; ++round) {
      // Mostly the own segment; every third round the neighbor's, so two
      // writers genuinely contend for the same writer lock.
      const int s = (round % 3 == 0) ? neighbor : own;
      const int32_t value = t * 1000 + round;

      Frame acq = call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
        p.append_lp_string(seg_name(s));
        p.append_u32(version[s]);
      });
      BufReader ar = acq.reader();
      uint32_t next_serial = ar.read_u32();
      version[s] = consume_update(ar, version[s]);

      Frame rel = call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
        p.append_lp_string(seg_name(s));
        DiffWriter w(p, version[s], version[s] + 1);
        if (block_serial[s] == 0) {
          block_serial[s] = next_serial;
          w.begin_block(block_serial[s],
                        diff_flags::kNew | diff_flags::kWhole, 1,
                        blk_name(t));
          w.begin_run(0, kUnits);
          for (uint32_t i = 0; i < kUnits; ++i) p.append_u32(value);
          w.end_block();
          sh.final_value[s][t] = value;
        } else if (round % 10 == 0) {
          w.add_free(block_serial[s]);
          block_serial[s] = 0;
          sh.final_value[s][t] = -1;
        } else {
          // Two runs to exercise the multi-run and subblock paths.
          w.begin_block(block_serial[s], 0);
          w.begin_run(0, 16);
          for (uint32_t i = 0; i < 16; ++i) p.append_u32(value);
          w.begin_run(16, kUnits - 16);
          for (uint32_t i = 16; i < kUnits; ++i) p.append_u32(value);
          w.end_block();
          sh.final_value[s][t] = value;
        }
        w.finish();
      });
      BufReader rr = rel.reader();
      version[s] = rr.read_u32();
      sh.releases[s].fetch_add(1, std::memory_order_relaxed);

      // Read back the own segment under Full coherence; also drags in the
      // neighbor thread's concurrent writes.
      if (round % 4 == 0) {
        Frame rd = call(ch, MsgType::kAcquireRead, [&](Buffer& p) {
          p.append_lp_string(seg_name(own));
          p.append_u32(version[own]);
          p.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
          p.append_u64(0);
        });
        BufReader r = rd.reader();
        version[own] = consume_update(r, version[own]);
      }
    }
  } catch (const std::exception& e) {
    ADD_FAILURE() << "worker " << t << ": " << e.what();
    sh.failures.fetch_add(1);
  }
}

TEST(ServerConcurrency, ShardedSegmentsStayConsistent) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-conc-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  server::SegmentServer::Options options;
  options.checkpoint_dir = dir.string();
  server::SegmentServer core(options);
  TcpServer server(core, 0);

  Shared sh;
  std::atomic<bool> done{false};
  // Checkpoints and stats scrapes race against live traffic: they must
  // neither wedge a segment nor trip TSan.
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      core.checkpoint();
      (void)core.stats();
      try {
        (void)core.segment_stats(seg_name(0));
        (void)core.segment_version(seg_name(0));
      } catch (const Error&) {
        // Segment not created yet.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker, server.port(), t, std::ref(sh));
  }
  for (auto& t : threads) t.join();
  done = true;
  snapshotter.join();

  ASSERT_EQ(sh.failures.load(), 0);

  // Every segment's version must be exactly 1 + applied diffs (no diff was
  // lost or double-applied across the per-segment locks).
  for (int s = 0; s < kSegments; ++s) {
    EXPECT_EQ(core.segment_version(seg_name(s)),
              1u + sh.releases[s].load())
        << seg_name(s);
  }

  // Final contents: a fresh client's from-0 diff must enumerate exactly the
  // live blocks, each uniformly holding its owner's last committed value.
  TcpClientChannel verify(server.port());
  for (int s = 0; s < kSegments; ++s) {
    Frame rd = call(verify, MsgType::kAcquireRead, [&](Buffer& p) {
      p.append_lp_string(seg_name(s));
      p.append_u32(0);
      p.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
      p.append_u64(0);
    });
    BufReader r = rd.reader();
    ASSERT_EQ(r.read_u8(), 1) << seg_name(s);
    uint32_t n_types = r.read_u32();
    for (uint32_t i = 0; i < n_types; ++i) {
      r.read_u32();
      r.skip(r.read_u32());
    }
    DiffReader dr(r);
    DiffEntry e;
    std::map<std::string, std::vector<int32_t>> blocks;
    while (dr.next(&e)) {
      ASSERT_TRUE(e.flags & diff_flags::kNew) << seg_name(s);
      std::vector<int32_t> data(kUnits, 0);
      while (!e.runs.at_end()) {
        DiffRun run = DiffReader::read_run(e.runs);
        for (uint32_t i = 0; i < run.unit_count; ++i) {
          data[run.start_unit + i] = e.runs.read_i32();
        }
      }
      blocks.emplace(e.name, std::move(data));
    }
    std::map<std::string, std::vector<int32_t>> expected;
    for (int t = 0; t < kThreads; ++t) {
      if (sh.final_value[s][t] < 0) continue;
      expected.emplace(blk_name(t),
                       std::vector<int32_t>(
                           kUnits, static_cast<int32_t>(sh.final_value[s][t])));
    }
    EXPECT_EQ(blocks, expected) << seg_name(s);
  }

  server.shutdown();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace iw
