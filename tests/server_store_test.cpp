// SegmentStore unit tests: subblock version tracking, version-list/marker
// maintenance, diff caching, free history, and checkpoint round trips.
#include "server/segment_store.hpp"

#include <gtest/gtest.h>

#include "wire/translate.hpp"

namespace iw::server {
namespace {

/// Builds a client-shaped diff that creates one int-array block.
std::vector<uint8_t> make_create_diff(SegmentStore& store, uint32_t serial,
                                      uint32_t n_ints, uint32_t type_serial,
                                      const std::string& name = {}) {
  Buffer out;
  DiffWriter w(out, store.version(), store.version() + 1);
  w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, type_serial,
                name);
  w.begin_run(0, n_ints);
  for (uint32_t i = 0; i < n_ints; ++i) out.append_u32(i);
  w.end_block();
  w.finish();
  return out.take();
}

std::vector<uint8_t> make_update_diff(SegmentStore& store, uint32_t serial,
                                      uint32_t start, uint32_t count,
                                      uint32_t value) {
  Buffer out;
  DiffWriter w(out, store.version(), store.version() + 1);
  w.begin_block(serial, 0);
  w.begin_run(start, count);
  for (uint32_t i = 0; i < count; ++i) out.append_u32(value + i);
  w.end_block();
  w.finish();
  return out.take();
}

uint32_t register_int_array(SegmentStore& store, uint32_t n) {
  TypeRegistry scratch(Platform::native().rules);
  Buffer graph;
  TypeCodec::encode_graph(
      scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), n), graph);
  return store.register_type(graph.span());
}

TEST(SegmentStore, FreshStoreState) {
  SegmentStore store("s", {});
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.next_block_serial(), 1u);
  EXPECT_EQ(store.block_count(), 0u);
}

TEST(SegmentStore, TypeRegistrationDedups) {
  SegmentStore store("s", {});
  uint32_t a = register_int_array(store, 100);
  uint32_t b = register_int_array(store, 100);
  uint32_t c = register_int_array(store, 200);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(store.type_count(), 2u);
}

TEST(SegmentStore, ApplyCreateDiff) {
  SegmentStore store("s", {});
  uint32_t t = register_int_array(store, 64);
  uint32_t v = store.apply_diff(make_create_diff(store, 1, 64, t, "data"));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.next_block_serial(), 2u);
  const SvrBlock* blk = store.find_block(1);
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(blk->name, "data");
  EXPECT_EQ(blk->created_version, 2u);
  EXPECT_EQ(store.find_block_by_name("data"), blk);
  // 64 units / 16 per subblock = 4 subblocks, all at version 2.
  ASSERT_EQ(blk->subblock_count(), 4u);
  for (uint32_t sv : blk->subblock_versions) EXPECT_EQ(sv, 2u);
}

TEST(SegmentStore, SubblockVersionsTrackPartialUpdates) {
  SegmentStore store("s", {});
  uint32_t t = register_int_array(store, 64);
  store.apply_diff(make_create_diff(store, 1, 64, t));
  store.apply_diff(make_update_diff(store, 1, 20, 4, 999));  // units 20-23
  const SvrBlock* blk = store.find_block(1);
  // Units 20-23 live in subblock 1 only.
  EXPECT_EQ(blk->subblock_versions[0], 2u);
  EXPECT_EQ(blk->subblock_versions[1], 3u);
  EXPECT_EQ(blk->subblock_versions[2], 2u);
  EXPECT_EQ(blk->version, 3u);
}

TEST(SegmentStore, CollectDiffForStaleClientSendsOnlyNewSubblocks) {
  SegmentStore::Options options;
  options.enable_diff_cache = false;
  SegmentStore store("s", options);
  uint32_t t = register_int_array(store, 256);
  store.apply_diff(make_create_diff(store, 1, 256, t));  // v2

  auto full = store.collect_diff(0);
  store.apply_diff(make_update_diff(store, 1, 0, 2, 5));  // v3, subblock 0

  auto incr = store.collect_diff(2);
  EXPECT_LT(incr->size(), full->size() / 4)
      << "incremental diff must be much smaller than a full send";

  // Parse: one block entry, one run covering exactly subblock 0 (units 0-15).
  BufReader in(incr->data(), incr->size());
  DiffReader r(in);
  EXPECT_EQ(r.from_version(), 2u);
  EXPECT_EQ(r.to_version(), 3u);
  DiffEntry e;
  ASSERT_TRUE(r.next(&e));
  EXPECT_EQ(e.serial, 1u);
  EXPECT_EQ(e.flags, 0);
  DiffRun run = DiffReader::read_run(e.runs);
  EXPECT_EQ(run.start_unit, 0u);
  EXPECT_EQ(run.unit_count, 16u);
}

TEST(SegmentStore, CollectMergesAdjacentDirtySubblocks) {
  SegmentStore::Options options;
  options.enable_diff_cache = false;
  SegmentStore store("s", options);
  uint32_t t = register_int_array(store, 256);
  store.apply_diff(make_create_diff(store, 1, 256, t));
  store.apply_diff(make_update_diff(store, 1, 10, 30, 7));  // subblocks 0,1,2

  auto diff = store.collect_diff(2);
  BufReader in(diff->data(), diff->size());
  DiffReader r(in);
  DiffEntry e;
  ASSERT_TRUE(r.next(&e));
  DiffRun run = DiffReader::read_run(e.runs);
  EXPECT_EQ(run.start_unit, 0u);
  EXPECT_EQ(run.unit_count, 48u);  // one merged run, 3 subblocks
  EXPECT_TRUE(e.runs.remaining() == 48 * 4);
}

TEST(SegmentStore, FreeHistoryInformsStaleClients) {
  SegmentStore store("s", {});
  uint32_t t = register_int_array(store, 16);
  store.apply_diff(make_create_diff(store, 1, 16, t));  // v2
  store.apply_diff(make_create_diff(store, 2, 16, t));  // v3

  // Free block 1 at v4.
  Buffer out;
  DiffWriter w(out, store.version(), store.version() + 1);
  w.add_free(1);
  w.finish();
  store.apply_diff(out.span());

  // A client at v3 saw block 1: it gets the free entry.
  auto diff = store.collect_diff(3);
  BufReader in(diff->data(), diff->size());
  DiffReader r(in);
  DiffEntry e;
  ASSERT_TRUE(r.next(&e));
  EXPECT_TRUE(e.flags & diff_flags::kFree);
  EXPECT_EQ(e.serial, 1u);

  // A fresh client never saw it: no free entry, one create entry.
  auto fresh = store.collect_diff(0);
  BufReader in2(fresh->data(), fresh->size());
  DiffReader r2(in2);
  ASSERT_TRUE(r2.next(&e));
  EXPECT_FALSE(e.flags & diff_flags::kFree);
  EXPECT_EQ(e.serial, 2u);
  EXPECT_FALSE(r2.next(&e));
}

TEST(SegmentStore, DiffCacheServesRepeatRequests) {
  SegmentStore store("s", {});
  uint32_t t = register_int_array(store, 64);
  store.apply_diff(make_create_diff(store, 1, 64, t));
  store.apply_diff(make_update_diff(store, 1, 0, 4, 9));

  // The applied diff (v2 -> v3) was cached; a client at v2 reuses it.
  auto d1 = store.collect_diff(2);
  EXPECT_EQ(store.stats().diff_cache_hits, 1u);
  auto d2 = store.collect_diff(2);
  EXPECT_EQ(store.stats().diff_cache_hits, 2u);
  EXPECT_EQ(d1.get(), d2.get()) << "same cached bytes object";

  // A different from-version misses and is built.
  auto d0 = store.collect_diff(0);
  EXPECT_EQ(store.stats().diff_cache_misses, 1u);
  // ... and is itself now cached.
  auto d0b = store.collect_diff(0);
  EXPECT_EQ(d0.get(), d0b.get());
}

TEST(SegmentStore, DiffCacheDisabledAlwaysBuilds) {
  SegmentStore::Options options;
  options.enable_diff_cache = false;
  SegmentStore store("s", options);
  uint32_t t = register_int_array(store, 64);
  store.apply_diff(make_create_diff(store, 1, 64, t));
  auto d1 = store.collect_diff(0);
  auto d2 = store.collect_diff(0);
  EXPECT_NE(d1.get(), d2.get());
  EXPECT_EQ(store.stats().diff_cache_hits, 0u);
}

TEST(SegmentStore, StaleBaseVersionRejected) {
  SegmentStore store("s", {});
  uint32_t t = register_int_array(store, 16);
  store.apply_diff(make_create_diff(store, 1, 16, t));
  Buffer out;
  DiffWriter w(out, 1, 2);  // base v1, but store is at v2
  w.begin_block(1, 0);
  w.begin_run(0, 1);
  out.append_u32(1);
  w.end_block();
  w.finish();
  try {
    store.apply_diff(out.span());
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kState);
  }
}

TEST(SegmentStore, MalformedDiffsRejected) {
  SegmentStore store("s", {});
  uint32_t t = register_int_array(store, 16);
  store.apply_diff(make_create_diff(store, 1, 16, t));

  // Run beyond block bounds.
  Buffer out;
  DiffWriter w(out, store.version(), store.version() + 1);
  w.begin_block(1, 0);
  w.begin_run(10, 100);
  for (int i = 0; i < 100; ++i) out.append_u32(0);
  w.end_block();
  w.finish();
  EXPECT_THROW(store.apply_diff(out.span()), Error);

  // Update of unknown block.
  EXPECT_THROW(store.apply_diff(make_update_diff(store, 99, 0, 1, 0)), Error);

  // New block with unknown type.
  Buffer out2;
  DiffWriter w2(out2, store.version(), store.version() + 1);
  w2.begin_block(5, diff_flags::kNew, 42, "x");
  w2.begin_run(0, 1);
  out2.append_u32(0);
  w2.end_block();
  w2.finish();
  EXPECT_THROW(store.apply_diff(out2.span()), Error);
}

TEST(SegmentStore, StringsAndPointersStoredOutOfLine) {
  SegmentStore store("s", {});
  TypeRegistry scratch(Platform::native().rules);
  const TypeDescriptor* rec = scratch.struct_builder("rec")
      .field("name", scratch.string_type(16))
      .field("next", scratch.pointer_to(nullptr))
      .finish();
  Buffer graph;
  TypeCodec::encode_graph(rec, graph);
  uint32_t t = store.register_type(graph.span());

  Buffer out;
  DiffWriter w(out, 1, 2);
  w.begin_block(1, diff_flags::kNew | diff_flags::kWhole, t, "");
  w.begin_run(0, 2);
  out.append_lp_string("hello");            // string unit
  out.append_lp_string("host/other#1#0");   // MIP unit
  w.end_block();
  w.finish();
  store.apply_diff(out.span());

  const SvrBlock* blk = store.find_block(1);
  ASSERT_EQ(blk->vardata.size(), 2u);
  EXPECT_EQ(blk->vardata[0], "hello");
  EXPECT_EQ(blk->vardata[1], "host/other#1#0");

  // Collecting re-emits identical variable data.
  auto diff = store.collect_diff(0);
  BufReader in(diff->data(), diff->size());
  DiffReader r(in);
  DiffEntry e;
  ASSERT_TRUE(r.next(&e));
  DiffReader::read_run(e.runs);
  EXPECT_EQ(e.runs.read_lp_string(), "hello");
  EXPECT_EQ(e.runs.read_lp_string(), "host/other#1#0");
}

TEST(SegmentStore, SerializeDeserializeRoundTrip) {
  // Disable the diff cache so both stores build diffs from subblock state
  // (the cache would give the original store finer-grained cached bytes).
  SegmentStore::Options options;
  options.enable_diff_cache = false;
  SegmentStore store("s", options);
  uint32_t t = register_int_array(store, 64);
  store.apply_diff(make_create_diff(store, 1, 64, t, "a"));
  store.apply_diff(make_create_diff(store, 2, 64, t, "b"));
  store.apply_diff(make_update_diff(store, 1, 16, 4, 77));

  Buffer snapshot;
  store.serialize(snapshot);
  BufReader in(snapshot.span());
  auto restored = SegmentStore::deserialize("s", {}, in);
  EXPECT_TRUE(in.at_end());

  EXPECT_EQ(restored->version(), store.version());
  EXPECT_EQ(restored->next_block_serial(), store.next_block_serial());
  EXPECT_EQ(restored->block_count(), 2u);
  const SvrBlock* blk = restored->find_block(1);
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(blk->version, 4u);
  EXPECT_EQ(blk->subblock_versions[1], 4u);
  EXPECT_EQ(blk->subblock_versions[0], 2u);

  // Diffs collected from the restored store match the original's content.
  auto d_orig = store.collect_diff(3);
  auto d_rest = restored->collect_diff(3);
  ASSERT_EQ(d_orig->size(), d_rest->size());
  EXPECT_EQ(0, memcmp(d_orig->data(), d_rest->data(), d_orig->size()));
}

TEST(SegmentStore, LastBlockPredictionHitsOnSequentialDiffs) {
  SegmentStore store("s", {});
  uint32_t t = register_int_array(store, 32);
  // Create 10 blocks in one diff.
  {
    Buffer out;
    DiffWriter w(out, 1, 2);
    for (uint32_t serial = 1; serial <= 10; ++serial) {
      w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, t, "");
      w.begin_run(0, 32);
      for (int i = 0; i < 32; ++i) out.append_u32(i);
      w.end_block();
    }
    w.finish();
    store.apply_diff(out.span());
  }
  // Update all 10 in serial order, twice. The second pass should follow the
  // version-list order established by the first and hit the prediction.
  for (int round = 0; round < 2; ++round) {
    Buffer out;
    DiffWriter w(out, store.version(), store.version() + 1);
    for (uint32_t serial = 1; serial <= 10; ++serial) {
      w.begin_block(serial, 0);
      w.begin_run(0, 1);
      out.append_u32(round);
      w.end_block();
    }
    w.finish();
    store.apply_diff(out.span());
  }
  EXPECT_GT(store.stats().prediction_hits, 8u);
}

}  // namespace
}  // namespace iw::server
