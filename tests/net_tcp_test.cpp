// TCP transport tests: framing over real sockets, concurrent clients,
// notifications via the receiver thread, and full client/server operation
// over TCP (the "separate processes" deployment shape).
#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

TEST(Tcp, PingPong) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  TcpClientChannel channel(server.port());
  Buffer empty;
  Frame resp = channel.call(MsgType::kPing, std::move(empty));
  EXPECT_EQ(resp.type, MsgType::kPingResp);
  EXPECT_GT(channel.bytes_sent(), 0u);
  EXPECT_GT(channel.bytes_received(), 0u);
}

TEST(Tcp, ErrorResponsesSurfaceAsExceptions) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  TcpClientChannel channel(server.port());
  Buffer payload;
  payload.append_lp_string("host/missing");
  payload.append_u8(0);  // no create
  try {
    channel.call(MsgType::kOpenSegment, std::move(payload));
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST(Tcp, ConnectToClosedPortFails) {
  EXPECT_THROW(TcpClientChannel(1), Error);  // port 1: nothing listening
}

TEST(Tcp, ConcurrentCallsFromMultipleThreads) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  TcpClientChannel channel(server.port());
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        Buffer empty;
        Frame resp = channel.call(MsgType::kPing, std::move(empty));
        if (resp.type == MsgType::kPingResp) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 200);
}

TEST(Tcp, FullClientServerOverSockets) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  uint16_t port = server.port();

  auto factory = [port](const std::string&) {
    return std::make_shared<TcpClientChannel>(port);
  };
  Client writer(factory);
  Client reader(factory);

  const TypeDescriptor* node = writer.types().struct_builder("node")
      .field("key", writer.types().primitive(PrimitiveKind::kInt32))
      .self_pointer_field("next")
      .finish();

  ClientSegment* ws = writer.open_segment("host/tcp-list");
  writer.write_lock(ws);
  struct Node { int32_t key; Node* next; };
  auto* head = static_cast<Node*>(writer.malloc_block(ws, node, "head"));
  head->key = -1;
  head->next = nullptr;
  for (int k = 1; k <= 3; ++k) {
    auto* n = static_cast<Node*>(writer.malloc_block(ws, node));
    n->key = k;
    n->next = head->next;
    head->next = n;
  }
  writer.write_unlock(ws);

  ClientSegment* rs = reader.open_segment("host/tcp-list");
  reader.read_lock(rs);
  auto* rhead = static_cast<Node*>(reader.mip_to_ptr("host/tcp-list#head#0"));
  ASSERT_NE(rhead, nullptr);
  std::vector<int> keys;
  for (Node* p = rhead->next; p != nullptr; p = p->next) keys.push_back(p->key);
  EXPECT_EQ(keys, (std::vector<int>{3, 2, 1}));
  reader.read_unlock(rs);
}

TEST(Tcp, NotificationsFlowOverSockets) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  uint16_t port = server.port();
  auto factory = [port](const std::string&) {
    return std::make_shared<TcpClientChannel>(port);
  };
  Client writer(factory);
  Client reader(factory);

  const TypeDescriptor* arr = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), 16);
  ClientSegment* ws = writer.open_segment("host/tcp-notify");
  writer.write_lock(ws);
  auto* data = static_cast<int32_t*>(writer.malloc_block(ws, arr));
  writer.write_unlock(ws);

  ClientSegment* rs = reader.open_segment("host/tcp-notify");
  reader.set_coherence(rs, CoherencePolicy::delta(10));
  reader.read_lock(rs);
  reader.read_unlock(rs);

  writer.write_lock(ws);
  data[0] = 1;
  writer.write_unlock(ws);

  // Give the async notification a moment to land, then verify the reader
  // can satisfy a delta-bounded lock without a server round trip.
  for (int spin = 0; spin < 100; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    uint64_t calls = reader.stats().read_lock_server_calls;
    reader.read_lock(rs);
    reader.read_unlock(rs);
    if (reader.stats().read_lock_server_calls == calls) {
      SUCCEED();
      return;
    }
  }
  // Even if every acquire contacted the server, correctness held; flag the
  // missing optimization only.
  ADD_FAILURE() << "delta read never satisfied locally via notification";
}

TEST(Tcp, ServerShutdownUnblocksClients) {
  server::SegmentServer core;
  auto server = std::make_unique<TcpServer>(core, 0);
  auto channel = std::make_unique<TcpClientChannel>(server->port());
  Buffer empty;
  channel->call(MsgType::kPing, std::move(empty));
  server->shutdown();
  Buffer empty2;
  EXPECT_THROW(channel->call(MsgType::kPing, std::move(empty2)), Error);
}

}  // namespace
}  // namespace iw
