// Randomized heap churn with full boundary-tag validation after every
// operation batch, plus random type-tree fuzzing of the descriptor engine
// (locate/unit_at/visit_runs/codec agreement on arbitrary nested types).
#include <gtest/gtest.h>

#include "interweave/interweave.hpp"
#include "util/rand.hpp"
#include "wire/translate.hpp"

namespace iw {
namespace {

// ----------------------------------------------------------- heap churn

class HeapFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapFuzz, ChurnKeepsBoundaryTagsConsistent) {
  server::SegmentServer server;
  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  });
  ClientSegment* seg =
      c.open_segment("fuzz/heap" + std::to_string(GetParam()));
  SplitMix64 rng(GetParam());

  c.write_lock(seg);
  std::vector<void*> live;
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.below(10) < 6) {
      uint64_t units = 1 + rng.below(2000);
      const TypeDescriptor* t = c.types().array_of(
          c.types().primitive(PrimitiveKind::kInt32), units);
      live.push_back(c.malloc_block(seg, t));
    } else {
      size_t i = rng.below(live.size());
      c.free_block(seg, live[i]);
      live[i] = live.back();
      live.pop_back();
    }
    if (step % 16 == 0) seg->heap().check_heap();
  }
  seg->heap().check_heap();
  // Free everything: all space must coalesce back to one chunk per
  // subsegment.
  for (void* p : live) c.free_block(seg, p);
  seg->heap().check_heap();
  size_t subsegs = 0;
  for (const client::Subsegment* s = seg->heap().first_subsegment();
       s != nullptr; s = s->next) {
    ++subsegs;
  }
  EXPECT_EQ(seg->heap().free_chunk_count(), subsegs);
  c.write_unlock(seg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz,
                         ::testing::Values(11ull, 222ull, 3333ull, 44444ull));

// ------------------------------------------------------ type-tree fuzzing

/// Builds a random nested type of bounded size in `reg`.
const TypeDescriptor* random_type(TypeRegistry& reg, SplitMix64& rng,
                                  int depth, int& name_counter) {
  uint64_t pick = rng.below(depth <= 0 ? 3u : 10u);
  switch (pick) {
    case 0:
    case 1: {
      static const PrimitiveKind kinds[] = {
          PrimitiveKind::kChar, PrimitiveKind::kInt16, PrimitiveKind::kInt32,
          PrimitiveKind::kInt64, PrimitiveKind::kFloat32,
          PrimitiveKind::kFloat64};
      return reg.primitive(kinds[rng.below(6)]);
    }
    case 2:
      return reg.string_type(1 + static_cast<uint32_t>(rng.below(16)));
    case 3:
    case 4:
    case 5: {  // array
      const TypeDescriptor* elem =
          random_type(reg, rng, depth - 1, name_counter);
      return reg.array_of(elem, 1 + rng.below(6));
    }
    case 6:
      return reg.pointer_to(random_type(reg, rng, depth - 1, name_counter));
    default: {  // struct
      StructBuilder b =
          reg.struct_builder("fz" + std::to_string(name_counter++));
      uint64_t fields = 1 + rng.below(5);
      for (uint64_t f = 0; f < fields; ++f) {
        if (rng.below(8) == 0) {
          b.self_pointer_field("self" + std::to_string(f));
        } else {
          b.field("f" + std::to_string(f),
                  random_type(reg, rng, depth - 1, name_counter));
        }
      }
      return b.finish();
    }
  }
}

class TypeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TypeFuzz, RandomTypesSatisfyDescriptorInvariants) {
  SplitMix64 rng(GetParam());
  int names = 0;
  for (int trial = 0; trial < 60; ++trial) {
    TypeRegistry reg(Platform::native().rules);
    const TypeDescriptor* t = random_type(reg, rng, 3, names);
    const uint64_t units = t->prim_units();
    ASSERT_GT(units, 0u);
    ASSERT_GT(t->local_size(), 0u);

    // locate <-> unit_at agreement for every unit.
    for (uint64_t u = 0; u < units; ++u) {
      PrimLocation loc = t->locate_prim(u);
      UnitAtOffset back = t->unit_at_local_offset(loc.local_offset);
      ASSERT_EQ(back.unit_index, u);
      ASSERT_EQ(back.local_offset, loc.local_offset);
    }

    // visit_runs covers any range exactly once, in order, with locations
    // agreeing with locate_prim.
    uint64_t a = rng.below(units);
    uint64_t b = a + 1 + rng.below(units - a);
    uint64_t expect = a;
    t->visit_runs(a, b, [&](const PrimRun& run) {
      ASSERT_EQ(run.first_unit, expect);
      PrimLocation loc = t->locate_prim(run.first_unit);
      ASSERT_EQ(loc.local_offset, run.local_offset);
      ASSERT_EQ(loc.kind, run.kind);
      if (run.unit_count > 1) {
        PrimLocation last = t->locate_prim(run.first_unit + run.unit_count - 1);
        ASSERT_EQ(last.local_offset,
                  run.local_offset + (run.unit_count - 1) * run.local_stride);
      }
      expect += run.unit_count;
    });
    ASSERT_EQ(expect, b);

    // Codec round trip preserves the machine-independent structure.
    Buffer graph;
    TypeCodec::encode_graph(t, graph);
    TypeRegistry reg2(Platform::sparc32().rules);
    BufReader r(graph.span());
    const TypeDescriptor* t2 = TypeCodec::decode_graph(r, reg2);
    ASSERT_EQ(t2->prim_units(), t->prim_units());
    for (uint64_t u = 0; u < units; ++u) {
      ASSERT_EQ(t2->locate_prim(u).kind, t->locate_prim(u).kind) << u;
    }
    // And re-encoding the decoded graph is byte-identical (canonical form).
    Buffer graph2;
    TypeCodec::encode_graph(t2, graph2);
    ASSERT_EQ(graph.size(), graph2.size());
    ASSERT_EQ(0, memcmp(graph.data(), graph2.data(), graph.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypeFuzz,
                         ::testing::Values(5ull, 55ull, 555ull));

}  // namespace
}  // namespace iw
