// IDL compiler tests: lexing, parsing, descriptor building, code generation
// and error diagnostics.
#include "idl/parser.hpp"

#include <gtest/gtest.h>

#include "idl/codegen.hpp"

namespace iw::idl {
namespace {

TEST(Lexer, TokenizesAllKinds) {
  auto tokens = tokenize("struct s { int a[3]; string<8> b; } ; * < >");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "struct");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(Lexer, CommentsAndLinesTracked) {
  auto tokens = tokenize("// line comment\n/* block\ncomment */ foo");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[0].line, 3);
}

TEST(Lexer, BadCharacterReportsLine) {
  try {
    tokenize("int a;\n@");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Lexer, UnterminatedCommentThrows) {
  EXPECT_THROW(tokenize("/* never closed"), Error);
}

TEST(Parser, SimpleStruct) {
  IdlFile file = parse("struct point { double x; double y; };");
  ASSERT_EQ(file.decls.size(), 1u);
  ASSERT_TRUE(file.decls[0].is_struct);
  const StructDef& sd = file.decls[0].struct_def;
  EXPECT_EQ(sd.name, "point");
  ASSERT_EQ(sd.fields.size(), 2u);
  EXPECT_EQ(sd.fields[0].name, "x");
  EXPECT_EQ(sd.fields[0].type.kind, TypeExpr::Kind::kPrimitive);
  EXPECT_EQ(sd.fields[0].type.prim, PrimitiveKind::kFloat64);
}

TEST(Parser, LinkedListNode) {
  IdlFile file = parse("struct node_t { int key; node_t *next; };");
  const StructDef& sd = file.decls[0].struct_def;
  ASSERT_EQ(sd.fields.size(), 2u);
  EXPECT_EQ(sd.fields[1].type.kind, TypeExpr::Kind::kPointer);
  EXPECT_EQ(sd.fields[1].type.inner->kind, TypeExpr::Kind::kNamed);
  EXPECT_EQ(sd.fields[1].type.inner->name, "node_t");
}

TEST(Parser, ArraysAndMultiDim) {
  IdlFile file = parse("struct m { int grid[4][8]; };");
  const TypeExpr& t = file.decls[0].struct_def.fields[0].type;
  ASSERT_EQ(t.kind, TypeExpr::Kind::kArray);
  EXPECT_EQ(t.array_count, 4u);
  ASSERT_EQ(t.inner->kind, TypeExpr::Kind::kArray);
  EXPECT_EQ(t.inner->array_count, 8u);
  EXPECT_EQ(t.inner->inner->kind, TypeExpr::Kind::kPrimitive);
}

TEST(Parser, ArrayOfPointers) {
  IdlFile file = parse("struct s { int a; }; struct t { s *links[4]; };");
  const TypeExpr& t = file.decls[1].struct_def.fields[0].type;
  ASSERT_EQ(t.kind, TypeExpr::Kind::kArray);
  EXPECT_EQ(t.inner->kind, TypeExpr::Kind::kPointer);
}

TEST(Parser, Typedef) {
  IdlFile file = parse("typedef string<256> name_t;");
  ASSERT_FALSE(file.decls[0].is_struct);
  EXPECT_EQ(file.decls[0].typedef_def.name, "name_t");
  EXPECT_EQ(file.decls[0].typedef_def.type.kind, TypeExpr::Kind::kString);
}

TEST(Parser, SyntaxErrorsReportLine) {
  EXPECT_THROW(parse("struct s { int; };"), Error);
  EXPECT_THROW(parse("struct s { };"), Error);
  EXPECT_THROW(parse("struct s { int a }"), Error);
  EXPECT_THROW(parse("banana"), Error);
  EXPECT_THROW(parse("struct s { string<0> x; };"), Error);
}

TEST(BuildDescriptors, LinkedListLayout) {
  TypeRegistry reg(Platform::native().rules);
  auto types = build_descriptors(
      parse("struct node_t { int key; node_t *next; };"), reg);
  const TypeDescriptor* node = types.at("node_t");
  ASSERT_EQ(node->fields().size(), 2u);
  EXPECT_EQ(node->fields()[1].type->pointee(), node);
  EXPECT_EQ(node->local_size(), 16u);
}

TEST(BuildDescriptors, UsesDeclaredTypes) {
  TypeRegistry reg(Platform::native().rules);
  auto types = build_descriptors(parse(R"(
      struct inner { double d; };
      typedef inner pair[2];
      struct outer { pair items; inner *one; };
  )"), reg);
  const TypeDescriptor* outer = types.at("outer");
  EXPECT_EQ(outer->fields()[0].type->kind(), TypeKind::kArray);
  EXPECT_EQ(outer->fields()[0].type->count(), 2u);
  EXPECT_EQ(outer->fields()[1].type->pointee(), types.at("inner"));
}

TEST(BuildDescriptors, SemanticErrors) {
  TypeRegistry reg(Platform::native().rules);
  // Undeclared type.
  EXPECT_THROW(build_descriptors(parse("struct s { nope x; };"), reg), Error);
  // By-value self reference.
  EXPECT_THROW(build_descriptors(parse("struct s { s x; };"), reg), Error);
  // Duplicate declaration.
  EXPECT_THROW(build_descriptors(
      parse("struct s { int a; }; struct s { int b; };"), reg), Error);
}

TEST(BuildDescriptors, StringFieldBecomesStringType) {
  TypeRegistry reg(Platform::native().rules);
  auto types = build_descriptors(
      parse("struct person { string<64> name; int age; };"), reg);
  const TypeDescriptor* person = types.at("person");
  EXPECT_EQ(person->fields()[0].type->kind(), TypeKind::kString);
  EXPECT_EQ(person->fields()[0].type->string_capacity(), 64u);
}

TEST(Codegen, EmitsCompilableLookingHeader) {
  std::string src = R"(
      struct node_t { int key; node_t *next; };
      struct rec { string<16> name; double vals[4]; node_t *head; };
  )";
  IdlFile file = parse(src);
  std::string header = generate_cpp_header(file, src);
  EXPECT_NE(header.find("struct node_t {"), std::string::npos);
  EXPECT_NE(header.find("int32_t key;"), std::string::npos);
  EXPECT_NE(header.find("node_t *next;"), std::string::npos);
  EXPECT_NE(header.find("char name[16];"), std::string::npos);
  EXPECT_NE(header.find("double vals[4];"), std::string::npos);
  EXPECT_NE(header.find("static_assert(sizeof(node_t) == 16"), std::string::npos);
  EXPECT_NE(header.find("kIdlSource"), std::string::npos);
  EXPECT_NE(header.find("namespace iwgen"), std::string::npos);
}

TEST(Parser, EnumDeclaration) {
  IdlFile file = parse("enum color_t { RED, GREEN = 5, BLUE, };");
  ASSERT_EQ(file.decls.size(), 1u);
  ASSERT_EQ(file.decls[0].kind, Declaration::Kind::kEnum);
  const EnumDef& ed = file.decls[0].enum_def;
  EXPECT_EQ(ed.name, "color_t");
  ASSERT_EQ(ed.values.size(), 3u);
  EXPECT_EQ(ed.values[0], (std::pair<std::string, int64_t>{"RED", 0}));
  EXPECT_EQ(ed.values[1], (std::pair<std::string, int64_t>{"GREEN", 5}));
  EXPECT_EQ(ed.values[2], (std::pair<std::string, int64_t>{"BLUE", 6}));
}

TEST(Parser, EnumErrors) {
  EXPECT_THROW(parse("enum e { };"), Error);
  EXPECT_THROW(parse("enum e { A = };"), Error);
  EXPECT_THROW(parse("enum e { A B };"), Error);
}

TEST(Parser, UnsignedTypes) {
  IdlFile file = parse(R"(
      struct u { unsigned int a; unsigned short b; unsigned c;
                 unsigned long d; unsigned char e; };
  )");
  const StructDef& sd = file.decls[0].struct_def;
  EXPECT_EQ(sd.fields[0].type.prim, PrimitiveKind::kInt32);
  EXPECT_EQ(sd.fields[1].type.prim, PrimitiveKind::kInt16);
  EXPECT_EQ(sd.fields[2].type.prim, PrimitiveKind::kInt32);
  EXPECT_EQ(sd.fields[3].type.prim, PrimitiveKind::kInt64);
  EXPECT_EQ(sd.fields[4].type.prim, PrimitiveKind::kChar);
  EXPECT_THROW(parse("struct f { unsigned double x; };"), Error);
}

TEST(BuildDescriptors, EnumIsInt32Field) {
  TypeRegistry reg(Platform::native().rules);
  auto types = build_descriptors(parse(R"(
      enum color_t { RED, GREEN, BLUE };
      struct pixel { color_t c; unsigned int alpha; };
  )"), reg);
  const TypeDescriptor* pixel = types.at("pixel");
  // Isomorphic transform merges the two consecutive int32 fields.
  EXPECT_EQ(pixel->prim_units(), 2u);
  EXPECT_EQ(pixel->local_size(), 8u);
  EXPECT_EQ(types.at("color_t")->primitive(), PrimitiveKind::kInt32);
}

TEST(Codegen, EmitsEnums) {
  std::string src = "enum color_t { RED, GREEN = 5 };\n"
                    "struct pixel { color_t c; };";
  std::string header = generate_cpp_header(parse(src), src);
  EXPECT_NE(header.find("enum color_t : int32_t {"), std::string::npos);
  EXPECT_NE(header.find("RED = 0,"), std::string::npos);
  EXPECT_NE(header.find("GREEN = 5,"), std::string::npos);
  EXPECT_NE(header.find("color_t c;"), std::string::npos);
}

TEST(Codegen, CustomNamespace) {
  IdlFile file = parse("struct s { int a; };");
  CodegenOptions options;
  options.cpp_namespace = "myns";
  std::string header = generate_cpp_header(file, "struct s { int a; };", options);
  EXPECT_NE(header.find("namespace myns {"), std::string::npos);
}

}  // namespace
}  // namespace iw::idl
