// Translation tests: local <-> wire round trips across platforms, pointer
// and string hooks, padding preservation, and measure_units accounting.
#include "wire/translate.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "util/rand.hpp"

namespace iw {
namespace {

/// Fake swizzler: pointers are 64-bit tokens mapped to/from "mip:<n>".
class FakeHooks : public InlineStringHooks {
 public:
  explicit FakeHooks(const LayoutRules& rules) : rules_(rules) {}

  std::string swizzle_out(const void* field) override {
    uint64_t token = 0;
    std::memcpy(&token, field, rules_.size[static_cast<int>(PrimitiveKind::kPointer)]);
    ++swizzles_out;
    return token == 0 ? "" : "mip:" + std::to_string(token);
  }

  void swizzle_in(std::string_view mip, void* field) override {
    ++swizzles_in;
    uint64_t token = 0;
    if (!mip.empty()) {
      token = std::stoull(std::string(mip.substr(4)));
    }
    std::memcpy(field, &token, rules_.size[static_cast<int>(PrimitiveKind::kPointer)]);
  }

  int swizzles_out = 0;
  int swizzles_in = 0;

 private:
  LayoutRules rules_;
};

TEST(Translate, IntArrayRoundTripNative) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* arr = reg.array_of(reg.primitive(PrimitiveKind::kInt32), 64);
  std::vector<int32_t> data(64);
  for (int i = 0; i < 64; ++i) data[i] = i * 1000 - 32000;

  NumericOnlyHooks hooks;
  Buffer wire;
  encode_units(*arr, reg.rules(), data.data(), 0, 64, hooks, wire);
  EXPECT_EQ(wire.size(), 256u);
  // Big-endian on the wire: first int is -32000.
  EXPECT_EQ(static_cast<int32_t>(load_be32(wire.data())), -32000);

  std::vector<int32_t> back(64, 0);
  BufReader r(wire.span());
  decode_units(*arr, reg.rules(), back.data(), 0, 64, hooks, r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back, data);
}

TEST(Translate, PartialRangeTouchesOnlyThoseUnits) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* arr = reg.array_of(reg.primitive(PrimitiveKind::kInt32), 10);
  std::vector<int32_t> src(10, 7);
  NumericOnlyHooks hooks;
  Buffer wire;
  encode_units(*arr, reg.rules(), src.data(), 3, 6, hooks, wire);
  EXPECT_EQ(wire.size(), 12u);

  std::vector<int32_t> dst(10, -1);
  BufReader r(wire.span());
  decode_units(*arr, reg.rules(), dst.data(), 3, 6, hooks, r);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dst[i], (i >= 3 && i < 6) ? 7 : -1) << i;
  }
}

TEST(Translate, CrossPlatformNumericConversion) {
  // Encode from a big-endian 32-bit platform, decode into native (LE).
  TypeRegistry be(Platform::sparc32().rules);
  TypeRegistry le(Platform::native().rules);
  const TypeDescriptor* s_be = be.struct_builder("v")
      .field("i", be.primitive(PrimitiveKind::kInt32))
      .field("d", be.primitive(PrimitiveKind::kFloat64))
      .field("h", be.primitive(PrimitiveKind::kInt16))
      .finish();
  const TypeDescriptor* s_le = le.struct_builder("v")
      .field("i", le.primitive(PrimitiveKind::kInt32))
      .field("d", le.primitive(PrimitiveKind::kFloat64))
      .field("h", le.primitive(PrimitiveKind::kInt16))
      .finish();

  // Build the BE-local representation by hand: i=0x01020304 big-endian.
  std::vector<uint8_t> be_local(s_be->local_size(), 0);
  const uint8_t i_bytes[4] = {0x01, 0x02, 0x03, 0x04};
  std::memcpy(be_local.data() + s_be->fields()[0].local_offset, i_bytes, 4);
  uint64_t dbits = std::bit_cast<uint64_t>(3.25);
  store_be64(be_local.data() + s_be->fields()[1].local_offset, dbits);
  const uint8_t h_bytes[2] = {0xFF, 0xFE};  // -2 big-endian
  std::memcpy(be_local.data() + s_be->fields()[2].local_offset, h_bytes, 2);

  NumericOnlyHooks hooks;
  Buffer wire;
  encode_units(*s_be, be.rules(), be_local.data(), 0, 3, hooks, wire);

  struct Native { int32_t i; double d; int16_t h; } out{};
  BufReader r(wire.span());
  decode_units(*s_le, le.rules(), &out, 0, 3, hooks, r);
  EXPECT_EQ(out.i, 0x01020304);
  EXPECT_EQ(out.d, 3.25);
  EXPECT_EQ(out.h, -2);
}

TEST(Translate, StringsTravelLengthPrefixedAndNulPad) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* arr = reg.array_of(reg.string_type(8), 3);
  char local[24];
  std::memset(local, 'X', sizeof local);
  std::memcpy(local + 0, "ab\0XXXXX", 8);   // short string
  std::memcpy(local + 8, "12345678", 8);    // full capacity, no NUL
  std::memset(local + 16, 0, 8);            // empty

  FakeHooks hooks(reg.rules());
  Buffer wire;
  encode_units(*arr, reg.rules(), local, 0, 3, hooks, wire);
  // 3 lp strings: (4+2) + (4+8) + (4+0) = 22 bytes.
  EXPECT_EQ(wire.size(), 22u);

  char back[24];
  std::memset(back, '?', sizeof back);
  BufReader r(wire.span());
  decode_units(*arr, reg.rules(), back, 0, 3, hooks, r);
  EXPECT_EQ(std::string(back, 2), "ab");
  EXPECT_EQ(back[2], '\0');  // NUL-padded to capacity
  EXPECT_EQ(back[7], '\0');
  EXPECT_EQ(std::string(back + 8, 8), "12345678");
  EXPECT_EQ(back[16], '\0');
}

TEST(Translate, PointersGoThroughSwizzleHooks) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* node = reg.struct_builder("n")
      .field("key", reg.primitive(PrimitiveKind::kInt32))
      .self_pointer_field("next")
      .finish();
  struct N { int32_t key; uint64_t next; } local{42, 0xBEEF};
  FakeHooks hooks(reg.rules());
  Buffer wire;
  encode_units(*node, reg.rules(), &local, 0, 2, hooks, wire);
  EXPECT_EQ(hooks.swizzles_out, 1);

  N back{0, 1};
  BufReader r(wire.span());
  decode_units(*node, reg.rules(), &back, 0, 2, hooks, r);
  EXPECT_EQ(hooks.swizzles_in, 1);
  EXPECT_EQ(back.key, 42);
  EXPECT_EQ(back.next, 0xBEEFu);
}

TEST(Translate, NullPointerIsEmptyMip) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* ptr = reg.pointer_to(reg.primitive(PrimitiveKind::kInt32));
  uint64_t local = 0;
  FakeHooks hooks(reg.rules());
  Buffer wire;
  encode_units(*ptr, reg.rules(), &local, 0, 1, hooks, wire);
  EXPECT_EQ(wire.size(), 4u);  // lp "" = length word only

  uint64_t back = 123;
  BufReader r(wire.span());
  decode_units(*ptr, reg.rules(), &back, 0, 1, hooks, r);
  EXPECT_EQ(back, 0u);
}

TEST(Translate, PointerWidthConversion32to64) {
  // A sparc32 client stores 4-byte pointer tokens; wire MIPs re-expand to
  // 8-byte tokens on native.
  TypeRegistry p32(Platform::sparc32().rules);
  TypeRegistry p64(Platform::native().rules);
  const TypeDescriptor* t32 = p32.pointer_to(nullptr);
  const TypeDescriptor* t64 = p64.pointer_to(nullptr);

  uint32_t local32 = 77;
  FakeHooks hooks32(p32.rules());
  Buffer wire;
  encode_units(*t32, p32.rules(), &local32, 0, 1, hooks32, wire);

  uint64_t local64 = 0;
  FakeHooks hooks64(p64.rules());
  BufReader r(wire.span());
  decode_units(*t64, p64.rules(), &local64, 0, 1, hooks64, r);
  EXPECT_EQ(local64, 77u);
}

TEST(Translate, PaddingBytesAreNotTransmitted) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* s = reg.struct_builder("pad")
      .field("c", reg.primitive(PrimitiveKind::kChar))
      .field("d", reg.primitive(PrimitiveKind::kFloat64))
      .finish();
  std::vector<uint8_t> local(s->local_size(), 0xAA);
  local[0] = 'z';
  double d = 1.5;
  std::memcpy(local.data() + 8, &d, 8);

  NumericOnlyHooks hooks;
  Buffer wire;
  encode_units(*s, reg.rules(), local.data(), 0, 2, hooks, wire);
  EXPECT_EQ(wire.size(), 9u);  // 1 char + 8 double; padding skipped

  std::vector<uint8_t> back(s->local_size(), 0x55);
  BufReader r(wire.span());
  decode_units(*s, reg.rules(), back.data(), 0, 2, hooks, r);
  EXPECT_EQ(back[0], 'z');
  EXPECT_EQ(back[1], 0x55);  // padding untouched
  double bd;
  std::memcpy(&bd, back.data() + 8, 8);
  EXPECT_EQ(bd, 1.5);
}

TEST(Translate, MeasureMatchesEncodeSize) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* mix = reg.struct_builder("mix")
      .field("i", reg.primitive(PrimitiveKind::kInt32))
      .field("s", reg.string_type(32))
      .field("p", reg.pointer_to(reg.primitive(PrimitiveKind::kInt32)))
      .field("d", reg.primitive(PrimitiveKind::kFloat64))
      .finish();
  const TypeDescriptor* arr = reg.array_of(mix, 10);
  std::vector<uint8_t> local(arr->local_size(), 0);
  FakeHooks hooks(reg.rules());
  // Put some strings/pointers in.
  for (int i = 0; i < 10; ++i) {
    uint8_t* base = local.data() + i * arr->element_stride();
    std::snprintf(reinterpret_cast<char*>(base + mix->fields()[1].local_offset),
                  32, "str-%d", i);
    uint64_t token = i % 3 == 0 ? 0 : 1000 + i;
    std::memcpy(base + mix->fields()[2].local_offset, &token, 8);
  }
  uint64_t measured =
      measure_units(*arr, reg.rules(), local.data(), 0, arr->prim_units(), hooks);
  Buffer wire;
  encode_units(*arr, reg.rules(), local.data(), 0, arr->prim_units(), hooks, wire);
  EXPECT_EQ(measured, wire.size());
}

// The flat-run fast path (arrays of fixed-wire-size structs) must agree
// with the generic path for arbitrary ragged ranges, on both byte orders.
TEST(Translate, FlatFastPathMatchesGenericPath) {
  for (const Platform& platform : {Platform::native(), Platform::sparc32()}) {
    TypeRegistry reg(platform.rules);
    const TypeDescriptor* elem = reg.struct_builder("cell")
        .field("c", reg.primitive(PrimitiveKind::kChar))
        .field("h", reg.primitive(PrimitiveKind::kInt16))
        .field("i", reg.primitive(PrimitiveKind::kInt32))
        .field("d", reg.primitive(PrimitiveKind::kFloat64))
        .finish();
    ASSERT_FALSE(elem->flat_runs().empty());
    const TypeDescriptor* arr = reg.array_of(elem, 50);

    std::vector<uint8_t> mem(arr->local_size());
    SplitMix64 rng(13);
    for (auto& b : mem) b = static_cast<uint8_t>(rng());

    NumericOnlyHooks hooks;
    for (int trial = 0; trial < 100; ++trial) {
      uint64_t a = rng.below(arr->prim_units());
      uint64_t b = a + 1 + rng.below(arr->prim_units() - a);

      // Fast path (array type dispatches through flat runs).
      Buffer fast;
      encode_units(*arr, reg.rules(), mem.data(), a, b, hooks, fast);

      // Generic path: visit each unit individually, which can never take
      // the whole-element shortcut.
      Buffer slow;
      for (uint64_t u = a; u < b; ++u) {
        encode_units(*arr, reg.rules(), mem.data(), u, u + 1, hooks, slow);
      }
      ASSERT_EQ(fast.size(), slow.size()) << platform.name << " " << a << ".." << b;
      ASSERT_EQ(0, std::memcmp(fast.data(), slow.data(), fast.size()))
          << platform.name << " range " << a << ".." << b;

      // And decode restores the identical bytes (padding aside).
      std::vector<uint8_t> back(arr->local_size(), 0);
      BufReader r(fast.span());
      decode_units(*arr, reg.rules(), back.data(), a, b, hooks, r);
      EXPECT_TRUE(r.at_end());
      Buffer re;
      encode_units(*arr, reg.rules(), back.data(), a, b, hooks, re);
      ASSERT_EQ(0, std::memcmp(fast.data(), re.data(), fast.size()));
    }
  }
}

TEST(Translate, FlatRunsSkippedForVariableStructs) {
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* with_string = reg.struct_builder("vs")
      .field("i", reg.primitive(PrimitiveKind::kInt32))
      .field("s", reg.string_type(8))
      .finish();
  EXPECT_TRUE(with_string->flat_runs().empty());
  const TypeDescriptor* with_ptr = reg.struct_builder("vp")
      .field("i", reg.primitive(PrimitiveKind::kInt32))
      .self_pointer_field("p")
      .finish();
  EXPECT_TRUE(with_ptr->flat_runs().empty());
}

// Property sweep: random ranges of a nested type round-trip across every
// platform pair through canonical wire format.
struct PlatformPair {
  const char* src;
  const char* dst;
};
class CrossPlatformRoundTrip : public ::testing::TestWithParam<PlatformPair> {};

Platform by_name(const std::string& name) {
  if (name == "native") return Platform::native();
  if (name == "sparc32") return Platform::sparc32();
  if (name == "big64") return Platform::big64();
  return Platform::packed_le32();
}

const TypeDescriptor* build_nested(TypeRegistry& reg) {
  const TypeDescriptor* inner = reg.struct_builder("inner")
      .field("a", reg.primitive(PrimitiveKind::kInt16))
      .field("b", reg.primitive(PrimitiveKind::kFloat64))
      .field("s", reg.string_type(6))
      .finish();
  return reg.array_of(inner, 20);
}

TEST_P(CrossPlatformRoundTrip, RandomRanges) {
  TypeRegistry src_reg(by_name(GetParam().src).rules);
  TypeRegistry dst_reg(by_name(GetParam().dst).rules);
  const TypeDescriptor* src_t = build_nested(src_reg);
  const TypeDescriptor* dst_t = build_nested(dst_reg);
  ASSERT_EQ(src_t->prim_units(), dst_t->prim_units());

  // Fill source representation via per-unit stores using locate_prim.
  std::vector<uint8_t> src_mem(src_t->local_size(), 0);
  SplitMix64 rng(11);
  FakeHooks src_hooks(src_reg.rules());
  FakeHooks dst_hooks(dst_reg.rules());
  for (uint64_t u = 0; u < src_t->prim_units(); ++u) {
    PrimLocation loc = src_t->locate_prim(u);
    uint8_t* p = src_mem.data() + loc.local_offset;
    switch (loc.kind) {
      case PrimitiveKind::kInt16: {
        uint16_t v = static_cast<uint16_t>(rng());
        if (src_reg.rules().byte_order == ByteOrder::kBig) {
          store_be16(p, v);
        } else {
          std::memcpy(p, &v, 2);
        }
        break;
      }
      case PrimitiveKind::kFloat64: {
        double v = rng.uniform() * 100 - 50;
        if (src_reg.rules().byte_order == ByteOrder::kBig) {
          store_be_double(p, v);
        } else {
          std::memcpy(p, &v, 8);
        }
        break;
      }
      case PrimitiveKind::kString: {
        std::string s = "s" + std::to_string(rng.below(1000));
        src_hooks.write_string(p, loc.string_capacity, s);
        break;
      }
      default:
        break;
    }
  }

  // Round trip random unit ranges.
  std::vector<uint8_t> dst_mem(dst_t->local_size(), 0);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t a = rng.below(src_t->prim_units());
    uint64_t b = a + 1 + rng.below(src_t->prim_units() - a);
    Buffer wire;
    encode_units(*src_t, src_reg.rules(), src_mem.data(), a, b, src_hooks, wire);
    BufReader r(wire.span());
    decode_units(*dst_t, dst_reg.rules(), dst_mem.data(), a, b, dst_hooks, r);
    EXPECT_TRUE(r.at_end());
    // Re-encode the received range from dst; wire bytes must be identical
    // (canonical form is unique).
    Buffer wire2;
    encode_units(*dst_t, dst_reg.rules(), dst_mem.data(), a, b, dst_hooks, wire2);
    ASSERT_EQ(wire.size(), wire2.size());
    EXPECT_EQ(0, std::memcmp(wire.data(), wire2.data(), wire.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CrossPlatformRoundTrip,
    ::testing::Values(PlatformPair{"native", "sparc32"},
                      PlatformPair{"sparc32", "native"},
                      PlatformPair{"big64", "packed_le32"},
                      PlatformPair{"packed_le32", "big64"},
                      PlatformPair{"native", "native"}),
    [](const auto& info) {
      return std::string(info.param.src) + "_to_" + info.param.dst;
    });

// ===========================================================================
// Differential tests: the plan-compiled engine (encode/decode/measure_units)
// must be byte-identical to the legacy recursive walk (*_legacy), for
// randomized types, every platform layout, and arbitrary unit subranges.
// ===========================================================================

/// Hooks usable under every layout, including out-of-line string layouts
/// (packed_canonical): strings live in a side map keyed by field address,
/// pointers are integer tokens read straight from the field bytes. Both are
/// deterministic functions of the same inputs the legacy path sees.
class MapHooks : public TranslationHooks {
 public:
  explicit MapHooks(const LayoutRules& rules) : rules_(rules) {}

  std::string swizzle_out(const void* field) override {
    uint64_t token = 0;
    std::memcpy(&token, field, ptr_size());
    return token == 0 ? "" : "mip:" + std::to_string(token);
  }
  void swizzle_in(std::string_view mip, void* field) override {
    uint64_t token = 0;
    if (!mip.empty()) token = std::stoull(std::string(mip.substr(4)));
    std::memcpy(field, &token, ptr_size());
  }
  std::string_view read_string(const void* field, uint32_t) override {
    auto it = strings_.find(field);
    return it == strings_.end() ? std::string_view{} : std::string_view(it->second);
  }
  void write_string(void* field, uint32_t, std::string_view content) override {
    strings_[field] = std::string(content);
  }

 private:
  size_t ptr_size() const {
    return rules_.size[static_cast<int>(PrimitiveKind::kPointer)];
  }
  LayoutRules rules_;
  std::map<const void*, std::string> strings_;
};

struct NamedRules {
  const char* name;
  LayoutRules rules;
};

std::vector<NamedRules> all_layouts() {
  return {{"native", Platform::native().rules},
          {"sparc32", Platform::sparc32().rules},
          {"big64", Platform::big64().rules},
          {"packed_le32", Platform::packed_le32().rules},
          {"packed_canonical", LayoutRules::packed_canonical()}};
}

/// Grows a random type: leaves (all primitives, strings, pointers), structs
/// of 1-4 random fields, arrays of random elements. Aggregates stop at
/// depth 2 so generation terminates.
const TypeDescriptor* random_type(TypeRegistry& reg, SplitMix64& rng,
                                  int depth, int& name_counter) {
  uint64_t pick = rng.below(depth >= 2 ? 8 : 11);
  switch (pick) {
    case 0: return reg.primitive(PrimitiveKind::kChar);
    case 1: return reg.primitive(PrimitiveKind::kInt16);
    case 2: return reg.primitive(PrimitiveKind::kInt32);
    case 3: return reg.primitive(PrimitiveKind::kInt64);
    case 4: return reg.primitive(PrimitiveKind::kFloat32);
    case 5: return reg.primitive(PrimitiveKind::kFloat64);
    case 6:
      return reg.string_type(1 + static_cast<uint32_t>(rng.below(12)));
    case 7:
      return reg.pointer_to(nullptr);
    case 8:
      return reg.array_of(random_type(reg, rng, depth + 1, name_counter),
                          1 + rng.below(6));
    default: {
      auto b = reg.struct_builder("rt" + std::to_string(name_counter++));
      int fields = 1 + static_cast<int>(rng.below(4));
      for (int i = 0; i < fields; ++i) {
        b.field("f" + std::to_string(i),
                random_type(reg, rng, depth + 1, name_counter));
      }
      return b.finish();
    }
  }
}

/// Fills every unit of `mem` with valid random content: numeric units get
/// random bytes, pointers small random tokens, strings go through the hooks.
void random_fill(const TypeDescriptor& type, const LayoutRules& rules,
                 uint8_t* mem, MapHooks& hooks, SplitMix64& rng) {
  for (uint64_t u = 0; u < type.prim_units(); ++u) {
    PrimLocation loc = type.locate_prim(u);
    uint8_t* p = mem + loc.local_offset;
    switch (loc.kind) {
      case PrimitiveKind::kString: {
        std::string s;
        uint64_t len = rng.below(loc.string_capacity + 1);
        for (uint64_t i = 0; i < len; ++i) {
          s.push_back(static_cast<char>('a' + rng.below(26)));
        }
        hooks.write_string(p, loc.string_capacity, s);
        break;
      }
      case PrimitiveKind::kPointer: {
        uint64_t token = rng.below(4) == 0 ? 0 : 1 + rng.below(999);
        std::memcpy(p, &token,
                    rules.size[static_cast<int>(PrimitiveKind::kPointer)]);
        break;
      }
      default: {
        uint32_t n = rules.size[static_cast<int>(loc.kind)];
        for (uint32_t i = 0; i < n; ++i) {
          p[i] = static_cast<uint8_t>(rng());
        }
        break;
      }
    }
  }
}

TEST(TranslatePlanDifferential, RandomTypesMatchLegacyByteForByte) {
  SplitMix64 rng(20260805);
  for (const NamedRules& layout : all_layouts()) {
    TypeRegistry reg(layout.rules);
    int name_counter = 0;
    for (int trial = 0; trial < 12; ++trial) {
      const TypeDescriptor* type = random_type(reg, rng, 0, name_counter);
      // Wrap half the trials in an array so whole-element loops and the
      // array-collapse plan paths get exercised on every layout.
      if (trial % 2 == 0) type = reg.array_of(type, 1 + rng.below(8));
      ASSERT_GT(type->prim_units(), 0u);

      std::vector<uint8_t> mem(std::max<size_t>(type->local_size(), 1), 0);
      MapHooks fill_hooks(layout.rules);
      random_fill(*type, layout.rules, mem.data(), fill_hooks, rng);

      for (int range_trial = 0; range_trial < 6; ++range_trial) {
        uint64_t a = rng.below(type->prim_units());
        uint64_t b = a + 1 + rng.below(type->prim_units() - a);
        SCOPED_TRACE(std::string(layout.name) + " trial " +
                     std::to_string(trial) + " units " + std::to_string(a) +
                     ".." + std::to_string(b));

        // Encode: planned output must equal the legacy reference exactly.
        Buffer planned, legacy;
        encode_units(*type, layout.rules, mem.data(), a, b, fill_hooks,
                     planned);
        encode_units_legacy(*type, layout.rules, mem.data(), a, b, fill_hooks,
                            legacy);
        ASSERT_EQ(planned.size(), legacy.size());
        ASSERT_EQ(0, std::memcmp(planned.data(), legacy.data(),
                                 planned.size()));

        // Measure: both engines agree with the actual encoded size.
        EXPECT_EQ(measure_units(*type, layout.rules, mem.data(), a, b,
                                fill_hooks),
                  planned.size());
        EXPECT_EQ(measure_units_legacy(*type, layout.rules, mem.data(), a, b,
                                       fill_hooks),
                  planned.size());

        // Decode: both engines produce identical local bytes (padding
        // untouched in both) and identical re-encodings (covers strings,
        // which live out-of-line in the hooks).
        std::vector<uint8_t> mem1(mem.size(), 0xCC), mem2(mem.size(), 0xCC);
        MapHooks hooks1(layout.rules), hooks2(layout.rules);
        BufReader r1(planned.span());
        decode_units(*type, layout.rules, mem1.data(), a, b, hooks1, r1);
        EXPECT_TRUE(r1.at_end());
        BufReader r2(planned.span());
        decode_units_legacy(*type, layout.rules, mem2.data(), a, b, hooks2,
                            r2);
        EXPECT_TRUE(r2.at_end());
        ASSERT_EQ(0, std::memcmp(mem1.data(), mem2.data(), mem1.size()));
        Buffer re1, re2;
        encode_units(*type, layout.rules, mem1.data(), a, b, hooks1, re1);
        encode_units_legacy(*type, layout.rules, mem2.data(), a, b, hooks2,
                            re2);
        ASSERT_EQ(re1.size(), re2.size());
        ASSERT_EQ(0, std::memcmp(re1.data(), re2.data(), re1.size()));
      }
    }
  }
}

TEST(TranslatePlan, IsomorphicFastPathCountsAndCaches) {
  // Packed canonical layout is byte-identical to wire format for numeric
  // types, so the whole-block memcpy path must engage and be counted.
  TypeRegistry reg(LayoutRules::packed_canonical());
  const TypeDescriptor* arr =
      reg.array_of(reg.primitive(PrimitiveKind::kInt32), 256);
  std::vector<uint8_t> mem(arr->local_size());
  SplitMix64 rng(7);
  for (auto& b : mem) b = static_cast<uint8_t>(rng());

  reg.reset_translation_stats();
  NumericOnlyHooks hooks;
  Buffer wire;
  encode_units(*arr, reg.rules(), mem.data(), 0, 256, hooks, wire);
  ASSERT_EQ(wire.size(), mem.size());
  EXPECT_EQ(0, std::memcmp(wire.data(), mem.data(), mem.size()));

  TranslationStats stats = reg.translation_stats();
  EXPECT_EQ(stats.isomorphic_fast_path_blocks, 1u);
  EXPECT_EQ(stats.bytes_encoded, wire.size());
  EXPECT_EQ(stats.plan_cache_misses, 1u);

  // Second use of the same descriptor hits the cached plan; decode also
  // takes the memcpy path.
  std::vector<uint8_t> back(mem.size(), 0);
  BufReader r(wire.span());
  decode_units(*arr, reg.rules(), back.data(), 0, 256, hooks, r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back, mem);
  stats = reg.translation_stats();
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_GE(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.isomorphic_fast_path_blocks, 2u);
  EXPECT_EQ(stats.bytes_decoded, wire.size());
}

TEST(TranslatePlan, NativeLayoutIsNeverIsomorphic) {
  // Little-endian local layouts can never be byte-identical to the
  // big-endian wire for multi-byte numerics.
  TypeRegistry reg(Platform::native().rules);
  const TypeDescriptor* arr =
      reg.array_of(reg.primitive(PrimitiveKind::kInt32), 64);
  std::vector<int32_t> data(64, 0x01020304);
  reg.reset_translation_stats();
  NumericOnlyHooks hooks;
  Buffer wire;
  encode_units(*arr, reg.rules(), data.data(), 0, 64, hooks, wire);
  EXPECT_EQ(reg.translation_stats().isomorphic_fast_path_blocks, 0u);
  EXPECT_EQ(static_cast<int32_t>(load_be32(wire.data())), 0x01020304);
}

}  // namespace
}  // namespace iw
