// End-to-end integration tests: client <-> server through the in-process
// transport, covering segment lifecycle, diff round trips, shared linked
// lists (the paper's Figure 1), pointer swizzling across clients, block
// free propagation, and named blocks.
#include <gtest/gtest.h>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

using client::TrackingMode;

struct Node {
  int32_t key;
  Node* next;
};

class Integration : public ::testing::Test {
 protected:
  Integration() {
    factory_ = [this](const std::string&) {
      return std::make_shared<InProcChannel>(server_);
    };
  }

  std::unique_ptr<Client> make_client(Client::Options options = {}) {
    return std::make_unique<Client>(factory_, options);
  }

  static const TypeDescriptor* node_type(Client& c) {
    return c.types().struct_builder("node")
        .field("key", c.types().primitive(PrimitiveKind::kInt32))
        .self_pointer_field("next")
        .finish();
  }

  server::SegmentServer server_;
  Client::ChannelFactory factory_;
};

TEST_F(Integration, OpenCreateAndReopen) {
  auto c = make_client();
  ClientSegment* seg = c->open_segment("host/s1");
  EXPECT_EQ(seg->url(), "host/s1");
  EXPECT_EQ(c->open_segment("host/s1"), seg);  // idempotent
  EXPECT_EQ(server_.segment_version("host/s1"), 1u);
}

TEST_F(Integration, OpenMissingWithoutCreateFails) {
  auto c = make_client();
  try {
    c->open_segment("host/nope", /*create=*/false);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST_F(Integration, WriteThenReadBackSameClient) {
  auto c = make_client();
  ClientSegment* seg = c->open_segment("host/data");
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 100);

  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr, "numbers"));
  for (int i = 0; i < 100; ++i) data[i] = i * i;
  c->write_unlock(seg);
  EXPECT_EQ(seg->version(), 2u);

  c->read_lock(seg);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(data[i], i * i);
  c->read_unlock(seg);
}

TEST_F(Integration, TwoClientsShareData) {
  auto a = make_client();
  auto b = make_client();
  const TypeDescriptor* arr_a =
      a->types().array_of(a->types().primitive(PrimitiveKind::kFloat64), 16);

  ClientSegment* seg_a = a->open_segment("host/shared");
  a->write_lock(seg_a);
  auto* data_a = static_cast<double*>(a->malloc_block(seg_a, arr_a, "vals"));
  for (int i = 0; i < 16; ++i) data_a[i] = i / 3.0;
  a->write_unlock(seg_a);

  ClientSegment* seg_b = b->open_segment("host/shared");
  b->read_lock(seg_b);
  auto* block_b = seg_b->heap().find_by_name("vals");
  ASSERT_NE(block_b, nullptr);
  const auto* data_b = reinterpret_cast<const double*>(block_b->data());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(data_b[i], i / 3.0);
  b->read_unlock(seg_b);
}

TEST_F(Integration, IncrementalDiffOnlyShipsChanges) {
  auto a = make_client();
  auto b = make_client();
  const TypeDescriptor* arr =
      a->types().array_of(a->types().primitive(PrimitiveKind::kInt32), 4096);

  ClientSegment* seg_a = a->open_segment("host/inc");
  a->write_lock(seg_a);
  auto* data = static_cast<int32_t*>(a->malloc_block(seg_a, arr));
  for (int i = 0; i < 4096; ++i) data[i] = i;
  a->write_unlock(seg_a);

  ClientSegment* seg_b = b->open_segment("host/inc");
  b->read_lock(seg_b);
  b->read_unlock(seg_b);
  uint64_t baseline = b->bytes_received();

  // Small change: only ~2 subblocks should travel to b.
  a->write_lock(seg_a);
  data[17] = -1;
  a->write_unlock(seg_a);

  b->read_lock(seg_b);
  b->read_unlock(seg_b);
  // One modified int costs one 16-unit subblock (64 bytes) plus headers —
  // far below the full 16 KiB block.
  uint64_t delta = b->bytes_received() - baseline;
  EXPECT_LT(delta, 1000u);
  auto* block_b = seg_b->heap().first_block();
  ASSERT_NE(block_b, nullptr);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(block_b->data())[17], -1);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(block_b->data())[4000], 4000);
}

TEST_F(Integration, SharedLinkedListAcrossClients) {
  auto a = make_client();
  auto b = make_client();
  const TypeDescriptor* node_a = node_type(*a);

  ClientSegment* seg_a = a->open_segment("host/list");
  a->write_lock(seg_a);
  auto* head = static_cast<Node*>(a->malloc_block(seg_a, node_a, "head"));
  head->key = 0;
  head->next = nullptr;
  for (int k = 1; k <= 5; ++k) {
    auto* n = static_cast<Node*>(a->malloc_block(seg_a, node_a));
    n->key = k;
    n->next = head->next;
    head->next = n;
  }
  a->write_unlock(seg_a);

  // Client b bootstraps through a MIP, exactly like the paper's example.
  ClientSegment* seg_b = b->open_segment("host/list");
  b->read_lock(seg_b);
  auto* head_b = static_cast<Node*>(b->mip_to_ptr("host/list#head#0"));
  ASSERT_NE(head_b, nullptr);
  std::vector<int> keys;
  for (Node* p = head_b->next; p != nullptr; p = p->next) {
    keys.push_back(p->key);
  }
  EXPECT_EQ(keys, (std::vector<int>{5, 4, 3, 2, 1}));
  b->read_unlock(seg_b);

  // b inserts; a sees it.
  const TypeDescriptor* node_b = node_type(*b);
  b->write_lock(seg_b);
  auto* n = static_cast<Node*>(b->malloc_block(seg_b, node_b));
  n->key = 42;
  n->next = head_b->next;
  head_b->next = n;
  b->write_unlock(seg_b);

  a->read_lock(seg_a);
  EXPECT_EQ(head->next->key, 42);
  EXPECT_EQ(head->next->next->key, 5);
  a->read_unlock(seg_a);
}

TEST_F(Integration, FreePropagatesToOtherClients) {
  auto a = make_client();
  auto b = make_client();
  const TypeDescriptor* arr =
      a->types().array_of(a->types().primitive(PrimitiveKind::kInt32), 8);

  ClientSegment* seg_a = a->open_segment("host/free");
  a->write_lock(seg_a);
  void* b0 = a->malloc_block(seg_a, arr, "keep");
  void* b1 = a->malloc_block(seg_a, arr, "drop");
  (void)b0;
  a->write_unlock(seg_a);

  ClientSegment* seg_b = b->open_segment("host/free");
  b->read_lock(seg_b);
  EXPECT_NE(seg_b->heap().find_by_name("drop"), nullptr);
  b->read_unlock(seg_b);

  a->write_lock(seg_a);
  a->free_block(seg_a, b1);
  a->write_unlock(seg_a);

  b->read_lock(seg_b);
  EXPECT_EQ(seg_b->heap().find_by_name("drop"), nullptr);
  EXPECT_NE(seg_b->heap().find_by_name("keep"), nullptr);
  b->read_unlock(seg_b);
}

TEST_F(Integration, MallocRequiresWriteLock) {
  auto c = make_client();
  ClientSegment* seg = c->open_segment("host/guard");
  const TypeDescriptor* t = c->types().primitive(PrimitiveKind::kInt32);
  try {
    c->malloc_block(seg, t);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kState);
  }
}

TEST_F(Integration, WriteLockIsExclusiveAcrossClients) {
  auto a = make_client();
  auto b = make_client();
  ClientSegment* seg_a = a->open_segment("host/excl");
  ClientSegment* seg_b = b->open_segment("host/excl");

  a->write_lock(seg_a);
  std::atomic<bool> b_acquired{false};
  std::thread t([&] {
    b->write_lock(seg_b);
    b_acquired = true;
    b->write_unlock(seg_b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(b_acquired.load());
  a->write_unlock(seg_a);
  t.join();
  EXPECT_TRUE(b_acquired.load());
}

TEST_F(Integration, CrossSegmentPointer) {
  auto a = make_client();
  const TypeDescriptor* int_t = a->types().primitive(PrimitiveKind::kInt32);
  const TypeDescriptor* ptr_t = a->types().pointer_to(int_t);

  ClientSegment* data_seg = a->open_segment("host/data-seg");
  a->write_lock(data_seg);
  auto* value = static_cast<int32_t*>(a->malloc_block(data_seg, int_t, "v"));
  *value = 777;
  a->write_unlock(data_seg);

  ClientSegment* ref_seg = a->open_segment("host/ref-seg");
  a->write_lock(ref_seg);
  auto** ref = static_cast<int32_t**>(a->malloc_block(ref_seg, ptr_t, "r"));
  *ref = value;
  a->write_unlock(ref_seg);

  // A second client follows the cross-segment pointer; the data segment is
  // reserved automatically and filled on lock.
  auto b = make_client();
  ClientSegment* ref_b = b->open_segment("host/ref-seg");
  b->read_lock(ref_b);
  auto** ref_ptr = static_cast<int32_t**>(b->mip_to_ptr("host/ref-seg#r#0"));
  ASSERT_NE(ref_ptr, nullptr);
  int32_t* remote_value = *ref_ptr;
  ASSERT_NE(remote_value, nullptr);
  b->read_unlock(ref_b);

  // Data segment was only reserved; lock it to fetch contents.
  ClientSegment* data_b = b->open_segment("host/data-seg", false);
  b->read_lock(data_b);
  EXPECT_EQ(*remote_value, 777);
  b->read_unlock(data_b);
}

TEST_F(Integration, PtrToMipRoundTrip) {
  auto c = make_client();
  const TypeDescriptor* pair = c->types().struct_builder("pair")
      .field("x", c->types().primitive(PrimitiveKind::kInt32))
      .field("y", c->types().primitive(PrimitiveKind::kFloat64))
      .finish();
  ClientSegment* seg = c->open_segment("host/mips");
  c->write_lock(seg);
  auto* p = static_cast<uint8_t*>(c->malloc_block(seg, pair, "p"));
  c->write_unlock(seg);

  EXPECT_EQ(c->ptr_to_mip(p), "host/mips#p#0");
  // Pointer to the second field maps to unit 1.
  EXPECT_EQ(c->ptr_to_mip(p + 8), "host/mips#p#1");
  EXPECT_EQ(c->mip_to_ptr("host/mips#p#1"), p + 8);
  EXPECT_EQ(c->mip_to_ptr(""), nullptr);
  EXPECT_EQ(c->ptr_to_mip(nullptr), "");
  // Serial-based reference also resolves (serial 1 = first block).
  EXPECT_EQ(c->mip_to_ptr("host/mips#1#0"), p);
}

TEST_F(Integration, ManySmallWriteSessions) {
  auto c = make_client();
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt64), 512);
  ClientSegment* seg = c->open_segment("host/sessions");
  c->write_lock(seg);
  auto* data = static_cast<int64_t*>(c->malloc_block(seg, arr));
  c->write_unlock(seg);

  for (int round = 0; round < 20; ++round) {
    c->write_lock(seg);
    data[round * 20] = round + 1;
    c->write_unlock(seg);
  }
  EXPECT_EQ(seg->version(), 22u);

  auto b = make_client();
  ClientSegment* seg_b = b->open_segment("host/sessions");
  b->read_lock(seg_b);
  const auto* d =
      reinterpret_cast<const int64_t*>(seg_b->heap().first_block()->data());
  for (int round = 0; round < 20; ++round) EXPECT_EQ(d[round * 20], round + 1);
  b->read_unlock(seg_b);
}

TEST_F(Integration, StringsInSharedStructs) {
  auto a = make_client();
  const TypeDescriptor* person = a->types().struct_builder("person")
      .field("name", a->types().string_type(32))
      .field("age", a->types().primitive(PrimitiveKind::kInt32))
      .finish();
  ClientSegment* seg = a->open_segment("host/people");
  a->write_lock(seg);
  auto* p = static_cast<char*>(a->malloc_block(seg, person, "alice"));
  std::snprintf(p, 32, "Alice Liddell");
  *reinterpret_cast<int32_t*>(p + 32) = 19;
  a->write_unlock(seg);

  auto b = make_client();
  ClientSegment* seg_b = b->open_segment("host/people");
  b->read_lock(seg_b);
  auto* blk = seg_b->heap().find_by_name("alice");
  ASSERT_NE(blk, nullptr);
  EXPECT_STREQ(reinterpret_cast<const char*>(blk->data()), "Alice Liddell");
  EXPECT_EQ(*reinterpret_cast<const int32_t*>(blk->data() + 32), 19);
  b->read_unlock(seg_b);
}

}  // namespace
}  // namespace iw
