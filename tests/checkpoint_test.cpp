// Server persistence tests: checkpoint to disk, recovery, periodic
// checkpointing, and clients resuming against a recovered server.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>

#include "interweave/interweave.hpp"
#include "server/checkpoint.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

namespace fs = std::filesystem;

class Checkpoint : public ::testing::Test {
 protected:
  Checkpoint() {
    dir_ = fs::temp_directory_path() /
           ("iw-ckpt-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  ~Checkpoint() override { fs::remove_all(dir_); }

  server::SegmentServer::Options server_options() {
    server::SegmentServer::Options options;
    options.checkpoint_dir = dir_.string();
    return options;
  }

  fs::path dir_;
};

TEST_F(Checkpoint, WriteAndRecover) {
  auto options = server_options();
  {
    server::SegmentServer server(options);
    Client c([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    });
    const TypeDescriptor* arr =
        c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 100);
    ClientSegment* seg = c.open_segment("host/persist");
    c.write_lock(seg);
    auto* data = static_cast<int32_t*>(c.malloc_block(seg, arr, "nums"));
    for (int i = 0; i < 100; ++i) data[i] = i * 3;
    c.write_unlock(seg);
    server.checkpoint();
    EXPECT_GE(server.stats().checkpoints_written, 1u);
  }
  ASSERT_FALSE(fs::is_empty(dir_));

  // A new server process recovers the segment and serves it.
  server::SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.segment_version("host/persist"), 2u);

  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(revived);
  });
  ClientSegment* seg = c.open_segment("host/persist", false);
  c.read_lock(seg);
  auto* blk = seg->heap().find_by_name("nums");
  ASSERT_NE(blk, nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(reinterpret_cast<const int32_t*>(blk->data())[i], i * 3);
  }
  c.read_unlock(seg);
}

TEST_F(Checkpoint, PeriodicCheckpointing) {
  auto options = server_options();
  options.checkpoint_every = 2;
  server::SegmentServer server(options);
  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  });
  const TypeDescriptor* arr =
      c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 16);
  ClientSegment* seg = c.open_segment("host/auto");
  c.write_lock(seg);
  auto* data = static_cast<int32_t*>(c.malloc_block(seg, arr));
  c.write_unlock(seg);
  for (int round = 1; round <= 5; ++round) {
    c.write_lock(seg);
    data[0] = round;
    c.write_unlock(seg);
  }
  // 6 versions at every-2 -> 3 checkpoints.
  EXPECT_GE(server.stats().checkpoints_written, 2u);
  ASSERT_FALSE(fs::is_empty(dir_));
}

TEST_F(Checkpoint, RecoveredServerContinuesVersioning) {
  auto options = server_options();
  {
    server::SegmentServer server(options);
    Client c([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    });
    const TypeDescriptor* arr =
        c.types().array_of(c.types().primitive(PrimitiveKind::kInt64), 8);
    ClientSegment* seg = c.open_segment("host/continue");
    c.write_lock(seg);
    c.malloc_block(seg, arr, "x");
    c.write_unlock(seg);
    server.checkpoint();
  }

  server::SegmentServer revived(server_options());
  revived.recover();
  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(revived);
  });
  ClientSegment* seg = c.open_segment("host/continue", false);
  c.write_lock(seg);
  auto* blk = seg->heap().find_by_name("x");
  ASSERT_NE(blk, nullptr);
  reinterpret_cast<int64_t*>(const_cast<uint8_t*>(blk->data()))[0] = 99;
  // New blocks keep getting fresh serials after recovery.
  const TypeDescriptor* arr =
      c.types().array_of(c.types().primitive(PrimitiveKind::kInt64), 8);
  void* nb = c.malloc_block(seg, arr, "y");
  ASSERT_NE(nb, nullptr);
  c.write_unlock(seg);
  EXPECT_EQ(revived.segment_version("host/continue"), 3u);
  EXPECT_NE(client::BlockHeader::from_data(nb)->serial, blk->serial);
}

TEST_F(Checkpoint, ClientAheadOfRecoveredServerResyncs) {
  // Server checkpoints at v2, then advances to v4; after a crash+recovery
  // it is back at v2 while a client cached v4. The client must converge to
  // the recovered state, including blocks that only existed after v2.
  // (Journaling off: with the WAL enabled the "lost" versions would be
  // replayed and the server would come back current — this test is about
  // the degraded path.)
  auto options = server_options();
  options.wal_enabled = false;
  auto server = std::make_unique<server::SegmentServer>(options);
  auto factory = [&](const std::string&) {
    return std::make_shared<InProcChannel>(*server);
  };
  auto c = std::make_unique<Client>(factory);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 32);
  ClientSegment* seg = c->open_segment("host/ahead");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr, "base"));
  data[0] = 1;
  c->write_unlock(seg);      // v2
  server->checkpoint();
  c->write_lock(seg);
  data[0] = 2;
  c->malloc_block(seg, arr, "extra");  // exists only at v3+
  c->write_unlock(seg);      // v3
  ASSERT_EQ(seg->version(), 3u);

  // Crash: new server from the v2 checkpoint. (The old client's channel
  // references the old server; drop it before the server goes away.)
  c.reset();
  server = std::make_unique<server::SegmentServer>(options);
  server->recover();
  ASSERT_EQ(server->segment_version("host/ahead"), 2u);

  // The client's channel factory binds to the (destroyed) old server; make
  // a fresh client with the same cached-state situation via its old copy:
  // simplest honest check — reconnect a new client and verify it converges,
  // then verify an ahead-version read against the new server resyncs.
  Client fresh(
      [&](const std::string&) { return std::make_shared<InProcChannel>(*server); });
  ClientSegment* fseg = fresh.open_segment("host/ahead", false);
  fresh.read_lock(fseg);
  auto* blk = fseg->heap().find_by_name("base");
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(blk->data())[0], 1);
  EXPECT_EQ(fseg->heap().find_by_name("extra"), nullptr);
  fresh.read_unlock(fseg);

  // Simulate the surviving cache: hand-craft an AcquireRead with a version
  // ahead of the server and check we get a full resync rather than an error.
  auto channel = std::make_shared<InProcChannel>(*server);
  Buffer payload;
  payload.append_lp_string("host/ahead");
  payload.append_u32(99);  // far ahead
  payload.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
  payload.append_u64(0);
  Frame resp = channel->call(MsgType::kAcquireRead, std::move(payload));
  BufReader r = resp.reader();
  EXPECT_EQ(r.read_u8(), 1) << "must be an update, not 'recent enough'";
  r.read_u32();  // type count
}

// Shared setup for the corruption regressions: two segments, both
// checkpointed, then one .iwseg damaged by `damage`. recover() must
// quarantine the damaged file, keep the healthy segment, and not throw.
void corrupt_checkpoint_regression(
    const fs::path& dir, server::SegmentServer::Options options,
    const std::function<void(const fs::path&)>& damage) {
  {
    server::SegmentServer server(options);
    Client c([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    });
    const TypeDescriptor* arr =
        c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 64);
    for (const char* name : {"host/victim", "host/healthy"}) {
      ClientSegment* seg = c.open_segment(name);
      c.write_lock(seg);
      auto* data = static_cast<int32_t*>(c.malloc_block(seg, arr, "d"));
      data[0] = 7;
      c.write_unlock(seg);
    }
    server.checkpoint();
  }
  damage(dir / "host%2Fvictim.iwseg");

  server::SegmentServer revived(options);
  revived.recover();  // must not throw
  EXPECT_EQ(revived.stats().checkpoints_quarantined, 1u);
  EXPECT_TRUE(fs::exists(dir / "host%2Fvictim.iwseg.corrupt"));
  EXPECT_FALSE(fs::exists(dir / "host%2Fvictim.iwseg"));
  EXPECT_EQ(revived.segment_version("host/healthy"), 2u);
  // The victim's journal was truncated at checkpoint time, so its data is
  // gone — but the segment comes back empty (at a fresh store's initial
  // version, via the journal's name) rather than wedging the server.
  EXPECT_EQ(revived.segment_version("host/victim"), 1u);

  // The healthy segment still serves correct data.
  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(revived);
  });
  ClientSegment* seg = c.open_segment("host/healthy", false);
  c.read_lock(seg);
  auto* blk = seg->heap().find_by_name("d");
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(blk->data())[0], 7);
  c.read_unlock(seg);
}

TEST_F(Checkpoint, TruncatedCheckpointQuarantined) {
  corrupt_checkpoint_regression(dir_, server_options(), [](const fs::path& p) {
    fs::resize_file(p, fs::file_size(p) / 2);
  });
}

TEST_F(Checkpoint, BitFlippedCheckpointQuarantined) {
  corrupt_checkpoint_regression(dir_, server_options(), [](const fs::path& p) {
    // Flip bits in the name-length field just past the magic: the header no
    // longer parses, which is how structural bit rot presents.
    std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(4);
    f.put(static_cast<char>(0xFF));
  });
}

TEST_F(Checkpoint, CorruptCheckpointSkipped) {
  auto options = server_options();
  fs::create_directories(dir_);
  {
    std::ofstream bad(dir_ / "garbage.iwseg", std::ios::binary);
    bad << "not a checkpoint";
  }
  server::SegmentServer server(options);
  server.recover();  // must not throw
  EXPECT_THROW(server.segment_version("host/anything"), Error);
}

TEST_F(Checkpoint, SegmentNamesAreEscapedInFileNames) {
  auto options = server_options();
  server::SegmentServer server(options);
  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  });
  const TypeDescriptor* t = c.types().primitive(PrimitiveKind::kInt32);
  ClientSegment* seg = c.open_segment("some.host/deep/path/segment");
  c.write_lock(seg);
  c.malloc_block(seg, t);
  c.write_unlock(seg);
  server.checkpoint();

  int snapshots = 0, journals = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().extension() == ".iwseg") {
      ++snapshots;
    } else if (e.path().extension() == ".iwlog") {
      ++journals;
    } else {
      ADD_FAILURE() << "unexpected file " << e.path();
    }
    EXPECT_EQ(e.path().string().find('%') != std::string::npos, true);
  }
  EXPECT_EQ(snapshots, 1);
  EXPECT_EQ(journals, 1);

  server::SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.segment_version("some.host/deep/path/segment"), 2u);
}

// ------------------------------------------- incremental checkpoint chains

TEST_F(Checkpoint, IncrementalCheckpointsFoldOnRecovery) {
  auto options = server_options();
  uint32_t final_version = 0;
  {
    server::SegmentServer server(options);
    Client c([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    });
    const TypeDescriptor* arr =
        c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 64);
    ClientSegment* seg = c.open_segment("host/inc");
    c.write_lock(seg);
    auto* data = static_cast<int32_t*>(c.malloc_block(seg, arr, "d"));
    c.write_unlock(seg);  // v2
    server.checkpoint();  // first checkpoint: always a full snapshot
    for (int round = 1; round <= 3; ++round) {
      c.write_lock(seg);
      data[round] = round * 11;
      c.write_unlock(seg);
      server.checkpoint();  // delta record, journal truncated each time
    }
    // One more commit lives only in the journal — the crash window between
    // incremental checkpoint writes.
    c.write_lock(seg);
    data[10] = 77;
    c.write_unlock(seg);
    final_version = seg->version();
    EXPECT_EQ(server.stats().checkpoints_incremental, 3u);
    EXPECT_EQ(server.stats().checkpoints_written, 4u);
  }
  ASSERT_TRUE(fs::exists(dir_ / "host%2Finc.iwinc"));

  server::SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.segment_version("host/inc"), final_version);
  EXPECT_EQ(revived.stats().checkpoint_chain_folds, 3u);
  EXPECT_EQ(revived.stats().checkpoints_quarantined, 0u);
  EXPECT_GT(revived.stats().wal_replayed_records, 0u);

  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(revived);
  });
  ClientSegment* seg = c.open_segment("host/inc", false);
  c.read_lock(seg);
  auto* blk = seg->heap().find_by_name("d");
  ASSERT_NE(blk, nullptr);
  const auto* data = reinterpret_cast<const int32_t*>(blk->data());
  for (int round = 1; round <= 3; ++round) EXPECT_EQ(data[round], round * 11);
  EXPECT_EQ(data[10], 77);
  c.read_unlock(seg);
}

TEST_F(Checkpoint, FullRewriteBoundsTheChain) {
  auto options = server_options();
  options.checkpoint_chain_limit = 2;
  server::SegmentServer server(options);
  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  });
  const TypeDescriptor* arr =
      c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 16);
  ClientSegment* seg = c.open_segment("host/bound");
  c.write_lock(seg);
  auto* data = static_cast<int32_t*>(c.malloc_block(seg, arr, "d"));
  c.write_unlock(seg);
  server.checkpoint();  // full
  const fs::path chain = dir_ / "host%2Fbound.iwinc";
  for (int round = 1; round <= 2; ++round) {
    c.write_lock(seg);
    data[0] = round;
    c.write_unlock(seg);
    server.checkpoint();  // delta records while under the limit
  }
  ASSERT_TRUE(fs::exists(chain));
  EXPECT_EQ(server.stats().checkpoints_incremental, 2u);
  c.write_lock(seg);
  data[0] = 3;
  c.write_unlock(seg);
  server.checkpoint();  // limit hit: full rewrite deletes the chain
  EXPECT_FALSE(fs::exists(chain));
  EXPECT_EQ(server.stats().checkpoints_incremental, 2u);

  server::SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.stats().checkpoint_chain_folds, 0u);
  EXPECT_EQ(revived.segment_version("host/bound"), 5u);
}

TEST_F(Checkpoint, CorruptMidChainRecordFallsBackToLastGoodFold) {
  auto options = server_options();
  uint32_t good_version = 0;
  {
    server::SegmentServer server(options);
    Client c([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    });
    const TypeDescriptor* arr =
        c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 32);
    ClientSegment* seg = c.open_segment("host/midrot");
    c.write_lock(seg);
    auto* data = static_cast<int32_t*>(c.malloc_block(seg, arr, "d"));
    c.write_unlock(seg);
    server.checkpoint();  // full snapshot
    for (int round = 1; round <= 3; ++round) {
      c.write_lock(seg);
      data[0] = round * 100;
      c.write_unlock(seg);
      server.checkpoint();
      if (round == 1) good_version = seg->version();
    }
  }
  const fs::path chain = dir_ / "host%2Fmidrot.iwinc";
  ASSERT_TRUE(fs::exists(chain));

  // Flip a byte inside the *second* delta record's payload. Record sizes
  // come from the scanner itself, so the test stays valid if framing grows.
  auto scan = server::scan_chain(chain.string());
  ASSERT_EQ(scan.records.size(), 3u);
  {
    std::fstream f(chain, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(8 + scan.records[0].stored_bytes + 12));
    f.put(static_cast<char>(0xFF));
  }

  server::SegmentServer revived(server_options());
  revived.recover();  // must not throw
  // The good prefix folded; the damaged tail is quarantined; the journal
  // (truncated at the last checkpoint) has nothing to add — recovery lands
  // on the last good fold.
  EXPECT_EQ(revived.stats().checkpoints_quarantined, 1u);
  EXPECT_EQ(revived.stats().checkpoint_chain_folds, 1u);
  EXPECT_TRUE(fs::exists(dir_ / "host%2Fmidrot.iwinc.corrupt"));
  EXPECT_FALSE(fs::exists(chain));
  EXPECT_EQ(revived.segment_version("host/midrot"), good_version);

  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(revived);
  });
  ClientSegment* seg = c.open_segment("host/midrot", false);
  c.read_lock(seg);
  auto* blk = seg->heap().find_by_name("d");
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(blk->data())[0], 100);
  c.read_unlock(seg);
}

TEST_F(Checkpoint, FoldedChainPreservesFreesForMidWindowClients) {
  // A block created *and* freed between two incremental checkpoints leaves
  // no trace in the window's diff — but a client whose cached version lies
  // inside the window saw the creation, so the recovered server must still
  // tell it about the free. The chain's fold-history tables carry exactly
  // this.
  auto options = server_options();
  uint32_t mid_version = 0;
  uint32_t victim_serial = 0;
  {
    server::SegmentServer server(options);
    Client c([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    });
    const TypeDescriptor* arr =
        c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 16);
    ClientSegment* seg = c.open_segment("host/ghost");
    c.write_lock(seg);
    c.malloc_block(seg, arr, "keep");
    c.write_unlock(seg);  // v2
    server.checkpoint();  // full snapshot, base v2
    c.write_lock(seg);
    void* victim = c.malloc_block(seg, arr, "victim");
    victim_serial = client::BlockHeader::from_data(victim)->serial;
    c.write_unlock(seg);  // v3 — a client could have cached this
    mid_version = seg->version();
    c.write_lock(seg);
    c.free_block(seg, static_cast<uint8_t*>(victim));
    c.write_unlock(seg);  // v4
    server.checkpoint();  // delta v2 -> v4: create+free pair, empty diff
  }

  server::SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.stats().checkpoints_quarantined, 0u);
  EXPECT_EQ(revived.segment_version("host/ghost"), mid_version + 1);

  // A surviving cache at the mid-window version asks for an update: the
  // response diff must free the victim block.
  InProcChannel channel(revived);
  Buffer payload;
  payload.append_lp_string("host/ghost");
  payload.append_u32(mid_version);
  payload.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
  payload.append_u64(0);
  Frame resp = channel.call(MsgType::kAcquireRead, std::move(payload));
  BufReader r = resp.reader();
  ASSERT_EQ(r.read_u8(), 1) << "must be an update, not 'recent enough'";
  uint32_t n_types = r.read_u32();
  for (uint32_t i = 0; i < n_types; ++i) {
    r.read_u32();
    uint32_t len = r.read_u32();
    r.read_bytes(len);
  }
  DiffReader reader(r);
  DiffEntry entry;
  bool freed = false;
  while (reader.next(&entry)) {
    if ((entry.flags & diff_flags::kFree) != 0 &&
        entry.serial == victim_serial) {
      freed = true;
    }
  }
  EXPECT_TRUE(freed) << "recovered server lost the mid-window free";
}

}  // namespace
}  // namespace iw
