// Frame-level protocol tests against SegmentServer: every message type's
// success and failure paths, independent of the client library.
#include <gtest/gtest.h>

#include "net/inproc.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "wire/coherence.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

class Protocol : public ::testing::Test {
 protected:
  Frame call(InProcChannel& ch, MsgType type,
             const std::function<void(Buffer&)>& fill) {
    Buffer payload;
    fill(payload);
    return ch.call(type, std::move(payload));
  }

  ErrorCode call_expect_error(InProcChannel& ch, MsgType type,
                              const std::function<void(Buffer&)>& fill) {
    try {
      call(ch, type, fill);
    } catch (const Error& e) {
      return e.code();
    }
    ADD_FAILURE() << "expected error";
    return ErrorCode::kInternal;
  }

  void open(InProcChannel& ch, const std::string& name) {
    call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
      p.append_lp_string(name);
      p.append_u8(1);
    });
  }

  uint32_t register_int_array(InProcChannel& ch, const std::string& seg,
                              uint32_t n) {
    TypeRegistry scratch(Platform::native().rules);
    Frame resp = call(ch, MsgType::kRegisterType, [&](Buffer& p) {
      p.append_lp_string(seg);
      TypeCodec::encode_graph(
          scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), n), p);
    });
    BufReader r = resp.reader();
    return r.read_u32();
  }

  server::SegmentServer server_;
};

TEST_F(Protocol, PingPong) {
  InProcChannel ch(server_);
  Frame resp = call(ch, MsgType::kPing, [](Buffer&) {});
  EXPECT_EQ(resp.type, MsgType::kPingResp);
}

TEST_F(Protocol, OpenCreatesOnce) {
  InProcChannel ch(server_);
  open(ch, "p/seg");
  Frame resp = call(ch, MsgType::kOpenSegment, [](Buffer& p) {
    p.append_lp_string("p/seg");
    p.append_u8(0);  // no create; must already exist
  });
  BufReader r = resp.reader();
  EXPECT_EQ(r.read_u32(), 1u);  // version
  EXPECT_EQ(r.read_u32(), 1u);  // next serial
}

TEST_F(Protocol, RegisterTypeDedupsAcrossSessions) {
  InProcChannel a(server_);
  InProcChannel b(server_);
  open(a, "p/types");
  EXPECT_EQ(register_int_array(a, "p/types", 10), 1u);
  EXPECT_EQ(register_int_array(b, "p/types", 10), 1u);
  EXPECT_EQ(register_int_array(b, "p/types", 20), 2u);
}

TEST_F(Protocol, RegisterTypeOnMissingSegmentFails) {
  InProcChannel ch(server_);
  EXPECT_EQ(call_expect_error(ch, MsgType::kRegisterType, [&](Buffer& p) {
    p.append_lp_string("p/nope");
    TypeRegistry scratch(Platform::native().rules);
    TypeCodec::encode_graph(scratch.primitive(PrimitiveKind::kInt32), p);
  }), ErrorCode::kNotFound);
}

TEST_F(Protocol, ReleaseWithoutAcquireFails) {
  InProcChannel ch(server_);
  open(ch, "p/lock");
  EXPECT_EQ(call_expect_error(ch, MsgType::kReleaseWrite, [](Buffer& p) {
    p.append_lp_string("p/lock");
    DiffWriter(p, 1, 1).finish();
  }), ErrorCode::kState);
}

TEST_F(Protocol, DoubleAcquireBySameSessionFails) {
  InProcChannel ch(server_);
  open(ch, "p/dbl");
  call(ch, MsgType::kAcquireWrite, [](Buffer& p) {
    p.append_lp_string("p/dbl");
    p.append_u32(0);
  });
  EXPECT_EQ(call_expect_error(ch, MsgType::kAcquireWrite, [](Buffer& p) {
    p.append_lp_string("p/dbl");
    p.append_u32(0);
  }), ErrorCode::kState);
}

TEST_F(Protocol, WriteLockFlowWithRealDiff) {
  InProcChannel ch(server_);
  open(ch, "p/flow");
  uint32_t type_serial = register_int_array(ch, "p/flow", 8);

  Frame acq = call(ch, MsgType::kAcquireWrite, [](Buffer& p) {
    p.append_lp_string("p/flow");
    p.append_u32(0);
  });
  BufReader ar = acq.reader();
  uint32_t next_serial = ar.read_u32();
  EXPECT_EQ(next_serial, 1u);

  Frame rel = call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
    p.append_lp_string("p/flow");
    DiffWriter w(p, 1, 2);
    w.begin_block(next_serial, diff_flags::kNew | diff_flags::kWhole,
                  type_serial, "blk");
    w.begin_run(0, 8);
    for (int i = 0; i < 8; ++i) p.append_u32(i * 11);
    w.end_block();
    w.finish();
  });
  BufReader rr = rel.reader();
  EXPECT_EQ(rr.read_u32(), 2u);  // new version

  // A fresh read from version 0 returns the block and the type.
  Frame read = call(ch, MsgType::kAcquireRead, [](Buffer& p) {
    p.append_lp_string("p/flow");
    p.append_u32(0);
    p.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
    p.append_u64(0);
  });
  BufReader r = read.reader();
  EXPECT_EQ(r.read_u8(), 1);
  uint32_t n_types = r.read_u32();
  EXPECT_EQ(n_types, 0u) << "this session already knows the type";
  BufReader diff_r = r;
  DiffReader dr(diff_r);
  EXPECT_EQ(dr.to_version(), 2u);
  DiffEntry e;
  ASSERT_TRUE(dr.next(&e));
  EXPECT_TRUE(e.flags & diff_flags::kNew);
  EXPECT_EQ(e.name, "blk");
}

TEST_F(Protocol, SecondSessionGetsTypeDefinitions) {
  InProcChannel a(server_);
  InProcChannel b(server_);
  open(a, "p/tsync");
  uint32_t type_serial = register_int_array(a, "p/tsync", 4);
  call(a, MsgType::kAcquireWrite, [](Buffer& p) {
    p.append_lp_string("p/tsync");
    p.append_u32(0);
  });
  call(a, MsgType::kReleaseWrite, [&](Buffer& p) {
    p.append_lp_string("p/tsync");
    DiffWriter w(p, 1, 2);
    w.begin_block(1, diff_flags::kNew | diff_flags::kWhole, type_serial, "");
    w.begin_run(0, 4);
    for (int i = 0; i < 4; ++i) p.append_u32(i);
    w.end_block();
    w.finish();
  });

  open(b, "p/tsync");
  Frame read = call(b, MsgType::kAcquireRead, [](Buffer& p) {
    p.append_lp_string("p/tsync");
    p.append_u32(0);
    p.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
    p.append_u64(0);
  });
  BufReader r = read.reader();
  EXPECT_EQ(r.read_u8(), 1);
  uint32_t n_types = r.read_u32();
  ASSERT_EQ(n_types, 1u) << "b has never seen the type";
  EXPECT_EQ(r.read_u32(), type_serial);
}

TEST_F(Protocol, SubscribeAndNotify) {
  InProcChannel writer(server_);
  InProcChannel watcher(server_);
  open(writer, "p/watch");
  uint32_t type_serial = register_int_array(writer, "p/watch", 4);

  std::vector<std::pair<std::string, uint32_t>> notes;
  watcher.set_notify_handler([&](const Frame& f) {
    if (f.type != MsgType::kNotifyVersion) return;
    BufReader r = f.reader();
    std::string seg = r.read_lp_string();
    notes.emplace_back(seg, r.read_u32());
  });
  open(watcher, "p/watch");
  call(watcher, MsgType::kSubscribe, [](Buffer& p) {
    p.append_lp_string("p/watch");
  });

  call(writer, MsgType::kAcquireWrite, [](Buffer& p) {
    p.append_lp_string("p/watch");
    p.append_u32(0);
  });
  call(writer, MsgType::kReleaseWrite, [&](Buffer& p) {
    p.append_lp_string("p/watch");
    DiffWriter w(p, 1, 2);
    w.begin_block(1, diff_flags::kNew | diff_flags::kWhole, type_serial, "");
    w.begin_run(0, 4);
    for (int i = 0; i < 4; ++i) p.append_u32(i);
    w.end_block();
    w.finish();
  });
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].first, "p/watch");
  EXPECT_EQ(notes[0].second, 2u);
}

TEST_F(Protocol, DisconnectReleasesWriterLock) {
  auto holder = std::make_unique<InProcChannel>(server_);
  open(*holder, "p/orphan");
  call(*holder, MsgType::kAcquireWrite, [](Buffer& p) {
    p.append_lp_string("p/orphan");
    p.append_u32(0);
  });
  holder.reset();  // disconnect while holding the lock

  InProcChannel other(server_);
  Frame resp = call(other, MsgType::kAcquireWrite, [](Buffer& p) {
    p.append_lp_string("p/orphan");
    p.append_u32(0);
  });
  EXPECT_EQ(resp.type, MsgType::kAcquireWriteResp);
}

TEST_F(Protocol, DeltaCoherenceAnsweredServerSide) {
  InProcChannel writer(server_);
  InProcChannel reader(server_);
  open(writer, "p/delta");
  uint32_t type_serial = register_int_array(writer, "p/delta", 4);
  auto write_once = [&](uint32_t base) {
    call(writer, MsgType::kAcquireWrite, [](Buffer& p) {
      p.append_lp_string("p/delta");
      p.append_u32(0);
    });
    call(writer, MsgType::kReleaseWrite, [&](Buffer& p) {
      p.append_lp_string("p/delta");
      DiffWriter w(p, base, base + 1);
      if (base == 1) {
        w.begin_block(1, diff_flags::kNew | diff_flags::kWhole, type_serial, "");
      } else {
        w.begin_block(1, 0);
      }
      w.begin_run(0, 1);
      p.append_u32(base);
      w.end_block();
      w.finish();
    });
  };
  write_once(1);  // v2
  // Reader syncs to v2.
  open(reader, "p/delta");
  call(reader, MsgType::kAcquireRead, [](Buffer& p) {
    p.append_lp_string("p/delta");
    p.append_u32(0);
    p.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
    p.append_u64(0);
  });
  write_once(2);  // v3
  // Delta-2 read at v2: one behind, "recent enough".
  Frame resp = call(reader, MsgType::kAcquireRead, [](Buffer& p) {
    p.append_lp_string("p/delta");
    p.append_u32(2);
    p.append_u8(static_cast<uint8_t>(CoherenceModel::kDelta));
    p.append_u64(2);
  });
  BufReader r = resp.reader();
  EXPECT_EQ(r.read_u8(), 0);
}

}  // namespace
}  // namespace iw
