// Durability tests for the per-segment write-ahead log.
//
// Three layers:
//  1. WalLog — unit tests of the record format: round trip, torn-tail
//     truncation, corruption stopping replay, checkpoint truncation.
//  2. WalRecovery — whole-server recovery composition: journal-only
//     recovery, snapshot+tail replay, the crash window between a
//     checkpoint landing and its journal truncate, and the stats surface.
//  3. CrashMatrix — the real thing: fork a SegmentServer, let a seeded
//     WalCrashSchedule SIGKILL it at an exact point inside an append
//     (short header / mid-record / before sync), restart in the parent,
//     and assert every acknowledged version is recovered and a fresh
//     client converges byte-identically with a fault-free oracle. The
//     matrix crosses every crash point with every sync policy; under
//     SIGKILL (process death, page cache intact) acknowledged commits
//     must survive under *all* policies, which subsumes the sync=commit
//     guarantee.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "interweave/interweave.hpp"
#include "server/wal.hpp"
#include "wire/payload.hpp"

namespace iw {
namespace {

namespace fs = std::filesystem;
using server::SegmentServer;
using server::WalRecordType;
using server::WriteAheadLog;

std::vector<uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

fs::path fresh_dir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-wal-" + std::to_string(::getpid()) + "-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- layer 1: the log itself ---

class WalLog : public ::testing::Test {
 protected:
  WalLog() : dir_(fresh_dir(
      ::testing::UnitTest::GetInstance()->current_test_info()->name())) {}
  ~WalLog() override { fs::remove_all(dir_); }

  std::string log_path() const { return (dir_ / "seg.iwlog").string(); }

  fs::path dir_;
};

TEST_F(WalLog, MissingFileIsNotAnError) {
  auto replay = WriteAheadLog::replay(log_path());
  EXPECT_TRUE(replay.missing);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_TRUE(replay.records.empty());
}

TEST_F(WalLog, AppendAndReplayRoundTrip) {
  std::vector<uint8_t> head = bytes_of("HEAD");
  std::vector<uint8_t> body = bytes_of("the diff body");
  {
    WriteAheadLog wal(log_path(), {});
    wal.append(WalRecordType::kSegmentCreate, bytes_of("host/a"));
    wal.append(WalRecordType::kCommit, head, body);
    wal.append(WalRecordType::kSegmentDestroy, {});
  }
  auto replay = WriteAheadLog::replay(log_path());
  ASSERT_FALSE(replay.missing);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].type, WalRecordType::kSegmentCreate);
  EXPECT_EQ(replay.records[0].payload, bytes_of("host/a"));
  EXPECT_EQ(replay.records[1].type, WalRecordType::kCommit);
  EXPECT_EQ(replay.records[1].payload, bytes_of("HEADthe diff body"));
  EXPECT_EQ(replay.records[2].type, WalRecordType::kSegmentDestroy);
  EXPECT_TRUE(replay.records[2].payload.empty());
  // end_offsets are increasing and the last one covers the whole file.
  EXPECT_GT(replay.records[0].end_offset, WriteAheadLog::kHeaderSize);
  EXPECT_LT(replay.records[0].end_offset, replay.records[1].end_offset);
  EXPECT_EQ(replay.records[2].end_offset, replay.valid_bytes);
  EXPECT_EQ(replay.valid_bytes, fs::file_size(log_path()));
}

TEST_F(WalLog, MixedFormatJournalReplaysBothEncodings) {
  // A journal written partly before compression existed and partly after:
  // replay sniffs the tag flag per record and hands back raw payloads
  // either way, so old, new, and mixed journals all replay unchanged.
  std::vector<uint8_t> head = bytes_of("HEAD");
  std::vector<uint8_t> body(1024, 0x42);  // compressible
  {
    WriteAheadLog wal(log_path(), {});
    wal.append(WalRecordType::kCommit, head, body);  // pre-compression form
    Buffer packed;
    ASSERT_TRUE(compress_record_payload(head, body, packed));
    wal.append(WalRecordType::kCommit, packed.span(), {}, true);
    wal.append(WalRecordType::kCommit, head, body);  // raw again
  }
  auto replay = WriteAheadLog::replay(log_path());
  ASSERT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  std::vector<uint8_t> want(head);
  want.insert(want.end(), body.begin(), body.end());
  for (const auto& rec : replay.records) {
    EXPECT_EQ(rec.type, WalRecordType::kCommit);
    EXPECT_EQ(rec.payload, want);
  }
  EXPECT_FALSE(replay.records[0].compressed);
  EXPECT_TRUE(replay.records[1].compressed);
  EXPECT_FALSE(replay.records[2].compressed);
  // The compressed record actually paid less for the same raw bytes.
  EXPECT_LT(replay.records[1].stored_bytes, replay.records[0].stored_bytes);
}

TEST_F(WalLog, TornTailIsDetectedAndTruncatedOnReopen) {
  {
    WriteAheadLog wal(log_path(), {});
    wal.append(WalRecordType::kCommit, bytes_of("first"));
  }
  uint64_t clean_size = fs::file_size(log_path());
  {
    // A crash mid-append: a plausible record header promising more bytes
    // than the file holds.
    std::ofstream f(log_path(), std::ios::binary | std::ios::app);
    const uint8_t torn[] = {0, 0, 1, 0, 0xde, 0xad, 0xbe, 0xef, 3, 'x'};
    f.write(reinterpret_cast<const char*>(torn), sizeof torn);
  }
  auto replay = WriteAheadLog::replay(log_path());
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.valid_bytes, clean_size);
  EXPECT_EQ(replay.truncated_bytes, 10u);  // the torn append, byte for byte

  // Reopening at the valid prefix drops the torn bytes; appends continue on
  // a clean boundary.
  {
    WriteAheadLog wal(log_path(), {}, replay.valid_bytes);
    wal.append(WalRecordType::kCommit, bytes_of("second"));
  }
  auto again = WriteAheadLog::replay(log_path());
  EXPECT_FALSE(again.torn_tail);
  ASSERT_EQ(again.records.size(), 2u);
  EXPECT_EQ(again.records[0].payload, bytes_of("first"));
  EXPECT_EQ(again.records[1].payload, bytes_of("second"));
}

TEST_F(WalLog, CorruptionStopsReplayAtLastGoodRecord) {
  {
    WriteAheadLog wal(log_path(), {});
    wal.append(WalRecordType::kCommit, bytes_of("aaaa"));
    wal.append(WalRecordType::kCommit, bytes_of("bbbb"));
    wal.append(WalRecordType::kCommit, bytes_of("cccc"));
  }
  auto clean = WriteAheadLog::replay(log_path());
  ASSERT_EQ(clean.records.size(), 3u);
  {
    // Flip one byte inside the second record's body: its CRC no longer
    // matches, and — record boundaries being untrustworthy past that
    // point — the third record must not be surfaced either.
    std::fstream f(log_path(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(clean.records[1].end_offset - 1));
    f.put('Z');
  }
  auto replay = WriteAheadLog::replay(log_path());
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, bytes_of("aaaa"));
  EXPECT_EQ(replay.valid_bytes, replay.records[0].end_offset);
}

TEST_F(WalLog, GarbageFileReplaysAsEmpty) {
  {
    std::ofstream f(log_path(), std::ios::binary);
    f << "not a write-ahead log at all";
  }
  auto replay = WriteAheadLog::replay(log_path());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, 0u);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.truncated_bytes, fs::file_size(log_path()));
}

TEST_F(WalLog, TruncateAfterCheckpointDiscardsRecords) {
  server::WalCounters counters;
  WriteAheadLog::Options opts;
  opts.counters = &counters;
  WriteAheadLog wal(log_path(), opts);
  wal.append(WalRecordType::kCommit, bytes_of("superseded"));
  wal.truncate_after_checkpoint();
  EXPECT_EQ(fs::file_size(log_path()), WriteAheadLog::kHeaderSize);
  wal.append(WalRecordType::kCommit, bytes_of("fresh"));
  auto replay = WriteAheadLog::replay(log_path());
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, bytes_of("fresh"));
  EXPECT_EQ(counters.records_appended.load(), 2u);
  EXPECT_GT(counters.fsyncs.load(), 0u);
}

TEST_F(WalLog, SyncPolicyDrivesFsyncCount) {
  server::WalCounters per_commit, none;
  {
    WriteAheadLog::Options opts;
    opts.sync = WriteAheadLog::Sync::kCommit;
    opts.counters = &per_commit;
    WriteAheadLog wal(log_path(), opts);
    for (int i = 0; i < 5; ++i) {
      wal.append(WalRecordType::kCommit, bytes_of("x"));
    }
  }
  {
    WriteAheadLog::Options opts;
    opts.sync = WriteAheadLog::Sync::kNone;
    opts.counters = &none;
    WriteAheadLog wal((dir_ / "none.iwlog").string(), opts);
    for (int i = 0; i < 5; ++i) {
      wal.append(WalRecordType::kCommit, bytes_of("x"));
    }
  }
  // One header flush plus one per append vs. the header flush alone.
  EXPECT_EQ(per_commit.fsyncs.load(), 6u);
  EXPECT_EQ(none.fsyncs.load(), 1u);
}

// --- layer 2: whole-server recovery composition ---

constexpr uint32_t kUnits = 64;
const char* const kSegName = "host/durable";

int32_t workload_value(int step) {
  return static_cast<int32_t>(step) * 26'539 + 11;
}

/// Applies `steps` committed writes through a fresh client; every step s
/// sets slot s % kUnits to workload_value(s), so the array state after any
/// prefix of steps is computable without the server.
void run_commits(SegmentServer& server, int first_step, int steps,
                 std::function<void(uint32_t)> on_ack = {}) {
  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  });
  const TypeDescriptor* arr =
      c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), kUnits);
  ClientSegment* seg = c.open_segment(kSegName);
  c.write_lock(seg);
  client::BlockHeader* blk = seg->heap().find_by_name("d");
  int32_t* data;
  if (blk == nullptr) {
    data = static_cast<int32_t*>(c.malloc_block(seg, arr, "d"));
    for (uint32_t u = 0; u < kUnits; ++u) data[u] = 0;
  } else {
    data = reinterpret_cast<int32_t*>(const_cast<uint8_t*>(blk->data()));
  }
  c.write_unlock(seg);
  if (on_ack) on_ack(seg->version());
  for (int s = first_step; s < first_step + steps; ++s) {
    c.write_lock(seg);
    data[static_cast<uint32_t>(s) % kUnits] = workload_value(s);
    c.write_unlock(seg);
    if (on_ack) on_ack(seg->version());
  }
}

/// Expected array contents after the first `steps` workload steps.
std::vector<int32_t> expected_after(int steps) {
  std::vector<int32_t> v(kUnits, 0);
  for (int s = 1; s <= steps; ++s) {
    v[static_cast<uint32_t>(s) % kUnits] = workload_value(s);
  }
  return v;
}

/// Reads the block back through a fresh client and compares it word for
/// word against the oracle for `steps` completed steps.
void expect_converged(SegmentServer& server, int steps) {
  Client c([&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  });
  ClientSegment* seg = c.open_segment(kSegName, false);
  c.read_lock(seg);
  client::BlockHeader* blk = seg->heap().find_by_name("d");
  ASSERT_NE(blk, nullptr);
  const auto* data = reinterpret_cast<const int32_t*>(blk->data());
  std::vector<int32_t> expect = expected_after(steps);
  for (uint32_t u = 0; u < kUnits; ++u) {
    ASSERT_EQ(data[u], expect[u]) << "slot " << u << " after " << steps
                                  << " steps";
  }
  c.read_unlock(seg);
}

class WalRecovery : public ::testing::Test {
 protected:
  WalRecovery() : dir_(fresh_dir(
      ::testing::UnitTest::GetInstance()->current_test_info()->name())) {}
  ~WalRecovery() override { fs::remove_all(dir_); }

  SegmentServer::Options server_options(
      WriteAheadLog::Sync sync = WriteAheadLog::Sync::kBatch) {
    SegmentServer::Options o;
    o.checkpoint_dir = dir_.string();
    o.wal_sync = sync;
    return o;
  }

  fs::path dir_;
};

TEST_F(WalRecovery, JournalAloneRecoversUncheckpointedCommits) {
  uint32_t final_version = 0;
  {
    SegmentServer server(server_options());
    run_commits(server, 1, 10);
    final_version = server.segment_version(kSegName);
    EXPECT_GT(server.stats().wal_records_appended, 10u);
    EXPECT_GT(server.stats().wal_bytes_appended, 0u);
    // No checkpoint was ever written.
    EXPECT_EQ(server.stats().checkpoints_written, 0u);
  }
  SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.segment_version(kSegName), final_version);
  EXPECT_GT(revived.stats().wal_replayed_records, 0u);
  EXPECT_EQ(revived.stats().recoveries_completed, 1u);
  expect_converged(revived, 10);
}

TEST_F(WalRecovery, SnapshotPlusJournalTailComposes) {
  uint32_t final_version = 0;
  {
    SegmentServer server(server_options());
    run_commits(server, 1, 6);
    server.checkpoint();  // snapshot at step 6; journal truncated
    run_commits(server, 7, 5);  // journal holds only the tail
    final_version = server.segment_version(kSegName);
  }
  SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.segment_version(kSegName), final_version);
  expect_converged(revived, 11);
}

TEST_F(WalRecovery, CrashBetweenCheckpointAndTruncateIsIdempotent) {
  // The checkpoint's rename and the journal truncate are two steps; a crash
  // between them leaves a snapshot *and* a journal that both contain the
  // same commits. Replay must skip the overlap, not double-apply it.
  uint32_t final_version = 0;
  std::vector<char> journal_before;
  {
    SegmentServer server(server_options());
    run_commits(server, 1, 8);
    // Capture the journal as it stands before the checkpoint truncates it.
    std::ifstream f(dir_ / "host%2Fdurable.iwlog", std::ios::binary);
    journal_before.assign(std::istreambuf_iterator<char>(f),
                          std::istreambuf_iterator<char>());
    server.checkpoint();
    final_version = server.segment_version(kSegName);
  }
  // Reinstate the pre-truncate journal: the on-disk state of a crash in the
  // window.
  {
    std::ofstream f(dir_ / "host%2Fdurable.iwlog",
                    std::ios::binary | std::ios::trunc);
    f.write(journal_before.data(),
            static_cast<std::streamsize>(journal_before.size()));
  }
  SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.segment_version(kSegName), final_version);
  expect_converged(revived, 8);
}

TEST_F(WalRecovery, TornJournalTailRecoversCleanly) {
  uint32_t final_version = 0;
  {
    SegmentServer server(server_options());
    run_commits(server, 1, 5);
    final_version = server.segment_version(kSegName);
  }
  {
    // Garbage after the last record — a torn append.
    std::ofstream f(dir_ / "host%2Fdurable.iwlog",
                    std::ios::binary | std::ios::app);
    const uint8_t torn[] = {0, 0, 0, 9, 1, 2, 3};
    f.write(reinterpret_cast<const char*>(torn), sizeof torn);
  }
  SegmentServer revived(server_options());
  revived.recover();  // must not throw
  EXPECT_EQ(revived.segment_version(kSegName), final_version);
  // The cost of the crash is visible: exactly the 7 torn bytes were cut.
  EXPECT_EQ(revived.stats().wal_truncated_bytes, 7u);
  expect_converged(revived, 5);
  // The reopened journal dropped the torn bytes: the revived server can
  // keep committing and recover again.
  run_commits(revived, 6, 3);
  SegmentServer third(server_options());
  third.recover();
  EXPECT_EQ(third.segment_version(kSegName), final_version + 3);
  expect_converged(third, 8);
}

TEST_F(WalRecovery, MixedFormatJournalAcrossCompressionToggle) {
  // A pre-compression server incarnation journals raw commits; a later
  // incarnation with compression on appends compressed ones to the same
  // file. A third recovers through the mixed journal byte-identically.
  uint32_t final_version = 0;
  {
    auto opts = server_options();
    opts.compress_payloads = false;
    SegmentServer server(opts);
    run_commits(server, 1, 5);
  }
  {
    auto opts = server_options();
    opts.compress_payloads = true;
    SegmentServer server(opts);
    server.recover();
    run_commits(server, 6, 5);
    final_version = server.segment_version(kSegName);
  }
  SegmentServer revived(server_options());
  revived.recover();
  EXPECT_EQ(revived.segment_version(kSegName), final_version);
  EXPECT_EQ(revived.stats().checkpoints_quarantined, 0u);
  expect_converged(revived, 10);
}

TEST_F(WalRecovery, QuarantinedCheckpointStopsReplayAtVersionGap) {
  // Checkpoint at step 4 (journal truncated), then more commits. Destroy
  // the snapshot: the journal tail's base version is now missing, so replay
  // must stop cleanly at the gap instead of corrupting the store.
  {
    SegmentServer server(server_options());
    run_commits(server, 1, 4);
    server.checkpoint();
    run_commits(server, 5, 3);
  }
  {
    std::ofstream f(dir_ / "host%2Fdurable.iwseg",
                    std::ios::binary | std::ios::trunc);
    f << "zapped";
  }
  SegmentServer revived(server_options());
  revived.recover();  // must not throw
  EXPECT_EQ(revived.stats().checkpoints_quarantined, 1u);
  // The segment exists (its journal names it) but the tail could not be
  // applied onto a fresh store: it is back at the initial version.
  EXPECT_EQ(revived.segment_version(kSegName), 1u);
}

TEST_F(WalRecovery, StatsSurfaceCounts) {
  SegmentServer::Options opts = server_options(WriteAheadLog::Sync::kCommit);
  {
    SegmentServer server(opts);
    run_commits(server, 1, 4);
    SegmentServer::Stats s = server.stats();
    // create + type + 5 commits (malloc step + 4 workload steps).
    EXPECT_EQ(s.wal_records_appended, 7u);
    EXPECT_GT(s.wal_bytes_appended, 0u);
    // Header flush + one fdatasync per append under kCommit.
    EXPECT_GE(s.wal_fsyncs, s.wal_records_appended);
    EXPECT_EQ(s.wal_replayed_records, 0u);
    EXPECT_EQ(s.recoveries_completed, 0u);
  }
  SegmentServer revived(opts);
  revived.recover();
  SegmentServer::Stats s = revived.stats();
  EXPECT_EQ(s.wal_replayed_records, 7u);
  EXPECT_EQ(s.recoveries_completed, 1u);
  EXPECT_EQ(s.checkpoints_quarantined, 0u);
}

TEST_F(WalRecovery, DisabledWalWritesNoJournal) {
  SegmentServer::Options opts = server_options();
  opts.wal_enabled = false;
  SegmentServer server(opts);
  run_commits(server, 1, 3);
  EXPECT_EQ(server.stats().wal_records_appended, 0u);
  EXPECT_FALSE(fs::exists(dir_ / "host%2Fdurable.iwlog"));
}

/// Minimal restartable-core proxy (the chaos test has the full-featured
/// one): lets a client's channels outlive a server swap, failing requests
/// from sessions of the dead incarnation like a reset connection.
class SwappableCore final : public ServerCore {
 public:
  void set(SegmentServer* server) {
    std::lock_guard lock(mu_);
    server_ = server;
    known_.clear();
  }
  void on_connect(SessionId session, Notifier notify) override {
    std::lock_guard lock(mu_);
    if (server_ == nullptr) {
      throw Error::transport(ErrorCode::kConnReset, "server down");
    }
    known_.insert(session);
    server_->on_connect(session, std::move(notify));
  }
  void on_disconnect(SessionId session) override {
    std::lock_guard lock(mu_);
    if (server_ != nullptr && known_.erase(session) > 0) {
      server_->on_disconnect(session);
    }
  }
  Frame handle(SessionId session, const Frame& request) override {
    std::lock_guard lock(mu_);
    if (server_ == nullptr || known_.find(session) == known_.end()) {
      throw Error::transport(ErrorCode::kConnReset, "server restarted");
    }
    return server_->handle(session, request);
  }

 private:
  std::mutex mu_;
  SegmentServer* server_ = nullptr;
  std::unordered_set<SessionId> known_;
};

TEST_F(WalRecovery, ClientCountsFullResyncWhenServerRecoversBehind) {
  // Journaling off: recovery genuinely loses the post-checkpoint commits,
  // so a client that cached the newer state reconnects *ahead* of the
  // server and must take the from-0 resync — which it counts.
  SegmentServer::Options opts = server_options();
  opts.wal_enabled = false;
  auto server = std::make_unique<SegmentServer>(opts);
  SwappableCore core;
  core.set(server.get());

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 8;
  copts.reconnect.max_call_retries = 10;
  Client c([&core](const std::string&) {
    return std::make_shared<InProcChannel>(core);
  }, copts);
  const TypeDescriptor* arr =
      c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), kUnits);
  ClientSegment* seg = c.open_segment(kSegName);
  c.write_lock(seg);
  auto* data = static_cast<int32_t*>(c.malloc_block(seg, arr, "d"));
  for (uint32_t u = 0; u < kUnits; ++u) data[u] = 1;
  c.write_unlock(seg);  // v2
  server->checkpoint();
  for (int i = 0; i < 3; ++i) {
    c.write_lock(seg);
    data[0] = 10 + i;
    c.write_unlock(seg);  // v3..v5
  }
  ASSERT_EQ(seg->version(), 5u);
  EXPECT_EQ(c.stats().full_resyncs, 0u);

  core.set(nullptr);
  server.reset();
  server = std::make_unique<SegmentServer>(opts);
  server->recover();  // back at the v2 snapshot; the tail is gone
  core.set(server.get());
  ASSERT_EQ(server->segment_version(kSegName), 2u);

  c.read_lock(seg);
  auto* blk = seg->heap().find_by_name("d");
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(blk->data())[0], 1)
      << "cache must converge to the recovered (older) state";
  c.read_unlock(seg);
  EXPECT_EQ(c.stats().full_resyncs, 1u);
  EXPECT_EQ(seg->version(), 2u);
}

// --- layer 3: the fork + SIGKILL crash matrix ---

struct CrashCase {
  WalCrashPoint point;
  WriteAheadLog::Sync sync;
};

class CrashMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrashMatrix, AckedVersionsSurviveRealCrash) {
  const auto point = static_cast<WalCrashPoint>(std::get<0>(GetParam()));
  const auto sync = static_cast<WriteAheadLog::Sync>(std::get<1>(GetParam()));
  // Crash on an early commit and on a later one; the journal's append
  // counter includes the create record, the type record, and the block
  // allocation's commit (appends 1-3), so crash_at_append = 4 is the first
  // workload commit — the earliest point with an acknowledged version
  // behind it.
  for (uint64_t crash_at : {uint64_t{4}, uint64_t{11}}) {
    fs::path dir = fresh_dir("crash-" + std::to_string(std::get<0>(GetParam())) +
                             "-" + std::to_string(std::get<1>(GetParam())) +
                             "-" + std::to_string(crash_at));
    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: a real server that will die by SIGKILL inside a WAL append.
      // Only async-unsafe cleanup is skipped by the SIGKILL itself; until
      // then this is ordinary single-threaded code (InProc transport only).
      ::close(pipefd[0]);
      WalCrashSchedule::Options copts;
      copts.crash_at_append = crash_at;
      copts.point = point;
      SegmentServer::Options sopts;
      sopts.checkpoint_dir = dir.string();
      sopts.wal_sync = sync;
      sopts.wal_crash = std::make_shared<WalCrashSchedule>(copts);
      SegmentServer server(sopts);
      run_commits(server, 1, 40, [&](uint32_t version) {
        // Acknowledged to the client: report it to the parent. The crash
        // happens *inside* an append, i.e. strictly before that version's
        // acknowledgement, so everything written here must be recoverable.
        ssize_t n = ::write(pipefd[1], &version, sizeof version);
        if (n != sizeof version) ::_exit(3);
      });
      ::_exit(2);  // ran to completion: the schedule never fired
    }
    // Parent: collect acknowledged versions until the child dies.
    ::close(pipefd[1]);
    uint32_t acked = 0, v = 0;
    while (::read(pipefd[0], &v, sizeof v) == sizeof v) acked = v;
    ::close(pipefd[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child did not die at the injected crash point (status " << status
        << ")";
    ASSERT_GT(acked, 0u) << "child crashed before acknowledging anything";

    // Restart "the process": a new server over the same directory.
    SegmentServer::Options ropts;
    ropts.checkpoint_dir = dir.string();
    ropts.wal_sync = sync;
    SegmentServer revived(ropts);
    revived.recover();
    EXPECT_EQ(revived.stats().recoveries_completed, 1u);
    uint32_t recovered = revived.segment_version(kSegName);
    // Every acknowledged version must be recovered. kBeforeSync crashes
    // *after* the record is fully written, so the unacknowledged crashing
    // commit may legitimately survive too — but nothing further.
    EXPECT_GE(recovered, acked) << "acknowledged commit lost";
    EXPECT_LE(recovered, acked + 1);
    if (point != WalCrashPoint::kBeforeSync) {
      // The torn record was the crashing commit: recovery lands exactly on
      // the last acknowledged version.
      EXPECT_EQ(recovered, acked);
    }
    // Byte-identical convergence with the fault-free oracle at whatever
    // step count survived (version 2 = step 0: the allocation commit).
    expect_converged(revived, static_cast<int>(recovered - 2));
    fs::remove_all(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PointsBySync, CrashMatrix,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(WalCrashPoint::kShortWrite),
                          static_cast<int>(WalCrashPoint::kMidRecord),
                          static_cast<int>(WalCrashPoint::kBeforeSync)),
        ::testing::Values(static_cast<int>(WriteAheadLog::Sync::kNone),
                          static_cast<int>(WriteAheadLog::Sync::kBatch),
                          static_cast<int>(WriteAheadLog::Sync::kCommit))));

}  // namespace
}  // namespace iw
