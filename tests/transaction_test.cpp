// Transaction tests: commit behaves like a write critical section; abort
// rolls back data modifications, discards allocations, resurrects frees,
// and releases the server lock without publishing anything.
#include <gtest/gtest.h>

#include <thread>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

using client::TrackingMode;

class Txn : public ::testing::TestWithParam<TrackingMode> {
 protected:
  Txn() {
    factory_ = [this](const std::string&) {
      return std::make_shared<InProcChannel>(server_);
    };
  }
  std::unique_ptr<Client> make_client() {
    Client::Options options;
    options.tracking = GetParam();
    return std::make_unique<Client>(factory_, options);
  }
  server::SegmentServer server_;
  Client::ChannelFactory factory_;
};

TEST_P(Txn, CommitPublishesChanges) {
  auto c = make_client();
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 256);
  ClientSegment* seg = c->open_segment("host/txn-commit");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr, "a"));
  c->write_unlock(seg);

  c->begin_transaction(seg);
  data[10] = 42;
  c->commit_transaction(seg);
  EXPECT_EQ(seg->version(), 3u);

  auto other = make_client();
  ClientSegment* os = other->open_segment("host/txn-commit");
  other->read_lock(os);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(
                os->heap().find_by_name("a")->data())[10],
            42);
  other->read_unlock(os);
}

TEST_P(Txn, AbortRestoresData) {
  auto c = make_client();
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 4096);
  ClientSegment* seg = c->open_segment("host/txn-abort");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr, "a"));
  for (int i = 0; i < 4096; ++i) data[i] = i;
  c->write_unlock(seg);
  uint32_t version_before = seg->version();

  c->begin_transaction(seg);
  for (int i = 0; i < 4096; i += 7) data[i] = -1;
  c->abort_transaction(seg);

  // Local copy fully restored; no version advanced anywhere.
  for (int i = 0; i < 4096; ++i) ASSERT_EQ(data[i], i) << i;
  EXPECT_EQ(seg->version(), version_before);
  EXPECT_EQ(server_.segment_version("host/txn-abort"), version_before);
}

TEST_P(Txn, AbortDiscardsAllocations) {
  auto c = make_client();
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 16);
  ClientSegment* seg = c->open_segment("host/txn-alloc");
  c->write_lock(seg);
  c->malloc_block(seg, arr, "keep");
  c->write_unlock(seg);

  c->begin_transaction(seg);
  c->malloc_block(seg, arr, "ghost");
  EXPECT_NE(seg->heap().find_by_name("ghost"), nullptr);
  c->abort_transaction(seg);
  EXPECT_EQ(seg->heap().find_by_name("ghost"), nullptr);
  EXPECT_NE(seg->heap().find_by_name("keep"), nullptr);
  EXPECT_EQ(seg->heap().block_count(), 1u);
}

TEST_P(Txn, AbortResurrectsFrees) {
  auto c = make_client();
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 64);
  ClientSegment* seg = c->open_segment("host/txn-free");
  c->write_lock(seg);
  auto* victim = static_cast<int32_t*>(c->malloc_block(seg, arr, "victim"));
  for (int i = 0; i < 64; ++i) victim[i] = i * 2;
  c->write_unlock(seg);

  c->begin_transaction(seg);
  victim[0] = 999;  // modify, then free
  c->free_block(seg, victim);
  EXPECT_EQ(seg->heap().find_by_name("victim"), nullptr);
  c->abort_transaction(seg);

  auto* blk = seg->heap().find_by_name("victim");
  ASSERT_NE(blk, nullptr);
  const auto* d = reinterpret_cast<const int32_t*>(blk->data());
  EXPECT_EQ(d[0], 0);  // pre-transaction value restored
  EXPECT_EQ(d[63], 126);
}

TEST_P(Txn, CommitAppliesDeferredFrees) {
  auto c = make_client();
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 16);
  ClientSegment* seg = c->open_segment("host/txn-dfree");
  c->write_lock(seg);
  void* victim = c->malloc_block(seg, arr, "victim");
  c->malloc_block(seg, arr, "keep");
  c->write_unlock(seg);

  c->begin_transaction(seg);
  c->free_block(seg, victim);
  c->commit_transaction(seg);

  auto other = make_client();
  ClientSegment* os = other->open_segment("host/txn-dfree");
  other->read_lock(os);
  EXPECT_EQ(os->heap().find_by_name("victim"), nullptr);
  EXPECT_NE(os->heap().find_by_name("keep"), nullptr);
  other->read_unlock(os);
}

TEST_P(Txn, AbortReleasesServerLock) {
  auto a = make_client();
  auto b = make_client();
  ClientSegment* sa = a->open_segment("host/txn-lock");
  ClientSegment* sb = b->open_segment("host/txn-lock");
  a->begin_transaction(sa);
  a->abort_transaction(sa);
  // b can immediately take the write lock.
  b->write_lock(sb);
  b->write_unlock(sb);
  SUCCEED();
}

TEST_P(Txn, AbortedWorkInvisibleToOthers) {
  auto a = make_client();
  auto b = make_client();
  const TypeDescriptor* arr =
      a->types().array_of(a->types().primitive(PrimitiveKind::kInt32), 128);
  ClientSegment* sa = a->open_segment("host/txn-invis");
  a->write_lock(sa);
  auto* data = static_cast<int32_t*>(a->malloc_block(sa, arr, "a"));
  data[0] = 1;
  a->write_unlock(sa);

  a->begin_transaction(sa);
  data[0] = 2;
  a->abort_transaction(sa);

  ClientSegment* sb = b->open_segment("host/txn-invis");
  b->read_lock(sb);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(
                sb->heap().find_by_name("a")->data())[0],
            1);
  b->read_unlock(sb);
}

TEST_P(Txn, SequentialTransactionsAndLocksInterleave) {
  auto c = make_client();
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 32);
  ClientSegment* seg = c->open_segment("host/txn-seq");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr, "a"));
  c->write_unlock(seg);

  for (int round = 0; round < 5; ++round) {
    c->begin_transaction(seg);
    data[round] = round + 100;
    if (round % 2 == 0) {
      c->commit_transaction(seg);
    } else {
      c->abort_transaction(seg);
    }
    c->write_lock(seg);
    data[10 + round] = round;
    c->write_unlock(seg);
  }
  EXPECT_EQ(data[0], 100);
  EXPECT_EQ(data[1], 0);  // aborted
  EXPECT_EQ(data[2], 102);
  EXPECT_EQ(data[3], 0);  // aborted
  for (int round = 0; round < 5; ++round) EXPECT_EQ(data[10 + round], round);
}

TEST_P(Txn, MisuseThrows) {
  auto c = make_client();
  ClientSegment* seg = c->open_segment("host/txn-misuse");
  EXPECT_THROW(c->commit_transaction(seg), Error);
  EXPECT_THROW(c->abort_transaction(seg), Error);
  c->write_lock(seg);
  // A plain write lock is not a transaction.
  EXPECT_THROW(c->abort_transaction(seg), Error);
  c->write_unlock(seg);
}

INSTANTIATE_TEST_SUITE_P(Modes, Txn,
                         ::testing::Values(TrackingMode::kAuto,
                                           TrackingMode::kVmDiff,
                                           TrackingMode::kSoftware,
                                           TrackingMode::kNoDiff),
                         [](const auto& info) {
                           switch (info.param) {
                             case TrackingMode::kVmDiff: return "VmDiff";
                             case TrackingMode::kSoftware: return "Software";
                             case TrackingMode::kNoDiff: return "NoDiff";
                             default: return "Auto";
                           }
                         });

}  // namespace
}  // namespace iw
