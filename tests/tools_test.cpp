// End-to-end tests for the CLI tools (iwidlc, iwinspect) run as real
// subprocesses against in-test servers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

namespace fs = std::filesystem;

std::string run_command(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed";
    *exit_code = -1;
    return output;
  }
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) output += buf;
  int status = ::pclose(pipe);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return output;
}

TEST(Iwidlc, GeneratesHeader) {
  fs::path dir = fs::temp_directory_path() / "iw-tools-test";
  fs::create_directories(dir);
  fs::path idl = dir / "t.idl";
  {
    std::ofstream f(idl);
    f << "enum kind_t { A, B = 3 };\n"
         "struct rec { int id; string<8> tag; rec *next; };\n";
  }
  int code = 0;
  std::string out = run_command(std::string(IWIDLC_PATH) + " -n demo " +
                                idl.string(), &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("namespace demo"), std::string::npos);
  EXPECT_NE(out.find("enum kind_t : int32_t"), std::string::npos);
  EXPECT_NE(out.find("struct rec {"), std::string::npos);
  EXPECT_NE(out.find("static_assert(sizeof(rec)"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Iwidlc, RejectsBadIdl) {
  fs::path dir = fs::temp_directory_path() / "iw-tools-test2";
  fs::create_directories(dir);
  fs::path idl = dir / "bad.idl";
  {
    std::ofstream f(idl);
    f << "struct s { nope x; };\n";
  }
  int code = 0;
  std::string out = run_command(std::string(IWIDLC_PATH) + " " + idl.string(),
                                &code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("undeclared type"), std::string::npos) << out;
  fs::remove_all(dir);
}

TEST(Iwinspect, DirectoryAndDataDump) {
  server::SegmentServer core;
  TcpServer server(core, 0);

  // Seed a segment with typed data.
  Client c([&](const std::string&) {
    return std::make_shared<TcpClientChannel>(server.port());
  });
  const TypeDescriptor* rec = c.types().struct_builder("rec")
      .field("id", c.types().primitive(PrimitiveKind::kInt32))
      .field("score", c.types().primitive(PrimitiveKind::kFloat64))
      .field("tag", c.types().string_type(8))
      .self_pointer_field("next")
      .finish();
  ClientSegment* seg = c.open_segment("tool/demo");
  c.write_lock(seg);
  struct Rec { int32_t id; double score; char tag[8]; void* next; };
  auto* a = static_cast<Rec*>(c.malloc_block(seg, rec, "alpha"));
  a->id = 17;
  a->score = 2.5;
  std::snprintf(a->tag, sizeof a->tag, "hey");
  auto* b = static_cast<Rec*>(c.malloc_block(seg, rec));
  b->id = 18;
  a->next = b;
  c.write_unlock(seg);

  std::string base = std::string(IWINSPECT_PATH) + " --port=" +
                     std::to_string(server.port());
  int code = 0;
  std::string dir_out = run_command(base + " tool/demo", &code);
  EXPECT_EQ(code, 0) << dir_out;
  EXPECT_NE(dir_out.find("version  2"), std::string::npos) << dir_out;
  EXPECT_NE(dir_out.find("struct rec"), std::string::npos);
  EXPECT_NE(dir_out.find("alpha"), std::string::npos);

  std::string data_out = run_command(base + " --data tool/demo", &code);
  EXPECT_EQ(code, 0) << data_out;
  EXPECT_NE(data_out.find("block #1 alpha"), std::string::npos) << data_out;
  EXPECT_NE(data_out.find("17"), std::string::npos);
  EXPECT_NE(data_out.find("2.5"), std::string::npos);
  EXPECT_NE(data_out.find("\"hey\""), std::string::npos);
  EXPECT_NE(data_out.find("-> tool/demo#2#0"), std::string::npos);
  EXPECT_NE(data_out.find("(null)"), std::string::npos);
}

TEST(Iwinspect, DumpsJournalAndCheckpointChain) {
  fs::path dir = fs::temp_directory_path() / "iw-tools-walchain";
  fs::remove_all(dir);

  // A durable server under churn leaves behind a compressed journal and an
  // incremental checkpoint chain for the offline modes to dump.
  {
    server::SegmentServer::Options sopts;
    sopts.checkpoint_dir = dir.string();
    sopts.checkpoint_every = 2;
    sopts.compress_payloads = true;
    server::SegmentServer core(sopts);
    TcpServer server(core, 0);
    Client c([&](const std::string&) {
      return std::make_shared<TcpClientChannel>(server.port());
    });
    const TypeDescriptor* arr =
        c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 256);
    ClientSegment* seg = c.open_segment("tool/disk");
    for (int round = 0; round < 7; ++round) {
      c.write_lock(seg);
      auto* d = static_cast<int32_t*>(
          round == 0 ? c.malloc_block(seg, arr, "data")
                     : const_cast<uint8_t*>(
                           seg->heap().find_by_name("data")->data()));
      for (int i = 0; i < 256; ++i) d[i] = round;
      c.write_unlock(seg);
    }
  }

  fs::path wal, chain;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".iwlog") wal = entry.path();
    if (entry.path().extension() == ".iwinc") chain = entry.path();
  }
  ASSERT_FALSE(wal.empty());
  ASSERT_FALSE(chain.empty());

  int code = 0;
  std::string wal_out = run_command(
      std::string(IWINSPECT_PATH) + " --wal " + wal.string(), &code);
  EXPECT_EQ(code, 0) << wal_out;
  EXPECT_NE(wal_out.find("journal"), std::string::npos) << wal_out;
  EXPECT_NE(wal_out.find("commit"), std::string::npos) << wal_out;
  EXPECT_NE(wal_out.find("(compressed)"), std::string::npos) << wal_out;

  std::string chain_out = run_command(
      std::string(IWINSPECT_PATH) + " --chain " + chain.string(), &code);
  EXPECT_EQ(code, 0) << chain_out;
  EXPECT_NE(chain_out.find("base     snapshot v"), std::string::npos)
      << chain_out;
  EXPECT_NE(chain_out.find("depth"), std::string::npos) << chain_out;
  EXPECT_NE(chain_out.find(" -> v"), std::string::npos) << chain_out;

  std::string missing_out = run_command(
      std::string(IWINSPECT_PATH) + " --wal " + (dir / "nope.iwlog").string(),
      &code);
  EXPECT_NE(code, 0);
  EXPECT_NE(missing_out.find("no such journal"), std::string::npos)
      << missing_out;
  fs::remove_all(dir);
}

TEST(Iwinspect, MissingSegmentFailsCleanly) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  int code = 0;
  std::string out = run_command(std::string(IWINSPECT_PATH) + " --port=" +
                                    std::to_string(server.port()) +
                                    " tool/nope",
                                &code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("NotFound"), std::string::npos) << out;
}

}  // namespace
}  // namespace iw
