// Tests for the XDR/RPC baseline: marshaling semantics (padding, deep-copy
// pointers, strings), round trips, and the call layer over both transports.
#include "rpcbase/rpc.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "rpcbase/xdr.hpp"

namespace iw::rpc {
namespace {

TEST(Xdr, PrimitiveRoundTrips) {
  Buffer buf;
  Xdr enc(buf);
  char c = 'z';
  int16_t s = -12345;
  int32_t i = 0x7FFFFFFF;
  int64_t h = -99;
  float f = 1.25f;
  double d = -2.5;
  EXPECT_TRUE(enc.x_char(&c));
  EXPECT_TRUE(enc.x_short(&s));
  EXPECT_TRUE(enc.x_int(&i));
  EXPECT_TRUE(enc.x_hyper(&h));
  EXPECT_TRUE(enc.x_float(&f));
  EXPECT_TRUE(enc.x_double(&d));
  // chars and shorts widen to 4 bytes each on the wire, XDR-style.
  EXPECT_EQ(buf.size(), 4u + 4u + 4u + 8u + 4u + 8u);

  BufReader r(buf.span());
  Xdr dec(r);
  char c2;
  int16_t s2;
  int32_t i2;
  int64_t h2;
  float f2;
  double d2;
  EXPECT_TRUE(dec.x_char(&c2));
  EXPECT_TRUE(dec.x_short(&s2));
  EXPECT_TRUE(dec.x_int(&i2));
  EXPECT_TRUE(dec.x_hyper(&h2));
  EXPECT_TRUE(dec.x_float(&f2));
  EXPECT_TRUE(dec.x_double(&d2));
  EXPECT_EQ(c2, 'z');
  EXPECT_EQ(s2, -12345);
  EXPECT_EQ(i2, 0x7FFFFFFF);
  EXPECT_EQ(h2, -99);
  EXPECT_EQ(f2, 1.25f);
  EXPECT_EQ(d2, -2.5);
}

TEST(Xdr, StringPadsToFour) {
  Buffer buf;
  Xdr enc(buf);
  char s[16] = "abcde";
  EXPECT_TRUE(enc.x_string(s, sizeof s));
  EXPECT_EQ(buf.size(), 4u + 8u);  // length + 5 bytes padded to 8

  BufReader r(buf.span());
  Xdr dec(r);
  char out[16];
  EXPECT_TRUE(dec.x_string(out, sizeof out));
  EXPECT_STREQ(out, "abcde");
  EXPECT_TRUE(r.at_end());
}

TEST(Xdr, StringTooLongForBufferFails) {
  Buffer buf;
  Xdr enc(buf);
  char s[8] = "1234567";
  EXPECT_TRUE(enc.x_string(s, sizeof s));
  BufReader r(buf.span());
  Xdr dec(r);
  char tiny[4];
  EXPECT_FALSE(dec.x_string(tiny, sizeof tiny));
}

TEST(Xdr, DecodeUnderrunReturnsFalse) {
  Buffer buf;
  buf.append_u16(0);
  BufReader r(buf.span());
  Xdr dec(r);
  int32_t v;
  EXPECT_FALSE(dec.x_int(&v));
  double d;
  EXPECT_FALSE(dec.x_double(&d));
}

TEST(Xdr, VectorMarshalsPerElement) {
  std::vector<int32_t> data(100);
  for (int i = 0; i < 100; ++i) data[i] = i - 50;
  Buffer buf;
  Xdr enc(buf);
  auto proc = +[](Xdr* xdr, void* p) {
    return xdr->x_int(static_cast<int32_t*>(p));
  };
  EXPECT_TRUE(xdr_vector(&enc, data.data(), 100, 4, proc));
  EXPECT_EQ(buf.size(), 400u);

  std::vector<int32_t> out(100);
  BufReader r(buf.span());
  Xdr dec(r);
  EXPECT_TRUE(xdr_vector(&dec, out.data(), 100, 4, proc));
  EXPECT_EQ(out, data);
}

TEST(Xdr, PointerDeepCopies) {
  auto proc = +[](Xdr* xdr, void* p) {
    return xdr->x_int(static_cast<int32_t*>(p));
  };
  int32_t value = 1234;
  int32_t* ptr = &value;
  Buffer buf;
  Xdr enc(buf);
  EXPECT_TRUE(xdr_pointer(&enc, reinterpret_cast<void**>(&ptr), 4, proc));
  EXPECT_EQ(buf.size(), 8u);  // presence flag + the int itself (deep copy)

  int32_t* out = nullptr;
  BufReader r(buf.span());
  Xdr dec(r);
  EXPECT_TRUE(xdr_pointer(&dec, reinterpret_cast<void**>(&out), 4, proc));
  ASSERT_NE(out, nullptr);
  EXPECT_NE(out, &value) << "deep copy allocates";
  EXPECT_EQ(*out, 1234);
  ::operator delete(out);
}

TEST(Xdr, NullPointerIsJustAFlag) {
  auto proc = +[](Xdr* xdr, void* p) {
    return xdr->x_int(static_cast<int32_t*>(p));
  };
  int32_t* ptr = nullptr;
  Buffer buf;
  Xdr enc(buf);
  EXPECT_TRUE(xdr_pointer(&enc, reinterpret_cast<void**>(&ptr), 4, proc));
  EXPECT_EQ(buf.size(), 4u);

  int32_t* out = reinterpret_cast<int32_t*>(0x1);
  BufReader r(buf.span());
  Xdr dec(r);
  EXPECT_TRUE(xdr_pointer(&dec, reinterpret_cast<void**>(&out), 4, proc));
  EXPECT_EQ(out, nullptr);
}

TEST(Xdr, NestedStructMarshaling) {
  struct Inner { int32_t a; double b; };
  struct Outer { Inner inner; char name[8]; Inner* link; };
  auto inner_proc = +[](Xdr* xdr, void* p) {
    auto* v = static_cast<Inner*>(p);
    return xdr->x_int(&v->a) && xdr->x_double(&v->b);
  };
  Inner linked{7, 8.5};
  Outer o{{1, 2.5}, "hey", &linked};

  Buffer buf;
  Xdr enc(buf);
  ASSERT_TRUE(inner_proc(&enc, &o.inner));
  ASSERT_TRUE(enc.x_string(o.name, sizeof o.name));
  ASSERT_TRUE(xdr_pointer(&enc, reinterpret_cast<void**>(&o.link),
                          sizeof(Inner), inner_proc));

  Outer out{};
  BufReader r(buf.span());
  Xdr dec(r);
  ASSERT_TRUE(inner_proc(&dec, &out.inner));
  ASSERT_TRUE(dec.x_string(out.name, sizeof out.name));
  ASSERT_TRUE(xdr_pointer(&dec, reinterpret_cast<void**>(&out.link),
                          sizeof(Inner), inner_proc));
  EXPECT_EQ(out.inner.a, 1);
  EXPECT_EQ(out.inner.b, 2.5);
  EXPECT_STREQ(out.name, "hey");
  ASSERT_NE(out.link, nullptr);
  EXPECT_EQ(out.link->a, 7);
  EXPECT_EQ(out.link->b, 8.5);
  ::operator delete(out.link);
}

TEST(Rpc, CallOverInProc) {
  RpcServer server;
  server.register_procedure(1, [](BufReader& in, Buffer& out) {
    Xdr dec(in);
    int32_t a, b;
    if (!dec.x_int(&a) || !dec.x_int(&b)) {
      throw Error(ErrorCode::kProtocol, "bad args");
    }
    Xdr enc(out);
    int32_t sum = a + b;
    enc.x_int(&sum);
  });
  RpcClient client(std::make_shared<InProcChannel>(server));
  Buffer args;
  Xdr enc(args);
  int32_t a = 30, b = 12;
  enc.x_int(&a);
  enc.x_int(&b);
  auto result = client.call(1, std::move(args));
  BufReader r = result.reader();
  Xdr dec(r);
  int32_t sum;
  ASSERT_TRUE(dec.x_int(&sum));
  EXPECT_EQ(sum, 42);
}

TEST(Rpc, UnknownProcedureFails) {
  RpcServer server;
  RpcClient client(std::make_shared<InProcChannel>(server));
  Buffer args;
  try {
    client.call(99, std::move(args));
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST(Rpc, CallOverTcp) {
  RpcServer core;
  core.register_procedure(7, [](BufReader& in, Buffer& out) {
    Xdr dec(in);
    char name[32];
    if (!dec.x_string(name, sizeof name)) {
      throw Error(ErrorCode::kProtocol, "bad args");
    }
    std::string greeting = std::string("hello ") + name;
    Xdr enc(out);
    char reply[64];
    std::snprintf(reply, sizeof reply, "%s", greeting.c_str());
    enc.x_string(reply, sizeof reply);
  });
  TcpServer server(core, 0);
  RpcClient client(std::make_shared<TcpClientChannel>(server.port()));
  Buffer args;
  Xdr enc(args);
  char name[32] = "world";
  enc.x_string(name, sizeof name);
  auto result = client.call(7, std::move(args));
  BufReader r = result.reader();
  Xdr dec(r);
  char reply[64];
  ASSERT_TRUE(dec.x_string(reply, sizeof reply));
  EXPECT_STREQ(reply, "hello world");
}

}  // namespace
}  // namespace iw::rpc
