// Reactor transport tests: frame reassembly across partial reads, frame
// coalescing (many tiny frames -> few syscalls, both directions),
// write-buffer backpressure against a slow reader, EMFILE accept backoff,
// elastic worker-pool growth past blocked handlers, and the
// all-in-flight-calls-drain-on-EOF client regression.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "wire/coherence.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// --- raw-socket helpers: drive the server below the TcpClientChannel ------

int raw_connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

void raw_send(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << std::strerror(errno);
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void raw_recv_exact(int fd, uint8_t* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, data + got, n - got, 0);
    ASSERT_GT(r, 0) << "peer closed or failed: " << std::strerror(errno);
    got += static_cast<size_t>(r);
  }
}

Frame raw_read_frame(int fd) {
  uint8_t header[kFrameHeaderSize];
  raw_recv_exact(fd, header, sizeof header);
  FrameHeader h = decode_frame_header(header);
  Frame frame;
  frame.type = h.type;
  frame.request_id = h.request_id;
  frame.payload.resize(h.payload_size);
  if (h.payload_size > 0) {
    raw_recv_exact(fd, frame.payload.data(), h.payload_size);
  }
  return frame;
}

Buffer encode_request(MsgType type, uint32_t request_id,
                      const Buffer& payload) {
  Frame f;
  f.type = type;
  f.request_id = request_id;
  f.payload.assign(payload.data(), payload.data() + payload.size());
  Buffer out;
  encode_frame(f, out);
  return out;
}

// --- frame reassembly -----------------------------------------------------

TEST(Reactor, PartialFramesSplitAcrossReads) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  int fd = raw_connect(server.port());

  // A ping dribbled one byte at a time: the session state machine must
  // buffer the partial header/payload across epoll wakeups.
  Buffer ping = encode_request(MsgType::kPing, 7, Buffer());
  for (size_t i = 0; i < ping.size(); ++i) {
    raw_send(fd, ping.data() + i, 1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  Frame resp = raw_read_frame(fd);
  EXPECT_EQ(resp.type, MsgType::kPingResp);
  EXPECT_EQ(resp.request_id, 7u);

  // A frame with a payload, split mid-payload.
  Buffer open_payload;
  open_payload.append_lp_string("host/partial");
  open_payload.append_u8(1);
  Buffer open = encode_request(MsgType::kOpenSegment, 8, open_payload);
  size_t half = open.size() / 2;
  raw_send(fd, open.data(), half);
  std::this_thread::sleep_for(milliseconds(5));
  raw_send(fd, open.data() + half, open.size() - half);
  resp = raw_read_frame(fd);
  EXPECT_EQ(resp.type, MsgType::kOpenSegmentResp);
  EXPECT_EQ(resp.request_id, 8u);

  ::close(fd);
}

TEST(Reactor, ManyTinyFramesInOneWriteAreBatched) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  int fd = raw_connect(server.port());

  constexpr uint32_t kPings = 200;
  Buffer burst;
  for (uint32_t i = 1; i <= kPings; ++i) {
    Buffer one = encode_request(MsgType::kPing, i, Buffer());
    burst.append(one.data(), one.size());
  }
  raw_send(fd, burst.data(), burst.size());
  for (uint32_t i = 1; i <= kPings; ++i) {
    Frame resp = raw_read_frame(fd);
    EXPECT_EQ(resp.type, MsgType::kPingResp);
    EXPECT_EQ(resp.request_id, i);
  }
  ::close(fd);

  // The kernel hands response bytes to the client before the flushing
  // thread finishes its post-sendmsg bookkeeping, so give the counters a
  // moment to catch up before snapshotting.
  ReactorStats stats = server.stats();
  for (int spin = 0; spin < 200 && stats.frames_sent < kPings; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = server.stats();
  }
  EXPECT_GE(stats.frames_received, kPings);
  EXPECT_GE(stats.frames_sent, kPings);
  // The whole burst arrives in one (or few) reads, the worker drains the
  // decoded queue before flushing, and all pending responses ride one
  // sendmsg: far fewer syscalls than frames.
  EXPECT_LT(stats.sendmsg_calls, kPings / 2)
      << "response coalescing not engaged";
  EXPECT_GT(stats.frames_batched, 0u);
  EXPECT_GT(stats.epoll_wakeups, 0u);
  // Edge-triggered reads: the burst is drained to EAGAIN on each readiness
  // transition, so wakeups scale with arrival transitions, not frames. A
  // regression to one-wakeup-per-frame polling would blow well past this.
  EXPECT_LT(stats.epoll_wakeups, kPings / 4)
      << "burst not amortized into few epoll wakeups";
  EXPECT_GE(stats.worker_queue_depth_max, 1u);
}

// --- backpressure ---------------------------------------------------------

TEST(Reactor, BackpressurePausesReadsForSlowReader) {
  server::SegmentServer core;
  TcpServer::Options topts;
  topts.write_high_watermark = 16u << 10;
  topts.write_low_watermark = 4u << 10;
  TcpServer server(core, 0, topts);

  // Seed a segment with one 32 KiB block so full-collection reads are big.
  constexpr uint32_t kUnits = 8192;
  const std::string seg = "host/backpressure";
  {
    TcpClientChannel setup(server.port());
    Buffer p;
    p.append_lp_string(seg);
    p.append_u8(1);
    setup.call(MsgType::kOpenSegment, std::move(p));
    TypeRegistry scratch(Platform::native().rules);
    Buffer reg;
    reg.append_lp_string(seg);
    TypeCodec::encode_graph(
        scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), kUnits),
        reg);
    setup.call(MsgType::kRegisterType, std::move(reg));
    Buffer acq;
    acq.append_lp_string(seg);
    acq.append_u32(1);
    Frame a = setup.call(MsgType::kAcquireWrite, std::move(acq));
    uint32_t serial = a.reader().read_u32();
    Buffer rel;
    rel.append_lp_string(seg);
    DiffWriter w(rel, 1, 2);
    w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, 1, "d");
    w.begin_run(0, kUnits);
    for (uint32_t i = 0; i < kUnits; ++i) rel.append_u32(i);
    w.end_block();
    w.finish();
    setup.call(MsgType::kReleaseWrite, std::move(rel));
  }

  // A slow reader: pipeline many full-collection reads without consuming
  // any response. The kernel buffers fill, the outbox crosses the high
  // watermark, and the server must stop reading instead of ballooning.
  int fd = raw_connect(server.port());
  Buffer open_payload;
  open_payload.append_lp_string(seg);
  open_payload.append_u8(0);
  Buffer open = encode_request(MsgType::kOpenSegment, 1, open_payload);
  raw_send(fd, open.data(), open.size());
  Frame opened = raw_read_frame(fd);
  EXPECT_EQ(opened.type, MsgType::kOpenSegmentResp);

  constexpr uint32_t kReads = 60;
  Buffer burst;
  for (uint32_t i = 0; i < kReads; ++i) {
    Buffer rp;
    rp.append_lp_string(seg);
    rp.append_u32(0);  // cold: forces a full collection each time
    rp.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
    rp.append_u64(0);
    Buffer one = encode_request(MsgType::kAcquireRead, 100 + i, rp);
    burst.append(one.data(), one.size());
  }
  raw_send(fd, burst.data(), burst.size());
  std::this_thread::sleep_for(milliseconds(300));  // let the outbox jam

  // Drain: every pipelined response must still arrive, in order.
  size_t total_payload = 0;
  for (uint32_t i = 0; i < kReads; ++i) {
    Frame resp = raw_read_frame(fd);
    ASSERT_EQ(resp.type, MsgType::kAcquireReadResp) << "read " << i;
    EXPECT_EQ(resp.request_id, 100 + i);
    total_payload += resp.payload.size();
  }
  EXPECT_GT(total_payload, static_cast<size_t>(kReads) * kUnits * 4 / 2);
  ::close(fd);

  ReactorStats stats = server.stats();
  EXPECT_GE(stats.backpressure_stalls, 1u)
      << "slow reader never tripped the write watermark";
}

// --- accept robustness ----------------------------------------------------

TEST(Reactor, AcceptBacksOffOnFdExhaustion) {
  server::SegmentServer core;
  TcpServer::Options topts;
  topts.accept_backoff_ms = 20;
  TcpServer server(core, 0, topts);

  // Park one connected-but-unaccepted socket in the backlog, with the
  // process out of fds: accept4 must hit EMFILE, pause the listener, and
  // resume after the backoff instead of dropping the listener for good.
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit tight = saved;
  tight.rlim_cur = 256;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  std::vector<int> hogs;
  for (;;) {
    int h = ::dup(0);
    if (h < 0) break;  // EMFILE: the table is full
    hogs.push_back(h);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  // The reactor tries to accept and cannot. Give it a moment to trip.
  auto deadline = steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().accept_backoffs == 0 &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_GE(server.stats().accept_backoffs, 1u);

  // Free the descriptors; the backoff timer must revive the listener and
  // accept the parked connection.
  for (int h : hogs) ::close(h);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  Buffer ping = encode_request(MsgType::kPing, 1, Buffer());
  raw_send(fd, ping.data(), ping.size());
  Frame resp = raw_read_frame(fd);
  EXPECT_EQ(resp.type, MsgType::kPingResp);
  ::close(fd);
}

// --- worker pool ----------------------------------------------------------

TEST(Reactor, ElasticWorkersOutliveBlockedHandlers) {
  // Leases disabled: if the pool could not grow past a blocked handler,
  // nothing would ever unblock it, so this test proves elasticity (and
  // would deadlock-then-timeout without it).
  server::SegmentServer::Options sopts;
  sopts.writer_lease_ms = 0;
  server::SegmentServer core(sopts);
  TcpServer::Options topts;
  topts.workers = 1;
  topts.max_workers = 8;
  TcpServer server(core, 0, topts);
  const std::string seg = "host/elastic";

  TcpClientChannel a(server.port());
  TcpClientChannel b(server.port());
  auto open = [&](TcpClientChannel& ch) {
    Buffer p;
    p.append_lp_string(seg);
    p.append_u8(1);
    ch.call(MsgType::kOpenSegment, std::move(p));
  };
  open(a);
  open(b);
  auto acquire_payload = [&] {
    Buffer p;
    p.append_lp_string(seg);
    p.append_u32(0);
    return p;
  };
  a.call(MsgType::kAcquireWrite, acquire_payload());

  // B's acquire blocks the only base worker inside the core.
  std::atomic<bool> b_acquired{false};
  std::thread waiter([&] {
    b.call(MsgType::kAcquireWrite, acquire_payload());
    b_acquired.store(true);
  });
  std::this_thread::sleep_for(milliseconds(100));
  EXPECT_FALSE(b_acquired.load());

  // A's release can only be handled by a freshly spawned worker.
  auto start = steady_clock::now();
  Buffer rel;
  rel.append_lp_string(seg);
  DiffWriter(rel, 0, 0).finish();
  a.call(MsgType::kReleaseWrite, std::move(rel));
  waiter.join();
  auto waited =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  EXPECT_TRUE(b_acquired.load());
  EXPECT_LT(waited.count(), 5'000);
  EXPECT_GE(server.stats().workers_spawned, 2u);

  Buffer rel2;
  rel2.append_lp_string(seg);
  DiffWriter(rel2, 0, 0).finish();
  b.call(MsgType::kReleaseWrite, std::move(rel2));
}

// --- client-side batching -------------------------------------------------

TEST(Reactor, ClientBatchWindowCoalescesConcurrentCalls) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  TcpClientChannel::Options copts;
  copts.batch_window_us = 200;
  TcpClientChannel channel(server.port(), copts);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 100;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        Buffer empty;
        Frame resp = channel.call(MsgType::kPing, std::move(empty));
        if (resp.type == MsgType::kPingResp) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kCallsPerThread);

  TcpClientChannel::BatchStats stats = channel.batch_stats();
  EXPECT_EQ(stats.frames_sent,
            static_cast<uint64_t>(kThreads) * kCallsPerThread);
  EXPECT_LT(stats.send_syscalls, stats.frames_sent)
      << "aggregation window never merged a burst";
  EXPECT_GT(stats.frames_batched, 0u);
}

TEST(Reactor, ClientWithoutWindowStillCorrectUnderConcurrency) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  TcpClientChannel channel(server.port());  // batch_window_us == 0
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        Buffer empty;
        Frame resp = channel.call(MsgType::kPing, std::move(empty));
        if (resp.type == MsgType::kPingResp) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 200);
  EXPECT_EQ(channel.batch_stats().frames_sent, 200u);
}

// --- EOF drains all in-flight calls (regression) --------------------------

TEST(Reactor, ServerCloseMidBurstFailsAllInFlightCallsPromptly) {
  server::SegmentServer core;
  auto server = std::make_unique<TcpServer>(core, 0);
  TcpClientChannel::Options copts;
  copts.call_timeout_ms = 30'000;  // a hung waiter would be obvious
  copts.batch_window_us = 100;     // in-flight calls parked in the batcher too
  TcpClientChannel channel(server->port(), copts);

  constexpr int kThreads = 8;
  std::atomic<int> transport_errors{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1'000; ++i) {
        Buffer empty;
        try {
          channel.call(MsgType::kPing, std::move(empty));
          ++completed;
        } catch (const Error& e) {
          EXPECT_TRUE(e.is_transport()) << e.what();
          ++transport_errors;
          return;
        }
      }
    });
  }
  while (completed.load() < 50) std::this_thread::yield();
  auto start = steady_clock::now();
  server->shutdown();  // closes every connection mid-burst
  for (auto& t : threads) t.join();
  auto waited =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);

  // Every thread either finished its loop before the close or got a
  // transport error — and nobody slept toward the 30s call deadline.
  EXPECT_GT(transport_errors.load(), 0);
  EXPECT_LT(waited.count(), 10'000)
      << "an in-flight call hung after server close";
}

}  // namespace
}  // namespace iw
