// Client API surface tests: error paths, multi-segment and multi-server
// operation, statistics, the IW_* C facade, and RAII lock guards.
#include <gtest/gtest.h>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

class ClientApi : public ::testing::Test {
 protected:
  ClientApi() {
    factory_ = [this](const std::string& host) -> std::shared_ptr<ClientChannel> {
      // Route by host: "alpha/..." -> server_a, "beta/..." -> server_b.
      if (host == "alpha") return std::make_shared<InProcChannel>(server_a_);
      if (host == "beta") return std::make_shared<InProcChannel>(server_b_);
      return nullptr;
    };
  }
  server::SegmentServer server_a_;
  server::SegmentServer server_b_;
  Client::ChannelFactory factory_;
};

TEST_F(ClientApi, UnknownHostFailsCleanly) {
  Client c(factory_);
  try {
    c.open_segment("gamma/segment");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST_F(ClientApi, SegmentsOnDifferentServers) {
  Client c(factory_);
  const TypeDescriptor* int_t = c.types().primitive(PrimitiveKind::kInt32);
  ClientSegment* sa = c.open_segment("alpha/data");
  ClientSegment* sb = c.open_segment("beta/data");

  c.write_lock(sa);
  auto* va = static_cast<int32_t*>(c.malloc_block(sa, int_t, "v"));
  *va = 1;
  c.write_unlock(sa);
  c.write_lock(sb);
  auto* vb = static_cast<int32_t*>(c.malloc_block(sb, int_t, "v"));
  *vb = 2;
  c.write_unlock(sb);

  EXPECT_EQ(server_a_.segment_version("alpha/data"), 2u);
  EXPECT_EQ(server_b_.segment_version("beta/data"), 2u);
  EXPECT_THROW(server_a_.segment_version("beta/data"), Error);
}

TEST_F(ClientApi, CrossServerPointer) {
  // A pointer in a segment on server A referring to data on server B.
  Client writer(factory_);
  const TypeDescriptor* int_t = writer.types().primitive(PrimitiveKind::kInt32);
  ClientSegment* data_seg = writer.open_segment("beta/numbers");
  writer.write_lock(data_seg);
  auto* value = static_cast<int32_t*>(writer.malloc_block(data_seg, int_t, "x"));
  *value = 777;
  writer.write_unlock(data_seg);

  ClientSegment* ref_seg = writer.open_segment("alpha/refs");
  writer.write_lock(ref_seg);
  auto** ref = static_cast<int32_t**>(writer.malloc_block(
      ref_seg, writer.types().pointer_to(int_t), "r"));
  *ref = value;
  writer.write_unlock(ref_seg);

  Client reader(factory_);
  ClientSegment* r_ref = reader.open_segment("alpha/refs");
  reader.read_lock(r_ref);
  auto** rp = static_cast<int32_t**>(reader.mip_to_ptr("alpha/refs#r#0"));
  ASSERT_NE(rp, nullptr);
  int32_t* remote = *rp;  // beta/numbers reserved automatically
  ASSERT_NE(remote, nullptr);
  reader.read_unlock(r_ref);

  ClientSegment* r_data = reader.open_segment("beta/numbers", false);
  reader.read_lock(r_data);
  EXPECT_EQ(*remote, 777);
  reader.read_unlock(r_data);
}

TEST_F(ClientApi, MipErrorCases) {
  Client c(factory_);
  const TypeDescriptor* int_t = c.types().primitive(PrimitiveKind::kInt32);
  ClientSegment* seg = c.open_segment("alpha/mips");
  c.write_lock(seg);
  auto* arr = c.malloc_block(seg, c.types().array_of(int_t, 4), "a");
  (void)arr;
  c.write_unlock(seg);

  EXPECT_THROW(c.mip_to_ptr("no-hashes-here"), Error);
  EXPECT_THROW(c.mip_to_ptr("alpha/mips#a#99"), Error);     // unit range
  EXPECT_THROW(c.mip_to_ptr("alpha/mips#missing#0"), Error);  // bad name
  EXPECT_THROW(c.mip_to_ptr("alpha/mips#7#0"), Error);        // bad serial
  EXPECT_THROW(c.mip_to_ptr("alpha/mips#a#junk"), Error);     // bad offset
  int local = 0;
  EXPECT_THROW(c.ptr_to_mip(&local), Error);  // not a segment address
}

TEST_F(ClientApi, SegmentNameWithHashRejected) {
  Client c(factory_);
  EXPECT_THROW(c.open_segment("alpha/bad#name"), Error);
}

TEST_F(ClientApi, StatsAndByteCountersMove) {
  Client c(factory_);
  const TypeDescriptor* arr =
      c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), 1024);
  ClientSegment* seg = c.open_segment("alpha/stats");
  EXPECT_EQ(c.stats().diffs_collected, 0u);
  c.write_lock(seg);
  auto* d = static_cast<int32_t*>(c.malloc_block(seg, arr));
  d[0] = 1;
  c.write_unlock(seg);
  EXPECT_EQ(c.stats().diffs_collected, 1u);
  if (c.stats().diffs_compressed > 0) {
    // The near-zero 4 KiB array compressed on the wire: the counter still
    // moves but stays well under the raw diff size.
    EXPECT_LT(c.bytes_sent(), 4096u);
  } else {
    EXPECT_GT(c.bytes_sent(), 4096u);
  }
  EXPECT_GT(c.bytes_sent(), 0u);
  EXPECT_GT(c.bytes_received(), 0u);
  c.reset_stats();
  EXPECT_EQ(c.stats().diffs_collected, 0u);
}

TEST_F(ClientApi, RaiiGuards) {
  Client c(factory_);
  ClientSegment* seg = c.open_segment("alpha/raii");
  {
    WriteLock lock(c, seg);
    EXPECT_TRUE(seg->write_locked());
    c.malloc_block(seg, c.types().primitive(PrimitiveKind::kInt32));
  }
  EXPECT_FALSE(seg->write_locked());
  {
    ReadLock lock(c, seg);
    EXPECT_EQ(seg->read_locks(), 1);
    ReadLock nested(c, seg);
    EXPECT_EQ(seg->read_locks(), 2);
  }
  EXPECT_EQ(seg->read_locks(), 0);
}

TEST_F(ClientApi, CApiFacade) {
  Client c(factory_);
  IW_init(&c);
  IW_handle_t h = IW_open_segment("alpha/capi");
  const TypeDescriptor* int_t = IW_client().types().primitive(PrimitiveKind::kInt32);
  IW_wl_acquire(h);
  auto* v = static_cast<int32_t*>(IW_malloc(h, int_t, "v"));
  *v = 5;
  IW_wl_release(h);
  IW_set_coherence(h, CoherencePolicy::delta(1));
  IW_rl_acquire(h);
  EXPECT_EQ(*static_cast<int32_t*>(IW_mip_to_ptr("alpha/capi#v#0")), 5);
  EXPECT_EQ(IW_ptr_to_mip(v), "alpha/capi#v#0");
  IW_rl_release(h);
  IW_wl_acquire(h);
  IW_free(h, v);
  IW_wl_release(h);
  IW_init(nullptr);
  EXPECT_THROW(IW_client(), Error);
}

TEST_F(ClientApi, ReadLockIsSharedAcrossClients) {
  Client a(factory_);
  Client b(factory_);
  ClientSegment* sa = a.open_segment("alpha/shared-read");
  ClientSegment* sb = b.open_segment("alpha/shared-read");
  a.read_lock(sa);
  b.read_lock(sb);  // does not block
  a.read_unlock(sa);
  b.read_unlock(sb);
  SUCCEED();
}

TEST_F(ClientApi, FreeErrorPaths) {
  Client c(factory_);
  const TypeDescriptor* int_t = c.types().primitive(PrimitiveKind::kInt32);
  ClientSegment* seg = c.open_segment("alpha/free-errors");
  c.write_lock(seg);
  auto* p = static_cast<int32_t*>(c.malloc_block(seg, int_t));
  // Freeing an interior/invalid pointer is rejected.
  int local;
  EXPECT_THROW(c.free_block(seg, &local), Error);
  c.free_block(seg, p);
  c.write_unlock(seg);
  // Freeing without the write lock is rejected.
  EXPECT_THROW(c.free_block(seg, p), Error);
}

}  // namespace
}  // namespace iw
