// Transport fault injection and recovery: deterministic fault schedules,
// severed connections releasing server-side state, call deadlines with
// request context, and the reconnect supervisor replaying idempotent calls
// under a new session epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

Frame raw_call(ClientChannel& ch, MsgType type, Buffer payload) {
  return ch.call(type, std::move(payload));
}

Buffer open_payload(const std::string& url) {
  Buffer p;
  p.append_lp_string(url);
  p.append_u8(1);
  return p;
}

Buffer acquire_write_payload(const std::string& url, uint32_t version = 0) {
  Buffer p;
  p.append_lp_string(url);
  p.append_u32(version);
  return p;
}

Buffer empty_release_payload(const std::string& url, uint32_t version) {
  Buffer p;
  p.append_lp_string(url);
  DiffWriter(p, version, version).finish();
  return p;
}

TEST(FaultSchedule, SameSeedSameProgram) {
  FaultSchedule::Options opts;
  opts.seed = 99;
  opts.sever_rate = 0.05;
  opts.truncate_rate = 0.05;
  opts.drop_response_rate = 0.1;
  opts.delay_rate = 0.2;
  FaultSchedule a(opts);
  FaultSchedule b(opts);
  for (int i = 0; i < 500; ++i) {
    FaultAction fa = a.next_for_call(MsgType::kPing);
    FaultAction fb = b.next_for_call(MsgType::kPing);
    ASSERT_EQ(static_cast<int>(fa.kind), static_cast<int>(fb.kind)) << i;
    ASSERT_EQ(fa.delay_ms, fb.delay_ms) << i;
  }
}

TEST(FaultSchedule, OnlyTypeGatesFaults) {
  FaultSchedule::Options opts;
  opts.seed = 7;
  opts.drop_response_rate = 1.0;
  opts.only_type = MsgType::kReleaseWrite;
  FaultSchedule s(opts);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(static_cast<int>(s.next_for_call(MsgType::kPing).kind),
              static_cast<int>(FaultAction::Kind::kNone));
  }
  EXPECT_EQ(static_cast<int>(s.next_for_call(MsgType::kReleaseWrite).kind),
            static_cast<int>(FaultAction::Kind::kDropResponse));
}

TEST(FaultyChannelTest, SeverAtFrameIsDeterministic) {
  server::SegmentServer server;
  FaultSchedule::Options opts;
  opts.sever_at_frame = 3;
  auto schedule = std::make_shared<FaultSchedule>(opts);
  FaultyChannel ch(std::make_shared<InProcChannel>(server), schedule);

  raw_call(ch, MsgType::kPing, Buffer{});
  raw_call(ch, MsgType::kPing, Buffer{});
  try {
    raw_call(ch, MsgType::kPing, Buffer{});
    FAIL() << "third frame should sever";
  } catch (const Error& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(ErrorCode::kConnReset));
    EXPECT_TRUE(e.is_transport());
    EXPECT_TRUE(is_retryable_transport(e));
  }
  EXPECT_TRUE(ch.severed());
  // Everything after the sever fails the same way.
  EXPECT_THROW(raw_call(ch, MsgType::kPing, Buffer{}), Error);
}

TEST(FaultyChannelTest, DropResponseManifestsAsTimeout) {
  server::SegmentServer server;
  FaultSchedule::Options opts;
  opts.drop_response_rate = 1.0;
  auto schedule = std::make_shared<FaultSchedule>(opts);
  FaultyChannel ch(std::make_shared<InProcChannel>(server), schedule);

  uint64_t before = server.stats().requests;
  try {
    raw_call(ch, MsgType::kPing, Buffer{});
    FAIL() << "response should be dropped";
  } catch (const Error& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(ErrorCode::kTimedOut));
    EXPECT_TRUE(is_retryable_transport(e));
  }
  // The request *was* handled — only the response vanished. That asymmetry
  // is exactly what retry logic must survive.
  EXPECT_EQ(server.stats().requests, before + 1);
}

// The on_disconnect regression: a client that dies holding the writer lock
// (uncleanly — its release never arrives) must not wedge other writers.
TEST(FaultyChannelTest, SeveredWriterUnblocksWaiter) {
  server::SegmentServer server;
  const std::string url = "host/severed";

  FaultSchedule::Options opts;
  opts.sever_rate = 1.0;
  opts.only_type = MsgType::kReleaseWrite;
  auto schedule = std::make_shared<FaultSchedule>(opts);
  FaultyChannel a(std::make_shared<InProcChannel>(server), schedule);
  InProcChannel b(server);

  raw_call(a, MsgType::kOpenSegment, open_payload(url));
  raw_call(a, MsgType::kAcquireWrite, acquire_write_payload(url));

  std::atomic<bool> b_acquired{false};
  std::thread waiter([&] {
    raw_call(b, MsgType::kOpenSegment, open_payload(url));
    raw_call(b, MsgType::kAcquireWrite, acquire_write_payload(url));
    b_acquired.store(true);
  });
  // Give the waiter time to block inside the server.
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(b_acquired.load());

  // A's release dies on the wire; the sever runs the server's
  // on_disconnect, which must release the lock for B.
  EXPECT_THROW(raw_call(a, MsgType::kReleaseWrite,
                        empty_release_payload(url, 0)),
               Error);
  waiter.join();
  EXPECT_TRUE(b_acquired.load());
  raw_call(b, MsgType::kReleaseWrite, empty_release_payload(url, 0));
}

TEST(ReconnectTest, ClientSurvivesSeverTransparently) {
  server::SegmentServer server;
  FaultSchedule::Options fopts;
  fopts.sever_at_frame = 9;
  auto schedule = std::make_shared<FaultSchedule>(fopts);

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 4;
  Client client(
      [&](const std::string&) {
        return std::make_shared<FaultyChannel>(
            std::make_shared<InProcChannel>(server), schedule);
      },
      copts);

  ClientSegment* seg = client.open_segment("host/reconnect");
  const TypeDescriptor* arr = client.types().array_of(
      client.types().primitive(PrimitiveKind::kInt32), 8);

  int32_t* data = nullptr;
  for (int step = 0; step < 8; ++step) {
    for (int attempt = 0;; ++attempt) {
      try {
        client.write_lock(seg);
        if (auto* blk = seg->heap().find_by_name("counter")) {
          data = reinterpret_cast<int32_t*>(
              const_cast<uint8_t*>(blk->data()));
        } else {
          data = static_cast<int32_t*>(
              client.malloc_block(seg, arr, "counter"));
        }
        data[0] = step + 1;  // absolute value: re-sends converge
        client.write_unlock(seg);
        break;
      } catch (const Error& e) {
        // A release that died mid-flight is not replayed; the client
        // invalidated its cache and we redo the whole critical section.
        ASSERT_LT(attempt, 5) << e.what();
      }
    }
  }

  EXPECT_GE(client.stats().reconnects, 1u);

  // A fresh fault-free client sees the final committed value.
  Client verifier([&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  });
  ClientSegment* vseg = verifier.open_segment("host/reconnect");
  verifier.read_lock(vseg);
  auto* blk = vseg->heap().find_by_name("counter");
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(blk->data())[0], 8);
  verifier.read_unlock(vseg);
}

TEST(ReconnectTest, EpochAdvancesPerReconnect) {
  server::SegmentServer server;
  FaultSchedule::Options fopts;
  fopts.sever_at_frame = 4;  // hello(1) ping(2) ping(3) then sever
  auto schedule = std::make_shared<FaultSchedule>(fopts);

  client::ReconnectingChannel::Options ropts;
  ropts.initial_backoff_ms = 1;
  client::ReconnectingChannel ch(
      [&] {
        return std::make_shared<FaultyChannel>(
            std::make_shared<InProcChannel>(server), schedule);
      },
      ropts);
  EXPECT_EQ(ch.session_epoch(), 1u);
  EXPECT_EQ(ch.server_lease_ms(), 10'000u);  // server default, via kHelloResp

  raw_call(ch, MsgType::kPing, Buffer{});
  raw_call(ch, MsgType::kPing, Buffer{});
  // Frame 4 severs; the supervisor reconnects (hello = frame 5) and
  // replays the ping on the new session.
  raw_call(ch, MsgType::kPing, Buffer{});
  EXPECT_EQ(ch.session_epoch(), 2u);
  ChannelFaultStats stats = ch.fault_stats();
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.retried_calls, 1u);
}

/// ServerCore whose handle() stalls for a configurable time — the server
/// half of a call-deadline test.
class StallCore final : public ServerCore {
 public:
  void on_connect(SessionId, Notifier) override {}
  void on_disconnect(SessionId) override {}
  Frame handle(SessionId, const Frame&) override {
    std::this_thread::sleep_for(milliseconds(delay_ms.load()));
    Frame resp;
    resp.type = MsgType::kPingResp;
    return resp;
  }
  std::atomic<int> delay_ms{0};
};

TEST(TcpDeadlineTest, CallDeadlineCarriesContext) {
  StallCore core;
  core.delay_ms = 400;
  TcpServer server(core, 0);
  TcpClientChannel::Options opts;
  opts.call_timeout_ms = 60;
  TcpClientChannel ch(server.port(), opts);

  try {
    raw_call(ch, MsgType::kPing, Buffer{});
    FAIL() << "call should hit its deadline";
  } catch (const Error& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(ErrorCode::kTimedOut));
    EXPECT_TRUE(e.is_transport());
    std::string what = e.what();
    EXPECT_NE(what.find("kPing"), std::string::npos) << what;
    EXPECT_NE(what.find("req#"), std::string::npos) << what;
    EXPECT_NE(what.find("ms"), std::string::npos) << what;
  }
  EXPECT_EQ(ch.fault_stats().call_timeouts, 1u);

  // The late response to the abandoned request must be discarded, not
  // mistaken for the next call's response.
  std::this_thread::sleep_for(milliseconds(500));
  core.delay_ms = 0;
  Frame resp = raw_call(ch, MsgType::kPing, Buffer{});
  EXPECT_EQ(static_cast<int>(resp.type), static_cast<int>(MsgType::kPingResp));
  server.shutdown();
}

TEST(TcpDeadlineTest, ConnectFailureIsTransportError) {
  // Grab a port and close the listener so nothing is listening on it.
  uint16_t dead_port;
  {
    server::SegmentServer core;
    TcpServer probe(core, 0);
    dead_port = probe.port();
    probe.shutdown();
  }
  try {
    TcpClientChannel ch(dead_port);
    FAIL() << "connect should fail";
  } catch (const Error& e) {
    EXPECT_TRUE(e.is_transport()) << e.what();
  }
}

}  // namespace
}  // namespace iw
