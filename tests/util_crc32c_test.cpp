// Known-answer and differential tests for util/crc32c: the RFC 3720 §B.4
// vectors pin down the exact polynomial/reflection/finalization convention
// (the WAL's on-disk framing depends on it never changing), and the
// software slice-by-8 path is cross-checked against whatever the dispatcher
// picked (the hardware instruction path on SSE4.2/ARMv8-CRC machines).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/crc32c.hpp"
#include "util/rand.hpp"

namespace iw {
namespace {

TEST(Crc32c, Rfc3720KnownAnswers) {
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<uint8_t> incr(32);
  std::iota(incr.begin(), incr.end(), uint8_t{0});
  EXPECT_EQ(crc32c(incr.data(), incr.size()), 0x46DD794Eu);

  std::vector<uint8_t> decr(incr.rbegin(), incr.rend());
  EXPECT_EQ(crc32c(decr.data(), decr.size()), 0x113FDB5Cu);

  const uint8_t iscsi_read[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  EXPECT_EQ(crc32c(iscsi_read, sizeof iscsi_read), 0xD9963A56u);
}

TEST(Crc32c, CheckStringAndEmpty) {
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
  EXPECT_EQ(crc32c(s, 0), 0u);
  EXPECT_EQ(crc32c_extend(0, s, 0), 0u);
}

TEST(Crc32c, ExtendComposesLikeConcatenation) {
  SplitMix64 rng(0xC0C32C);
  std::vector<uint8_t> buf(4096);
  for (auto& b : buf) b = static_cast<uint8_t>(rng());
  uint32_t whole = crc32c(buf.data(), buf.size());
  // Every split point, including ones that leave unaligned tails for the
  // 8-byte folding loops.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                     size_t{63}, size_t{1000}, size_t{4095}, size_t{4096}}) {
    uint32_t a = crc32c(buf.data(), cut);
    uint32_t b = crc32c_extend(a, buf.data() + cut, buf.size() - cut);
    EXPECT_EQ(b, whole) << "cut at " << cut;
  }
}

TEST(Crc32c, SoftwareMatchesDispatchedPath) {
  // On SSE4.2/ARMv8-CRC hosts this is a real hardware-vs-software
  // differential; elsewhere it degenerates to software-vs-software (still
  // exercises both entry points). Unaligned starts included.
  SplitMix64 rng(7);
  std::vector<uint8_t> buf(8192 + 8);
  for (auto& b : buf) b = static_cast<uint8_t>(rng());
  for (size_t offset = 0; offset < 8; ++offset) {
    for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{8}, size_t{15},
                       size_t{16}, size_t{255}, size_t{8192}}) {
      EXPECT_EQ(crc32c_extend(0x12345678u, buf.data() + offset, len),
                crc32c_sw(0x12345678u, buf.data() + offset, len))
          << "offset " << offset << " len " << len;
    }
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<uint8_t> buf(257, 0xA5);
  uint32_t base = crc32c(buf.data(), buf.size());
  SplitMix64 rng(99);
  for (int i = 0; i < 64; ++i) {
    size_t byte = rng.below(buf.size());
    uint8_t bit = static_cast<uint8_t>(1u << rng.below(8));
    buf[byte] ^= bit;
    EXPECT_NE(crc32c(buf.data(), buf.size()), base);
    buf[byte] ^= bit;
  }
}

}  // namespace
}  // namespace iw
