// Distributed lock caching: a client retains its reader lock after
// release and satisfies repeat acquires with zero RPCs; the server revokes
// cached locks when a writer arrives (bounded by the revocation deadline);
// concurrent local threads sub-let one cached lock. Protocol negotiation
// keeps old clients working unchanged.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

using client::ReconnectingChannel;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

Client::ChannelFactory inproc_factory(ServerCore& core) {
  return [&core](const std::string&) {
    return std::make_shared<InProcChannel>(core);
  };
}

/// Creates (or updates) `url`'s one named int32[4] block "a" = `value`.
void seed_segment(Client& writer, ClientSegment* seg, int32_t value) {
  const TypeDescriptor* arr = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), 4);
  writer.write_lock(seg);
  client::BlockHeader* blk = seg->heap().find_by_name("a");
  auto* data = blk != nullptr
                   ? reinterpret_cast<int32_t*>(
                         const_cast<uint8_t*>(blk->data()))
                   : static_cast<int32_t*>(writer.malloc_block(seg, arr, "a"));
  for (int i = 0; i < 4; ++i) data[i] = value;
  writer.write_unlock(seg);
}

int32_t read_value(Client& reader, ClientSegment* seg,
                   const std::string& url) {
  reader.read_lock(seg);
  auto* p = static_cast<int32_t*>(reader.mip_to_ptr(url + "#a#0"));
  int32_t v = p == nullptr ? -1 : p[0];
  reader.read_unlock(seg);
  return v;
}

TEST(LockCache, RepeatReadAcquiresHitCacheWithoutRpc) {
  server::SegmentServer core;
  const std::string url = "host/cache-hit";
  Client writer(inproc_factory(core));
  seed_segment(writer, writer.open_segment(url), 7);

  Client reader(inproc_factory(core));
  ClientSegment* rs = reader.open_segment(url);
  EXPECT_EQ(read_value(reader, rs, url), 7);  // pays the RPC, earns the grant
  const uint64_t server_calls = reader.stats().read_lock_server_calls;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(read_value(reader, rs, url), 7);
  }
  ClientStats stats = reader.stats();
  EXPECT_EQ(stats.lock_cache_hits, 10u);
  EXPECT_EQ(stats.lock_cache_misses, 1u);
  EXPECT_EQ(stats.read_lock_server_calls, server_calls)
      << "cached acquires must cost zero RPCs";
  EXPECT_GE(core.stats().cached_read_grants, 1u);
}

TEST(LockCache, DisabledOptionFallsBackToRpcPerAcquire) {
  if (std::getenv("IW_LOCK_CACHE") != nullptr) {
    GTEST_SKIP() << "IW_LOCK_CACHE overrides the option under test";
  }
  server::SegmentServer core;
  const std::string url = "host/cache-off";
  Client writer(inproc_factory(core));
  seed_segment(writer, writer.open_segment(url), 3);

  Client::Options copts;
  copts.cache_read_locks = false;
  Client reader(inproc_factory(core), copts);
  ClientSegment* rs = reader.open_segment(url);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(read_value(reader, rs, url), 3);
  }
  ClientStats stats = reader.stats();
  EXPECT_EQ(stats.lock_cache_hits, 0u);
  EXPECT_EQ(stats.lock_cache_misses, 0u);
  // Full coherence without caching pays one acquire RPC per lock.
  EXPECT_EQ(stats.read_lock_server_calls, 5u);
}

TEST(LockCache, WriterRevokesIdleCachedLock) {
  server::SegmentServer core;
  const std::string url = "host/revoke-idle";
  Client writer(inproc_factory(core));
  ClientSegment* ws = writer.open_segment(url);
  seed_segment(writer, ws, 1);

  Client reader(inproc_factory(core));
  ClientSegment* rs = reader.open_segment(url);
  EXPECT_EQ(read_value(reader, rs, url), 1);  // lock now cached, reader idle

  // The writer must drain the cached lock before committing; the reader's
  // ack thread releases it without any reader-side activity.
  seed_segment(writer, ws, 2);

  server::SegmentServer::Stats sstats = core.stats();
  EXPECT_EQ(sstats.revokes_sent, 1u);
  EXPECT_EQ(sstats.revokes_acked, 1u);
  EXPECT_EQ(sstats.revokes_expired, 0u);
  // The ack counter is bumped by the reader's ack thread just after the
  // server processes the ack; allow it a moment.
  for (int spin = 0; spin < 200 && reader.stats().revokes_acked == 0; ++spin) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(reader.stats().revokes_acked, 1u);

  // The cached entry is gone: the next read pays an RPC and sees the new
  // data (the zero-RPC fast path would have been unsound here otherwise).
  const uint64_t misses = reader.stats().lock_cache_misses;
  EXPECT_EQ(read_value(reader, rs, url), 2);
  EXPECT_EQ(reader.stats().lock_cache_misses, misses + 1);
}

TEST(LockCache, RevokeDefersToCriticalSectionExit) {
  server::SegmentServer core;
  const std::string url = "host/revoke-defer";
  Client writer(inproc_factory(core));
  ClientSegment* ws = writer.open_segment(url);
  seed_segment(writer, ws, 1);

  Client reader(inproc_factory(core));
  ClientSegment* rs = reader.open_segment(url);
  reader.read_lock(rs);  // inside the critical section, grant held

  std::atomic<bool> acquired{false};
  std::thread w([&] {
    writer.write_lock(ws);
    acquired.store(true);
    writer.write_unlock(ws);
  });
  // The revoke must not be honoured while a reader is inside.
  std::this_thread::sleep_for(milliseconds(100));
  EXPECT_FALSE(acquired.load())
      << "writer acquired while a cached-lock reader was inside its CS";
  reader.read_unlock(rs);  // last reader out: deferred ack fires
  w.join();
  EXPECT_TRUE(acquired.load());

  server::SegmentServer::Stats sstats = core.stats();
  EXPECT_EQ(sstats.revokes_sent, 1u);
  EXPECT_EQ(sstats.revokes_acked, 1u);
  EXPECT_EQ(sstats.revokes_expired, 0u);
}

TEST(LockCache, SubletGrantsExtraLocalThreadUnderOneLock) {
  server::SegmentServer core;
  const std::string url = "host/sublet";
  Client writer(inproc_factory(core));
  seed_segment(writer, writer.open_segment(url), 5);

  Client reader(inproc_factory(core));
  ClientSegment* rs = reader.open_segment(url);
  reader.read_lock(rs);
  std::thread t([&] {
    reader.read_lock(rs);  // rides the first thread's lock: no RPC
    reader.read_unlock(rs);
  });
  t.join();
  reader.read_unlock(rs);
  EXPECT_EQ(reader.stats().sublet_grants, 1u);
  EXPECT_EQ(reader.stats().read_lock_server_calls, 1u);
}

TEST(LockCache, RevocationDeadlineBoundsWriterStall) {
  server::SegmentServer::Options sopts;
  sopts.revoke_deadline_ms = 150;
  sopts.writer_lease_ms = 0;
  server::SegmentServer core(sopts);
  const std::string url = "host/revoke-deadline";
  Client writer(inproc_factory(core));
  ClientSegment* ws = writer.open_segment(url);
  seed_segment(writer, ws, 1);

  Client reader(inproc_factory(core));
  ClientSegment* rs = reader.open_segment(url);
  reader.read_lock(rs);  // stuck reader: never leaves the critical section

  // Writer starvation is bounded: the server force-expires the cached lock
  // at the revocation deadline instead of waiting on a sick client.
  auto start = steady_clock::now();
  writer.write_lock(ws);
  auto waited =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  writer.write_unlock(ws);
  EXPECT_GE(waited.count(), 100) << "writer did not wait for the revocation";
  EXPECT_LT(waited.count(), 2'000) << "writer stalled past the deadline";
  EXPECT_EQ(core.stats().revokes_expired, 1u);

  // The stuck reader eventually unlocks; its stale ack is idempotent and
  // the next acquire resynchronizes.
  reader.read_unlock(rs);
  seed_segment(writer, ws, 9);
  EXPECT_EQ(read_value(reader, rs, url), 9);
}

// --- protocol level -------------------------------------------------------

Frame raw_call(ClientChannel& ch, MsgType type, Buffer payload) {
  return ch.call(type, std::move(payload));
}

Buffer open_payload(const std::string& url) {
  Buffer p;
  p.append_lp_string(url);
  p.append_u8(1);
  return p;
}

Buffer acquire_read_payload(const std::string& url) {
  Buffer p;
  p.append_lp_string(url);
  p.append_u32(0);
  p.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
  p.append_u64(0);
  return p;
}

Buffer acquire_write_payload(const std::string& url) {
  Buffer p;
  p.append_lp_string(url);
  p.append_u32(0);
  return p;
}

Buffer empty_release_payload(const std::string& url, uint32_t version) {
  Buffer p;
  p.append_lp_string(url);
  DiffWriter(p, version, version).finish();
  return p;
}

TEST(LockCache, ReleaseReadKeepFlagRetainsServerRegistration) {
  server::SegmentServer::Options sopts;
  sopts.revoke_deadline_ms = 100;
  sopts.writer_lease_ms = 0;
  server::SegmentServer core(sopts);
  const std::string url = "host/keep-flag";

  // A negotiating session (the hello handshake announces lock caching).
  ReconnectingChannel::Options ropts;
  ropts.announce_lock_caching = true;
  auto reader = std::make_shared<ReconnectingChannel>(
      [&core]() -> std::shared_ptr<ClientChannel> {
        return std::make_shared<InProcChannel>(core);
      },
      ropts);
  raw_call(*reader, MsgType::kOpenSegment, open_payload(url));
  EXPECT_TRUE(reader->supports_lock_caching());
  EXPECT_EQ(reader->server_revoke_deadline_ms(), 100u);

  auto writer = std::make_shared<InProcChannel>(core);
  EXPECT_FALSE(writer->supports_lock_caching());  // no hello, no caching
  raw_call(*writer, MsgType::kOpenSegment, open_payload(url));

  // Acquire grants a cached lock (trailing byte); a *plain* release
  // surrenders it — the writer then acquires without any revocation.
  Frame resp = raw_call(*reader, MsgType::kAcquireRead,
                        acquire_read_payload(url));
  ASSERT_FALSE(resp.payload.empty());
  EXPECT_EQ(resp.payload.back(), 1u) << "grant byte missing or denied";
  Buffer plain;
  plain.append_lp_string(url);
  raw_call(*reader, MsgType::kReleaseRead, std::move(plain));

  auto start = steady_clock::now();
  raw_call(*writer, MsgType::kAcquireWrite, acquire_write_payload(url));
  auto waited =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  EXPECT_LT(waited.count(), 80) << "plain release left the lock registered";
  EXPECT_EQ(core.stats().revokes_sent, 0u);
  raw_call(*writer, MsgType::kReleaseWrite, empty_release_payload(url, 0));

  // With the keep flag the registration survives the release: the next
  // writer must revoke, and — this session never acks — waits out the full
  // revocation deadline.
  resp = raw_call(*reader, MsgType::kAcquireRead, acquire_read_payload(url));
  ASSERT_FALSE(resp.payload.empty());
  EXPECT_EQ(resp.payload.back(), 1u);
  Buffer keep;
  keep.append_lp_string(url);
  keep.append_u8(1);
  raw_call(*reader, MsgType::kReleaseRead, std::move(keep));

  start = steady_clock::now();
  raw_call(*writer, MsgType::kAcquireWrite, acquire_write_payload(url));
  waited =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  EXPECT_GE(waited.count(), 50) << "kept lock did not force a revocation";
  EXPECT_EQ(core.stats().revokes_sent, 1u);
  EXPECT_EQ(core.stats().revokes_expired, 1u);
  raw_call(*writer, MsgType::kReleaseWrite, empty_release_payload(url, 0));
}

TEST(LockCache, ExpiredGrantSweepReclaimsWedgedHolder) {
  server::SegmentServer::Options sopts;
  sopts.revoke_deadline_ms = 400;
  sopts.cached_grant_ttl_ms = 60;
  sopts.writer_lease_ms = 0;
  server::SegmentServer core(sopts);
  const std::string url = "host/ttl-sweep";

  // A wedged holder: negotiates caching, keeps the registration on release,
  // and will never ack a revoke. The TTL exists for exactly this client.
  ReconnectingChannel::Options ropts;
  ropts.announce_lock_caching = true;
  auto reader = std::make_shared<ReconnectingChannel>(
      [&core]() -> std::shared_ptr<ClientChannel> {
        return std::make_shared<InProcChannel>(core);
      },
      ropts);
  raw_call(*reader, MsgType::kOpenSegment, open_payload(url));
  Frame resp = raw_call(*reader, MsgType::kAcquireRead,
                        acquire_read_payload(url));
  ASSERT_FALSE(resp.payload.empty());
  ASSERT_EQ(resp.payload.back(), 1u) << "grant byte missing or denied";
  Buffer keep;
  keep.append_lp_string(url);
  keep.append_u8(1);
  raw_call(*reader, MsgType::kReleaseRead, std::move(keep));

  // Fresh grants survive a sweep; only idle-past-TTL ones are reclaimed.
  EXPECT_EQ(core.sweep_expired_grants(), 0u);
  std::this_thread::sleep_for(milliseconds(120));
  EXPECT_EQ(core.sweep_expired_grants(), 1u);
  EXPECT_EQ(core.stats().expired_grants_swept, 1u);

  // The grant is gone server-side: a writer acquires without revoking and
  // without waiting out the revocation deadline.
  auto writer = std::make_shared<InProcChannel>(core);
  raw_call(*writer, MsgType::kOpenSegment, open_payload(url));
  auto start = steady_clock::now();
  raw_call(*writer, MsgType::kAcquireWrite, acquire_write_payload(url));
  auto waited =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  EXPECT_LT(waited.count(), 200) << "swept grant still stalled the writer";
  EXPECT_EQ(core.stats().revokes_sent, 0u);
  raw_call(*writer, MsgType::kReleaseWrite, empty_release_payload(url, 0));
}

TEST(LockCache, WriterAppliesGrantTtlInlineWithoutSweep) {
  server::SegmentServer::Options sopts;
  sopts.revoke_deadline_ms = 400;
  sopts.cached_grant_ttl_ms = 60;
  sopts.writer_lease_ms = 0;
  server::SegmentServer core(sopts);
  const std::string url = "host/ttl-inline";

  ReconnectingChannel::Options ropts;
  ropts.announce_lock_caching = true;
  auto reader = std::make_shared<ReconnectingChannel>(
      [&core]() -> std::shared_ptr<ClientChannel> {
        return std::make_shared<InProcChannel>(core);
      },
      ropts);
  raw_call(*reader, MsgType::kOpenSegment, open_payload(url));
  Frame resp = raw_call(*reader, MsgType::kAcquireRead,
                        acquire_read_payload(url));
  ASSERT_FALSE(resp.payload.empty());
  ASSERT_EQ(resp.payload.back(), 1u);
  Buffer keep;
  keep.append_lp_string(url);
  keep.append_u8(1);
  raw_call(*reader, MsgType::kReleaseRead, std::move(keep));
  std::this_thread::sleep_for(milliseconds(120));

  // No explicit sweep: the writer's own revocation pass applies the TTL
  // before fanning out, so the expired grant costs it neither a revoke
  // round trip nor the deadline.
  auto writer = std::make_shared<InProcChannel>(core);
  raw_call(*writer, MsgType::kOpenSegment, open_payload(url));
  auto start = steady_clock::now();
  raw_call(*writer, MsgType::kAcquireWrite, acquire_write_payload(url));
  auto waited =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  EXPECT_LT(waited.count(), 200) << "expired grant was revoked, not dropped";
  EXPECT_EQ(core.stats().revokes_sent, 0u);
  EXPECT_EQ(core.stats().expired_grants_swept, 1u);
  raw_call(*writer, MsgType::kReleaseWrite, empty_release_payload(url, 0));
}

TEST(LockCache, NonNegotiatingClientsSeeNoGrants) {
  server::SegmentServer core;
  const std::string url = "host/old-client";
  Client writer(inproc_factory(core));
  seed_segment(writer, writer.open_segment(url), 4);

  // auto_reconnect off: raw channel, no hello, no negotiation — the exact
  // shape of a pre-lock-caching client. Everything must work unchanged.
  Client::Options copts;
  copts.auto_reconnect = false;
  Client reader(inproc_factory(core), copts);
  ClientSegment* rs = reader.open_segment(url);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(read_value(reader, rs, url), 4);
  }
  EXPECT_EQ(reader.stats().lock_cache_hits, 0u);
  EXPECT_EQ(core.stats().cached_read_grants, 0u);
  EXPECT_EQ(core.stats().revokes_sent, 0u);
}

// --- over real sockets ----------------------------------------------------

TEST(LockCacheTcp, RevokeRoundTripOverSockets) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  uint16_t port = server.port();
  auto factory = [port](const std::string&) {
    return std::make_shared<TcpClientChannel>(port);
  };

  Client writer(factory);
  ClientSegment* ws = writer.open_segment("host/tcp-revoke");
  seed_segment(writer, ws, 1);

  Client reader(factory);
  ClientSegment* rs = reader.open_segment("host/tcp-revoke");
  EXPECT_EQ(read_value(reader, rs, "host/tcp-revoke"), 1);
  EXPECT_EQ(read_value(reader, rs, "host/tcp-revoke"), 1);
  EXPECT_EQ(reader.stats().lock_cache_hits, 1u);

  seed_segment(writer, ws, 2);  // revokes the cached lock over the wire

  EXPECT_EQ(read_value(reader, rs, "host/tcp-revoke"), 2);
  server::SegmentServer::Stats sstats = core.stats();
  EXPECT_EQ(sstats.revokes_sent, 1u);
  EXPECT_EQ(sstats.revokes_acked, 1u);
  EXPECT_EQ(sstats.revokes_expired, 0u);
}

TEST(LockCacheTcp, CallInsideNotifyHandlerDoesNotDeadlock) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  const std::string url = "host/notify-reentry";

  // A raw channel that issues a *call* from inside its notification
  // handler. The handler runs on the channel's dispatcher thread, so the
  // receiver thread stays free to deliver the call's response; before
  // notifications were decoupled from the receiver this deadlocked.
  TcpClientChannel sub(server.port());
  std::mutex mu;
  std::condition_variable cv;
  bool pinged = false;
  sub.set_notify_handler([&](const Frame& frame) {
    if (frame.type != MsgType::kNotifyVersion) return;
    Buffer empty;
    Frame resp = sub.call(MsgType::kPing, std::move(empty));
    std::lock_guard lock(mu);
    pinged = resp.type == MsgType::kPingResp;
    cv.notify_all();
  });
  raw_call(sub, MsgType::kOpenSegment, open_payload(url));
  Buffer subscribe;
  subscribe.append_lp_string(url);
  raw_call(sub, MsgType::kSubscribe, std::move(subscribe));

  uint16_t port = server.port();
  Client writer([port](const std::string&) {
    return std::make_shared<TcpClientChannel>(port);
  });
  seed_segment(writer, writer.open_segment(url), 1);  // commit -> notify

  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return pinged; }))
      << "call from inside the notify handler deadlocked";
}

}  // namespace
}  // namespace iw
