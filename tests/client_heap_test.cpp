// Unit tests for the client heap: subsegment growth, block allocation and
// reuse, metadata trees, address lookups, and the fault registry.
#include "client/heap.hpp"

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "net/inproc.hpp"
#include "server/server.hpp"

namespace iw::client {
namespace {

/// A heap needs an owning ClientSegment; build one through a real client.
class HeapFixture : public ::testing::Test {
 protected:
  HeapFixture()
      : client_([this](const std::string&) {
          return std::make_shared<InProcChannel>(server_);
        }) {
    seg_ = client_.open_segment("host/heap-test");
    client_.write_lock(seg_);
  }
  ~HeapFixture() override { client_.write_unlock(seg_); }

  const TypeDescriptor* int_array(uint64_t n) {
    return client_.types().array_of(
        client_.types().primitive(PrimitiveKind::kInt32), n);
  }

  server::SegmentServer server_;
  Client client_;
  ClientSegment* seg_ = nullptr;
};

TEST_F(HeapFixture, BlocksAreZeroInitializedAndAligned) {
  auto* p = static_cast<uint8_t*>(
      client_.malloc_block(seg_, int_array(100)));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
  for (int i = 0; i < 400; ++i) EXPECT_EQ(p[i], 0);
}

TEST_F(HeapFixture, FindBySerialNameAddress) {
  auto* a = client_.malloc_block(seg_, int_array(10), "alpha");
  auto* b = client_.malloc_block(seg_, int_array(10));
  const SegmentHeap& heap = seg_->heap();

  BlockHeader* ba = heap.find_by_name("alpha");
  ASSERT_NE(ba, nullptr);
  EXPECT_EQ(ba->data(), a);
  EXPECT_EQ(heap.find_by_serial(ba->serial), ba);
  EXPECT_EQ(heap.find_by_name("beta"), nullptr);

  // Address lookup hits anywhere inside the data, not just the start.
  EXPECT_EQ(heap.find_by_address(static_cast<uint8_t*>(b) + 17),
            BlockHeader::from_data(b));
  // Addresses in headers/free space miss.
  EXPECT_EQ(heap.find_by_address(static_cast<uint8_t*>(a) - 4), nullptr);
}

TEST_F(HeapFixture, LargeBlockGetsOwnSubsegment) {
  // 1 MiB block exceeds the 64 KiB default subsegment size.
  auto* p = client_.malloc_block(seg_, int_array(256 * 1024));
  ASSERT_NE(p, nullptr);
  BlockHeader* block = BlockHeader::from_data(p);
  EXPECT_GE(block->subseg->bytes, (size_t)1 << 20);
  // And a small block still fits in a small subsegment afterwards.
  auto* q = client_.malloc_block(seg_, int_array(4));
  EXPECT_NE(q, nullptr);
}

TEST_F(HeapFixture, FreeSpaceIsReused) {
  void* p = client_.malloc_block(seg_, int_array(1000));
  client_.free_block(seg_, p);
  void* q = client_.malloc_block(seg_, int_array(1000));
  EXPECT_EQ(p, q) << "freed chunk should be reused first-fit";
}

TEST_F(HeapFixture, ManyBlocksAllFindable) {
  std::vector<void*> blocks;
  for (int i = 0; i < 500; ++i) {
    blocks.push_back(client_.malloc_block(seg_, int_array(1 + i % 37)));
  }
  const SegmentHeap& heap = seg_->heap();
  EXPECT_EQ(heap.block_count(), 500u);
  for (void* p : blocks) {
    EXPECT_EQ(heap.find_by_address(p), BlockHeader::from_data(p));
  }
  // total units = sum (1 + i%37)
  uint64_t expect_units = 0;
  for (int i = 0; i < 500; ++i) expect_units += 1 + i % 37;
  EXPECT_EQ(heap.total_prim_units(), expect_units);
}

TEST_F(HeapFixture, AdjacentFreesCoalesceForward) {
  void* a = client_.malloc_block(seg_, int_array(500));
  void* b = client_.malloc_block(seg_, int_array(500));
  client_.malloc_block(seg_, int_array(4));  // pin the tail
  size_t base_chunks = seg_->heap().free_chunk_count();
  // Free b then a: a's reclaim must merge forward into b's chunk.
  client_.free_block(seg_, b);
  client_.free_block(seg_, a);
  EXPECT_EQ(seg_->heap().free_chunk_count(), base_chunks + 1);
  // A block larger than either alone fits in the merged chunk.
  void* big = client_.malloc_block(seg_, int_array(950));
  EXPECT_EQ(big, a);
}

TEST_F(HeapFixture, AdjacentFreesCoalesceBackward) {
  void* a = client_.malloc_block(seg_, int_array(500));
  void* b = client_.malloc_block(seg_, int_array(500));
  client_.malloc_block(seg_, int_array(4));
  size_t base_chunks = seg_->heap().free_chunk_count();
  // Free a then b: b's reclaim must merge backward into a's chunk.
  client_.free_block(seg_, a);
  client_.free_block(seg_, b);
  EXPECT_EQ(seg_->heap().free_chunk_count(), base_chunks + 1);
  void* big = client_.malloc_block(seg_, int_array(950));
  EXPECT_EQ(big, a);
}

TEST_F(HeapFixture, ThreeWayCoalesce) {
  void* a = client_.malloc_block(seg_, int_array(300));
  void* b = client_.malloc_block(seg_, int_array(300));
  void* c = client_.malloc_block(seg_, int_array(300));
  client_.malloc_block(seg_, int_array(4));
  size_t base_chunks = seg_->heap().free_chunk_count();
  client_.free_block(seg_, a);
  client_.free_block(seg_, c);
  client_.free_block(seg_, b);  // merges with both neighbours
  EXPECT_EQ(seg_->heap().free_chunk_count(), base_chunks + 1);
  void* big = client_.malloc_block(seg_, int_array(850));
  EXPECT_EQ(big, a);
}

TEST_F(HeapFixture, ChurnDoesNotFragmentUnboundedly) {
  // Allocate/free in a pattern that would fragment without coalescing.
  std::vector<void*> blocks;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      blocks.push_back(client_.malloc_block(seg_, int_array(64 + i)));
    }
    for (void* p : blocks) client_.free_block(seg_, p);
    blocks.clear();
  }
  // Everything merged back: a handful of chunks (one per subsegment).
  EXPECT_LE(seg_->heap().free_chunk_count(), 4u);
}

TEST_F(HeapFixture, DuplicateNameRejected) {
  client_.malloc_block(seg_, int_array(1), "dup");
  EXPECT_THROW(client_.malloc_block(seg_, int_array(1), "dup"), Error);
}

TEST_F(HeapFixture, AllDigitNameRejected) {
  EXPECT_THROW(client_.malloc_block(seg_, int_array(1), "123"), Error);
}

TEST_F(HeapFixture, FaultRegistryFindsSubsegments) {
  auto* p = static_cast<uint8_t*>(client_.malloc_block(seg_, int_array(64)));
  FaultRegistry& registry = FaultRegistry::instance();
  Subsegment* subseg = registry.find(p);
  ASSERT_NE(subseg, nullptr);
  EXPECT_TRUE(subseg->contains(p));
  EXPECT_EQ(subseg->segment, seg_);
  // An address far outside any segment misses.
  int local;
  EXPECT_EQ(registry.find(&local), nullptr);
}

TEST_F(HeapFixture, SubsegmentChainIsWalkable) {
  // Force several subsegments.
  for (int i = 0; i < 4; ++i) {
    client_.malloc_block(seg_, int_array(20000));  // 80 KB each
  }
  int count = 0;
  for (Subsegment* s = seg_->heap().first_subsegment(); s != nullptr;
       s = s->next) {
    EXPECT_EQ(s->bytes % kPageSize, 0u);
    EXPECT_EQ(s->twins.size(), s->page_count());
    ++count;
  }
  EXPECT_GE(count, 4);
}

}  // namespace
}  // namespace iw::client
