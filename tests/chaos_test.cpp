// Chaos test: a deterministic multi-client workload driven through
// injected transport faults (severs, truncated frames, dropped responses,
// delays, duplicated/dropped notifications) must converge to exactly the
// state of a fault-free oracle run of the same seed, with no leaked writer
// locks — and a seeded faulty run must be bit-for-bit reproducible.
//
// The workload is built for at-least-once delivery: every block is named,
// every write stores absolute values derived from the step number, and a
// failed step is retried as a whole critical section. A release that was
// applied-but-unacknowledged therefore converges (the retry finds the
// block by name and rewrites the same values) instead of double-applying.
#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

constexpr int kClients = 3;
constexpr int kSteps = 120;
constexpr uint32_t kUnits = 4;
const char* const kUrl = "host/chaos";

using Model = std::map<std::string, std::vector<int32_t>>;

struct RunResult {
  Model blocks;            // final committed state, by block name
  uint32_t version = 0;    // final segment version
  uint64_t reconnects = 0;
  uint64_t retried_calls = 0;
  uint64_t call_timeouts = 0;
  uint64_t lease_expirations = 0;
  uint64_t stale_releases = 0;

  std::string fingerprint() const {
    std::ostringstream out;
    out << "v" << version << ";r" << reconnects << ";t" << retried_calls
        << ";o" << call_timeouts << ";";
    for (const auto& [name, values] : blocks) {
      out << name << "=";
      for (int32_t v : values) out << v << ",";
      out << ";";
    }
    return out.str();
  }
};

std::vector<int32_t> step_values(uint64_t seed, int step) {
  std::vector<int32_t> v(kUnits);
  for (uint32_t u = 0; u < kUnits; ++u) {
    v[u] = static_cast<int32_t>(seed * 1'000'003 + step * 101 + u);
  }
  return v;
}

void fill_block(client::BlockHeader* blk, const std::vector<int32_t>& values) {
  auto* data = reinterpret_cast<int32_t*>(const_cast<uint8_t*>(blk->data()));
  for (uint32_t u = 0; u < kUnits; ++u) data[u] = values[u];
}

Model snapshot_of(Client& c, ClientSegment* seg) {
  Model out;
  c.read_lock(seg);
  seg->heap().for_each_block([&](client::BlockHeader* blk) {
    EXPECT_NE(blk->name, nullptr) << "chaos workload only creates named blocks";
    if (blk->name == nullptr) return;
    const auto* data = reinterpret_cast<const int32_t*>(blk->data());
    out[*blk->name] = std::vector<int32_t>(data, data + kUnits);
  });
  c.read_unlock(seg);
  return out;
}

// Out-parameter (rather than a return value) so ASSERT_* can bail out.
void run_workload(uint64_t seed, bool faulty, RunResult* result) {
  server::SegmentServer::Options sopts;
  // Long relative to any injected stall: a lease reclaim during the run
  // would mean a writer lock leaked, which the final stats assert against.
  sopts.writer_lease_ms = 1'500;
  server::SegmentServer inner(sopts);

  FaultSchedule::Options server_fopts;
  server_fopts.seed = seed ^ 0x5eed5eed;
  auto server_schedule = std::make_shared<FaultSchedule>(server_fopts);
  FaultyServerCore::Options score_opts;
  score_opts.drop_notify_rate = 0.1;
  FaultyServerCore faulty_core(inner, server_schedule, score_opts);
  ServerCore& core = faulty ? static_cast<ServerCore&>(faulty_core)
                            : static_cast<ServerCore&>(inner);

  // One schedule per client, shared across that client's channel
  // incarnations so the fault program survives reconnects.
  std::vector<std::shared_ptr<FaultSchedule>> schedules;
  for (int i = 0; i < kClients; ++i) {
    FaultSchedule::Options fopts;
    fopts.seed = seed * 31 + static_cast<uint64_t>(i);
    fopts.sever_rate = 0.02;
    fopts.truncate_rate = 0.01;
    fopts.drop_response_rate = 0.03;
    fopts.delay_rate = 0.05;
    fopts.max_delay_ms = 2;
    fopts.duplicate_notify_rate = 0.1;
    auto schedule = std::make_shared<FaultSchedule>(fopts);
    schedule->arm(false);  // fault-free warm-up while clients connect
    schedules.push_back(std::move(schedule));
  }

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<ClientSegment*> segs;
  for (int i = 0; i < kClients; ++i) {
    Client::Options copts;
    copts.reconnect.initial_backoff_ms = 1;
    copts.reconnect.max_backoff_ms = 8;
    copts.reconnect.max_call_retries = 10;
    copts.reconnect.jitter_seed = seed + static_cast<uint64_t>(i) + 1;
    auto schedule = schedules[static_cast<size_t>(i)];
    auto factory = [&core, schedule, faulty](const std::string&) {
      std::shared_ptr<ClientChannel> ch =
          std::make_shared<InProcChannel>(core);
      if (faulty) ch = std::make_shared<FaultyChannel>(ch, schedule);
      return ch;
    };
    clients.push_back(std::make_unique<Client>(factory, copts));
    segs.push_back(clients.back()->open_segment(kUrl));
  }
  for (auto& s : schedules) s->arm(true);

  const TypeDescriptor* arr = clients[0]->types().array_of(
      clients[0]->types().primitive(PrimitiveKind::kInt32), kUnits);

  SplitMix64 rng(seed);
  Model model;
  int next_block = 0;

  for (int step = 0; step < kSteps; ++step) {
    int who = static_cast<int>(rng.below(kClients));
    Client& c = *clients[static_cast<size_t>(who)];
    ClientSegment* seg = segs[static_cast<size_t>(who)];
    uint64_t action = rng.below(10);
    std::vector<int32_t> values = step_values(seed, step);

    // Decide the step's full intent up front so every retry replays the
    // identical mutation.
    std::string target;
    if (action < 3 || model.empty()) {
      target = "b" + std::to_string(next_block++);  // alloc (or first op)
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      target = it->first;
    }
    enum class Op { kUpsert, kFree, kVerify } op = Op::kUpsert;
    if (action < 3 || model.empty()) {
      op = Op::kUpsert;
    } else if (action < 8) {
      op = Op::kUpsert;
    } else if (action == 8) {
      op = Op::kFree;
    } else {
      op = Op::kVerify;
    }

    for (int attempt = 0;; ++attempt) {
      try {
        if (op == Op::kVerify) {
          Model seen = snapshot_of(c, seg);
          ASSERT_EQ(seen.size(), model.size()) << "step " << step;
          for (const auto& [name, vals] : model) {
            auto it = seen.find(name);
            ASSERT_NE(it, seen.end()) << "step " << step << " lost " << name;
            ASSERT_EQ(it->second, vals) << "step " << step << " " << name;
          }
          break;
        }
        c.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (op == Op::kFree) {
          // An applied-but-unacknowledged free leaves no block: done.
          if (blk != nullptr) {
            c.free_block(seg, const_cast<uint8_t*>(blk->data()));
          }
        } else {
          // An applied-but-unacknowledged alloc leaves the block behind:
          // find it instead of allocating a duplicate under the same name.
          if (blk == nullptr) {
            c.malloc_block(seg, arr, target);
            blk = seg->heap().find_by_name(target);
          }
          fill_block(blk, values);
        }
        c.write_unlock(seg);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 8) << "seed " << seed << " step " << step << ": "
                              << e.what();
      }
    }
    if (op == Op::kUpsert) {
      model[target] = values;
    } else if (op == Op::kFree) {
      model.erase(target);
    }
  }

  // Every client converges on the oracle model.
  for (int i = 0; i < kClients; ++i) {
    Model seen = snapshot_of(*clients[static_cast<size_t>(i)],
                             segs[static_cast<size_t>(i)]);
    EXPECT_EQ(seen, model) << "client " << i << " diverged, seed " << seed;
  }

  // No leaked locks: every client can still complete a write cycle without
  // waiting out a lease...
  for (int i = 0; i < kClients; ++i) {
    Client& c = *clients[static_cast<size_t>(i)];
    for (int attempt = 0;; ++attempt) {
      try {
        c.write_lock(segs[static_cast<size_t>(i)]);
        c.write_unlock(segs[static_cast<size_t>(i)]);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 8) << e.what();
      }
    }
  }

  result->blocks = model;
  result->version = inner.segment_version(kUrl);
  for (auto& c : clients) {
    ClientStats stats = c->stats();
    result->reconnects += stats.reconnects;
    result->retried_calls += stats.retried_calls;
    result->call_timeouts += stats.call_timeouts;
  }
  server::SegmentServer::Stats sstats = inner.stats();
  result->lease_expirations = sstats.lease_expirations;
  result->stale_releases = sstats.stale_releases_rejected;

  // ...and no expiry-based reclaim ever fired: severed sessions were
  // cleaned up by disconnect, not by waiting out the lease.
  EXPECT_EQ(result->lease_expirations, 0u)
      << "writer lock leaked, seed " << seed;
  EXPECT_EQ(result->stale_releases, 0u);

  // Clients are destroyed before the cores they talk to.
  segs.clear();
  clients.clear();
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, ConvergesAndIsReproducible) {
  uint64_t seed = GetParam();

  RunResult oracle;
  run_workload(seed, /*faulty=*/false, &oracle);
  EXPECT_EQ(oracle.reconnects, 0u);
  EXPECT_EQ(oracle.retried_calls, 0u);
  EXPECT_EQ(oracle.call_timeouts, 0u);

  RunResult faulty;
  run_workload(seed, /*faulty=*/true, &faulty);
  // The workload must actually have been disturbed — otherwise this test
  // proves nothing.
  EXPECT_GT(faulty.reconnects + faulty.retried_calls + faulty.call_timeouts,
            0u)
      << "seed " << seed << " injected no faults";
  // Faults must not change the outcome.
  EXPECT_EQ(faulty.blocks, oracle.blocks) << "seed " << seed;

  // Same seed, same program: the entire faulty run is reproducible.
  RunResult again;
  run_workload(seed, /*faulty=*/true, &again);
  EXPECT_EQ(again.fingerprint(), faulty.fingerprint()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Range<uint64_t>(1, 21));  // 20 seeds

}  // namespace
}  // namespace iw
