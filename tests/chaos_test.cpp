// Chaos test: a deterministic multi-client workload driven through
// injected transport faults (severs, truncated frames, dropped responses,
// delays, duplicated/dropped notifications) must converge to exactly the
// state of a fault-free oracle run of the same seed, with no leaked writer
// locks — and a seeded faulty run must be bit-for-bit reproducible.
//
// The workload is built for at-least-once delivery: every block is named,
// every write stores absolute values derived from the step number, and a
// failed step is retried as a whole critical section. A release that was
// applied-but-unacknowledged therefore converges (the retry finds the
// block by name and rewrites the same values) instead of double-applying.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

constexpr int kClients = 3;
constexpr int kSteps = 120;
constexpr uint32_t kUnits = 4;
const char* const kUrl = "host/chaos";

using Model = std::map<std::string, std::vector<int32_t>>;

struct RunResult {
  Model blocks;            // final committed state, by block name
  uint32_t version = 0;    // final segment version
  uint64_t reconnects = 0;
  uint64_t retried_calls = 0;
  uint64_t call_timeouts = 0;
  uint64_t lease_expirations = 0;
  uint64_t stale_releases = 0;

  std::string fingerprint() const {
    std::ostringstream out;
    out << "v" << version << ";r" << reconnects << ";t" << retried_calls
        << ";o" << call_timeouts << ";";
    for (const auto& [name, values] : blocks) {
      out << name << "=";
      for (int32_t v : values) out << v << ",";
      out << ";";
    }
    return out.str();
  }
};

std::vector<int32_t> step_values(uint64_t seed, int step) {
  std::vector<int32_t> v(kUnits);
  for (uint32_t u = 0; u < kUnits; ++u) {
    v[u] = static_cast<int32_t>(seed * 1'000'003 + step * 101 + u);
  }
  return v;
}

void fill_block(client::BlockHeader* blk, const std::vector<int32_t>& values) {
  auto* data = reinterpret_cast<int32_t*>(const_cast<uint8_t*>(blk->data()));
  for (uint32_t u = 0; u < kUnits; ++u) data[u] = values[u];
}

Model snapshot_of(Client& c, ClientSegment* seg) {
  Model out;
  c.read_lock(seg);
  seg->heap().for_each_block([&](client::BlockHeader* blk) {
    EXPECT_NE(blk->name, nullptr) << "chaos workload only creates named blocks";
    if (blk->name == nullptr) return;
    const auto* data = reinterpret_cast<const int32_t*>(blk->data());
    out[*blk->name] = std::vector<int32_t>(data, data + kUnits);
  });
  c.read_unlock(seg);
  return out;
}

// Out-parameter (rather than a return value) so ASSERT_* can bail out.
void run_workload(uint64_t seed, bool faulty, RunResult* result) {
  server::SegmentServer::Options sopts;
  // Long relative to any injected stall: a lease reclaim during the run
  // would mean a writer lock leaked, which the final stats assert against.
  sopts.writer_lease_ms = 1'500;
  server::SegmentServer inner(sopts);

  FaultSchedule::Options server_fopts;
  server_fopts.seed = seed ^ 0x5eed5eed;
  auto server_schedule = std::make_shared<FaultSchedule>(server_fopts);
  FaultyServerCore::Options score_opts;
  score_opts.drop_notify_rate = 0.1;
  FaultyServerCore faulty_core(inner, server_schedule, score_opts);
  ServerCore& core = faulty ? static_cast<ServerCore&>(faulty_core)
                            : static_cast<ServerCore&>(inner);

  // Transport under test: in-proc by default; IW_CHAOS_TRANSPORT=tcp runs
  // the identical fault program over real sockets and the epoll reactor
  // (FaultyChannel then wraps a TcpClientChannel, so a sever tears down a
  // real connection and the server sees a genuine EOF).
  std::unique_ptr<TcpServer> tcp;
  if (const char* t = std::getenv("IW_CHAOS_TRANSPORT");
      t != nullptr && std::string(t) == "tcp") {
    tcp = std::make_unique<TcpServer>(core, 0);
  }

  // One schedule per client, shared across that client's channel
  // incarnations so the fault program survives reconnects.
  std::vector<std::shared_ptr<FaultSchedule>> schedules;
  for (int i = 0; i < kClients; ++i) {
    FaultSchedule::Options fopts;
    fopts.seed = seed * 31 + static_cast<uint64_t>(i);
    fopts.sever_rate = 0.02;
    fopts.truncate_rate = 0.01;
    fopts.drop_response_rate = 0.03;
    fopts.delay_rate = 0.05;
    fopts.max_delay_ms = 2;
    fopts.duplicate_notify_rate = 0.1;
    auto schedule = std::make_shared<FaultSchedule>(fopts);
    schedule->arm(false);  // fault-free warm-up while clients connect
    schedules.push_back(std::move(schedule));
  }

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<ClientSegment*> segs;
  for (int i = 0; i < kClients; ++i) {
    Client::Options copts;
    copts.reconnect.initial_backoff_ms = 1;
    copts.reconnect.max_backoff_ms = 8;
    copts.reconnect.max_call_retries = 10;
    copts.reconnect.jitter_seed = seed + static_cast<uint64_t>(i) + 1;
    auto schedule = schedules[static_cast<size_t>(i)];
    auto factory = [&core, &tcp, schedule, faulty](const std::string&) {
      std::shared_ptr<ClientChannel> ch;
      if (tcp != nullptr) {
        ch = std::make_shared<TcpClientChannel>(tcp->port());
      } else {
        ch = std::make_shared<InProcChannel>(core);
      }
      if (faulty) ch = std::make_shared<FaultyChannel>(ch, schedule);
      return ch;
    };
    clients.push_back(std::make_unique<Client>(factory, copts));
    segs.push_back(clients.back()->open_segment(kUrl));
  }
  for (auto& s : schedules) s->arm(true);

  const TypeDescriptor* arr = clients[0]->types().array_of(
      clients[0]->types().primitive(PrimitiveKind::kInt32), kUnits);

  SplitMix64 rng(seed);
  Model model;
  int next_block = 0;

  for (int step = 0; step < kSteps; ++step) {
    int who = static_cast<int>(rng.below(kClients));
    Client& c = *clients[static_cast<size_t>(who)];
    ClientSegment* seg = segs[static_cast<size_t>(who)];
    uint64_t action = rng.below(10);
    std::vector<int32_t> values = step_values(seed, step);

    // Decide the step's full intent up front so every retry replays the
    // identical mutation.
    std::string target;
    if (action < 3 || model.empty()) {
      target = "b" + std::to_string(next_block++);  // alloc (or first op)
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      target = it->first;
    }
    enum class Op { kUpsert, kFree, kVerify } op = Op::kUpsert;
    if (action < 3 || model.empty()) {
      op = Op::kUpsert;
    } else if (action < 8) {
      op = Op::kUpsert;
    } else if (action == 8) {
      op = Op::kFree;
    } else {
      op = Op::kVerify;
    }

    for (int attempt = 0;; ++attempt) {
      try {
        if (op == Op::kVerify) {
          Model seen = snapshot_of(c, seg);
          ASSERT_EQ(seen.size(), model.size()) << "step " << step;
          for (const auto& [name, vals] : model) {
            auto it = seen.find(name);
            ASSERT_NE(it, seen.end()) << "step " << step << " lost " << name;
            ASSERT_EQ(it->second, vals) << "step " << step << " " << name;
          }
          break;
        }
        c.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (op == Op::kFree) {
          // An applied-but-unacknowledged free leaves no block: done.
          if (blk != nullptr) {
            c.free_block(seg, const_cast<uint8_t*>(blk->data()));
          }
        } else {
          // An applied-but-unacknowledged alloc leaves the block behind:
          // find it instead of allocating a duplicate under the same name.
          if (blk == nullptr) {
            c.malloc_block(seg, arr, target);
            blk = seg->heap().find_by_name(target);
          }
          fill_block(blk, values);
        }
        c.write_unlock(seg);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 8) << "seed " << seed << " step " << step << ": "
                              << e.what();
      }
    }
    if (op == Op::kUpsert) {
      model[target] = values;
    } else if (op == Op::kFree) {
      model.erase(target);
    }
  }

  // Every client converges on the oracle model.
  for (int i = 0; i < kClients; ++i) {
    Model seen = snapshot_of(*clients[static_cast<size_t>(i)],
                             segs[static_cast<size_t>(i)]);
    EXPECT_EQ(seen, model) << "client " << i << " diverged, seed " << seed;
  }

  // No leaked locks: every client can still complete a write cycle without
  // waiting out a lease...
  for (int i = 0; i < kClients; ++i) {
    Client& c = *clients[static_cast<size_t>(i)];
    for (int attempt = 0;; ++attempt) {
      try {
        c.write_lock(segs[static_cast<size_t>(i)]);
        c.write_unlock(segs[static_cast<size_t>(i)]);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 8) << e.what();
      }
    }
  }

  result->blocks = model;
  result->version = inner.segment_version(kUrl);
  for (auto& c : clients) {
    ClientStats stats = c->stats();
    result->reconnects += stats.reconnects;
    result->retried_calls += stats.retried_calls;
    result->call_timeouts += stats.call_timeouts;
  }
  server::SegmentServer::Stats sstats = inner.stats();
  result->lease_expirations = sstats.lease_expirations;
  result->stale_releases = sstats.stale_releases_rejected;

  // ...and no expiry-based reclaim ever fired: severed sessions were
  // cleaned up by disconnect, not by waiting out the lease.
  EXPECT_EQ(result->lease_expirations, 0u)
      << "writer lock leaked, seed " << seed;
  EXPECT_EQ(result->stale_releases, 0u);

  // Clients are destroyed before the cores they talk to.
  segs.clear();
  clients.clear();
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, ConvergesAndIsReproducible) {
  uint64_t seed = GetParam();

  RunResult oracle;
  run_workload(seed, /*faulty=*/false, &oracle);
  EXPECT_EQ(oracle.reconnects, 0u);
  EXPECT_EQ(oracle.retried_calls, 0u);
  EXPECT_EQ(oracle.call_timeouts, 0u);

  RunResult faulty;
  run_workload(seed, /*faulty=*/true, &faulty);
  // The workload must actually have been disturbed — otherwise this test
  // proves nothing.
  EXPECT_GT(faulty.reconnects + faulty.retried_calls + faulty.call_timeouts,
            0u)
      << "seed " << seed << " injected no faults";
  // Faults must not change the outcome.
  EXPECT_EQ(faulty.blocks, oracle.blocks) << "seed " << seed;

  // Same seed, same program: the entire faulty run is reproducible.
  RunResult again;
  run_workload(seed, /*faulty=*/true, &again);
  if (const char* t = std::getenv("IW_CHAOS_TRANSPORT");
      t != nullptr && std::string(t) == "tcp") {
    // Over real sockets the point where an in-flight call observes a sever
    // depends on scheduling, so retry/reconnect counters are not
    // bit-reproducible; the converged state still must be.
    EXPECT_EQ(again.blocks, oracle.blocks) << "seed " << seed;
  } else {
    // In-proc faults are delivered synchronously: the entire run, counters
    // included, replays exactly.
    EXPECT_EQ(again.fingerprint(), faulty.fingerprint()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Range<uint64_t>(1, 21));  // 20 seeds

// --- restart chaos: crash/recover cycles inside the workload ---
//
// The transport-fault chaos above disturbs the wire; this disturbs the
// server's *lifetime*. A RestartableCore proxy lets the live SegmentServer
// be torn down (no checkpoint — destructors only, as after a kill the WAL
// already made every acknowledged commit durable) and replaced by a fresh
// server that recovers from disk, while clients keep their channels.
// Requests from sessions of a dead incarnation fail like a reset
// connection, so ReconnectingChannel re-handshakes and the client
// revalidates — exactly the restart experience of a TCP deployment.

/// ServerCore proxy whose backing server can be swapped. Sessions are
/// tracked per incarnation: a request or disconnect from a session the
/// current server never saw answers with a transport reset instead of
/// reaching the wrong server.
class RestartableCore final : public ServerCore {
 public:
  void set_server(server::SegmentServer* server) {
    std::lock_guard lock(mu_);
    server_ = server;
    known_.clear();
  }

  void on_connect(SessionId session, Notifier notify) override {
    std::lock_guard lock(mu_);
    if (server_ == nullptr) {
      throw Error::transport(ErrorCode::kConnReset, "server down");
    }
    known_.insert(session);
    server_->on_connect(session, std::move(notify));
  }

  void on_disconnect(SessionId session) override {
    std::lock_guard lock(mu_);
    if (server_ != nullptr && known_.erase(session) > 0) {
      server_->on_disconnect(session);
    }
  }

  Frame handle(SessionId session, const Frame& request) override {
    std::lock_guard lock(mu_);
    if (server_ == nullptr || known_.find(session) == known_.end()) {
      throw Error::transport(ErrorCode::kConnReset,
                             "server restarted; session lost");
    }
    return server_->handle(session, request);
  }

 private:
  std::mutex mu_;
  server::SegmentServer* server_ = nullptr;
  std::unordered_set<SessionId> known_;
};

void run_restart_workload(uint64_t seed, bool restarts, RunResult* result) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("iw-chaos-restart-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed) + (restarts ? "-r" : "-o"));
  fs::remove_all(dir);

  server::SegmentServer::Options sopts;
  sopts.checkpoint_dir = dir.string();
  sopts.checkpoint_every = 7;  // snapshot+journal-tail compose mid-run
  sopts.wal_sync = server::WriteAheadLog::Sync::kCommit;
  sopts.writer_lease_ms = 1'500;
  auto server = std::make_unique<server::SegmentServer>(sopts);

  RestartableCore core;
  core.set_server(server.get());

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<ClientSegment*> segs;
  for (int i = 0; i < kClients; ++i) {
    Client::Options copts;
    copts.reconnect.initial_backoff_ms = 1;
    copts.reconnect.max_backoff_ms = 8;
    copts.reconnect.max_call_retries = 10;
    copts.reconnect.jitter_seed = seed + static_cast<uint64_t>(i) + 1;
    clients.push_back(std::make_unique<Client>(
        [&core](const std::string&) {
          return std::make_shared<InProcChannel>(core);
        },
        copts));
    segs.push_back(clients.back()->open_segment(kUrl));
  }

  const TypeDescriptor* arr = clients[0]->types().array_of(
      clients[0]->types().primitive(PrimitiveKind::kInt32), kUnits);

  // Deterministic: one crash/recover cycle every restart_every steps.
  const int restart_every = 13 + static_cast<int>(seed % 7);
  int restart_count = 0;

  SplitMix64 rng(seed);
  Model model;
  int next_block = 0;

  for (int step = 0; step < kSteps; ++step) {
    if (restarts && step > 0 && step % restart_every == 0) {
      // Kill the server between critical sections (no one holds the writer
      // lock) and bring up a fresh one from disk. Journal, not checkpoint,
      // carries everything committed since the last periodic snapshot.
      core.set_server(nullptr);
      server.reset();
      server = std::make_unique<server::SegmentServer>(sopts);
      server->recover();
      core.set_server(server.get());
      ++restart_count;
    }
    int who = static_cast<int>(rng.below(kClients));
    Client& c = *clients[static_cast<size_t>(who)];
    ClientSegment* seg = segs[static_cast<size_t>(who)];
    uint64_t action = rng.below(10);
    std::vector<int32_t> values = step_values(seed, step);

    std::string target;
    if (action < 3 || model.empty()) {
      target = "b" + std::to_string(next_block++);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      target = it->first;
    }
    bool do_free = action == 8 && !model.empty();

    for (int attempt = 0;; ++attempt) {
      try {
        c.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (do_free) {
          if (blk != nullptr) {
            c.free_block(seg, const_cast<uint8_t*>(blk->data()));
          }
        } else {
          if (blk == nullptr) {
            c.malloc_block(seg, arr, target);
            blk = seg->heap().find_by_name(target);
          }
          fill_block(blk, values);
        }
        c.write_unlock(seg);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 8) << "seed " << seed << " step " << step << ": "
                              << e.what();
      }
    }
    // Acknowledged: from here on a crash must never lose this step.
    if (do_free) {
      model.erase(target);
    } else {
      model[target] = values;
    }
  }
  if (restarts) {
    ASSERT_GT(restart_count, 0) << "workload too short to exercise restarts";
    // One more cycle after the last commit: the full final state must come
    // back from disk alone.
    core.set_server(nullptr);
    server.reset();
    server = std::make_unique<server::SegmentServer>(sopts);
    server->recover();
    core.set_server(server.get());
    EXPECT_GT(server->stats().wal_replayed_records, 0u);
    EXPECT_EQ(server->stats().checkpoints_quarantined, 0u);
  }

  // Every client (reconnecting across the final restart) converges on the
  // oracle model — zero acknowledged versions lost under sync=commit.
  for (int i = 0; i < kClients; ++i) {
    for (int attempt = 0;; ++attempt) {
      try {
        Model seen = snapshot_of(*clients[static_cast<size_t>(i)],
                                 segs[static_cast<size_t>(i)]);
        EXPECT_EQ(seen, model) << "client " << i << " diverged, seed " << seed;
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 8) << e.what();
      }
    }
  }

  result->blocks = model;
  result->version = server->segment_version(kUrl);
  for (auto& c : clients) {
    ClientStats stats = c->stats();
    result->reconnects += stats.reconnects;
    result->retried_calls += stats.retried_calls;
    result->call_timeouts += stats.call_timeouts;
  }

  segs.clear();
  clients.clear();
  core.set_server(nullptr);
  server.reset();
  fs::remove_all(dir);
}

class RestartChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RestartChaosTest, RecoversAckedStateAcrossRestarts) {
  uint64_t seed = GetParam();

  RunResult oracle;
  run_restart_workload(seed, /*restarts=*/false, &oracle);
  EXPECT_EQ(oracle.reconnects, 0u);

  RunResult crashed;
  run_restart_workload(seed, /*restarts=*/true, &crashed);
  // The restarts must actually have been felt by the clients...
  EXPECT_GT(crashed.reconnects, 0u) << "seed " << seed;
  // ...and change nothing about the committed outcome.
  EXPECT_EQ(crashed.blocks, oracle.blocks) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RestartChaosTest,
                         ::testing::Range<uint64_t>(1, 9));  // 8 seeds

}  // namespace
}  // namespace iw
