// Interop tests for payload-compression negotiation: a mixed fleet must
// converge byte-for-byte. Peers that predate compression (no hello
// handshake at all, or a hello without the feature bit) share segments
// with negotiated peers against one compressing server, and a compressing
// client degrades cleanly against a server with compression disabled.
// Both byte directions are covered: commits (client -> server) and
// updates (server -> client).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

// IW_COMPRESS overrides the compression option on both ends; these tests
// pin specific old/new peer mixes, so the override must not apply no
// matter which ctest lane runs the binary.
class CompressInterop : public ::testing::Test {
 protected:
  void SetUp() override { ::unsetenv("IW_COMPRESS"); }

  static std::unique_ptr<Client> make_client(server::SegmentServer& core,
                                             Client::Options opts = {}) {
    return std::make_unique<Client>(
        [&core](const std::string&) {
          return std::make_shared<InProcChannel>(core);
        },
        opts);
  }

  // A peer from before the compression feature existed: no reconnect
  // supervisor means no hello handshake, so it speaks the raw byte
  // stream in both directions regardless of what the server supports.
  static Client::Options pre_compression_peer() {
    Client::Options o;
    o.auto_reconnect = false;
    return o;
  }

  static const TypeDescriptor* int_array(Client& c, uint32_t n) {
    return c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), n);
  }
};

constexpr int kInts = 1024;  // 4 KiB of near-constant data: compressible

TEST_F(CompressInterop, PreCompressionPeersAgainstCompressingServer) {
  server::SegmentServer::Options sopts;
  sopts.compress_payloads = true;
  server::SegmentServer core(sopts);

  auto writer = make_client(core, pre_compression_peer());
  auto reader = make_client(core, pre_compression_peer());

  // Old peer -> compressing server: the commit arrives as a bare diff.
  ClientSegment* ws = writer->open_segment("host/legacy");
  writer->write_lock(ws);
  auto* d = static_cast<int32_t*>(
      writer->malloc_block(ws, int_array(*writer, kInts), "data"));
  for (int i = 0; i < kInts; ++i) d[i] = 7;
  writer->write_unlock(ws);

  // Compressing server -> old peer: the update goes out as a bare diff.
  ClientSegment* rs = reader->open_segment("host/legacy");
  reader->read_lock(rs);
  auto* block = rs->heap().find_by_name("data");
  ASSERT_NE(block, nullptr);
  const auto* rd = reinterpret_cast<const int32_t*>(block->data());
  for (int i = 0; i < kInts; ++i) ASSERT_EQ(rd[i], 7) << "at " << i;
  reader->read_unlock(rs);

  // Neither direction may have used the envelope on the wire.
  EXPECT_EQ(writer->stats().diffs_compressed, 0u);
  EXPECT_EQ(reader->stats().diffs_compressed, 0u);
  EXPECT_EQ(core.stats().updates_compressed, 0u);
}

TEST_F(CompressInterop, HelloWithoutFeatureBitStaysRaw) {
  server::SegmentServer::Options sopts;
  sopts.compress_payloads = true;
  server::SegmentServer core(sopts);

  // This peer performs the hello handshake (it has the reconnect
  // supervisor) but never announces the compression bit.
  Client::Options copts;
  copts.compress_payloads = false;
  auto writer = make_client(core, copts);
  auto reader = make_client(core, copts);

  ClientSegment* ws = writer->open_segment("host/nobit");
  writer->write_lock(ws);
  auto* d = static_cast<int32_t*>(
      writer->malloc_block(ws, int_array(*writer, kInts), "data"));
  for (int i = 0; i < kInts; ++i) d[i] = i & 3;
  writer->write_unlock(ws);

  ClientSegment* rs = reader->open_segment("host/nobit");
  reader->read_lock(rs);
  auto* block = rs->heap().find_by_name("data");
  ASSERT_NE(block, nullptr);
  const auto* rd = reinterpret_cast<const int32_t*>(block->data());
  for (int i = 0; i < kInts; ++i) ASSERT_EQ(rd[i], i & 3) << "at " << i;
  reader->read_unlock(rs);

  EXPECT_EQ(writer->stats().diffs_compressed, 0u);
  EXPECT_EQ(core.stats().updates_compressed, 0u);
}

TEST_F(CompressInterop, CompressingClientAgainstOldServer) {
  server::SegmentServer::Options sopts;
  sopts.compress_payloads = false;  // server predates the feature
  server::SegmentServer core(sopts);

  auto writer = make_client(core);  // announces compression, gets refused
  auto reader = make_client(core);

  ClientSegment* ws = writer->open_segment("host/oldsrv");
  writer->write_lock(ws);
  auto* d = static_cast<int32_t*>(
      writer->malloc_block(ws, int_array(*writer, kInts), "data"));
  for (int i = 0; i < kInts; ++i) d[i] = 42;
  writer->write_unlock(ws);

  ClientSegment* rs = reader->open_segment("host/oldsrv");
  reader->read_lock(rs);
  auto* block = rs->heap().find_by_name("data");
  ASSERT_NE(block, nullptr);
  const auto* rd = reinterpret_cast<const int32_t*>(block->data());
  for (int i = 0; i < kInts; ++i) ASSERT_EQ(rd[i], 42) << "at " << i;
  reader->read_unlock(rs);

  EXPECT_EQ(writer->stats().diffs_compressed, 0u);
  EXPECT_EQ(core.stats().updates_compressed, 0u);
  EXPECT_EQ(core.stats().commits_compressed, 0u);
}

TEST_F(CompressInterop, NegotiatedPairCompressesBothDirections) {
  server::SegmentServer::Options sopts;
  sopts.compress_payloads = true;
  server::SegmentServer core(sopts);

  auto writer = make_client(core);
  auto reader = make_client(core);

  ClientSegment* ws = writer->open_segment("host/both");
  writer->write_lock(ws);
  auto* d = static_cast<int32_t*>(
      writer->malloc_block(ws, int_array(*writer, kInts), "data"));
  for (int i = 0; i < kInts; ++i) d[i] = 1;
  writer->write_unlock(ws);

  ClientSegment* rs = reader->open_segment("host/both");
  reader->read_lock(rs);
  auto* block = rs->heap().find_by_name("data");
  ASSERT_NE(block, nullptr);
  const auto* rd = reinterpret_cast<const int32_t*>(block->data());
  for (int i = 0; i < kInts; ++i) ASSERT_EQ(rd[i], 1) << "at " << i;
  reader->read_unlock(rs);

  // Client -> server: the 4 KiB constant diff shrank inside the envelope.
  EXPECT_GT(writer->stats().diffs_compressed, 0u);
  // Server -> client: the reader's update shipped compressed, and the
  // wire accounting shows the reduction.
  auto stats = core.stats();
  EXPECT_GT(stats.updates_compressed, 0u);
  EXPECT_LT(stats.update_wire_bytes, stats.update_raw_bytes);
}

TEST_F(CompressInterop, MixedFleetSharesOneSegment) {
  server::SegmentServer::Options sopts;
  sopts.compress_payloads = true;
  server::SegmentServer core(sopts);

  auto modern = make_client(core);
  auto legacy = make_client(core, pre_compression_peer());

  // Modern writes, legacy reads.
  ClientSegment* ms = modern->open_segment("host/mixed");
  modern->write_lock(ms);
  auto* d = static_cast<int32_t*>(
      modern->malloc_block(ms, int_array(*modern, kInts), "data"));
  for (int i = 0; i < kInts; ++i) d[i] = 5;
  modern->write_unlock(ms);

  ClientSegment* ls = legacy->open_segment("host/mixed");
  legacy->read_lock(ls);
  auto* lb = ls->heap().find_by_name("data");
  ASSERT_NE(lb, nullptr);
  auto* ld = reinterpret_cast<const int32_t*>(lb->data());
  for (int i = 0; i < kInts; ++i) ASSERT_EQ(ld[i], 5) << "at " << i;
  legacy->read_unlock(ls);

  // Legacy writes back, modern reads: the server re-encodes per session,
  // so the same commit reaches one peer raw and the other compressed.
  legacy->write_lock(ls);
  auto* lw = const_cast<int32_t*>(
      reinterpret_cast<const int32_t*>(ls->heap().find_by_name("data")->data()));
  for (int i = 0; i < kInts; ++i) lw[i] = 6;
  legacy->write_unlock(ls);

  modern->read_lock(ms);
  for (int i = 0; i < kInts; ++i) ASSERT_EQ(d[i], 6) << "at " << i;
  modern->read_unlock(ms);

  EXPECT_EQ(legacy->stats().diffs_compressed, 0u);
  EXPECT_GT(modern->stats().diffs_compressed, 0u);
  EXPECT_GT(core.stats().updates_compressed, 0u);
}

TEST_F(CompressInterop, IncompressibleDiffsStayRawInsideTheEnvelope) {
  server::SegmentServer::Options sopts;
  sopts.compress_payloads = true;
  server::SegmentServer core(sopts);

  auto writer = make_client(core);
  auto reader = make_client(core);

  // A high-entropy payload (xorshift stream) defeats the LZ pass; the
  // per-frame decision must fall back to the raw method byte and the
  // data must still round-trip through negotiated channels.
  ClientSegment* ws = writer->open_segment("host/entropy");
  writer->write_lock(ws);
  auto* d = static_cast<int32_t*>(
      writer->malloc_block(ws, int_array(*writer, kInts), "noise"));
  uint32_t x = 0x9e3779b9u;
  for (int i = 0; i < kInts; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    d[i] = static_cast<int32_t>(x);
  }
  writer->write_unlock(ws);

  ClientSegment* rs = reader->open_segment("host/entropy");
  reader->read_lock(rs);
  auto* block = rs->heap().find_by_name("noise");
  ASSERT_NE(block, nullptr);
  const auto* rd = reinterpret_cast<const int32_t*>(block->data());
  uint32_t y = 0x9e3779b9u;
  for (int i = 0; i < kInts; ++i) {
    y ^= y << 13;
    y ^= y >> 17;
    y ^= y << 5;
    ASSERT_EQ(rd[i], static_cast<int32_t>(y)) << "at " << i;
  }
  reader->read_unlock(rs);

  EXPECT_EQ(writer->stats().diffs_compressed, 0u);
  EXPECT_EQ(core.stats().updates_compressed, 0u);
}

}  // namespace
}  // namespace iw
