// Concurrency stress: writer and reader clients hammer one segment from
// multiple threads over both transports; invariants are checked throughout
// (monotonic snapshot consistency: a reader must always observe a complete
// write-critical-section state, never a torn one).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

// The writer keeps `slots` ints equal to its round number; a reader under
// any coherence model must always see all slots equal (each CS is atomic).
constexpr int kSlots = 512;

void writer_loop(Client& c, ClientSegment* seg, int32_t* data, int rounds) {
  for (int round = 1; round <= rounds; ++round) {
    c.write_lock(seg);
    for (int i = 0; i < kSlots; ++i) data[i] = round;
    c.write_unlock(seg);
  }
}

void reader_loop(Client& c, ClientSegment* seg, std::atomic<bool>& stop,
                 std::atomic<int>& torn, std::atomic<int>& reads) {
  while (!stop.load(std::memory_order_relaxed)) {
    c.read_lock(seg);
    auto* blk = seg->heap().find_by_name("slots");
    if (blk != nullptr) {
      const auto* d = reinterpret_cast<const int32_t*>(blk->data());
      int32_t first = d[0];
      for (int i = 1; i < kSlots; ++i) {
        if (d[i] != first) {
          torn.fetch_add(1);
          break;
        }
      }
      reads.fetch_add(1);
    }
    c.read_unlock(seg);
  }
}

TEST(Stress, OneWriterManyReadersInProc) {
  server::SegmentServer server;
  auto factory = [&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  };
  Client writer(factory);
  const TypeDescriptor* arr = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), kSlots);
  ClientSegment* ws = writer.open_segment("stress/a");
  writer.write_lock(ws);
  auto* data = static_cast<int32_t*>(writer.malloc_block(ws, arr, "slots"));
  writer.write_unlock(ws);

  constexpr int kReaders = 3;
  std::vector<std::unique_ptr<Client>> readers;
  std::vector<ClientSegment*> segs;
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(std::make_unique<Client>(factory));
    segs.push_back(readers.back()->open_segment("stress/a"));
    readers.back()->set_coherence(
        segs.back(), i == 0 ? CoherencePolicy::full()
                            : CoherencePolicy::delta(1 + i));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> reads{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&, i] {
      reader_loop(*readers[i], segs[i], stop, torn, reads);
    });
  }
  writer_loop(writer, ws, data, 150);
  // On a single-core box the writer can finish before any reader thread is
  // scheduled; keep the readers alive until at least a few reads landed.
  for (int spin = 0; spin < 2000 && reads.load() < 5; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop = true;
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0) << "readers observed a torn critical section";
  EXPECT_GT(reads.load(), 0);
}

TEST(Stress, TwoWritersAlternateOverTcp) {
  server::SegmentServer core;
  TcpServer server(core, 0);
  auto factory = [&](const std::string&) {
    return std::make_shared<TcpClientChannel>(server.port());
  };
  Client a(factory);
  Client b(factory);
  const TypeDescriptor* arr =
      a.types().array_of(a.types().primitive(PrimitiveKind::kInt32), kSlots);
  ClientSegment* sa = a.open_segment("stress/tcp");
  a.write_lock(sa);
  a.malloc_block(sa, arr, "slots");
  a.write_unlock(sa);
  ClientSegment* sb = b.open_segment("stress/tcp");

  // Both writers race for the lock; each write must be internally complete.
  auto hammer = [&](Client& c, ClientSegment* seg, int32_t base) {
    for (int round = 0; round < 40; ++round) {
      c.write_lock(seg);
      auto* blk = seg->heap().find_by_name("slots");
      auto* d = reinterpret_cast<int32_t*>(const_cast<uint8_t*>(blk->data()));
      for (int i = 0; i < kSlots; ++i) d[i] = base + round;
      c.write_unlock(seg);
    }
  };
  std::thread ta([&] { hammer(a, sa, 1000); });
  std::thread tb([&] { hammer(b, sb, 2000); });
  ta.join();
  tb.join();

  // Final state must be one writer's complete last round.
  Client verify(factory);
  ClientSegment* sv = verify.open_segment("stress/tcp");
  verify.read_lock(sv);
  const auto* d = reinterpret_cast<const int32_t*>(
      sv->heap().find_by_name("slots")->data());
  int32_t first = d[0];
  EXPECT_TRUE(first == 1039 || first == 2039) << first;
  for (int i = 0; i < kSlots; ++i) ASSERT_EQ(d[i], first) << i;
  verify.read_unlock(sv);
  EXPECT_EQ(core.segment_version("stress/tcp"), 82u);
}

TEST(Stress, ManySegmentsConcurrently) {
  server::SegmentServer server;
  auto factory = [&](const std::string&) {
    return std::make_shared<InProcChannel>(server);
  };
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client c(factory);
        const TypeDescriptor* arr = c.types().array_of(
            c.types().primitive(PrimitiveKind::kInt32), 256);
        for (int s = 0; s < 10; ++s) {
          std::string url = "stress/seg" + std::to_string(t) + "-" +
                            std::to_string(s);
          ClientSegment* seg = c.open_segment(url);
          c.write_lock(seg);
          auto* d = static_cast<int32_t*>(c.malloc_block(seg, arr, "x"));
          for (int i = 0; i < 256; ++i) d[i] = t * 1000 + s;
          c.write_unlock(seg);
          c.read_lock(seg);
          if (d[100] != t * 1000 + s) failures.fetch_add(1);
          c.read_unlock(seg);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace iw
