// Tests for the datamining substrate: Quest generator determinism and
// statistics, lattice construction, incremental updates, reader queries,
// and cross-client sharing under relaxed coherence.
#include <gtest/gtest.h>

#include "interweave/interweave.hpp"
#include "mining/lattice.hpp"
#include "mining/quest.hpp"

namespace iw::mining {
namespace {

QuestConfig small_config() {
  QuestConfig config;
  config.customers = 2000;
  config.items = 100;
  config.patterns = 50;
  config.avg_items_per_transaction = 20;
  return config;
}

TEST(Quest, DeterministicPerCustomer) {
  QuestGenerator g1(small_config());
  QuestGenerator g2(small_config());
  for (uint32_t c : {0u, 1u, 999u}) {
    auto a = g1.customer(c).flattened();
    auto b = g2.customer(c).flattened();
    EXPECT_EQ(a, b);
  }
  // Different customers differ.
  EXPECT_NE(g1.customer(1).flattened(), g1.customer(2).flattened());
}

TEST(Quest, ItemsInRange) {
  QuestGenerator gen(small_config());
  for (uint32_t c = 0; c < 50; ++c) {
    for (uint32_t item : gen.customer(c).flattened()) {
      EXPECT_LT(item, small_config().items);
    }
  }
}

TEST(Quest, PaperScaleConfigIsRoughly20MB) {
  QuestGenerator gen{QuestConfig{}};
  EXPECT_NEAR(static_cast<double>(gen.approx_bytes()), 20e6, 5e6);
  EXPECT_EQ(gen.patterns().size(), 5000u);
  double avg_len = 0;
  for (const auto& p : gen.patterns()) avg_len += p.size();
  avg_len /= gen.patterns().size();
  EXPECT_NEAR(avg_len, 4.0, 1.0);
}

TEST(Quest, PatternsActuallyAppearInData) {
  QuestGenerator gen(small_config());
  const auto& pattern = gen.patterns()[0];
  int hits = 0;
  for (uint32_t c = 0; c < 200; ++c) {
    auto stream = gen.customer(c).flattened();
    for (size_t i = 0; i + pattern.size() <= stream.size(); ++i) {
      if (std::equal(pattern.begin(), pattern.end(), stream.begin() + i)) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GT(hits, 0) << "seeded patterns should occur in customer data";
}

class Lattice : public ::testing::Test {
 protected:
  Lattice() {
    factory_ = [this](const std::string&) {
      return std::make_shared<InProcChannel>(server_);
    };
  }
  std::unique_ptr<Client> make_client() {
    return std::make_unique<Client>(factory_);
  }
  server::SegmentServer server_;
  Client::ChannelFactory factory_;
};

TEST_F(Lattice, BuildAndQuerySameProcess) {
  auto writer_client = make_client();
  QuestGenerator db(small_config());
  LatticeWriter::Options options;
  options.min_support = 20;
  LatticeWriter writer(*writer_client, "host/lat1", db.config().items, options);
  writer.mine_customers(db, 0, 500);
  EXPECT_GT(writer.node_count(), 0u);

  auto reader_client = make_client();
  LatticeReader reader(*reader_client, "host/lat1");
  reader.refresh();
  EXPECT_EQ(reader.node_count(), writer.node_count());
  EXPECT_EQ(reader.customers_mined(), 500u);

  auto top = reader.top_sequences(10, 1);
  ASSERT_FALSE(top.empty());
  // Ranked descending.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].support, top[i].support);
  }
  // The top single item's support must match a direct query.
  auto direct = reader.support_of({top[0].items[0]});
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(*direct, top[0].support);
}

TEST_F(Lattice, SupportsAreConsistentWithPrefixMonotonicity) {
  auto writer_client = make_client();
  QuestGenerator db(small_config());
  LatticeWriter::Options options;
  options.min_support = 15;
  LatticeWriter writer(*writer_client, "host/lat2", db.config().items, options);
  writer.mine_customers(db, 0, 800);

  auto reader_client = make_client();
  LatticeReader reader(*reader_client, "host/lat2");
  reader.refresh();
  auto pairs = reader.top_sequences(20, 2);
  for (const auto& p : pairs) {
    auto prefix = reader.support_of({p.items[0]});
    ASSERT_TRUE(prefix.has_value());
    EXPECT_GE(*prefix, p.support)
        << "a prefix can never be rarer than its extension";
  }
}

TEST_F(Lattice, IncrementalUpdatesGrowSupports) {
  auto writer_client = make_client();
  QuestGenerator db(small_config());
  LatticeWriter::Options options;
  options.min_support = 20;
  LatticeWriter writer(*writer_client, "host/lat3", db.config().items, options);
  writer.mine_customers(db, 0, 500);

  auto reader_client = make_client();
  LatticeReader reader(*reader_client, "host/lat3");
  reader.refresh();
  auto before = reader.top_sequences(5, 1);
  ASSERT_FALSE(before.empty());

  writer.mine_customers(db, 500, 1000);
  reader.refresh();
  auto after = reader.support_of(before[0].items);
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(*after, before[0].support);
  EXPECT_EQ(reader.customers_mined(), 1000u);
}

TEST_F(Lattice, IncrementalUpdatesAreCheapOnTheWire) {
  auto writer_client = make_client();
  QuestGenerator db(small_config());
  LatticeWriter writer(*writer_client, "host/lat4", db.config().items, {});
  writer.mine_customers(db, 0, 1000);

  auto reader_client = make_client();
  LatticeReader reader(*reader_client, "host/lat4");
  reader.refresh();
  uint64_t full_fetch = reader_client->bytes_received();

  writer.mine_customers(db, 1000, 1020);  // 1% more customers
  reader.refresh();
  uint64_t incremental = reader_client->bytes_received() - full_fetch;
  EXPECT_LT(incremental, full_fetch / 3)
      << "incremental diff must be far below the initial full transfer";
}

TEST_F(Lattice, StaleReaderUnderDeltaCoherence) {
  auto writer_client = make_client();
  QuestGenerator db(small_config());
  LatticeWriter writer(*writer_client, "host/lat5", db.config().items, {});
  writer.mine_customers(db, 0, 400);

  auto reader_client = make_client();
  LatticeReader reader(*reader_client, "host/lat5");
  reader_client->set_coherence(reader.segment(), CoherencePolicy::delta(2));
  reader.refresh();
  uint32_t seen = reader.customers_mined();

  writer.mine_customers(db, 400, 420);  // one version ahead
  reader.refresh();                     // within delta-2: stays cached
  EXPECT_EQ(reader.customers_mined(), seen);

  writer.mine_customers(db, 420, 440);
  writer.mine_customers(db, 440, 460);  // now 3 ahead
  reader.refresh();
  EXPECT_EQ(reader.customers_mined(), 460u);
}

}  // namespace
}  // namespace iw::mining
