// Tests for the intrusive list used by the server's blk_version_list.
#include "util/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace iw {
namespace {

struct Node {
  explicit Node(int v) : value(v) {}
  int value;
  ListHook hook;
};

using List = IntrusiveList<Node, &Node::hook>;

std::vector<int> contents(const List& list) {
  std::vector<int> out;
  for (Node* n = list.front(); n != nullptr; n = list.next(*n)) {
    out.push_back(n->value);
  }
  return out;
}

TEST(IntrusiveList, EmptyList) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
}

TEST(IntrusiveList, PushBackOrder) {
  List list;
  Node a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(contents(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.front(), &a);
  EXPECT_EQ(list.back(), &c);
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveList, PushFrontOrder) {
  List list;
  Node a(1), b(2);
  list.push_front(a);
  list.push_front(b);
  EXPECT_EQ(contents(list), (std::vector<int>{2, 1}));
}

TEST(IntrusiveList, EraseMiddleFrontBack) {
  List list;
  Node a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(b);
  EXPECT_EQ(contents(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(b.hook.linked());
  list.erase(a);
  EXPECT_EQ(contents(list), (std::vector<int>{3}));
  list.erase(c);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, MoveToBackModelsModifiedBlock) {
  List list;
  Node a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.move_to_back(a);
  EXPECT_EQ(contents(list), (std::vector<int>{2, 3, 1}));
  list.move_to_back(a);  // already at back; stays there
  EXPECT_EQ(contents(list), (std::vector<int>{2, 3, 1}));
}

TEST(IntrusiveList, InsertAfter) {
  List list;
  Node a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(c);
  list.insert_after(a, b);
  EXPECT_EQ(contents(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.prev(b), &a);
  EXPECT_EQ(list.next(b), &c);
  EXPECT_EQ(list.prev(a), nullptr);
  EXPECT_EQ(list.next(c), nullptr);
}

TEST(IntrusiveList, ReuseAfterErase) {
  List list;
  Node a(1);
  list.push_back(a);
  list.erase(a);
  list.push_back(a);
  EXPECT_EQ(contents(list), (std::vector<int>{1}));
}

TEST(IntrusiveList, ClearUnlinksAll) {
  List list;
  Node a(1), b(2);
  list.push_back(a);
  list.push_back(b);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(a.hook.linked());
  EXPECT_FALSE(b.hook.linked());
  list.push_back(a);  // reusable after clear
  EXPECT_EQ(list.size(), 1u);
}

}  // namespace
}  // namespace iw
