// Unit and property tests for the intrusive AVL tree, including randomized
// differential testing against std::set and multi-tree membership (the way
// blocks participate in several metadata trees at once).
#include "util/avl_tree.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "util/rand.hpp"

namespace iw {
namespace {

struct Item {
  explicit Item(int k) : key(k) {}
  int key;
  uint64_t addr = 0;
  AvlHook by_key;
  AvlHook by_addr;
};

struct KeyOf {
  int operator()(const Item& i) const { return i.key; }
};
struct AddrOf {
  uint64_t operator()(const Item& i) const { return i.addr; }
};

using KeyTree = AvlTree<Item, &Item::by_key, KeyOf>;
using AddrTree = AvlTree<Item, &Item::by_addr, AddrOf>;

TEST(AvlTree, EmptyTreeBehaviour) {
  KeyTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.find(1), nullptr);
  EXPECT_EQ(tree.lower_bound(1), nullptr);
  EXPECT_EQ(tree.floor(1), nullptr);
  EXPECT_EQ(tree.first(), nullptr);
  EXPECT_EQ(tree.last(), nullptr);
  tree.check_invariants();
}

TEST(AvlTree, InsertFindSingle) {
  KeyTree tree;
  Item a(42);
  EXPECT_TRUE(tree.insert(a));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.find(42), &a);
  EXPECT_EQ(tree.find(41), nullptr);
  EXPECT_EQ(tree.first(), &a);
  EXPECT_EQ(tree.last(), &a);
  tree.check_invariants();
}

TEST(AvlTree, DuplicateInsertRejected) {
  KeyTree tree;
  Item a(7), b(7);
  EXPECT_TRUE(tree.insert(a));
  EXPECT_FALSE(tree.insert(b));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.find(7), &a);
}

TEST(AvlTree, AscendingInsertionStaysBalanced) {
  KeyTree tree;
  std::vector<std::unique_ptr<Item>> items;
  for (int i = 0; i < 1000; ++i) {
    items.push_back(std::make_unique<Item>(i));
    ASSERT_TRUE(tree.insert(*items.back()));
    tree.check_invariants();
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_EQ(tree.first()->key, 0);
  EXPECT_EQ(tree.last()->key, 999);
}

TEST(AvlTree, DescendingInsertionStaysBalanced) {
  KeyTree tree;
  std::vector<std::unique_ptr<Item>> items;
  for (int i = 999; i >= 0; --i) {
    items.push_back(std::make_unique<Item>(i));
    ASSERT_TRUE(tree.insert(*items.back()));
  }
  tree.check_invariants();
  EXPECT_EQ(tree.first()->key, 0);
}

TEST(AvlTree, InOrderIterationIsSorted) {
  KeyTree tree;
  std::vector<std::unique_ptr<Item>> items;
  SplitMix64 rng(1);
  std::set<int> keys;
  while (keys.size() < 200) keys.insert(static_cast<int>(rng.below(100000)));
  for (int k : keys) {
    items.push_back(std::make_unique<Item>(k));
    ASSERT_TRUE(tree.insert(*items.back()));
  }
  std::vector<int> seen;
  for (Item* it = tree.first(); it != nullptr; it = tree.next(*it)) {
    seen.push_back(it->key);
  }
  EXPECT_EQ(seen, std::vector<int>(keys.begin(), keys.end()));
}

TEST(AvlTree, LowerBoundAndFloor) {
  KeyTree tree;
  std::vector<std::unique_ptr<Item>> items;
  for (int k : {10, 20, 30, 40}) {
    items.push_back(std::make_unique<Item>(k));
    tree.insert(*items.back());
  }
  EXPECT_EQ(tree.lower_bound(5)->key, 10);
  EXPECT_EQ(tree.lower_bound(10)->key, 10);
  EXPECT_EQ(tree.lower_bound(11)->key, 20);
  EXPECT_EQ(tree.lower_bound(40)->key, 40);
  EXPECT_EQ(tree.lower_bound(41), nullptr);
  EXPECT_EQ(tree.floor(5), nullptr);
  EXPECT_EQ(tree.floor(10)->key, 10);
  EXPECT_EQ(tree.floor(11)->key, 10);
  EXPECT_EQ(tree.floor(39)->key, 30);
  EXPECT_EQ(tree.floor(100)->key, 40);
}

TEST(AvlTree, EraseLeafRootAndInner) {
  KeyTree tree;
  std::vector<std::unique_ptr<Item>> items;
  for (int k : {50, 25, 75, 10, 30, 60, 90}) {
    items.push_back(std::make_unique<Item>(k));
    tree.insert(*items.back());
  }
  // Erase a leaf.
  tree.erase(*items[3]);  // 10
  tree.check_invariants();
  EXPECT_EQ(tree.find(10), nullptr);
  // Erase an inner node with two children.
  tree.erase(*items[1]);  // 25
  tree.check_invariants();
  EXPECT_EQ(tree.find(25), nullptr);
  EXPECT_NE(tree.find(30), nullptr);
  // Erase the root.
  tree.erase(*items[0]);  // 50
  tree.check_invariants();
  EXPECT_EQ(tree.size(), 4u);
}

TEST(AvlTree, ReinsertAfterErase) {
  KeyTree tree;
  Item a(1), b(2);
  tree.insert(a);
  tree.insert(b);
  tree.erase(a);
  EXPECT_TRUE(tree.insert(a));
  EXPECT_EQ(tree.size(), 2u);
  tree.check_invariants();
}

TEST(AvlTree, SameItemInTwoTreesSimultaneously) {
  KeyTree by_key;
  AddrTree by_addr;
  std::vector<std::unique_ptr<Item>> items;
  SplitMix64 rng(7);
  for (int i = 0; i < 100; ++i) {
    auto item = std::make_unique<Item>(i);
    item->addr = rng();
    ASSERT_TRUE(by_key.insert(*item));
    ASSERT_TRUE(by_addr.insert(*item));
    items.push_back(std::move(item));
  }
  by_key.check_invariants();
  by_addr.check_invariants();
  // Erasing from one tree leaves the other untouched.
  by_key.erase(*items[50]);
  EXPECT_EQ(by_key.find(50), nullptr);
  EXPECT_EQ(by_addr.find(items[50]->addr), items[50].get());
  by_addr.check_invariants();
}

// Differential test: a long random mix of inserts, erases and queries must
// agree with std::set at every step, and invariants must hold throughout.
TEST(AvlTree, RandomizedDifferentialAgainstStdSet) {
  KeyTree tree;
  std::set<int> model;
  std::vector<std::unique_ptr<Item>> pool;
  std::vector<Item*> live;
  SplitMix64 rng(12345);

  for (int step = 0; step < 20000; ++step) {
    int op = static_cast<int>(rng.below(10));
    if (op < 5) {  // insert
      int key = static_cast<int>(rng.below(500));
      if (model.insert(key).second) {
        pool.push_back(std::make_unique<Item>(key));
        ASSERT_TRUE(tree.insert(*pool.back()));
        live.push_back(pool.back().get());
      } else {
        Item probe(key);
        ASSERT_FALSE(tree.insert(probe));
      }
    } else if (op < 8 && !live.empty()) {  // erase random live item
      size_t i = rng.below(live.size());
      Item* victim = live[i];
      model.erase(victim->key);
      tree.erase(*victim);
      live[i] = live.back();
      live.pop_back();
    } else {  // query
      int key = static_cast<int>(rng.below(500));
      Item* found = tree.find(key);
      EXPECT_EQ(found != nullptr, model.count(key) == 1);
      auto lb = model.lower_bound(key);
      Item* tlb = tree.lower_bound(key);
      if (lb == model.end()) {
        EXPECT_EQ(tlb, nullptr);
      } else {
        ASSERT_NE(tlb, nullptr);
        EXPECT_EQ(tlb->key, *lb);
      }
    }
    if (step % 512 == 0) tree.check_invariants();
    ASSERT_EQ(tree.size(), model.size());
  }
  tree.check_invariants();
}

TEST(AvlTree, StressEraseAllInRandomOrder) {
  KeyTree tree;
  std::vector<std::unique_ptr<Item>> items;
  for (int i = 0; i < 2048; ++i) {
    items.push_back(std::make_unique<Item>(i));
    tree.insert(*items.back());
  }
  SplitMix64 rng(99);
  std::vector<Item*> order;
  for (auto& item : items) order.push_back(item.get());
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    tree.erase(*order[i]);
    if (i % 127 == 0) tree.check_invariants();
  }
  EXPECT_TRUE(tree.empty());
}

}  // namespace
}  // namespace iw
