// Heterogeneity tests: clients bound to different simulated architectures
// (byte order, alignment, pointer width) share segments through one server.
// This is the paper's headline capability.
#include <gtest/gtest.h>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

/// Typed accessors for a block laid out under an arbitrary platform.
class View {
 public:
  View(Client& client, uint8_t* base, const TypeDescriptor* type)
      : client_(client), rules_(client.options().platform.rules),
        base_(base), type_(type) {}

  int32_t get_i32(uint64_t unit) const {
    const uint8_t* p = base_ + type_->locate_prim(unit).local_offset;
    uint32_t v = 0;
    if (rules_.byte_order == ByteOrder::kBig) {
      for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
    } else {
      for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    }
    return static_cast<int32_t>(v);
  }

  void set_i32(uint64_t unit, int32_t value) {
    uint8_t* p = base_ + type_->locate_prim(unit).local_offset;
    auto v = static_cast<uint32_t>(value);
    if (rules_.byte_order == ByteOrder::kBig) {
      for (int i = 3; i >= 0; --i) {
        p[i] = static_cast<uint8_t>(v);
        v >>= 8;
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        p[i] = static_cast<uint8_t>(v);
        v >>= 8;
      }
    }
  }

  double get_f64(uint64_t unit) const {
    const uint8_t* p = base_ + type_->locate_prim(unit).local_offset;
    uint64_t bits = 0;
    if (rules_.byte_order == ByteOrder::kBig) {
      for (int i = 0; i < 8; ++i) bits = (bits << 8) | p[i];
    } else {
      for (int i = 7; i >= 0; --i) bits = (bits << 8) | p[i];
    }
    return std::bit_cast<double>(bits);
  }

  void set_f64(uint64_t unit, double value) {
    uint8_t* p = base_ + type_->locate_prim(unit).local_offset;
    auto bits = std::bit_cast<uint64_t>(value);
    if (rules_.byte_order == ByteOrder::kBig) {
      for (int i = 7; i >= 0; --i) {
        p[i] = static_cast<uint8_t>(bits);
        bits >>= 8;
      }
    } else {
      for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<uint8_t>(bits);
        bits >>= 8;
      }
    }
  }

  void* get_ptr(uint64_t unit) const {
    return client_.read_pointer_field(base_ +
                                      type_->locate_prim(unit).local_offset);
  }
  void set_ptr(uint64_t unit, void* addr) {
    client_.write_pointer_field(base_ + type_->locate_prim(unit).local_offset,
                                addr);
  }

  std::string get_str(uint64_t unit) const {
    PrimLocation loc = type_->locate_prim(unit);
    const char* p = reinterpret_cast<const char*>(base_) + loc.local_offset;
    return std::string(p, strnlen(p, loc.string_capacity));
  }

 private:
  Client& client_;
  LayoutRules rules_;
  uint8_t* base_;
  const TypeDescriptor* type_;
};

class Hetero : public ::testing::Test {
 protected:
  Hetero() {
    factory_ = [this](const std::string&) {
      return std::make_shared<InProcChannel>(server_);
    };
  }

  std::unique_ptr<Client> make_client(Platform platform) {
    Client::Options options;
    options.platform = platform;
    return std::make_unique<Client>(factory_, options);
  }

  static const TypeDescriptor* record_type(Client& c) {
    return c.types().struct_builder("rec")
        .field("id", c.types().primitive(PrimitiveKind::kInt32))
        .field("value", c.types().primitive(PrimitiveKind::kFloat64))
        .field("label", c.types().string_type(12))
        .self_pointer_field("next")
        .finish();
  }

  server::SegmentServer server_;
  Client::ChannelFactory factory_;
};

TEST_F(Hetero, LayoutsActuallyDiffer) {
  auto native = make_client(Platform::native());
  auto sparc = make_client(Platform::sparc32());
  const TypeDescriptor* rn = record_type(*native);
  const TypeDescriptor* rs = record_type(*sparc);
  EXPECT_NE(rn->local_size(), rs->local_size());  // 8B vs 4B pointer
  EXPECT_EQ(rn->prim_units(), rs->prim_units());
}

TEST_F(Hetero, NativeWritesSparcReads) {
  auto native = make_client(Platform::native());
  auto sparc = make_client(Platform::sparc32());

  const TypeDescriptor* rec_n = record_type(*native);
  ClientSegment* seg_n = native->open_segment("host/het1");
  native->write_lock(seg_n);
  auto* raw = static_cast<uint8_t*>(native->malloc_block(seg_n, rec_n, "r"));
  View vn(*native, raw, rec_n);
  vn.set_i32(0, -123456789);
  vn.set_f64(1, 2.718281828);
  std::snprintf(reinterpret_cast<char*>(raw) +
                    rec_n->locate_prim(2).local_offset, 12, "hello");
  vn.set_ptr(3, raw);  // self reference
  native->write_unlock(seg_n);

  ClientSegment* seg_s = sparc->open_segment("host/het1");
  sparc->read_lock(seg_s);
  auto* blk = seg_s->heap().find_by_name("r");
  ASSERT_NE(blk, nullptr);
  const TypeDescriptor* rec_s = blk->type;
  View vs(*sparc, const_cast<uint8_t*>(blk->data()), rec_s);
  EXPECT_EQ(vs.get_i32(0), -123456789);
  EXPECT_EQ(vs.get_f64(1), 2.718281828);
  EXPECT_EQ(vs.get_str(2), "hello");
  // The swizzled self-pointer resolves to the sparc client's own copy.
  EXPECT_EQ(vs.get_ptr(3), blk->data());
  sparc->read_unlock(seg_s);
}

TEST_F(Hetero, SparcWritesNativeReads) {
  auto native = make_client(Platform::native());
  auto sparc = make_client(Platform::sparc32());

  const TypeDescriptor* rec_s = record_type(*sparc);
  ClientSegment* seg_s = sparc->open_segment("host/het2");
  sparc->write_lock(seg_s);
  auto* raw = static_cast<uint8_t*>(sparc->malloc_block(seg_s, rec_s, "r"));
  View vs(*sparc, raw, rec_s);
  vs.set_i32(0, 42);
  vs.set_f64(1, -0.5);
  sparc->write_unlock(seg_s);

  ClientSegment* seg_n = native->open_segment("host/het2");
  native->read_lock(seg_n);
  auto* blk = seg_n->heap().find_by_name("r");
  ASSERT_NE(blk, nullptr);
  // Native layout: plain struct access works.
  struct NativeRec { int32_t id; double value; char label[12]; void* next; };
  const auto* nr = reinterpret_cast<const NativeRec*>(blk->data());
  EXPECT_EQ(nr->id, 42);
  EXPECT_EQ(nr->value, -0.5);
  EXPECT_EQ(nr->next, nullptr);
  native->read_unlock(seg_n);
}

TEST_F(Hetero, LinkedListAcrossThreePlatforms) {
  auto native = make_client(Platform::native());
  auto sparc = make_client(Platform::sparc32());
  auto packed = make_client(Platform::packed_le32());

  // Native builds a 3-node list.
  const TypeDescriptor* rec_n = record_type(*native);
  ClientSegment* seg_n = native->open_segment("host/het3");
  native->write_lock(seg_n);
  uint8_t* nodes[3];
  for (int i = 0; i < 3; ++i) {
    nodes[i] = static_cast<uint8_t*>(native->malloc_block(
        seg_n, rec_n, i == 0 ? "head" : ""));
    View v(*native, nodes[i], rec_n);
    v.set_i32(0, i * 10);
    v.set_ptr(3, i > 0 ? nodes[i - 1] : nullptr);
  }
  // head(=nodes[0]) ... chain nodes[2] -> nodes[1] -> nodes[0].
  native->write_unlock(seg_n);

  // Each platform walks the chain from the last allocated serial (3).
  for (Client* c : {sparc.get(), packed.get()}) {
    ClientSegment* seg = c->open_segment("host/het3");
    c->read_lock(seg);
    auto* blk = seg->heap().find_by_serial(3);
    ASSERT_NE(blk, nullptr);
    std::vector<int32_t> ids;
    const client::BlockHeader* cur = blk;
    while (cur != nullptr) {
      View v(*c, const_cast<uint8_t*>(cur->data()), cur->type);
      ids.push_back(v.get_i32(0));
      void* next = v.get_ptr(3);
      cur = next == nullptr ? nullptr
                            : seg->heap().find_by_address(next);
    }
    EXPECT_EQ(ids, (std::vector<int32_t>{20, 10, 0}))
        << c->options().platform.name;
    c->read_unlock(seg);
  }
}

TEST_F(Hetero, SparcModifiesNativeSeesDiff) {
  auto native = make_client(Platform::native());
  auto sparc = make_client(Platform::sparc32());

  const TypeDescriptor* arr_n =
      native->types().array_of(native->types().primitive(PrimitiveKind::kInt32), 1024);
  ClientSegment* seg_n = native->open_segment("host/het4");
  native->write_lock(seg_n);
  auto* data = static_cast<int32_t*>(native->malloc_block(seg_n, arr_n, "a"));
  for (int i = 0; i < 1024; ++i) data[i] = i;
  native->write_unlock(seg_n);

  ClientSegment* seg_s = sparc->open_segment("host/het4");
  sparc->read_lock(seg_s);
  sparc->read_unlock(seg_s);
  auto* blk_s = seg_s->heap().find_by_name("a");
  ASSERT_NE(blk_s, nullptr);

  sparc->write_lock(seg_s);
  View vs(*sparc, const_cast<uint8_t*>(blk_s->data()), blk_s->type);
  vs.set_i32(100, -1);
  vs.set_i32(101, -2);
  sparc->write_unlock(seg_s);

  native->read_lock(seg_n);
  EXPECT_EQ(data[100], -1);
  EXPECT_EQ(data[101], -2);
  EXPECT_EQ(data[99], 99);
  EXPECT_EQ(data[102], 102);
  native->read_unlock(seg_n);
}

TEST_F(Hetero, CrossSegmentPointerBetweenPlatforms) {
  auto native = make_client(Platform::native());
  auto big = make_client(Platform::big64());

  const TypeDescriptor* int_n = native->types().primitive(PrimitiveKind::kInt32);
  ClientSegment* tgt_n = native->open_segment("host/het5-data");
  native->write_lock(tgt_n);
  auto* value = static_cast<int32_t*>(native->malloc_block(tgt_n, int_n, "v"));
  *value = 2026;
  native->write_unlock(tgt_n);

  const TypeDescriptor* ptr_n = native->types().pointer_to(int_n);
  ClientSegment* ref_n = native->open_segment("host/het5-ref");
  native->write_lock(ref_n);
  auto* ref = static_cast<uint8_t*>(native->malloc_block(ref_n, ptr_n, "p"));
  native->write_pointer_field(ref, value);
  native->write_unlock(ref_n);

  ClientSegment* ref_b = big->open_segment("host/het5-ref");
  big->read_lock(ref_b);
  auto* blk = ref_b->heap().find_by_name("p");
  ASSERT_NE(blk, nullptr);
  void* target = big->read_pointer_field(blk->data());
  ASSERT_NE(target, nullptr);
  big->read_unlock(ref_b);

  ClientSegment* tgt_b = big->open_segment("host/het5-data", false);
  big->read_lock(tgt_b);
  // big64 stores int32 big-endian locally.
  const auto* p = static_cast<const uint8_t*>(target);
  int32_t v = (p[0] << 24) | (p[1] << 16) | (p[2] << 8) | p[3];
  EXPECT_EQ(v, 2026);
  big->read_unlock(tgt_b);
}

TEST_F(Hetero, IsoFastPathNeverEngagesAcrossMismatchedLayouts) {
  // A little-endian client's local layout can never be byte-identical to
  // the big-endian wire, so the plan's whole-block memcpy path must never
  // engage there — while the server's packed-canonical store (genuinely
  // isomorphic with the wire for numeric types) must use it.
  auto writer = make_client(Platform::native());
  const TypeDescriptor* arr = writer->types().array_of(
      writer->types().primitive(PrimitiveKind::kInt32), 512);
  writer->reset_stats();
  ClientSegment* seg = writer->open_segment("host/hetiso");
  writer->write_lock(seg);
  auto* data = static_cast<int32_t*>(writer->malloc_block(seg, arr, "a"));
  for (int i = 0; i < 512; ++i) data[i] = i - 256;
  writer->write_unlock(seg);

  // A second LE client decodes the segment; data must still be correct.
  auto reader = make_client(Platform::native());
  reader->reset_stats();
  ClientSegment* rs = reader->open_segment("host/hetiso");
  reader->read_lock(rs);
  auto* blk = rs->heap().find_by_name("a");
  ASSERT_NE(blk, nullptr);
  const auto* rd = reinterpret_cast<const int32_t*>(blk->data());
  for (int i = 0; i < 512; ++i) ASSERT_EQ(rd[i], i - 256) << i;
  reader->read_unlock(rs);

  EXPECT_GT(writer->stats().bytes_encoded, 0u);
  EXPECT_EQ(writer->stats().isomorphic_fast_path_blocks, 0u);
  EXPECT_GT(reader->stats().bytes_decoded, 0u);
  EXPECT_EQ(reader->stats().isomorphic_fast_path_blocks, 0u);
  EXPECT_GT(server_.segment_stats("host/hetiso").isomorphic_fast_path_blocks,
            0u);
}

TEST_F(Hetero, AllPlatformPairsRoundTripArray) {
  const std::vector<Platform> platforms = {
      Platform::native(), Platform::sparc32(), Platform::big64(),
      Platform::packed_le32()};
  int seg_id = 0;
  for (const Platform& wp : platforms) {
    for (const Platform& rp : platforms) {
      auto writer = make_client(wp);
      auto reader = make_client(rp);
      std::string url = "host/pair" + std::to_string(seg_id++);

      const TypeDescriptor* arr = writer->types().array_of(
          writer->types().primitive(PrimitiveKind::kInt32), 64);
      ClientSegment* ws = writer->open_segment(url);
      writer->write_lock(ws);
      auto* raw = static_cast<uint8_t*>(writer->malloc_block(ws, arr, "a"));
      View wv(*writer, raw, arr);
      for (int i = 0; i < 64; ++i) wv.set_i32(i, i * 7 - 100);
      writer->write_unlock(ws);

      ClientSegment* rs = reader->open_segment(url);
      reader->read_lock(rs);
      auto* blk = rs->heap().find_by_name("a");
      ASSERT_NE(blk, nullptr);
      View rv(*reader, const_cast<uint8_t*>(blk->data()), blk->type);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(rv.get_i32(i), i * 7 - 100)
            << wp.name << " -> " << rp.name << " unit " << i;
      }
      reader->read_unlock(rs);
    }
  }
}

}  // namespace
}  // namespace iw
