// Randomized multi-client convergence test: several clients (on mixed
// simulated platforms) apply random operations — block allocation, frees,
// range writes — to one shared segment, interleaved with reader syncs. A
// reference model tracks the expected canonical contents; at every
// verification point each client's cached copy must match the model
// exactly, and at the end all clients converge bit-for-bit.
#include <gtest/gtest.h>

#include <map>

#include "interweave/interweave.hpp"
#include "util/rand.hpp"

namespace iw {
namespace {

/// Canonical model of one block: int32 values by unit index.
using BlockModel = std::vector<int32_t>;

class MultiClientFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  MultiClientFuzz() {
    factory_ = [this](const std::string&) {
      return std::make_shared<InProcChannel>(server_);
    };
  }

  std::unique_ptr<Client> make_client(const Platform& platform) {
    Client::Options options;
    options.platform = platform;
    return std::make_unique<Client>(factory_, options);
  }

  /// Reads unit `u` of a block as int32 under any platform layout.
  static int32_t read_unit(Client& c, const client::BlockHeader* blk,
                           uint64_t u) {
    const LayoutRules& rules = c.options().platform.rules;
    const uint8_t* p = blk->data() + blk->type->locate_prim(u).local_offset;
    uint32_t v = 0;
    if (rules.byte_order == ByteOrder::kBig) {
      for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
    } else {
      for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    }
    return static_cast<int32_t>(v);
  }

  static void write_unit(Client& c, client::BlockHeader* blk, uint64_t u,
                         int32_t value) {
    const LayoutRules& rules = c.options().platform.rules;
    uint8_t* p = const_cast<uint8_t*>(blk->data()) +
                 blk->type->locate_prim(u).local_offset;
    auto v = static_cast<uint32_t>(value);
    if (rules.byte_order == ByteOrder::kBig) {
      for (int i = 3; i >= 0; --i) {
        p[i] = static_cast<uint8_t>(v);
        v >>= 8;
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        p[i] = static_cast<uint8_t>(v);
        v >>= 8;
      }
    }
  }

  server::SegmentServer server_;
  Client::ChannelFactory factory_;
};

TEST_P(MultiClientFuzz, RandomOpsConverge) {
  SplitMix64 rng(GetParam());
  const std::string url = "host/fuzz" + std::to_string(GetParam());

  std::vector<std::unique_ptr<Client>> clients;
  clients.push_back(make_client(Platform::native()));
  clients.push_back(make_client(Platform::sparc32()));
  clients.push_back(make_client(Platform::native()));
  clients.push_back(make_client(Platform::packed_le32()));
  std::vector<ClientSegment*> segs;
  for (auto& c : clients) segs.push_back(c->open_segment(url));

  std::map<uint32_t, BlockModel> model;  // serial -> canonical units

  auto verify_client = [&](size_t i) {
    Client& c = *clients[i];
    ClientSegment* seg = segs[i];
    c.read_lock(seg);
    size_t counted = 0;
    seg->heap().for_each_block([&](client::BlockHeader* blk) {
      auto it = model.find(blk->serial);
      ASSERT_NE(it, model.end()) << "client has unexpected block";
      ASSERT_EQ(blk->type->prim_units(), it->second.size());
      for (uint64_t u = 0; u < it->second.size(); ++u) {
        ASSERT_EQ(read_unit(c, blk, u), it->second[u])
            << "client " << i << " block " << blk->serial << " unit " << u;
      }
      ++counted;
    });
    ASSERT_EQ(counted, model.size());
    c.read_unlock(seg);
  };

  for (int step = 0; step < 120; ++step) {
    size_t who = rng.below(clients.size());
    Client& c = *clients[who];
    ClientSegment* seg = segs[who];
    uint64_t op = rng.below(10);

    if (op < 2 || model.empty()) {
      // Allocate a block of random size.
      uint64_t units = 1 + rng.below(300);
      c.write_lock(seg);
      const TypeDescriptor* arr =
          c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), units);
      void* data = c.malloc_block(seg, arr);
      auto* blk = seg->heap().find_by_address(data);
      model.emplace(blk->serial, BlockModel(units, 0));
      c.write_unlock(seg);
    } else if (op < 3) {
      // Free a random block.
      auto it = model.begin();
      std::advance(it, rng.below(model.size()));
      c.write_lock(seg);
      auto* blk = seg->heap().find_by_serial(it->first);
      ASSERT_NE(blk, nullptr);
      c.free_block(seg, const_cast<uint8_t*>(blk->data()));
      model.erase(it);
      c.write_unlock(seg);
    } else if (op < 8) {
      // Write a random run into a random block.
      auto it = model.begin();
      std::advance(it, rng.below(model.size()));
      BlockModel& bm = it->second;
      uint64_t begin = rng.below(bm.size());
      uint64_t len = 1 + rng.below(bm.size() - begin);
      c.write_lock(seg);
      auto* blk = seg->heap().find_by_serial(it->first);
      ASSERT_NE(blk, nullptr);
      for (uint64_t u = begin; u < begin + len; ++u) {
        auto value = static_cast<int32_t>(rng());
        write_unit(c, blk, u, value);
        bm[u] = value;
      }
      c.write_unlock(seg);
    } else {
      verify_client(rng.below(clients.size()));
    }
  }

  // Final convergence: every client matches the model bit for bit.
  for (size_t i = 0; i < clients.size(); ++i) verify_client(i);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiClientFuzz,
                         ::testing::Values(1ull, 42ull, 1337ull, 777777ull,
                                           0xDEADBEEFull));

}  // namespace
}  // namespace iw
