// Robustness fuzzing: random and truncated bytes fed to every decoder and
// to the server's protocol handler must produce clean errors, never crashes
// or hangs. Deterministic seeds keep failures reproducible.
#include <gtest/gtest.h>

#include "net/inproc.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "util/rand.hpp"
#include "wire/diff.hpp"
#include "wire/frame.hpp"
#include "wire/payload.hpp"

namespace iw {
namespace {

std::vector<uint8_t> random_bytes(SplitMix64& rng, size_t max_len) {
  std::vector<uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng());
  return out;
}

TEST(FuzzDecode, TypeCodecNeverCrashes) {
  SplitMix64 rng(2026);
  TypeRegistry registry(Platform::native().rules);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = random_bytes(rng, 200);
    BufReader r(bytes.data(), bytes.size());
    try {
      TypeCodec::decode_graph(r, registry);
    } catch (const Error&) {
      // expected for garbage
    }
  }
}

TEST(FuzzDecode, MutatedValidTypeGraphs) {
  SplitMix64 rng(7);
  TypeRegistry source(Platform::native().rules);
  const TypeDescriptor* node = source.struct_builder("n")
      .field("k", source.primitive(PrimitiveKind::kInt32))
      .field("s", source.string_type(9))
      .self_pointer_field("next")
      .finish();
  Buffer valid;
  TypeCodec::encode_graph(node, valid);

  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(valid.data(), valid.data() + valid.size());
    // Flip a few bytes / truncate.
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.below(bytes.size())] ^= static_cast<uint8_t>(1 + rng.below(255));
    }
    if (rng.below(4) == 0) bytes.resize(rng.below(bytes.size() + 1));
    TypeRegistry registry(Platform::native().rules);
    BufReader r(bytes.data(), bytes.size());
    try {
      const TypeDescriptor* t = TypeCodec::decode_graph(r, registry);
      // If it decoded, basic invariants must hold.
      ASSERT_NE(t, nullptr);
      (void)t->prim_units();
    } catch (const Error&) {
    }
  }
}

TEST(FuzzDecode, DiffReaderNeverCrashes) {
  SplitMix64 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = random_bytes(rng, 300);
    BufReader in(bytes.data(), bytes.size());
    try {
      DiffReader reader(in);
      DiffEntry entry;
      int guard = 0;
      while (reader.next(&entry) && ++guard < 10000) {
        while (!entry.runs.at_end()) {
          DiffRun run = DiffReader::read_run(entry.runs);
          entry.runs.skip(std::min<size_t>(entry.runs.remaining(),
                                           run.unit_count));
        }
      }
    } catch (const Error&) {
    }
  }
}

TEST(FuzzServer, RandomFramesGetCleanResponses) {
  server::SegmentServer server;
  InProcChannel channel(server);
  SplitMix64 rng(4242);
  int errors = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    auto type = static_cast<MsgType>(rng.below(20));
    if (type == MsgType::kAcquireWrite) continue;  // may legitimately block
    auto payload_bytes = random_bytes(rng, 120);
    Buffer payload;
    payload.append(payload_bytes.data(), payload_bytes.size());
    try {
      channel.call(type, std::move(payload));
    } catch (const Error&) {
      ++errors;
    }
  }
  EXPECT_GT(errors, 0) << "garbage should mostly be rejected";
  // And the server must still work normally afterwards.
  Buffer open;
  open.append_lp_string("host/after-fuzz");
  open.append_u8(1);
  Frame resp = channel.call(MsgType::kOpenSegment, std::move(open));
  EXPECT_EQ(resp.type, MsgType::kOpenSegmentResp);
}

TEST(FuzzServer, MalformedReleaseDoesNotWedgeTheLock) {
  server::SegmentServer server;
  InProcChannel a(server);
  InProcChannel b(server);
  Buffer open;
  open.append_lp_string("host/wedge");
  open.append_u8(1);
  a.call(MsgType::kOpenSegment, std::move(open));

  // a acquires the write lock, then releases with garbage.
  Buffer acq;
  acq.append_lp_string("host/wedge");
  acq.append_u32(0);
  a.call(MsgType::kAcquireWrite, std::move(acq));
  Buffer bad;
  bad.append_lp_string("host/wedge");
  bad.append_u32(123);  // not a valid diff
  EXPECT_THROW(a.call(MsgType::kReleaseWrite, std::move(bad)), Error);

  // b must be able to take the lock now.
  Buffer acq2;
  acq2.append_lp_string("host/wedge");
  acq2.append_u32(0);
  Frame resp = b.call(MsgType::kAcquireWrite, std::move(acq2));
  EXPECT_EQ(resp.type, MsgType::kAcquireWriteResp);
  Buffer rel;
  rel.append_lp_string("host/wedge");
  DiffWriter(rel, 1, 1).finish();
  b.call(MsgType::kReleaseWrite, std::move(rel));
}

// ------------------------------------------------------- payload codec

std::vector<uint8_t> compressible_bytes(SplitMix64& rng, size_t len) {
  // Runs of repeated values with occasional noise: realistic diff shape,
  // reliably beats the raw form.
  std::vector<uint8_t> out(len);
  size_t i = 0;
  while (i < len) {
    uint8_t value = static_cast<uint8_t>(rng());
    size_t run = 8 + rng.below(64);
    for (size_t j = 0; j < run && i < len; ++j) out[i++] = value;
  }
  return out;
}

TEST(FuzzCodec, LzRoundTripsEveryInputShape) {
  SplitMix64 rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> raw = (trial % 2 == 0)
        ? compressible_bytes(rng, 1 + rng.below(4096))
        : random_bytes(rng, 4096);
    Buffer comp;
    if (!lz_compress(raw, comp)) continue;  // incompressible: raw is kept
    ASSERT_LT(comp.size(), raw.size());
    std::vector<uint8_t> back = lz_decompress(comp.span(), raw.size());
    ASSERT_EQ(back, raw);
  }
}

TEST(FuzzCodec, MutatedCompressedStreamsAreTypedErrors) {
  SplitMix64 rng(67);
  std::vector<uint8_t> raw = compressible_bytes(rng, 2048);
  Buffer comp;
  ASSERT_TRUE(lz_compress(raw, comp));
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(comp.data(), comp.data() + comp.size());
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<uint8_t>(1 + rng.below(255));
    }
    if (rng.below(4) == 0) bytes.resize(rng.below(bytes.size() + 1));
    try {
      std::vector<uint8_t> back = lz_decompress(bytes, raw.size());
      // A mutation the checksum-free block codec cannot see must still
      // produce exactly raw_len bytes — never a crash or OOB access.
      ASSERT_EQ(back.size(), raw.size());
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload);
    }
  }
}

TEST(FuzzCodec, RecordPayloadEnvelopeRoundTripsAndRejectsGarbage) {
  SplitMix64 rng(101);
  std::vector<uint8_t> head(4, 0x7a);
  std::vector<uint8_t> body = compressible_bytes(rng, 1500);
  Buffer packed;
  ASSERT_TRUE(compress_record_payload(head, body, packed));
  std::vector<uint8_t> back = decompress_record_payload(packed.span());
  std::vector<uint8_t> want(head);
  want.insert(want.end(), body.begin(), body.end());
  EXPECT_EQ(back, want);

  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(packed.data(), packed.data() + packed.size());
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<uint8_t>(1 + rng.below(255));
    }
    if (rng.below(4) == 0) bytes.resize(rng.below(bytes.size() + 1));
    try {
      (void)decompress_record_payload(bytes);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload);
    }
  }
  // Pure garbage never crashes either.
  for (int trial = 0; trial < 1000; ++trial) {
    auto bytes = random_bytes(rng, 256);
    try {
      (void)decompress_record_payload(bytes);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload);
    }
  }
}

TEST(FuzzCodec, SectionEnvelopeRoundTripsWithTrailingBytes) {
  SplitMix64 rng(211);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> section = compressible_bytes(rng, 64 + rng.below(2048));
    Buffer payload;
    payload.append_u32(0xfeedface);  // leading frame field
    const size_t method_offset = payload.size();
    payload.append_u8(payload_method::kRaw);
    payload.append(section.data(), section.size());
    const bool compressed = compress_section_in_place(payload, method_offset);
    payload.append_u8(0x5c);  // trailing frame field (the grant byte shape)

    BufReader in(payload.data(), payload.size());
    ASSERT_EQ(in.read_u32(), 0xfeedface);
    std::vector<uint8_t> scratch;
    if (read_compressed_section(in, scratch)) {
      ASSERT_TRUE(compressed);
      ASSERT_EQ(scratch, section);
    } else {
      ASSERT_FALSE(compressed);
      auto raw = in.read_bytes(section.size());
      ASSERT_TRUE(std::equal(raw.begin(), raw.end(), section.begin()));
    }
    // The kLz envelope is explicitly sized: trailing bytes still line up.
    ASSERT_EQ(in.read_u8(), 0x5c);
    ASSERT_EQ(in.remaining(), 0u);
  }
}

TEST(FuzzCodec, MutatedSectionEnvelopesAreTypedErrors) {
  SplitMix64 rng(307);
  std::vector<uint8_t> section = compressible_bytes(rng, 2048);
  Buffer payload;
  const size_t method_offset = payload.size();
  payload.append_u8(payload_method::kRaw);
  payload.append(section.data(), section.size());
  ASSERT_TRUE(compress_section_in_place(payload, method_offset));
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(payload.data(), payload.data() + payload.size());
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<uint8_t>(1 + rng.below(255));
    }
    if (rng.below(4) == 0) bytes.resize(rng.below(bytes.size() + 1));
    BufReader in(bytes.data(), bytes.size());
    std::vector<uint8_t> scratch;
    try {
      if (read_compressed_section(in, scratch)) {
        ASSERT_EQ(scratch.size(), section.size());
      }
    } catch (const Error& e) {
      // Method-byte mutations surface as protocol-shaped errors; stream
      // mutations as kCorruptPayload. Either way: typed, never a crash.
      EXPECT_TRUE(e.code() == ErrorCode::kCorruptPayload ||
                  e.code() == ErrorCode::kProtocol)
          << static_cast<int>(e.code());
    }
  }
}

TEST(FuzzCodec, RecordScannerStopsCleanlyOnMutatedFrames) {
  SplitMix64 rng(401);
  Buffer valid;
  for (uint8_t tag = 1; tag <= 4; ++tag) {
    auto body = compressible_bytes(rng, 200 + rng.below(800));
    append_framed_record(valid, tag, body);
  }
  // The pristine run scans end to end.
  {
    RecordScanner scanner(valid.span());
    ScannedRecord rec;
    int n = 0;
    while (scanner.next(&rec) == RecordScanner::Status::kRecord) ++n;
    EXPECT_EQ(n, 4);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(valid.data(), valid.data() + valid.size());
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<uint8_t>(1 + rng.below(255));
    }
    if (rng.below(4) == 0) bytes.resize(rng.below(bytes.size() + 1));
    RecordScanner scanner(bytes);
    ScannedRecord rec;
    int guard = 0;
    RecordScanner::Status status;
    while ((status = scanner.next(&rec)) == RecordScanner::Status::kRecord) {
      ASSERT_LT(++guard, 64);
      // Every surfaced record passed its CRC; the flip either hit a body
      // (caught) or a record it left intact.
      ASSERT_LE(rec.end_offset, bytes.size());
    }
    // Never hangs, never reads past the buffer; any damage is kTorn.
    ASSERT_TRUE(status == RecordScanner::Status::kEnd ||
                status == RecordScanner::Status::kTorn);
  }
}

TEST(FuzzFrame, HeaderDecoding) {
  SplitMix64 rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    uint8_t header[kFrameHeaderSize];
    for (auto& b : header) b = static_cast<uint8_t>(rng());
    try {
      FrameHeader h = decode_frame_header(header);
      EXPECT_LE(h.payload_size, kMaxFramePayload);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace iw
