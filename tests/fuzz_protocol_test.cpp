// Robustness fuzzing: random and truncated bytes fed to every decoder and
// to the server's protocol handler must produce clean errors, never crashes
// or hangs. Deterministic seeds keep failures reproducible.
#include <gtest/gtest.h>

#include "net/inproc.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "util/rand.hpp"
#include "wire/diff.hpp"
#include "wire/frame.hpp"

namespace iw {
namespace {

std::vector<uint8_t> random_bytes(SplitMix64& rng, size_t max_len) {
  std::vector<uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng());
  return out;
}

TEST(FuzzDecode, TypeCodecNeverCrashes) {
  SplitMix64 rng(2026);
  TypeRegistry registry(Platform::native().rules);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = random_bytes(rng, 200);
    BufReader r(bytes.data(), bytes.size());
    try {
      TypeCodec::decode_graph(r, registry);
    } catch (const Error&) {
      // expected for garbage
    }
  }
}

TEST(FuzzDecode, MutatedValidTypeGraphs) {
  SplitMix64 rng(7);
  TypeRegistry source(Platform::native().rules);
  const TypeDescriptor* node = source.struct_builder("n")
      .field("k", source.primitive(PrimitiveKind::kInt32))
      .field("s", source.string_type(9))
      .self_pointer_field("next")
      .finish();
  Buffer valid;
  TypeCodec::encode_graph(node, valid);

  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(valid.data(), valid.data() + valid.size());
    // Flip a few bytes / truncate.
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.below(bytes.size())] ^= static_cast<uint8_t>(1 + rng.below(255));
    }
    if (rng.below(4) == 0) bytes.resize(rng.below(bytes.size() + 1));
    TypeRegistry registry(Platform::native().rules);
    BufReader r(bytes.data(), bytes.size());
    try {
      const TypeDescriptor* t = TypeCodec::decode_graph(r, registry);
      // If it decoded, basic invariants must hold.
      ASSERT_NE(t, nullptr);
      (void)t->prim_units();
    } catch (const Error&) {
    }
  }
}

TEST(FuzzDecode, DiffReaderNeverCrashes) {
  SplitMix64 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = random_bytes(rng, 300);
    BufReader in(bytes.data(), bytes.size());
    try {
      DiffReader reader(in);
      DiffEntry entry;
      int guard = 0;
      while (reader.next(&entry) && ++guard < 10000) {
        while (!entry.runs.at_end()) {
          DiffRun run = DiffReader::read_run(entry.runs);
          entry.runs.skip(std::min<size_t>(entry.runs.remaining(),
                                           run.unit_count));
        }
      }
    } catch (const Error&) {
    }
  }
}

TEST(FuzzServer, RandomFramesGetCleanResponses) {
  server::SegmentServer server;
  InProcChannel channel(server);
  SplitMix64 rng(4242);
  int errors = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    auto type = static_cast<MsgType>(rng.below(20));
    if (type == MsgType::kAcquireWrite) continue;  // may legitimately block
    auto payload_bytes = random_bytes(rng, 120);
    Buffer payload;
    payload.append(payload_bytes.data(), payload_bytes.size());
    try {
      channel.call(type, std::move(payload));
    } catch (const Error&) {
      ++errors;
    }
  }
  EXPECT_GT(errors, 0) << "garbage should mostly be rejected";
  // And the server must still work normally afterwards.
  Buffer open;
  open.append_lp_string("host/after-fuzz");
  open.append_u8(1);
  Frame resp = channel.call(MsgType::kOpenSegment, std::move(open));
  EXPECT_EQ(resp.type, MsgType::kOpenSegmentResp);
}

TEST(FuzzServer, MalformedReleaseDoesNotWedgeTheLock) {
  server::SegmentServer server;
  InProcChannel a(server);
  InProcChannel b(server);
  Buffer open;
  open.append_lp_string("host/wedge");
  open.append_u8(1);
  a.call(MsgType::kOpenSegment, std::move(open));

  // a acquires the write lock, then releases with garbage.
  Buffer acq;
  acq.append_lp_string("host/wedge");
  acq.append_u32(0);
  a.call(MsgType::kAcquireWrite, std::move(acq));
  Buffer bad;
  bad.append_lp_string("host/wedge");
  bad.append_u32(123);  // not a valid diff
  EXPECT_THROW(a.call(MsgType::kReleaseWrite, std::move(bad)), Error);

  // b must be able to take the lock now.
  Buffer acq2;
  acq2.append_lp_string("host/wedge");
  acq2.append_u32(0);
  Frame resp = b.call(MsgType::kAcquireWrite, std::move(acq2));
  EXPECT_EQ(resp.type, MsgType::kAcquireWriteResp);
  Buffer rel;
  rel.append_lp_string("host/wedge");
  DiffWriter(rel, 1, 1).finish();
  b.call(MsgType::kReleaseWrite, std::move(rel));
}

TEST(FuzzFrame, HeaderDecoding) {
  SplitMix64 rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    uint8_t header[kFrameHeaderSize];
    for (auto& b : header) b = static_cast<uint8_t>(rng());
    try {
      FrameHeader h = decode_frame_header(header);
      EXPECT_LE(h.payload_size, kMaxFramePayload);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace iw
