// Tests for modification tracking: word diffing with run splicing, twins
// via real page faults, the software backend, and no-diff adaptation.
#include "client/tracking.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "client/client.hpp"
#include "net/inproc.hpp"
#include "server/server.hpp"
#include "util/rand.hpp"

namespace iw::client {
namespace {

std::vector<ByteRange> diff(const std::vector<uint32_t>& cur,
                            const std::vector<uint32_t>& twin,
                            uint32_t splice = 2) {
  std::vector<ByteRange> out;
  diff_words(reinterpret_cast<const uint8_t*>(cur.data()),
             reinterpret_cast<const uint8_t*>(twin.data()), cur.size() * 4,
             splice, out);
  return out;
}

TEST(DiffWords, IdenticalPagesProduceNothing) {
  std::vector<uint32_t> a(1024, 7);
  EXPECT_TRUE(diff(a, a).empty());
}

TEST(DiffWords, SingleWordChange) {
  std::vector<uint32_t> twin(1024, 0), cur(1024, 0);
  cur[100] = 1;
  auto runs = diff(cur, twin);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].begin, 400u);
  EXPECT_EQ(runs[0].end, 404u);
}

TEST(DiffWords, WholePageChanged) {
  std::vector<uint32_t> twin(1024, 0), cur(1024, 1);
  auto runs = diff(cur, twin);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].begin, 0u);
  EXPECT_EQ(runs[0].end, 4096u);
}

TEST(DiffWords, GapOfTwoIsSpliced) {
  std::vector<uint32_t> twin(64, 0), cur(64, 0);
  cur[10] = 1;
  cur[13] = 1;  // gap of 2 unmodified words (11, 12)
  auto runs = diff(cur, twin, 2);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].begin, 40u);
  EXPECT_EQ(runs[0].end, 56u);
}

TEST(DiffWords, GapOfThreeSplitsRuns) {
  std::vector<uint32_t> twin(64, 0), cur(64, 0);
  cur[10] = 1;
  cur[14] = 1;  // gap of 3 unmodified words
  auto runs = diff(cur, twin, 2);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].begin, 40u);
  EXPECT_EQ(runs[0].end, 44u);
  EXPECT_EQ(runs[1].begin, 56u);
  EXPECT_EQ(runs[1].end, 60u);
}

TEST(DiffWords, SplicingDisabledSplitsEverything) {
  std::vector<uint32_t> twin(64, 0), cur(64, 0);
  cur[10] = 1;
  cur[12] = 1;
  auto runs = diff(cur, twin, 0);
  EXPECT_EQ(runs.size(), 2u);
}

TEST(DiffWords, EveryOtherWordSplicesIntoOneRun) {
  // The paper's ratio-2 case: with splice=2, one long run.
  std::vector<uint32_t> twin(1024, 0), cur(1024, 0);
  for (size_t i = 0; i < 1024; i += 2) cur[i] = 1;
  auto runs = diff(cur, twin, 2);
  ASSERT_EQ(runs.size(), 1u);
}

TEST(DiffWords, EveryFourthWordStaysFragmented) {
  // The paper's ratio-4 case: splicing lost, many runs.
  std::vector<uint32_t> twin(1024, 0), cur(1024, 0);
  for (size_t i = 0; i < 1024; i += 4) cur[i] = 1;
  auto runs = diff(cur, twin, 2);
  EXPECT_EQ(runs.size(), 256u);
}

TEST(DiffWords, RandomizedRunsCoverExactlyChangedWords) {
  SplitMix64 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> twin(512), cur(512);
    for (auto& w : twin) w = static_cast<uint32_t>(rng());
    cur = twin;
    std::vector<bool> changed(512, false);
    int n_changes = 1 + static_cast<int>(rng.below(50));
    for (int c = 0; c < n_changes; ++c) {
      size_t i = rng.below(512);
      cur[i] ^= 0xFFFF;
      changed[i] = cur[i] != twin[i];
    }
    auto runs = diff(cur, twin, 2);
    // Every changed word must be inside some run.
    for (size_t i = 0; i < 512; ++i) {
      if (!changed[i]) continue;
      bool covered = false;
      for (const auto& r : runs) {
        if (i * 4 >= r.begin && i * 4 < r.end) covered = true;
      }
      EXPECT_TRUE(covered) << "word " << i << " missed in trial " << trial;
    }
    // Runs are sorted, non-overlapping, and never splice more than the
    // allowed gap of clean words between changed ones.
    for (size_t r = 1; r < runs.size(); ++r) {
      EXPECT_GT(runs[r].begin, runs[r - 1].end);
    }
  }
}

// --- End-to-end tracking-mode tests ---

class TrackingModes : public ::testing::Test {
 protected:
  std::unique_ptr<Client> make_client(TrackingMode mode) {
    Client::Options options;
    options.tracking = mode;
    return std::make_unique<Client>(
        [this](const std::string&) {
          return std::make_shared<InProcChannel>(server_);
        },
        options);
  }
  server::SegmentServer server_;
};

/// Every backend must produce identical shared state; this exercises twins
/// via real SIGSEGV faults (kVmDiff), eager snapshots (kSoftware), and
/// whole-block transmission (kNoDiff).
class TrackingModeParam
    : public TrackingModes,
      public ::testing::WithParamInterface<TrackingMode> {};

TEST_P(TrackingModeParam, ModificationsPropagate) {
  auto writer = make_client(GetParam());
  auto reader = make_client(TrackingMode::kAuto);
  std::string url =
      "host/track" + std::to_string(static_cast<int>(GetParam()));

  const TypeDescriptor* arr = writer->types().array_of(
      writer->types().primitive(PrimitiveKind::kInt32), 8192);
  ClientSegment* ws = writer->open_segment(url);
  writer->write_lock(ws);
  auto* data = static_cast<int32_t*>(writer->malloc_block(ws, arr, "a"));
  for (int i = 0; i < 8192; ++i) data[i] = i;
  writer->write_unlock(ws);

  writer->write_lock(ws);
  data[5000] = -5;
  data[1] = -1;
  writer->write_unlock(ws);

  ClientSegment* rs = reader->open_segment(url);
  reader->read_lock(rs);
  const auto* d =
      reinterpret_cast<const int32_t*>(rs->heap().find_by_name("a")->data());
  EXPECT_EQ(d[5000], -5);
  EXPECT_EQ(d[1], -1);
  EXPECT_EQ(d[5001], 5001);
  reader->read_unlock(rs);
}

INSTANTIATE_TEST_SUITE_P(AllModes, TrackingModeParam,
                         ::testing::Values(TrackingMode::kVmDiff,
                                           TrackingMode::kSoftware,
                                           TrackingMode::kNoDiff,
                                           TrackingMode::kAuto),
                         [](const auto& info) {
                           switch (info.param) {
                             case TrackingMode::kVmDiff: return "VmDiff";
                             case TrackingMode::kSoftware: return "Software";
                             case TrackingMode::kNoDiff: return "NoDiff";
                             default: return "Auto";
                           }
                         });

TEST_F(TrackingModes, VmDiffTakesFaultsOnlyForTouchedPages) {
  auto c = make_client(TrackingMode::kVmDiff);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 65536);
  ClientSegment* seg = c->open_segment("host/faults");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr));
  c->write_unlock(seg);

  uint64_t before = fault_count();
  c->write_lock(seg);
  data[0] = 1;       // page A
  data[1] = 2;       // page A again: no second fault
  data[2048] = 3;    // page B (8 KiB in)
  c->write_unlock(seg);
  uint64_t faults = fault_count() - before;
  EXPECT_GE(faults, 2u);
  EXPECT_LE(faults, 4u);  // allow the header page
}

TEST_F(TrackingModes, VmDiffSendsOnlyTouchedSubblocks) {
  auto c = make_client(TrackingMode::kVmDiff);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 262144);
  ClientSegment* seg = c->open_segment("host/sparse");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr));
  c->write_unlock(seg);

  uint64_t sent_before = c->bytes_sent();
  uint64_t units_before = c->stats().units_sent;
  c->write_lock(seg);
  data[100000] = 42;
  c->write_unlock(seg);
  uint64_t sent = c->bytes_sent() - sent_before;
  EXPECT_LT(sent, 600u) << "1 MiB segment, 1 word changed: tiny diff";
  EXPECT_EQ(c->stats().units_sent - units_before, 1u);
}

TEST_F(TrackingModes, AutoSwitchesToNoDiffWhenEverythingChanges) {
  auto c = make_client(TrackingMode::kAuto);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 4096);
  ClientSegment* seg = c->open_segment("host/adapt");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr));
  c->write_unlock(seg);
  EXPECT_FALSE(seg->no_diff_active());

  // Two critical sections that rewrite everything.
  for (int round = 1; round <= 2; ++round) {
    c->write_lock(seg);
    for (int i = 0; i < 4096; ++i) data[i] = i + round;
    c->write_unlock(seg);
  }
  EXPECT_TRUE(seg->no_diff_active()) << "should have switched to no-diff";
  uint64_t no_diff_before = c->stats().no_diff_releases;

  c->write_lock(seg);
  data[0] = -1;
  c->write_unlock(seg);
  EXPECT_GT(c->stats().no_diff_releases, no_diff_before);
}

TEST_F(TrackingModes, AutoProbesDiffingAgain) {
  Client::Options options;
  options.tracking = TrackingMode::kAuto;
  options.no_diff_probe_period = 2;
  auto c = std::make_unique<Client>(
      [this](const std::string&) {
        return std::make_shared<InProcChannel>(server_);
      },
      options);
  const TypeDescriptor* arr =
      c->types().array_of(c->types().primitive(PrimitiveKind::kInt32), 1024);
  ClientSegment* seg = c->open_segment("host/probe");
  c->write_lock(seg);
  auto* data = static_cast<int32_t*>(c->malloc_block(seg, arr));
  c->write_unlock(seg);

  c->write_lock(seg);
  for (int i = 0; i < 1024; ++i) data[i] = i + 1;
  c->write_unlock(seg);
  ASSERT_TRUE(seg->no_diff_active());

  // Two no-diff sections burn the probe countdown...
  for (int round = 0; round < 2; ++round) {
    c->write_lock(seg);
    data[0] = round + 10;
    c->write_unlock(seg);
  }
  // ...after which diffing is probed again.
  EXPECT_FALSE(seg->no_diff_active());
}

}  // namespace
}  // namespace iw::client
