// Server-side writer leases: a stalled (or dead) writer cannot wedge a
// segment. Waiters reclaim an expired lease, the segment's reclaim epoch
// advances, and the stalled holder's late release is rejected with the
// typed kLeaseExpired error; a live holder renews its lease through
// mid-critical-section traffic and is never preempted.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "interweave/interweave.hpp"

namespace iw {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

Frame raw_call(ClientChannel& ch, MsgType type, Buffer payload) {
  return ch.call(type, std::move(payload));
}

/// Transport under test: in-proc by default; IW_LEASE_TRANSPORT=tcp runs
/// the identical suite over real sockets and the epoll reactor server, so
/// lease reclaim / stale-release semantics are exercised end to end on the
/// wire (disconnect = genuine EOF, blocking acquires occupy real workers).
struct Harness {
  explicit Harness(ServerCore& core) : core_(&core) {
    if (const char* t = std::getenv("IW_LEASE_TRANSPORT");
        t != nullptr && std::string(t) == "tcp") {
      tcp_ = std::make_unique<TcpServer>(core, 0);
    }
  }
  std::shared_ptr<ClientChannel> channel() {
    if (tcp_ != nullptr) {
      return std::make_shared<TcpClientChannel>(tcp_->port());
    }
    return std::make_shared<InProcChannel>(*core_);
  }

  ServerCore* core_;
  std::unique_ptr<TcpServer> tcp_;
};

Buffer open_payload(const std::string& url) {
  Buffer p;
  p.append_lp_string(url);
  p.append_u8(1);
  return p;
}

Buffer acquire_write_payload(const std::string& url, uint32_t version = 0) {
  Buffer p;
  p.append_lp_string(url);
  p.append_u32(version);
  return p;
}

Buffer empty_release_payload(const std::string& url, uint32_t version) {
  Buffer p;
  p.append_lp_string(url);
  DiffWriter(p, version, version).finish();
  return p;
}

TEST(LeaseTest, WaiterReclaimsExpiredLease) {
  server::SegmentServer::Options opts;
  opts.writer_lease_ms = 100;
  server::SegmentServer server(opts);
  const std::string url = "host/lease";

  Harness h(server);
  auto a = h.channel();
  auto b = h.channel();
  raw_call(*a, MsgType::kOpenSegment, open_payload(url));
  raw_call(*b, MsgType::kOpenSegment, open_payload(url));

  raw_call(*a, MsgType::kAcquireWrite, acquire_write_payload(url));
  // A now stalls (no release, no renewal traffic). B must get the lock
  // once the lease runs out — roughly one lease period, not forever.
  auto start = steady_clock::now();
  raw_call(*b, MsgType::kAcquireWrite, acquire_write_payload(url));
  auto waited = std::chrono::duration_cast<milliseconds>(
      steady_clock::now() - start);
  EXPECT_GE(waited.count(), 50);  // B really blocked on the lease
  EXPECT_LT(waited.count(), 2'000);

  EXPECT_EQ(server.stats().lease_expirations, 1u);
  EXPECT_EQ(server.segment_epoch(url), 1u);

  // The stalled holder wakes up and tries to commit: typed rejection, not
  // a generic state error, and definitely not an applied diff.
  uint32_t version_before = server.segment_version(url);
  try {
    raw_call(*a, MsgType::kReleaseWrite, empty_release_payload(url, 0));
    FAIL() << "stale release should be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(ErrorCode::kLeaseExpired));
    EXPECT_FALSE(e.is_transport());  // server verdict: never blindly retried
  }
  EXPECT_EQ(server.stats().stale_releases_rejected, 1u);
  EXPECT_EQ(server.segment_version(url), version_before);

  // Rejection is one-shot: a second late release is a plain state error.
  EXPECT_THROW(
      {
        try {
          raw_call(*a, MsgType::kReleaseWrite, empty_release_payload(url, 0));
        } catch (const Error& e) {
          EXPECT_EQ(static_cast<int>(e.code()),
                    static_cast<int>(ErrorCode::kState));
          throw;
        }
      },
      Error);

  // B still holds a valid lock and can release normally.
  raw_call(*b, MsgType::kReleaseWrite, empty_release_payload(url, 0));
}

TEST(LeaseTest, DisconnectBeatsLeaseExpiry) {
  server::SegmentServer::Options opts;
  opts.writer_lease_ms = 60'000;  // long lease: expiry cannot be the rescuer
  server::SegmentServer server(opts);
  const std::string url = "host/dead-holder";

  Harness h(server);
  auto a = h.channel();
  raw_call(*a, MsgType::kOpenSegment, open_payload(url));
  raw_call(*a, MsgType::kAcquireWrite, acquire_write_payload(url));

  auto b = h.channel();
  raw_call(*b, MsgType::kOpenSegment, open_payload(url));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    raw_call(*b, MsgType::kAcquireWrite, acquire_write_payload(url));
    acquired.store(true);
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(acquired.load());

  a.reset();  // disconnect releases the lock immediately — no lease wait
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(server.stats().lease_expirations, 0u);
  raw_call(*b, MsgType::kReleaseWrite, empty_release_payload(url, 0));
}

TEST(LeaseTest, RenewalKeepsSlowWriterAlive) {
  server::SegmentServer::Options opts;
  opts.writer_lease_ms = 300;
  server::SegmentServer server(opts);
  const std::string url = "host/renewal";

  Harness h(server);
  auto a = h.channel();
  auto b = h.channel();
  raw_call(*a, MsgType::kOpenSegment, open_payload(url));
  raw_call(*b, MsgType::kOpenSegment, open_payload(url));
  raw_call(*a, MsgType::kAcquireWrite, acquire_write_payload(url));

  std::atomic<bool> a_released{false};
  std::atomic<bool> b_acquired_after_release{false};
  std::thread waiter([&] {
    raw_call(*b, MsgType::kAcquireWrite, acquire_write_payload(url));
    b_acquired_after_release.store(a_released.load());
  });

  // A's critical section lasts 3+ lease periods but keeps registering
  // types; each registration renews the lease, so B must keep waiting.
  TypeRegistry reg(Platform::native().rules);
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(milliseconds(100));
    Buffer p;
    p.append_lp_string(url);
    TypeCodec::encode_graph(
        reg.array_of(reg.primitive(PrimitiveKind::kInt32), 2 + i), p);
    raw_call(*a, MsgType::kRegisterType, std::move(p));
  }
  a_released.store(true);
  raw_call(*a, MsgType::kReleaseWrite, empty_release_payload(url, 0));

  waiter.join();
  EXPECT_TRUE(b_acquired_after_release.load());
  EXPECT_EQ(server.stats().lease_expirations, 0u);
  EXPECT_EQ(server.segment_epoch(url), 0u);
  raw_call(*b, MsgType::kReleaseWrite, empty_release_payload(url, 0));
}

// Full client-level recovery from lease expiry: the stalled client's
// write_unlock throws kLeaseExpired, its cached copy is invalidated, and
// the next lock round-trip resynchronises onto the reclaimer's state.
TEST(LeaseTest, ClientRecoversFromExpiredLease) {
  server::SegmentServer::Options sopts;
  sopts.writer_lease_ms = 80;
  server::SegmentServer server(sopts);
  Harness h(server);
  auto factory = [&](const std::string&) { return h.channel(); };

  Client a(factory);
  Client b(factory);
  ClientSegment* sa = a.open_segment("host/recover");
  ClientSegment* sb = b.open_segment("host/recover");
  const TypeDescriptor* arr =
      a.types().array_of(a.types().primitive(PrimitiveKind::kInt32), 4);

  a.write_lock(sa);
  auto* mine = static_cast<int32_t*>(a.malloc_block(sa, arr, "mine"));
  mine[0] = 11;

  // A stalls past its lease; B reclaims the lock and commits.
  std::thread other([&] {
    b.write_lock(sb);
    auto* theirs = static_cast<int32_t*>(b.malloc_block(sb, arr, "theirs"));
    theirs[0] = 22;
    b.write_unlock(sb);
  });
  other.join();
  EXPECT_EQ(server.stats().lease_expirations, 1u);

  try {
    a.write_unlock(sa);
    FAIL() << "commit after lease expiry must fail";
  } catch (const Error& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(ErrorCode::kLeaseExpired));
  }
  EXPECT_EQ(server.stats().stale_releases_rejected, 1u);

  // Recovery: A's next critical section sees exactly the committed state —
  // B's block is present, A's never-committed block is gone.
  a.write_lock(sa);
  EXPECT_EQ(sa->heap().find_by_name("mine"), nullptr);
  auto* blk = sa->heap().find_by_name("theirs");
  ASSERT_NE(blk, nullptr);
  EXPECT_EQ(reinterpret_cast<const int32_t*>(blk->data())[0], 22);
  a.write_unlock(sa);
}

}  // namespace
}  // namespace iw
