// Replication chaos test: a federation of servers (primary + replica wired
// by a WalReplicator, fronted by a SegmentDirectory) must survive the death
// of the primary with zero acknowledged-commit loss.
//
// Three suites:
//
//   * ReplicationFailoverTest — controlled kill: the primary is torn down
//     mid-workload (in-proc core swap by default, a real TcpServer shutdown
//     under IW_REPL_TRANSPORT=tcp); the client's failover connector must
//     re-resolve through the directory, which probes the dead primary and
//     promotes the replica, and the workload converges on the oracle model.
//
//   * SigkillFailoverTest — the real thing, 20 seeds: the primary runs in a
//     forked child that SIGKILLs itself *inside* a WAL append (seeded
//     WalCrashSchedule — short write / mid-record / before-sync), exactly a
//     power cut mid-commit. The parent-side client fails over to the
//     replica and the model must survive byte-identically: every commit the
//     primary acked had, by construction, already been journaled by the
//     replica, so promotion may not lose any of them.
//
//   * directory edge cases — consistent-hash placement, explicit
//     placement overrides, orphan-journal revival on a promoted replica,
//     the double-promotion race, a deposed primary's late kWalAppend
//     being fenced by epoch, and remote resolution through DirectoryCore.
//
// The workload idiom matches chaos_test.cpp: named blocks, absolute values
// derived from (seed, step), whole-critical-section retry — so an
// applied-but-unacknowledged commit converges on retry instead of
// double-applying.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "interweave/interweave.hpp"
#include "server/replication.hpp"

namespace iw {
namespace {

namespace fs = std::filesystem;
using server::DirectoryCore;
using server::SegmentDirectory;
using server::WalReplicator;
using server::WalRecordType;
using server::WriteAheadLog;

constexpr uint32_t kUnits = 4;
const char* const kUrl = "host/replicated";

using Model = std::map<std::string, std::vector<int32_t>>;

bool tcp_mode() {
  const char* t = std::getenv("IW_REPL_TRANSPORT");
  return t != nullptr && std::string(t) == "tcp";
}

TcpClientChannel::Options fast_tcp() {
  TcpClientChannel::Options o;
  o.connect_timeout_ms = 1'000;
  o.call_timeout_ms = 3'000;
  return o;
}

std::vector<int32_t> step_values(uint64_t seed, int step) {
  std::vector<int32_t> v(kUnits);
  for (uint32_t u = 0; u < kUnits; ++u) {
    v[u] = static_cast<int32_t>(seed * 1'000'003 + step * 101 + u);
  }
  return v;
}

void fill_block(client::BlockHeader* blk, const std::vector<int32_t>& values) {
  auto* data = reinterpret_cast<int32_t*>(const_cast<uint8_t*>(blk->data()));
  for (uint32_t u = 0; u < kUnits; ++u) data[u] = values[u];
}

Model snapshot_of(Client& c, ClientSegment* seg) {
  Model out;
  c.read_lock(seg);
  seg->heap().for_each_block([&](client::BlockHeader* blk) {
    EXPECT_NE(blk->name, nullptr) << "workload only creates named blocks";
    if (blk->name == nullptr) return;
    const auto* data = reinterpret_cast<const int32_t*>(blk->data());
    out[*blk->name] = std::vector<int32_t>(data, data + kUnits);
  });
  c.read_unlock(seg);
  return out;
}

/// ServerCore proxy whose backing server can be killed (cf. the restart
/// chaos suite): once dead, connects and requests fail like a reset
/// connection — the failure that drives a client into failover resolution.
class KillableCore final : public ServerCore {
 public:
  void set_server(server::SegmentServer* server) {
    std::lock_guard lock(mu_);
    server_ = server;
    known_.clear();
  }

  void on_connect(SessionId session, Notifier notify) override {
    std::lock_guard lock(mu_);
    if (server_ == nullptr) {
      throw Error::transport(ErrorCode::kConnReset, "server down");
    }
    known_.insert(session);
    server_->on_connect(session, std::move(notify));
  }

  void on_disconnect(SessionId session) override {
    std::lock_guard lock(mu_);
    if (server_ != nullptr && known_.erase(session) > 0) {
      server_->on_disconnect(session);
    }
  }

  Frame handle(SessionId session, const Frame& request) override {
    std::lock_guard lock(mu_);
    if (server_ == nullptr || known_.find(session) == known_.end()) {
      throw Error::transport(ErrorCode::kConnReset, "server killed");
    }
    return server_->handle(session, request);
  }

 private:
  std::mutex mu_;
  server::SegmentServer* server_ = nullptr;
  std::unordered_set<SessionId> known_;
};

// --- suite 1: controlled primary kill mid-workload ---

class ReplicationFailoverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationFailoverTest, PromotesReplicaAndConverges) {
  const uint64_t seed = GetParam();
  const bool tcp = tcp_mode();
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-failover-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed));
  fs::remove_all(dir);

  server::SegmentServer::Options ropts;
  ropts.checkpoint_dir = (dir / "replica").string();
  ropts.wal_sync = WriteAheadLog::Sync::kCommit;
  ropts.writer_lease_ms = 1'500;
  auto replica = std::make_unique<server::SegmentServer>(ropts);
  std::unique_ptr<TcpServer> replica_tcp;
  if (tcp) replica_tcp = std::make_unique<TcpServer>(*replica, 0);

  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  wopts.ack_timeout_ms = 3'000;
  auto replicator = std::make_shared<WalReplicator>(wopts);
  if (tcp) {
    const uint16_t rport = replica_tcp->port();
    replicator->add_replica("replica", [rport] {
      return std::make_shared<TcpClientChannel>(rport, fast_tcp());
    });
  } else {
    replicator->add_replica(
        "replica", [&replica]() -> std::shared_ptr<ClientChannel> {
          return std::make_shared<InProcChannel>(*replica);
        });
  }

  server::SegmentServer::Options popts;
  popts.checkpoint_dir = (dir / "primary").string();
  popts.wal_sync = WriteAheadLog::Sync::kCommit;
  popts.writer_lease_ms = 1'500;
  popts.replicator = replicator;
  auto primary = std::make_unique<server::SegmentServer>(popts);
  KillableCore proxy;
  proxy.set_server(primary.get());
  std::unique_ptr<TcpServer> primary_tcp;
  if (tcp) primary_tcp = std::make_unique<TcpServer>(proxy, 0);

  SegmentDirectory::Dialer dial;
  if (tcp) {
    dial = [](const std::string& addr) -> std::shared_ptr<ClientChannel> {
      return std::make_shared<TcpClientChannel>(
          static_cast<uint16_t>(std::stoul(addr)), fast_tcp());
    };
  } else {
    dial = [&proxy,
            &replica](const std::string& addr) -> std::shared_ptr<ClientChannel> {
      if (addr == "primary") return std::make_shared<InProcChannel>(proxy);
      return std::make_shared<InProcChannel>(*replica);
    };
  }
  SegmentDirectory::Options dopts;
  dopts.replicas = 1;
  SegmentDirectory directory(dopts, dial);
  directory.add_node("primary",
                     tcp ? std::to_string(primary_tcp->port()) : "primary");
  directory.add_node("replica",
                     tcp ? std::to_string(replica_tcp->port()) : "replica");
  directory.set_placement(kUrl, {"primary", "replica"});

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 8;
  copts.reconnect.max_call_retries = 10;
  copts.reconnect.jitter_seed = seed + 1;
  auto connector = server::make_failover_connector(directory, kUrl, dial);
  Client client([connector](const std::string&) { return connector(); },
                copts);
  ClientSegment* seg = client.open_segment(kUrl);

  const TypeDescriptor* arr = client.types().array_of(
      client.types().primitive(PrimitiveKind::kInt32), kUnits);

  SplitMix64 rng(seed);
  Model model;
  int next_block = 0;
  constexpr int kSteps = 40;
  constexpr int kKillStep = 20;

  for (int step = 0; step < kSteps; ++step) {
    if (step == kKillStep) {
      // Kill the primary between critical sections. Every commit up to here
      // was acked only after the replica journaled it, so nothing in
      // `model` may be lost by the promotion this forces.
      proxy.set_server(nullptr);
      if (primary_tcp != nullptr) primary_tcp->shutdown();
      replicator->shutdown();
      primary.reset();
    }
    uint64_t action = rng.below(10);
    std::vector<int32_t> values = step_values(seed, step);
    std::string target;
    if (action < 3 || model.empty()) {
      target = "b" + std::to_string(next_block++);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      target = it->first;
    }
    bool do_free = action == 8 && !model.empty();

    for (int attempt = 0;; ++attempt) {
      try {
        client.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (do_free) {
          if (blk != nullptr) {
            client.free_block(seg, const_cast<uint8_t*>(blk->data()));
          }
        } else {
          if (blk == nullptr) {
            client.malloc_block(seg, arr, target);
            blk = seg->heap().find_by_name(target);
          }
          fill_block(blk, values);
        }
        client.write_unlock(seg);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 10) << "seed " << seed << " step " << step << ": "
                               << e.what();
      }
    }
    if (do_free) {
      model.erase(target);
    } else {
      model[target] = values;
    }
  }

  // Zero acked-commit loss: the client (now on the promoted replica) sees
  // exactly the model, including every pre-kill acknowledged commit.
  for (int attempt = 0;; ++attempt) {
    try {
      Model seen = snapshot_of(client, seg);
      EXPECT_EQ(seen, model) << "seed " << seed;
      break;
    } catch (const Error& e) {
      ASSERT_LT(attempt, 10) << e.what();
    }
  }

  EXPECT_GE(client.stats().reconnects, 1u) << "kill was never felt";
  SegmentDirectory::Stats ds = directory.stats();
  EXPECT_EQ(ds.promotions, 1u) << "seed " << seed;
  EXPECT_GE(ds.probes_failed, 1u);
  // Promotion must complete well inside the writer lease window — failover
  // may not cost more than a lease reclaim would.
  EXPECT_LT(ds.promote_ms_last, 1'500u);
  server::SegmentServer::Stats rs = replica->stats();
  EXPECT_EQ(rs.promotions_accepted, 1u);
  EXPECT_GT(rs.repl_records_applied, 0u) << "nothing was ever replicated";
  EXPECT_EQ(replica->segment_placement_epoch(kUrl), 2u);

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationFailoverTest,
                         ::testing::Range<uint64_t>(1, 7));  // 6 seeds

// --- suite 2: SIGKILL mid WAL append, 20 seeds ---

bool read_exact(int fd, uint16_t* value) {
  auto* p = reinterpret_cast<uint8_t*>(value);
  size_t got = 0;
  while (got < sizeof *value) {
    ssize_t n = ::read(fd, p + got, sizeof *value - got);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

/// Kills and reaps the child on every exit path, so a failed assertion
/// cannot leak a paused primary process.
struct ChildReaper {
  pid_t pid = -1;
  ~ChildReaper() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

class SigkillFailoverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SigkillFailoverTest, PromotedReplicaKeepsEveryAckedCommit) {
  const uint64_t seed = GetParam();
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-sigkill-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed));
  fs::remove_all(dir);
  fs::create_directories(dir);

  int p2c[2];  // parent -> child: the replica's port
  int c2p[2];  // child -> parent: the primary's port
  ASSERT_EQ(::pipe(p2c), 0);
  ASSERT_EQ(::pipe(c2p), 0);

  // Fork FIRST, while this process is still single-threaded: the child
  // builds its entire primary (threads included) after the fork, so no
  // parent-side lock can be frozen mid-acquire in the child.
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // --- the primary, fated to die by its own hand ---
    ::close(p2c[1]);
    ::close(c2p[0]);
    try {
      uint16_t replica_port = 0;
      if (!read_exact(p2c[0], &replica_port)) _exit(3);

      WalCrashSchedule::Options crash;
      crash.crash_at_append = 4 + seed % 10;
      constexpr WalCrashPoint kPoints[] = {WalCrashPoint::kShortWrite,
                                           WalCrashPoint::kMidRecord,
                                           WalCrashPoint::kBeforeSync};
      crash.point = kPoints[seed % 3];

      WalReplicator::Options wopts;
      wopts.replication_factor = 1;
      wopts.ack_timeout_ms = 3'000;
      auto replicator = std::make_shared<WalReplicator>(wopts);
      replicator->add_replica("replica", [replica_port] {
        return std::make_shared<TcpClientChannel>(replica_port, fast_tcp());
      });

      server::SegmentServer::Options popts;
      popts.checkpoint_dir = (dir / "primary").string();
      popts.wal_sync = WriteAheadLog::Sync::kCommit;
      popts.writer_lease_ms = 1'500;
      popts.wal_crash = std::make_shared<WalCrashSchedule>(crash);
      popts.replicator = replicator;
      server::SegmentServer primary(popts);
      TcpServer tcp(primary, 0);

      uint16_t port = tcp.port();
      if (::write(c2p[1], &port, sizeof port) !=
          static_cast<ssize_t>(sizeof port)) {
        _exit(4);
      }
      // Serve until wal_crash_now() SIGKILLs this process mid-append.
      for (;;) ::pause();
    } catch (...) {
      _exit(5);
    }
  }

  ::close(p2c[0]);
  ::close(c2p[1]);
  ChildReaper reaper;
  reaper.pid = child;

  server::SegmentServer::Options ropts;
  ropts.checkpoint_dir = (dir / "replica").string();
  ropts.wal_sync = WriteAheadLog::Sync::kCommit;
  ropts.writer_lease_ms = 1'500;
  server::SegmentServer replica(ropts);
  TcpServer replica_tcp(replica, 0);

  uint16_t replica_port = replica_tcp.port();
  ASSERT_EQ(::write(p2c[1], &replica_port, sizeof replica_port),
            static_cast<ssize_t>(sizeof replica_port));
  uint16_t primary_port = 0;
  ASSERT_TRUE(read_exact(c2p[0], &primary_port)) << "child died during setup";

  SegmentDirectory::Dialer dial =
      [](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    return std::make_shared<TcpClientChannel>(
        static_cast<uint16_t>(std::stoul(addr)), fast_tcp());
  };
  SegmentDirectory::Options dopts;
  dopts.replicas = 1;
  SegmentDirectory directory(dopts, dial);
  directory.add_node("primary", std::to_string(primary_port));
  directory.add_node("replica", std::to_string(replica_port));
  directory.set_placement(kUrl, {"primary", "replica"});

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 16;
  copts.reconnect.max_call_retries = 10;
  copts.reconnect.jitter_seed = seed + 1;
  auto connector = server::make_failover_connector(directory, kUrl, dial);
  Client client([connector](const std::string&) { return connector(); },
                copts);
  ClientSegment* seg = client.open_segment(kUrl);

  const TypeDescriptor* arr = client.types().array_of(
      client.types().primitive(PrimitiveKind::kInt32), kUnits);

  // Upsert-only workload: ~26 local WAL appends (create, type, a commit per
  // step), so the seeded crash point — append 4 + seed % 10 — always fires
  // *during* a commit's append, with the client's acked history at a
  // different depth every seed.
  Model model;
  constexpr int kSteps = 24;
  for (int step = 0; step < kSteps; ++step) {
    std::string target = "b" + std::to_string(step % 6);
    std::vector<int32_t> values = step_values(seed, step);
    for (int attempt = 0;; ++attempt) {
      try {
        client.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (blk == nullptr) {
          client.malloc_block(seg, arr, target);
          blk = seg->heap().find_by_name(target);
        }
        fill_block(blk, values);
        client.write_unlock(seg);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 10) << "seed " << seed << " step " << step << ": "
                               << e.what();
      }
    }
    // Acknowledged: a SIGKILL after this instant must never lose this step.
    model[target] = values;
  }

  // The primary must actually have died mid-append, by SIGKILL, not by a
  // clean exit — otherwise this run proved nothing.
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  reaper.pid = -1;
  ASSERT_TRUE(WIFSIGNALED(status)) << "primary exited instead of crashing";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Zero acked-commit loss across the crash: the promoted replica holds
  // exactly the model.
  for (int attempt = 0;; ++attempt) {
    try {
      Model seen = snapshot_of(client, seg);
      EXPECT_EQ(seen, model) << "seed " << seed;
      break;
    } catch (const Error& e) {
      ASSERT_LT(attempt, 10) << e.what();
    }
  }

  SegmentDirectory::Stats ds = directory.stats();
  EXPECT_EQ(ds.promotions, 1u) << "seed " << seed;
  EXPECT_GE(ds.probes_failed, 1u);
  EXPECT_LT(ds.promote_ms_last, 1'500u) << "promotion blew the lease window";
  server::SegmentServer::Stats rs = replica.stats();
  EXPECT_EQ(rs.promotions_accepted, 1u);
  EXPECT_GT(rs.repl_records_applied, 0u);
  EXPECT_EQ(replica.segment_placement_epoch(kUrl), 2u);

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SigkillFailoverTest,
                         ::testing::Range<uint64_t>(1, 21));  // 20 seeds

// --- suite 3: directory + fencing edge cases ---

TEST(SegmentDirectoryTest, ConsistentHashingIsStableAndSpreads) {
  SegmentDirectory::Options opts;
  opts.replicas = 1;
  SegmentDirectory dir(opts, [](const std::string&)
                                 -> std::shared_ptr<ClientChannel> {
    throw Error::transport(ErrorCode::kConnReset, "no dialing in this test");
  });
  EXPECT_THROW(dir.resolve("host/x"), Error) << "no nodes yet";

  dir.add_node("a", "addr-a");
  dir.add_node("b", "addr-b");
  dir.add_node("c", "addr-c");
  EXPECT_THROW(dir.add_node("a", "addr-a2"), Error) << "duplicate id";

  SegmentDirectory::Placement p = dir.resolve("host/x");
  EXPECT_EQ(p.epoch, 1u);
  ASSERT_EQ(p.nodes.size(), 2u);  // primary + 1 replica
  EXPECT_NE(p.nodes[0], p.nodes[1]);
  // Cached: the same placement comes back, even after membership grows.
  dir.add_node("d", "addr-d");
  SegmentDirectory::Placement again = dir.resolve("host/x");
  EXPECT_EQ(again.nodes, p.nodes);

  // The ring actually spreads: many segments do not all land on one
  // primary.
  std::unordered_set<std::string> primaries;
  for (int i = 0; i < 50; ++i) {
    primaries.insert(dir.resolve("host/s" + std::to_string(i)).nodes[0]);
  }
  EXPECT_GE(primaries.size(), 2u);

  EXPECT_EQ(dir.address_of("a"), "addr-a");
  EXPECT_THROW(dir.address_of("nope"), Error);
}

TEST(SegmentDirectoryTest, ExplicitPlacementOverridesTheRing) {
  SegmentDirectory::Options opts;
  opts.replicas = 1;
  SegmentDirectory dir(opts, [](const std::string&)
                                 -> std::shared_ptr<ClientChannel> {
    throw Error::transport(ErrorCode::kConnReset, "no dialing in this test");
  });
  dir.add_node("a", "addr-a");
  dir.add_node("b", "addr-b");
  EXPECT_THROW(dir.set_placement("host/p", {}), Error);
  EXPECT_THROW(dir.set_placement("host/p", {"ghost"}), Error);
  dir.set_placement("host/p", {"b", "a"});
  SegmentDirectory::Placement p = dir.resolve("host/p");
  EXPECT_EQ(p.nodes, (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(p.epoch, 1u);
}

// A replica whose only knowledge of a segment arrived over kWalAppend
// (never a client write of its own) crashes and restarts: its journal —
// an "orphan" journal with no checkpoint beside it — must revive the
// segment, and the revived server must be promotable with all data intact.
TEST(ReplicationEdgeTest, OrphanJournalRevivalOnPromotedReplica) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-orphan-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  server::SegmentServer::Options ropts;
  ropts.checkpoint_dir = dir.string();
  ropts.wal_sync = WriteAheadLog::Sync::kCommit;
  auto replica = std::make_unique<server::SegmentServer>(ropts);

  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  auto replicator = std::make_shared<WalReplicator>(wopts);
  replicator->add_replica("replica",
                          [&replica]() -> std::shared_ptr<ClientChannel> {
                            return std::make_shared<InProcChannel>(*replica);
                          });

  // The primary keeps no journal of its own: the replica's copy is the
  // only durable record of these commits anywhere.
  server::SegmentServer::Options popts;
  popts.replicator = replicator;
  server::SegmentServer primary(popts);

  std::vector<int32_t> values = step_values(7, 1);
  {
    Client client(
        [&primary](const std::string&) {
          return std::make_shared<InProcChannel>(primary);
        });
    ClientSegment* seg = client.open_segment(kUrl);
    const TypeDescriptor* arr = client.types().array_of(
        client.types().primitive(PrimitiveKind::kInt32), kUnits);
    client.write_lock(seg);
    client.malloc_block(seg, arr, "blk");
    fill_block(seg->heap().find_by_name("blk"), values);
    client.write_unlock(seg);
    client.write_lock(seg);
    fill_block(seg->heap().find_by_name("blk"), values);
    client.write_unlock(seg);
  }
  EXPECT_EQ(replica->segment_version(kUrl), 2u);

  // Crash the replica (destructors only, no checkpoint) and revive it from
  // the journal alone.
  replicator->shutdown();
  replica.reset();
  replica = std::make_unique<server::SegmentServer>(ropts);
  replica->recover();
  EXPECT_GT(replica->stats().wal_replayed_records, 0u);
  EXPECT_EQ(replica->segment_version(kUrl), 2u);

  // Promote the revived replica; it answers with the recovered version.
  auto ch = std::make_shared<InProcChannel>(*replica);
  Buffer req;
  req.append_lp_string(kUrl);
  req.append_u32(2);
  Frame resp = ch->call(MsgType::kPromote, std::move(req));
  EXPECT_EQ(resp.reader().read_u32(), 2u);
  EXPECT_EQ(replica->segment_placement_epoch(kUrl), 2u);
  EXPECT_EQ(replica->stats().promotions_accepted, 1u);

  // A client of the promoted replica sees the replicated data.
  Client reader([&replica](const std::string&) {
    return std::make_shared<InProcChannel>(*replica);
  });
  ClientSegment* seg = reader.open_segment(kUrl);
  Model seen = snapshot_of(reader, seg);
  ASSERT_EQ(seen.count("blk"), 1u);
  EXPECT_EQ(seen["blk"], values);

  fs::remove_all(dir);
}

// Two clients observe the same dead primary and race into failover: the
// directory must promote exactly once, the loser adopting the winner's
// epoch.
TEST(ReplicationEdgeTest, DoublePromotionRaceResolvesToOneEpochBump) {
  server::SegmentServer replica;
  SegmentDirectory::Dialer dial =
      [&replica](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    if (addr == "dead") {
      throw Error::transport(ErrorCode::kConnReset, "primary is down");
    }
    return std::make_shared<InProcChannel>(replica);
  };
  SegmentDirectory::Options opts;
  opts.replicas = 1;
  SegmentDirectory dir(opts, dial);
  dir.add_node("p", "dead");
  dir.add_node("r", "live");
  dir.set_placement(kUrl, {"p", "r"});
  ASSERT_EQ(dir.resolve(kUrl).epoch, 1u);

  SegmentDirectory::Placement got[2];
  std::thread t0([&] { got[0] = dir.resolve_for_failover(kUrl, 1); });
  std::thread t1([&] { got[1] = dir.resolve_for_failover(kUrl, 1); });
  t0.join();
  t1.join();

  for (const SegmentDirectory::Placement& p : got) {
    EXPECT_EQ(p.epoch, 2u);
    ASSERT_FALSE(p.nodes.empty());
    EXPECT_EQ(p.nodes.front(), "r");
  }
  EXPECT_EQ(dir.stats().promotions, 1u);
  EXPECT_EQ(replica.stats().promotions_accepted, 1u);
  EXPECT_EQ(replica.segment_placement_epoch(kUrl), 2u);
}

// A deposed primary keeps streaming: its records carry the old placement
// epoch and must be refused by the promoted replica, and the refusal must
// fence the segment inside the deposed primary's replicator so it can
// never ack again.
TEST(ReplicationEdgeTest, StalePrimaryLateWalAppendRejectedByEpoch) {
  server::SegmentServer replica;

  // The replica has been promoted to epoch 3 by the directory.
  auto ch = std::make_shared<InProcChannel>(replica);
  Buffer promote;
  promote.append_lp_string(kUrl);
  promote.append_u32(3);
  ch->call(MsgType::kPromote, std::move(promote));

  // A re-promotion to a lower epoch is itself stale.
  Buffer down;
  down.append_lp_string(kUrl);
  down.append_u32(2);
  try {
    ch->call(MsgType::kPromote, std::move(down));
    FAIL() << "stale promotion accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kStaleEpoch);
  }

  // Raw wire check: an epoch-2 record in kWalAppend is reported stale, not
  // applied.
  Buffer batch;
  batch.append_u32(1);  // one record
  batch.append_lp_string(kUrl);
  batch.append_u32(2);  // stale epoch
  batch.append_u8(static_cast<uint8_t>(WalRecordType::kCommit));
  batch.append_u32(4);  // body: just the version prefix
  batch.append_u32(1);
  Frame ack = ch->call(MsgType::kWalAppend, std::move(batch));
  BufReader in = ack.reader();
  EXPECT_EQ(in.read_u32(), 0u) << "stale record was applied";
  ASSERT_EQ(in.read_u32(), 1u);
  EXPECT_EQ(in.read_lp_string(), kUrl);
  EXPECT_EQ(replica.stats().repl_stale_rejected, 1u);

  // Through the deposed primary's own replicator: the stale report turns
  // into a fence, and the committer gets kStaleEpoch instead of an ack.
  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  wopts.ack_timeout_ms = 3'000;
  WalReplicator replicator(wopts);
  replicator.add_replica("replica",
                         [&replica]() -> std::shared_ptr<ClientChannel> {
                           return std::make_shared<InProcChannel>(replica);
                         });
  uint8_t head[4] = {0, 0, 0, 1};
  try {
    replicator.replicate(kUrl, 2, WalRecordType::kCommit, head);
    FAIL() << "deposed primary's commit was acked";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kStaleEpoch);
  }
  EXPECT_TRUE(replicator.fenced(kUrl));
  EXPECT_EQ(replicator.stats().stale_epoch_fences, 1u);
  // The fence is sticky: later commits fail immediately.
  EXPECT_THROW(replicator.replicate(kUrl, 2, WalRecordType::kCommit, head),
               Error);
  replicator.shutdown();
}

// Resolution over the wire: a client with no directory object of its own
// resolves through DirectoryCore, dials the returned primary address, and
// fails over on the next connect after the primary dies.
TEST(ReplicationEdgeTest, DirectoryCoreServesRemoteFailoverResolution) {
  server::SegmentServer primary_server;
  server::SegmentServer replica;
  KillableCore proxy;
  proxy.set_server(&primary_server);

  SegmentDirectory::Dialer dial =
      [&proxy, &replica](const std::string& addr)
      -> std::shared_ptr<ClientChannel> {
    if (addr == "primary") return std::make_shared<InProcChannel>(proxy);
    return std::make_shared<InProcChannel>(replica);
  };
  SegmentDirectory::Options opts;
  opts.replicas = 1;
  SegmentDirectory dir(opts, dial);
  dir.add_node("p", "primary");
  dir.add_node("r", "replica");
  dir.set_placement(kUrl, {"p", "r"});
  DirectoryCore dcore(dir);

  auto connector = server::make_failover_connector(
      [&dcore]() -> std::shared_ptr<ClientChannel> {
        return std::make_shared<InProcChannel>(dcore);
      },
      kUrl, dial);

  // First connect lands on the primary.
  auto ch = connector();
  ch->call(MsgType::kPing, Buffer());
  EXPECT_EQ(dir.stats().promotions, 0u);

  // Primary dies; the next connect resolves with failover and lands on the
  // promoted replica.
  proxy.set_server(nullptr);
  ch = connector();
  ch->call(MsgType::kPing, Buffer());
  EXPECT_EQ(dir.stats().promotions, 1u);
  EXPECT_EQ(replica.stats().promotions_accepted, 1u);
}

}  // namespace
}  // namespace iw
