// Replication chaos test: a federation of servers (primary + replica wired
// by a WalReplicator, fronted by a SegmentDirectory) must survive the death
// of the primary with zero acknowledged-commit loss.
//
// Three suites:
//
//   * ReplicationFailoverTest — controlled kill: the primary is torn down
//     mid-workload (in-proc core swap by default, a real TcpServer shutdown
//     under IW_REPL_TRANSPORT=tcp); the client's failover connector must
//     re-resolve through the directory, which probes the dead primary and
//     promotes the replica, and the workload converges on the oracle model.
//
//   * SigkillFailoverTest — the real thing, 20 seeds: the primary runs in a
//     forked child that SIGKILLs itself *inside* a WAL append (seeded
//     WalCrashSchedule — short write / mid-record / before-sync), exactly a
//     power cut mid-commit. The parent-side client fails over to the
//     replica and the model must survive byte-identically: every commit the
//     primary acked had, by construction, already been journaled by the
//     replica, so promotion may not lose any of them.
//
//   * directory edge cases — consistent-hash placement, explicit
//     placement overrides, orphan-journal revival on a promoted replica,
//     the double-promotion race, a deposed primary's late kWalAppend
//     being fenced by epoch, and remote resolution through DirectoryCore.
//
// The workload idiom matches chaos_test.cpp: named blocks, absolute values
// derived from (seed, step), whole-critical-section retry — so an
// applied-but-unacknowledged commit converges on retry instead of
// double-applying.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "interweave/interweave.hpp"
#include "server/replication.hpp"

namespace iw {
namespace {

namespace fs = std::filesystem;
using server::DirectoryCore;
using server::SegmentDirectory;
using server::WalReplicator;
using server::WalRecordType;
using server::WriteAheadLog;

constexpr uint32_t kUnits = 4;
const char* const kUrl = "host/replicated";

using Model = std::map<std::string, std::vector<int32_t>>;

bool tcp_mode() {
  const char* t = std::getenv("IW_REPL_TRANSPORT");
  return t != nullptr && std::string(t) == "tcp";
}

TcpClientChannel::Options fast_tcp() {
  TcpClientChannel::Options o;
  o.connect_timeout_ms = 1'000;
  o.call_timeout_ms = 3'000;
  return o;
}

std::vector<int32_t> step_values(uint64_t seed, int step) {
  std::vector<int32_t> v(kUnits);
  for (uint32_t u = 0; u < kUnits; ++u) {
    v[u] = static_cast<int32_t>(seed * 1'000'003 + step * 101 + u);
  }
  return v;
}

void fill_block(client::BlockHeader* blk, const std::vector<int32_t>& values) {
  auto* data = reinterpret_cast<int32_t*>(const_cast<uint8_t*>(blk->data()));
  for (uint32_t u = 0; u < kUnits; ++u) data[u] = values[u];
}

Model snapshot_of(Client& c, ClientSegment* seg) {
  Model out;
  c.read_lock(seg);
  seg->heap().for_each_block([&](client::BlockHeader* blk) {
    EXPECT_NE(blk->name, nullptr) << "workload only creates named blocks";
    if (blk->name == nullptr) return;
    const auto* data = reinterpret_cast<const int32_t*>(blk->data());
    out[*blk->name] = std::vector<int32_t>(data, data + kUnits);
  });
  c.read_unlock(seg);
  return out;
}

/// ServerCore proxy whose backing server can be killed (cf. the restart
/// chaos suite): once dead, connects and requests fail like a reset
/// connection — the failure that drives a client into failover resolution.
class KillableCore final : public ServerCore {
 public:
  void set_server(server::SegmentServer* server) {
    std::lock_guard lock(mu_);
    server_ = server;
    known_.clear();
  }

  void on_connect(SessionId session, Notifier notify) override {
    std::lock_guard lock(mu_);
    if (server_ == nullptr) {
      throw Error::transport(ErrorCode::kConnReset, "server down");
    }
    known_.insert(session);
    server_->on_connect(session, std::move(notify));
  }

  void on_disconnect(SessionId session) override {
    std::lock_guard lock(mu_);
    if (server_ != nullptr && known_.erase(session) > 0) {
      server_->on_disconnect(session);
    }
  }

  Frame handle(SessionId session, const Frame& request) override {
    std::lock_guard lock(mu_);
    if (server_ == nullptr || known_.find(session) == known_.end()) {
      throw Error::transport(ErrorCode::kConnReset, "server killed");
    }
    return server_->handle(session, request);
  }

 private:
  std::mutex mu_;
  server::SegmentServer* server_ = nullptr;
  std::unordered_set<SessionId> known_;
};

// --- suite 1: controlled primary kill mid-workload ---

class ReplicationFailoverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationFailoverTest, PromotesReplicaAndConverges) {
  const uint64_t seed = GetParam();
  const bool tcp = tcp_mode();
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-failover-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed));
  fs::remove_all(dir);

  server::SegmentServer::Options ropts;
  ropts.checkpoint_dir = (dir / "replica").string();
  ropts.wal_sync = WriteAheadLog::Sync::kCommit;
  ropts.writer_lease_ms = 1'500;
  auto replica = std::make_unique<server::SegmentServer>(ropts);
  std::unique_ptr<TcpServer> replica_tcp;
  if (tcp) replica_tcp = std::make_unique<TcpServer>(*replica, 0);

  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  wopts.ack_timeout_ms = 3'000;
  auto replicator = std::make_shared<WalReplicator>(wopts);
  if (tcp) {
    const uint16_t rport = replica_tcp->port();
    replicator->add_replica("replica", [rport] {
      return std::make_shared<TcpClientChannel>(rport, fast_tcp());
    });
  } else {
    replicator->add_replica(
        "replica", [&replica]() -> std::shared_ptr<ClientChannel> {
          return std::make_shared<InProcChannel>(*replica);
        });
  }

  server::SegmentServer::Options popts;
  popts.checkpoint_dir = (dir / "primary").string();
  popts.wal_sync = WriteAheadLog::Sync::kCommit;
  popts.writer_lease_ms = 1'500;
  popts.replicator = replicator;
  auto primary = std::make_unique<server::SegmentServer>(popts);
  KillableCore proxy;
  proxy.set_server(primary.get());
  std::unique_ptr<TcpServer> primary_tcp;
  if (tcp) primary_tcp = std::make_unique<TcpServer>(proxy, 0);

  SegmentDirectory::Dialer dial;
  if (tcp) {
    dial = [](const std::string& addr) -> std::shared_ptr<ClientChannel> {
      return std::make_shared<TcpClientChannel>(
          static_cast<uint16_t>(std::stoul(addr)), fast_tcp());
    };
  } else {
    dial = [&proxy,
            &replica](const std::string& addr) -> std::shared_ptr<ClientChannel> {
      if (addr == "primary") return std::make_shared<InProcChannel>(proxy);
      return std::make_shared<InProcChannel>(*replica);
    };
  }
  SegmentDirectory::Options dopts;
  dopts.replicas = 1;
  SegmentDirectory directory(dopts, dial);
  directory.add_node("primary",
                     tcp ? std::to_string(primary_tcp->port()) : "primary");
  directory.add_node("replica",
                     tcp ? std::to_string(replica_tcp->port()) : "replica");
  directory.set_placement(kUrl, {"primary", "replica"});

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 8;
  copts.reconnect.max_call_retries = 10;
  copts.reconnect.jitter_seed = seed + 1;
  auto connector = server::make_failover_connector(directory, kUrl, dial);
  Client client([connector](const std::string&) { return connector(); },
                copts);
  ClientSegment* seg = client.open_segment(kUrl);

  const TypeDescriptor* arr = client.types().array_of(
      client.types().primitive(PrimitiveKind::kInt32), kUnits);

  SplitMix64 rng(seed);
  Model model;
  int next_block = 0;
  constexpr int kSteps = 40;
  constexpr int kKillStep = 20;

  for (int step = 0; step < kSteps; ++step) {
    if (step == kKillStep) {
      // Kill the primary between critical sections. Every commit up to here
      // was acked only after the replica journaled it, so nothing in
      // `model` may be lost by the promotion this forces.
      proxy.set_server(nullptr);
      if (primary_tcp != nullptr) primary_tcp->shutdown();
      replicator->shutdown();
      primary.reset();
    }
    uint64_t action = rng.below(10);
    std::vector<int32_t> values = step_values(seed, step);
    std::string target;
    if (action < 3 || model.empty()) {
      target = "b" + std::to_string(next_block++);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      target = it->first;
    }
    bool do_free = action == 8 && !model.empty();

    for (int attempt = 0;; ++attempt) {
      try {
        client.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (do_free) {
          if (blk != nullptr) {
            client.free_block(seg, const_cast<uint8_t*>(blk->data()));
          }
        } else {
          if (blk == nullptr) {
            client.malloc_block(seg, arr, target);
            blk = seg->heap().find_by_name(target);
          }
          fill_block(blk, values);
        }
        client.write_unlock(seg);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 10) << "seed " << seed << " step " << step << ": "
                               << e.what();
      }
    }
    if (do_free) {
      model.erase(target);
    } else {
      model[target] = values;
    }
  }

  // Zero acked-commit loss: the client (now on the promoted replica) sees
  // exactly the model, including every pre-kill acknowledged commit.
  for (int attempt = 0;; ++attempt) {
    try {
      Model seen = snapshot_of(client, seg);
      EXPECT_EQ(seen, model) << "seed " << seed;
      break;
    } catch (const Error& e) {
      ASSERT_LT(attempt, 10) << e.what();
    }
  }

  EXPECT_GE(client.stats().reconnects, 1u) << "kill was never felt";
  SegmentDirectory::Stats ds = directory.stats();
  EXPECT_EQ(ds.promotions, 1u) << "seed " << seed;
  EXPECT_GE(ds.probes_failed, 1u);
  // Promotion must complete well inside the writer lease window — failover
  // may not cost more than a lease reclaim would.
  EXPECT_LT(ds.promote_ms_last, 1'500u);
  server::SegmentServer::Stats rs = replica->stats();
  EXPECT_EQ(rs.promotions_accepted, 1u);
  EXPECT_GT(rs.repl_records_applied, 0u) << "nothing was ever replicated";
  EXPECT_EQ(replica->segment_placement_epoch(kUrl), 2u);

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationFailoverTest,
                         ::testing::Range<uint64_t>(1, 7));  // 6 seeds

// --- suite 2: SIGKILL mid WAL append, 20 seeds ---

bool read_exact(int fd, uint16_t* value) {
  auto* p = reinterpret_cast<uint8_t*>(value);
  size_t got = 0;
  while (got < sizeof *value) {
    ssize_t n = ::read(fd, p + got, sizeof *value - got);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

/// Kills and reaps the child on every exit path, so a failed assertion
/// cannot leak a paused primary process.
struct ChildReaper {
  pid_t pid = -1;
  ~ChildReaper() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

class SigkillFailoverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SigkillFailoverTest, PromotedReplicaKeepsEveryAckedCommit) {
  const uint64_t seed = GetParam();
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-sigkill-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed));
  fs::remove_all(dir);
  fs::create_directories(dir);

  int p2c[2];  // parent -> child: the replica's port
  int c2p[2];  // child -> parent: the primary's port
  ASSERT_EQ(::pipe(p2c), 0);
  ASSERT_EQ(::pipe(c2p), 0);

  // Fork FIRST, while this process is still single-threaded: the child
  // builds its entire primary (threads included) after the fork, so no
  // parent-side lock can be frozen mid-acquire in the child.
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // --- the primary, fated to die by its own hand ---
    ::close(p2c[1]);
    ::close(c2p[0]);
    try {
      uint16_t replica_port = 0;
      if (!read_exact(p2c[0], &replica_port)) _exit(3);

      WalCrashSchedule::Options crash;
      crash.crash_at_append = 4 + seed % 10;
      constexpr WalCrashPoint kPoints[] = {WalCrashPoint::kShortWrite,
                                           WalCrashPoint::kMidRecord,
                                           WalCrashPoint::kBeforeSync};
      crash.point = kPoints[seed % 3];

      WalReplicator::Options wopts;
      wopts.replication_factor = 1;
      wopts.ack_timeout_ms = 3'000;
      auto replicator = std::make_shared<WalReplicator>(wopts);
      replicator->add_replica("replica", [replica_port] {
        return std::make_shared<TcpClientChannel>(replica_port, fast_tcp());
      });

      server::SegmentServer::Options popts;
      popts.checkpoint_dir = (dir / "primary").string();
      popts.wal_sync = WriteAheadLog::Sync::kCommit;
      popts.writer_lease_ms = 1'500;
      popts.wal_crash = std::make_shared<WalCrashSchedule>(crash);
      popts.replicator = replicator;
      server::SegmentServer primary(popts);
      TcpServer tcp(primary, 0);

      uint16_t port = tcp.port();
      if (::write(c2p[1], &port, sizeof port) !=
          static_cast<ssize_t>(sizeof port)) {
        _exit(4);
      }
      // Serve until wal_crash_now() SIGKILLs this process mid-append.
      for (;;) ::pause();
    } catch (...) {
      _exit(5);
    }
  }

  ::close(p2c[0]);
  ::close(c2p[1]);
  ChildReaper reaper;
  reaper.pid = child;

  server::SegmentServer::Options ropts;
  ropts.checkpoint_dir = (dir / "replica").string();
  ropts.wal_sync = WriteAheadLog::Sync::kCommit;
  ropts.writer_lease_ms = 1'500;
  server::SegmentServer replica(ropts);
  TcpServer replica_tcp(replica, 0);

  uint16_t replica_port = replica_tcp.port();
  ASSERT_EQ(::write(p2c[1], &replica_port, sizeof replica_port),
            static_cast<ssize_t>(sizeof replica_port));
  uint16_t primary_port = 0;
  ASSERT_TRUE(read_exact(c2p[0], &primary_port)) << "child died during setup";

  SegmentDirectory::Dialer dial =
      [](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    return std::make_shared<TcpClientChannel>(
        static_cast<uint16_t>(std::stoul(addr)), fast_tcp());
  };
  SegmentDirectory::Options dopts;
  dopts.replicas = 1;
  SegmentDirectory directory(dopts, dial);
  directory.add_node("primary", std::to_string(primary_port));
  directory.add_node("replica", std::to_string(replica_port));
  directory.set_placement(kUrl, {"primary", "replica"});

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 16;
  copts.reconnect.max_call_retries = 10;
  copts.reconnect.jitter_seed = seed + 1;
  auto connector = server::make_failover_connector(directory, kUrl, dial);
  Client client([connector](const std::string&) { return connector(); },
                copts);
  ClientSegment* seg = client.open_segment(kUrl);

  const TypeDescriptor* arr = client.types().array_of(
      client.types().primitive(PrimitiveKind::kInt32), kUnits);

  // Upsert-only workload: ~26 local WAL appends (create, type, a commit per
  // step), so the seeded crash point — append 4 + seed % 10 — always fires
  // *during* a commit's append, with the client's acked history at a
  // different depth every seed.
  Model model;
  constexpr int kSteps = 24;
  for (int step = 0; step < kSteps; ++step) {
    std::string target = "b" + std::to_string(step % 6);
    std::vector<int32_t> values = step_values(seed, step);
    for (int attempt = 0;; ++attempt) {
      try {
        client.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (blk == nullptr) {
          client.malloc_block(seg, arr, target);
          blk = seg->heap().find_by_name(target);
        }
        fill_block(blk, values);
        client.write_unlock(seg);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 10) << "seed " << seed << " step " << step << ": "
                               << e.what();
      }
    }
    // Acknowledged: a SIGKILL after this instant must never lose this step.
    model[target] = values;
  }

  // The primary must actually have died mid-append, by SIGKILL, not by a
  // clean exit — otherwise this run proved nothing.
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  reaper.pid = -1;
  ASSERT_TRUE(WIFSIGNALED(status)) << "primary exited instead of crashing";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Zero acked-commit loss across the crash: the promoted replica holds
  // exactly the model.
  for (int attempt = 0;; ++attempt) {
    try {
      Model seen = snapshot_of(client, seg);
      EXPECT_EQ(seen, model) << "seed " << seed;
      break;
    } catch (const Error& e) {
      ASSERT_LT(attempt, 10) << e.what();
    }
  }

  SegmentDirectory::Stats ds = directory.stats();
  EXPECT_EQ(ds.promotions, 1u) << "seed " << seed;
  EXPECT_GE(ds.probes_failed, 1u);
  EXPECT_LT(ds.promote_ms_last, 1'500u) << "promotion blew the lease window";
  server::SegmentServer::Stats rs = replica.stats();
  EXPECT_EQ(rs.promotions_accepted, 1u);
  EXPECT_GT(rs.repl_records_applied, 0u);
  EXPECT_EQ(replica.segment_placement_epoch(kUrl), 2u);

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SigkillFailoverTest,
                         ::testing::Range<uint64_t>(1, 21));  // 20 seeds

// --- suite 3: directory + fencing edge cases ---

TEST(SegmentDirectoryTest, ConsistentHashingIsStableAndSpreads) {
  SegmentDirectory::Options opts;
  opts.replicas = 1;
  SegmentDirectory dir(opts, [](const std::string&)
                                 -> std::shared_ptr<ClientChannel> {
    throw Error::transport(ErrorCode::kConnReset, "no dialing in this test");
  });
  EXPECT_THROW(dir.resolve("host/x"), Error) << "no nodes yet";

  dir.add_node("a", "addr-a");
  dir.add_node("b", "addr-b");
  dir.add_node("c", "addr-c");
  EXPECT_THROW(dir.add_node("a", "addr-a2"), Error) << "duplicate id";

  SegmentDirectory::Placement p = dir.resolve("host/x");
  EXPECT_EQ(p.epoch, 1u);
  ASSERT_EQ(p.nodes.size(), 2u);  // primary + 1 replica
  EXPECT_NE(p.nodes[0], p.nodes[1]);
  // Cached: the same placement comes back, even after membership grows.
  dir.add_node("d", "addr-d");
  SegmentDirectory::Placement again = dir.resolve("host/x");
  EXPECT_EQ(again.nodes, p.nodes);

  // The ring actually spreads: many segments do not all land on one
  // primary.
  std::unordered_set<std::string> primaries;
  for (int i = 0; i < 50; ++i) {
    primaries.insert(dir.resolve("host/s" + std::to_string(i)).nodes[0]);
  }
  EXPECT_GE(primaries.size(), 2u);

  EXPECT_EQ(dir.address_of("a"), "addr-a");
  EXPECT_THROW(dir.address_of("nope"), Error);
}

TEST(SegmentDirectoryTest, ExplicitPlacementOverridesTheRing) {
  SegmentDirectory::Options opts;
  opts.replicas = 1;
  SegmentDirectory dir(opts, [](const std::string&)
                                 -> std::shared_ptr<ClientChannel> {
    throw Error::transport(ErrorCode::kConnReset, "no dialing in this test");
  });
  dir.add_node("a", "addr-a");
  dir.add_node("b", "addr-b");
  EXPECT_THROW(dir.set_placement("host/p", {}), Error);
  EXPECT_THROW(dir.set_placement("host/p", {"ghost"}), Error);
  dir.set_placement("host/p", {"b", "a"});
  SegmentDirectory::Placement p = dir.resolve("host/p");
  EXPECT_EQ(p.nodes, (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(p.epoch, 1u);
}

// A replica whose only knowledge of a segment arrived over kWalAppend
// (never a client write of its own) crashes and restarts: its journal —
// an "orphan" journal with no checkpoint beside it — must revive the
// segment, and the revived server must be promotable with all data intact.
TEST(ReplicationEdgeTest, OrphanJournalRevivalOnPromotedReplica) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-orphan-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  server::SegmentServer::Options ropts;
  ropts.checkpoint_dir = dir.string();
  ropts.wal_sync = WriteAheadLog::Sync::kCommit;
  auto replica = std::make_unique<server::SegmentServer>(ropts);

  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  auto replicator = std::make_shared<WalReplicator>(wopts);
  replicator->add_replica("replica",
                          [&replica]() -> std::shared_ptr<ClientChannel> {
                            return std::make_shared<InProcChannel>(*replica);
                          });

  // The primary keeps no journal of its own: the replica's copy is the
  // only durable record of these commits anywhere.
  server::SegmentServer::Options popts;
  popts.replicator = replicator;
  server::SegmentServer primary(popts);

  std::vector<int32_t> values = step_values(7, 1);
  {
    Client client(
        [&primary](const std::string&) {
          return std::make_shared<InProcChannel>(primary);
        });
    ClientSegment* seg = client.open_segment(kUrl);
    const TypeDescriptor* arr = client.types().array_of(
        client.types().primitive(PrimitiveKind::kInt32), kUnits);
    client.write_lock(seg);
    client.malloc_block(seg, arr, "blk");
    fill_block(seg->heap().find_by_name("blk"), values);
    client.write_unlock(seg);
    client.write_lock(seg);
    fill_block(seg->heap().find_by_name("blk"), values);
    client.write_unlock(seg);
  }
  EXPECT_EQ(replica->segment_version(kUrl), 2u);

  // Crash the replica (destructors only, no checkpoint) and revive it from
  // the journal alone.
  replicator->shutdown();
  replica.reset();
  replica = std::make_unique<server::SegmentServer>(ropts);
  replica->recover();
  EXPECT_GT(replica->stats().wal_replayed_records, 0u);
  EXPECT_EQ(replica->segment_version(kUrl), 2u);

  // Promote the revived replica; it answers with the recovered version.
  auto ch = std::make_shared<InProcChannel>(*replica);
  Buffer req;
  req.append_lp_string(kUrl);
  req.append_u32(2);
  Frame resp = ch->call(MsgType::kPromote, std::move(req));
  EXPECT_EQ(resp.reader().read_u32(), 2u);
  EXPECT_EQ(replica->segment_placement_epoch(kUrl), 2u);
  EXPECT_EQ(replica->stats().promotions_accepted, 1u);

  // A client of the promoted replica sees the replicated data.
  Client reader([&replica](const std::string&) {
    return std::make_shared<InProcChannel>(*replica);
  });
  ClientSegment* seg = reader.open_segment(kUrl);
  Model seen = snapshot_of(reader, seg);
  ASSERT_EQ(seen.count("blk"), 1u);
  EXPECT_EQ(seen["blk"], values);

  fs::remove_all(dir);
}

// Two clients observe the same dead primary and race into failover: the
// directory must promote exactly once, the loser adopting the winner's
// epoch.
TEST(ReplicationEdgeTest, DoublePromotionRaceResolvesToOneEpochBump) {
  server::SegmentServer replica;
  SegmentDirectory::Dialer dial =
      [&replica](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    if (addr == "dead") {
      throw Error::transport(ErrorCode::kConnReset, "primary is down");
    }
    return std::make_shared<InProcChannel>(replica);
  };
  SegmentDirectory::Options opts;
  opts.replicas = 1;
  SegmentDirectory dir(opts, dial);
  dir.add_node("p", "dead");
  dir.add_node("r", "live");
  dir.set_placement(kUrl, {"p", "r"});
  ASSERT_EQ(dir.resolve(kUrl).epoch, 1u);

  SegmentDirectory::Placement got[2];
  std::thread t0([&] { got[0] = dir.resolve_for_failover(kUrl, 1); });
  std::thread t1([&] { got[1] = dir.resolve_for_failover(kUrl, 1); });
  t0.join();
  t1.join();

  for (const SegmentDirectory::Placement& p : got) {
    EXPECT_EQ(p.epoch, 2u);
    ASSERT_FALSE(p.nodes.empty());
    EXPECT_EQ(p.nodes.front(), "r");
  }
  EXPECT_EQ(dir.stats().promotions, 1u);
  EXPECT_EQ(replica.stats().promotions_accepted, 1u);
  EXPECT_EQ(replica.segment_placement_epoch(kUrl), 2u);
}

// A deposed primary keeps streaming: its records carry the old placement
// epoch and must be refused by the promoted replica, and the refusal must
// fence the segment inside the deposed primary's replicator so it can
// never ack again.
TEST(ReplicationEdgeTest, StalePrimaryLateWalAppendRejectedByEpoch) {
  server::SegmentServer replica;

  // The replica has been promoted to epoch 3 by the directory.
  auto ch = std::make_shared<InProcChannel>(replica);
  Buffer promote;
  promote.append_lp_string(kUrl);
  promote.append_u32(3);
  ch->call(MsgType::kPromote, std::move(promote));

  // A re-promotion to a lower epoch is itself stale.
  Buffer down;
  down.append_lp_string(kUrl);
  down.append_u32(2);
  try {
    ch->call(MsgType::kPromote, std::move(down));
    FAIL() << "stale promotion accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kStaleEpoch);
  }

  // Raw wire check: an epoch-2 record in kWalAppend is reported stale, not
  // applied.
  Buffer batch;
  batch.append_u32(1);  // one record
  batch.append_lp_string(kUrl);
  batch.append_u32(2);  // stale epoch
  batch.append_u8(static_cast<uint8_t>(WalRecordType::kCommit));
  batch.append_u32(4);  // body: just the version prefix
  batch.append_u32(1);
  Frame ack = ch->call(MsgType::kWalAppend, std::move(batch));
  BufReader in = ack.reader();
  EXPECT_EQ(in.read_u32(), 0u) << "stale record was applied";
  ASSERT_EQ(in.read_u32(), 1u);
  EXPECT_EQ(in.read_lp_string(), kUrl);
  EXPECT_EQ(replica.stats().repl_stale_rejected, 1u);

  // Through the deposed primary's own replicator: the stale report turns
  // into a fence, and the committer gets kStaleEpoch instead of an ack.
  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  wopts.ack_timeout_ms = 3'000;
  WalReplicator replicator(wopts);
  replicator.add_replica("replica",
                         [&replica]() -> std::shared_ptr<ClientChannel> {
                           return std::make_shared<InProcChannel>(replica);
                         });
  uint8_t head[4] = {0, 0, 0, 1};
  try {
    replicator.replicate(kUrl, 2, WalRecordType::kCommit, head);
    FAIL() << "deposed primary's commit was acked";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kStaleEpoch);
  }
  EXPECT_TRUE(replicator.fenced(kUrl));
  EXPECT_EQ(replicator.stats().stale_epoch_fences, 1u);
  // The fence is sticky: later commits fail immediately.
  EXPECT_THROW(replicator.replicate(kUrl, 2, WalRecordType::kCommit, head),
               Error);
  replicator.shutdown();
}

// Resolution over the wire: a client with no directory object of its own
// resolves through DirectoryCore, dials the returned primary address, and
// fails over on the next connect after the primary dies.
TEST(ReplicationEdgeTest, DirectoryCoreServesRemoteFailoverResolution) {
  server::SegmentServer primary_server;
  server::SegmentServer replica;
  KillableCore proxy;
  proxy.set_server(&primary_server);

  SegmentDirectory::Dialer dial =
      [&proxy, &replica](const std::string& addr)
      -> std::shared_ptr<ClientChannel> {
    if (addr == "primary") return std::make_shared<InProcChannel>(proxy);
    return std::make_shared<InProcChannel>(replica);
  };
  SegmentDirectory::Options opts;
  opts.replicas = 1;
  SegmentDirectory dir(opts, dial);
  dir.add_node("p", "primary");
  dir.add_node("r", "replica");
  dir.set_placement(kUrl, {"p", "r"});
  DirectoryCore dcore(dir);

  auto connector = server::make_failover_connector(
      [&dcore]() -> std::shared_ptr<ClientChannel> {
        return std::make_shared<InProcChannel>(dcore);
      },
      kUrl, dial);

  // First connect lands on the primary.
  auto ch = connector();
  ch->call(MsgType::kPing, Buffer());
  EXPECT_EQ(dir.stats().promotions, 0u);

  // Primary dies; the next connect resolves with failover and lands on the
  // promoted replica.
  proxy.set_server(nullptr);
  ch = connector();
  ch->call(MsgType::kPing, Buffer());
  EXPECT_EQ(dir.stats().promotions, 1u);
  EXPECT_EQ(replica.stats().promotions_accepted, 1u);
}

// --- suite 4: self-healing — repeated failover, backfill, and rejoin ---
//
// An rf=2 topology (primary + 2 replicas) survives sequential primary
// kills: after each kill the repair loop promotes the most-caught-up
// replica, the deposed primary restarts from its own checkpoint + journal
// and is recruited back as a replica (its divergent unacked suffix
// discarded by the snapshot install), and the replication factor is
// restored before the next kill. Zero acked commits may be lost across
// any number of rounds, and all three stores must converge byte-for-byte.

struct ClusterNode {
  std::string id;
  fs::path dir;
  std::shared_ptr<WalReplicator> replicator;
  std::unique_ptr<server::SegmentServer> server;
  KillableCore proxy;
  std::unique_ptr<TcpServer> tcp;
  std::string address;
};

void start_node(ClusterNode& n, bool tcp,
                const SegmentDirectory::Dialer& dial) {
  WalReplicator::Options wopts;
  wopts.replication_factor = 2;
  wopts.ack_timeout_ms = 2'000;
  wopts.reconnect_backoff_ms = 1;
  wopts.reconnect_backoff_max_ms = 8;
  wopts.disconnect_grace_ms = 150;
  n.replicator = std::make_shared<WalReplicator>(wopts);

  server::SegmentServer::Options opts;
  opts.checkpoint_dir = n.dir.string();
  opts.wal_sync = WriteAheadLog::Sync::kCommit;
  opts.writer_lease_ms = 1'500;
  // Full checkpoints only, so the final byte-identity check compares one
  // whole-store snapshot per node instead of a base + chain.
  opts.checkpoint_chain_limit = 0;
  opts.replicator = n.replicator;
  opts.peer_dial = dial;
  n.server = std::make_unique<server::SegmentServer>(opts);
  n.server->recover();
  n.proxy.set_server(n.server.get());
  if (tcp) {
    n.tcp = std::make_unique<TcpServer>(n.proxy, 0);
    n.address = std::to_string(n.tcp->port());
  } else {
    n.address = n.id;
  }
  n.server->set_node_identity(n.id, n.address);
}

void kill_node(ClusterNode& n) {
  n.proxy.set_server(nullptr);
  if (n.tcp != nullptr) {
    n.tcp->shutdown();
    n.tcp.reset();
  }
  n.replicator->shutdown();
  n.server.reset();
}

ClusterNode* node_by_id(std::array<ClusterNode, 3>& nodes,
                        const std::string& id) {
  for (ClusterNode& n : nodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

std::vector<uint8_t> checkpoint_bytes(const fs::path& node_dir) {
  fs::path seg;
  for (const auto& dirent : fs::directory_iterator(node_dir)) {
    if (dirent.path().extension() == ".iwseg") {
      EXPECT_TRUE(seg.empty()) << "more than one checkpoint in " << node_dir;
      seg = dirent.path();
    }
  }
  EXPECT_FALSE(seg.empty()) << "no .iwseg checkpoint in " << node_dir;
  if (seg.empty()) return {};
  std::ifstream in(seg, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

class RepeatedFailoverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepeatedFailoverTest, RepairRestoresFactorAcrossSequentialKills) {
  const uint64_t seed = GetParam();
  const bool tcp = tcp_mode();
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-repair-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed));
  fs::remove_all(dir);

  std::array<ClusterNode, 3> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes[static_cast<size_t>(i)].id = "n" + std::to_string(i);
    nodes[static_cast<size_t>(i)].dir = dir / nodes[static_cast<size_t>(i)].id;
  }
  SegmentDirectory::Dialer dial =
      [&nodes, tcp](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    if (tcp) {
      return std::make_shared<TcpClientChannel>(
          static_cast<uint16_t>(std::stoul(addr)), fast_tcp());
    }
    for (ClusterNode& n : nodes) {
      if (n.id == addr) return std::make_shared<InProcChannel>(n.proxy);
    }
    throw Error::transport(ErrorCode::kConnReset, "unknown node " + addr);
  };
  for (ClusterNode& n : nodes) start_node(n, tcp, dial);

  SegmentDirectory::Options dopts;
  dopts.replicas = 2;
  SegmentDirectory directory(dopts, dial);
  for (ClusterNode& n : nodes) directory.add_node(n.id, n.address);
  directory.set_placement(kUrl, {"n0", "n1", "n2"});
  server::ReplicationRepairer repairer(directory);

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 8;
  copts.reconnect.max_call_retries = 10;
  copts.reconnect.jitter_seed = seed + 1;
  auto connector = server::make_failover_connector(directory, kUrl, dial);
  Client client([connector](const std::string&) { return connector(); },
                copts);
  ClientSegment* seg = client.open_segment(kUrl);

  // Bootstrap: the first repair tick recruits both replicas through the
  // sync handshake (an empty WAL-tail — everyone is at v0) and flips them
  // to live links. From here every ack is gated on replication factor 2.
  ASSERT_EQ(repairer.tick(), 0u);
  ASSERT_EQ(nodes[0].replicator->replica_count(), 2u);

  const TypeDescriptor* arr = client.types().array_of(
      client.types().primitive(PrimitiveKind::kInt32), kUnits);

  SplitMix64 rng(seed);
  Model model;
  int next_block = 0;
  auto workload_step = [&](int step) -> bool {
    uint64_t action = rng.below(10);
    std::vector<int32_t> values = step_values(seed, step);
    std::string target;
    if (action < 3 || model.empty()) {
      target = "b" + std::to_string(next_block++);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      target = it->first;
    }
    bool do_free = action == 8 && !model.empty();
    for (int attempt = 0;; ++attempt) {
      try {
        client.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (do_free) {
          if (blk != nullptr) {
            client.free_block(seg, const_cast<uint8_t*>(blk->data()));
          }
        } else {
          if (blk == nullptr) {
            client.malloc_block(seg, arr, target);
            blk = seg->heap().find_by_name(target);
          }
          fill_block(blk, values);
        }
        client.write_unlock(seg);
        break;
      } catch (const Error& e) {
        if (attempt >= 10) {
          ADD_FAILURE() << "seed " << seed << " step " << step << ": "
                        << e.what();
          return false;
        }
      }
    }
    if (do_free) {
      model.erase(target);
    } else {
      model[target] = values;
    }
    return true;
  };

  constexpr int kRounds = 3;
  constexpr int kStepsPerRound = 6;
  for (int round = 0; round < kRounds; ++round) {
    for (int s = 0; s < kStepsPerRound; ++s) {
      ASSERT_TRUE(workload_step(round * 100 + s));
    }

    // Kill the current primary between critical sections. Every commit in
    // `model` was acked only after both replicas journaled it.
    const std::string victim = directory.placement_of(kUrl).nodes.front();
    ClusterNode* dead = node_by_id(nodes, victim);
    ASSERT_NE(dead, nullptr);
    kill_node(*dead);

    // First tick: the repairer notices the corpse and promotes the
    // most-caught-up replica. The third copy cannot be restored yet — no
    // spare node exists outside the placement — so the segment stays on
    // the under-replicated gauge.
    EXPECT_EQ(repairer.tick(), 1u) << "round " << round;
    EXPECT_EQ(directory.placement_of(kUrl).epoch,
              static_cast<uint32_t>(round + 2));

    // The deposed primary restarts from its own checkpoint + journal and
    // rejoins the ring under its old id; repair recruits it back as a
    // replica, re-basing its history (snapshot install: its lineage is a
    // deposed epoch, so its unacked journal suffix may diverge).
    start_node(*dead, tcp, dial);
    directory.set_node_address(victim, dead->address);
    uint64_t under = 1;
    for (int i = 0; i < 200 && under != 0; ++i) {
      under = repairer.tick();
      if (under != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    ASSERT_EQ(under, 0u) << "repair never restored rf=2, round " << round;
    EXPECT_EQ(dead->server->segment_lineage_epoch(kUrl),
              directory.placement_of(kUrl).epoch)
        << "round " << round;
  }

  // A final burst on the restored topology, fully gated on both replicas.
  for (int s = 0; s < kStepsPerRound; ++s) {
    ASSERT_TRUE(workload_step(1000 + s));
  }

  // Zero acked-commit loss across three promotions: the client sees
  // exactly the model.
  for (int attempt = 0;; ++attempt) {
    try {
      Model seen = snapshot_of(client, seg);
      EXPECT_EQ(seen, model) << "seed " << seed;
      break;
    } catch (const Error& e) {
      ASSERT_LT(attempt, 10) << e.what();
    }
  }

  // Quiescent anti-entropy pass: every recruit degenerates to an empty
  // WAL-tail sync and nothing is left under-replicated.
  EXPECT_EQ(repairer.tick(), 0u);

  SegmentDirectory::Stats ds = directory.stats();
  EXPECT_EQ(ds.promotions, static_cast<uint64_t>(kRounds)) << "seed " << seed;
  server::ReplicationRepairer::Stats rps = repairer.stats();
  EXPECT_EQ(rps.failovers, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(rps.under_replicated_segments, 0u);
  EXPECT_EQ(rps.substitutions, 0u) << "rejoins reuse the old id, never a spare";
  EXPECT_GE(rps.recruits_attempted, static_cast<uint64_t>(2 * kRounds + 2));
  EXPECT_GE(client.stats().reconnects, static_cast<uint64_t>(kRounds));

  // The current primary streams to both replicas with an empty backlog.
  ClusterNode* prim = node_by_id(nodes, directory.placement_of(kUrl).nodes[0]);
  ASSERT_NE(prim, nullptr);
  WalReplicator::Stats ws = prim->replicator->stats();
  ASSERT_EQ(ws.links.size(), 2u);
  for (const WalReplicator::LinkStats& l : ws.links) {
    EXPECT_FALSE(l.dead) << l.id;
    EXPECT_FALSE(l.paused) << l.id;
    EXPECT_EQ(l.replication_lag_records, 0u) << l.id;
  }
  EXPECT_EQ(ws.under_replicated_segments, 0u);
  uint64_t installs = 0;
  uint64_t syncs = 0;
  for (ClusterNode& n : nodes) {
    server::SegmentServer::Stats ss = n.server->stats();
    installs += ss.backfills_completed;
    syncs += ss.sync_requests;
  }
  EXPECT_GE(installs, static_cast<uint64_t>(kRounds)) << "rejoins never ran";
  EXPECT_GE(syncs, static_cast<uint64_t>(kRounds));

  // Byte-identical convergence: a full checkpoint of each store must
  // produce the same bytes on all three nodes.
  for (ClusterNode& n : nodes) n.server->checkpoint();
  std::vector<uint8_t> bytes0 = checkpoint_bytes(nodes[0].dir);
  EXPECT_EQ(bytes0, checkpoint_bytes(nodes[1].dir)) << "seed " << seed;
  EXPECT_EQ(bytes0, checkpoint_bytes(nodes[2].dir)) << "seed " << seed;

  for (ClusterNode& n : nodes) n.replicator->shutdown();
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepeatedFailoverTest,
                         ::testing::Range<uint64_t>(1, 11));  // 10 seeds

// --- suite 5: repeated SIGKILL with repair between rounds ---

/// Kills and reaps every child still alive on exit, so failed assertions
/// cannot leak parked fleet processes.
struct FleetReaper {
  std::vector<pid_t> pids;
  ~FleetReaper() {
    for (pid_t pid : pids) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
      }
    }
  }
};

class RepeatedSigkillRepairTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepeatedSigkillRepairTest, RepairSurvivesSequentialPrimarySigkills) {
  const uint64_t seed = GetParam();
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-resigkill-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed));
  fs::remove_all(dir);
  fs::create_directories(dir);

  constexpr int kNodes = 3;
  constexpr int kIncarnations = 3;  // a node is SIGKILLed at most twice
  struct Slot {
    pid_t pid = -1;
    int start_w = -1;  // parent -> child: 1 byte says "recover and serve"
    int port_r = -1;   // child -> parent: the incarnation's TCP port
  };
  Slot slots[kNodes][kIncarnations];
  FleetReaper reaper;

  // Fork the whole fleet FIRST, while this process is still
  // single-threaded. Each slot is one incarnation of one node, parked
  // until the parent starts it; a node "restarting" after SIGKILL is its
  // next incarnation recovering from the same checkpoint directory.
  for (int node = 0; node < kNodes; ++node) {
    for (int inc = 0; inc < kIncarnations; ++inc) {
      int start[2];
      int port[2];
      ASSERT_EQ(::pipe(start), 0);
      ASSERT_EQ(::pipe(port), 0);
      pid_t child = ::fork();
      ASSERT_GE(child, 0);
      if (child == 0) {
        ::close(start[1]);
        ::close(port[0]);
        try {
          uint8_t go = 0;
          ssize_t n;
          do {
            n = ::read(start[0], &go, 1);
          } while (n < 0 && errno == EINTR);
          if (n != 1) _exit(3);  // parent gone before this slot was needed

          SegmentDirectory::Dialer peer =
              [](const std::string& addr) -> std::shared_ptr<ClientChannel> {
            return std::make_shared<TcpClientChannel>(
                static_cast<uint16_t>(std::stoul(addr)), fast_tcp());
          };
          WalReplicator::Options wopts;
          wopts.replication_factor = 2;
          wopts.ack_timeout_ms = 2'000;
          wopts.reconnect_backoff_ms = 1;
          wopts.reconnect_backoff_max_ms = 8;
          wopts.disconnect_grace_ms = 150;
          auto replicator = std::make_shared<WalReplicator>(wopts);

          server::SegmentServer::Options opts;
          opts.checkpoint_dir =
              (dir / ("n" + std::to_string(node))).string();
          opts.wal_sync = WriteAheadLog::Sync::kCommit;
          opts.writer_lease_ms = 1'500;
          opts.replicator = replicator;
          opts.peer_dial = peer;
          server::SegmentServer srv(opts);
          srv.recover();
          TcpServer tcpsrv(srv, 0);
          srv.set_node_identity("n" + std::to_string(node),
                                std::to_string(tcpsrv.port()));
          uint16_t p = tcpsrv.port();
          if (::write(port[1], &p, sizeof p) !=
              static_cast<ssize_t>(sizeof p)) {
            _exit(4);
          }
          for (;;) ::pause();
        } catch (...) {
          _exit(5);
        }
      }
      ::close(start[0]);
      ::close(port[1]);
      slots[node][inc] = Slot{child, start[1], port[0]};
      reaper.pids.push_back(child);
    }
  }

  int next_inc[kNodes] = {0, 0, 0};
  pid_t live_pid[kNodes] = {-1, -1, -1};
  auto activate = [&](int node) -> std::string {
    Slot& s = slots[node][next_inc[node]++];
    uint8_t go = 1;
    EXPECT_EQ(::write(s.start_w, &go, 1), 1);
    uint16_t p = 0;
    EXPECT_TRUE(read_exact(s.port_r, &p))
        << "n" << node << " incarnation died during recovery";
    live_pid[node] = s.pid;
    return std::to_string(p);
  };

  SegmentDirectory::Dialer dial =
      [](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    return std::make_shared<TcpClientChannel>(
        static_cast<uint16_t>(std::stoul(addr)), fast_tcp());
  };
  SegmentDirectory::Options dopts;
  dopts.replicas = 2;
  SegmentDirectory directory(dopts, dial);
  for (int node = 0; node < kNodes; ++node) {
    directory.add_node("n" + std::to_string(node), activate(node));
  }
  ASSERT_FALSE(::testing::Test::HasFailure()) << "fleet failed to start";
  directory.set_placement(kUrl, {"n0", "n1", "n2"});
  server::ReplicationRepairer repairer(directory);

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 16;
  copts.reconnect.max_call_retries = 10;
  copts.reconnect.jitter_seed = seed + 1;
  auto connector = server::make_failover_connector(directory, kUrl, dial);
  Client client([connector](const std::string&) { return connector(); },
                copts);
  ClientSegment* seg = client.open_segment(kUrl);
  ASSERT_EQ(repairer.tick(), 0u) << "bootstrap recruits failed";

  const TypeDescriptor* arr = client.types().array_of(
      client.types().primitive(PrimitiveKind::kInt32), kUnits);
  SplitMix64 rng(seed);
  Model model;
  int next_block = 0;
  auto workload_step = [&](int step) -> bool {
    uint64_t action = rng.below(10);
    std::vector<int32_t> values = step_values(seed, step);
    std::string target;
    if (action < 4 || model.empty()) {
      target = "b" + std::to_string(next_block++);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      target = it->first;
    }
    for (int attempt = 0;; ++attempt) {
      try {
        client.write_lock(seg);
        client::BlockHeader* blk = seg->heap().find_by_name(target);
        if (blk == nullptr) {
          client.malloc_block(seg, arr, target);
          blk = seg->heap().find_by_name(target);
        }
        fill_block(blk, values);
        client.write_unlock(seg);
        break;
      } catch (const Error& e) {
        if (attempt >= 10) {
          ADD_FAILURE() << "seed " << seed << " step " << step << ": "
                        << e.what();
          return false;
        }
      }
    }
    model[target] = values;
    return true;
  };

  auto sigkill = [&](int node) {
    pid_t pid = live_pid[node];
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
    for (pid_t& r : reaper.pids) {
      if (r == pid) r = -1;
    }
    live_pid[node] = -1;
  };

  constexpr int kRounds = 3;
  constexpr int kStepsPerRound = 6;
  for (int round = 0; round < kRounds; ++round) {
    for (int s = 0; s < kStepsPerRound; ++s) {
      ASSERT_TRUE(workload_step(round * 100 + s));
    }

    const std::string victim = directory.placement_of(kUrl).nodes.front();
    const int v = victim[1] - '0';
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kNodes);
    sigkill(v);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());

    // Promote away from the corpse; the third copy stays missing until
    // the victim's next incarnation rejoins.
    EXPECT_EQ(repairer.tick(), 1u) << "round " << round;
    directory.set_node_address(victim, activate(v));
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "respawn failed, round " << round;
    uint64_t under = 1;
    for (int i = 0; i < 400 && under != 0; ++i) {
      under = repairer.tick();
      if (under != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    ASSERT_EQ(under, 0u) << "repair never restored rf=2, round " << round;
  }

  for (int s = 0; s < kStepsPerRound; ++s) {
    ASSERT_TRUE(workload_step(1000 + s));
  }

  // Zero acked-commit loss across three SIGKILLed primaries.
  for (int attempt = 0;; ++attempt) {
    try {
      Model seen = snapshot_of(client, seg);
      EXPECT_EQ(seen, model) << "seed " << seed;
      break;
    } catch (const Error& e) {
      ASSERT_LT(attempt, 10) << e.what();
    }
  }

  EXPECT_EQ(directory.stats().promotions, static_cast<uint64_t>(kRounds));
  server::ReplicationRepairer::Stats rps = repairer.stats();
  EXPECT_EQ(rps.failovers, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(rps.under_replicated_segments, 0u);
  EXPECT_EQ(rps.substitutions, 0u);
  EXPECT_GE(client.stats().reconnects, static_cast<uint64_t>(kRounds));

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepeatedSigkillRepairTest,
                         ::testing::Range<uint64_t>(1, 11));  // 10 seeds

// --- suite 6: sync handshake edges (backfill, lineage, recruit fences) ---

/// Writes `values` into the named block of `seg` (creating it on first
/// use) through one whole critical section on `c`.
void put_block(Client& c, ClientSegment* seg, const std::string& name,
               const std::vector<int32_t>& values) {
  const TypeDescriptor* arr =
      c.types().array_of(c.types().primitive(PrimitiveKind::kInt32), kUnits);
  c.write_lock(seg);
  client::BlockHeader* blk = seg->heap().find_by_name(name);
  if (blk == nullptr) {
    c.malloc_block(seg, arr, name);
    blk = seg->heap().find_by_name(name);
  }
  fill_block(blk, values);
  c.write_unlock(seg);
}

// A replica that fell off the stream (link declared dead, commits acked
// without it) pulls a WAL-tail backfill and flips back to live tailing with
// no gap: its lineage matches, so the primary serves the journal suffix
// instead of a snapshot, and the revived link resumes gating acks.
TEST(SyncHandshakeTest, TailBackfillRevivesDeadLinkGapFree) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-sync-tail-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  std::unique_ptr<server::SegmentServer> a;
  std::unique_ptr<server::SegmentServer> b;
  KillableCore bproxy;
  SegmentDirectory::Dialer peer =
      [&a, &bproxy](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    if (addr == "a") return std::make_shared<InProcChannel>(*a);
    return std::make_shared<InProcChannel>(bproxy);
  };

  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  wopts.ack_timeout_ms = 2'000;
  wopts.reconnect_backoff_ms = 1;
  wopts.reconnect_backoff_max_ms = 4;
  wopts.disconnect_grace_ms = 50;
  auto replicator = std::make_shared<WalReplicator>(wopts);
  replicator->add_replica(
      "b", [peer]() -> std::shared_ptr<ClientChannel> { return peer("b"); });

  server::SegmentServer::Options aopts;
  aopts.checkpoint_dir = (dir / "a").string();
  aopts.wal_sync = WriteAheadLog::Sync::kCommit;
  aopts.replicator = replicator;
  aopts.peer_dial = peer;
  a = std::make_unique<server::SegmentServer>(aopts);
  a->set_node_identity("a", "a");

  server::SegmentServer::Options bopts;
  bopts.checkpoint_dir = (dir / "b").string();
  bopts.wal_sync = WriteAheadLog::Sync::kCommit;
  bopts.peer_dial = peer;
  b = std::make_unique<server::SegmentServer>(bopts);
  b->set_node_identity("b", "b");
  bproxy.set_server(b.get());

  Client client(
      [&a](const std::string&) { return std::make_shared<InProcChannel>(*a); });
  ClientSegment* seg = client.open_segment(kUrl);
  Model model;

  model["k0"] = step_values(11, 0);
  model["k1"] = step_values(11, 1);
  put_block(client, seg, "k0", model["k0"]);
  put_block(client, seg, "k1", model["k1"]);
  EXPECT_EQ(b->segment_version(kUrl), a->segment_version(kUrl));

  // The replica dies mid-stream. The first commit afterwards waits out the
  // disconnect grace, the link is declared dead, and commits keep flowing
  // unreplicated — availability over redundancy, counted on the gauge.
  bproxy.set_server(nullptr);
  model["k0"] = step_values(11, 2);
  model["k2"] = step_values(11, 3);
  put_block(client, seg, "k0", model["k0"]);
  put_block(client, seg, "k2", model["k2"]);
  WalReplicator::Stats ws = replicator->stats();
  EXPECT_EQ(ws.dead_links, 1u);
  EXPECT_EQ(ws.under_replicated_segments, 1u);

  // The replica comes back and pulls a backfill. Same lineage, behind in
  // versions: the primary serves the WAL tail, never a snapshot.
  bproxy.set_server(b.get());
  uint32_t v = b->backfill_segment(kUrl, "a", 0);
  EXPECT_EQ(v, a->segment_version(kUrl));
  server::SegmentServer::Stats as = a->stats();
  EXPECT_EQ(as.sync_requests, 1u);
  EXPECT_EQ(as.sync_tails_served, 1u);
  EXPECT_EQ(as.sync_snapshots_served, 0u);
  EXPECT_EQ(b->stats().backfills_completed, 1u);
  ws = replicator->stats();
  EXPECT_EQ(ws.backfills_started, 1u);
  EXPECT_EQ(ws.backfills_completed, 1u);
  EXPECT_EQ(ws.dead_links, 0u);
  ASSERT_EQ(ws.links.size(), 1u);
  EXPECT_FALSE(ws.links[0].dead);
  EXPECT_FALSE(ws.links[0].paused);

  // The revived link gates the next ack again, gap-free.
  model["k3"] = step_values(11, 4);
  put_block(client, seg, "k3", model["k3"]);
  EXPECT_EQ(b->segment_version(kUrl), a->segment_version(kUrl));
  EXPECT_EQ(replicator->stats().links[0].replication_lag_records, 0u);

  Client reader([&bproxy](const std::string&) {
    return std::make_shared<InProcChannel>(bproxy);
  });
  EXPECT_EQ(snapshot_of(reader, reader.open_segment(kUrl)), model);

  replicator->shutdown();
  fs::remove_all(dir);
}

// A recruit whose applied history comes from a different lineage cannot
// fold a WAL tail — its local versions mean different bytes. The primary
// detects the lineage mismatch and serves a full snapshot; the install
// discards the recruit's divergent history and adopts the primary's
// lineage, and all of it survives a restart.
TEST(SyncHandshakeTest, LineageMismatchForcesSnapshotInstall) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-sync-lineage-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  std::unique_ptr<server::SegmentServer> a;
  SegmentDirectory::Dialer peer =
      [&a](const std::string&) -> std::shared_ptr<ClientChannel> {
    return std::make_shared<InProcChannel>(*a);
  };
  server::SegmentServer::Options aopts;
  aopts.checkpoint_dir = (dir / "a").string();
  aopts.wal_sync = WriteAheadLog::Sync::kCommit;
  a = std::make_unique<server::SegmentServer>(aopts);
  a->set_node_identity("a", "a");

  Model model;
  {
    Client ca([&a](const std::string&) {
      return std::make_shared<InProcChannel>(*a);
    });
    ClientSegment* seg = ca.open_segment(kUrl);
    model["x"] = step_values(13, 0);
    model["y"] = step_values(13, 1);
    put_block(ca, seg, "x", model["x"]);
    put_block(ca, seg, "y", model["y"]);
  }
  {
    auto ch = std::make_shared<InProcChannel>(*a);
    Buffer promote;
    promote.append_lp_string(kUrl);
    promote.append_u32(3);
    ch->call(MsgType::kPromote, std::move(promote));
  }
  ASSERT_EQ(a->segment_lineage_epoch(kUrl), 3u);

  // The recruit has its own divergent history: a block committed under
  // lineage 1 that the primary never saw.
  server::SegmentServer::Options bopts;
  bopts.checkpoint_dir = (dir / "b").string();
  bopts.wal_sync = WriteAheadLog::Sync::kCommit;
  bopts.peer_dial = peer;
  auto b = std::make_unique<server::SegmentServer>(bopts);
  b->set_node_identity("b", "b");
  {
    Client cb([&b](const std::string&) {
      return std::make_shared<InProcChannel>(*b);
    });
    ClientSegment* seg = cb.open_segment(kUrl);
    put_block(cb, seg, "divergent", step_values(13, 9));
  }

  uint32_t v = b->backfill_segment(kUrl, "a", 0);
  EXPECT_EQ(v, a->segment_version(kUrl));
  server::SegmentServer::Stats as = a->stats();
  EXPECT_EQ(as.sync_snapshots_served, 1u);
  EXPECT_EQ(as.sync_tails_served, 0u);
  EXPECT_EQ(b->segment_lineage_epoch(kUrl), 3u);
  EXPECT_EQ(b->segment_placement_epoch(kUrl), 3u);
  {
    Client cb([&b](const std::string&) {
      return std::make_shared<InProcChannel>(*b);
    });
    Model seen = snapshot_of(cb, cb.open_segment(kUrl));
    EXPECT_EQ(seen, model) << "divergent block must be gone";
  }

  // The sealed install is durable: a restart recovers the adopted lineage
  // and the re-based store.
  b.reset();
  b = std::make_unique<server::SegmentServer>(bopts);
  b->recover();
  EXPECT_EQ(b->segment_lineage_epoch(kUrl), 3u);
  EXPECT_EQ(b->segment_placement_epoch(kUrl), 3u);
  EXPECT_EQ(b->segment_version(kUrl), a->segment_version(kUrl));
  {
    Client cb([&b](const std::string&) {
      return std::make_shared<InProcChannel>(*b);
    });
    EXPECT_EQ(snapshot_of(cb, cb.open_segment(kUrl)), model);
  }
  fs::remove_all(dir);
}

// A snapshot larger than sync_chunk_bytes streams in multiple cursor-driven
// round trips, and the chunk cache serializes the store exactly once.
TEST(SyncHandshakeTest, SnapshotStreamsInBoundedChunks) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-sync-chunks-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  std::unique_ptr<server::SegmentServer> a;
  SegmentDirectory::Dialer peer =
      [&a](const std::string&) -> std::shared_ptr<ClientChannel> {
    return std::make_shared<InProcChannel>(*a);
  };
  server::SegmentServer::Options aopts;
  aopts.checkpoint_dir = (dir / "a").string();
  aopts.wal_sync = WriteAheadLog::Sync::kCommit;
  aopts.sync_chunk_bytes = 64;  // force many chunks
  a = std::make_unique<server::SegmentServer>(aopts);
  a->set_node_identity("a", "a");

  Model model;
  {
    Client ca([&a](const std::string&) {
      return std::make_shared<InProcChannel>(*a);
    });
    ClientSegment* seg = ca.open_segment(kUrl);
    for (int i = 0; i < 6; ++i) {
      std::string name = "blk" + std::to_string(i);
      model[name] = step_values(17, i);
      put_block(ca, seg, name, model[name]);
    }
  }
  {
    auto ch = std::make_shared<InProcChannel>(*a);
    Buffer promote;
    promote.append_lp_string(kUrl);
    promote.append_u32(2);
    ch->call(MsgType::kPromote, std::move(promote));
  }

  server::SegmentServer::Options bopts;
  bopts.checkpoint_dir = (dir / "b").string();
  bopts.wal_sync = WriteAheadLog::Sync::kCommit;
  bopts.peer_dial = peer;
  server::SegmentServer b(bopts);
  b.set_node_identity("b", "b");
  uint32_t v = b.backfill_segment(kUrl, "a", 0);
  EXPECT_EQ(v, a->segment_version(kUrl));
  server::SegmentServer::Stats as = a->stats();
  EXPECT_GE(as.sync_requests, 3u) << "snapshot fit in one chunk";
  EXPECT_EQ(as.sync_snapshots_served, 1u) << "store serialized per chunk";
  {
    Client cb([&b](const std::string&) {
      return std::make_shared<InProcChannel>(b);
    });
    EXPECT_EQ(snapshot_of(cb, cb.open_segment(kUrl)), model);
  }
  fs::remove_all(dir);
}

// Anti-entropy recruits every placed replica each pass, so a caught-up
// replica's recruit must be a no-op: an empty WAL-tail sync that never
// pauses the live link and never rewrites a checkpoint.
TEST(SyncHandshakeTest, CaughtUpReplicaRecruitIsIdempotentEmptyTail) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-sync-idempotent-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  std::unique_ptr<server::SegmentServer> a;
  std::unique_ptr<server::SegmentServer> b;
  SegmentDirectory::Dialer peer =
      [&a, &b](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    return std::make_shared<InProcChannel>(addr == "a" ? *a : *b);
  };

  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  wopts.ack_timeout_ms = 2'000;
  auto replicator = std::make_shared<WalReplicator>(wopts);
  replicator->add_replica(
      "b", [peer]() -> std::shared_ptr<ClientChannel> { return peer("b"); });

  server::SegmentServer::Options aopts;
  aopts.checkpoint_dir = (dir / "a").string();
  aopts.wal_sync = WriteAheadLog::Sync::kCommit;
  aopts.replicator = replicator;
  aopts.peer_dial = peer;
  a = std::make_unique<server::SegmentServer>(aopts);
  a->set_node_identity("a", "a");

  server::SegmentServer::Options bopts;
  bopts.checkpoint_dir = (dir / "b").string();
  bopts.wal_sync = WriteAheadLog::Sync::kCommit;
  bopts.peer_dial = peer;
  b = std::make_unique<server::SegmentServer>(bopts);
  b->set_node_identity("b", "b");

  Client client(
      [&a](const std::string&) { return std::make_shared<InProcChannel>(*a); });
  ClientSegment* seg = client.open_segment(kUrl);
  Model model;
  model["k"] = step_values(19, 0);
  put_block(client, seg, "k", model["k"]);
  ASSERT_EQ(b->segment_version(kUrl), a->segment_version(kUrl));
  const uint64_t checkpoints_before = b->stats().checkpoints_written;

  // The recruit RPC a repairer would send: the replica pulls from the
  // primary, finds itself at the same position, and nothing moves.
  auto ch = std::make_shared<InProcChannel>(*b);
  Buffer recruit;
  recruit.append_lp_string(kUrl);
  recruit.append_u32(1);
  recruit.append_lp_string("a");
  Frame resp = ch->call(MsgType::kRecruit, std::move(recruit));
  BufReader in = resp.reader();
  EXPECT_EQ(in.read_u32(), 1u);  // placement epoch
  EXPECT_EQ(in.read_u32(), a->segment_version(kUrl));

  server::SegmentServer::Stats as = a->stats();
  EXPECT_EQ(as.sync_tails_served, 1u);
  EXPECT_EQ(as.sync_snapshots_served, 0u);
  EXPECT_EQ(b->stats().checkpoints_written, checkpoints_before)
      << "empty tail must not reseal the store";
  WalReplicator::Stats ws = replicator->stats();
  EXPECT_EQ(ws.backfills_started, 0u) << "live link must not be paused";
  ASSERT_EQ(ws.links.size(), 1u);
  EXPECT_FALSE(ws.links[0].paused);

  // The stream never blinked: the next commit is acked by the link.
  model["k"] = step_values(19, 1);
  put_block(client, seg, "k", model["k"]);
  EXPECT_EQ(b->segment_version(kUrl), a->segment_version(kUrl));

  replicator->shutdown();
  fs::remove_all(dir);
}

// Backfill must never install history older than what the puller already
// fenced: a recruit at a newer epoch refuses a stale server's chunks, and
// a want_epoch ahead of the serving server is refused server-side.
TEST(SyncHandshakeTest, BackfillFromStaleLineageAborts) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-sync-stale-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  std::unique_ptr<server::SegmentServer> a;
  SegmentDirectory::Dialer peer =
      [&a](const std::string&) -> std::shared_ptr<ClientChannel> {
    return std::make_shared<InProcChannel>(*a);
  };
  server::SegmentServer::Options aopts;
  aopts.checkpoint_dir = (dir / "a").string();
  aopts.wal_sync = WriteAheadLog::Sync::kCommit;
  a = std::make_unique<server::SegmentServer>(aopts);
  a->set_node_identity("a", "a");
  {
    Client ca([&a](const std::string&) {
      return std::make_shared<InProcChannel>(*a);
    });
    put_block(ca, ca.open_segment(kUrl), "k", step_values(23, 0));
  }

  server::SegmentServer::Options bopts;
  bopts.checkpoint_dir = (dir / "b").string();
  bopts.wal_sync = WriteAheadLog::Sync::kCommit;
  bopts.peer_dial = peer;
  server::SegmentServer b(bopts);
  b.set_node_identity("b", "b");
  {
    // Create the segment (no commits), then fence it at epoch 5: b now
    // knows lineage 1 content is superseded.
    Client cb([&b](const std::string&) {
      return std::make_shared<InProcChannel>(b);
    });
    cb.open_segment(kUrl);
    auto ch = std::make_shared<InProcChannel>(b);
    Buffer promote;
    promote.append_lp_string(kUrl);
    promote.append_u32(5);
    ch->call(MsgType::kPromote, std::move(promote));
  }

  // a serves lineage-1 chunks; b's install fence refuses them before
  // anything touches the store.
  ASSERT_EQ(b.segment_lineage_epoch(kUrl), 5u);
  const uint32_t vb = b.segment_version(kUrl);
  ASSERT_NE(vb, a->segment_version(kUrl)) << "abort would be undetectable";
  try {
    b.backfill_segment(kUrl, "a", 0);
    FAIL() << "stale chunks were installed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kStaleEpoch) << e.what();
  }
  EXPECT_EQ(b.segment_version(kUrl), vb);
  EXPECT_EQ(b.segment_lineage_epoch(kUrl), 5u);
  EXPECT_EQ(b.segment_placement_epoch(kUrl), 5u);
  const uint64_t served_after_abort =
      a->stats().sync_tails_served + a->stats().sync_snapshots_served;

  // Asking a for an epoch it has never reached is refused server-side
  // before anything streams.
  try {
    b.backfill_segment(kUrl, "a", 7);
    FAIL() << "server served a sync it cannot satisfy";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kStaleEpoch);
  }
  EXPECT_EQ(a->stats().sync_tails_served + a->stats().sync_snapshots_served,
            served_after_abort);
  fs::remove_all(dir);
}

// A kRecruit carrying an epoch behind the replica's own fence means the
// repairer's placement view is stale — refuse it, don't regress.
TEST(SyncHandshakeTest, StaleRecruitIsRefusedByNewerEpoch) {
  server::SegmentServer b;
  auto ch = std::make_shared<InProcChannel>(b);
  Buffer promote;
  promote.append_lp_string(kUrl);
  promote.append_u32(4);
  ch->call(MsgType::kPromote, std::move(promote));

  Buffer recruit;
  recruit.append_lp_string(kUrl);
  recruit.append_u32(2);
  recruit.append_lp_string("a");
  try {
    ch->call(MsgType::kRecruit, std::move(recruit));
    FAIL() << "stale recruit accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kStaleEpoch);
  }
  EXPECT_EQ(b.stats().recruits_rejected_stale, 1u);
}

// The repairer's tick raced a newer failover it has not observed: its
// recruits are refused kStaleEpoch, counted, and NOT treated as transport
// death (no substitution) — the next tick re-reads the placement.
TEST(SyncHandshakeTest, RepairRacedByNewerFailoverRetriesNextTick) {
  server::SegmentServer a;
  server::SegmentServer b;
  SegmentDirectory::Dialer dial =
      [&a, &b](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    return std::make_shared<InProcChannel>(addr == "a" ? a : b);
  };
  SegmentDirectory::Options dopts;
  dopts.replicas = 1;
  SegmentDirectory directory(dopts, dial);
  directory.add_node("a", "a");
  directory.add_node("b", "b");
  directory.set_placement(kUrl, {"a", "b"});

  // Another failover domain promoted b to epoch 9 behind this directory's
  // back; the repairer still believes epoch 1.
  auto ch = std::make_shared<InProcChannel>(b);
  Buffer promote;
  promote.append_lp_string(kUrl);
  promote.append_u32(9);
  ch->call(MsgType::kPromote, std::move(promote));

  server::ReplicationRepairer repairer(directory);
  EXPECT_EQ(repairer.tick(), 1u);
  server::ReplicationRepairer::Stats rps = repairer.stats();
  EXPECT_EQ(rps.recruits_rejected_stale, 1u);
  EXPECT_EQ(rps.substitutions, 0u) << "app refusal is not transport death";
  EXPECT_EQ(rps.failovers, 0u) << "the primary answered its ping";
  EXPECT_EQ(rps.under_replicated_segments, 1u);
  EXPECT_EQ(b.stats().recruits_rejected_stale, 1u);
}

// An adopted lineage outlives the WAL records that carried it: checkpoint
// truncation re-journals the epoch, so recovery after a checkpoint still
// fences stale history.
TEST(SyncHandshakeTest, LineageSurvivesCheckpointTruncationAndRestart) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-sync-lineagewal-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  server::SegmentServer::Options opts;
  opts.checkpoint_dir = dir.string();
  opts.wal_sync = WriteAheadLog::Sync::kCommit;
  auto s = std::make_unique<server::SegmentServer>(opts);
  Model model;
  {
    Client c([&s](const std::string&) {
      return std::make_shared<InProcChannel>(*s);
    });
    ClientSegment* seg = c.open_segment(kUrl);
    model["k"] = step_values(29, 0);
    put_block(c, seg, "k", model["k"]);
    auto ch = std::make_shared<InProcChannel>(*s);
    Buffer promote;
    promote.append_lp_string(kUrl);
    promote.append_u32(7);
    ch->call(MsgType::kPromote, std::move(promote));

    // Checkpoint truncates the journal — including the kEpochAdopt record —
    // then commit once more so recovery has a tail to replay.
    s->checkpoint();
    model["k2"] = step_values(29, 1);
    put_block(c, seg, "k2", model["k2"]);
  }
  const uint32_t version = s->segment_version(kUrl);
  s.reset();

  s = std::make_unique<server::SegmentServer>(opts);
  s->recover();
  EXPECT_EQ(s->segment_lineage_epoch(kUrl), 7u);
  EXPECT_EQ(s->segment_placement_epoch(kUrl), 7u);
  EXPECT_EQ(s->segment_version(kUrl), version);
  {
    Client c([&s](const std::string&) {
      return std::make_shared<InProcChannel>(*s);
    });
    EXPECT_EQ(snapshot_of(c, c.open_segment(kUrl)), model);
  }
  fs::remove_all(dir);
}

// The full deposed-primary story, end to end: a primary partitioned away
// from its clients (but not from its replica) is promoted around; when it
// tries to commit again its own replica fences it with kStaleEpoch, the
// writing client replays onto the new primary, and the repair loop recruits
// the deposed server back as a replica — divergent journal suffix and all.
TEST(ReplicationEdgeTest, DeposedLivePrimaryIsFencedAndRejoinsViaRepair) {
  fs::path dir = fs::temp_directory_path() /
                 ("iw-repl-deposed-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  std::unique_ptr<server::SegmentServer> a;
  std::unique_ptr<server::SegmentServer> b;
  KillableCore aproxy;
  SegmentDirectory::Dialer dial =
      [&aproxy, &b](const std::string& addr) -> std::shared_ptr<ClientChannel> {
    if (addr == "a") return std::make_shared<InProcChannel>(aproxy);
    return std::make_shared<InProcChannel>(*b);
  };

  WalReplicator::Options wopts;
  wopts.replication_factor = 1;
  wopts.ack_timeout_ms = 2'000;
  auto arepl = std::make_shared<WalReplicator>(wopts);
  // The a->b link dials b directly: the partition below severs a from its
  // clients and the directory, not from its replica.
  arepl->add_replica("b", [&b]() -> std::shared_ptr<ClientChannel> {
    return std::make_shared<InProcChannel>(*b);
  });
  auto brepl = std::make_shared<WalReplicator>(wopts);

  server::SegmentServer::Options aopts;
  aopts.checkpoint_dir = (dir / "a").string();
  aopts.wal_sync = WriteAheadLog::Sync::kCommit;
  aopts.replicator = arepl;
  aopts.peer_dial = dial;
  a = std::make_unique<server::SegmentServer>(aopts);
  a->set_node_identity("a", "a");
  aproxy.set_server(a.get());

  server::SegmentServer::Options bopts;
  bopts.checkpoint_dir = (dir / "b").string();
  bopts.wal_sync = WriteAheadLog::Sync::kCommit;
  bopts.replicator = brepl;
  bopts.peer_dial = dial;
  b = std::make_unique<server::SegmentServer>(bopts);
  b->set_node_identity("b", "b");

  SegmentDirectory::Options dopts;
  dopts.replicas = 1;
  SegmentDirectory directory(dopts, dial);
  directory.add_node("a", "a");
  directory.add_node("b", "b");
  directory.set_placement(kUrl, {"a", "b"});

  Client::Options copts;
  copts.reconnect.initial_backoff_ms = 1;
  copts.reconnect.max_backoff_ms = 8;
  copts.reconnect.max_call_retries = 10;
  auto connector = server::make_failover_connector(directory, kUrl, dial);
  Client client([connector](const std::string&) { return connector(); },
                copts);
  ClientSegment* seg = client.open_segment(kUrl);
  Model model;
  for (int i = 0; i < 3; ++i) {
    std::string name = "k" + std::to_string(i);
    model[name] = step_values(31, i);
    put_block(client, seg, name, model[name]);
  }

  // Partition: clients and the directory lose a; the directory promotes b.
  aproxy.set_server(nullptr);
  SegmentDirectory::Placement p = directory.resolve_for_failover(kUrl, 1);
  EXPECT_EQ(p.epoch, 2u);
  ASSERT_FALSE(p.nodes.empty());
  EXPECT_EQ(p.nodes.front(), "b");

  // The partition heals: a is back, alive and still believing it is the
  // primary — until its own commit is refused by its replica.
  aproxy.set_server(a.get());
  {
    // A single-attempt client: its connector only ever reaches the deposed
    // server, so a stale-epoch replay would just re-fail — surface the
    // fence instead. The doomed commit still lands in a's journal before
    // the replicate is refused: that is the divergent suffix below.
    Client::Options dopts2;
    dopts2.reconnect.max_call_retries = 1;
    Client direct(
        [&aproxy](const std::string&) {
          return std::make_shared<InProcChannel>(aproxy);
        },
        dopts2);
    ClientSegment* dseg = direct.open_segment(kUrl);
    try {
      put_block(direct, dseg, "doomed", step_values(31, 99));
      FAIL() << "deposed primary acked a commit";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kStaleEpoch) << e.what();
    }
  }
  EXPECT_TRUE(arepl->fenced(kUrl));
  EXPECT_GE(arepl->stats().stale_epoch_fences, 1u);
  EXPECT_GE(b->stats().repl_stale_rejected, 1u);

  // The failover client reconnects, re-resolves, and lands on b.
  for (int i = 0; i < 2; ++i) {
    std::string name = "n" + std::to_string(i);
    std::vector<int32_t> values = step_values(31, 10 + i);
    for (int attempt = 0;; ++attempt) {
      try {
        put_block(client, seg, name, values);
        break;
      } catch (const Error& e) {
        ASSERT_LT(attempt, 10) << e.what();
      }
    }
    model[name] = values;
  }
  EXPECT_GE(client.stats().reconnects, 1u);

  // Repair recruits the deposed server back as b's replica: its divergent
  // journal suffix (the fenced "doomed" commit) is discarded by the
  // re-base, and it adopts the promoted lineage.
  server::ReplicationRepairer repairer(directory);
  EXPECT_EQ(repairer.tick(), 0u);
  EXPECT_EQ(a->segment_lineage_epoch(kUrl), 2u);
  EXPECT_EQ(a->stats().backfills_completed, 1u);
  ASSERT_EQ(brepl->stats().links.size(), 1u);
  EXPECT_FALSE(brepl->stats().links[0].paused);

  // New commits on b are now gated on the rejoined replica's ack.
  model["after"] = step_values(31, 20);
  put_block(client, seg, "after", model["after"]);
  EXPECT_EQ(a->segment_version(kUrl), b->segment_version(kUrl));

  EXPECT_EQ(snapshot_of(client, seg), model);
  {
    Client reader([&aproxy](const std::string&) {
      return std::make_shared<InProcChannel>(aproxy);
    });
    EXPECT_EQ(snapshot_of(reader, reader.open_segment(kUrl)), model)
        << "the rejoined replica must not retain its divergence";
  }

  arepl->shutdown();
  brepl->shutdown();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace iw
