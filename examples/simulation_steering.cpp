// On-line visualization and steering of a running simulation — the
// Astroflow pattern of the paper's §4.5.
//
// A heat-diffusion stencil simulation (standing in for the Fortran fluid
// code) publishes its frames in an InterWeave segment; a visualization
// client maps the segment under Temporal coherence, rendering at its own
// rate while the simulator runs flat out, and *steers* the simulation by
// writing control parameters into a second shared segment. No file dumps,
// no hand-rolled messaging — exactly the change InterWeave enabled for
// Astroflow.
//
//   $ ./simulation_steering [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "interweave/interweave.hpp"

namespace {

constexpr uint32_t kGrid = 64;

struct Frame {
  int32_t step;
  double grid[kGrid][kGrid];
};

struct Controls {
  double source_temperature;
  int32_t paused;
};

const iw::TypeDescriptor* frame_type(iw::Client& c) {
  return c.types().struct_builder("frame")
      .field("step", c.types().primitive(iw::PrimitiveKind::kInt32))
      .field("grid", c.types().array_of(
                         c.types().primitive(iw::PrimitiveKind::kFloat64),
                         kGrid * kGrid))
      .finish();
}

const iw::TypeDescriptor* controls_type(iw::Client& c) {
  return c.types().struct_builder("controls")
      .field("source_temperature",
             c.types().primitive(iw::PrimitiveKind::kFloat64))
      .field("paused", c.types().primitive(iw::PrimitiveKind::kInt32))
      .finish();
}

void render(const Frame& frame) {
  // Coarse ASCII rendering of the temperature field.
  static const char* shades = " .:-=+*#%@";
  std::printf("step %5d\n", frame.step);
  for (uint32_t y = 0; y < kGrid; y += 8) {
    std::printf("  ");
    for (uint32_t x = 0; x < kGrid; x += 2) {
      double v = frame.grid[y][x];
      int shade = static_cast<int>(std::fmin(9.0, std::fmax(0.0, v / 10.0)));
      std::putchar(shades[shade]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  int steps = argc > 1 ? std::atoi(argv[1]) : 200;

  iw::SegmentServer server;
  auto factory = [&](const std::string&) {
    return std::make_shared<iw::InProcChannel>(server);
  };

  // --- Simulator -------------------------------------------------------
  iw::Client sim(factory);
  iw::ClientSegment* frames = sim.open_segment("sim/frames");
  iw::ClientSegment* controls_seg = sim.open_segment("sim/controls");

  sim.write_lock(frames);
  auto* frame = static_cast<Frame*>(
      sim.malloc_block(frames, frame_type(sim), "frame"));
  frame->step = 0;
  sim.write_unlock(frames);

  sim.write_lock(controls_seg);
  auto* controls = static_cast<Controls*>(
      sim.malloc_block(controls_seg, controls_type(sim), "controls"));
  controls->source_temperature = 100.0;
  controls->paused = 0;
  sim.write_unlock(controls_seg);

  // --- Visualization / steering client ---------------------------------
  iw::Client viz(factory);
  iw::ClientSegment* viz_frames = viz.open_segment("sim/frames");
  // The front end controls its update rate purely by the coherence bound —
  // here: a frame older than 30 ms is stale (paper: "the visualization
  // front end can control the frequency of updates ... simply by
  // specifying a temporal bound").
  viz.set_coherence(viz_frames, iw::CoherencePolicy::temporal(30));
  iw::ClientSegment* viz_controls = viz.open_segment("sim/controls");

  double local[kGrid][kGrid] = {};
  for (int step = 1; step <= steps; ++step) {
    // Check steering input (cheap: controls segment rarely changes).
    sim.read_lock(controls_seg);
    double source = controls->source_temperature;
    bool paused = controls->paused != 0;
    sim.read_unlock(controls_seg);
    if (paused) continue;

    // One diffusion step with a hot source in the corner.
    local[8][8] = source;
    static double next[kGrid][kGrid];
    for (uint32_t y = 1; y + 1 < kGrid; ++y) {
      for (uint32_t x = 1; x + 1 < kGrid; ++x) {
        next[y][x] = 0.2 * (local[y][x] + local[y - 1][x] + local[y + 1][x] +
                            local[y][x - 1] + local[y][x + 1]);
      }
    }
    std::memcpy(local, next, sizeof local);

    // Publish the frame.
    sim.write_lock(frames);
    frame->step = step;
    std::memcpy(frame->grid, local, sizeof local);
    sim.write_unlock(frames);

    // The "remote" visualizer polls at its own pace.
    if (step % 50 == 0) {
      viz.read_lock(viz_frames);
      auto* vf = reinterpret_cast<const Frame*>(
          viz_frames->heap().find_by_name("frame")->data());
      render(*vf);
      viz.read_unlock(viz_frames);
    }

    // Steering: halfway through, the viewer cranks up the heat source.
    if (step == steps / 2) {
      viz.write_lock(viz_controls);
      auto* vc = reinterpret_cast<Controls*>(const_cast<uint8_t*>(
          viz_controls->heap().find_by_name("controls")->data()));
      vc->source_temperature = 400.0;
      viz.write_unlock(viz_controls);
      std::printf("  [viewer steered source to 400 degrees]\n");
    }
  }

  std::printf(
      "simulator sent %.2f MB; visualizer received %.2f MB "
      "(temporal bound avoided %llu of %llu fetches)\n",
      static_cast<double>(sim.bytes_sent()) / 1e6,
      static_cast<double>(viz.bytes_received()) / 1e6,
      static_cast<unsigned long long>(viz.stats().read_lock_local_hits),
      static_cast<unsigned long long>(viz.stats().read_lock_local_hits +
                                      viz.stats().read_lock_server_calls));
  return 0;
}
