// Collaborative whiteboard over TCP — the CSCW workload the paper's "mix"
// shape models, run across real sockets.
//
// An InterWeave server listens on a TCP port; several "users" (clients in
// this process, but connected through genuine sockets and the full wire
// protocol) take turns adding strokes to a shared drawing. The drawing is a
// pointer-linked list of stroke records containing integers, doubles,
// strings and pointers — exercising every primitive kind over the wire.
//
//   $ ./whiteboard [users] [strokes-each]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "interweave/interweave.hpp"

namespace {

struct Stroke {
  int32_t color;
  double x0, y0, x1, y1;
  char author[16];
  Stroke* prev;  // strokes form a LIFO chain from "latest"
};

struct Board {
  int32_t stroke_count;
  Stroke* latest;
};

const iw::TypeDescriptor* stroke_type(iw::Client& c) {
  return c.types().struct_builder("stroke")
      .field("color", c.types().primitive(iw::PrimitiveKind::kInt32))
      .field("x0", c.types().primitive(iw::PrimitiveKind::kFloat64))
      .field("y0", c.types().primitive(iw::PrimitiveKind::kFloat64))
      .field("x1", c.types().primitive(iw::PrimitiveKind::kFloat64))
      .field("y1", c.types().primitive(iw::PrimitiveKind::kFloat64))
      .field("author", c.types().string_type(16))
      .self_pointer_field("prev")
      .finish();
}

const iw::TypeDescriptor* board_type(iw::Client& c,
                                     const iw::TypeDescriptor* stroke) {
  return c.types().struct_builder("board")
      .field("stroke_count", c.types().primitive(iw::PrimitiveKind::kInt32))
      .field("latest", c.types().pointer_to(stroke))
      .finish();
}

}  // namespace

int main(int argc, char** argv) {
  int users = argc > 1 ? std::atoi(argv[1]) : 3;
  int strokes_each = argc > 2 ? std::atoi(argv[2]) : 5;

  iw::SegmentServer core;
  iw::TcpServer server(core, 0);  // ephemeral port
  uint16_t port = server.port();
  std::printf("server listening on 127.0.0.1:%u\n", port);

  auto factory = [port](const std::string&) {
    return std::make_shared<iw::TcpClientChannel>(port);
  };

  // First user creates the board.
  std::vector<std::unique_ptr<iw::Client>> clients;
  for (int u = 0; u < users; ++u) {
    clients.push_back(std::make_unique<iw::Client>(factory));
  }
  {
    iw::Client& c = *clients[0];
    const iw::TypeDescriptor* stroke = stroke_type(c);
    iw::ClientSegment* seg = c.open_segment("wb/main");
    c.write_lock(seg);
    auto* board =
        static_cast<Board*>(c.malloc_block(seg, board_type(c, stroke), "board"));
    board->stroke_count = 0;
    board->latest = nullptr;
    c.write_unlock(seg);
  }

  // Users take turns drawing.
  for (int round = 0; round < strokes_each; ++round) {
    for (int u = 0; u < users; ++u) {
      iw::Client& c = *clients[u];
      const iw::TypeDescriptor* stroke = stroke_type(c);
      iw::ClientSegment* seg = c.open_segment("wb/main");
      c.write_lock(seg);
      auto* board = reinterpret_cast<Board*>(const_cast<uint8_t*>(
          seg->heap().find_by_name("board")->data()));
      auto* s = static_cast<Stroke*>(c.malloc_block(seg, stroke));
      s->color = u;
      s->x0 = round;
      s->y0 = u;
      s->x1 = round + 0.5;
      s->y1 = u + 0.5;
      std::snprintf(s->author, sizeof s->author, "user-%d", u);
      s->prev = board->latest;
      board->latest = s;
      board->stroke_count++;
      c.write_unlock(seg);
    }
  }

  // Every user renders the final board from its own cached copy.
  for (int u = 0; u < users; ++u) {
    iw::Client& c = *clients[u];
    iw::ClientSegment* seg = c.open_segment("wb/main");
    c.read_lock(seg);
    auto* board = reinterpret_cast<const Board*>(
        seg->heap().find_by_name("board")->data());
    int chained = 0;
    for (Stroke* s = board->latest; s != nullptr; s = s->prev) ++chained;
    std::printf(
        "user-%d sees %d strokes (%d by chain), latest by %s, rx %.1f KB\n",
        u, board->stroke_count, chained,
        board->latest ? board->latest->author : "(none)",
        static_cast<double>(c.bytes_received()) / 1e3);
    c.read_unlock(seg);
  }
  return 0;
}
