// Quickstart: the paper's Figure-1 shared linked list, runnable end to end.
//
// Starts an InterWeave server in-process, connects two clients (think two
// machines), and shows the full API surface: IDL type registration, segment
// open, reader/writer locks, IW_malloc, MIP bootstrap, and transparent
// pointer use.
//
//   $ ./quickstart
#include <cstdio>

#include "interweave/interweave.hpp"

// The shared type, exactly as the IDL compiler would emit it for
//   struct node_t { int key; node_t *next; };
struct node_t {
  int32_t key;
  node_t* next;
};

int main() {
  // --- Server (normally its own process; see examples/tcp options) ---
  iw::SegmentServer server;

  // --- Client A: builds the list -------------------------------------
  iw::Client alice([&](const std::string&) {
    return std::make_shared<iw::InProcChannel>(server);
  });
  IW_init(&alice);

  // Register the node type (the IDL path works too; see shared_mining).
  const iw::TypeDescriptor* node_type =
      alice.types().struct_builder("node_t")
          .field("key", alice.types().primitive(iw::PrimitiveKind::kInt32))
          .self_pointer_field("next")
          .finish();

  IW_handle_t h = IW_open_segment("host/list");

  // list_init + a few list_insert calls, as in the paper.
  IW_wl_acquire(h);
  auto* head = static_cast<node_t*>(IW_malloc(h, node_type, "head"));
  head->key = -1;  // unused header node
  head->next = nullptr;
  for (int key : {3, 1, 4, 1, 5, 9}) {
    auto* p = static_cast<node_t*>(IW_malloc(h, node_type));
    p->key = key;
    p->next = head->next;
    head->next = p;
  }
  IW_wl_release(h);
  std::printf("alice built the list (segment version %u)\n", h->version());

  // --- Client B: maps the same segment and searches it ----------------
  iw::Client bob([&](const std::string&) {
    return std::make_shared<iw::InProcChannel>(server);
  });
  IW_init(&bob);
  IW_handle_t h2 = IW_open_segment("host/list");

  IW_rl_acquire(h2);
  // Bootstrap through a machine-independent pointer, then use ordinary
  // pointer chasing — this is the whole point of InterWeave.
  auto* bob_head = static_cast<node_t*>(IW_mip_to_ptr("host/list#head#0"));
  std::printf("bob reads:");
  for (node_t* p = bob_head->next; p != nullptr; p = p->next) {
    std::printf(" %d", p->key);
  }
  std::printf("\n");
  IW_rl_release(h2);

  // --- Bob inserts; Alice observes -----------------------------------
  IW_wl_acquire(h2);
  auto* p = static_cast<node_t*>(IW_malloc(h2, node_type));
  p->key = 42;
  p->next = bob_head->next;
  bob_head->next = p;
  IW_wl_release(h2);

  IW_init(&alice);
  IW_rl_acquire(h);
  std::printf("alice reads:");
  for (node_t* q = head->next; q != nullptr; q = q->next) {
    std::printf(" %d", q->key);
  }
  std::printf("\n");
  IW_rl_release(h);

  // MIPs round-trip through strings, files, or RPC arguments. (p is an
  // address in bob's cache, so it is bob who can name it.)
  std::printf("MIP of bob's node: %s\n", bob.ptr_to_mip(p).c_str());
  return 0;
}
