// Incremental datamining over shared state (the paper's §4.4 application).
//
// A "database server" process incrementally mines a synthetic Quest retail
// database and publishes a lattice of frequent item sequences in an
// InterWeave segment. A "mining client" maps the same segment under a
// relaxed (Delta) coherence model and answers queries from its cached copy,
// refreshing only when its copy drifts too far.
//
//   $ ./shared_mining [customers] [rounds]
#include <cstdio>
#include <cstdlib>

#include "interweave/interweave.hpp"
#include "mining/lattice.hpp"
#include "mining/quest.hpp"

int main(int argc, char** argv) {
  uint32_t customers = argc > 1 ? std::atoi(argv[1]) : 10000;
  uint32_t rounds = argc > 2 ? std::atoi(argv[2]) : 10;

  iw::SegmentServer server;
  auto factory = [&](const std::string&) {
    return std::make_shared<iw::InProcChannel>(server);
  };

  // Database-server side.
  iw::mining::QuestConfig qc;
  qc.customers = customers;
  iw::mining::QuestGenerator db(qc);
  iw::Client db_client(factory);
  iw::mining::LatticeWriter::Options wopts;
  wopts.min_support = std::max<uint32_t>(5, customers / 1000);
  iw::mining::LatticeWriter lattice(db_client, "mine/retail", qc.items, wopts);

  // Mining-client side: tolerate being up to 2 versions stale.
  iw::Client mine_client(factory);
  iw::mining::LatticeReader queries(mine_client, "mine/retail");
  mine_client.set_coherence(queries.segment(),
                            iw::CoherencePolicy::delta(2));

  std::printf("building summary from the first %u customers...\n",
              customers / 2);
  lattice.mine_customers(db, 0, customers / 2);
  queries.refresh();
  std::printf("lattice: %u sequences (>= %u occurrences)\n",
              queries.node_count(), wopts.min_support);

  uint32_t step = std::max<uint32_t>(1, customers / 100);
  for (uint32_t round = 1; round <= rounds; ++round) {
    uint32_t from = customers / 2 + (round - 1) * step;
    lattice.mine_customers(db, from, std::min(from + step, customers));
    queries.refresh();  // may be a no-op under delta-2

    if (round % 5 == 0 || round == rounds) {
      std::printf("\nafter %u increments (client copy v%u, server v%u):\n",
                  round, queries.segment()->version(),
                  server.segment_version("mine/retail"));
      auto top = queries.top_sequences(5, 2);
      for (const auto& r : top) {
        std::printf("  items %4d -> %4d   support %d\n", r.items[0],
                    r.items[1], r.support);
      }
    }
  }

  std::printf("\nbandwidth: mining client received %.2f MB total\n",
              static_cast<double>(mine_client.bytes_received()) / 1e6);
  std::printf("server round trips avoided by coherence: %llu of %llu reads\n",
              static_cast<unsigned long long>(
                  mine_client.stats().read_lock_local_hits),
              static_cast<unsigned long long>(
                  mine_client.stats().read_lock_local_hits +
                  mine_client.stats().read_lock_server_calls));
  return 0;
}
