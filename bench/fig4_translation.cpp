// Figure 4: client cost to translate 1 MB of data, for nine data shapes.
//
// Series (one benchmark per shape each):
//   RPC_XDR_collect / RPC_XDR_apply — rpcgen-style marshal / unmarshal
//   IW_collect_block / IW_apply_block — InterWeave no-diff mode
//   IW_collect_diff  / IW_apply_diff  — InterWeave with twins + diffing
//   IW_server_apply / IW_server_collect — server-side costs (§4.1 text)
//
// Times are phase-isolated via the library's instrumentation counters
// (manual time), so transport and untimed mutation are excluded — matching
// what the paper measures. Shape to expect: block mode beats RPC by ~25%
// on average; diff mode is comparable to RPC; RPC is disproportionately bad
// on pointer and small_string (per-element deep copies and strlen/padding).
#include <benchmark/benchmark.h>

#include "interweave/interweave.hpp"
#include "shapes.hpp"

namespace iw::bench {
namespace {

using client::TrackingMode;

/// Everything needed to run one shape against a live server.
struct IwRig {
  explicit IwRig(const Shape& shape, TrackingMode mode)
      : writer_options(make_options(mode)),
        reader_options(make_options(TrackingMode::kAuto)),
        writer(
            [this](const std::string&) {
              return std::make_shared<InProcChannel>(server);
            },
            writer_options),
        reader(
            [this](const std::string&) {
              return std::make_shared<InProcChannel>(server);
            },
            reader_options) {
    const TypeDescriptor* type = shape.type(writer.types());
    seg_w = writer.open_segment("bench/" + shape.name);
    writer.write_lock(seg_w);
    // Pointer-bearing shapes need a target block to point at.
    const TypeDescriptor* int_t = writer.types().primitive(PrimitiveKind::kInt32);
    targets = static_cast<int32_t*>(writer.malloc_block(
        seg_w, writer.types().array_of(int_t, kTargets), "targets"));
    for (uint32_t i = 0; i < kTargets; ++i) targets[i] = static_cast<int32_t>(i);
    base = static_cast<uint8_t*>(writer.malloc_block(seg_w, type, "data"));
    fill = make_fill(shape);
    fill(base, 0);
    writer.write_unlock(seg_w);

    seg_r = reader.open_segment("bench/" + shape.name);
    reader.read_lock(seg_r);
    reader.read_unlock(seg_r);
  }

  static client::Client::Options make_options(TrackingMode mode) {
    client::Client::Options options;
    options.tracking = mode;
    return options;
  }

  /// Shape fills that involve pointers are bound to this rig's targets.
  std::function<void(uint8_t*, uint64_t)> make_fill(const Shape& shape) {
    if (shape.fill != nullptr) return shape.fill;
    int32_t* t = targets;
    if (shape.name == "pointer") {
      return [t](uint8_t* b, uint64_t salt) {
        auto** p = reinterpret_cast<int32_t**>(b);
        for (uint64_t i = 0; i < 131072; ++i) {
          p[i] = t + (i + salt) % kTargets;
        }
      };
    }
    return [t](uint8_t* b, uint64_t salt) {  // mix
      auto* m = reinterpret_cast<detail::Mix*>(b);
      for (uint64_t i = 0; i < 10922; ++i) {
        m[i].i = static_cast<int32_t>(i + salt);
        m[i].d = static_cast<double>(i) + 0.5 * static_cast<double>(salt);
        detail::fill_string(m[i].s, sizeof m[i].s, 63, salt + i);
        detail::fill_string(m[i].ss, sizeof m[i].ss, 3, salt + i);
        m[i].p = t + (i + salt) % kTargets;
      }
    };
  }

  static constexpr uint32_t kTargets = 1024;

  server::SegmentServer server;
  client::Client::Options writer_options;
  client::Client::Options reader_options;
  Client writer;
  Client reader;
  ClientSegment* seg_w = nullptr;
  ClientSegment* seg_r = nullptr;
  int32_t* targets = nullptr;
  uint8_t* base = nullptr;
  std::function<void(uint8_t*, uint64_t)> fill;
};

/// Plain-memory setup for the RPC baseline (deep-copy targets included).
struct RpcRig {
  explicit RpcRig(const Shape& shape)
      : storage(kShapeBytes + 64), targets(1024) {
    base = storage.data();
    for (size_t i = 0; i < targets.size(); ++i) {
      targets[i] = static_cast<int32_t>(i);
    }
    if (shape.fill != nullptr) {
      fill = shape.fill;
    } else if (shape.name == "pointer") {
      int32_t* t = targets.data();
      fill = [t](uint8_t* b, uint64_t salt) {
        auto** p = reinterpret_cast<int32_t**>(b);
        for (uint64_t i = 0; i < 131072; ++i) p[i] = t + (i + salt) % 1024;
      };
    } else {
      int32_t* t = targets.data();
      fill = [t](uint8_t* b, uint64_t salt) {
        auto* m = reinterpret_cast<detail::Mix*>(b);
        for (uint64_t i = 0; i < 10922; ++i) {
          m[i].i = static_cast<int32_t>(i + salt);
          m[i].d = static_cast<double>(i);
          detail::fill_string(m[i].s, sizeof m[i].s, 63, salt + i);
          detail::fill_string(m[i].ss, sizeof m[i].ss, 3, salt + i);
          m[i].p = t + (i + salt) % 1024;
        }
      };
    }
    fill(base, 0);
  }
  std::vector<uint8_t> storage;
  std::vector<int32_t> targets;
  uint8_t* base;
  std::function<void(uint8_t*, uint64_t)> fill;
};

void bm_rpc_collect(benchmark::State& state, Shape shape) {
  RpcRig rig(shape);
  for (auto _ : state) {
    Buffer out(kShapeBytes + kShapeBytes / 2);
    rpc::Xdr xdr(out);
    bool ok = shape.xdr(xdr, rig.base);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kShapeBytes);
}

void bm_rpc_apply(benchmark::State& state, Shape shape) {
  RpcRig rig(shape);
  Buffer wire(kShapeBytes * 2);
  {
    rpc::Xdr enc(wire);
    if (!shape.xdr(enc, rig.base)) {
      state.SkipWithError("encode failed");
      return;
    }
  }
  for (auto _ : state) {
    BufReader r(wire.span());
    rpc::Xdr dec(r);
    bool ok = shape.xdr(dec, rig.base);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kShapeBytes);
}

void bm_iw_collect(benchmark::State& state, Shape shape, TrackingMode mode) {
  IwRig rig(shape, mode);
  uint64_t salt = 1;
  for (auto _ : state) {
    rig.writer.write_lock(rig.seg_w);
    rig.fill(rig.base, salt++);
    uint64_t before = rig.writer.stats().collect_ns;
    rig.writer.write_unlock(rig.seg_w);
    state.SetIterationTime(
        static_cast<double>(rig.writer.stats().collect_ns - before) * 1e-9);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kShapeBytes);
}

void bm_iw_apply(benchmark::State& state, Shape shape, TrackingMode mode) {
  IwRig rig(shape, mode);
  uint64_t salt = 1;
  for (auto _ : state) {
    rig.writer.write_lock(rig.seg_w);
    rig.fill(rig.base, salt++);
    rig.writer.write_unlock(rig.seg_w);
    uint64_t before = rig.reader.stats().apply_ns;
    rig.reader.read_lock(rig.seg_r);
    rig.reader.read_unlock(rig.seg_r);
    state.SetIterationTime(
        static_cast<double>(rig.reader.stats().apply_ns - before) * 1e-9);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kShapeBytes);
}

void bm_server_apply(benchmark::State& state, Shape shape) {
  IwRig rig(shape, TrackingMode::kNoDiff);
  uint64_t salt = 1;
  for (auto _ : state) {
    rig.writer.write_lock(rig.seg_w);
    rig.fill(rig.base, salt++);
    uint64_t before =
        rig.server.segment_stats("bench/" + shape.name).apply_ns;
    rig.writer.write_unlock(rig.seg_w);
    state.SetIterationTime(
        static_cast<double>(
            rig.server.segment_stats("bench/" + shape.name).apply_ns -
            before) *
        1e-9);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kShapeBytes);
}

void bm_server_collect(benchmark::State& state, Shape shape) {
  // Diff cache off so the server actually rebuilds the diff per request.
  server::SegmentServer::Options so;
  so.store.enable_diff_cache = false;
  server::SegmentServer server(so);
  client::Client::Options wo;
  wo.tracking = TrackingMode::kNoDiff;
  Client writer(
      [&](const std::string&) { return std::make_shared<InProcChannel>(server); },
      wo);
  const TypeDescriptor* type = shape.type(writer.types());
  ClientSegment* seg = writer.open_segment("bench/" + shape.name);
  writer.write_lock(seg);
  const TypeDescriptor* int_t = writer.types().primitive(PrimitiveKind::kInt32);
  auto* targets = static_cast<int32_t*>(writer.malloc_block(
      seg, writer.types().array_of(int_t, IwRig::kTargets), "targets"));
  auto* base = static_cast<uint8_t*>(writer.malloc_block(seg, type, "data"));
  IwRig* dummy = nullptr;
  (void)dummy;
  std::function<void(uint8_t*, uint64_t)> fill;
  if (shape.fill) {
    fill = shape.fill;
  } else if (shape.name == "pointer") {
    fill = [targets](uint8_t* b, uint64_t salt) {
      auto** p = reinterpret_cast<int32_t**>(b);
      for (uint64_t i = 0; i < 131072; ++i) {
        p[i] = targets + (i + salt) % IwRig::kTargets;
      }
    };
  } else {
    fill = [targets](uint8_t* b, uint64_t salt) {
      auto* m = reinterpret_cast<detail::Mix*>(b);
      for (uint64_t i = 0; i < 10922; ++i) {
        m[i].i = static_cast<int32_t>(i + salt);
        m[i].d = static_cast<double>(i);
        detail::fill_string(m[i].s, sizeof m[i].s, 63, salt + i);
        detail::fill_string(m[i].ss, sizeof m[i].ss, 3, salt + i);
        m[i].p = targets + (i + salt) % IwRig::kTargets;
      }
    };
  }
  fill(base, 0);
  writer.write_unlock(seg);

  // Fresh reader per iteration forces a from-0 full collection.
  for (auto _ : state) {
    Client reader([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    });
    ClientSegment* rs = reader.open_segment("bench/" + shape.name);
    uint64_t before = server.segment_stats("bench/" + shape.name).collect_ns;
    reader.read_lock(rs);
    reader.read_unlock(rs);
    state.SetIterationTime(
        static_cast<double>(
            server.segment_stats("bench/" + shape.name).collect_ns - before) *
        1e-9);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kShapeBytes);
}

void register_all() {
  // The installed google-benchmark takes const char* names; it copies them.
  auto reg = [](const std::string& name, auto fn, auto... args) {
    // Keep default runs quick: per-iteration work is large (1 MB), so a
    // short measuring window is already stable.
    return benchmark::RegisterBenchmark(name.c_str(), fn, args...)
        ->MinTime(0.05);
  };
  for (const Shape& shape : make_shapes()) {
    reg("fig4/RPC_XDR_collect/" + shape.name, bm_rpc_collect, shape);
    reg("fig4/RPC_XDR_apply/" + shape.name, bm_rpc_apply, shape);
    reg("fig4/IW_collect_block/" + shape.name, bm_iw_collect, shape,
        TrackingMode::kNoDiff)
        ->UseManualTime();
    reg("fig4/IW_collect_diff/" + shape.name, bm_iw_collect, shape,
        TrackingMode::kVmDiff)
        ->UseManualTime();
    reg("fig4/IW_apply_block/" + shape.name, bm_iw_apply, shape,
        TrackingMode::kNoDiff)
        ->UseManualTime();
    reg("fig4/IW_apply_diff/" + shape.name, bm_iw_apply, shape,
        TrackingMode::kVmDiff)
        ->UseManualTime();
    reg("fig4/IW_server_apply/" + shape.name, bm_server_apply, shape)
        ->UseManualTime();
    reg("fig4/IW_server_collect/" + shape.name, bm_server_collect, shape)
        ->UseManualTime();
  }
}

}  // namespace
}  // namespace iw::bench

int main(int argc, char** argv) {
  iw::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
