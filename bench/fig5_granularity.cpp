// Figure 5: diff management cost as a function of modification granularity.
//
// A 1 MB int-array segment; the writer modifies every N-th word (N = the
// change ratio, swept over powers of two from 1 to 16384) and releases the
// write lock; a Full-coherence reader then fetches the update. Six curves,
// phase-isolated exactly as in the paper:
//
//   client_collect_diff — twins + word diffing + translation (writer)
//   client_word_diffing — the word-by-word page comparison alone
//   client_translation  — wire-format conversion alone
//   server_apply_diff   — server applying the writer's diff
//   server_collect_diff — server building the reader's update
//   client_apply_diff   — reader applying that update
//
// Expected shape: a knee in word diffing at ratio 1024 (one modified word
// per 4 KiB page); flat server-collect/client-apply for ratios 1..16 (the
// 16-unit subblocks blur fine-grained changes); a jump in collect and
// apply between ratios 2 and 4 where run splicing is lost.
#include <benchmark/benchmark.h>

#include "interweave/interweave.hpp"

namespace iw::bench {
namespace {

using client::TrackingMode;

constexpr uint64_t kWords = 262144;  // 1 MB of int32

struct Rig {
  Rig() : server(server_options()),
          writer(factory(), writer_options()),
          reader(factory(), {}) {
    const TypeDescriptor* arr = writer.types().array_of(
        writer.types().primitive(PrimitiveKind::kInt32),
        kWords);
    seg_w = writer.open_segment("bench/fig5");
    writer.write_lock(seg_w);
    data = static_cast<int32_t*>(writer.malloc_block(seg_w, arr, "a"));
    for (uint64_t i = 0; i < kWords; ++i) data[i] = static_cast<int32_t>(i);
    writer.write_unlock(seg_w);
    seg_r = reader.open_segment("bench/fig5");
    reader.read_lock(seg_r);
    reader.read_unlock(seg_r);
  }

  static server::SegmentServer::Options server_options() {
    server::SegmentServer::Options options;
    // The server must really build the reader's diff from subblock state.
    options.store.enable_diff_cache = false;
    return options;
  }
  static client::Client::Options writer_options() {
    client::Client::Options options;
    options.tracking = TrackingMode::kVmDiff;
    return options;
  }
  Client::ChannelFactory factory() {
    return [this](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    };
  }

  /// One write critical section touching every `ratio`-th word, then one
  /// reader refresh. Returns nothing; phase counters accumulate.
  void round(uint64_t ratio, uint64_t salt) {
    writer.write_lock(seg_w);
    for (uint64_t i = 0; i < kWords; i += ratio) {
      data[i] = static_cast<int32_t>(i + salt);
    }
    writer.write_unlock(seg_w);
    reader.read_lock(seg_r);
    reader.read_unlock(seg_r);
  }

  server::SegmentServer server;
  Client writer;
  Client reader;
  ClientSegment* seg_w = nullptr;
  ClientSegment* seg_r = nullptr;
  int32_t* data = nullptr;
};

enum class Curve {
  kClientCollect,
  kClientWordDiff,
  kClientTranslate,
  kServerApply,
  kServerCollect,
  kClientApply,
};

uint64_t read_counter(Rig& rig, Curve curve) {
  switch (curve) {
    case Curve::kClientCollect: return rig.writer.stats().collect_ns;
    case Curve::kClientWordDiff: return rig.writer.stats().word_diff_ns;
    case Curve::kClientTranslate: return rig.writer.stats().translate_ns;
    case Curve::kServerApply:
      return rig.server.segment_stats("bench/fig5").apply_ns;
    case Curve::kServerCollect:
      return rig.server.segment_stats("bench/fig5").collect_ns;
    case Curve::kClientApply: return rig.reader.stats().apply_ns;
  }
  return 0;
}

void bm_fig5(benchmark::State& state, Curve curve) {
  static Rig* rig = new Rig();  // shared across curves; state is reset by
                                // each full-modification round anyway
  uint64_t ratio = static_cast<uint64_t>(state.range(0));
  uint64_t salt = 1;
  for (auto _ : state) {
    uint64_t before = read_counter(*rig, curve);
    rig->round(ratio, salt++);
    state.SetIterationTime(
        static_cast<double>(read_counter(*rig, curve) - before) * 1e-9);
  }
  state.counters["ratio"] = static_cast<double>(ratio);
}

void register_all() {
  auto reg = [](const std::string& name, Curve curve) {
    auto* b = benchmark::RegisterBenchmark(
        name.c_str(), [curve](benchmark::State& s) { bm_fig5(s, curve); });
    b->UseManualTime()->MinTime(0.02);
    for (uint64_t ratio = 1; ratio <= 16384; ratio *= 2) {
      b->Arg(static_cast<int64_t>(ratio));
    }
  };
  reg("fig5/client_collect_diff", Curve::kClientCollect);
  reg("fig5/client_word_diffing", Curve::kClientWordDiff);
  reg("fig5/client_translation", Curve::kClientTranslate);
  reg("fig5/server_apply_diff", Curve::kServerApply);
  reg("fig5/server_collect_diff", Curve::kServerCollect);
  reg("fig5/client_apply_diff", Curve::kClientApply);
}

}  // namespace
}  // namespace iw::bench

int main(int argc, char** argv) {
  iw::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
