// The nine 1 MB data shapes of the paper's Figure 4, with both their
// InterWeave type descriptors and rpcgen-style XDR marshaling procedures.
//
//   int_array      int[262144]
//   double_array   double[131072]
//   int_struct     struct{int f0..f31}[8192]
//   double_struct  struct{double f0..f31}[4096]
//   string         string<256>[4096]
//   small_string   string<4>[262144]
//   pointer        (int*)[131072], each pointing at an int (RPC deep-copies)
//   int_double     struct{int i; double d;}[65536]
//   mix            struct{int; double; string<64>; string<4>; ptr}[10922]
//
// "1 MB" is measured in the native local format, as in the paper.
#pragma once

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "rpcbase/xdr.hpp"
#include "util/rand.hpp"

namespace iw::bench {

inline constexpr uint64_t kShapeBytes = 1 << 20;

/// One Figure-4 shape: how to build its IW type, how to fill/mutate the
/// block, and how rpcgen would marshal the same data.
struct Shape {
  std::string name;
  /// Builds the descriptor in `reg` (1 MB worth of data).
  std::function<const TypeDescriptor*(TypeRegistry&)> type;
  /// Fills the native-format block with deterministic data; `salt` varies
  /// contents between iterations so diffs are non-empty.
  std::function<void(uint8_t* base, uint64_t salt)> fill;
  /// rpcgen-equivalent marshal/unmarshal of the whole native block.
  std::function<bool(rpc::Xdr&, uint8_t* base)> xdr;
};

namespace detail {

// ---- XDR element procs (out-of-line, called through xdrproc_t, exactly
// like rpcgen output; this is what makes doubles expensive for RPC). ----

inline bool xp_int(rpc::Xdr* x, void* p) {
  return x->x_int(static_cast<int32_t*>(p));
}
inline bool xp_double(rpc::Xdr* x, void* p) {
  return x->x_double(static_cast<double*>(p));
}

struct IntStruct32 {
  int32_t f[32];
};
inline bool xp_int_struct(rpc::Xdr* x, void* p) {
  auto* s = static_cast<IntStruct32*>(p);
  for (int i = 0; i < 32; ++i) {
    if (!x->x_int(&s->f[i])) return false;
  }
  return true;
}

struct DoubleStruct32 {
  double f[32];
};
inline bool xp_double_struct(rpc::Xdr* x, void* p) {
  auto* s = static_cast<DoubleStruct32*>(p);
  for (int i = 0; i < 32; ++i) {
    if (!x->x_double(&s->f[i])) return false;
  }
  return true;
}

template <size_t N>
bool xp_string(rpc::Xdr* x, void* p) {
  return x->x_string(static_cast<char*>(p), N);
}

inline bool xp_int_ptr(rpc::Xdr* x, void* p) {
  return rpc::xdr_pointer(x, static_cast<void**>(p), sizeof(int32_t), xp_int);
}

struct IntDouble {
  int32_t i;
  double d;
};
inline bool xp_int_double(rpc::Xdr* x, void* p) {
  auto* s = static_cast<IntDouble*>(p);
  return x->x_int(&s->i) && x->x_double(&s->d);
}

struct Mix {
  int32_t i;
  double d;
  char s[64];
  char ss[4];
  int32_t* p;
};
inline bool xp_mix(rpc::Xdr* x, void* ptr) {
  auto* m = static_cast<Mix*>(ptr);
  return x->x_int(&m->i) && x->x_double(&m->d) &&
         x->x_string(m->s, sizeof m->s) && x->x_string(m->ss, sizeof m->ss) &&
         rpc::xdr_pointer(x, reinterpret_cast<void**>(&m->p), sizeof(int32_t),
                          xp_int);
}

/// Fills a NUL-terminated string of exactly `len` content chars.
inline void fill_string(char* p, uint32_t capacity, uint32_t len,
                        uint64_t salt) {
  for (uint32_t i = 0; i < len && i < capacity; ++i) {
    p[i] = static_cast<char>('a' + (i + salt) % 26);
  }
  if (len < capacity) p[len] = '\0';
}

}  // namespace detail

/// Builds all nine shapes. `pointer_pool` must outlive uses of the
/// "pointer" and "mix" shapes' XDR marshaling: it is the deep-copy target
/// array (for InterWeave the targets live in a second block instead; see
/// fig4_translation.cpp).
std::vector<Shape> make_shapes();

inline std::vector<Shape> make_shapes() {
  using detail::fill_string;
  std::vector<Shape> shapes;

  shapes.push_back(Shape{
      "int_array",
      [](TypeRegistry& reg) {
        return reg.array_of(reg.primitive(PrimitiveKind::kInt32), 262144);
      },
      [](uint8_t* base, uint64_t salt) {
        auto* p = reinterpret_cast<int32_t*>(base);
        for (uint64_t i = 0; i < 262144; ++i) {
          p[i] = static_cast<int32_t>(i + salt);
        }
      },
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 262144, 4, detail::xp_int);
      }});

  shapes.push_back(Shape{
      "double_array",
      [](TypeRegistry& reg) {
        return reg.array_of(reg.primitive(PrimitiveKind::kFloat64), 131072);
      },
      [](uint8_t* base, uint64_t salt) {
        auto* p = reinterpret_cast<double*>(base);
        for (uint64_t i = 0; i < 131072; ++i) {
          p[i] = static_cast<double>(i) * 0.5 + static_cast<double>(salt);
        }
      },
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 131072, 8, detail::xp_double);
      }});

  shapes.push_back(Shape{
      "int_struct",
      [](TypeRegistry& reg) {
        StructBuilder b = reg.struct_builder("int_struct32");
        for (int i = 0; i < 32; ++i) {
          b.field("f" + std::to_string(i), reg.primitive(PrimitiveKind::kInt32));
        }
        return reg.array_of(b.finish(), 8192);
      },
      [](uint8_t* base, uint64_t salt) {
        auto* p = reinterpret_cast<int32_t*>(base);
        for (uint64_t i = 0; i < 262144; ++i) {
          p[i] = static_cast<int32_t>(i * 3 + salt);
        }
      },
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 8192, sizeof(detail::IntStruct32),
                               detail::xp_int_struct);
      }});

  shapes.push_back(Shape{
      "double_struct",
      [](TypeRegistry& reg) {
        StructBuilder b = reg.struct_builder("double_struct32");
        for (int i = 0; i < 32; ++i) {
          b.field("f" + std::to_string(i),
                  reg.primitive(PrimitiveKind::kFloat64));
        }
        return reg.array_of(b.finish(), 4096);
      },
      [](uint8_t* base, uint64_t salt) {
        auto* p = reinterpret_cast<double*>(base);
        for (uint64_t i = 0; i < 131072; ++i) {
          p[i] = static_cast<double>(i) + 0.25 * static_cast<double>(salt);
        }
      },
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 4096, sizeof(detail::DoubleStruct32),
                               detail::xp_double_struct);
      }});

  shapes.push_back(Shape{
      "string",
      [](TypeRegistry& reg) { return reg.array_of(reg.string_type(256), 4096); },
      [](uint8_t* base, uint64_t salt) {
        for (uint64_t i = 0; i < 4096; ++i) {
          fill_string(reinterpret_cast<char*>(base) + i * 256, 256, 255,
                      salt + i);
        }
      },
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 4096, 256, detail::xp_string<256>);
      }});

  shapes.push_back(Shape{
      "small_string",
      [](TypeRegistry& reg) {
        return reg.array_of(reg.string_type(4), 262144);
      },
      [](uint8_t* base, uint64_t salt) {
        for (uint64_t i = 0; i < 262144; ++i) {
          fill_string(reinterpret_cast<char*>(base) + i * 4, 4, 3, salt + i);
        }
      },
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 262144, 4, detail::xp_string<4>);
      }});

  shapes.push_back(Shape{
      "pointer",
      [](TypeRegistry& reg) {
        return reg.array_of(
            reg.pointer_to(reg.primitive(PrimitiveKind::kInt32)), 131072);
      },
      // fill is installed by the harness: pointer targets are harness-owned
      // (an IW block for InterWeave runs, a plain array for RPC runs).
      nullptr,
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 131072, sizeof(void*),
                               detail::xp_int_ptr);
      }});

  shapes.push_back(Shape{
      "int_double",
      [](TypeRegistry& reg) {
        return reg.array_of(reg.struct_builder("int_double")
                                .field("i", reg.primitive(PrimitiveKind::kInt32))
                                .field("d", reg.primitive(PrimitiveKind::kFloat64))
                                .finish(),
                            65536);
      },
      [](uint8_t* base, uint64_t salt) {
        auto* p = reinterpret_cast<detail::IntDouble*>(base);
        for (uint64_t i = 0; i < 65536; ++i) {
          p[i].i = static_cast<int32_t>(i + salt);
          p[i].d = static_cast<double>(i) * 1.5 + static_cast<double>(salt);
        }
      },
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 65536, sizeof(detail::IntDouble),
                               detail::xp_int_double);
      }});

  shapes.push_back(Shape{
      "mix",
      [](TypeRegistry& reg) {
        return reg.array_of(
            reg.struct_builder("mix")
                .field("i", reg.primitive(PrimitiveKind::kInt32))
                .field("d", reg.primitive(PrimitiveKind::kFloat64))
                .field("s", reg.string_type(64))
                .field("ss", reg.string_type(4))
                .field("p", reg.pointer_to(reg.primitive(PrimitiveKind::kInt32)))
                .finish(),
            10922);
      },
      nullptr,  // installed by the harness (contains pointers)
      [](rpc::Xdr& x, uint8_t* base) {
        return rpc::xdr_vector(&x, base, 10922, sizeof(detail::Mix),
                               detail::xp_mix);
      }});

  return shapes;
}

}  // namespace iw::bench
