// Multi-segment server scaling: N segments × M TCP client threads doing
// lock/modify/update cycles against a live SegmentServer, reported as JSON
// (requests/sec, p50/p99 latency) at 1/2/4/8 threads.
//
// Each configuration runs twice: against the sharded server directly, and
// through a global-mutex adapter that serializes every request — the seed's
// single-`std::mutex` design — so the speedup from per-segment locking is
// recorded in the bench trajectory. Thread t works on segment t (threads ==
// segments), so the workload is embarrassingly parallel server-side and any
// shortfall is lock contention. Diffs are deliberately large (8 KiB applies,
// periodic 32 KiB from-scratch collections) so a meaningful share of each
// request's wall time is spent inside the server under the segment lock;
// that is the portion the global mutex serializes and sharding parallelizes.
//
// Aggregate throughput only scales with available cores: each row carries a
// "cores" field, and on a single-core host the two modes converge to ~1.0x
// by construction (the CPU is saturated either way; sharding then shows up
// in tail latency, not throughput).
//
// Usage: server_scaling [cycles-per-thread]   (default 2000)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "wire/coherence.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

constexpr uint32_t kUnits = 8192;     // int32 array units per block (32 KiB)
constexpr uint32_t kRunUnits = 2048;  // units modified per cycle (8 KiB)

/// The seed's concurrency model: one mutex in front of the whole server.
class GlobalLockCore final : public ServerCore {
 public:
  explicit GlobalLockCore(ServerCore& inner) : inner_(inner) {}

  void on_connect(SessionId session, Notifier notify) override {
    std::lock_guard lock(mu_);
    inner_.on_connect(session, std::move(notify));
  }
  void on_disconnect(SessionId session) override {
    std::lock_guard lock(mu_);
    inner_.on_disconnect(session);
  }
  Frame handle(SessionId session, const Frame& request) override {
    std::lock_guard lock(mu_);
    return inner_.handle(session, request);
  }

 private:
  std::mutex mu_;
  ServerCore& inner_;
};

Frame call(TcpClientChannel& ch, MsgType type,
           const std::function<void(Buffer&)>& fill) {
  Buffer payload;
  fill(payload);
  return ch.call(type, std::move(payload));
}

/// One client thread's lock/modify/update loop on its own segment.
/// Returns per-cycle latencies in nanoseconds (one cycle = AcquireWrite +
/// ReleaseWrite of an 8 KiB diff, plus a from-scratch AcquireRead every 4th
/// cycle that makes the server collect the whole 32 KiB block).
std::vector<uint64_t> client_loop(uint16_t port, int thread_id, int cycles,
                                  uint64_t* requests_out) {
  using Clock = std::chrono::steady_clock;
  std::string seg = "bench/scale" + std::to_string(thread_id);
  TcpClientChannel ch(port);
  uint64_t requests = 0;

  call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
    p.append_lp_string(seg);
    p.append_u8(1);
  });
  TypeRegistry scratch(Platform::native().rules);
  call(ch, MsgType::kRegisterType, [&](Buffer& p) {
    p.append_lp_string(seg);
    TypeCodec::encode_graph(
        scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), kUnits), p);
  });
  requests += 2;

  uint32_t version = 1;
  uint32_t serial = 0;
  std::vector<uint64_t> latencies;
  latencies.reserve(cycles);

  for (int c = 0; c < cycles; ++c) {
    auto start = Clock::now();
    Frame acq = call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
      p.append_lp_string(seg);
      p.append_u32(version);
    });
    uint32_t next_serial = acq.reader().read_u32();
    call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
      p.append_lp_string(seg);
      DiffWriter w(p, version, version + 1);
      if (serial == 0) {
        serial = next_serial;
        w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, 1, "d");
        w.begin_run(0, kUnits);
        for (uint32_t i = 0; i < kUnits; ++i) p.append_u32(c);
      } else {
        w.begin_block(serial, 0);
        uint32_t at = (static_cast<uint32_t>(c) * kRunUnits) % kUnits;
        w.begin_run(at, kRunUnits);
        for (uint32_t i = 0; i < kRunUnits; ++i) p.append_u32(c);
      }
      w.end_block();
      w.finish();
    });
    ++version;
    requests += 2;
    if (c % 4 == 0) {
      // A cold reader: assumed version 0 forces the server to collect and
      // ship the full block under the segment lock.
      call(ch, MsgType::kAcquireRead, [&](Buffer& p) {
        p.append_lp_string(seg);
        p.append_u32(0);
        p.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
        p.append_u64(0);
      });
      ++requests;
    }
    latencies.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
  }
  *requests_out = requests;
  return latencies;
}

struct RunResult {
  double requests_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

RunResult run_config(bool sharded, int threads, int cycles) {
  server::SegmentServer core;
  GlobalLockCore global(core);
  TcpServer server(sharded ? static_cast<ServerCore&>(core)
                           : static_cast<ServerCore&>(global),
                   0);

  std::vector<std::vector<uint64_t>> latencies(threads);
  std::vector<uint64_t> requests(threads, 0);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      latencies[t] = client_loop(server.port(), t, cycles, &requests[t]);
    });
  }
  for (auto& w : workers) w.join();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  server.shutdown();

  std::vector<uint64_t> all;
  uint64_t total_requests = 0;
  for (int t = 0; t < threads; ++t) {
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    total_requests += requests[t];
  }
  std::sort(all.begin(), all.end());
  auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    size_t idx = std::min(all.size() - 1,
                          static_cast<size_t>(q * static_cast<double>(
                                                      all.size())));
    return static_cast<double>(all[idx]) / 1000.0;  // ns -> us
  };
  RunResult r;
  r.requests_per_sec = static_cast<double>(total_requests) / seconds;
  r.p50_us = pct(0.50);
  r.p99_us = pct(0.99);
  return r;
}

}  // namespace
}  // namespace iw

int main(int argc, char** argv) {
  int cycles = argc > 1 ? std::atoi(argv[1]) : 2000;
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("[\n");
  bool first = true;
  for (int threads : {1, 2, 4, 8}) {
    iw::RunResult sharded = iw::run_config(true, threads, cycles);
    iw::RunResult global = iw::run_config(false, threads, cycles);
    for (bool is_sharded : {true, false}) {
      const iw::RunResult& r = is_sharded ? sharded : global;
      std::printf(
          "%s  {\"bench\": \"server_scaling\", \"mode\": \"%s\", "
          "\"threads\": %d, \"segments\": %d, \"cores\": %u, "
          "\"cycles_per_thread\": %d, \"requests_per_sec\": %.0f, "
          "\"p50_us\": %.1f, \"p99_us\": %.1f}",
          first ? "" : ",\n", is_sharded ? "sharded" : "global_lock", threads,
          threads, cores, cycles, r.requests_per_sec, r.p50_us, r.p99_us);
      first = false;
    }
    std::printf(",\n  {\"bench\": \"server_scaling\", \"threads\": %d, "
                "\"cores\": %u, \"speedup_sharded_vs_global\": %.2f}",
                threads, cores, sharded.requests_per_sec / global.requests_per_sec);
  }
  std::printf("\n]\n");
  return 0;
}
