// Multi-segment server scaling: N segments × M TCP client threads doing
// lock/modify/update cycles against a live SegmentServer, reported as JSON
// (requests/sec, p50/p99 latency) at 1/2/4/8 threads.
//
// Each configuration runs twice: against the sharded server directly, and
// through a global-mutex adapter that serializes every request — the seed's
// single-`std::mutex` design — so the speedup from per-segment locking is
// recorded in the bench trajectory. Thread t works on segment t (threads ==
// segments), so the workload is embarrassingly parallel server-side and any
// shortfall is lock contention. Diffs are deliberately large (8 KiB applies,
// periodic 32 KiB from-scratch collections) so a meaningful share of each
// request's wall time is spent inside the server under the segment lock;
// that is the portion the global mutex serializes and sharding parallelizes.
//
// Aggregate throughput only scales with available cores: each row carries a
// "cores" field, and on a single-core host the two modes converge to ~1.0x
// by construction (the CPU is saturated either way; sharding then shows up
// in tail latency, not throughput).
//
// A second mode measures connection scaling on the epoll reactor:
//
//   server_scaling --connections N [--seconds S]
//
// N concurrent connections (default 1000) against one server: a small set
// of writer channels committing to 32 shared segments, and raw-socket
// reader connections that subscribe to a segment and fire bursts of
// pipelined requests (pings plus periodic cold whole-block reads) in one
// write. Bursts exercise both halves of frame coalescing — the reactor
// decodes a burst from one recv and flushes all its responses in one
// sendmsg — and writer commits fan NotifyVersion frames into the same
// connections. Reported as JSON: requests/sec, burst round-trip p50/p99,
// connections-per-core, and frames-per-syscall from the server's reactor
// counters.
//
// A third mode measures the hot-segment read workload lock caching targets:
//
//   server_scaling --hot-read [--readers N] [--seconds S]
//
// N reader clients spin on read critical sections over one shared kFull
// segment while a writer commits every ~250 ms, run once with client-side
// lock caching on and once off. Reported as JSON: lock RPCs per critical
// section (the headline number — off pays 1.0, on amortizes one RPC across
// every CS between commits), CS/sec, CS latency p50/p99, the server's
// revocation counters, and the writer's worst-case acquire latency (bounded
// by the revocation deadline).
//
// A fourth mode measures the payload pipeline's wire direction:
//
//   server_scaling --update-bytes [--rounds N]
//
// A negotiated writer/reader pair against one in-process server: the
// writer commits a 64 KiB int array every round and the reader pulls the
// resulting update, over a {compression on/off} x {compressible/
// incompressible content} matrix. Reported as JSON: the server's raw vs
// on-the-wire update bytes (server -> client), the client's sent bytes
// and compressed-release count (client -> server), and the reduction
// ratio per cell.
//
// Usage: server_scaling [cycles-per-thread]   (default 2000)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "interweave/interweave.hpp"
#include "net/tcp.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "wire/coherence.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

constexpr uint32_t kUnits = 8192;     // int32 array units per block (32 KiB)
constexpr uint32_t kRunUnits = 2048;  // units modified per cycle (8 KiB)

/// The seed's concurrency model: one mutex in front of the whole server.
class GlobalLockCore final : public ServerCore {
 public:
  explicit GlobalLockCore(ServerCore& inner) : inner_(inner) {}

  void on_connect(SessionId session, Notifier notify) override {
    std::lock_guard lock(mu_);
    inner_.on_connect(session, std::move(notify));
  }
  void on_disconnect(SessionId session) override {
    std::lock_guard lock(mu_);
    inner_.on_disconnect(session);
  }
  Frame handle(SessionId session, const Frame& request) override {
    std::lock_guard lock(mu_);
    return inner_.handle(session, request);
  }

 private:
  std::mutex mu_;
  ServerCore& inner_;
};

Frame call(TcpClientChannel& ch, MsgType type,
           const std::function<void(Buffer&)>& fill) {
  Buffer payload;
  fill(payload);
  return ch.call(type, std::move(payload));
}

/// One client thread's lock/modify/update loop on its own segment.
/// Returns per-cycle latencies in nanoseconds (one cycle = AcquireWrite +
/// ReleaseWrite of an 8 KiB diff, plus a from-scratch AcquireRead every 4th
/// cycle that makes the server collect the whole 32 KiB block).
std::vector<uint64_t> client_loop(uint16_t port, int thread_id, int cycles,
                                  uint64_t* requests_out) {
  using Clock = std::chrono::steady_clock;
  std::string seg = "bench/scale" + std::to_string(thread_id);
  TcpClientChannel ch(port);
  uint64_t requests = 0;

  call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
    p.append_lp_string(seg);
    p.append_u8(1);
  });
  TypeRegistry scratch(Platform::native().rules);
  call(ch, MsgType::kRegisterType, [&](Buffer& p) {
    p.append_lp_string(seg);
    TypeCodec::encode_graph(
        scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), kUnits), p);
  });
  requests += 2;

  uint32_t version = 1;
  uint32_t serial = 0;
  std::vector<uint64_t> latencies;
  latencies.reserve(cycles);

  for (int c = 0; c < cycles; ++c) {
    auto start = Clock::now();
    Frame acq = call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
      p.append_lp_string(seg);
      p.append_u32(version);
    });
    uint32_t next_serial = acq.reader().read_u32();
    call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
      p.append_lp_string(seg);
      DiffWriter w(p, version, version + 1);
      if (serial == 0) {
        serial = next_serial;
        w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, 1, "d");
        w.begin_run(0, kUnits);
        for (uint32_t i = 0; i < kUnits; ++i) p.append_u32(c);
      } else {
        w.begin_block(serial, 0);
        uint32_t at = (static_cast<uint32_t>(c) * kRunUnits) % kUnits;
        w.begin_run(at, kRunUnits);
        for (uint32_t i = 0; i < kRunUnits; ++i) p.append_u32(c);
      }
      w.end_block();
      w.finish();
    });
    ++version;
    requests += 2;
    if (c % 4 == 0) {
      // A cold reader: assumed version 0 forces the server to collect and
      // ship the full block under the segment lock.
      call(ch, MsgType::kAcquireRead, [&](Buffer& p) {
        p.append_lp_string(seg);
        p.append_u32(0);
        p.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
        p.append_u64(0);
      });
      ++requests;
    }
    latencies.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
  }
  *requests_out = requests;
  return latencies;
}

struct RunResult {
  double requests_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

RunResult run_config(bool sharded, int threads, int cycles) {
  server::SegmentServer core;
  GlobalLockCore global(core);
  TcpServer server(sharded ? static_cast<ServerCore&>(core)
                           : static_cast<ServerCore&>(global),
                   0);

  std::vector<std::vector<uint64_t>> latencies(threads);
  std::vector<uint64_t> requests(threads, 0);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      latencies[t] = client_loop(server.port(), t, cycles, &requests[t]);
    });
  }
  for (auto& w : workers) w.join();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  server.shutdown();

  std::vector<uint64_t> all;
  uint64_t total_requests = 0;
  for (int t = 0; t < threads; ++t) {
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    total_requests += requests[t];
  }
  std::sort(all.begin(), all.end());
  auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    size_t idx = std::min(all.size() - 1,
                          static_cast<size_t>(q * static_cast<double>(
                                                      all.size())));
    return static_cast<double>(all[idx]) / 1000.0;  // ns -> us
  };
  RunResult r;
  r.requests_per_sec = static_cast<double>(total_requests) / seconds;
  r.p50_us = pct(0.50);
  r.p99_us = pct(0.99);
  return r;
}

// --- connection scaling over the epoll reactor ----------------------------

constexpr int kConnSegments = 32;
constexpr uint32_t kConnUnits = 256;      // int32 units per block (1 KiB)
constexpr uint32_t kConnRunUnits = 64;    // units per writer commit (256 B)
constexpr int kBurstPings = 8;            // pipelined pings per reader burst

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string conn_segment(int index) {
  return "bench/conn" + std::to_string(index % kConnSegments);
}

/// Minimal blocking raw connection with an incremental frame parser — the
/// reader side of the bench deliberately speaks the wire format directly so
/// it can pipeline a whole burst in one write.
struct RawConn {
  int fd = -1;
  std::vector<uint8_t> buf;
  size_t pos = 0;

  explicit RawConn(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket");
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      throw std::runtime_error(std::string("connect: ") +
                               std::strerror(errno));
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void send_all(const Buffer& bytes) {
    const uint8_t* p = bytes.data();
    size_t n = bytes.size();
    while (n > 0) {
      ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
      if (w <= 0) throw std::runtime_error("send");
      p += static_cast<size_t>(w);
      n -= static_cast<size_t>(w);
    }
  }

  Frame read_frame() {
    for (;;) {
      if (buf.size() - pos >= kFrameHeaderSize) {
        FrameHeader h = decode_frame_header(buf.data() + pos);
        if (buf.size() - pos >= kFrameHeaderSize + h.payload_size) {
          Frame f;
          f.type = h.type;
          f.request_id = h.request_id;
          const uint8_t* body = buf.data() + pos + kFrameHeaderSize;
          f.payload.assign(body, body + h.payload_size);
          pos += kFrameHeaderSize + h.payload_size;
          if (pos == buf.size()) {
            buf.clear();
            pos = 0;
          }
          return f;
        }
      }
      if (pos > 0 && buf.size() > (64u << 10)) {
        buf.erase(buf.begin(), buf.begin() + static_cast<long>(pos));
        pos = 0;
      }
      uint8_t chunk[16 << 10];
      ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
      if (r <= 0) throw std::runtime_error("recv");
      buf.insert(buf.end(), chunk, chunk + r);
    }
  }
};

Buffer encode_req(MsgType type, uint32_t request_id, const Buffer& payload) {
  Frame f;
  f.type = type;
  f.request_id = request_id;
  f.payload.assign(payload.data(), payload.data() + payload.size());
  Buffer out;
  encode_frame(f, out);
  return out;
}

struct ConnScalingShared {
  uint16_t port = 0;
  std::vector<uint32_t> serials;   // seeded block serial per segment
  std::vector<uint32_t> versions;  // version after seeding per segment
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> notifications{0};
  std::atomic<uint64_t> errors{0};
};

/// Seeds every shared segment with one named 1 KiB block.
void seed_conn_segments(ConnScalingShared* sh) {
  TcpClientChannel ch(sh->port);
  TypeRegistry scratch(Platform::native().rules);
  for (int s = 0; s < kConnSegments; ++s) {
    std::string seg = conn_segment(s);
    call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
      p.append_lp_string(seg);
      p.append_u8(1);
    });
    call(ch, MsgType::kRegisterType, [&](Buffer& p) {
      p.append_lp_string(seg);
      TypeCodec::encode_graph(
          scratch.array_of(scratch.primitive(PrimitiveKind::kInt32),
                           kConnUnits),
          p);
    });
    Frame acq = call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
      p.append_lp_string(seg);
      p.append_u32(1);
    });
    uint32_t serial = acq.reader().read_u32();
    Frame rel = call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
      p.append_lp_string(seg);
      DiffWriter w(p, 1, 2);
      w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, 1, "d");
      w.begin_run(0, kConnUnits);
      for (uint32_t i = 0; i < kConnUnits; ++i) p.append_u32(i);
      w.end_block();
      w.finish();
    });
    sh->serials.push_back(serial);
    sh->versions.push_back(rel.reader().read_u32());
  }
}

/// One writer channel committing small runs to its segment; every commit
/// fans a NotifyVersion to the segment's subscribed reader connections.
void conn_writer_loop(ConnScalingShared* sh, int index) {
  try {
    std::string seg = conn_segment(index);
    TcpClientChannel ch(sh->port);
    ch.set_notify_handler([sh](const Frame&) {
      sh->notifications.fetch_add(1, std::memory_order_relaxed);
    });
    call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
      p.append_lp_string(seg);
      p.append_u8(0);
    });
    call(ch, MsgType::kSubscribe,
         [&](Buffer& p) { p.append_lp_string(seg); });
    uint32_t version = sh->versions[static_cast<size_t>(index)];
    uint32_t serial = sh->serials[static_cast<size_t>(index)];
    sh->ready.fetch_add(1);
    // Coarse poll: with ~1,000 parked threads on few cores, a tight sleep
    // loop here would starve the threads still connecting.
    while (!sh->go.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    uint64_t iter = 0;
    while (!sh->stop.load(std::memory_order_acquire)) {
      call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
        p.append_lp_string(seg);
        p.append_u32(version);
      });
      Frame rel = call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
        p.append_lp_string(seg);
        DiffWriter w(p, version, version + 1);
        w.begin_block(serial, 0);
        uint32_t at = static_cast<uint32_t>(iter * kConnRunUnits) %
                      kConnUnits;
        w.begin_run(at, kConnRunUnits);
        for (uint32_t i = 0; i < kConnRunUnits; ++i) {
          p.append_u32(static_cast<uint32_t>(iter));
        }
        w.end_block();
        w.finish();
      });
      version = rel.reader().read_u32();
      sh->requests.fetch_add(2, std::memory_order_relaxed);
      ++iter;
      uint64_t jitter_us = mix64(static_cast<uint64_t>(index) * 7919 + iter) %
                           20'000;
      std::this_thread::sleep_for(
          std::chrono::microseconds(40'000 + jitter_us));
    }
  } catch (const std::exception&) {
    sh->errors.fetch_add(1, std::memory_order_relaxed);
    sh->ready.fetch_add(1);  // never wedge the start barrier
  }
}

/// One reader connection: subscribes to its segment, then fires bursts of
/// kBurstPings pipelined pings (every 4th burst also a cold whole-block
/// AcquireRead) in a single write and times the whole burst round trip.
void conn_reader_loop(ConnScalingShared* sh, int index,
                      std::vector<uint64_t>* burst_ns) {
  using Clock = std::chrono::steady_clock;
  try {
    std::string seg = conn_segment(index);
    RawConn conn(sh->port);
    Buffer open_payload;
    open_payload.append_lp_string(seg);
    open_payload.append_u8(0);
    conn.send_all(encode_req(MsgType::kOpenSegment, 1, open_payload));
    Buffer sub_payload;
    sub_payload.append_lp_string(seg);
    conn.send_all(encode_req(MsgType::kSubscribe, 2, sub_payload));
    for (int got = 0; got < 2;) {
      if (conn.read_frame().request_id != 0) ++got;
    }
    sh->ready.fetch_add(1);
    // Coarse poll: with ~1,000 parked threads on few cores, a tight sleep
    // loop here would starve the threads still connecting.
    while (!sh->go.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    uint64_t iter = 0;
    uint32_t next_id = 10;
    while (!sh->stop.load(std::memory_order_acquire)) {
      Buffer burst;
      int expected = kBurstPings;
      uint32_t first_id = next_id;
      for (int i = 0; i < kBurstPings; ++i) {
        Buffer one = encode_req(MsgType::kPing, next_id++, Buffer());
        burst.append(one.data(), one.size());
      }
      if (iter % 4 == 0) {
        Buffer rp;
        rp.append_lp_string(seg);
        rp.append_u32(0);  // cold: server collects the whole block
        rp.append_u8(static_cast<uint8_t>(CoherenceModel::kFull));
        rp.append_u64(0);
        Buffer one = encode_req(MsgType::kAcquireRead, next_id++, rp);
        burst.append(one.data(), one.size());
        ++expected;
      }
      auto start = Clock::now();
      conn.send_all(burst);
      for (int got = 0; got < expected;) {
        Frame f = conn.read_frame();
        if (f.request_id == 0) {
          sh->notifications.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (f.request_id >= first_id) ++got;
      }
      burst_ns->push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count()));
      sh->requests.fetch_add(static_cast<uint64_t>(expected),
                             std::memory_order_relaxed);
      ++iter;
      uint64_t jitter_us =
          mix64(static_cast<uint64_t>(index) * 104'729 + iter) % 10'000;
      std::this_thread::sleep_for(
          std::chrono::microseconds(20'000 + jitter_us));
    }
  } catch (const std::exception&) {
    sh->errors.fetch_add(1, std::memory_order_relaxed);
    sh->ready.fetch_add(1);
  }
}

int run_connection_scaling(int connections, double seconds) {
  // ~2 fds per connection (client + server end) plus slack.
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0) {
    rlim_t want = static_cast<rlim_t>(connections) * 2 + 512;
    if (lim.rlim_cur < want && want <= lim.rlim_max) {
      lim.rlim_cur = want;
      ::setrlimit(RLIMIT_NOFILE, &lim);
    }
  }

  server::SegmentServer core;
  TcpServer server(core, 0);
  ConnScalingShared sh;
  sh.port = server.port();
  seed_conn_segments(&sh);

  int writers = std::min(connections, kConnSegments);
  int readers = connections - writers;
  std::vector<std::vector<uint64_t>> bursts(
      static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back(conn_writer_loop, &sh, w);
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back(conn_reader_loop, &sh, writers + r,
                         &bursts[static_cast<size_t>(r)]);
  }
  while (sh.ready.load() < connections) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  ReactorStats before = server.stats();
  auto start = std::chrono::steady_clock::now();
  sh.go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  sh.stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ReactorStats after = server.stats();
  server.shutdown();

  std::vector<uint64_t> all;
  for (auto& b : bursts) all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    size_t idx = std::min(
        all.size() - 1,
        static_cast<size_t>(q * static_cast<double>(all.size())));
    return static_cast<double>(all[idx]) / 1000.0;  // ns -> us
  };

  unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  uint64_t frames_sent = after.frames_sent - before.frames_sent;
  uint64_t sendmsg_calls = after.sendmsg_calls - before.sendmsg_calls;
  double frames_per_syscall =
      static_cast<double>(frames_sent) /
      static_cast<double>(std::max<uint64_t>(1, sendmsg_calls));
  std::printf(
      "[\n  {\"bench\": \"connection_scaling\", \"connections\": %d, "
      "\"cores\": %u, \"connections_per_core\": %.0f, \"seconds\": %.2f, "
      "\"requests\": %llu, \"requests_per_sec\": %.0f, "
      "\"burst_p50_us\": %.1f, \"burst_p99_us\": %.1f, "
      "\"frames_sent\": %llu, \"sendmsg_calls\": %llu, "
      "\"frames_per_syscall\": %.2f, \"frames_batched\": %llu, "
      "\"epoll_wakeups\": %llu, \"recv_calls\": %llu, "
      "\"notifications\": %llu, \"backpressure_stalls\": %llu, "
      "\"worker_queue_depth_max\": %llu, \"workers_spawned\": %llu, "
      "\"errors\": %llu}\n]\n",
      connections, cores, static_cast<double>(connections) / cores, elapsed,
      static_cast<unsigned long long>(sh.requests.load()),
      static_cast<double>(sh.requests.load()) / elapsed, pct(0.50), pct(0.99),
      static_cast<unsigned long long>(frames_sent),
      static_cast<unsigned long long>(sendmsg_calls), frames_per_syscall,
      static_cast<unsigned long long>(after.frames_batched),
      static_cast<unsigned long long>(after.epoll_wakeups),
      static_cast<unsigned long long>(after.recv_calls),
      static_cast<unsigned long long>(sh.notifications.load()),
      static_cast<unsigned long long>(after.backpressure_stalls),
      static_cast<unsigned long long>(after.worker_queue_depth_max),
      static_cast<unsigned long long>(after.workers_spawned),
      static_cast<unsigned long long>(sh.errors.load()));
  return sh.errors.load() == 0 ? 0 : 1;
}

// --- hot-segment read scaling (distributed lock caching) ------------------

constexpr uint32_t kHotUnits = 4;  // one int32[4] block: the segment is hot,
                                   // not big — lock traffic dominates.

struct HotReadResult {
  uint64_t critical_sections = 0;
  double requests_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t lock_rpcs = 0;
  double lock_rpcs_per_cs = 0.0;
  uint64_t lock_cache_hits = 0;
  uint64_t revokes_sent = 0;
  uint64_t revokes_acked = 0;
  uint64_t revokes_expired = 0;
  uint64_t writer_commits = 0;
  double writer_acquire_max_us = 0.0;
};

/// One hot-read run: `readers` full clients spin on read critical sections
/// over a single shared kFull segment while a writer commits every ~250 ms.
/// With caching off every critical section pays one kAcquireRead RPC (the
/// client never sends a kReleaseRead for an unmodified kFull read, so the
/// honest baseline is 1.0 RPC per CS, not 2.0). With caching on, one RPC is
/// amortized across every CS between writer commits; the commits trigger
/// revocations whose acks bound the writer's acquire latency.
HotReadResult run_hot_read(bool caching, int readers, double seconds) {
  server::SegmentServer core;  // default revocation deadline: 2000 ms
  TcpServer server(core, 0);
  const uint16_t port = server.port();
  auto factory = [port](const std::string&) {
    return std::make_shared<TcpClientChannel>(port);
  };
  const std::string url = "bench/hot";
  const std::string mip = url + "#a#0";

  Client writer(factory);
  ClientSegment* wseg = writer.open_segment(url);
  const TypeDescriptor* arr = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), kHotUnits);
  writer.write_lock(wseg);
  auto* seeded = static_cast<int32_t*>(writer.malloc_block(wseg, arr, "a"));
  for (uint32_t i = 0; i < kHotUnits; ++i) seeded[i] = 1;
  writer.write_unlock(wseg);

  Client::Options ropts;
  ropts.cache_read_locks = caching;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<ClientSegment*> segs;
  for (int i = 0; i < readers; ++i) {
    clients.push_back(std::make_unique<Client>(factory, ropts));
    segs.push_back(clients.back()->open_segment(url, false));
  }

  constexpr size_t kMaxSamples = 1u << 20;
  std::atomic<bool> stop{false};
  std::vector<uint64_t> cs_counts(static_cast<size_t>(readers), 0);
  std::vector<std::vector<uint64_t>> lat(static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers));
  for (int i = 0; i < readers; ++i) {
    threads.emplace_back([&, i] {
      Client& c = *clients[static_cast<size_t>(i)];
      ClientSegment* seg = segs[static_cast<size_t>(i)];
      auto& samples = lat[static_cast<size_t>(i)];
      samples.reserve(kMaxSamples / 4);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto t0 = std::chrono::steady_clock::now();
        c.read_lock(seg);
        auto* p = static_cast<volatile int32_t*>(c.mip_to_ptr(mip));
        if (p != nullptr) (void)p[0];
        c.read_unlock(seg);
        auto t1 = std::chrono::steady_clock::now();
        // Cached hits run in the millions per second; sample 1-in-16 so the
        // latency vector stays bounded over a multi-second run.
        if ((n & 15u) == 0 && samples.size() < kMaxSamples) {
          samples.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        }
        ++n;
      }
      cs_counts[static_cast<size_t>(i)] = n;
    });
  }

  // Writer: one commit every ~250 ms. Under caching each commit revokes
  // every reader's cached lock, so write_lock's latency is the revocation
  // round-trip — it must stay under the server's revocation deadline.
  uint64_t commits = 0;
  uint64_t acquire_max_ns = 0;
  auto t_start = std::chrono::steady_clock::now();
  auto t_end = t_start + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < t_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    auto a0 = std::chrono::steady_clock::now();
    writer.write_lock(wseg);
    auto a1 = std::chrono::steady_clock::now();
    auto* blk = wseg->heap().find_by_name("a");
    auto* d =
        reinterpret_cast<int32_t*>(const_cast<uint8_t*>(blk->data()));
    d[0] += 1;
    writer.write_unlock(wseg);
    ++commits;
    acquire_max_ns = std::max(
        acquire_max_ns,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(a1 - a0)
                .count()));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t_start)
                       .count();

  HotReadResult r;
  std::vector<uint64_t> all;
  for (int i = 0; i < readers; ++i) {
    r.critical_sections += cs_counts[static_cast<size_t>(i)];
    auto s = clients[static_cast<size_t>(i)]->stats();
    r.lock_rpcs += s.read_lock_server_calls;
    r.lock_cache_hits += s.lock_cache_hits;
    all.insert(all.end(), lat[static_cast<size_t>(i)].begin(),
               lat[static_cast<size_t>(i)].end());
  }
  std::sort(all.begin(), all.end());
  auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    size_t idx = std::min(
        all.size() - 1,
        static_cast<size_t>(q * static_cast<double>(all.size())));
    return static_cast<double>(all[idx]) / 1000.0;  // ns -> us
  };
  r.requests_per_sec = static_cast<double>(r.critical_sections) / elapsed;
  r.p50_us = pct(0.50);
  r.p99_us = pct(0.99);
  r.lock_rpcs_per_cs =
      r.critical_sections == 0
          ? 0.0
          : static_cast<double>(r.lock_rpcs) /
                static_cast<double>(r.critical_sections);
  auto ss = core.stats();
  r.revokes_sent = ss.revokes_sent;
  r.revokes_acked = ss.revokes_acked;
  r.revokes_expired = ss.revokes_expired;
  r.writer_commits = commits;
  r.writer_acquire_max_us = static_cast<double>(acquire_max_ns) / 1000.0;
  return r;
}

int run_hot_read_main(int readers, double seconds) {
  HotReadResult on = run_hot_read(true, readers, seconds);
  HotReadResult off = run_hot_read(false, readers, seconds);
  std::printf("[\n");
  bool first = true;
  for (bool caching : {true, false}) {
    const HotReadResult& r = caching ? on : off;
    std::printf(
        "%s  {\"bench\": \"hot_read\", \"lock_caching\": \"%s\", "
        "\"readers\": %d, \"seconds\": %.1f, "
        "\"critical_sections\": %llu, \"requests_per_sec\": %.0f, "
        "\"p50_us\": %.2f, \"p99_us\": %.2f, "
        "\"lock_rpcs\": %llu, \"lock_rpcs_per_cs\": %.4f, "
        "\"lock_cache_hits\": %llu, \"revokes_sent\": %llu, "
        "\"revokes_acked\": %llu, \"revokes_expired\": %llu, "
        "\"writer_commits\": %llu, \"writer_acquire_max_us\": %.0f}",
        first ? "" : ",\n", caching ? "on" : "off", readers, seconds,
        static_cast<unsigned long long>(r.critical_sections),
        r.requests_per_sec, r.p50_us, r.p99_us,
        static_cast<unsigned long long>(r.lock_rpcs), r.lock_rpcs_per_cs,
        static_cast<unsigned long long>(r.lock_cache_hits),
        static_cast<unsigned long long>(r.revokes_sent),
        static_cast<unsigned long long>(r.revokes_acked),
        static_cast<unsigned long long>(r.revokes_expired),
        static_cast<unsigned long long>(r.writer_commits),
        r.writer_acquire_max_us);
    first = false;
  }
  std::printf(
      ",\n  {\"bench\": \"hot_read\", \"readers\": %d, "
      "\"rpc_reduction\": %.1f, \"throughput_ratio_on_vs_off\": %.1f}\n]\n",
      readers,
      off.lock_rpcs_per_cs / std::max(on.lock_rpcs_per_cs, 1e-9),
      on.requests_per_sec / std::max(off.requests_per_sec, 1.0));
  return 0;
}

// ----------------------------------------------------------- update bytes

constexpr uint32_t kUpdUnits = 16384;  // int32 units per commit (64 KiB)

struct UpdateBytesResult {
  uint64_t commits = 0;
  uint64_t updates_compressed = 0;
  uint64_t update_raw_bytes = 0;
  uint64_t update_wire_bytes = 0;
  uint64_t client_bytes_sent = 0;
  uint64_t diffs_compressed = 0;
};

/// One payload-wire cell: the writer commits the whole array each round
/// (constant fill = compressible, xorshift fill = not) and the reader's
/// read_lock pulls the update, so every diff crosses the section envelope
/// in both directions when the hello handshake negotiated it.
UpdateBytesResult run_update_bytes(bool compress, bool compressible,
                                   int rounds) {
  server::SegmentServer::Options sopts;
  sopts.compress_payloads = compress;
  server::SegmentServer core(sopts);
  auto factory = [&core](const std::string&) {
    return std::make_shared<InProcChannel>(core);
  };
  Client writer(factory);
  Client reader(factory);

  const std::string url = "bench/wire";
  ClientSegment* wseg = writer.open_segment(url);
  ClientSegment* rseg = reader.open_segment(url);
  const TypeDescriptor* arr = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), kUpdUnits);

  uint32_t noise = 0x9e3779b9u;
  int32_t* data = nullptr;
  for (int round = 0; round < rounds; ++round) {
    writer.write_lock(wseg);
    if (data == nullptr) {
      data = static_cast<int32_t*>(writer.malloc_block(wseg, arr, "w"));
    }
    for (uint32_t i = 0; i < kUpdUnits; ++i) {
      if (compressible) {
        data[i] = round;
      } else {
        noise ^= noise << 13;
        noise ^= noise >> 17;
        noise ^= noise << 5;
        data[i] = static_cast<int32_t>(noise);
      }
    }
    writer.write_unlock(wseg);
    reader.read_lock(rseg);
    reader.read_unlock(rseg);
  }

  UpdateBytesResult r;
  r.commits = static_cast<uint64_t>(rounds);
  auto ss = core.stats();
  r.updates_compressed = ss.updates_compressed;
  r.update_raw_bytes = ss.update_raw_bytes;
  r.update_wire_bytes = ss.update_wire_bytes;
  r.client_bytes_sent = writer.bytes_sent();
  r.diffs_compressed = writer.stats().diffs_compressed;
  return r;
}

int run_update_bytes_main(int rounds) {
  std::printf("[\n");
  bool first = true;
  for (bool compress : {true, false}) {
    for (bool compressible : {true, false}) {
      UpdateBytesResult r = run_update_bytes(compress, compressible, rounds);
      double wire_ratio =
          r.update_raw_bytes == 0
              ? 1.0
              : static_cast<double>(r.update_wire_bytes) /
                    static_cast<double>(r.update_raw_bytes);
      std::printf(
          "%s  {\"bench\": \"update_bytes\", \"compress\": \"%s\", "
          "\"data\": \"%s\", \"rounds\": %d, \"commit_bytes\": %u, "
          "\"updates_compressed\": %llu, \"update_raw_bytes\": %llu, "
          "\"update_wire_bytes\": %llu, \"wire_ratio\": %.3f, "
          "\"client_bytes_sent\": %llu, \"diffs_compressed\": %llu}",
          first ? "" : ",\n", compress ? "on" : "off",
          compressible ? "compressible" : "incompressible", rounds,
          kUpdUnits * 4,
          static_cast<unsigned long long>(r.updates_compressed),
          static_cast<unsigned long long>(r.update_raw_bytes),
          static_cast<unsigned long long>(r.update_wire_bytes), wire_ratio,
          static_cast<unsigned long long>(r.client_bytes_sent),
          static_cast<unsigned long long>(r.diffs_compressed));
      first = false;
    }
  }
  std::printf("\n]\n");
  return 0;
}

}  // namespace
}  // namespace iw

int main(int argc, char** argv) {
  int connections = 0;
  double bench_seconds = 5.0;
  bool hot_read = false;
  bool update_bytes = false;
  int readers = 4;
  int rounds = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      connections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      bench_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--hot-read") == 0) {
      hot_read = true;
    } else if (std::strcmp(argv[i], "--readers") == 0 && i + 1 < argc) {
      readers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--update-bytes") == 0) {
      update_bytes = true;
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    }
  }
  if (update_bytes) {
    // The env override would force every cell to one setting; the payload
    // matrix owns the compression toggle.
    ::unsetenv("IW_COMPRESS");
    return iw::run_update_bytes_main(rounds);
  }
  if (hot_read) {
    // The env override would force both runs to one setting; the bench owns
    // the caching toggle.
    ::unsetenv("IW_LOCK_CACHE");
    return iw::run_hot_read_main(readers, bench_seconds);
  }
  if (connections > 0) {
    return iw::run_connection_scaling(connections, bench_seconds);
  }

  int cycles = argc > 1 ? std::atoi(argv[1]) : 2000;
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("[\n");
  bool first = true;
  for (int threads : {1, 2, 4, 8}) {
    iw::RunResult sharded = iw::run_config(true, threads, cycles);
    iw::RunResult global = iw::run_config(false, threads, cycles);
    for (bool is_sharded : {true, false}) {
      const iw::RunResult& r = is_sharded ? sharded : global;
      std::printf(
          "%s  {\"bench\": \"server_scaling\", \"mode\": \"%s\", "
          "\"threads\": %d, \"segments\": %d, \"cores\": %u, "
          "\"cycles_per_thread\": %d, \"requests_per_sec\": %.0f, "
          "\"p50_us\": %.1f, \"p99_us\": %.1f}",
          first ? "" : ",\n", is_sharded ? "sharded" : "global_lock", threads,
          threads, cores, cycles, r.requests_per_sec, r.p50_us, r.p99_us);
      first = false;
    }
    std::printf(",\n  {\"bench\": \"server_scaling\", \"threads\": %d, "
                "\"cores\": %u, \"speedup_sharded_vs_global\": %.2f}",
                threads, cores, sharded.requests_per_sec / global.requests_per_sec);
  }
  std::printf("\n]\n");
  return 0;
}
