// Plan-compiled translation throughput: planned engine vs the legacy
// recursive walk, on the two layouts that matter.
//
//   packed_canonical — local layout byte-identical to the wire (isomorphic):
//                      the plan collapses any unit range to one memcpy.
//   native           — little-endian x86-64 layout: every multi-byte unit is
//                      byte-swapped, so the plan runs its straight-line swap
//                      loops (no memcpy shortcut possible).
//
// The workload is a large array of a dense mixed-numeric struct (40 wire
// bytes per element, several primitive runs after isomorphic field
// collapsing), the shape where translation throughput is bandwidth-bound.
// Both engines' outputs are verified byte-identical before timing.
//
// Plain binary; emits one JSON document on stdout.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/rand.hpp"
#include "wire/translate.hpp"

namespace iw::bench {
namespace {

constexpr uint64_t kElems = 400000;  // x 40 wire bytes = 16 MB
constexpr int kReps = 9;

const TypeDescriptor* build_type(TypeRegistry& reg) {
  const TypeDescriptor* elem = reg.struct_builder("dense40")
      .field("a", reg.primitive(PrimitiveKind::kFloat64))
      .field("b", reg.primitive(PrimitiveKind::kFloat64))
      .field("c", reg.primitive(PrimitiveKind::kInt64))
      .field("d", reg.primitive(PrimitiveKind::kInt32))
      .field("e", reg.primitive(PrimitiveKind::kInt32))
      .field("f", reg.primitive(PrimitiveKind::kInt16))
      .field("g", reg.primitive(PrimitiveKind::kInt16))
      .field("h", reg.array_of(reg.primitive(PrimitiveKind::kChar), 4))
      .finish();
  return reg.array_of(elem, kElems);
}

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

using EncodeFn = void (*)(const TypeDescriptor&, const LayoutRules&,
                          const void*, uint64_t, uint64_t, TranslationHooks&,
                          Buffer&);
using DecodeFn = void (*)(const TypeDescriptor&, const LayoutRules&, void*,
                          uint64_t, uint64_t, TranslationHooks&, BufReader&);

/// Best-of-kReps throughput in MB/s (decimal megabytes, matching the
/// paper), for the planned and legacy engines. Reps are interleaved and
/// the within-rep order alternates; both engines share one output buffer.
/// All three measures keep cache history and working-set size identical —
/// these translation loops are bandwidth-bound, and whichever engine
/// runs with warmer lines otherwise wins by 10-30% regardless of code.
struct Pair {
  double planned, legacy;
};

Pair encode_pair(const TypeDescriptor& type, const LayoutRules& rules,
                 const uint8_t* mem, TranslationHooks& hooks) {
  EncodeFn fns[2] = {encode_units, encode_units_legacy};
  Buffer out;
  Pair best{0, 0};
  for (int rep = 0; rep < kReps; ++rep) {
    for (int k = 0; k < 2; ++k) {
      int which = (rep + k) % 2;
      out.clear();
      double t0 = now_s();
      fns[which](type, rules, mem, 0, type.prim_units(), hooks, out);
      double dt = now_s() - t0;
      double mbps = static_cast<double>(out.size()) / 1e6 / dt;
      if (getenv("IW_BENCH_TRACE"))
        std::fprintf(stderr, "enc rep%d pos%d %s %.0f\n", rep, k,
                     which == 0 ? "planned" : "legacy", mbps);
      double& slot = which == 0 ? best.planned : best.legacy;
      if (mbps > slot) slot = mbps;
    }
  }
  return best;
}

Pair decode_pair(const TypeDescriptor& type, const LayoutRules& rules,
                 std::span<const uint8_t> wire, uint8_t* mem,
                 TranslationHooks& hooks) {
  DecodeFn fns[2] = {decode_units, decode_units_legacy};
  Pair best{0, 0};
  for (int rep = 0; rep < kReps; ++rep) {
    for (int k = 0; k < 2; ++k) {
      int which = (rep + k) % 2;
      BufReader in(wire);
      double t0 = now_s();
      fns[which](type, rules, mem, 0, type.prim_units(), hooks, in);
      double dt = now_s() - t0;
      double mbps = static_cast<double>(wire.size()) / 1e6 / dt;
      double& slot = which == 0 ? best.planned : best.legacy;
      if (mbps > slot) slot = mbps;
    }
  }
  return best;
}

struct LayoutResult {
  const char* layout;
  bool isomorphic;
  double enc_planned, enc_legacy, dec_planned, dec_legacy;
};

LayoutResult run_layout(const char* name, const LayoutRules& rules) {
  TypeRegistry reg(rules);
  const TypeDescriptor* type = build_type(reg);
  std::vector<uint8_t> mem(type->local_size());
  SplitMix64 rng(42);
  for (auto& b : mem) b = static_cast<uint8_t>(rng());

  NumericOnlyHooks hooks;

  // Correctness gate: the two engines must agree byte-for-byte.
  Buffer planned, legacy;
  encode_units(*type, rules, mem.data(), 0, type->prim_units(), hooks,
               planned);
  encode_units_legacy(*type, rules, mem.data(), 0, type->prim_units(), hooks,
                      legacy);
  if (planned.size() != legacy.size() ||
      std::memcmp(planned.data(), legacy.data(), planned.size()) != 0) {
    std::fprintf(stderr, "FATAL: planned/legacy encode mismatch on %s\n",
                 name);
    std::abort();
  }

  LayoutResult r{};
  r.layout = name;
  reg.reset_translation_stats();
  Pair enc = encode_pair(*type, rules, mem.data(), hooks);
  r.enc_planned = enc.planned;
  r.enc_legacy = enc.legacy;
  r.isomorphic = reg.translation_stats().isomorphic_fast_path_blocks > 0;

  std::vector<uint8_t> dst(mem.size());
  Pair dec = decode_pair(*type, rules, planned.span(), dst.data(), hooks);
  r.dec_planned = dec.planned;
  r.dec_legacy = dec.legacy;
  if (std::memcmp(dst.data(), mem.data(), mem.size()) != 0) {
    std::fprintf(stderr, "FATAL: decode corrupted data on %s\n", name);
    std::abort();
  }
  return r;
}

void emit(const LayoutResult& r, bool last) {
  // Round-trip: time to encode then decode one byte, planned vs legacy.
  double rt = (1.0 / r.enc_legacy + 1.0 / r.dec_legacy) /
              (1.0 / r.enc_planned + 1.0 / r.dec_planned);
  std::printf(
      "    {\"layout\": \"%s\", \"isomorphic\": %s,\n"
      "     \"encode_planned_mbps\": %.1f, \"encode_legacy_mbps\": %.1f,\n"
      "     \"decode_planned_mbps\": %.1f, \"decode_legacy_mbps\": %.1f,\n"
      "     \"encode_speedup\": %.2f, \"decode_speedup\": %.2f,\n"
      "     \"roundtrip_speedup\": %.2f}%s\n",
      r.layout, r.isomorphic ? "true" : "false", r.enc_planned, r.enc_legacy,
      r.dec_planned, r.dec_legacy, r.enc_planned / r.enc_legacy,
      r.dec_planned / r.dec_legacy, rt, last ? "" : ",");
}

int run() {
  LayoutResult iso = run_layout("packed_canonical",
                                LayoutRules::packed_canonical());
  LayoutResult swapped = run_layout("native", Platform::native().rules);
  std::printf("{\n  \"bench\": \"translate_plan\",\n");
  std::printf("  \"elements\": %llu, \"wire_bytes\": %llu,\n",
              static_cast<unsigned long long>(kElems),
              static_cast<unsigned long long>(kElems * 40));
  std::printf("  \"results\": [\n");
  emit(iso, false);
  emit(swapped, true);
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace iw::bench

int main() { return iw::bench::run(); }
