// Commit durability cost: what the write-ahead log adds to a release, per
// sync policy. One in-process client runs lock/modify/release cycles with
// an 8 KiB diff against a SegmentServer journaling to a real filesystem,
// and each ReleaseWrite's wall time is recorded. Reported as JSON: commit
// throughput and p50/p99 release latency for the journal disabled, and for
// sync = none (page cache), batch (group commit), and commit (fdatasync per
// release) — the trade each deployment picks between commit latency and
// durability against OS/power failure.
//
// A second mode measures the payload pipeline: `--payload` runs the same
// cycle with journaling under sync = batch and periodic incremental
// checkpoints, over a {compression on/off} x {compressible/incompressible
// diff content} matrix. Reported per cell: commit throughput/latency, the
// journal's raw vs stored payload bytes (the compression win on disk),
// checkpoint counts, and the time for a fresh SegmentServer::recover()
// over the run's snapshot + chain + journal.
//
// Usage: commit_durability [cycles]             (default 2000)
//        commit_durability --payload [cycles]   (default 2000)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "net/inproc.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

constexpr uint32_t kUnits = 8192;     // int32 units per block (32 KiB)
constexpr uint32_t kRunUnits = 2048;  // units modified per commit (8 KiB)
const char* const kSeg = "bench/durable";

Frame call(InProcChannel& ch, MsgType type,
           const std::function<void(Buffer&)>& fill) {
  Buffer payload;
  fill(payload);
  return ch.call(type, std::move(payload));
}

struct RunResult {
  double commits_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  server::SegmentServer::Stats stats;
};

RunResult run_config(bool wal, server::WriteAheadLog::Sync sync, int cycles) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("iw-bench-durability-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  server::SegmentServer::Options sopts;
  sopts.checkpoint_dir = dir.string();
  sopts.wal_enabled = wal;
  sopts.wal_sync = sync;
  RunResult r;
  {
    server::SegmentServer server(sopts);
    InProcChannel ch(server);

    call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
      p.append_lp_string(kSeg);
      p.append_u8(1);
    });
    TypeRegistry scratch(Platform::native().rules);
    call(ch, MsgType::kRegisterType, [&](Buffer& p) {
      p.append_lp_string(kSeg);
      TypeCodec::encode_graph(
          scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), kUnits),
          p);
    });

    using Clock = std::chrono::steady_clock;
    uint32_t version = 1;
    uint32_t serial = 0;
    std::vector<uint64_t> latencies;
    latencies.reserve(static_cast<size_t>(cycles));
    auto run_start = Clock::now();

    for (int c = 0; c < cycles; ++c) {
      Frame acq = call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
        p.append_lp_string(kSeg);
        p.append_u32(version);
      });
      uint32_t next_serial = acq.reader().read_u32();
      // Only the release is timed: that is where the journal append (and
      // any fdatasync) sits between the commit and its acknowledgement.
      auto start = Clock::now();
      call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
        p.append_lp_string(kSeg);
        DiffWriter w(p, version, version + 1);
        if (serial == 0) {
          serial = next_serial;
          w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, 1, "d");
          w.begin_run(0, kUnits);
          for (uint32_t i = 0; i < kUnits; ++i) p.append_u32(c);
        } else {
          w.begin_block(serial, 0);
          uint32_t at = (static_cast<uint32_t>(c) * kRunUnits) % kUnits;
          w.begin_run(at, kRunUnits);
          for (uint32_t i = 0; i < kRunUnits; ++i) p.append_u32(c);
        }
        w.end_block();
        w.finish();
      });
      latencies.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count()));
      ++version;
    }
    double seconds =
        std::chrono::duration<double>(Clock::now() - run_start).count();

    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double q) {
      if (latencies.empty()) return 0.0;
      size_t idx = std::min(
          latencies.size() - 1,
          static_cast<size_t>(q * static_cast<double>(latencies.size())));
      return static_cast<double>(latencies[idx]) / 1000.0;  // ns -> us
    };
    r.commits_per_sec = static_cast<double>(cycles) / seconds;
    r.p50_us = pct(0.50);
    r.p99_us = pct(0.99);
    r.stats = server.stats();
  }
  fs::remove_all(dir);
  return r;
}

struct PayloadResult {
  double commits_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double recover_ms = 0;
  server::SegmentServer::Stats stats;       // from the workload server
  server::SegmentServer::Stats recovered;   // from the recovering server
};

/// One payload-pipeline cell: journaling under sync = batch, incremental
/// checkpoints every 64 commits, and diff content that is either one
/// constant per commit (compressible) or an xorshift stream (not). The
/// directory outlives the workload server so a fresh server can time
/// recover() over the snapshot + chain + journal the run left behind.
PayloadResult run_payload(bool compress, bool compressible, int cycles) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("iw-bench-payload-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  server::SegmentServer::Options sopts;
  sopts.checkpoint_dir = dir.string();
  sopts.wal_sync = server::WriteAheadLog::Sync::kBatch;
  sopts.checkpoint_every = 64;
  sopts.compress_payloads = compress;
  PayloadResult r;
  uint32_t noise = 0x9e3779b9u;
  {
    server::SegmentServer server(sopts);
    InProcChannel ch(server);
    call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
      p.append_lp_string(kSeg);
      p.append_u8(1);
    });
    TypeRegistry scratch(Platform::native().rules);
    call(ch, MsgType::kRegisterType, [&](Buffer& p) {
      p.append_lp_string(kSeg);
      TypeCodec::encode_graph(
          scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), kUnits),
          p);
    });

    using Clock = std::chrono::steady_clock;
    uint32_t version = 1;
    uint32_t serial = 0;
    std::vector<uint64_t> latencies;
    latencies.reserve(static_cast<size_t>(cycles));
    auto run_start = Clock::now();
    for (int c = 0; c < cycles; ++c) {
      Frame acq = call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
        p.append_lp_string(kSeg);
        p.append_u32(version);
      });
      uint32_t next_serial = acq.reader().read_u32();
      auto unit = [&]() -> uint32_t {
        if (compressible) return static_cast<uint32_t>(c);
        noise ^= noise << 13;
        noise ^= noise >> 17;
        noise ^= noise << 5;
        return noise;
      };
      auto start = Clock::now();
      call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
        p.append_lp_string(kSeg);
        DiffWriter w(p, version, version + 1);
        if (serial == 0) {
          serial = next_serial;
          w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, 1, "d");
          w.begin_run(0, kUnits);
          for (uint32_t i = 0; i < kUnits; ++i) p.append_u32(unit());
        } else {
          w.begin_block(serial, 0);
          uint32_t at = (static_cast<uint32_t>(c) * kRunUnits) % kUnits;
          w.begin_run(at, kRunUnits);
          for (uint32_t i = 0; i < kRunUnits; ++i) p.append_u32(unit());
        }
        w.end_block();
        w.finish();
      });
      latencies.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count()));
      ++version;
    }
    double seconds =
        std::chrono::duration<double>(Clock::now() - run_start).count();
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double q) {
      if (latencies.empty()) return 0.0;
      size_t idx = std::min(
          latencies.size() - 1,
          static_cast<size_t>(q * static_cast<double>(latencies.size())));
      return static_cast<double>(latencies[idx]) / 1000.0;  // ns -> us
    };
    r.commits_per_sec = static_cast<double>(cycles) / seconds;
    r.p50_us = pct(0.50);
    r.p99_us = pct(0.99);
    r.stats = server.stats();
  }
  {
    using Clock = std::chrono::steady_clock;
    server::SegmentServer revived(sopts);
    auto t0 = Clock::now();
    revived.recover();
    r.recover_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    r.recovered = revived.stats();
  }
  fs::remove_all(dir);
  return r;
}

}  // namespace
}  // namespace iw

int run_payload_main(int cycles) {
  std::printf("[\n");
  bool first = true;
  for (bool compress : {true, false}) {
    for (bool compressible : {true, false}) {
      iw::PayloadResult r = iw::run_payload(compress, compressible, cycles);
      double stored_ratio =
          r.stats.commit_raw_bytes == 0
              ? 1.0
              : static_cast<double>(r.stats.commit_stored_bytes) /
                    static_cast<double>(r.stats.commit_raw_bytes);
      std::printf(
          "%s  {\"bench\": \"payload_durability\", \"compress\": \"%s\", "
          "\"data\": \"%s\", \"cycles\": %d, \"diff_bytes\": %u, "
          "\"commits_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
          "\"commit_raw_bytes\": %llu, \"commit_stored_bytes\": %llu, "
          "\"stored_ratio\": %.3f, \"commits_compressed\": %llu, "
          "\"wal_bytes\": %llu, \"checkpoints_written\": %llu, "
          "\"checkpoints_incremental\": %llu, \"recover_ms\": %.2f, "
          "\"recovered_chain_folds\": %llu, \"recovered_wal_records\": %llu}",
          first ? "" : ",\n", compress ? "on" : "off",
          compressible ? "compressible" : "incompressible", cycles,
          iw::kRunUnits * 4, r.commits_per_sec, r.p50_us, r.p99_us,
          static_cast<unsigned long long>(r.stats.commit_raw_bytes),
          static_cast<unsigned long long>(r.stats.commit_stored_bytes),
          stored_ratio,
          static_cast<unsigned long long>(r.stats.commits_compressed),
          static_cast<unsigned long long>(r.stats.wal_bytes_appended),
          static_cast<unsigned long long>(r.stats.checkpoints_written),
          static_cast<unsigned long long>(r.stats.checkpoints_incremental),
          r.recover_ms,
          static_cast<unsigned long long>(r.recovered.checkpoint_chain_folds),
          static_cast<unsigned long long>(r.recovered.wal_replayed_records));
      first = false;
    }
  }
  std::printf("\n]\n");
  return 0;
}

int main(int argc, char** argv) {
  // The env override would force every cell to one setting; the payload
  // matrix owns the compression toggle.
  ::unsetenv("IW_COMPRESS");
  if (argc > 1 && std::string(argv[1]) == "--payload") {
    return run_payload_main(argc > 2 ? std::atoi(argv[2]) : 2000);
  }
  int cycles = argc > 1 ? std::atoi(argv[1]) : 2000;
  using Sync = iw::server::WriteAheadLog::Sync;
  struct Mode {
    const char* name;
    bool wal;
    Sync sync;
  };
  const Mode modes[] = {
      {"wal_off", false, Sync::kNone},
      {"none", true, Sync::kNone},
      {"batch", true, Sync::kBatch},
      {"commit", true, Sync::kCommit},
  };
  std::printf("[\n");
  bool first = true;
  for (const Mode& m : modes) {
    iw::RunResult r = iw::run_config(m.wal, m.sync, cycles);
    std::printf(
        "%s  {\"bench\": \"commit_durability\", \"sync\": \"%s\", "
        "\"cycles\": %d, \"diff_bytes\": %u, "
        "\"commits_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"wal_records\": %llu, \"wal_bytes\": %llu, \"wal_fsyncs\": %llu}",
        first ? "" : ",\n", m.name, cycles, iw::kRunUnits * 4,
        r.commits_per_sec,
        r.p50_us, r.p99_us,
        static_cast<unsigned long long>(r.stats.wal_records_appended),
        static_cast<unsigned long long>(r.stats.wal_bytes_appended),
        static_cast<unsigned long long>(r.stats.wal_fsyncs));
    first = false;
  }
  std::printf("\n]\n");
  return 0;
}
