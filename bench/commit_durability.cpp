// Commit durability cost: what the write-ahead log adds to a release, per
// sync policy. One in-process client runs lock/modify/release cycles with
// an 8 KiB diff against a SegmentServer journaling to a real filesystem,
// and each ReleaseWrite's wall time is recorded. Reported as JSON: commit
// throughput and p50/p99 release latency for the journal disabled, and for
// sync = none (page cache), batch (group commit), and commit (fdatasync per
// release) — the trade each deployment picks between commit latency and
// durability against OS/power failure.
//
// Usage: commit_durability [cycles]   (default 2000)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "net/inproc.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

constexpr uint32_t kUnits = 8192;     // int32 units per block (32 KiB)
constexpr uint32_t kRunUnits = 2048;  // units modified per commit (8 KiB)
const char* const kSeg = "bench/durable";

Frame call(InProcChannel& ch, MsgType type,
           const std::function<void(Buffer&)>& fill) {
  Buffer payload;
  fill(payload);
  return ch.call(type, std::move(payload));
}

struct RunResult {
  double commits_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  server::SegmentServer::Stats stats;
};

RunResult run_config(bool wal, server::WriteAheadLog::Sync sync, int cycles) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("iw-bench-durability-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  server::SegmentServer::Options sopts;
  sopts.checkpoint_dir = dir.string();
  sopts.wal_enabled = wal;
  sopts.wal_sync = sync;
  RunResult r;
  {
    server::SegmentServer server(sopts);
    InProcChannel ch(server);

    call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
      p.append_lp_string(kSeg);
      p.append_u8(1);
    });
    TypeRegistry scratch(Platform::native().rules);
    call(ch, MsgType::kRegisterType, [&](Buffer& p) {
      p.append_lp_string(kSeg);
      TypeCodec::encode_graph(
          scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), kUnits),
          p);
    });

    using Clock = std::chrono::steady_clock;
    uint32_t version = 1;
    uint32_t serial = 0;
    std::vector<uint64_t> latencies;
    latencies.reserve(static_cast<size_t>(cycles));
    auto run_start = Clock::now();

    for (int c = 0; c < cycles; ++c) {
      Frame acq = call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
        p.append_lp_string(kSeg);
        p.append_u32(version);
      });
      uint32_t next_serial = acq.reader().read_u32();
      // Only the release is timed: that is where the journal append (and
      // any fdatasync) sits between the commit and its acknowledgement.
      auto start = Clock::now();
      call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
        p.append_lp_string(kSeg);
        DiffWriter w(p, version, version + 1);
        if (serial == 0) {
          serial = next_serial;
          w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, 1, "d");
          w.begin_run(0, kUnits);
          for (uint32_t i = 0; i < kUnits; ++i) p.append_u32(c);
        } else {
          w.begin_block(serial, 0);
          uint32_t at = (static_cast<uint32_t>(c) * kRunUnits) % kUnits;
          w.begin_run(at, kRunUnits);
          for (uint32_t i = 0; i < kRunUnits; ++i) p.append_u32(c);
        }
        w.end_block();
        w.finish();
      });
      latencies.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count()));
      ++version;
    }
    double seconds =
        std::chrono::duration<double>(Clock::now() - run_start).count();

    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double q) {
      if (latencies.empty()) return 0.0;
      size_t idx = std::min(
          latencies.size() - 1,
          static_cast<size_t>(q * static_cast<double>(latencies.size())));
      return static_cast<double>(latencies[idx]) / 1000.0;  // ns -> us
    };
    r.commits_per_sec = static_cast<double>(cycles) / seconds;
    r.p50_us = pct(0.50);
    r.p99_us = pct(0.99);
    r.stats = server.stats();
  }
  fs::remove_all(dir);
  return r;
}

}  // namespace
}  // namespace iw

int main(int argc, char** argv) {
  int cycles = argc > 1 ? std::atoi(argv[1]) : 2000;
  using Sync = iw::server::WriteAheadLog::Sync;
  struct Mode {
    const char* name;
    bool wal;
    Sync sync;
  };
  const Mode modes[] = {
      {"wal_off", false, Sync::kNone},
      {"none", true, Sync::kNone},
      {"batch", true, Sync::kBatch},
      {"commit", true, Sync::kCommit},
  };
  std::printf("[\n");
  bool first = true;
  for (const Mode& m : modes) {
    iw::RunResult r = iw::run_config(m.wal, m.sync, cycles);
    std::printf(
        "%s  {\"bench\": \"commit_durability\", \"sync\": \"%s\", "
        "\"cycles\": %d, \"diff_bytes\": %u, "
        "\"commits_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"wal_records\": %llu, \"wal_bytes\": %llu, \"wal_fsyncs\": %llu}",
        first ? "" : ",\n", m.name, cycles, iw::kRunUnits * 4,
        r.commits_per_sec,
        r.p50_us, r.p99_us,
        static_cast<unsigned long long>(r.stats.wal_records_appended),
        static_cast<unsigned long long>(r.stats.wal_bytes_appended),
        static_cast<unsigned long long>(r.stats.wal_fsyncs));
    first = false;
  }
  std::printf("\n]\n");
  return 0;
}
