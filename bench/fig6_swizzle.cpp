// Figure 6: pointer swizzling cost as a function of pointed-to object type.
//
//   int_1     intra-segment pointer to the start of an integer block
//   struct_1  intra-segment pointer into the middle of a 32-field struct
//   cross_N   cross-segment pointer to a block in a segment that holds N
//             blocks, N in {1, 16, 64, 256, 1024, 4096, 16384, 65536}
//
// collect = local pointer -> MIP (ptr_to_mip); apply = MIP -> local pointer
// (mip_to_ptr). The modest rise with N reflects the balanced metadata
// trees; the paper reports about one million swizzles per second even for
// complex cross-segment pointers.
#include <benchmark/benchmark.h>

#include "interweave/interweave.hpp"

namespace iw::bench {
namespace {

struct Rig {
  Rig() : client(
              [this](const std::string&) {
                return std::make_shared<InProcChannel>(server);
              }) {}

  /// Builds a segment with `blocks` int blocks and returns a pointer to the
  /// middle block's data plus its MIP.
  std::pair<void*, std::string> target_in_segment(const std::string& url,
                                                  uint64_t blocks) {
    const TypeDescriptor* int_t = client.types().primitive(PrimitiveKind::kInt32);
    ClientSegment* seg = client.open_segment(url);
    client.write_lock(seg);
    void* mid = nullptr;
    for (uint64_t i = 0; i < blocks; ++i) {
      void* p = client.malloc_block(seg, int_t);
      if (i == blocks / 2) mid = p;
    }
    client.write_unlock(seg);
    return {mid, client.ptr_to_mip(mid)};
  }

  server::SegmentServer server;
  Client client;
};

Rig& rig() {
  static Rig* r = new Rig();
  return *r;
}

/// Defeats the client's one-entry swizzle caches by alternating between the
/// probe target and a decoy in another segment, so every measured swizzle
/// pays the metadata-tree searches the paper measures.
struct Probe {
  void* ptr;
  std::string mip;
};

void bm_collect(benchmark::State& state, Probe probe, Probe decoy) {
  Client& c = rig().client;
  bool flip = false;
  for (auto _ : state) {
    const Probe& p = flip ? decoy : probe;
    flip = !flip;
    std::string mip = c.ptr_to_mip(p.ptr);
    benchmark::DoNotOptimize(mip);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void bm_apply(benchmark::State& state, Probe probe, Probe decoy) {
  Client& c = rig().client;
  bool flip = false;
  for (auto _ : state) {
    const Probe& p = flip ? decoy : probe;
    flip = !flip;
    void* ptr = c.mip_to_ptr(p.mip);
    benchmark::DoNotOptimize(ptr);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void register_all() {
  Rig& r = rig();
  Client& c = r.client;

  // Decoy target in its own segment.
  auto [decoy_ptr, decoy_mip] = r.target_in_segment("bench/decoy", 4);
  Probe decoy{decoy_ptr, decoy_mip};

  // int_1: single int block.
  auto [int_ptr, int_mip] = r.target_in_segment("bench/int1", 1);

  // struct_1: pointer to the middle of a 32-field struct.
  StructBuilder sb = c.types().struct_builder("s32");
  for (int i = 0; i < 32; ++i) {
    sb.field("f" + std::to_string(i), c.types().primitive(PrimitiveKind::kInt32));
  }
  const TypeDescriptor* s32 = sb.finish();
  ClientSegment* sseg = c.open_segment("bench/struct1");
  c.write_lock(sseg);
  auto* sdata = static_cast<uint8_t*>(c.malloc_block(sseg, s32));
  c.write_unlock(sseg);
  void* struct_mid = sdata + 16 * 4;  // field 16 of 32
  Probe struct_probe{struct_mid, c.ptr_to_mip(struct_mid)};

  auto reg = [&](const std::string& name, Probe probe) {
    benchmark::RegisterBenchmark(
        ("fig6/collect_pointer/" + name).c_str(),
        [probe, decoy](benchmark::State& s) { bm_collect(s, probe, decoy); })
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        ("fig6/apply_pointer/" + name).c_str(),
        [probe, decoy](benchmark::State& s) { bm_apply(s, probe, decoy); })
        ->MinTime(0.05);
  };

  reg("int_1", Probe{int_ptr, int_mip});
  reg("struct_1", struct_probe);
  for (uint64_t n : {1u, 16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    auto [p, mip] =
        r.target_in_segment("bench/cross" + std::to_string(n), n);
    reg("cross_" + std::to_string(n), Probe{p, mip});
  }
}

}  // namespace
}  // namespace iw::bench

int main(int argc, char** argv) {
  iw::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
