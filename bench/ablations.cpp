// Ablation benchmarks for the optimizations of paper §3.3. Each group
// measures the same operation with one design choice toggled:
//
//   nodiff      whole-segment transmission vs twins+diffing when all (or
//               one tenth of) the data changes
//   splicing    diff-run splicing on/off at the paper's worst case
//               (every other word modified)
//   isomorphic  isomorphic type descriptors on/off for a 32-int struct
//   lastblock   last-block prediction on/off when applying a diff that
//               touches 1000 blocks in order
//   diffcache   server diff cache on/off for repeated identical requests
#include <benchmark/benchmark.h>

#include <algorithm>

#include "interweave/interweave.hpp"

namespace iw::bench {
namespace {

using client::TrackingMode;

client::Client::Options tracking_options(TrackingMode mode) {
  client::Client::Options options;
  options.tracking = mode;
  return options;
}

// ------------------------------------------------------------- no-diff

void bm_nodiff(benchmark::State& state, TrackingMode mode,
               uint64_t touch_stride) {
  server::SegmentServer server;
  Client writer(
      [&](const std::string&) { return std::make_shared<InProcChannel>(server); },
      tracking_options(mode));
  const TypeDescriptor* arr = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), 262144);
  ClientSegment* seg = writer.open_segment("bench/nodiff");
  writer.write_lock(seg);
  auto* data = static_cast<int32_t*>(writer.malloc_block(seg, arr));
  writer.write_unlock(seg);

  uint64_t salt = 1;
  for (auto _ : state) {
    writer.write_lock(seg);
    for (uint64_t i = 0; i < 262144; i += touch_stride) {
      data[i] = static_cast<int32_t>(i + salt);
    }
    ++salt;
    uint64_t before = writer.stats().collect_ns;
    writer.write_unlock(seg);
    state.SetIterationTime(
        static_cast<double>(writer.stats().collect_ns - before) * 1e-9);
  }
  state.counters["bytes_sent"] = static_cast<double>(writer.bytes_sent()) /
                                 static_cast<double>(state.iterations());
}

// ------------------------------------------------------------ splicing

void bm_splicing(benchmark::State& state, uint32_t splice_gap) {
  server::SegmentServer server;
  client::Client::Options options = tracking_options(TrackingMode::kVmDiff);
  options.splice_gap_words = splice_gap;
  Client writer(
      [&](const std::string&) { return std::make_shared<InProcChannel>(server); },
      options);
  const TypeDescriptor* arr = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), 262144);
  ClientSegment* seg = writer.open_segment("bench/splice");
  writer.write_lock(seg);
  auto* data = static_cast<int32_t*>(writer.malloc_block(seg, arr));
  writer.write_unlock(seg);

  uint64_t salt = 1;
  for (auto _ : state) {
    writer.write_lock(seg);
    for (uint64_t i = 0; i < 262144; i += 2) {  // the paper's ratio-2 case
      data[i] = static_cast<int32_t>(i + salt);
    }
    ++salt;
    uint64_t before = writer.stats().collect_ns;
    writer.write_unlock(seg);
    state.SetIterationTime(
        static_cast<double>(writer.stats().collect_ns - before) * 1e-9);
  }
  state.counters["bytes_sent"] = static_cast<double>(writer.bytes_sent()) /
                                 static_cast<double>(state.iterations());
}

// ---------------------------------------------------------- isomorphic

void bm_isomorphic(benchmark::State& state, bool enabled) {
  server::SegmentServer server;
  client::Client::Options options = tracking_options(TrackingMode::kNoDiff);
  options.type_options.isomorphic_descriptors = enabled;
  Client writer(
      [&](const std::string&) { return std::make_shared<InProcChannel>(server); },
      options);
  StructBuilder b = writer.types().struct_builder("int32s");
  for (int i = 0; i < 32; ++i) {
    b.field("f" + std::to_string(i),
            writer.types().primitive(PrimitiveKind::kInt32));
  }
  const TypeDescriptor* arr = writer.types().array_of(b.finish(), 8192);
  ClientSegment* seg = writer.open_segment("bench/iso");
  writer.write_lock(seg);
  auto* data = static_cast<int32_t*>(writer.malloc_block(seg, arr));
  writer.write_unlock(seg);

  uint64_t salt = 1;
  for (auto _ : state) {
    writer.write_lock(seg);
    for (uint64_t i = 0; i < 262144; ++i) {
      data[i] = static_cast<int32_t>(i + salt);
    }
    ++salt;
    uint64_t before = writer.stats().collect_ns;
    writer.write_unlock(seg);
    state.SetIterationTime(
        static_cast<double>(writer.stats().collect_ns - before) * 1e-9);
  }
}

// ----------------------------------------------------------- lastblock

void bm_lastblock(benchmark::State& state, bool enabled) {
  server::SegmentServer server;
  Client writer(
      [&](const std::string&) { return std::make_shared<InProcChannel>(server); },
      tracking_options(TrackingMode::kVmDiff));
  client::Client::Options reader_options;
  reader_options.last_block_prediction = enabled;
  Client reader(
      [&](const std::string&) { return std::make_shared<InProcChannel>(server); },
      reader_options);

  const TypeDescriptor* blk = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), 64);
  ClientSegment* seg_w = writer.open_segment("bench/lastblk");
  writer.write_lock(seg_w);
  std::vector<int32_t*> blocks;
  for (int i = 0; i < 1000; ++i) {
    blocks.push_back(static_cast<int32_t*>(writer.malloc_block(seg_w, blk)));
  }
  writer.write_unlock(seg_w);
  ClientSegment* seg_r = reader.open_segment("bench/lastblk");
  reader.read_lock(seg_r);
  reader.read_unlock(seg_r);

  uint64_t salt = 1;
  for (auto _ : state) {
    writer.write_lock(seg_w);
    for (auto* b : blocks) b[0] = static_cast<int32_t>(salt);
    ++salt;
    writer.write_unlock(seg_w);
    uint64_t before = reader.stats().apply_ns;
    reader.read_lock(seg_r);
    reader.read_unlock(seg_r);
    state.SetIterationTime(
        static_cast<double>(reader.stats().apply_ns - before) * 1e-9);
  }
  uint64_t hits = reader.stats().prediction_hits;
  uint64_t misses = reader.stats().prediction_misses;
  state.counters["hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

// ----------------------------------------------------------- diffcache

void bm_diffcache(benchmark::State& state, bool enabled) {
  server::SegmentServer::Options so;
  so.store.enable_diff_cache = enabled;
  server::SegmentServer server(so);
  Client writer(
      [&](const std::string&) { return std::make_shared<InProcChannel>(server); },
      tracking_options(TrackingMode::kVmDiff));
  const TypeDescriptor* arr = writer.types().array_of(
      writer.types().primitive(PrimitiveKind::kInt32), 262144);
  ClientSegment* seg_w = writer.open_segment("bench/dcache");
  writer.write_lock(seg_w);
  auto* data = static_cast<int32_t*>(writer.malloc_block(seg_w, arr));
  writer.write_unlock(seg_w);

  // A pool of stale readers all one version behind; each iteration bumps
  // the version once and lets every reader fetch the same diff.
  constexpr int kReaders = 8;
  std::vector<std::unique_ptr<Client>> readers;
  std::vector<ClientSegment*> segs;
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(std::make_unique<Client>([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    }));
    segs.push_back(readers.back()->open_segment("bench/dcache"));
    readers.back()->read_lock(segs.back());
    readers.back()->read_unlock(segs.back());
  }

  uint64_t salt = 1;
  for (auto _ : state) {
    writer.write_lock(seg_w);
    for (uint64_t i = 0; i < 262144; i += 64) {
      data[i] = static_cast<int32_t>(i + salt);
    }
    ++salt;
    writer.write_unlock(seg_w);
    uint64_t before = server.segment_stats("bench/dcache").collect_ns;
    for (int i = 0; i < kReaders; ++i) {
      readers[i]->read_lock(segs[i]);
      readers[i]->read_unlock(segs[i]);
    }
    // A cache hit makes the collection effectively free; floor the manual
    // time (and run a fixed iteration count, see register_all) so the
    // min-time loop terminates either way.
    double elapsed =
        static_cast<double>(
            server.segment_stats("bench/dcache").collect_ns - before) *
        1e-9;
    state.SetIterationTime(std::max(elapsed, 1e-6));
  }
  auto stats = server.segment_stats("bench/dcache");
  state.counters["cache_hits"] = static_cast<double>(stats.diff_cache_hits);
}

void register_all() {
  auto reg = [](const std::string& name, auto fn, auto... args) {
    return benchmark::RegisterBenchmark(name.c_str(), fn, args...)
        ->UseManualTime()
        ->MinTime(0.05);
  };
  reg("ablation/nodiff/whole_block_mode_full_change", bm_nodiff,
      TrackingMode::kNoDiff, uint64_t{1});
  reg("ablation/nodiff/diff_mode_full_change", bm_nodiff,
      TrackingMode::kVmDiff, uint64_t{1});
  reg("ablation/nodiff/whole_block_mode_sparse_change", bm_nodiff,
      TrackingMode::kNoDiff, uint64_t{64});
  reg("ablation/nodiff/diff_mode_sparse_change", bm_nodiff,
      TrackingMode::kVmDiff, uint64_t{64});
  reg("ablation/splicing/on_gap2", bm_splicing, uint32_t{2});
  reg("ablation/splicing/off", bm_splicing, uint32_t{0});
  reg("ablation/isomorphic/on", bm_isomorphic, true);
  reg("ablation/isomorphic/off", bm_isomorphic, false);
  reg("ablation/lastblock/prediction_on", bm_lastblock, true);
  reg("ablation/lastblock/prediction_off", bm_lastblock, false);
  benchmark::RegisterBenchmark("ablation/diffcache/on", bm_diffcache, true)->UseManualTime()->Iterations(64);
  benchmark::RegisterBenchmark("ablation/diffcache/off", bm_diffcache, false)->UseManualTime()->Iterations(64);
}

}  // namespace
}  // namespace iw::bench

int main(int argc, char** argv) {
  iw::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
