// Federation cost and failover latency. Two measurements, JSON to stdout:
//
//  - Replicated-commit throughput: the same lock/modify/release cycle as
//    commit_durability, standalone vs streaming every record to one replica
//    with the ack gated on its journal (replication_factor = 1). The delta
//    is what the zero-acked-loss guarantee costs per commit.
//  - Time-to-promote: a primary that replicated a prefix of commits dies;
//    the segment directory probes it, polls the replica's version, and
//    promotes it with an epoch bump. Wall time from failover resolve to a
//    usable new primary, over many trials.
//
// Usage: failover [cycles] [trials]   (default 1000, 20)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/inproc.hpp"
#include "server/directory.hpp"
#include "server/replication.hpp"
#include "server/server.hpp"
#include "types/registry.hpp"
#include "util/error.hpp"
#include "wire/diff.hpp"

namespace iw {
namespace {

constexpr uint32_t kUnits = 8192;     // int32 units per block (32 KiB)
constexpr uint32_t kRunUnits = 2048;  // units modified per commit (8 KiB)
const char* const kSeg = "bench/failover";

Frame call(InProcChannel& ch, MsgType type,
           const std::function<void(Buffer&)>& fill) {
  Buffer payload;
  fill(payload);
  return ch.call(type, std::move(payload));
}

/// Opens kSeg, registers the block type, and runs `cycles` write commits
/// against `ch`; returns wall seconds for the commit loop alone.
double run_commits(InProcChannel& ch, int cycles,
                   std::vector<uint64_t>* latencies_ns) {
  call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
    p.append_lp_string(kSeg);
    p.append_u8(1);
  });
  TypeRegistry scratch(Platform::native().rules);
  call(ch, MsgType::kRegisterType, [&](Buffer& p) {
    p.append_lp_string(kSeg);
    TypeCodec::encode_graph(
        scratch.array_of(scratch.primitive(PrimitiveKind::kInt32), kUnits), p);
  });

  using Clock = std::chrono::steady_clock;
  uint32_t version = 1;
  uint32_t serial = 0;
  auto run_start = Clock::now();
  for (int c = 0; c < cycles; ++c) {
    Frame acq = call(ch, MsgType::kAcquireWrite, [&](Buffer& p) {
      p.append_lp_string(kSeg);
      p.append_u32(version);
    });
    uint32_t next_serial = acq.reader().read_u32();
    auto start = Clock::now();
    call(ch, MsgType::kReleaseWrite, [&](Buffer& p) {
      p.append_lp_string(kSeg);
      DiffWriter w(p, version, version + 1);
      if (serial == 0) {
        serial = next_serial;
        w.begin_block(serial, diff_flags::kNew | diff_flags::kWhole, 1, "d");
        w.begin_run(0, kUnits);
        for (uint32_t i = 0; i < kUnits; ++i) p.append_u32(c);
      } else {
        w.begin_block(serial, 0);
        uint32_t at = (static_cast<uint32_t>(c) * kRunUnits) % kUnits;
        w.begin_run(at, kRunUnits);
        for (uint32_t i = 0; i < kRunUnits; ++i) p.append_u32(c);
      }
      w.end_block();
      w.finish();
    });
    if (latencies_ns != nullptr) {
      latencies_ns->push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count()));
    }
    ++version;
  }
  return std::chrono::duration<double>(Clock::now() - run_start).count();
}

double pct(std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  size_t idx =
      std::min(sorted_ns.size() - 1,
               static_cast<size_t>(q * static_cast<double>(sorted_ns.size())));
  return static_cast<double>(sorted_ns[idx]) / 1000.0;  // ns -> us
}

struct Throughput {
  double commits_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t records_acked = 0;
  uint64_t batches_sent = 0;
};

Throughput bench_throughput(bool replicated, int cycles) {
  Throughput t;
  std::shared_ptr<server::SegmentServer> replica;
  auto replicator = std::make_shared<server::WalReplicator>(
      server::WalReplicator::Options{});
  server::SegmentServer::Options popts;
  if (replicated) {
    replica = std::make_shared<server::SegmentServer>();
    replicator->add_replica("replica", [replica] {
      return std::make_shared<InProcChannel>(*replica);
    });
    popts.replicator = replicator;
  }
  {
    server::SegmentServer primary(popts);
    InProcChannel ch(primary);
    std::vector<uint64_t> lat;
    lat.reserve(static_cast<size_t>(cycles));
    double seconds = run_commits(ch, cycles, &lat);
    std::sort(lat.begin(), lat.end());
    t.commits_per_sec = static_cast<double>(cycles) / seconds;
    t.p50_us = pct(lat, 0.50);
    t.p99_us = pct(lat, 0.99);
    server::WalReplicator::Stats rs = replicator->stats();
    t.records_acked = rs.records_acked;
    t.batches_sent = rs.batches_sent;
  }
  replicator->shutdown();  // sever links before the replica dies
  return t;
}

struct Promote {
  double mean_ms = 0;
  double max_ms = 0;
  uint32_t replica_version = 0;  ///< from the last trial, sanity only
};

Promote bench_promote(int trials, int prefix_commits) {
  Promote out;
  double total_ms = 0;
  for (int trial = 0; trial < trials; ++trial) {
    // A replica that journaled a prefix of replicated commits, then lost
    // its primary mid-service.
    auto replica = std::make_shared<server::SegmentServer>();
    auto replicator = std::make_shared<server::WalReplicator>(
        server::WalReplicator::Options{});
    replicator->add_replica("replica", [replica] {
      return std::make_shared<InProcChannel>(*replica);
    });
    server::SegmentServer::Options popts;
    popts.replicator = replicator;
    {
      server::SegmentServer primary(popts);
      InProcChannel ch(primary);
      run_commits(ch, prefix_commits, nullptr);
      replicator->shutdown();
    }  // primary gone

    server::SegmentDirectory directory(
        {}, [replica](const std::string& address)
                -> std::shared_ptr<ClientChannel> {
          if (address == "r") return std::make_shared<InProcChannel>(*replica);
          throw Error::transport(ErrorCode::kConnReset,
                                 "primary is dead: " + address);
        });
    directory.add_node("p", "p");
    directory.add_node("r", "r");
    directory.set_placement(kSeg, {"p", "r"});

    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    server::SegmentDirectory::Placement p =
        directory.resolve_for_failover(kSeg, 1);
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
    if (p.epoch != 2 || p.nodes.front() != "r") {
      std::fprintf(stderr, "trial %d: promotion went sideways\n", trial);
      std::exit(1);
    }
    total_ms += ms;
    out.max_ms = std::max(out.max_ms, ms);
    InProcChannel rch(*replica);
    Buffer req;
    req.append_lp_string(kSeg);
    req.append_u8(0);
    out.replica_version =
        rch.call(MsgType::kOpenSegment, std::move(req)).reader().read_u32();
  }
  out.mean_ms = trials > 0 ? total_ms / trials : 0;
  return out;
}

struct RestoreRf {
  double mean_ms = 0;
  double max_ms = 0;
  uint64_t failovers = 0;    ///< promotions performed by the repairer
  uint64_t backfills = 0;    ///< rejoin installs, summed over trials
};

/// Time-to-restore-rf: a 3-node rf=2 cluster loses its primary; the repair
/// loop promotes the most-caught-up replica and recruits the dead node's
/// (blank) restart back in via a snapshot backfill. Wall time from the kill
/// to the tick that reports the segment fully replicated again — the window
/// during which a second fault could lose acknowledged commits.
RestoreRf bench_restore_rf(int trials, int prefix_commits) {
  RestoreRf out;
  double total_ms = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::array<std::shared_ptr<server::SegmentServer>, 3> nodes;
    std::array<std::shared_ptr<server::WalReplicator>, 3> repls;
    std::array<bool, 3> alive{false, false, false};
    auto dial = [&nodes, &alive](const std::string& address)
        -> std::shared_ptr<ClientChannel> {
      int i = address[1] - '0';
      if (!alive[static_cast<size_t>(i)]) {
        throw Error::transport(ErrorCode::kConnReset, "node is dead");
      }
      return std::make_shared<InProcChannel>(*nodes[static_cast<size_t>(i)]);
    };
    auto start_node = [&](int i) {
      server::WalReplicator::Options w;
      w.replication_factor = 2;
      w.ack_timeout_ms = 2'000;
      w.reconnect_backoff_ms = 1;
      w.disconnect_grace_ms = 100;
      repls[static_cast<size_t>(i)] =
          std::make_shared<server::WalReplicator>(w);
      server::SegmentServer::Options o;
      o.replicator = repls[static_cast<size_t>(i)];
      o.peer_dial = dial;
      nodes[static_cast<size_t>(i)] =
          std::make_shared<server::SegmentServer>(o);
      nodes[static_cast<size_t>(i)]->set_node_identity(
          "n" + std::to_string(i), "n" + std::to_string(i));
      alive[static_cast<size_t>(i)] = true;
    };
    for (int i = 0; i < 3; ++i) start_node(i);

    server::SegmentDirectory::Options dopts;
    dopts.replicas = 2;
    server::SegmentDirectory directory(dopts, dial);
    for (int i = 0; i < 3; ++i) {
      directory.add_node("n" + std::to_string(i), "n" + std::to_string(i));
    }
    directory.set_placement(kSeg, {"n0", "n1", "n2"});
    server::ReplicationRepairer repairer(directory);
    {
      // Create the segment, then let the bootstrap tick recruit both
      // replicas onto the stream; every prefix commit is then acked only
      // after two replicas journaled it — the state a real kill interrupts.
      InProcChannel ch(*nodes[0]);
      call(ch, MsgType::kOpenSegment, [&](Buffer& p) {
        p.append_lp_string(kSeg);
        p.append_u8(1);
      });
      if (repairer.tick() != 0) {
        std::fprintf(stderr, "trial %d: bootstrap recruits failed\n", trial);
        std::exit(1);
      }
      run_commits(ch, prefix_commits, nullptr);
    }

    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    alive[0] = false;
    repls[0]->shutdown();
    nodes[0].reset();
    repairer.tick();  // promote away from the corpse
    start_node(0);    // blank restart rejoins under its old id
    int guard = 0;
    while (repairer.tick() != 0) {
      if (++guard > 1000) {
        std::fprintf(stderr, "trial %d: rf never restored\n", trial);
        std::exit(1);
      }
    }
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    total_ms += ms;
    out.max_ms = std::max(out.max_ms, ms);
    out.failovers += repairer.stats().failovers;
    for (const auto& n : nodes) {
      if (n != nullptr) out.backfills += n->stats().backfills_completed;
    }
    for (const auto& r : repls) {
      if (r != nullptr) r->shutdown();
    }
  }
  out.mean_ms = trials > 0 ? total_ms / trials : 0;
  return out;
}

}  // namespace
}  // namespace iw

int main(int argc, char** argv) {
  int cycles = argc > 1 ? std::atoi(argv[1]) : 1000;
  int trials = argc > 2 ? std::atoi(argv[2]) : 20;

  std::printf("[\n");
  for (int replicated = 0; replicated <= 1; ++replicated) {
    iw::Throughput t = iw::bench_throughput(replicated != 0, cycles);
    std::printf(
        "  {\"bench\": \"failover\", \"metric\": \"commit_throughput\", "
        "\"mode\": \"%s\", \"cycles\": %d, \"diff_bytes\": %u, "
        "\"commits_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"repl_records_acked\": %llu, \"repl_batches\": %llu},\n",
        replicated != 0 ? "replicated_rf1" : "standalone", cycles,
        iw::kRunUnits * 4, t.commits_per_sec, t.p50_us, t.p99_us,
        static_cast<unsigned long long>(t.records_acked),
        static_cast<unsigned long long>(t.batches_sent));
  }
  iw::Promote p = iw::bench_promote(trials, 50);
  std::printf(
      "  {\"bench\": \"failover\", \"metric\": \"time_to_promote\", "
      "\"trials\": %d, \"prefix_commits\": 50, "
      "\"promote_ms_mean\": %.2f, \"promote_ms_max\": %.2f, "
      "\"replica_version\": %u},\n",
      trials, p.mean_ms, p.max_ms, p.replica_version);
  iw::RestoreRf r = iw::bench_restore_rf(trials, 50);
  std::printf(
      "  {\"bench\": \"failover\", \"metric\": \"time_to_restore_rf\", "
      "\"trials\": %d, \"prefix_commits\": 50, "
      "\"restore_ms_mean\": %.2f, \"restore_ms_max\": %.2f, "
      "\"repair_failovers\": %llu, \"rejoin_backfills\": %llu}\n",
      trials, r.mean_ms, r.max_ms,
      static_cast<unsigned long long>(r.failovers),
      static_cast<unsigned long long>(r.backfills));
  std::printf("]\n");
  return 0;
}
