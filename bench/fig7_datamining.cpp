// Figure 7: total bandwidth requirement of the datamining application.
//
// A database-server client incrementally mines the Quest database and keeps
// the sequence lattice in an InterWeave segment: the summary is first built
// from half the database, then updated with an additional 1% per round.
// A mining client refreshes its cached copy each round under different
// configurations:
//
//   full_transfer  the whole summary is fetched every round (a fresh
//                  cacheless client per round — what plain RPC would do)
//   diff_only      InterWeave diffs under Full coherence
//   delta_2/3/4    Delta(x) coherence: stale by up to x versions
//
// Output is one row per configuration with total MB received by the mining
// client — the paper's bars. Expected shape: diffs cut bandwidth by ~80%
// relative to full transfers, and Delta-x shaves further with growing x.
//
// Flags: --customers=N  (default 20000; the paper's 100000 also works but
//                        takes several minutes on one core)
//        --rounds=N     (default 20 one-percent updates)
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

#include "interweave/interweave.hpp"
#include "mining/lattice.hpp"
#include "mining/quest.hpp"

namespace iw::bench {
namespace {

struct Config {
  uint32_t customers = 20000;
  uint32_t rounds = 20;
};

struct RunResult {
  uint64_t bytes_received;
  uint32_t final_nodes;
};

/// Runs the writer side: initial build from half the DB, then `rounds`
/// 1%-increments. `on_round` is invoked after the initial build and after
/// every increment with the round index (0 = initial).
template <typename F>
void drive_writer(const Config& config, server::SegmentServer& server,
                  F&& on_round) {
  mining::QuestConfig qc;
  qc.customers = config.customers;
  mining::QuestGenerator db(qc);

  client::Client writer(
      [&](const std::string&) {
        return std::make_shared<InProcChannel>(server);
      });
  mining::LatticeWriter::Options options;
  options.min_support = std::max<uint32_t>(5, config.customers / 2000);
  mining::LatticeWriter lattice(writer, "mine/summary", qc.items, options);

  uint32_t half = config.customers / 2;
  uint32_t step = std::max<uint32_t>(1, config.customers / 100);
  lattice.mine_customers(db, 0, half);
  on_round(0);
  for (uint32_t round = 1; round <= config.rounds; ++round) {
    uint32_t from = half + (round - 1) * step;
    lattice.mine_customers(db, from, std::min(from + step, config.customers));
    on_round(round);
  }
}

/// All configurations are served server-built (subblock-granular) diffs so
/// the coherence models are compared at uniform diff granularity, as in the
/// paper's setup; with the diff cache on, single-version readers would be
/// handed the writer's finer-grained diffs and the comparison would mix
/// granularities (see EXPERIMENTS.md).
server::SegmentServer::Options fig7_server_options() {
  server::SegmentServer::Options options;
  options.store.enable_diff_cache = false;
  return options;
}

/// Mining client that keeps one cached copy under `policy`.
RunResult run_cached(const Config& config, CoherencePolicy policy) {
  server::SegmentServer server(fig7_server_options());
  std::unique_ptr<client::Client> miner;
  std::unique_ptr<mining::LatticeReader> reader;
  uint32_t nodes = 0;
  drive_writer(config, server, [&](uint32_t) {
    if (miner == nullptr) {
      miner = std::make_unique<client::Client>([&](const std::string&) {
        return std::make_shared<InProcChannel>(server);
      });
      reader = std::make_unique<mining::LatticeReader>(*miner, "mine/summary");
      miner->set_coherence(reader->segment(), policy);
    }
    reader->refresh();
    nodes = reader->node_count();
  });
  return {miner->bytes_received(), nodes};
}

/// Mining "client" with no cache: a fresh client fetches the whole summary
/// every round (the paper's leftmost bar).
RunResult run_full_transfer(const Config& config) {
  server::SegmentServer server(fig7_server_options());
  uint64_t total = 0;
  uint32_t nodes = 0;
  drive_writer(config, server, [&](uint32_t) {
    client::Client miner([&](const std::string&) {
      return std::make_shared<InProcChannel>(server);
    });
    mining::LatticeReader reader(miner, "mine/summary");
    reader.refresh();
    nodes = reader.node_count();
    total += miner.bytes_received();
  });
  return {total, nodes};
}

int run(const Config& config) {
  std::printf("Figure 7: datamining bandwidth (customers=%u, rounds=%u)\n",
              config.customers, config.rounds);
  std::printf("%-16s %14s %10s\n", "configuration", "MB transferred",
              "nodes");
  auto row = [](const char* name, RunResult r) {
    std::printf("%-16s %14.2f %10u\n", name,
                static_cast<double>(r.bytes_received) / 1e6, r.final_nodes);
  };
  row("full_transfer", run_full_transfer(config));
  row("diff_only", run_cached(config, CoherencePolicy::full()));
  row("delta_2", run_cached(config, CoherencePolicy::delta(2)));
  row("delta_3", run_cached(config, CoherencePolicy::delta(3)));
  row("delta_4", run_cached(config, CoherencePolicy::delta(4)));
  return 0;
}

}  // namespace
}  // namespace iw::bench

int main(int argc, char** argv) {
  iw::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::sscanf(argv[i], "--customers=%u", &config.customers) == 1) continue;
    if (std::sscanf(argv[i], "--rounds=%u", &config.rounds) == 1) continue;
    std::fprintf(stderr, "usage: %s [--customers=N] [--rounds=N]\n", argv[0]);
    return 2;
  }
  return iw::bench::run(config);
}
