#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then the translation
# differential test again under UBSan (the plan engine's pointer/offset
# arithmetic is exactly what -fsanitize=undefined is good at catching),
# then the fault/lease/chaos suites under UBSan and TSan — the chaos
# workload's reconnect/lease interleavings are exactly what -fsanitize=thread
# is good at catching — plus the reactor transport suite (partial frames,
# burst coalescing, backpressure, worker-pool elasticity) under both
# sanitizers and the chaos/lease suites again over TCP, so the epoll
# reactor's cross-thread outbox/retirement protocol is raced under TSan.
# The lock-cache suite and an IW_LOCK_CACHE=1 chaos lane run under both
# sanitizers too: revocation acks ride a background worker thread racing
# lock acquires, releases, and channel teardown — TSan bait by design.
# IW_COMPRESS=1 chaos/lease lanes run under both sanitizers as well: the
# section envelope, the LZ codec's pointer arithmetic, and compressed
# journal/chain recovery (the UBSan lane includes the restart seeds) are
# raced and bounds-checked the same way.
# The replication chaos suite (WAL streaming, directory failover, epoch
# fencing, and the fork+SIGKILL zero-lost-acks matrix) runs under UBSan,
# and its thread-safe subset plus a real-sockets failover lane under TSan —
# replicator link workers race committers, promoters, and teardown.
# A repeated-failover soak repeats the self-healing suites (sequential
# primary kills driven through the anti-entropy repair loop: promote,
# deposed-primary rejoin, replica backfill, byte-identical convergence)
# in-proc, over sockets, and against SIGKILLed forked processes.
# Finally a recovery soak: repeated crash/restart cycles (the WAL crash
# matrix plus the restart-chaos workload) under UBSan, so recovery's
# byte-slicing replay path is exercised many times in one run.
#
# Usage: scripts/verify.sh [build-dir] [ubsan-build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
UBSAN_BUILD="${2:-build-ubsan}"
TSAN_BUILD="${3:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== differential translation + fault/lease/chaos tests under UBSan =="
cmake -B "$UBSAN_BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DIW_SANITIZE=undefined
cmake --build "$UBSAN_BUILD" -j "$JOBS" \
      --target wire_translate_test fault_test lease_test chaos_test \
      reactor_test lock_cache_test replication_chaos_test
UBSAN_OPTIONS=halt_on_error=1 \
    "$UBSAN_BUILD"/tests/wire_translate_test
for t in fault_test lease_test chaos_test reactor_test lock_cache_test \
         replication_chaos_test; do
  UBSAN_OPTIONS=halt_on_error=1 "$UBSAN_BUILD"/tests/"$t"
done
echo "== replicated failover over real sockets under UBSan =="
IW_REPL_TRANSPORT=tcp UBSAN_OPTIONS=halt_on_error=1 \
    "$UBSAN_BUILD"/tests/replication_chaos_test \
    --gtest_filter='Seeds/ReplicationFailoverTest.*'
echo "== repeated-failover repair soak under UBSan =="
# Each repetition kills three sequential primaries per seed and drives the
# repair loop through promote/rejoin/backfill; in-proc and over sockets.
# The SIGKILL variant re-runs the same rounds against forked processes.
REPL_SOAK="${IW_REPL_SOAK:-3}"
for _ in $(seq "$REPL_SOAK"); do
  UBSAN_OPTIONS=halt_on_error=1 "$UBSAN_BUILD"/tests/replication_chaos_test \
      --gtest_filter='Seeds/RepeatedFailoverTest.*:SyncHandshakeTest.*' \
      --gtest_brief=1
  IW_REPL_TRANSPORT=tcp UBSAN_OPTIONS=halt_on_error=1 \
      "$UBSAN_BUILD"/tests/replication_chaos_test \
      --gtest_filter='Seeds/RepeatedFailoverTest.*' --gtest_brief=1
  UBSAN_OPTIONS=halt_on_error=1 "$UBSAN_BUILD"/tests/replication_chaos_test \
      --gtest_filter='Seeds/RepeatedSigkillRepairTest.*' --gtest_brief=1
done
echo "== chaos/lease suites over the reactor transport under UBSan =="
IW_CHAOS_TRANSPORT=tcp UBSAN_OPTIONS=halt_on_error=1 \
    "$UBSAN_BUILD"/tests/chaos_test --gtest_filter='Seeds/ChaosTest.*'
IW_LEASE_TRANSPORT=tcp UBSAN_OPTIONS=halt_on_error=1 \
    "$UBSAN_BUILD"/tests/lease_test
echo "== chaos suite with cached reader locks under UBSan =="
IW_LOCK_CACHE=1 UBSAN_OPTIONS=halt_on_error=1 \
    "$UBSAN_BUILD"/tests/chaos_test --gtest_filter='Seeds/ChaosTest.*'
echo "== chaos suite with payload compression under UBSan =="
# Seeds/* also covers the restart suite, so compressed journals and
# incremental-checkpoint folds recover under the sanitizer too.
IW_COMPRESS=1 UBSAN_OPTIONS=halt_on_error=1 \
    "$UBSAN_BUILD"/tests/chaos_test --gtest_filter='Seeds/*'
IW_COMPRESS=1 UBSAN_OPTIONS=halt_on_error=1 \
    "$UBSAN_BUILD"/tests/lease_test

echo "== recovery soak: crash/restart cycles under UBSan =="
# Each repetition re-runs the fork+SIGKILL crash matrix and the seeded
# restart-chaos workload against freshly written journals/checkpoints.
cmake --build "$UBSAN_BUILD" -j "$JOBS" --target wal_recovery_test
SOAK="${IW_RECOVERY_SOAK:-5}"
for _ in $(seq "$SOAK"); do
  UBSAN_OPTIONS=halt_on_error=1 "$UBSAN_BUILD"/tests/wal_recovery_test \
      --gtest_brief=1
  UBSAN_OPTIONS=halt_on_error=1 "$UBSAN_BUILD"/tests/chaos_test \
      --gtest_filter='Seeds/RestartChaosTest.*' --gtest_brief=1
done

echo "== fault/lease/chaos tests under TSan =="
cmake -B "$TSAN_BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DIW_SANITIZE=thread
cmake --build "$TSAN_BUILD" -j "$JOBS" \
      --target fault_test lease_test chaos_test reactor_test lock_cache_test \
      replication_chaos_test
for t in fault_test lease_test chaos_test reactor_test lock_cache_test; do
  TSAN_OPTIONS=halt_on_error=1 "$TSAN_BUILD"/tests/"$t"
done
# The SIGKILL suite forks a multi-threaded child, which TSan's runtime
# does not survive; the controlled-failover and directory suites carry the
# same replication/promotion races without fork.
TSAN_OPTIONS=halt_on_error=1 "$TSAN_BUILD"/tests/replication_chaos_test \
    --gtest_filter='-*Sigkill*'
echo "== replicated failover over real sockets under TSan =="
IW_REPL_TRANSPORT=tcp TSAN_OPTIONS=halt_on_error=1 \
    "$TSAN_BUILD"/tests/replication_chaos_test \
    --gtest_filter='Seeds/ReplicationFailoverTest.*:Seeds/RepeatedFailoverTest.*'
echo "== chaos/lease suites over the reactor transport under TSan =="
IW_CHAOS_TRANSPORT=tcp TSAN_OPTIONS=halt_on_error=1 \
    "$TSAN_BUILD"/tests/chaos_test --gtest_filter='Seeds/ChaosTest.*'
IW_LEASE_TRANSPORT=tcp TSAN_OPTIONS=halt_on_error=1 \
    "$TSAN_BUILD"/tests/lease_test
echo "== chaos suite with cached reader locks under TSan =="
IW_LOCK_CACHE=1 TSAN_OPTIONS=halt_on_error=1 \
    "$TSAN_BUILD"/tests/chaos_test --gtest_filter='Seeds/ChaosTest.*'
echo "== chaos suite with payload compression under TSan =="
IW_COMPRESS=1 TSAN_OPTIONS=halt_on_error=1 \
    "$TSAN_BUILD"/tests/chaos_test --gtest_filter='Seeds/ChaosTest.*'
IW_COMPRESS=1 TSAN_OPTIONS=halt_on_error=1 \
    "$TSAN_BUILD"/tests/lease_test

echo "== verify.sh: all green =="
