#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then the translation
# differential test again under UBSan (the plan engine's pointer/offset
# arithmetic is exactly what -fsanitize=undefined is good at catching).
#
# Usage: scripts/verify.sh [build-dir] [ubsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
UBSAN_BUILD="${2:-build-ubsan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== differential translation test under UBSan =="
cmake -B "$UBSAN_BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DIW_SANITIZE=undefined
cmake --build "$UBSAN_BUILD" -j "$JOBS" --target wire_translate_test
UBSAN_OPTIONS=halt_on_error=1 \
    "$UBSAN_BUILD"/tests/wire_translate_test

echo "== verify.sh: all green =="
