#!/usr/bin/env bash
# Runs the federation-relevant benchmark binaries and composes their JSON
# into one report, BENCH_federation.json at the repo root:
#
#   server_scaling    — multi-segment sharding, connection scaling, and the
#                       hot-segment read benchmark with lock caching
#   commit_durability — WAL cost per sync policy (latency + throughput)
#   failover          — replicated-commit throughput (rf=1 vs standalone)
#                       and directory time-to-promote after a primary death
#
# It then composes a second report, BENCH_payload.json, from the payload
# pipeline modes of the same binaries:
#
#   commit_durability --payload      — journal bytes raw vs stored, commit
#                                      latency, incremental-checkpoint
#                                      counts, and recover() time per
#                                      {compression x compressibility} cell
#   server_scaling --update-bytes    — update bytes raw vs on-the-wire in
#                                      both directions for a negotiated
#                                      client pair, same matrix
#
# Each binary already emits a JSON array; the report is an object keyed by
# bench name so downstream tooling can diff runs field-by-field.
#
# Usage: scripts/bench_all.sh [build-dir]
#   IW_BENCH_CYCLES    commit cycles for commit_durability/failover (2000/1000)
#   IW_BENCH_SECONDS   seconds per server_scaling point (default its own)
#   IW_BENCH_ROUNDS    rounds per update-bytes cell (default 64)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"
OUT="BENCH_federation.json"

cmake --build "$BUILD" -j "$JOBS" \
      --target server_scaling commit_durability failover

SCALING_ARGS=()
if [ -n "${IW_BENCH_SECONDS:-}" ]; then
  SCALING_ARGS+=(--seconds "$IW_BENCH_SECONDS")
fi

echo "== server_scaling ==" >&2
SCALING_JSON="$("$BUILD"/bench/server_scaling "${SCALING_ARGS[@]}")"
echo "== commit_durability ==" >&2
DURABILITY_JSON="$("$BUILD"/bench/commit_durability \
    "${IW_BENCH_CYCLES:-2000}")"
echo "== failover ==" >&2
FAILOVER_JSON="$("$BUILD"/bench/failover "${IW_BENCH_CYCLES:-1000}")"

{
  echo '{'
  echo '  "report": "federation",'
  echo "  \"generated_by\": \"scripts/bench_all.sh\","
  echo '  "server_scaling":'
  printf '%s' "$SCALING_JSON" | sed 's/^/  /'
  echo ','
  echo '  "commit_durability":'
  printf '%s' "$DURABILITY_JSON" | sed 's/^/  /'
  echo ','
  echo '  "failover":'
  printf '%s' "$FAILOVER_JSON" | sed 's/^/  /'
  echo '}'
} > "$OUT"

# Fail loudly if any binary emitted malformed JSON rather than shipping a
# broken report.
python3 -c "import json,sys; json.load(open('$OUT'))" 2>/dev/null ||
  python3 -m json.tool "$OUT" > /dev/null

echo "wrote $OUT" >&2

PAYLOAD_OUT="BENCH_payload.json"
echo "== commit_durability --payload ==" >&2
PAYLOAD_DURABILITY_JSON="$("$BUILD"/bench/commit_durability --payload \
    "${IW_BENCH_CYCLES:-2000}")"
echo "== server_scaling --update-bytes ==" >&2
UPDATE_BYTES_JSON="$("$BUILD"/bench/server_scaling --update-bytes \
    --rounds "${IW_BENCH_ROUNDS:-64}")"

{
  echo '{'
  echo '  "report": "payload",'
  echo "  \"generated_by\": \"scripts/bench_all.sh\","
  echo '  "payload_durability":'
  printf '%s' "$PAYLOAD_DURABILITY_JSON" | sed 's/^/  /'
  echo ','
  echo '  "update_bytes":'
  printf '%s' "$UPDATE_BYTES_JSON" | sed 's/^/  /'
  echo '}'
} > "$PAYLOAD_OUT"

python3 -c "import json,sys; json.load(open('$PAYLOAD_OUT'))" 2>/dev/null ||
  python3 -m json.tool "$PAYLOAD_OUT" > /dev/null

echo "wrote $PAYLOAD_OUT" >&2
