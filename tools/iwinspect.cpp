// iwinspect — inspect a segment on a running InterWeave server, or its
// on-disk durability artifacts with the server down.
//
// Usage: iwinspect [--port=N] [--data] <segment-url>
//        iwinspect --wal <file.iwlog>
//        iwinspect --chain <file.iwinc>
//
// Online, prints the segment's version, registered types, and block
// directory (serial, type, name) using the same wire protocol as any
// client. With --data it additionally maps the segment as a real client
// and pretty-prints every block's contents (pointers shown as MIPs).
//
// Offline, --wal dumps a write-ahead journal record by record (type,
// version, on-disk vs raw payload size, compression flag) and --chain
// dumps an incremental checkpoint chain (base snapshot id, chain depth,
// per-record version span and compressed/raw sizes). Both stop where
// recovery would: at the first torn or corrupt record.
#include <cstdio>
#include <cstring>

#include "client/view.hpp"
#include "interweave/interweave.hpp"
#include "net/tcp.hpp"
#include "server/checkpoint.hpp"
#include "server/wal.hpp"
#include "types/registry.hpp"
#include "wire/frame.hpp"

namespace {

const char* kind_name(iw::TypeKind kind) {
  switch (kind) {
    case iw::TypeKind::kPrimitive: return "primitive";
    case iw::TypeKind::kString: return "string";
    case iw::TypeKind::kPointer: return "pointer";
    case iw::TypeKind::kArray: return "array";
    case iw::TypeKind::kStruct: return "struct";
  }
  return "?";
}

std::string describe(const iw::TypeDescriptor* t) {
  switch (t->kind()) {
    case iw::TypeKind::kPrimitive:
      return iw::primitive_kind_name(t->primitive());
    case iw::TypeKind::kString:
      return "string<" + std::to_string(t->string_capacity()) + ">";
    case iw::TypeKind::kPointer:
      return t->pointee() ? describe(t->pointee()) + "*" : "void*";
    case iw::TypeKind::kArray:
      return describe(t->element()) + "[" + std::to_string(t->count()) + "]";
    case iw::TypeKind::kStruct:
      return "struct " + t->struct_name() + " {" +
             std::to_string(t->fields().size()) + " fields}";
  }
  return "?";
}

/// Recursively pretty-prints units [unit, unit + type->prim_units()) of a
/// block through a View; arrays are truncated after `max_elems`.
void print_value(iw::Client& client, iw::client::View& view,
                 const iw::TypeDescriptor* type, uint64_t unit, int indent,
                 uint64_t max_elems = 8) {
  auto pad = [&] { std::printf("%*s", indent, ""); };
  switch (type->kind()) {
    case iw::TypeKind::kPrimitive:
      pad();
      if (type->primitive() == iw::PrimitiveKind::kFloat32 ||
          type->primitive() == iw::PrimitiveKind::kFloat64) {
        std::printf("%g\n", view.get_f64(unit));
      } else {
        std::printf("%lld\n", static_cast<long long>(view.get_int(unit)));
      }
      break;
    case iw::TypeKind::kString:
      pad();
      std::printf("\"%s\"\n", view.get_string(unit).c_str());
      break;
    case iw::TypeKind::kPointer: {
      pad();
      void* p = view.get_ptr(unit);
      std::printf("-> %s\n", p ? client.ptr_to_mip(p).c_str() : "(null)");
      break;
    }
    case iw::TypeKind::kArray: {
      uint64_t n = std::min<uint64_t>(type->count(), max_elems);
      for (uint64_t i = 0; i < n; ++i) {
        pad();
        std::printf("[%llu]\n", static_cast<unsigned long long>(i));
        print_value(client, view, type->element(),
                    unit + i * type->element()->prim_units(), indent + 2,
                    max_elems);
      }
      if (n < type->count()) {
        pad();
        std::printf("... (%llu more)\n",
                    static_cast<unsigned long long>(type->count() - n));
      }
      break;
    }
    case iw::TypeKind::kStruct:
      for (const auto& f : type->fields()) {
        pad();
        std::printf(".%s\n", f.name.c_str());
        print_value(client, view, f.type, unit + f.prim_offset, indent + 2,
                    max_elems);
      }
      break;
  }
}

int dump_data(unsigned port, const std::string& url) {
  iw::Client client([port](const std::string&) {
    return std::make_shared<iw::TcpClientChannel>(static_cast<uint16_t>(port));
  });
  iw::ClientSegment* seg = client.open_segment(url, /*create=*/false);
  client.read_lock(seg);
  std::printf("data (version %u):\n", seg->version());
  seg->heap().for_each_block([&](iw::client::BlockHeader* blk) {
    std::printf("block #%u%s%s:\n", blk->serial, blk->name ? " " : "",
                blk->name ? blk->name->c_str() : "");
    iw::client::View view(client, blk);
    print_value(client, view, blk->type, 0, 2);
  });
  client.read_unlock(seg);
  return 0;
}

const char* wal_type_name(iw::server::WalRecordType type) {
  switch (type) {
    case iw::server::WalRecordType::kSegmentCreate: return "segment-create";
    case iw::server::WalRecordType::kRegisterType: return "register-type";
    case iw::server::WalRecordType::kCommit: return "commit";
    case iw::server::WalRecordType::kSegmentDestroy: return "segment-destroy";
  }
  return "?";
}

int dump_wal(const std::string& path) {
  auto replay = iw::server::WriteAheadLog::replay(path);
  if (replay.missing) {
    std::fprintf(stderr, "iwinspect: no such journal: %s\n", path.c_str());
    return 1;
  }
  std::printf("journal  %s\n", path.c_str());
  std::printf("records  %zu\n", replay.records.size());
  uint64_t stored = 0, raw = 0, compressed = 0;
  size_t index = 0;
  for (const auto& rec : replay.records) {
    stored += rec.stored_bytes;
    raw += rec.payload.size();
    if (rec.compressed) ++compressed;
    std::printf("  [%zu] %-15s", index++, wal_type_name(rec.type));
    if (rec.type == iw::server::WalRecordType::kCommit &&
        rec.payload.size() >= 4) {
      iw::BufReader r(rec.payload.data(), rec.payload.size());
      std::printf(" v%-6u", r.read_u32());
    } else {
      std::printf("        ");
    }
    std::printf(" %6llu bytes on disk, %6zu raw%s\n",
                static_cast<unsigned long long>(rec.stored_bytes),
                rec.payload.size(), rec.compressed ? "  (compressed)" : "");
  }
  std::printf("compressed %llu/%zu records, %llu bytes on disk for %llu raw\n",
              static_cast<unsigned long long>(compressed),
              replay.records.size(), static_cast<unsigned long long>(stored),
              static_cast<unsigned long long>(raw));
  if (replay.torn_tail) {
    std::printf("torn tail: %llu bytes past offset %llu do not parse\n",
                static_cast<unsigned long long>(replay.truncated_bytes),
                static_cast<unsigned long long>(replay.valid_bytes));
  }
  return 0;
}

int dump_chain(const std::string& path) {
  auto scan = iw::server::scan_chain(path);
  if (scan.missing) {
    std::fprintf(stderr, "iwinspect: no such chain: %s\n", path.c_str());
    return 1;
  }
  std::printf("chain    %s\n", path.c_str());
  if (!scan.records.empty()) {
    std::printf("base     snapshot v%u\n", scan.records.front().base_version);
  }
  std::printf("depth    %zu\n", scan.records.size());
  uint64_t stored = 0, raw = 0;
  size_t index = 0;
  for (const auto& rec : scan.records) {
    stored += rec.stored_bytes;
    raw += rec.sections.size();
    std::printf("  [%zu] v%u -> v%u  %6llu bytes on disk, %6zu raw%s\n",
                index++, rec.from_version, rec.to_version,
                static_cast<unsigned long long>(rec.stored_bytes),
                rec.sections.size(),
                rec.compressed ? "  (compressed)" : "");
  }
  std::printf("total    %llu bytes on disk for %llu raw\n",
              static_cast<unsigned long long>(stored),
              static_cast<unsigned long long>(raw));
  if (scan.torn) {
    std::printf("torn tail: bytes past offset %llu do not parse\n",
                static_cast<unsigned long long>(scan.valid_bytes));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned port = 7747;
  bool data = false;
  std::string url;
  std::string wal_path;
  std::string chain_path;
  for (int i = 1; i < argc; ++i) {
    if (std::sscanf(argv[i], "--port=%u", &port) == 1) continue;
    if (std::strcmp(argv[i], "--data") == 0) {
      data = true;
      continue;
    }
    if (std::strcmp(argv[i], "--wal") == 0 && i + 1 < argc) {
      wal_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--chain") == 0 && i + 1 < argc) {
      chain_path = argv[++i];
      continue;
    }
    url = argv[i];
  }
  if (!wal_path.empty() || !chain_path.empty()) {
    try {
      int rc = 0;
      if (!wal_path.empty()) rc = dump_wal(wal_path);
      if (rc == 0 && !chain_path.empty()) rc = dump_chain(chain_path);
      return rc;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "iwinspect: %s\n", e.what());
      return 1;
    }
  }
  if (url.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--port=N] [--data] <segment-url>\n"
                 "       %s --wal <file.iwlog>\n"
                 "       %s --chain <file.iwinc>\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  if (data) {
    try {
      return dump_data(port, url);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "iwinspect: %s\n", e.what());
      return 1;
    }
  }

  try {
    iw::TcpClientChannel channel(static_cast<uint16_t>(port));
    iw::Buffer payload;
    payload.append_lp_string(url);
    iw::Frame resp =
        channel.call(iw::MsgType::kSegmentInfo, std::move(payload));
    iw::BufReader r = resp.reader();

    uint32_t version = r.read_u32();
    std::printf("segment  %s\n", url.c_str());
    std::printf("version  %u\n", version);

    iw::TypeRegistry registry(iw::Platform::native().rules);
    uint32_t n_types = r.read_u32();
    std::vector<const iw::TypeDescriptor*> types;
    std::printf("types    %u\n", n_types);
    for (uint32_t serial = 1; serial <= n_types; ++serial) {
      uint32_t len = r.read_u32();
      auto graph = r.read_bytes(len);
      iw::BufReader gr(graph.data(), graph.size());
      const iw::TypeDescriptor* t = iw::TypeCodec::decode_graph(gr, registry);
      types.push_back(t);
      std::printf("  [%u] %-9s %s  (%llu units, %u bytes native)\n", serial,
                  kind_name(t->kind()), describe(t).c_str(),
                  static_cast<unsigned long long>(t->prim_units()),
                  t->local_size());
    }

    uint32_t n_blocks = r.read_u32();
    std::printf("blocks   %u\n", n_blocks);
    for (uint32_t i = 0; i < n_blocks; ++i) {
      uint32_t serial = r.read_u32();
      uint32_t type_serial = r.read_u32();
      std::string name = r.read_lp_string();
      std::printf("  #%-6u type=%-3u %s\n", serial, type_serial,
                  name.empty() ? "(unnamed)" : name.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iwinspect: %s\n", e.what());
    return 1;
  }
  return 0;
}
