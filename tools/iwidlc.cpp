// iwidlc — the InterWeave IDL compiler CLI.
//
// Usage: iwidlc [-n namespace] <input.idl> [output.hpp]
//
// Reads an IDL file, validates it, and writes a generated C++ header (to
// stdout when no output path is given).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "idl/codegen.hpp"
#include "idl/parser.hpp"

namespace {
int usage() {
  std::cerr << "usage: iwidlc [-n namespace] <input.idl> [output.hpp]\n";
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  iw::idl::CodegenOptions options;
  int argi = 1;
  if (argi < argc && std::string(argv[argi]) == "-n") {
    if (argi + 1 >= argc) return usage();
    options.cpp_namespace = argv[argi + 1];
    argi += 2;
  }
  if (argi >= argc) return usage();
  std::string input_path = argv[argi++];
  std::string output_path = (argi < argc) ? argv[argi++] : "";

  std::ifstream in(input_path);
  if (!in) {
    std::cerr << "iwidlc: cannot open " << input_path << "\n";
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    iw::idl::IdlFile file = iw::idl::parse(source.str());
    std::string header =
        iw::idl::generate_cpp_header(file, source.str(), options);
    if (output_path.empty()) {
      std::cout << header;
    } else {
      std::ofstream out(output_path);
      if (!out) {
        std::cerr << "iwidlc: cannot write " << output_path << "\n";
        return 1;
      }
      out << header;
    }
  } catch (const std::exception& e) {
    std::cerr << "iwidlc: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
