// iwserver — standalone InterWeave segment server.
//
// Usage: iwserver [--port=N] [--checkpoint-dir=PATH] [--checkpoint-every=N]
//                 [--revoke-deadline-ms=N] [--grant-ttl-ms=N] [--verbose]
//
// Serves segments over TCP until SIGINT/SIGTERM; with a checkpoint
// directory it recovers existing segments at startup, checkpoints every N
// versions while running, and writes a final checkpoint on shutdown.
// --revoke-deadline-ms bounds how long a writer waits for cached reader
// locks to ack revocation (0 disables lock caching); --grant-ttl-ms sweeps
// cached grants idle longer than the TTL without a revoke round trip, so a
// crashed holder stops taxing writers (0 disables the sweep).
#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "net/tcp.hpp"
#include "server/server.hpp"
#include "util/logging.hpp"

namespace {
std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  unsigned port = 7747;  // "IW" on a phone pad, roughly
  unsigned checkpoint_every = 0;
  unsigned revoke_deadline_ms = 0;
  unsigned grant_ttl_ms = 0;
  iw::server::SegmentServer::Options options;
  for (int i = 1; i < argc; ++i) {
    char path[4096];
    if (std::sscanf(argv[i], "--port=%u", &port) == 1) continue;
    if (std::sscanf(argv[i], "--checkpoint-every=%u", &checkpoint_every) == 1) {
      continue;
    }
    if (std::sscanf(argv[i], "--checkpoint-dir=%4095s", path) == 1) {
      options.checkpoint_dir = path;
      continue;
    }
    if (std::sscanf(argv[i], "--revoke-deadline-ms=%u", &revoke_deadline_ms) ==
        1) {
      options.revoke_deadline_ms = revoke_deadline_ms;
      continue;
    }
    if (std::sscanf(argv[i], "--grant-ttl-ms=%u", &grant_ttl_ms) == 1) {
      options.cached_grant_ttl_ms = grant_ttl_ms;
      continue;
    }
    if (std::strcmp(argv[i], "--verbose") == 0) {
      iw::set_log_level(iw::LogLevel::kDebug);
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--port=N] [--checkpoint-dir=PATH] "
                 "[--checkpoint-every=N] [--revoke-deadline-ms=N] "
                 "[--grant-ttl-ms=N] [--verbose]\n",
                 argv[0]);
    return 2;
  }
  options.checkpoint_every = checkpoint_every;

  try {
    iw::server::SegmentServer core(options);
    if (!options.checkpoint_dir.empty()) {
      core.recover();
      std::printf("recovered checkpoints from %s\n",
                  options.checkpoint_dir.c_str());
    }
    iw::TcpServer server(core, static_cast<uint16_t>(port));
    std::printf("iwserver listening on 127.0.0.1:%u\n", server.port());

    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = handle_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    // Writers apply the grant TTL inline, but fully idle segments need this
    // periodic sweep to reclaim grants from crashed holders.
    auto last_sweep = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (options.cached_grant_ttl_ms != 0) {
        auto now = std::chrono::steady_clock::now();
        if (now - last_sweep >=
            std::chrono::milliseconds(options.cached_grant_ttl_ms)) {
          core.sweep_expired_grants();
          last_sweep = now;
        }
      }
    }
    std::printf("shutting down...\n");
    server.shutdown();
    if (!options.checkpoint_dir.empty()) {
      core.checkpoint();
      std::printf("final checkpoint written\n");
    }
    auto stats = core.stats();
    std::printf("served %llu requests (%llu updates, %llu notifications)\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.updates_sent),
                static_cast<unsigned long long>(stats.notifications_sent));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iwserver: %s\n", e.what());
    return 1;
  }
  return 0;
}
