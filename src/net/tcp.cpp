#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/logging.hpp"

namespace iw {

namespace {

/// Sends every byte of `data`; returns how many send() syscalls it took.
size_t write_all(int fd, const uint8_t* data, size_t n) {
  size_t syscalls = 0;
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    ++syscalls;
    data += w;
    n -= static_cast<size_t>(w);
  }
  return syscalls;
}

/// Vectored equivalent of write_all: sends every slice of `chain` in order
/// via sendmsg, so a frame header and its payload go out in one syscall
/// without being glued into a contiguous copy first. Returns the syscall
/// count.
size_t write_all_vec(int fd, const IoChain& chain) {
  iovec iov[IoChain::kMaxSlices];
  size_t count = chain.count();
  for (size_t i = 0; i < count; ++i) {
    iov[i].iov_base = const_cast<void*>(chain.slices()[i].data);
    iov[i].iov_len = chain.slices()[i].len;
  }
  size_t idx = 0;
  size_t syscalls = 0;
  while (idx < count) {
    msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = count - idx;
    ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("sendmsg");
    }
    ++syscalls;
    size_t rem = static_cast<size_t>(w);
    while (idx < count && rem >= iov[idx].iov_len) {
      rem -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count) {  // partial write into slice idx
      iov[idx].iov_base = static_cast<uint8_t*>(iov[idx].iov_base) + rem;
      iov[idx].iov_len -= rem;
    }
  }
  return syscalls;
}

/// Reads exactly n bytes; returns false on clean EOF at a frame boundary.
bool read_exact(int fd, uint8_t* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw Error::transport(ErrorCode::kConnReset,
                             "connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

/// Returns false on clean EOF.
bool recv_frame(int fd, Frame* frame, std::atomic<uint64_t>* bytes_counter) {
  uint8_t header[kFrameHeaderSize];
  if (!read_exact(fd, header, sizeof header)) return false;
  FrameHeader h = decode_frame_header(header);
  frame->type = h.type;
  frame->request_id = h.request_id;
  frame->payload.resize(h.payload_size);
  if (h.payload_size > 0 &&
      !read_exact(fd, frame->payload.data(), h.payload_size)) {
    throw Error::transport(ErrorCode::kConnReset,
                           "connection closed mid-frame");
  }
  if (bytes_counter) {
    bytes_counter->fetch_add(kFrameHeaderSize + h.payload_size,
                             std::memory_order_relaxed);
  }
  return true;
}

/// "kAcquireWrite req#42 after 123ms" — the request context every transport
/// throw out of TcpClientChannel::call carries, so a failure in a long
/// multi-call operation identifies which call died and how long it waited.
std::string call_context(MsgType type, uint32_t request_id,
                         std::chrono::steady_clock::time_point start) {
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return msg_type_name(type) + " req#" + std::to_string(request_id) +
         " after " + std::to_string(elapsed_ms) + "ms";
}

/// Non-blocking connect with a poll()-based deadline, so a black-holed
/// server address fails in bounded time instead of the OS default (minutes).
void connect_with_timeout(int fd, const sockaddr_in& addr,
                          uint32_t timeout_ms) {
  if (timeout_ms == 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0) {
      throw_errno("connect");
    }
    return;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) throw_errno("connect");
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready == 0) {
      throw Error::transport(ErrorCode::kTimedOut,
                             "connect timed out after " +
                                 std::to_string(timeout_ms) + "ms");
    }
    if (ready < 0) throw_errno("poll(connect)");
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      errno = err;
      throw_errno("connect");
    }
  }
  ::fcntl(fd, F_SETFL, flags);
}

}  // namespace

// --- server ---------------------------------------------------------------

TcpServer::TcpServer(ServerCore& core, uint16_t port)
    : TcpServer(core, port, Options()) {}

TcpServer::TcpServer(ServerCore& core, uint16_t port, Options options)
    : reactor_(std::make_unique<Reactor>(core, port, options)) {}

TcpServer::~TcpServer() { shutdown(); }

void TcpServer::shutdown() { reactor_->shutdown(); }

// --- client ---------------------------------------------------------------

TcpClientChannel::TcpClientChannel(uint16_t port, Options options)
    : options_(options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  // Socket options before connect, so they apply from the first byte.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  try {
    connect_with_timeout(fd_, addr, options_.connect_timeout_ms);
  } catch (...) {
    ::close(fd_);
    throw;
  }
  notify_state_ = std::make_shared<NotifyState>();
  notify_dispatcher_ =
      std::thread([state = notify_state_] { notify_dispatch_loop(state); });
  receiver_ = std::thread([this] { receive_loop(); });
}

TcpClientChannel::~TcpClientChannel() {
  ::shutdown(fd_, SHUT_RDWR);
  if (receiver_.joinable()) receiver_.join();
  const bool on_dispatcher =
      std::this_thread::get_id() == notify_dispatcher_.get_id();
  {
    std::lock_guard lock(notify_state_->mu);
    notify_state_->stop = true;
    if (on_dispatcher) {
      // We ARE the dispatcher: a handler's call into this channel failed
      // and its owner is tearing us down from inside the dispatch. Drop
      // the rest of the queue — their handlers could touch objects that
      // die with us — so the detached loop exits as soon as the current
      // handler unwinds.
      notify_state_->queue.clear();
      notify_state_->handler = nullptr;
    }
  }
  notify_state_->cv.notify_all();
  if (notify_dispatcher_.joinable()) {
    // The receiver is gone, so the queue can only shrink: the dispatcher
    // drains what is left and exits.
    if (on_dispatcher) {
      notify_dispatcher_.detach();
    } else {
      notify_dispatcher_.join();
    }
  }
  ::close(fd_);
}

void TcpClientChannel::notify_dispatch_loop(
    std::shared_ptr<NotifyState> state) {
  std::unique_lock lock(state->mu);
  for (;;) {
    state->cv.wait(lock, [&] { return !state->queue.empty() || state->stop; });
    if (state->queue.empty()) return;  // stopped and drained
    Frame frame = std::move(state->queue.front());
    state->queue.pop_front();
    std::function<void(const Frame&)> fn = state->handler;
    lock.unlock();
    // No channel lock held: the handler may call() right back into this
    // channel (kRevokeAck does) while the receiver delivers the response.
    if (fn) {
      try {
        fn(frame);
      } catch (const std::exception& e) {
        IW_LOG(kWarn) << "notify handler threw: " << e.what();
      }
    }
    lock.lock();
  }
}

void TcpClientChannel::receive_loop() {
  std::string reason = "connection closed by server";
  try {
    Frame frame;
    while (recv_frame(fd_, &frame, &bytes_received_)) {
      if (frame.request_id == 0) {
        {
          std::lock_guard lock(notify_state_->mu);
          notify_state_->queue.push_back(std::move(frame));
        }
        notify_state_->cv.notify_one();
        frame = Frame{};
        continue;
      }
      std::lock_guard lock(mu_);
      if (abandoned_.erase(frame.request_id) > 0) {
        // Late response to a call whose caller already hit its deadline —
        // discard rather than park it in `responses_` forever.
        frame = Frame{};
        continue;
      }
      responses_.emplace(frame.request_id, std::move(frame));
      cv_.notify_all();
      frame = Frame{};
    }
  } catch (const Error& e) {
    IW_LOG(kDebug) << "tcp receive loop: " << e.what();
    reason = e.what();
  } catch (const std::exception& e) {
    // A non-Error exception (allocation failure, a throwing notify
    // handler) must still drain every in-flight call, not kill the
    // process via an escaped thread exception.
    IW_LOG(kWarn) << "tcp receive loop: " << e.what();
    reason = e.what();
  }
  fail_channel(Error::transport(ErrorCode::kConnReset, reason));
}

void TcpClientChannel::fail_channel(const Error& reason) {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    close_reason_ = reason.what();
  }
  cv_.notify_all();
  // Wake callers parked in the send path too: a flusher lingering on a
  // batch window must cut it short, and once the socket is dead new
  // batches would only block.
  send_cv_.notify_all();
}

void TcpClientChannel::send_frame_coalesced(const uint8_t* header,
                                            const Buffer& payload) {
  const size_t frame_bytes = kFrameHeaderSize + payload.size();
  std::unique_lock lock(send_mu_);
  if (send_error_) throw *send_error_;

  // Fast path: queue empty, no flusher, no linger window — vectored send
  // straight from the caller's buffer, zero copy, exactly the old
  // single-writer behaviour.
  if (!send_flusher_active_ && send_pending_.empty() &&
      options_.batch_window_us == 0) {
    send_flusher_active_ = true;
    lock.unlock();
    std::optional<Error> err;
    size_t syscalls = 0;
    try {
      IoChain chain;
      chain.add(header, kFrameHeaderSize);
      chain.add(payload.slice());
      syscalls = write_all_vec(fd_, chain);
    } catch (const Error& e) {
      err = e;
    }
    lock.lock();
    send_flusher_active_ = false;
    if (err) {
      send_error_ = err;
      send_cv_.notify_all();
      throw *err;
    }
    send_cv_.notify_all();  // frames queued meanwhile need a new flusher
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    send_syscalls_.fetch_add(syscalls, std::memory_order_relaxed);
    bytes_sent_.fetch_add(frame_bytes, std::memory_order_relaxed);
    return;
  }

  // Slow path: queue the frame, then either carry the batch ourselves or
  // wait for the active flusher to carry it for us.
  send_pending_.append(header, kFrameHeaderSize);
  send_pending_.append(payload.data(), payload.size());
  send_queued_pos_ += frame_bytes;
  ++send_pending_frames_;
  const uint64_t my_end = send_queued_pos_;
  send_cv_.notify_all();  // a lingering flusher may now have a full batch

  for (;;) {
    if (send_flushed_pos_ >= my_end) return;  // someone flushed my frame
    if (send_error_) throw *send_error_;
    if (!send_flusher_active_) {
      send_flusher_active_ = true;
      if (options_.batch_window_us > 0) {
        // Group commit: linger briefly so a burst of concurrent callers
        // lands in this batch instead of the next syscall.
        send_cv_.wait_for(
            lock, std::chrono::microseconds(options_.batch_window_us), [&] {
              return send_pending_.size() >= options_.batch_max_bytes ||
                     send_error_.has_value();
            });
        if (send_error_) {
          send_flusher_active_ = false;
          send_cv_.notify_all();
          throw *send_error_;
        }
      }
      Buffer batch = std::move(send_pending_);
      send_pending_ = Buffer();
      const uint64_t batch_frames = send_pending_frames_;
      send_pending_frames_ = 0;
      const uint64_t batch_end = send_flushed_pos_ + batch.size();
      lock.unlock();
      std::optional<Error> err;
      size_t syscalls = 0;
      try {
        syscalls = write_all(fd_, batch.data(), batch.size());
      } catch (const Error& e) {
        err = e;
      }
      lock.lock();
      send_flusher_active_ = false;
      if (err) {
        send_error_ = err;
        send_cv_.notify_all();
        throw *err;
      }
      send_flushed_pos_ = batch_end;
      frames_sent_.fetch_add(batch_frames, std::memory_order_relaxed);
      send_syscalls_.fetch_add(syscalls, std::memory_order_relaxed);
      if (batch_frames > 1) {
        frames_batched_.fetch_add(batch_frames, std::memory_order_relaxed);
      }
      bytes_sent_.fetch_add(batch.size(), std::memory_order_relaxed);
      send_cv_.notify_all();
      // Loop: my frame was in this batch, so the next check returns.
    } else {
      send_cv_.wait(lock);
    }
  }
}

Frame TcpClientChannel::call(MsgType type, Buffer& payload) {
  const auto start = std::chrono::steady_clock::now();
  Frame request;
  request.type = type;
  {
    std::lock_guard lock(mu_);
    if (closed_) {
      throw Error::transport(
          ErrorCode::kConnReset,
          "channel closed: " + close_reason_ + " (" +
              call_context(type, next_request_id_, start) + ")");
    }
    request.request_id = next_request_id_++;
  }
  uint8_t header[kFrameHeaderSize];
  encode_frame_header(request.type, request.request_id, payload.size(),
                      header);
  try {
    send_frame_coalesced(header, payload);
  } catch (const Error& e) {
    throw Error::transport(e.code(),
                           std::string(e.what()) + " (sending " +
                               call_context(type, request.request_id, start) +
                               ")");
  }
  payload.clear();

  std::unique_lock lock(mu_);
  auto ready = [&] {
    return closed_ || responses_.count(request.request_id) > 0;
  };
  if (options_.call_timeout_ms == 0) {
    cv_.wait(lock, ready);
  } else if (!cv_.wait_for(
                 lock, std::chrono::milliseconds(options_.call_timeout_ms),
                 ready)) {
    abandoned_.insert(request.request_id);
    call_timeouts_.fetch_add(1, std::memory_order_relaxed);
    throw Error::transport(ErrorCode::kTimedOut,
                           "call deadline exceeded (" +
                               call_context(type, request.request_id, start) +
                               ")");
  }
  auto it = responses_.find(request.request_id);
  if (it == responses_.end()) {
    throw Error::transport(ErrorCode::kConnReset,
                           "connection closed awaiting response: " +
                               close_reason_ + " (" +
                               call_context(type, request.request_id, start) +
                               ")");
  }
  Frame response = std::move(it->second);
  responses_.erase(it);
  lock.unlock();
  return check_response(std::move(response));
}

void TcpClientChannel::set_notify_handler(std::function<void(const Frame&)> fn) {
  std::lock_guard lock(notify_state_->mu);
  notify_state_->handler = std::move(fn);
}

}  // namespace iw
