#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/logging.hpp"

namespace iw {

namespace {

void write_all(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

/// Vectored equivalent of write_all: sends every slice of `chain` in order
/// via sendmsg, so a frame header and its payload go out in one syscall
/// without being glued into a contiguous copy first.
void write_all_vec(int fd, const IoChain& chain) {
  iovec iov[IoChain::kMaxSlices];
  size_t count = chain.count();
  for (size_t i = 0; i < count; ++i) {
    iov[i].iov_base = const_cast<void*>(chain.slices()[i].data);
    iov[i].iov_len = chain.slices()[i].len;
  }
  size_t idx = 0;
  while (idx < count) {
    msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = count - idx;
    ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("sendmsg");
    }
    size_t rem = static_cast<size_t>(w);
    while (idx < count && rem >= iov[idx].iov_len) {
      rem -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count) {  // partial write into slice idx
      iov[idx].iov_base = static_cast<uint8_t*>(iov[idx].iov_base) + rem;
      iov[idx].iov_len -= rem;
    }
  }
}

/// Reads exactly n bytes; returns false on clean EOF at a frame boundary.
bool read_exact(int fd, uint8_t* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw Error::transport(ErrorCode::kConnReset,
                             "connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

void send_frame(int fd, std::mutex& write_mu, const Frame& frame,
                std::atomic<uint64_t>* bytes_counter) {
  uint8_t header[kFrameHeaderSize];
  encode_frame_header(frame.type, frame.request_id, frame.payload.size(),
                      header);
  IoChain chain;
  chain.add(header, sizeof header);
  chain.add(frame.payload.data(), frame.payload.size());
  std::lock_guard lock(write_mu);
  write_all_vec(fd, chain);
  if (bytes_counter) {
    bytes_counter->fetch_add(chain.total_bytes(), std::memory_order_relaxed);
  }
}

/// Returns false on clean EOF.
bool recv_frame(int fd, Frame* frame, std::atomic<uint64_t>* bytes_counter) {
  uint8_t header[kFrameHeaderSize];
  if (!read_exact(fd, header, sizeof header)) return false;
  FrameHeader h = decode_frame_header(header);
  frame->type = h.type;
  frame->request_id = h.request_id;
  frame->payload.resize(h.payload_size);
  if (h.payload_size > 0 &&
      !read_exact(fd, frame->payload.data(), h.payload_size)) {
    throw Error::transport(ErrorCode::kConnReset,
                           "connection closed mid-frame");
  }
  if (bytes_counter) {
    bytes_counter->fetch_add(kFrameHeaderSize + h.payload_size,
                             std::memory_order_relaxed);
  }
  return true;
}

int make_listener(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("bind");
  }
  if (::listen(fd, 64) < 0) {
    int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

std::atomic<SessionId> g_next_tcp_session{1u << 20};

/// "kAcquireWrite req#42 after 123ms" — the request context every transport
/// throw out of TcpClientChannel::call carries, so a failure in a long
/// multi-call operation identifies which call died and how long it waited.
std::string call_context(MsgType type, uint32_t request_id,
                         std::chrono::steady_clock::time_point start) {
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return msg_type_name(type) + " req#" + std::to_string(request_id) +
         " after " + std::to_string(elapsed_ms) + "ms";
}

/// Non-blocking connect with a poll()-based deadline, so a black-holed
/// server address fails in bounded time instead of the OS default (minutes).
void connect_with_timeout(int fd, const sockaddr_in& addr,
                          uint32_t timeout_ms) {
  if (timeout_ms == 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0) {
      throw_errno("connect");
    }
    return;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) throw_errno("connect");
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready == 0) {
      throw Error::transport(ErrorCode::kTimedOut,
                             "connect timed out after " +
                                 std::to_string(timeout_ms) + "ms");
    }
    if (ready < 0) throw_errno("poll(connect)");
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      errno = err;
      throw_errno("connect");
    }
  }
  ::fcntl(fd, F_SETFL, flags);
}

}  // namespace

// With the sharded server, notifications for one segment can fire while the
// connection is being torn down by its serve thread; the write mutex
// therefore guards the fd's lifecycle (not just write interleaving) so a
// late notification can never hit a closed — possibly reused — descriptor.
struct TcpServer::Connection {
  std::mutex write_mu;  // guards fd lifecycle and frame writes
  int fd = -1;          // -1 once closed
  SessionId session = 0;
  std::thread thread;

  void send(const Frame& frame) {
    uint8_t header[kFrameHeaderSize];
    encode_frame_header(frame.type, frame.request_id, frame.payload.size(),
                        header);
    IoChain chain;
    chain.add(header, sizeof header);
    chain.add(frame.payload.data(), frame.payload.size());
    std::lock_guard lock(write_mu);
    if (fd < 0) throw Error(ErrorCode::kIo, "connection closed");
    write_all_vec(fd, chain);
  }
  void shutdown_socket() {
    std::lock_guard lock(write_mu);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  void close_socket() {
    std::lock_guard lock(write_mu);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

TcpServer::TcpServer(ServerCore& core, uint16_t port) : core_(core) {
  listen_fd_ = make_listener(port, &port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { shutdown(); }

void TcpServer::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed during shutdown
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->session = g_next_tcp_session.fetch_add(1);
    {
      std::lock_guard lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      connections_.push_back(conn);
    }
    core_.on_connect(conn->session, [conn](const Frame& frame) {
      try {
        conn->send(frame);
      } catch (const Error&) {
        // Connection is going away; the serve loop will clean up.
      }
    });
    conn->thread = std::thread([this, conn] { serve(conn); });
  }
}

void TcpServer::serve(std::shared_ptr<Connection> conn) {
  // The fd value is fixed for the connection's lifetime and this thread is
  // the only closer, so the blocking recv path reads it lock-free.
  const int fd = conn->fd;
  try {
    Frame request;
    while (recv_frame(fd, &request, nullptr)) {
      Frame response;
      try {
        response = core_.handle(conn->session, request);
      } catch (const Error& e) {
        response = make_error_frame(e);
      } catch (const std::exception& e) {
        response = make_error_frame(Error(ErrorCode::kInternal, e.what()));
      }
      response.request_id = request.request_id;
      conn->send(response);
    }
  } catch (const Error& e) {
    IW_LOG(kDebug) << "tcp connection error: " << e.what();
  }
  // Disconnect before closing: the core drops the session's notifier (and
  // any writer locks) first, so the window where a stale notifier targets a
  // closed connection is as small as possible — and send() rejects it.
  core_.on_disconnect(conn->session);
  conn->close_socket();
}

void TcpServer::shutdown() {
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    conns = connections_;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Shut every socket down before joining any thread: a serve thread can be
  // blocked in the core waiting for a writer lock that only drops when the
  // holder's connection disconnects, so tear-down must reach all
  // connections before the first join.
  for (auto& conn : conns) {
    conn->shutdown_socket();
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

TcpClientChannel::TcpClientChannel(uint16_t port, Options options)
    : options_(options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  try {
    connect_with_timeout(fd_, addr, options_.connect_timeout_ms);
  } catch (...) {
    ::close(fd_);
    throw;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  receiver_ = std::thread([this] { receive_loop(); });
}

TcpClientChannel::~TcpClientChannel() {
  ::shutdown(fd_, SHUT_RDWR);
  if (receiver_.joinable()) receiver_.join();
  ::close(fd_);
}

void TcpClientChannel::receive_loop() {
  try {
    Frame frame;
    while (recv_frame(fd_, &frame, &bytes_received_)) {
      if (frame.request_id == 0) {
        std::function<void(const Frame&)> fn;
        {
          std::lock_guard lock(notify_mu_);
          fn = notify_;
        }
        if (fn) fn(frame);
        continue;
      }
      std::lock_guard lock(mu_);
      if (abandoned_.erase(frame.request_id) > 0) {
        // Late response to a call whose caller already hit its deadline —
        // discard rather than park it in `responses_` forever.
        frame = Frame{};
        continue;
      }
      responses_.emplace(frame.request_id, std::move(frame));
      cv_.notify_all();
      frame = Frame{};
    }
  } catch (const Error& e) {
    IW_LOG(kDebug) << "tcp receive loop: " << e.what();
  }
  std::lock_guard lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

Frame TcpClientChannel::call(MsgType type, Buffer& payload) {
  const auto start = std::chrono::steady_clock::now();
  Frame request;
  request.type = type;
  {
    std::lock_guard lock(mu_);
    if (closed_) {
      throw Error::transport(ErrorCode::kConnReset,
                             "channel closed (" +
                                 call_context(type, next_request_id_, start) +
                                 ")");
    }
    request.request_id = next_request_id_++;
  }
  // Vectored send straight from the caller's buffer: the payload is never
  // copied into a contiguous frame, and the caller keeps its capacity.
  uint8_t header[kFrameHeaderSize];
  encode_frame_header(request.type, request.request_id, payload.size(),
                      header);
  IoChain chain;
  chain.add(header, sizeof header);
  chain.add(payload.slice());
  try {
    std::lock_guard lock(write_mu_);
    write_all_vec(fd_, chain);
  } catch (const Error& e) {
    throw Error::transport(e.code(),
                           std::string(e.what()) + " (sending " +
                               call_context(type, request.request_id, start) +
                               ")");
  }
  bytes_sent_.fetch_add(chain.total_bytes(), std::memory_order_relaxed);
  payload.clear();

  std::unique_lock lock(mu_);
  auto ready = [&] {
    return closed_ || responses_.count(request.request_id) > 0;
  };
  if (options_.call_timeout_ms == 0) {
    cv_.wait(lock, ready);
  } else if (!cv_.wait_for(
                 lock, std::chrono::milliseconds(options_.call_timeout_ms),
                 ready)) {
    abandoned_.insert(request.request_id);
    call_timeouts_.fetch_add(1, std::memory_order_relaxed);
    throw Error::transport(ErrorCode::kTimedOut,
                           "call deadline exceeded (" +
                               call_context(type, request.request_id, start) +
                               ")");
  }
  auto it = responses_.find(request.request_id);
  if (it == responses_.end()) {
    throw Error::transport(ErrorCode::kConnReset,
                           "connection closed awaiting response (" +
                               call_context(type, request.request_id, start) +
                               ")");
  }
  Frame response = std::move(it->second);
  responses_.erase(it);
  lock.unlock();
  return check_response(std::move(response));
}

void TcpClientChannel::set_notify_handler(std::function<void(const Frame&)> fn) {
  std::lock_guard lock(notify_mu_);
  notify_ = std::move(fn);
}

}  // namespace iw
