#include "net/inproc.hpp"

namespace iw {

namespace {
std::atomic<SessionId> g_next_session{1};
}  // namespace

InProcChannel::InProcChannel(ServerCore& core)
    : core_(core), session_(g_next_session.fetch_add(1)) {
  core_.on_connect(session_, [this](const Frame& frame) {
    bytes_received_.fetch_add(frame_wire_size(frame),
                              std::memory_order_relaxed);
    std::function<void(const Frame&)> fn;
    {
      std::lock_guard lock(notify_mu_);
      fn = notify_;
    }
    if (fn) fn(frame);
  });
}

InProcChannel::~InProcChannel() { shutdown(); }

void InProcChannel::shutdown() noexcept {
  if (!down_.exchange(true)) core_.on_disconnect(session_);
}

Frame InProcChannel::call(MsgType type, Buffer& payload) {
  if (down_.load(std::memory_order_acquire)) {
    throw Error::transport(ErrorCode::kConnReset,
                           "connection closed (" + msg_type_name(type) + ")");
  }
  Frame request;
  request.type = type;
  request.request_id = next_request_id_.fetch_add(1);
  request.payload = payload.take();
  bytes_sent_.fetch_add(frame_wire_size(request), std::memory_order_relaxed);

  Frame response = core_.handle(session_, request);
  response.request_id = request.request_id;
  bytes_received_.fetch_add(frame_wire_size(response),
                            std::memory_order_relaxed);
  // The request was handled synchronously; hand the payload allocation back
  // to the caller so a reused collect buffer keeps its capacity.
  payload.adopt(std::move(request.payload));
  payload.clear();
  return check_response(std::move(response));
}

void InProcChannel::set_notify_handler(std::function<void(const Frame&)> fn) {
  std::lock_guard lock(notify_mu_);
  notify_ = std::move(fn);
}

}  // namespace iw
