// Deterministic fault injection for the transport layer.
//
// FaultyChannel and FaultyServerCore are decorators around the
// ClientChannel / ServerCore abstractions that inject failures according to
// a FaultSchedule — a seeded, fully deterministic program of faults, so a
// chaos test that fails under seed S fails identically on every rerun of
// seed S. The injectable faults are the ones the failure layer must
// survive:
//
//   * drop response   — the request reaches the server and is applied, but
//                       the response never comes back (manifests client-side
//                       as a call deadline, kTimedOut);
//   * delay N ms      — the call completes after an injected latency;
//   * truncate frame  — the request dies mid-frame: the server never sees
//                       it and the connection is unusable afterwards;
//   * sever at frame K— the connection drops (deterministically at the Kth
//                       frame, or probabilistically), releasing server-side
//                       session state exactly as a real disconnect would;
//   * duplicate notification — an unsolicited server push is delivered
//                       twice (notification handlers must be idempotent).
//
// Faults can be restricted to one MsgType (`only_type`) to target, say,
// exactly the kReleaseWrite path. Channel-side faults are transport errors
// (Error::is_transport() == true) so the reconnect/retry policy treats them
// exactly like real socket failures.
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>

#include "net/transport.hpp"
#include "util/rand.hpp"

namespace iw {

/// One injected fault decision.
struct FaultAction {
  enum class Kind : uint8_t {
    kNone,
    kDropResponse,
    kDelay,
    kTruncateFrame,
    kSever,
  };
  Kind kind = Kind::kNone;
  uint32_t delay_ms = 0;  // for kDelay
};

/// Seeded, deterministic fault program shared by the decorators (and across
/// reconnections: the test factory hands the same schedule to every channel
/// incarnation so frame counting continues where it left off).
class FaultSchedule {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Per-call probabilities in [0,1]; evaluated in the order
    /// sever > truncate > drop > delay, at most one fault per call.
    double sever_rate = 0;
    double truncate_rate = 0;
    double drop_response_rate = 0;
    double delay_rate = 0;
    uint32_t max_delay_ms = 3;  ///< injected delays are in [1, max]
    /// Probability that a notification is delivered twice.
    double duplicate_notify_rate = 0;
    /// When set, faults fire only on this request type (notification
    /// duplication is unaffected).
    std::optional<MsgType> only_type;
    /// When nonzero, sever deterministically at the Kth call frame
    /// (1-based, counted across reconnections), in addition to the rates.
    uint64_t sever_at_frame = 0;
  };

  explicit FaultSchedule(Options options)
      : options_(options), rng_(options.seed) {}

  /// Decides the fault (if any) for the next request frame. Thread-safe.
  FaultAction next_for_call(MsgType type) {
    std::lock_guard lock(mu_);
    uint64_t frame = ++frames_;
    if (!armed_) return {};
    if (options_.sever_at_frame != 0 && frame == options_.sever_at_frame) {
      return {FaultAction::Kind::kSever, 0};
    }
    if (options_.only_type && type != *options_.only_type) return {};
    // One uniform draw per call keeps the schedule deterministic even when
    // rates change between runs of the same seed.
    double u = rng_.uniform();
    double edge = options_.sever_rate;
    if (u < edge) return {FaultAction::Kind::kSever, 0};
    edge += options_.truncate_rate;
    if (u < edge) return {FaultAction::Kind::kTruncateFrame, 0};
    edge += options_.drop_response_rate;
    if (u < edge) return {FaultAction::Kind::kDropResponse, 0};
    edge += options_.delay_rate;
    if (u < edge) {
      uint32_t ms = 1 + static_cast<uint32_t>(
                            rng_.below(std::max(1u, options_.max_delay_ms)));
      return {FaultAction::Kind::kDelay, ms};
    }
    return {};
  }

  /// Decides whether the next notification is delivered twice. Thread-safe.
  bool duplicate_next_notify() {
    std::lock_guard lock(mu_);
    if (!armed_ || options_.duplicate_notify_rate <= 0) return false;
    return rng_.uniform() < options_.duplicate_notify_rate;
  }

  /// Arms/disarms injection (frame counting continues while disarmed, so a
  /// fault-free warm-up phase keeps seeded runs comparable).
  void arm(bool on) {
    std::lock_guard lock(mu_);
    armed_ = on;
  }

  uint64_t frames() const {
    std::lock_guard lock(mu_);
    return frames_;
  }

 private:
  mutable std::mutex mu_;
  Options options_;
  SplitMix64 rng_;
  uint64_t frames_ = 0;
  bool armed_ = true;
};

/// ClientChannel decorator injecting call-path faults. A severed channel
/// destroys its inner channel immediately — for the in-process transport
/// that runs the server's on_disconnect synchronously, for TCP it closes
/// the socket — so server-side cleanup happens exactly as it would for a
/// real dead connection; every later call fails until the owner (the
/// reconnect supervisor or the test) builds a fresh channel.
class FaultyChannel final : public ClientChannel {
 public:
  FaultyChannel(std::shared_ptr<ClientChannel> inner,
                std::shared_ptr<FaultSchedule> schedule);

  using ClientChannel::call;
  Frame call(MsgType type, Buffer& payload) override;
  void set_notify_handler(std::function<void(const Frame&)> fn) override;
  uint64_t bytes_sent() const override;
  uint64_t bytes_received() const override;
  uint64_t session_epoch() const override;
  ChannelFaultStats fault_stats() const override;

  bool severed() const;

  /// Forwards to the inner channel (decorators must not swallow a forced
  /// disconnect) and marks this channel severed.
  void shutdown() noexcept override;

 private:
  void sever_locked();

  mutable std::mutex mu_;
  std::shared_ptr<ClientChannel> inner_;  // null once severed
  std::shared_ptr<FaultSchedule> schedule_;
  uint64_t bytes_sent_at_sever_ = 0;
  uint64_t bytes_received_at_sever_ = 0;
};

/// Where inside one WAL append a crash is injected. The three points pin
/// down the three distinct on-disk outcomes a real power cut can leave:
///
///   * kShortWrite   — the process dies after only part of the record
///                     *header* reached the file: the log ends in fewer
///                     bytes than a frame header (classic short write);
///   * kMidRecord    — the header is complete but the process dies partway
///                     through the payload: the length field promises more
///                     bytes than exist, and the CRC cannot match;
///   * kBeforeSync   — the record is fully written but the process dies
///                     before fdatasync: the commit was never acknowledged,
///                     so recovery may legitimately surface it or not.
enum class WalCrashPoint : uint8_t {
  kNone,
  kShortWrite,
  kMidRecord,
  kBeforeSync,
};

/// Seeded crash program for durable-storage writers (the WAL), in the
/// mould of FaultSchedule: fully deterministic, so the crash harness can
/// fork a server, let it die at an exact append, and replay the identical
/// run against a fault-free oracle. Either pin the crash to the Nth append
/// (`crash_at_append`) or let a seeded draw pick appends at `crash_rate`.
class WalCrashSchedule {
 public:
  struct Options {
    uint64_t seed = 1;
    /// 1-based append index at which to crash; 0 disables the fixed point.
    uint64_t crash_at_append = 0;
    /// Per-append crash probability in [0,1] (evaluated only when the
    /// fixed point is disabled or already passed).
    double crash_rate = 0;
    WalCrashPoint point = WalCrashPoint::kNone;
  };

  explicit WalCrashSchedule(Options options)
      : options_(options), rng_(options.seed) {}

  /// Decides whether the WAL append now starting should crash, and where
  /// inside the append. Thread-safe.
  WalCrashPoint next_append() {
    std::lock_guard lock(mu_);
    uint64_t n = ++appends_;
    if (options_.point == WalCrashPoint::kNone) return WalCrashPoint::kNone;
    if (options_.crash_at_append != 0) {
      return n == options_.crash_at_append ? options_.point
                                           : WalCrashPoint::kNone;
    }
    if (options_.crash_rate > 0 && rng_.uniform() < options_.crash_rate) {
      return options_.point;
    }
    return WalCrashPoint::kNone;
  }

  uint64_t appends() const {
    std::lock_guard lock(mu_);
    return appends_;
  }

 private:
  mutable std::mutex mu_;
  Options options_;
  SplitMix64 rng_;
  uint64_t appends_ = 0;
};

/// Dies the way a power cut does: SIGKILL to self — no destructors, no
/// atexit, no buffered-stream flushes. The WAL calls this at an armed
/// WalCrashPoint; only ever reached inside a crash-harness child process.
[[noreturn]] void wal_crash_now() noexcept;

/// ServerCore decorator injecting server-side faults: request handling
/// delays and notification duplication/loss. (Response drops and severs
/// are connection-level faults and live in FaultyChannel, which can tear
/// the connection down; a core cannot.)
class FaultyServerCore final : public ServerCore {
 public:
  struct Options {
    /// Probability that a notification toward any client is dropped.
    double drop_notify_rate = 0;
  };

  FaultyServerCore(ServerCore& inner, std::shared_ptr<FaultSchedule> schedule)
      : FaultyServerCore(inner, std::move(schedule), Options()) {}
  FaultyServerCore(ServerCore& inner, std::shared_ptr<FaultSchedule> schedule,
                   Options options);

  void on_connect(SessionId session, Notifier notify) override;
  void on_disconnect(SessionId session) override;
  Frame handle(SessionId session, const Frame& request) override;

 private:
  ServerCore& inner_;
  std::shared_ptr<FaultSchedule> schedule_;
  Options options_;
  std::mutex rng_mu_;
  SplitMix64 rng_;
};

}  // namespace iw
