#include "net/fault.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>

namespace iw {

void wal_crash_now() noexcept {
  // SIGKILL cannot be caught: state at the instant of death is exactly what
  // a restarted server finds on disk. _exit is an unreachable backstop.
  ::kill(::getpid(), SIGKILL);
  ::_exit(137);
}

namespace {

[[noreturn]] void throw_severed(MsgType type) {
  throw Error::transport(ErrorCode::kConnReset,
                         "fault: connection severed (" + msg_type_name(type) +
                             " not delivered)");
}

}  // namespace

FaultyChannel::FaultyChannel(std::shared_ptr<ClientChannel> inner,
                             std::shared_ptr<FaultSchedule> schedule)
    : inner_(std::move(inner)), schedule_(std::move(schedule)) {}

void FaultyChannel::sever_locked() {
  if (inner_ == nullptr) return;
  bytes_sent_at_sever_ = inner_->bytes_sent();
  bytes_received_at_sever_ = inner_->bytes_received();
  // shutdown() makes the disconnect happen *here*, on the severing thread —
  // not whenever the last shared_ptr dies. The client's background ack
  // worker may pin the channel with an in-flight kRevokeAck; without the
  // explicit shutdown the server-side session (still subscribed, still a
  // revocation target) would outlive the sever by a scheduling-dependent
  // interval and leak notifications into the post-reconnect run, breaking
  // seeded reproducibility. In-proc the core observes on_disconnect before
  // this returns; TCP closes the socket and the serve loop cleans up.
  inner_->shutdown();
  inner_.reset();
}

bool FaultyChannel::severed() const {
  std::lock_guard lock(mu_);
  return inner_ == nullptr;
}

void FaultyChannel::shutdown() noexcept {
  std::lock_guard lock(mu_);
  sever_locked();
}

Frame FaultyChannel::call(MsgType type, Buffer& payload) {
  std::shared_ptr<ClientChannel> inner;
  // kRevokeAck is issued by the client's background ack thread, not by the
  // application's call sequence: drawing a fault action for it here would
  // interleave RNG draws with the foreground calls in scheduling-dependent
  // order and break the seeded run's bit-reproducibility. Ack-failure
  // modes (expiry, disconnect surrender) are exercised deterministically
  // by the targeted lock-cache tests; under chaos an ack still fails when
  // the channel is already severed.
  FaultAction action;
  if (type != MsgType::kRevokeAck) action = schedule_->next_for_call(type);
  {
    std::lock_guard lock(mu_);
    if (inner_ == nullptr) throw_severed(type);
    switch (action.kind) {
      case FaultAction::Kind::kSever:
        sever_locked();
        throw_severed(type);
      case FaultAction::Kind::kTruncateFrame:
        // The frame dies on the wire: the server never sees the request and
        // the connection is beyond repair (mid-frame close).
        sever_locked();
        throw Error::transport(
            ErrorCode::kConnReset,
            "fault: " + msg_type_name(type) + " truncated mid-frame");
      default:
        break;
    }
    inner = inner_;
  }
  if (action.kind == FaultAction::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
  }
  Frame response = inner->call(type, payload);
  if (action.kind == FaultAction::Kind::kDropResponse) {
    // The server handled the request; the client never learns the outcome.
    throw Error::transport(
        ErrorCode::kTimedOut,
        "fault: response to " + msg_type_name(type) + " dropped");
  }
  return response;
}

void FaultyChannel::set_notify_handler(std::function<void(const Frame&)> fn) {
  std::shared_ptr<ClientChannel> inner;
  {
    std::lock_guard lock(mu_);
    inner = inner_;
  }
  if (inner == nullptr) return;
  if (fn == nullptr) {
    inner->set_notify_handler(nullptr);
    return;
  }
  auto schedule = schedule_;
  inner->set_notify_handler([schedule, fn](const Frame& frame) {
    fn(frame);
    if (schedule->duplicate_next_notify()) fn(frame);
  });
}

uint64_t FaultyChannel::bytes_sent() const {
  std::lock_guard lock(mu_);
  return inner_ ? inner_->bytes_sent() : bytes_sent_at_sever_;
}

uint64_t FaultyChannel::bytes_received() const {
  std::lock_guard lock(mu_);
  return inner_ ? inner_->bytes_received() : bytes_received_at_sever_;
}

uint64_t FaultyChannel::session_epoch() const {
  std::lock_guard lock(mu_);
  return inner_ ? inner_->session_epoch() : 1;
}

ChannelFaultStats FaultyChannel::fault_stats() const {
  std::lock_guard lock(mu_);
  return inner_ ? inner_->fault_stats() : ChannelFaultStats{};
}

FaultyServerCore::FaultyServerCore(ServerCore& inner,
                                   std::shared_ptr<FaultSchedule> schedule,
                                   Options options)
    : inner_(inner),
      schedule_(std::move(schedule)),
      options_(options),
      rng_(0x5eedf001) {}

void FaultyServerCore::on_connect(SessionId session, Notifier notify) {
  if (options_.drop_notify_rate <= 0) {
    inner_.on_connect(session, std::move(notify));
    return;
  }
  inner_.on_connect(session, [this, notify](const Frame& frame) {
    // kRevokeRead is an acked protocol message riding the notification
    // stream, not a best-effort hint like kNotifyVersion: the transports
    // deliver it in order or kill the connection (whose disconnect then
    // surrenders the cached lock). Silently dropping it would model a
    // failure no real transport produces.
    if (frame.type != MsgType::kRevokeRead) {
      std::lock_guard lock(rng_mu_);
      if (rng_.uniform() < options_.drop_notify_rate) return;
    }
    notify(frame);
  });
}

void FaultyServerCore::on_disconnect(SessionId session) {
  inner_.on_disconnect(session);
}

Frame FaultyServerCore::handle(SessionId session, const Frame& request) {
  FaultAction action = schedule_->next_for_call(request.type);
  if (action.kind == FaultAction::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
  }
  return inner_.handle(session, request);
}

}  // namespace iw
