#include "net/fault.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>

namespace iw {

void wal_crash_now() noexcept {
  // SIGKILL cannot be caught: state at the instant of death is exactly what
  // a restarted server finds on disk. _exit is an unreachable backstop.
  ::kill(::getpid(), SIGKILL);
  ::_exit(137);
}

namespace {

[[noreturn]] void throw_severed(MsgType type) {
  throw Error::transport(ErrorCode::kConnReset,
                         "fault: connection severed (" + msg_type_name(type) +
                             " not delivered)");
}

}  // namespace

FaultyChannel::FaultyChannel(std::shared_ptr<ClientChannel> inner,
                             std::shared_ptr<FaultSchedule> schedule)
    : inner_(std::move(inner)), schedule_(std::move(schedule)) {}

void FaultyChannel::sever_locked() {
  if (inner_ == nullptr) return;
  bytes_sent_at_sever_ = inner_->bytes_sent();
  bytes_received_at_sever_ = inner_->bytes_received();
  // Destroying the inner channel is the disconnect: in-proc it invokes the
  // core's on_disconnect in this thread; TCP closes the socket and the
  // server's serve loop cleans up.
  inner_.reset();
}

bool FaultyChannel::severed() const {
  std::lock_guard lock(mu_);
  return inner_ == nullptr;
}

Frame FaultyChannel::call(MsgType type, Buffer& payload) {
  std::shared_ptr<ClientChannel> inner;
  FaultAction action = schedule_->next_for_call(type);
  {
    std::lock_guard lock(mu_);
    if (inner_ == nullptr) throw_severed(type);
    switch (action.kind) {
      case FaultAction::Kind::kSever:
        sever_locked();
        throw_severed(type);
      case FaultAction::Kind::kTruncateFrame:
        // The frame dies on the wire: the server never sees the request and
        // the connection is beyond repair (mid-frame close).
        sever_locked();
        throw Error::transport(
            ErrorCode::kConnReset,
            "fault: " + msg_type_name(type) + " truncated mid-frame");
      default:
        break;
    }
    inner = inner_;
  }
  if (action.kind == FaultAction::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
  }
  Frame response = inner->call(type, payload);
  if (action.kind == FaultAction::Kind::kDropResponse) {
    // The server handled the request; the client never learns the outcome.
    throw Error::transport(
        ErrorCode::kTimedOut,
        "fault: response to " + msg_type_name(type) + " dropped");
  }
  return response;
}

void FaultyChannel::set_notify_handler(std::function<void(const Frame&)> fn) {
  std::shared_ptr<ClientChannel> inner;
  {
    std::lock_guard lock(mu_);
    inner = inner_;
  }
  if (inner == nullptr) return;
  if (fn == nullptr) {
    inner->set_notify_handler(nullptr);
    return;
  }
  auto schedule = schedule_;
  inner->set_notify_handler([schedule, fn](const Frame& frame) {
    fn(frame);
    if (schedule->duplicate_next_notify()) fn(frame);
  });
}

uint64_t FaultyChannel::bytes_sent() const {
  std::lock_guard lock(mu_);
  return inner_ ? inner_->bytes_sent() : bytes_sent_at_sever_;
}

uint64_t FaultyChannel::bytes_received() const {
  std::lock_guard lock(mu_);
  return inner_ ? inner_->bytes_received() : bytes_received_at_sever_;
}

uint64_t FaultyChannel::session_epoch() const {
  std::lock_guard lock(mu_);
  return inner_ ? inner_->session_epoch() : 1;
}

ChannelFaultStats FaultyChannel::fault_stats() const {
  std::lock_guard lock(mu_);
  return inner_ ? inner_->fault_stats() : ChannelFaultStats{};
}

FaultyServerCore::FaultyServerCore(ServerCore& inner,
                                   std::shared_ptr<FaultSchedule> schedule,
                                   Options options)
    : inner_(inner),
      schedule_(std::move(schedule)),
      options_(options),
      rng_(0x5eedf001) {}

void FaultyServerCore::on_connect(SessionId session, Notifier notify) {
  if (options_.drop_notify_rate <= 0) {
    inner_.on_connect(session, std::move(notify));
    return;
  }
  inner_.on_connect(session, [this, notify](const Frame& frame) {
    {
      std::lock_guard lock(rng_mu_);
      if (rng_.uniform() < options_.drop_notify_rate) return;
    }
    notify(frame);
  });
}

void FaultyServerCore::on_disconnect(SessionId session) {
  inner_.on_disconnect(session);
}

Frame FaultyServerCore::handle(SessionId session, const Frame& request) {
  FaultAction action = schedule_->next_for_call(request.type);
  if (action.kind == FaultAction::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
  }
  return inner_.handle(session, request);
}

}  // namespace iw
