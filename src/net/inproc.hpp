// In-process transport: client and server in one address space.
//
// call() invokes the server core directly in the calling thread — no
// sockets, no copies beyond the frames themselves — while still counting
// the exact bytes each frame would occupy on a wire. This is the substrate
// for the paper-shape benchmarks and most integration tests ("local
// processes suffice" per the reproduction plan).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "net/transport.hpp"

namespace iw {

class InProcChannel final : public ClientChannel {
 public:
  /// Connects a new session to `core`. The returned channel must not
  /// outlive the core. Disconnects in the destructor.
  explicit InProcChannel(ServerCore& core);
  ~InProcChannel() override;

  InProcChannel(const InProcChannel&) = delete;
  InProcChannel& operator=(const InProcChannel&) = delete;

  using ClientChannel::call;
  Frame call(MsgType type, Buffer& payload) override;
  void set_notify_handler(std::function<void(const Frame&)> fn) override;
  uint64_t bytes_sent() const override { return bytes_sent_.load(); }
  uint64_t bytes_received() const override { return bytes_received_.load(); }

  /// Disconnects the session from the core immediately (idempotent). A
  /// decorator that simulates a connection drop calls this so the server
  /// observes the disconnect on the severing thread even while another
  /// thread's in-flight call still pins this object alive.
  void shutdown() noexcept override;

 private:
  ServerCore& core_;
  SessionId session_;
  std::atomic<bool> down_{false};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint32_t> next_request_id_{1};

  std::mutex notify_mu_;
  std::function<void(const Frame&)> notify_;
};

}  // namespace iw
