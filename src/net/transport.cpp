#include "net/transport.hpp"

namespace iw {

void throw_error_frame(const Frame& frame) {
  BufReader r = frame.reader();
  std::string code_name = r.read_lp_string();
  std::string message = r.read_lp_string();
  for (int i = 0; i < kErrorCodeCount; ++i) {
    auto code = static_cast<ErrorCode>(i);
    if (code_name == error_code_name(code)) {
      throw Error(code, message);
    }
  }
  throw Error(ErrorCode::kProtocol, "unknown error code: " + message);
}

Frame make_error_frame(const Error& error) {
  Frame f;
  f.type = MsgType::kError;
  Buffer payload;
  const char* name = error_code_name(error.code());
  payload.append_lp_string(name);
  // what() is "<Code>: <message>"; strip the prefix (the receiver rebuilds
  // it) so errors do not accumulate "NotFound: NotFound:" chains.
  std::string_view message = error.what();
  size_t prefix = std::string_view(name).size() + 2;
  if (message.size() > prefix && message.substr(0, prefix - 2) == name) {
    message.remove_prefix(prefix);
  }
  payload.append_lp_string(message);
  f.payload = payload.take();
  return f;
}

Frame check_response(Frame response) {
  if (response.type == MsgType::kError) {
    throw_error_frame(response);
  }
  return response;
}

}  // namespace iw
