#include "net/reactor.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/logging.hpp"
#include "wire/frame.hpp"

namespace iw {

namespace {

/// Frames coalesced into one sendmsg. Each frame contributes two iovec
/// slices (header, payload), so this stays far below IOV_MAX.
constexpr size_t kMaxFramesPerSendmsg = 64;

/// Worker-side flush trigger: responses accumulated past this many bytes
/// are flushed even though more decoded frames are waiting, so a long
/// request burst cannot balloon the outbox unboundedly between flushes.
constexpr size_t kWorkerFlushBytes = 256u << 10;

/// A worker retires itself after this long idle, once the pool has shrunk
/// back to its base size (elastic workers are for blocked-handler bursts,
/// not steady state).
constexpr auto kWorkerIdleRetire = std::chrono::seconds(2);

std::atomic<SessionId> g_next_reactor_session{1u << 20};

int make_listener(uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("bind");
  }
  // Deep backlog: a connection-scaling client may dial hundreds of
  // sockets at once, and a SYN dropped on backlog overflow costs a full
  // retransmit timeout (the kernel clamps this to somaxconn).
  if (::listen(fd, 4096) < 0) {
    int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

struct Reactor::AtomicStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> epoll_wakeups{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> frames_batched{0};
  std::atomic<uint64_t> sendmsg_calls{0};
  std::atomic<uint64_t> recv_calls{0};
  std::atomic<uint64_t> worker_queue_depth_max{0};
  std::atomic<uint64_t> workers_spawned{0};
  std::atomic<uint64_t> backpressure_stalls{0};
  std::atomic<uint64_t> accept_backoffs{0};

  void bump_queue_depth(uint64_t depth) {
    uint64_t cur = worker_queue_depth_max.load(std::memory_order_relaxed);
    while (depth > cur && !worker_queue_depth_max.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }
};

/// One connection's session state machine. The reactor thread owns the
/// read side (rdbuf) exclusively; everything else is guarded by `mu`,
/// which is a leaf lock — nothing else is ever acquired under it, so the
/// notifier path (called under a segment entry lock) cannot deadlock.
struct Reactor::Conn {
  /// One encoded response/notification awaiting flush.
  struct OutFrame {
    uint8_t header[kFrameHeaderSize];
    std::vector<uint8_t> payload;
  };

  std::mutex mu;  // guards fd lifecycle, inbox, outbox, and flags below
  int fd = -1;    // -1 once closed by retire()
  SessionId session = 0;

  // Read side: reactor thread only, no lock needed.
  std::vector<uint8_t> rdbuf;

  std::deque<Frame> inbox;  // decoded requests awaiting a worker
  bool scheduled = false;   // queued on (or being drained by) a worker
  bool eof = false;         // peer closed, read failed, or protocol error
  bool dead = false;        // write side failed; responses undeliverable
  bool disconnected = false;  // core_.on_disconnect already ran

  std::deque<OutFrame> outbox;
  size_t out_bytes = 0;     // total unsent bytes across outbox
  size_t out_head_off = 0;  // bytes of outbox.front() already on the wire
  bool want_epollout = false;
  bool read_paused = false;  // EPOLLIN dropped while the outbox drains
};

Reactor::Reactor(ServerCore& core, uint16_t port, Options options)
    : core_(core), options_(options), stats_(std::make_unique<AtomicStats>()) {
  if (options_.workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    options_.workers = static_cast<int>(std::clamp(hw, 2u, 8u));
  }
  options_.max_workers = std::max(options_.max_workers, options_.workers);
  options_.write_low_watermark =
      std::min(options_.write_low_watermark, options_.write_high_watermark);

  listen_fd_ = make_listener(port, &port_);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0 || timer_fd_ < 0) {
    int err = errno;
    for (int fd : {listen_fd_, epoll_fd_, wake_fd_, timer_fd_}) {
      if (fd >= 0) ::close(fd);
    }
    errno = err;
    throw_errno("reactor setup");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.data.fd = timer_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);

  {
    std::lock_guard lock(pool_mu_);
    for (int i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
      ++live_workers_;
      stats_->workers_spawned.fetch_add(1, std::memory_order_relaxed);
    }
  }
  reactor_thread_ = std::thread([this] { reactor_loop(); });
}

Reactor::~Reactor() { shutdown(); }

void Reactor::wake_reactor() {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Reactor::shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    wake_reactor();
    // The reactor thread runs the drain: it closes the listener, shuts
    // every socket down (so blocked-in-core handlers unblock via their
    // peers' disconnects), processes the resulting EOFs, and exits once
    // the last connection has been retired.
    if (reactor_thread_.joinable()) reactor_thread_.join();
    {
      std::lock_guard lock(pool_mu_);
      pool_stopping_ = true;
    }
    pool_cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    for (int fd : {epoll_fd_, wake_fd_, timer_fd_}) {
      if (fd >= 0) ::close(fd);
    }
  });
}

ReactorStats Reactor::stats() const {
  ReactorStats s;
  s.connections_accepted = stats_->connections_accepted.load();
  s.connections_closed = stats_->connections_closed.load();
  s.epoll_wakeups = stats_->epoll_wakeups.load();
  s.frames_received = stats_->frames_received.load();
  s.frames_sent = stats_->frames_sent.load();
  s.frames_batched = stats_->frames_batched.load();
  s.sendmsg_calls = stats_->sendmsg_calls.load();
  s.recv_calls = stats_->recv_calls.load();
  s.worker_queue_depth_max = stats_->worker_queue_depth_max.load();
  s.workers_spawned = stats_->workers_spawned.load();
  s.backpressure_stalls = stats_->backpressure_stalls.load();
  s.accept_backoffs = stats_->accept_backoffs.load();
  return s;
}

// --- reactor thread -------------------------------------------------------

void Reactor::reactor_loop() {
  bool draining = false;
  epoll_event events[128];
  for (;;) {
    int n = ::epoll_wait(epoll_fd_, events, 128, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      IW_LOG(kWarn) << "epoll_wait: " << std::strerror(errno);
      return;
    }
    stats_->epoll_wakeups.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t buf;
        while (::read(wake_fd_, &buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (fd == timer_fd_) {
        uint64_t expirations;
        while (::read(timer_fd_, &expirations, sizeof expirations) > 0) {
        }
        resume_listener();
        continue;
      }
      if (fd == listen_fd_) {
        if (!draining) handle_accept();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // retired earlier in this batch
        conn = it->second;
      }
      if (events[i].events & (EPOLLOUT)) handle_writable(conn);
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        handle_readable(conn);
      }
    }
    // Retire connections whose teardown was requested by workers. Only
    // this thread touches epoll registration and closes fds, so a stale
    // epoll event can never race a descriptor being reused.
    std::vector<std::shared_ptr<Conn>> retire_now;
    {
      std::lock_guard lock(retire_mu_);
      retire_now.swap(retire_queue_);
    }
    for (auto& conn : retire_now) retire(conn);

    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      std::vector<std::shared_ptr<Conn>> all;
      {
        std::lock_guard lock(conns_mu_);
        for (auto& [_, c] : conns_) all.push_back(c);
      }
      // Shut every socket down before waiting on any teardown: a worker
      // can be blocked in the core waiting for a writer lock that only
      // drops when the holder's connection disconnects.
      for (auto& conn : all) {
        std::lock_guard lock(conn->mu);
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
    if (draining) {
      std::lock_guard lock(conns_mu_);
      if (conns_.empty()) return;
    }
  }
}

void Reactor::pause_listener() {
  if (listener_paused_ || listen_fd_ < 0) return;
  listener_paused_ = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  itimerspec spec{};
  spec.it_value.tv_sec = options_.accept_backoff_ms / 1000;
  spec.it_value.tv_nsec =
      static_cast<long>(options_.accept_backoff_ms % 1000) * 1'000'000L;
  if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
    spec.it_value.tv_nsec = 1'000'000L;
  }
  ::timerfd_settime(timer_fd_, 0, &spec, nullptr);
  stats_->accept_backoffs.fetch_add(1, std::memory_order_relaxed);
}

void Reactor::resume_listener() {
  if (!listener_paused_ || listen_fd_ < 0) return;
  listener_paused_ = false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

void Reactor::handle_accept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of descriptors: pause the listener and retry on a timer
        // instead of spinning on a failure that cannot clear instantly.
        IW_LOG(kWarn) << "accept: " << std::strerror(errno)
                      << "; backing off " << options_.accept_backoff_ms
                      << "ms";
        pause_listener();
        return;
      }
      if (errno == ECONNABORTED || errno == EPROTO) continue;
      IW_LOG(kWarn) << "accept: " << std::strerror(errno);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->session = g_next_reactor_session.fetch_add(1);
    {
      std::lock_guard lock(conns_mu_);
      conns_.emplace(fd, conn);
    }
    stats_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    core_.on_connect(conn->session, [this, conn](const Frame& frame) {
      enqueue_frame(conn, frame);
      flush(conn);
    });
    epoll_event ev{};
    // Edge-triggered: one wakeup per readiness *transition*, not one per
    // epoll_wait while data sits buffered. handle_readable must therefore
    // drain to EAGAIN, and every MOD below keeps EPOLLET set (a MOD also
    // re-arms the edge, redelivering an event if the fd is still ready).
    ev.events = EPOLLIN | EPOLLET;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void Reactor::handle_readable(const std::shared_ptr<Conn>& conn) {
  // The reactor thread is the only reader and the only closer, so the fd
  // can be used lock-free here; retire() only runs on this thread.
  const int fd = conn->fd;
  if (fd < 0) return;
  bool eof = false;
  bool rearm = false;
  uint8_t chunk[64 * 1024];
  // Edge-triggered read: drain until EAGAIN — the kernel will not repeat
  // this event while data sits buffered. A chunk budget keeps one firehose
  // connection from starving the rest of the loop; on exhaustion the MOD
  // below re-arms the edge so epoll redelivers immediately.
  int budget = 16;
  for (;;) {
    ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true;  // ECONNRESET and friends: same teardown as EOF
      break;
    }
    stats_->recv_calls.fetch_add(1, std::memory_order_relaxed);
    if (r == 0) {
      eof = true;
      break;
    }
    conn->rdbuf.insert(conn->rdbuf.end(), chunk, chunk + r);
    if (--budget == 0) {
      rearm = true;
      break;
    }
  }
  if (rearm && !eof) {
    std::lock_guard lock(conn->mu);
    if (conn->fd >= 0 && !conn->eof) {
      epoll_event ev{};
      ev.events = (conn->read_paused ? 0u : EPOLLIN) |
                  (conn->want_epollout ? EPOLLOUT : 0u) | EPOLLET;
      ev.data.fd = conn->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    }
  }

  // Decode every complete frame in the buffer; keep the partial tail.
  size_t off = 0;
  std::vector<Frame> decoded;
  while (conn->rdbuf.size() - off >= kFrameHeaderSize) {
    FrameHeader h;
    try {
      h = decode_frame_header(conn->rdbuf.data() + off);
    } catch (const Error& e) {
      IW_LOG(kDebug) << "protocol error from session " << conn->session
                     << ": " << e.what();
      eof = true;  // poisoned stream: tear the connection down
      break;
    }
    if (conn->rdbuf.size() - off - kFrameHeaderSize < h.payload_size) break;
    Frame frame;
    frame.type = h.type;
    frame.request_id = h.request_id;
    const uint8_t* p = conn->rdbuf.data() + off + kFrameHeaderSize;
    frame.payload.assign(p, p + h.payload_size);
    decoded.push_back(std::move(frame));
    off += kFrameHeaderSize + h.payload_size;
  }
  if (off > 0) {
    conn->rdbuf.erase(conn->rdbuf.begin(),
                      conn->rdbuf.begin() + static_cast<ptrdiff_t>(off));
  }
  if (!decoded.empty()) {
    stats_->frames_received.fetch_add(decoded.size(),
                                      std::memory_order_relaxed);
  }
  if (decoded.empty() && !eof) return;

  bool need_schedule = false;
  {
    std::lock_guard lock(conn->mu);
    for (auto& f : decoded) conn->inbox.push_back(std::move(f));
    if (eof) conn->eof = true;
    if (!conn->scheduled) {
      conn->scheduled = true;
      need_schedule = true;
    }
  }
  if (eof && fd >= 0) {
    // Stop watching a half-closed socket; writes may still proceed.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  if (need_schedule) schedule(conn);
}

void Reactor::handle_writable(const std::shared_ptr<Conn>& conn) {
  flush(conn);
}

void Reactor::request_retire(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard lock(retire_mu_);
    retire_queue_.push_back(conn);
  }
  wake_reactor();
}

void Reactor::retire(const std::shared_ptr<Conn>& conn) {
  int fd;
  {
    std::lock_guard lock(conn->mu);
    fd = conn->fd;
    conn->fd = -1;
    conn->outbox.clear();
    conn->out_bytes = 0;
  }
  if (fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    std::lock_guard lock(conns_mu_);
    conns_.erase(fd);
  }
  stats_->connections_closed.fetch_add(1, std::memory_order_relaxed);
}

// --- worker pool ----------------------------------------------------------

void Reactor::schedule(const std::shared_ptr<Conn>& conn) {
  bool spawn = false;
  {
    std::lock_guard lock(pool_mu_);
    ready_.push_back(conn);
    stats_->bump_queue_depth(ready_.size());
    // Elastic growth: every existing worker is busy — typically blocked
    // inside a writer-lock acquire — so queued frames (possibly the very
    // release that would unblock them) must not wait for one to free up.
    if (idle_workers_ == 0 && live_workers_ < options_.max_workers &&
        !pool_stopping_) {
      workers_.emplace_back([this] { worker_loop(); });
      ++live_workers_;
      stats_->workers_spawned.fetch_add(1, std::memory_order_relaxed);
      spawn = true;
    }
  }
  if (!spawn) pool_cv_.notify_one();
}

void Reactor::worker_loop() {
  for (;;) {
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock lock(pool_mu_);
      ++idle_workers_;
      bool timed_out = !pool_cv_.wait_for(lock, kWorkerIdleRetire, [this] {
        return pool_stopping_ || !ready_.empty();
      });
      --idle_workers_;
      if (timed_out) {
        // Shrink the elastic pool back toward its base size.
        if (live_workers_ > options_.workers) {
          --live_workers_;
          return;
        }
        continue;
      }
      if (ready_.empty()) {
        if (pool_stopping_) {
          --live_workers_;
          return;
        }
        continue;
      }
      conn = std::move(ready_.front());
      ready_.pop_front();
    }
    process(conn);
  }
}

void Reactor::process(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    Frame request;
    bool run_disconnect = false;
    {
      std::lock_guard lock(conn->mu);
      if (conn->inbox.empty() || conn->dead) {
        conn->inbox.clear();
        if ((conn->eof || conn->dead) && !conn->disconnected) {
          conn->disconnected = true;
          run_disconnect = true;
        } else {
          conn->scheduled = false;
          return;
        }
      } else {
        request = std::move(conn->inbox.front());
        conn->inbox.pop_front();
      }
    }
    if (run_disconnect) {
      flush(conn);  // last chance for already-queued responses
      core_.on_disconnect(conn->session);
      request_retire(conn);
      std::lock_guard lock(conn->mu);
      conn->scheduled = false;
      return;
    }
    // An AcquireWrite can block for a long time on a contended writer
    // lock; push completed responses out first so the old transport's
    // response-before-next-request ordering is preserved where it can be
    // observed.
    bool flush_now = request.type == MsgType::kAcquireWrite;
    if (flush_now) flush(conn);
    Frame response;
    try {
      response = core_.handle(conn->session, request);
    } catch (const Error& e) {
      response = make_error_frame(e);
    } catch (const std::exception& e) {
      response = make_error_frame(Error(ErrorCode::kInternal, e.what()));
    }
    response.request_id = request.request_id;
    enqueue_frame(conn, std::move(response));
    bool inbox_empty;
    size_t out_bytes;
    {
      std::lock_guard lock(conn->mu);
      inbox_empty = conn->inbox.empty();
      out_bytes = conn->out_bytes;
    }
    // Coalesce: while more requests are already decoded, let responses
    // pile up and ride one sendmsg when the burst is drained (or the
    // outbox grows past the flush threshold).
    if (inbox_empty || out_bytes >= kWorkerFlushBytes) flush(conn);
  }
}

// --- write path -----------------------------------------------------------

void Reactor::enqueue_frame(const std::shared_ptr<Conn>& conn,
                            const Frame& frame) {
  // Copy up front: notification frames are shared across many sessions.
  Frame copy;
  copy.type = frame.type;
  copy.request_id = frame.request_id;
  copy.payload = frame.payload;
  enqueue_frame(conn, std::move(copy));
}

void Reactor::enqueue_frame(const std::shared_ptr<Conn>& conn, Frame&& frame) {
  std::lock_guard lock(conn->mu);
  if (conn->fd < 0 || conn->dead) return;  // connection is going away
  Conn::OutFrame out;
  encode_frame_header(frame.type, frame.request_id, frame.payload.size(),
                      out.header);
  out.payload = std::move(frame.payload);
  conn->out_bytes += kFrameHeaderSize + out.payload.size();
  conn->outbox.push_back(std::move(out));
  update_read_interest(conn);
}

/// Recomputes the connection's read interest from its outbox size, with
/// hysteresis. Caller holds conn->mu. Backpressure: a slow reader's outbox
/// crossing the high watermark pauses reads until the flush path drains it
/// below the low watermark.
void Reactor::update_read_interest(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0 || conn->eof) return;
  bool pause = conn->read_paused
                   ? conn->out_bytes > options_.write_low_watermark
                   : conn->out_bytes >= options_.write_high_watermark;
  if (pause == conn->read_paused) return;
  conn->read_paused = pause;
  if (pause) {
    stats_->backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
  }
  epoll_event ev{};
  // The MOD re-arms the edge: resuming a paused read redelivers an EPOLLIN
  // event if bytes arrived while reads were off.
  ev.events = (conn->read_paused ? 0u : EPOLLIN) |
              (conn->want_epollout ? EPOLLOUT : 0u) | EPOLLET;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Reactor::flush(const std::shared_ptr<Conn>& conn) {
  bool fatal = false;
  {
    std::lock_guard lock(conn->mu);
    while (!conn->outbox.empty() && conn->fd >= 0) {
      iovec iov[2 * kMaxFramesPerSendmsg];
      size_t niov = 0;
      size_t nframes = 0;
      for (const auto& f : conn->outbox) {
        if (nframes == kMaxFramesPerSendmsg) break;
        size_t skip = nframes == 0 ? conn->out_head_off : 0;
        size_t hdr_take = kFrameHeaderSize > skip ? kFrameHeaderSize - skip : 0;
        if (hdr_take > 0) {
          iov[niov].iov_base =
              const_cast<uint8_t*>(f.header + (kFrameHeaderSize - hdr_take));
          iov[niov].iov_len = hdr_take;
          ++niov;
        }
        size_t pay_skip = skip > kFrameHeaderSize ? skip - kFrameHeaderSize : 0;
        if (f.payload.size() > pay_skip) {
          iov[niov].iov_base =
              const_cast<uint8_t*>(f.payload.data() + pay_skip);
          iov[niov].iov_len = f.payload.size() - pay_skip;
          ++niov;
        }
        ++nframes;
      }
      if (niov == 0) {  // fully-sent head (zero-payload edge); pop it
        conn->outbox.pop_front();
        conn->out_head_off = 0;
        continue;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = niov;
      ssize_t w = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn->want_epollout) {
            conn->want_epollout = true;
            epoll_event ev{};
            ev.events = (conn->read_paused || conn->eof ? 0u : EPOLLIN) |
                        EPOLLOUT | EPOLLET;
            ev.data.fd = conn->fd;
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
          }
          break;
        }
        // Peer is gone: responses are undeliverable. Tear down via the
        // worker path so on_disconnect runs exactly once.
        conn->dead = true;
        conn->outbox.clear();
        conn->out_bytes = 0;
        conn->out_head_off = 0;
        fatal = true;
        break;
      }
      stats_->sendmsg_calls.fetch_add(1, std::memory_order_relaxed);
      if (nframes > 1) {
        stats_->frames_batched.fetch_add(nframes, std::memory_order_relaxed);
      }
      size_t rem = static_cast<size_t>(w);
      conn->out_bytes -= rem;
      while (rem > 0 && !conn->outbox.empty()) {
        const auto& head = conn->outbox.front();
        size_t head_total = kFrameHeaderSize + head.payload.size();
        size_t head_left = head_total - conn->out_head_off;
        if (rem >= head_left) {
          rem -= head_left;
          conn->outbox.pop_front();
          conn->out_head_off = 0;
          stats_->frames_sent.fetch_add(1, std::memory_order_relaxed);
        } else {
          conn->out_head_off += rem;
          rem = 0;
        }
      }
    }
    if (conn->outbox.empty() && conn->want_epollout && conn->fd >= 0) {
      conn->want_epollout = false;
      epoll_event ev{};
      ev.events =
          (conn->read_paused || conn->eof ? 0u : EPOLLIN) | EPOLLET;
      ev.data.fd = conn->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    }
    update_read_interest(conn);
    if (fatal && !conn->scheduled) {
      conn->scheduled = true;
    } else {
      fatal = false;
    }
  }
  if (fatal) schedule(conn);
}

}  // namespace iw
