// Event-driven server core: an epoll reactor plus a small elastic worker
// pool, replacing thread-per-connection service.
//
// Threading model (three roles):
//
//   * The reactor thread owns epoll, the listening socket, and every
//     connection's *read* side. Connections are registered edge-triggered
//     (EPOLLET): one wakeup per readiness transition, with reads drained
//     to EAGAIN — a burst of frames costs one epoll_wait return, not one
//     per level-triggered poll while bytes sit buffered. It accepts, reads
//     into per-connection ring buffers, decodes complete frames, and
//     schedules the connection onto the worker pool. It never calls into
//     the ServerCore, so a slow or blocking request handler can never
//     stall accept/read progress.
//   * Worker threads pop scheduled connections and drain their decoded
//     frame queues through ServerCore::handle (whose per-segment locking
//     makes concurrent workers safe). One connection is processed by at
//     most one worker at a time, preserving the per-session frame order
//     the thread-per-connection design guaranteed. Because handle() may
//     block (a writer waiting on a contended lock), the pool grows
//     elastically up to `max_workers` whenever frames are queued and every
//     existing worker is busy — so a pile-up of blocked writers cannot
//     starve the release that would unblock them.
//   * Any thread (a worker producing a response, a core pushing a
//     notification) appends frames to the connection's outbox and flushes:
//     every frame pending for that connection rides one sendmsg as an
//     iovec chain (frame coalescing). On EAGAIN the flusher arms EPOLLOUT
//     and the reactor thread finishes the job when the socket drains.
//
// Backpressure: when a connection's outbox exceeds `write_high_watermark`
// (a slow reader), the reactor stops *reading* from that connection until
// the outbox drains below `write_low_watermark` — the peer's TCP window
// then throttles it, and the server's memory stays bounded.
//
// Accept robustness: EMFILE/ENFILE pauses the listener and retries on a
// timerfd backoff instead of spinning or silently dropping the listener.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace iw {

/// Counters the reactor maintains as relaxed atomics and snapshots on
/// demand — same idiom as SegmentServer::Stats.
struct ReactorStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t epoll_wakeups = 0;        ///< epoll_wait returns
  uint64_t frames_received = 0;      ///< request frames decoded
  uint64_t frames_sent = 0;          ///< response/notification frames sent
  uint64_t frames_batched = 0;       ///< frames that shared a sendmsg with >=1 other
  uint64_t sendmsg_calls = 0;        ///< flush syscalls (sendmsg)
  uint64_t recv_calls = 0;           ///< read syscalls (recv)
  uint64_t worker_queue_depth_max = 0;  ///< high-water mark of ready queue
  uint64_t workers_spawned = 0;      ///< pool threads ever created
  uint64_t backpressure_stalls = 0;  ///< reads paused on a full outbox
  uint64_t accept_backoffs = 0;      ///< EMFILE/ENFILE listener pauses
};

class Reactor {
 public:
  struct Options {
    /// Worker threads started eagerly. 0 = auto (min(4, hardware threads)).
    int workers = 0;
    /// Elastic ceiling: extra workers are spawned while frames are queued
    /// and every worker is busy (typically blocked in a lock acquire).
    int max_workers = 128;
    /// Outbox size beyond which reading from the connection is paused.
    size_t write_high_watermark = 8u << 20;
    /// Outbox size below which a paused connection resumes reading.
    size_t write_low_watermark = 1u << 20;
    /// Milliseconds to pause the listener after EMFILE/ENFILE.
    uint32_t accept_backoff_ms = 100;
  };

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the reactor thread
  /// plus the core worker pool. Throws Error(kIo) when the socket cannot
  /// be bound.
  Reactor(ServerCore& core, uint16_t port, Options options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  uint16_t port() const noexcept { return port_; }

  /// Stops accepting, closes every connection (running their
  /// on_disconnect), and joins all threads. Idempotent.
  void shutdown();

  ReactorStats stats() const;

 private:
  struct Conn;
  struct AtomicStats;

  void reactor_loop();
  void handle_accept();
  void handle_readable(const std::shared_ptr<Conn>& conn);
  void handle_writable(const std::shared_ptr<Conn>& conn);
  void pause_listener();
  void resume_listener();

  // Worker pool.
  void worker_loop();
  void schedule(const std::shared_ptr<Conn>& conn);
  void process(const std::shared_ptr<Conn>& conn);

  // Write path. `flush` drains as much of the outbox as the socket takes,
  // coalescing all pending frames into one sendmsg per syscall; arms
  // EPOLLOUT when the socket is full. Safe from any thread.
  void enqueue_frame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  void enqueue_frame(const std::shared_ptr<Conn>& conn, Frame&& frame);
  void flush(const std::shared_ptr<Conn>& conn);
  void update_read_interest(const std::shared_ptr<Conn>& conn);

  // Teardown. `retire` runs on the reactor thread (sole epoll owner).
  void request_retire(const std::shared_ptr<Conn>& conn);
  void retire(const std::shared_ptr<Conn>& conn);
  void wake_reactor();

  ServerCore& core_;
  Options options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd: cross-thread wakeups
  int timer_fd_ = -1;  // accept backoff timer
  uint16_t port_ = 0;
  bool listener_paused_ = false;  // reactor thread only

  std::thread reactor_thread_;
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;

  // Registered connections, keyed by fd. Reactor thread inserts/erases;
  // shutdown reads under the same lock.
  std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  // Connections whose sockets died in a worker/notifier thread; the
  // reactor thread retires them (epoll_ctl + close need a single owner).
  std::mutex retire_mu_;
  std::vector<std::shared_ptr<Conn>> retire_queue_;

  // Worker pool state, all guarded by pool_mu_. `workers_` only grows
  // (exited elastic workers stay joinable until shutdown); `live_workers_`
  // tracks threads actually running.
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::deque<std::shared_ptr<Conn>> ready_;
  std::vector<std::thread> workers_;
  int idle_workers_ = 0;
  int live_workers_ = 0;
  bool pool_stopping_ = false;

  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace iw
