// TCP transport: real sockets for running clients and servers as separate
// processes (or separate threads with genuine network framing).
//
// TcpServer fronts the epoll Reactor (net/reactor.hpp): nonblocking
// sockets, per-connection session state machines, a small elastic worker
// pool calling into the ServerCore, and response/notification frames
// coalesced into one sendmsg per flush. The constructor/shutdown API is
// unchanged from the thread-per-connection era, so every existing caller
// and test runs unmodified on the event-driven core.
//
// TcpClientChannel owns the client end: calls are multiplexed by request
// id and a dedicated receiver thread demultiplexes responses from
// notifications (request_id == 0). Concurrent callers' request frames are
// coalesced: whoever finds no flush in progress becomes the flusher and
// sends every queued frame in one syscall (optionally lingering
// `batch_window_us` to let a burst accumulate), so many small lock/commit
// RPCs from a busy process ride one send.
#pragma once

#include <sys/socket.h>

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/reactor.hpp"
#include "net/transport.hpp"

namespace iw {

class TcpServer {
 public:
  using Options = Reactor::Options;

  /// Starts listening on 127.0.0.1:`port` (0 = ephemeral) and serving
  /// `core`. Throws Error(kIo) when the socket cannot be bound.
  TcpServer(ServerCore& core, uint16_t port);
  TcpServer(ServerCore& core, uint16_t port, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Actual bound port (useful with port 0).
  uint16_t port() const noexcept { return reactor_->port(); }

  /// Stops accepting, closes all connections, joins threads.
  void shutdown();

  /// Transport-level counters (epoll wakeups, frames per sendmsg,
  /// backpressure stalls, worker-pool high-water marks) — the same
  /// atomic-snapshot idiom as SegmentServer::stats().
  ReactorStats stats() const { return reactor_->stats(); }

 private:
  std::unique_ptr<Reactor> reactor_;
};

class TcpClientChannel final : public ClientChannel {
 public:
  struct Options {
    /// Deadline for one call() round trip, send to response. 0 disables
    /// (unbounded blocking — only for tests that explicitly want it).
    uint32_t call_timeout_ms = 30'000;
    /// Deadline for establishing the connection (poll-based non-blocking
    /// connect). 0 falls back to the OS default.
    uint32_t connect_timeout_ms = 5'000;
    /// Small-write aggregation window in microseconds. 0 (default) still
    /// coalesces naturally concurrent calls — frames queued while another
    /// thread is mid-send ride that thread's next syscall — but never
    /// delays a lone call. > 0 makes the flushing thread linger that long
    /// so bursts from many threads accumulate into one send (group
    /// commit); bounded by batch_max_bytes.
    uint32_t batch_window_us = 0;
    /// Pending bytes that cut a batch window short and force a flush.
    size_t batch_max_bytes = 64 * 1024;
  };

  /// Aggregation counters for the send path (relaxed-atomic snapshot).
  struct BatchStats {
    uint64_t frames_sent = 0;     ///< request frames written
    uint64_t send_syscalls = 0;   ///< send() calls that carried them
    uint64_t frames_batched = 0;  ///< frames that shared a syscall
  };

  /// Connects to 127.0.0.1:`port`. Throws a transport Error on failure
  /// (kTimedOut when the connect deadline expires).
  explicit TcpClientChannel(uint16_t port)
      : TcpClientChannel(port, Options()) {}
  TcpClientChannel(uint16_t port, Options options);
  ~TcpClientChannel() override;

  using ClientChannel::call;
  Frame call(MsgType type, Buffer& payload) override;
  void set_notify_handler(std::function<void(const Frame&)> fn) override;
  uint64_t bytes_sent() const override { return bytes_sent_.load(); }
  uint64_t bytes_received() const override { return bytes_received_.load(); }

  /// Half-closes the socket so the server sees EOF and reaps the session
  /// promptly, even while another thread's in-flight call still pins this
  /// object. The receiver/dispatcher threads wind down as on destruction;
  /// the destructor (which repeats the shutdown harmlessly) still joins
  /// them.
  void shutdown() noexcept override { ::shutdown(fd_, SHUT_RDWR); }
  ChannelFaultStats fault_stats() const override {
    ChannelFaultStats s;
    s.call_timeouts = call_timeouts_.load(std::memory_order_relaxed);
    return s;
  }
  BatchStats batch_stats() const {
    BatchStats s;
    s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
    s.send_syscalls = send_syscalls_.load(std::memory_order_relaxed);
    s.frames_batched = frames_batched_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  void receive_loop();
  /// Queues one encoded frame and sees it onto the wire: either becomes
  /// the flusher (sending every queued byte in one syscall) or waits for
  /// the active flusher to carry it. Throws the transport error that
  /// killed the send, to every affected caller.
  void send_frame_coalesced(const uint8_t* header, const Buffer& payload);
  /// Marks the channel dead with `reason` and wakes every waiter — callers
  /// blocked on responses and callers parked in the send path.
  void fail_channel(const Error& reason);

  Options options_;
  int fd_ = -1;
  std::thread receiver_;

  // Send-side aggregation. Absolute stream positions (bytes ever queued /
  // bytes ever flushed) let a caller wait precisely for its own frame.
  std::mutex send_mu_;
  std::condition_variable send_cv_;
  Buffer send_pending_;
  uint64_t send_queued_pos_ = 0;   ///< stream position after send_pending_
  uint64_t send_flushed_pos_ = 0;  ///< stream position on the wire
  uint64_t send_pending_frames_ = 0;
  bool send_flusher_active_ = false;
  std::optional<Error> send_error_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::string close_reason_;
  uint32_t next_request_id_ = 1;
  std::map<uint32_t, Frame> responses_;
  /// Request ids whose caller gave up (deadline); the receiver discards
  /// their late responses instead of parking them in `responses_` forever.
  std::set<uint32_t> abandoned_;

  /// Notifications decoupled from the receiver thread: the receiver only
  /// enqueues; notify_dispatcher_ delivers. The state lives behind a
  /// shared_ptr because a notify handler can transitively destroy this
  /// channel (a failed call inside the handler makes the reconnect
  /// supervisor tear it down); the destructor then detaches the dispatcher
  /// instead of self-joining, and the detached loop exits against state
  /// that outlives the channel.
  struct NotifyState {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Frame> queue;
    std::function<void(const Frame&)> handler;
    bool stop = false;
  };
  std::shared_ptr<NotifyState> notify_state_;
  std::thread notify_dispatcher_;
  /// Drains state->queue, invoking the installed handler outside every
  /// channel lock. Running on its own thread (not the receiver's) lets a
  /// handler issue calls on this channel — the receiver stays free to
  /// deliver their responses. Touches only `state`, never the channel.
  static void notify_dispatch_loop(std::shared_ptr<NotifyState> state);

  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> call_timeouts_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> send_syscalls_{0};
  std::atomic<uint64_t> frames_batched_{0};
};

}  // namespace iw
