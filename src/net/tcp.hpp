// TCP transport: real sockets for running clients and servers as separate
// processes (or separate threads with genuine network framing).
//
// TcpServer owns a listening socket plus one service thread per accepted
// connection; each connection is one session of the ServerCore.
// TcpClientChannel owns the client end: calls are multiplexed by request id
// and a dedicated receiver thread demultiplexes responses from
// notifications (request_id == 0).
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace iw {

class TcpServer {
 public:
  /// Starts listening on 127.0.0.1:`port` (0 = ephemeral) and serving
  /// `core`. Throws Error(kIo) when the socket cannot be bound.
  TcpServer(ServerCore& core, uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Actual bound port (useful with port 0).
  uint16_t port() const noexcept { return port_; }

  /// Stops accepting, closes all connections, joins threads.
  void shutdown();

 private:
  struct Connection;
  void accept_loop();
  void serve(std::shared_ptr<Connection> conn);

  ServerCore& core_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::shared_ptr<Connection>> connections_;
};

class TcpClientChannel final : public ClientChannel {
 public:
  struct Options {
    /// Deadline for one call() round trip, send to response. 0 disables
    /// (unbounded blocking — only for tests that explicitly want it).
    uint32_t call_timeout_ms = 30'000;
    /// Deadline for establishing the connection (poll-based non-blocking
    /// connect). 0 falls back to the OS default.
    uint32_t connect_timeout_ms = 5'000;
  };

  /// Connects to 127.0.0.1:`port`. Throws a transport Error on failure
  /// (kTimedOut when the connect deadline expires).
  explicit TcpClientChannel(uint16_t port)
      : TcpClientChannel(port, Options()) {}
  TcpClientChannel(uint16_t port, Options options);
  ~TcpClientChannel() override;

  using ClientChannel::call;
  Frame call(MsgType type, Buffer& payload) override;
  void set_notify_handler(std::function<void(const Frame&)> fn) override;
  uint64_t bytes_sent() const override { return bytes_sent_.load(); }
  uint64_t bytes_received() const override { return bytes_received_.load(); }
  ChannelFaultStats fault_stats() const override {
    ChannelFaultStats s;
    s.call_timeouts = call_timeouts_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  void receive_loop();

  Options options_;
  int fd_ = -1;
  std::thread receiver_;
  std::mutex write_mu_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  uint32_t next_request_id_ = 1;
  std::map<uint32_t, Frame> responses_;
  /// Request ids whose caller gave up (deadline); the receiver discards
  /// their late responses instead of parking them in `responses_` forever.
  std::set<uint32_t> abandoned_;

  std::mutex notify_mu_;
  std::function<void(const Frame&)> notify_;

  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> call_timeouts_{0};
};

}  // namespace iw
