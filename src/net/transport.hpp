// Transport abstraction between InterWeave clients and servers.
//
// The protocol is synchronous request/response initiated by the client,
// plus unsolicited server->client notifications (the "adaptive
// polling/notification" channel). Two implementations exist:
//
//   * InProc — client calls run the server handler directly in the calling
//     thread; notifications are direct callbacks. Zero I/O noise, which is
//     what the paper-shape benchmarks measure, and still byte-accounted as
//     if frames had crossed a wire.
//   * Tcp — real sockets, one receiver thread per client channel and one
//     service thread per server connection (net/tcp.hpp).
//
// Byte counters on every channel feed the bandwidth experiments (Fig. 7).
#pragma once

#include <functional>
#include <memory>

#include "wire/frame.hpp"

namespace iw {

/// Failure-handling counters a channel maintains. Plain channels time out
/// calls; the reconnecting decorator additionally reconnects and replays.
struct ChannelFaultStats {
  uint64_t reconnects = 0;     ///< successful re-establishments
  uint64_t retried_calls = 0;  ///< calls replayed after a transport failure
  uint64_t call_timeouts = 0;  ///< calls that hit their deadline
};

/// Client endpoint of a connection to one server.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  /// Sends a request and blocks for its response. Throws Error on transport
  /// failure; a server-side kError response is surfaced as a thrown Error.
  /// The payload is consumed (left empty), but implementations keep or hand
  /// back its allocation where they can so a caller-owned buffer can be
  /// reused across calls without reallocating (the per-release collect
  /// buffer rides on this).
  virtual Frame call(MsgType type, Buffer& payload) = 0;

  /// Rvalue convenience: call sites that build a one-shot payload pass a
  /// temporary (or std::move a local) and don't care about reuse.
  Frame call(MsgType type, Buffer&& payload) {
    Buffer consumed = std::move(payload);
    return call(type, consumed);
  }

  /// Installs the handler invoked for unsolicited notifications. May be
  /// invoked from another thread (TCP dispatches from a dedicated thread,
  /// decoupled from the receiver so a handler may issue calls on this same
  /// channel — the revoke-ack path relies on that) or from within call()
  /// (in-proc). Handlers should still be quick: delivery is serialized, so
  /// a slow handler delays every later notification.
  virtual void set_notify_handler(std::function<void(const Frame&)> fn) = 0;

  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t bytes_received() const = 0;

  /// Monotonic epoch of the underlying connection: starts at 1 and
  /// increments every time the channel reconnects. A caller that caches
  /// state derived from one connection (subscriptions, server-validated
  /// versions) compares epochs to detect that it must revalidate.
  virtual uint64_t session_epoch() const { return 1; }

  /// Failure-handling counters (zero for channels that never retry).
  virtual ChannelFaultStats fault_stats() const { return {}; }

  /// True when this channel negotiated distributed lock caching with the
  /// server (kHello/kHelloResp feature bits). Raw channels never handshake,
  /// so they never cache — old clients and servers interoperate unchanged.
  virtual bool supports_lock_caching() const { return false; }

  /// True when this channel negotiated payload compression with the server
  /// (kHello/kHelloResp feature bit 1): diff sections in both directions
  /// carry the method-byte envelope of wire/payload.hpp. Raw channels never
  /// handshake, so they speak the pre-compression byte stream unchanged.
  virtual bool supports_payload_compression() const { return false; }

  /// Severs the underlying connection *now*, independent of object
  /// lifetime: the server observes the disconnect before this returns (or
  /// as soon as its transport loop notices, for socket channels), and
  /// subsequent call()s fail as transport errors. Idempotent; the
  /// destructor implies it. Needed because a shared_ptr to a dead channel
  /// may be pinned by an in-flight call on another thread — teardown of
  /// server-side session state must not wait for the last reference.
  virtual void shutdown() noexcept {}
};

/// Identifies one client connection within a server.
using SessionId = uint64_t;

/// Pushes a notification frame toward one client.
using Notifier = std::function<void(const Frame&)>;

/// Transport-independent server logic. SegmentServer implements this; the
/// transports (in-proc, TCP) drive it.
class ServerCore {
 public:
  virtual ~ServerCore() = default;

  /// Registers a connection; `notify` delivers notifications to it.
  virtual void on_connect(SessionId session, Notifier notify) = 0;
  virtual void on_disconnect(SessionId session) = 0;

  /// Handles one request, returning the response frame (request_id is
  /// filled in by the transport). May block (e.g. waiting for a write lock).
  virtual Frame handle(SessionId session, const Frame& request) = 0;
};

/// Decodes a kError response payload and throws it as iw::Error.
[[noreturn]] void throw_error_frame(const Frame& frame);

/// Builds a kError frame from an exception.
Frame make_error_frame(const Error& error);

/// Helper for implementations: performs a call-and-check, throwing when the
/// response is kError.
Frame check_response(Frame response);

}  // namespace iw
