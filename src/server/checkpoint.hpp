// Incremental checkpoint chains — the delta half of the server's
// snapshot+journal durability discipline.
//
// A full checkpoint rewrites a segment's entire wire-format state into
// `<segment>.iwseg` even when one subblock changed since the last one. An
// incremental checkpoint instead appends one *delta record* to
// `<segment>.iwinc`: the segment diff since the previous checkpoint (full
// or incremental) plus any type graphs registered since, anchored to the
// base snapshot's version. recover() folds base + chain; chain length is
// bounded by a periodic full rewrite that deletes the chain file.
//
// On-disk layout (all integers big-endian):
//
//   file   := header record*
//   header := magic u32 "IWIC" | format u32 (=1)
//   record := the shared CRC32C framing (wire/payload.hpp):
//             body_len u32 | crc u32 | tag u8 | payload
//   tag    := kChainDelta (1), possibly ORed with kPayloadCompressedTagBit
//   payload (raw, after optional decompression) :=
//     u32 base_version     -- version of the .iwseg this chain extends
//     u32 from_version     -- version covered before this record
//     u32 to_version       -- version covered after this record
//     u32 new_type_count | (u32 serial, u32 len, graph)*
//     fold history tables  -- SegmentStore::collect_fold_history: exact
//       created_versions for blocks newer than from_version and every
//       free since, so the fold reconstructs version history precisely
//       (a bare diff would misdate creations at to_version and lose
//       create+free pairs inside the window — resurrecting freed blocks
//       for clients whose cached version lies inside it)
//     diff bytes           -- SegmentStore::collect_diff(from_version)
//
// Validity rules mirror the WAL's torn-tail discipline, with one extra
// cross-file check: every record's base_version must equal the version of
// the snapshot actually loaded. A mismatched *first* record is a stale
// chain — the expected residue of a crash between a full rewrite landing
// and the old chain's unlink — and is discarded silently; a mid-chain
// violation (CRC, gap, undecodable payload) quarantines the tail and
// recovery proceeds from the last good fold, exactly like a quarantined
// snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/buffer.hpp"

namespace iw::server {

/// Chain record kinds (the tag byte's low 7 bits).
inline constexpr uint8_t kChainDelta = 1;

/// Result of scanning one chain file.
struct ChainRecord {
  uint32_t base_version = 0;
  uint32_t from_version = 0;
  uint32_t to_version = 0;
  /// True when the on-disk payload was a compressed envelope.
  bool compressed = false;
  /// On-disk size of the whole framed record.
  uint64_t stored_bytes = 0;
  /// Raw (decompressed) payload positioned at the type section:
  /// `u32 new_type_count | types | fold history | diff bytes`.
  std::vector<uint8_t> sections;
};

struct ChainScan {
  std::vector<ChainRecord> records;
  /// True when bytes past the last valid record did not parse (torn append
  /// or corruption); the caller quarantines rather than truncates — a
  /// checkpoint chain, unlike a journal, is never resumed in place.
  bool torn = false;
  uint64_t valid_bytes = 0;
  bool missing = false;
};

/// Scans `path`, parsing every valid record. Torn or corrupt content is
/// reported via the result; only genuine I/O failure throws Error(kIo).
ChainScan scan_chain(const std::string& path);

/// Appends one delta record to `path`, creating the file (with header) on
/// first use, and makes the append durable (fdatasync; plus a parent
/// directory fsync when the file was created) before returning. `sections`
/// is the raw payload after the three version fields; it is compressed
/// when `try_compress` and the envelope pays. Returns the framed bytes
/// written (for stats).
uint64_t append_chain_record(const std::string& path, uint32_t base_version,
                             uint32_t from_version, uint32_t to_version,
                             std::span<const uint8_t> sections,
                             bool try_compress);

}  // namespace iw::server
