#include "server/server.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "server/checkpoint.hpp"
#include "util/endian.hpp"
#include "util/fsync.hpp"
#include "util/logging.hpp"
#include "wire/payload.hpp"

namespace iw::server {

namespace {

constexpr uint32_t kCheckpointMagic = 0x49575345;  // "IWSE"

/// Segment names become file names; escape path separators.
std::string encode_file_name(const std::string& name, const char* extension) {
  std::string out;
  for (char c : name) {
    if (c == '/' || c == '%' || c == '\\') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out + extension;
}

/// Inverse of encode_file_name on the stem (file name minus extension), so
/// recovery can learn a segment's name from an orphan journal whose
/// checkpoint is missing or quarantined.
std::string decode_file_name(const std::string& stem) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  for (size_t i = 0; i < stem.size(); ++i) {
    int hi, lo;
    if (stem[i] == '%' && i + 2 < stem.size() &&
        (hi = hex(stem[i + 1])) >= 0 && (lo = hex(stem[i + 2])) >= 0) {
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += stem[i];
    }
  }
  return out;
}

}  // namespace

SegmentServer::SegmentServer() : SegmentServer(Options{}) {}

SegmentServer::SegmentServer(Options options) : options_(std::move(options)) {
  if (const char* env = std::getenv("IW_COMPRESS")) {
    options_.compress_payloads = std::string_view(env) != "0";
  }
  if (!options_.checkpoint_dir.empty()) {
    std::filesystem::create_directories(options_.checkpoint_dir);
  }
}

SegmentServer::~SegmentServer() = default;

void SegmentServer::on_connect(SessionId session, Notifier notify) {
  std::unique_lock lock(sessions_mu_);
  sessions_[session] = std::move(notify);
}

void SegmentServer::on_disconnect(SessionId session) {
  // Release any writer locks the departing client held and drop its
  // per-segment state. Directory shared + one entry at a time, so live
  // traffic on other segments is not stalled.
  {
    std::shared_lock dir(dir_mu_);
    for (auto& [name, entry] : segments_) {
      std::lock_guard el(entry->mu);
      if (entry->writer == session) {
        IW_LOG(kWarn) << "session " << session
                      << " disconnected holding write lock on " << name;
        entry->writer = 0;
      }
      entry->expired_writers.erase(session);
      entry->sessions.erase(session);
      // Unconditional: a revoking writer may be waiting for this session's
      // cached read lock, which the erase above just surrendered.
      entry->writer_cv.notify_all();
    }
  }
  std::unique_lock lock(sessions_mu_);
  sessions_.erase(session);
  caching_sessions_.erase(session);
  compress_sessions_.erase(session);
}

SegmentServer::SegmentEntry* SegmentServer::find_segment(
    const std::string& name, bool create) {
  {
    std::shared_lock lock(dir_mu_);
    auto it = segments_.find(name);
    if (it != segments_.end()) return it->second.get();
  }
  if (!create) return nullptr;
  std::unique_lock lock(dir_mu_);
  auto it = segments_.find(name);
  if (it == segments_.end()) {
    auto entry = std::make_unique<SegmentEntry>();
    entry->store = std::make_unique<SegmentStore>(name, options_.store);
    // Journal the segment's birth before any client can commit to it. The
    // entry is not yet published, so no entry lock is needed; segment
    // creation is rare enough that the fsyncs under the directory lock do
    // not matter.
    if (wal_on()) open_fresh_wal(*entry, name);
    it = segments_.emplace(name, std::move(entry)).first;
  }
  return it->second.get();
}

bool SegmentServer::wal_on() const noexcept {
  return options_.wal_enabled && !options_.checkpoint_dir.empty();
}

WriteAheadLog::Options SegmentServer::wal_options() {
  WriteAheadLog::Options o;
  o.sync = options_.wal_sync;
  o.batch_interval_ms = options_.wal_batch_interval_ms;
  o.counters = &wal_counters_;
  o.crash = options_.wal_crash;
  return o;
}

std::string SegmentServer::wal_file_path(const std::string& name) const {
  namespace fs = std::filesystem;
  return (fs::path(options_.checkpoint_dir) / encode_file_name(name, ".iwlog"))
      .string();
}

void SegmentServer::open_fresh_wal(SegmentEntry& entry,
                                   const std::string& name) {
  entry.wal =
      std::make_unique<WriteAheadLog>(wal_file_path(name), wal_options(), 0);
  Buffer created;
  created.append_lp_string(name);
  entry.wal->append(WalRecordType::kSegmentCreate,
                    {created.data(), created.size()});
  journal_lineage_locked(entry);
}

void SegmentServer::journal_lineage_locked(SegmentEntry& entry) {
  if (entry.wal == nullptr || entry.lineage_epoch <= 1) return;
  uint8_t head[4];
  store_be32(head, entry.lineage_epoch);
  entry.wal->append(WalRecordType::kEpochAdopt, {head, sizeof head});
}

void SegmentServer::adopt_epoch_locked(SegmentEntry& entry, uint32_t epoch) {
  entry.repl_epoch = std::max(entry.repl_epoch, epoch);
  if (epoch == entry.lineage_epoch) return;
  entry.lineage_epoch = epoch;
  journal_lineage_locked(entry);
}

SegmentServer::SegmentEntry& SegmentServer::segment(const std::string& name) {
  SegmentEntry* entry = find_segment(name, false);
  if (entry == nullptr) {
    throw Error(ErrorCode::kNotFound, "segment '" + name + "'");
  }
  return *entry;
}

const SegmentServer::SegmentEntry& SegmentServer::segment(
    const std::string& name) const {
  return const_cast<SegmentServer*>(this)->segment(name);
}

SegmentServer::SegmentSession& SegmentServer::seg_session(SegmentEntry& entry,
                                                          SessionId id) {
  auto it = entry.sessions.find(id);
  if (it != entry.sessions.end()) return it->second;
  // First touch of this segment by this session: capture the notifier so
  // notification fan-out later needs no lock beyond the entry's.
  Notifier notify;
  bool may_cache = false;
  bool may_compress = false;
  {
    std::shared_lock lock(sessions_mu_);
    auto sit = sessions_.find(id);
    if (sit == sessions_.end()) {
      throw Error(ErrorCode::kState, "unknown session");
    }
    notify = sit->second;
    may_cache = caching_sessions_.count(id) > 0;
    may_compress = compress_sessions_.count(id) > 0;
  }
  SegmentSession ss;
  ss.notify = std::move(notify);
  ss.may_cache = may_cache;
  ss.may_compress = may_compress;
  return entry.sessions.emplace(id, std::move(ss)).first->second;
}

void SegmentServer::acquire_writer_locked(SegmentEntry& entry,
                                          const std::string& name,
                                          SessionId session,
                                          std::unique_lock<std::mutex>& el) {
  using clock = std::chrono::steady_clock;
  const auto lease = std::chrono::milliseconds(options_.writer_lease_ms);
  while (entry.writer != 0) {
    if (options_.writer_lease_ms == 0) {
      entry.writer_cv.wait(el);
      continue;
    }
    if (clock::now() >= entry.lease_deadline) {
      // The holder outlived its lease without renewing — it is presumed
      // sick (stalled, partitioned, or dead without a clean disconnect).
      // Reclaim the lock; its eventual release gets kLeaseExpired.
      IW_LOG(kWarn) << "reclaiming expired writer lease on "
                    << entry.store->name() << " from session "
                    << entry.writer;
      entry.expired_writers.insert(entry.writer);
      entry.writer = 0;
      ++entry.epoch;
      stats_.lease_expirations.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    entry.writer_cv.wait_until(el, entry.lease_deadline);
  }
  entry.writer = session;
  // Start the lease before the revocation drain below ever drops `el`: a
  // second waiting writer must see a fresh deadline, not a stale one it
  // could immediately reclaim against.
  if (options_.writer_lease_ms != 0) entry.lease_deadline = clock::now() + lease;
  // A session that legitimately re-acquires is no longer a stale holder.
  entry.expired_writers.erase(session);
  // New cached-read grants are refused while entry.writer != 0, so the set
  // of holders to drain cannot grow behind our back.
  revoke_cached_readers_locked(entry, name, session, el);
  // The drain may have taken up to the revocation deadline; the critical
  // section starts now with a full lease.
  if (options_.writer_lease_ms != 0) entry.lease_deadline = clock::now() + lease;
}

void SegmentServer::revoke_cached_readers_locked(
    SegmentEntry& entry, const std::string& name, SessionId session,
    std::unique_lock<std::mutex>& el) {
  using clock = std::chrono::steady_clock;
  // The writer's own cached read lock is subsumed by the write lock, not
  // revoked: a writer is always allowed to read what it is writing.
  if (auto it = entry.sessions.find(session); it != entry.sessions.end()) {
    it->second.cached_read = false;
    it->second.revoke_pending = false;
  }
  // Grants past their TTL are dropped up front, with no revoke round trip:
  // their holders are presumed gone, and the writer should not spend the
  // revocation deadline waiting for acks that cannot come.
  if (options_.cached_grant_ttl_ms != 0) {
    const auto cutoff =
        clock::now() - std::chrono::milliseconds(options_.cached_grant_ttl_ms);
    uint64_t swept = 0;
    for (auto& [sid, ss] : entry.sessions) {
      if (sid != session && ss.cached_read && !ss.revoke_pending &&
          ss.grant_time < cutoff) {
        ss.cached_read = false;
        ++swept;
      }
    }
    if (swept != 0) {
      stats_.expired_grants_swept.fetch_add(swept, std::memory_order_relaxed);
    }
  }
  auto cached_holders = [&] {
    size_t n = 0;
    for (auto& [sid, ss] : entry.sessions) {
      if (sid != session && ss.cached_read) ++n;
    }
    return n;
  };
  if (cached_holders() == 0) return;

  std::vector<Notifier> targets;
  for (auto& [sid, ss] : entry.sessions) {
    if (sid == session || !ss.cached_read || ss.revoke_pending) continue;
    if (!ss.notify) {
      // No channel to revoke over — drop the cached lock outright.
      ss.cached_read = false;
      continue;
    }
    ss.revoke_pending = true;
    targets.push_back(ss.notify);
  }
  if (!targets.empty()) {
    Frame note;
    note.type = MsgType::kRevokeRead;
    Buffer np;
    np.append_lp_string(name);
    np.append_u32(++entry.revoke_gen);
    note.payload = np.take();
    stats_.revokes_sent.fetch_add(targets.size(), std::memory_order_relaxed);
    // In-process transports run the holder's revoke handler — and its
    // kRevokeAck call back into handle() — synchronously on this thread, so
    // the entry lock must be released around the fan-out.
    el.unlock();
    for (Notifier& n : targets) n(note);
    el.lock();
  }

  const auto lease = std::chrono::milliseconds(options_.writer_lease_ms);
  const auto deadline =
      clock::now() + std::chrono::milliseconds(options_.revoke_deadline_ms);
  while (cached_holders() != 0) {
    auto wake = deadline;
    if (options_.writer_lease_ms != 0) {
      // We hold the writer slot while draining; keep renewing the lease so
      // a second waiting writer never reclaims it as expired mid-drain.
      entry.lease_deadline = clock::now() + lease;
      wake = std::min(deadline, clock::now() + lease / 2);
    }
    if (entry.writer_cv.wait_until(el, wake) == std::cv_status::timeout &&
        clock::now() >= deadline) {
      // Deadline: the unresponsive holders forfeit their cached locks, the
      // same presumption of sickness a writer-lease reclaim makes. The
      // epoch bump makes the forced drop observable to reconnecting
      // clients, which invalidate their caches against it.
      uint64_t dropped = 0;
      for (auto& [sid, ss] : entry.sessions) {
        if (sid != session && ss.cached_read) {
          ss.cached_read = false;
          ss.revoke_pending = false;
          ++dropped;
        }
      }
      ++entry.epoch;
      stats_.revokes_expired.fetch_add(dropped, std::memory_order_relaxed);
      IW_LOG(kWarn) << "revocation deadline passed on " << name
                    << "; dropped " << dropped << " cached read locks";
      break;
    }
  }
}

bool SegmentServer::is_stale(SegmentEntry& entry, const SegmentSession& ss,
                             uint32_t client_version,
                             CoherencePolicy policy) const {
  const uint32_t current = entry.store->version();
  if (client_version >= current) return false;
  // Version 0 means the client has no data at all (fresh open or address
  // reservation); every model must fetch.
  if (client_version == 0) return true;
  switch (policy.model) {
    case CoherenceModel::kFull:
      return true;
    case CoherenceModel::kDelta:
      return current - client_version > policy.param;
    case CoherenceModel::kTemporal:
      // The client enforces the time bound locally and only asks when it
      // has expired; an expired bound means it wants the current version.
      return true;
    case CoherenceModel::kDiff: {
      uint64_t total = entry.store->total_data_bytes();
      if (total == 0) return true;
      return ss.modified_since_update * 100 > policy.param * total;
    }
  }
  return true;
}

bool SegmentServer::append_update(SegmentEntry& entry, SegmentSession& ss,
                                  uint32_t client_version,
                                  CoherencePolicy policy, Buffer& payload) {
  if (client_version > entry.store->version()) {
    // The client is ahead of us — we recovered from an older checkpoint.
    // Force a full resync: the from-0 diff enumerates every live block and
    // the client sweeps the rest.
    IW_LOG(kWarn) << "client ahead of segment " << entry.store->name()
                  << " (v" << client_version << " > v"
                  << entry.store->version() << "); full resync";
    client_version = 0;
    ss.types_sent = 0;
  }
  if (!is_stale(entry, ss, client_version, policy)) {
    payload.append_u8(0);  // up to date
    return false;
  }
  payload.append_u8(1);
  // Ship type definitions the client has not seen yet.
  SegmentStore& store = *entry.store;
  uint32_t count = store.type_count();
  payload.append_u32(count - ss.types_sent);
  for (uint32_t serial = ss.types_sent + 1; serial <= count; ++serial) {
    payload.append_u32(serial);
    auto graph = store.type_graph(serial);
    payload.append_u32(static_cast<uint32_t>(graph.size()));
    payload.append(graph.data(), graph.size());
  }
  ss.types_sent = count;
  auto diff = store.collect_diff(client_version);
  if (ss.may_compress) {
    // Negotiated connections carry the diff behind a method byte; the
    // compressor measures and keeps the raw form (plus the one-byte flag)
    // whenever the envelope would not pay, so incompressible diffs cost
    // one byte, not a wasted pass downstream.
    const size_t method_offset = payload.size();
    payload.append_u8(payload_method::kRaw);
    payload.append(diff->data(), diff->size());
    if (compress_section_in_place(payload, method_offset)) {
      stats_.updates_compressed.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.update_raw_bytes.fetch_add(diff->size(), std::memory_order_relaxed);
    stats_.update_wire_bytes.fetch_add(payload.size() - method_offset,
                                       std::memory_order_relaxed);
  } else {
    payload.append(diff->data(), diff->size());
    stats_.update_raw_bytes.fetch_add(diff->size(), std::memory_order_relaxed);
    stats_.update_wire_bytes.fetch_add(diff->size(),
                                       std::memory_order_relaxed);
  }
  ss.modified_since_update = 0;
  return true;
}

Frame SegmentServer::handle(SessionId session, const Frame& request) {
  std::vector<PendingNotify> notifies;
  Frame response;
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  try {
    response = dispatch(session, request, &notifies);
  } catch (const Error& e) {
    response = make_error_frame(e);
  } catch (const std::exception& e) {
    response = make_error_frame(Error(ErrorCode::kInternal, e.what()));
  }
  // Notifications go out after every server lock is dropped so a
  // notification handler that grabs client-side locks cannot deadlock
  // against us.
  for (PendingNotify& pn : notifies) {
    pn.notify(pn.frame);
  }
  response.request_id = request.request_id;
  return response;
}

Frame SegmentServer::dispatch(SessionId session, const Frame& request,
                              std::vector<PendingNotify>* notifies) {
  Frame resp;
  Buffer payload;
  BufReader in = request.reader();

  switch (request.type) {
    case MsgType::kPing: {
      resp.type = MsgType::kPingResp;
      break;
    }

    case MsgType::kHello: {
      // Session handshake from a reconnect-capable client: identifies the
      // client across channel incarnations and announces its session epoch
      // (1 = first connect, +1 per reconnect). The response tells the
      // client how long its writer leases last so it can pace renewals.
      uint64_t client_id = in.read_u64();
      uint32_t epoch = in.read_u32();
      if (epoch > 1) {
        IW_LOG(kInfo) << "client " << client_id << " reconnected (epoch "
                      << epoch << ") as session " << session;
      }
      // Optional trailing feature byte (absent from pre-lock-caching
      // clients): bit 0 announces the client caches read locks and honours
      // kRevokeRead; bit 1 announces it speaks the payload-compression
      // section envelope. A connection only compresses when both sides
      // opted in, so a pre-compression peer on either end sees the old
      // byte stream unchanged.
      uint8_t features = in.remaining() >= 1 ? in.read_u8() : 0;
      bool wants_caching = (features & 1) != 0;
      bool wants_compress = (features & 2) != 0 && options_.compress_payloads;
      if (wants_caching || wants_compress) {
        std::unique_lock lock(sessions_mu_);
        if (wants_caching) caching_sessions_.insert(session);
        if (wants_compress) compress_sessions_.insert(session);
      }
      resp.type = MsgType::kHelloResp;
      payload.append_u32(options_.writer_lease_ms);
      // Trailing feature byte + revocation deadline; old clients never read
      // past the lease field and ignore these bytes. Bit 1 confirms
      // compression, telling the client it may envelope its commit diffs.
      payload.append_u8((options_.revoke_deadline_ms != 0 ? 1 : 0) |
                        (wants_compress ? 2 : 0));
      payload.append_u32(options_.revoke_deadline_ms);
      break;
    }

    case MsgType::kOpenSegment: {
      std::string name = in.read_lp_string();
      bool create = in.read_u8() != 0;
      SegmentEntry* entry = find_segment(name, create);
      if (entry == nullptr) {
        throw Error(ErrorCode::kNotFound, "segment '" + name + "'");
      }
      std::lock_guard el(entry->mu);
      resp.type = MsgType::kOpenSegmentResp;
      payload.append_u32(entry->store->version());
      payload.append_u32(entry->store->next_block_serial());
      break;
    }

    case MsgType::kRegisterType: {
      std::string name = in.read_lp_string();
      SegmentEntry& entry = segment(name);
      auto graph = in.read_bytes(in.remaining());
      std::lock_guard el(entry.mu);
      // Mid-critical-section activity proves the writer is alive: renew its
      // lease so a long sequence of type registrations is not reclaimed.
      if (entry.writer == session && options_.writer_lease_ms != 0) {
        entry.lease_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.writer_lease_ms);
      }
      uint32_t types_before = entry.store->type_count();
      uint32_t serial = entry.store->register_type(graph);
      if (entry.store->type_count() != types_before) {
        // A genuinely new type (not a dedup hit): recovery must know it
        // before replaying any diff that references it — and so must the
        // replicas, before any streamed commit references it.
        uint8_t head[4];
        store_be32(head, serial);
        // One compression decision feeds both sinks: the journal and the
        // replication stream carry the identical encoding, so replicas
        // journal what the primary journaled, byte for byte.
        Buffer packed;
        const bool compressed =
            options_.compress_payloads &&
            compress_record_payload({head, sizeof head}, graph, packed);
        if (entry.wal != nullptr) {
          if (compressed) {
            entry.wal->append(WalRecordType::kRegisterType, packed.span(), {},
                              true);
          } else {
            entry.wal->append(WalRecordType::kRegisterType,
                              {head, sizeof head}, graph);
          }
        }
        if (options_.replicator != nullptr) {
          if (compressed) {
            options_.replicator->replicate(name, entry.repl_epoch,
                                           WalRecordType::kRegisterType,
                                           packed.span(), {}, true);
          } else {
            options_.replicator->replicate(name, entry.repl_epoch,
                                           WalRecordType::kRegisterType,
                                           {head, sizeof head}, graph);
          }
        }
      }
      // The registering client now knows this serial; extend its known
      // prefix when contiguous.
      SegmentSession& ss = seg_session(entry, session);
      if (serial == ss.types_sent + 1) ss.types_sent = serial;
      resp.type = MsgType::kRegisterTypeResp;
      payload.append_u32(serial);
      break;
    }

    case MsgType::kAcquireRead: {
      std::string name = in.read_lp_string();
      uint32_t client_version = in.read_u32();
      CoherencePolicy policy;
      policy.model = static_cast<CoherenceModel>(in.read_u8());
      policy.param = in.read_u64();
      SegmentEntry& entry = segment(name);
      std::lock_guard el(entry.mu);
      SegmentSession& ss = seg_session(entry, session);
      resp.type = MsgType::kAcquireReadResp;
      if (append_update(entry, ss, client_version, policy, payload)) {
        stats_.updates_sent.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.uptodate_responses.fetch_add(1, std::memory_order_relaxed);
      }
      if (ss.may_cache && options_.revoke_deadline_ms != 0) {
        // Grant a cached read lock only when no writer holds or is draining
        // the segment (writer preference: cached readers can never starve a
        // waiting writer) and the client runs Full coherence — the only
        // model whose repeat acquires otherwise always pay an RPC.
        const bool grant =
            entry.writer == 0 && policy.model == CoherenceModel::kFull;
        if (ss.cached_read && !grant) {
          // This acquire implicitly surrenders a cached lock we were
          // draining: the client re-contacted us, so it is not sick.
          entry.writer_cv.notify_all();
        }
        ss.cached_read = grant;
        ss.revoke_pending = false;
        if (grant) {
          ss.grant_time = std::chrono::steady_clock::now();
          stats_.cached_read_grants.fetch_add(1, std::memory_order_relaxed);
        }
        payload.append_u8(grant ? 1 : 0);
      }
      break;
    }

    case MsgType::kReleaseRead: {
      std::string name = in.read_lp_string();
      // Optional trailing byte: the client asks to keep the lock cached.
      bool keep_cached = in.remaining() >= 1 && in.read_u8() != 0;
      // Reader locks are otherwise pure client-side bookkeeping; tolerate
      // releases for segments or sessions we have no record of.
      SegmentEntry* entry = find_segment(name, false);
      if (entry != nullptr) {
        std::lock_guard el(entry->mu);
        auto it = entry->sessions.find(session);
        if (it != entry->sessions.end()) {
          SegmentSession& ss = it->second;
          const bool retain = keep_cached && ss.may_cache &&
                              options_.revoke_deadline_ms != 0 &&
                              entry->writer == 0;
          if (retain) {
            if (!ss.cached_read) {
              stats_.cached_read_grants.fetch_add(1,
                                                  std::memory_order_relaxed);
            }
            ss.cached_read = true;
            ss.revoke_pending = false;
            ss.grant_time = std::chrono::steady_clock::now();
          } else if (ss.cached_read || ss.revoke_pending) {
            // Plain release surrenders any cached lock — and acks an
            // in-flight revoke, waking the draining writer.
            ss.cached_read = false;
            ss.revoke_pending = false;
            entry->writer_cv.notify_all();
          }
        }
      }
      resp.type = MsgType::kAck;
      break;
    }

    case MsgType::kRevokeAck: {
      std::string name = in.read_lp_string();
      // Idempotent: a duplicated or late ack (lock already force-expired,
      // segment unknown) is still success. An ack only retires a
      // registration whose revocation is actually *pending*: acks travel on
      // a background client thread, so a floating duplicate can arrive
      // after this session re-acquired and earned a fresh grant — clearing
      // that grant here would leave the client serving cache hits the
      // server will never revoke (stale reads past the next commit). The
      // echoed generation closes the remaining async window: a floating
      // stale ack cannot retire a *newer* pending revocation the client
      // has not processed yet.
      uint32_t gen = in.remaining() >= 4 ? in.read_u32() : 0;
      SegmentEntry* entry = find_segment(name, false);
      if (entry != nullptr) {
        std::lock_guard el(entry->mu);
        auto it = entry->sessions.find(session);
        if (it != entry->sessions.end() && it->second.revoke_pending &&
            gen == entry->revoke_gen) {
          it->second.cached_read = false;
          it->second.revoke_pending = false;
          stats_.revokes_acked.fetch_add(1, std::memory_order_relaxed);
          entry->writer_cv.notify_all();
        }
      }
      resp.type = MsgType::kAck;
      break;
    }

    case MsgType::kAcquireWrite: {
      std::string name = in.read_lp_string();
      uint32_t client_version = in.read_u32();
      SegmentEntry& entry = segment(name);
      std::unique_lock el(entry.mu);
      if (options_.replicator != nullptr && options_.replicator->fenced(name)) {
        // Deposed primary: fail the acquire fast so the client re-resolves
        // placement now, instead of building a commit that can only die
        // with kStaleEpoch at release time.
        throw Error(ErrorCode::kStaleEpoch,
                    "segment '" + name + "' is owned by a newer primary");
      }
      if (entry.writer == session) {
        throw Error(ErrorCode::kState, "write lock already held");
      }
      // Waiting here blocks only this segment's entry lock; traffic on
      // other segments is unaffected.
      acquire_writer_locked(entry, name, session, el);
      SegmentSession& ss = seg_session(entry, session);
      resp.type = MsgType::kAcquireWriteResp;
      payload.append_u32(entry.store->next_block_serial());
      // A writer must start from the current version.
      if (append_update(entry, ss, client_version, CoherencePolicy::full(),
                        payload)) {
        stats_.updates_sent.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.uptodate_responses.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }

    case MsgType::kReleaseWrite: {
      std::string name = in.read_lp_string();
      SegmentEntry& entry = segment(name);
      std::lock_guard el(entry.mu);
      if (entry.writer != session) {
        if (entry.expired_writers.erase(session) > 0) {
          // The lease ran out and a waiter reclaimed the lock; the diff of
          // this late release must not be applied (another writer may have
          // committed on top of the reclaimed state).
          stats_.stale_releases_rejected.fetch_add(1,
                                                   std::memory_order_relaxed);
          throw Error(ErrorCode::kLeaseExpired,
                      "writer lease on '" + name +
                          "' expired and was reclaimed; release rejected");
        }
        throw Error(ErrorCode::kState, "releasing write lock not held");
      }
      // Negotiated connections wrap the diff in the section envelope; a
      // corrupt envelope must not wedge the segment any more than a
      // malformed diff may, so the lock drops on a decode failure too.
      std::span<const uint8_t> diff_bytes;
      std::vector<uint8_t> inflated;
      uint32_t old_version = entry.store->version();
      uint32_t new_version;
      try {
        if (seg_session(entry, session).may_compress &&
            read_compressed_section(in, inflated)) {
          diff_bytes = inflated;
        } else {
          diff_bytes = in.read_bytes(in.remaining());
        }
        new_version = entry.store->apply_diff(diff_bytes);
      } catch (...) {
        // A malformed diff must not wedge the segment: drop the lock.
        entry.writer = 0;
        entry.writer_cv.notify_all();
        throw;
      }
      // One compression decision for the commit record, shared by the
      // journal append and the replication stream below — the record is
      // encoded once, and every downstream copy (local log, replica wire,
      // replica log) inherits the same bytes.
      uint8_t head[4];
      store_be32(head, new_version);
      Buffer packed;
      bool packed_ok = false;
      if (new_version != old_version &&
          (entry.wal != nullptr || options_.replicator != nullptr)) {
        packed_ok = options_.compress_payloads &&
                    compress_record_payload({head, sizeof head}, diff_bytes,
                                            packed);
        const uint64_t raw_bytes = sizeof head + diff_bytes.size();
        stats_.commit_raw_bytes.fetch_add(raw_bytes,
                                          std::memory_order_relaxed);
        stats_.commit_stored_bytes.fetch_add(
            packed_ok ? packed.size() : raw_bytes, std::memory_order_relaxed);
        if (packed_ok) {
          stats_.commits_compressed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Journal the commit *before* acknowledging it — apply first (it
      // validates the diff so garbage never reaches the log), append
      // second, ack last. A crash after the append is recoverable; a crash
      // before it was never acknowledged.
      if (entry.wal != nullptr && new_version != old_version) {
        try {
          if (packed_ok) {
            entry.wal->append(WalRecordType::kCommit, packed.span(), {},
                              true);
          } else {
            entry.wal->append(WalRecordType::kCommit, {head, sizeof head},
                              diff_bytes);
          }
        } catch (...) {
          // The diff is applied in memory but missing from the journal, so
          // the log alone can no longer reproduce this state. Drop the lock
          // (the segment must not wedge), then re-anchor durability on a
          // fresh snapshot; if that also fails the client's kIo answer
          // honestly reports the commit as not durable.
          entry.writer = 0;
          entry.writer_cv.notify_all();
          try {
            checkpoint_segment_locked(entry);
          } catch (...) {
            IW_LOG(kWarn) << "checkpoint after failed journal append on "
                          << name << " also failed";
          }
          throw;
        }
      }
      // Replicate before ack: the commit is only acknowledged once the
      // configured replication factor has journaled it, so a primary crash
      // after this point cannot lose it (the promoted replica has it).
      if (options_.replicator != nullptr && new_version != old_version) {
        try {
          if (packed_ok) {
            options_.replicator->replicate(name, entry.repl_epoch,
                                           WalRecordType::kCommit,
                                           packed.span(), {}, true);
          } else {
            options_.replicator->replicate(name, entry.repl_epoch,
                                           WalRecordType::kCommit,
                                           {head, sizeof head}, diff_bytes);
          }
        } catch (...) {
          // Applied and locally journaled, but the factor did not confirm
          // in time (or this server was fenced as deposed). Fail the ack
          // and free the segment; the record stays queued on the links, so
          // the client's retried commit lands *after* it in stream order —
          // no replica ever sees a version gap.
          entry.writer = 0;
          entry.writer_cv.notify_all();
          throw;
        }
      }
      entry.writer = 0;
      entry.writer_cv.notify_all();

      // Conservative Diff-coherence accounting and notifications, all from
      // this entry's session table: fan-out for this segment never touches
      // another segment's lock or the connection table.
      for (auto& [sid, ss] : entry.sessions) {
        if (sid == session) {
          ss.modified_since_update = 0;
          continue;
        }
        ss.modified_since_update += diff_bytes.size();
        if (ss.subscribed && ss.notify) {
          Frame note;
          note.type = MsgType::kNotifyVersion;
          Buffer np;
          np.append_lp_string(name);
          np.append_u32(new_version);
          note.payload = np.take();
          notifies->push_back({ss.notify, std::move(note)});
          stats_.notifications_sent.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // The writer itself is now current.
      seg_session(entry, session).types_sent = entry.store->type_count();

      if (options_.checkpoint_every > 0 &&
          ++entry.versions_since_checkpoint >= options_.checkpoint_every) {
        checkpoint_segment_locked(entry);
      }
      resp.type = MsgType::kReleaseWriteResp;
      payload.append_u32(new_version);
      break;
    }

    case MsgType::kSegmentInfo: {
      std::string name = in.read_lp_string();
      SegmentEntry& entry = segment(name);
      std::lock_guard el(entry.mu);
      SegmentStore& store = *entry.store;
      resp.type = MsgType::kSegmentInfoResp;
      payload.append_u32(store.version());
      uint32_t count = store.type_count();
      payload.append_u32(count);
      for (uint32_t serial = 1; serial <= count; ++serial) {
        auto graph = store.type_graph(serial);
        payload.append_u32(static_cast<uint32_t>(graph.size()));
        payload.append(graph.data(), graph.size());
      }
      payload.append_u32(static_cast<uint32_t>(store.block_count()));
      store.for_each_block([&](const SvrBlock& b) {
        payload.append_u32(b.serial);
        payload.append_u32(b.type_serial);
        payload.append_lp_string(b.name);
      });
      // The directory lets a client reserve address space; it still fetches
      // data with a from-version of 0, so mark the session as having seen
      // all current types.
      seg_session(entry, session).types_sent = count;
      break;
    }

    case MsgType::kCloseSegment: {
      std::string name = in.read_lp_string();
      // The client dropped its cache: forget what we sent it (type-table
      // prefix, subscription, coherence counters). Closing a segment the
      // server never saw is a no-op.
      SegmentEntry* entry = find_segment(name, false);
      if (entry != nullptr) {
        std::lock_guard el(entry->mu);
        entry->sessions.erase(session);
        // The erase may have surrendered a cached read lock a revoking
        // writer is waiting out.
        entry->writer_cv.notify_all();
      }
      resp.type = MsgType::kAck;
      break;
    }

    case MsgType::kSubscribe: {
      std::string name = in.read_lp_string();
      SegmentEntry& entry = segment(name);
      std::lock_guard el(entry.mu);
      seg_session(entry, session).subscribed = true;
      resp.type = MsgType::kAck;
      break;
    }

    case MsgType::kWalAppend: {
      // A batch of WAL records streamed by a primary (this server is the
      // replica). Records for a segment whose placement epoch has moved on
      // come from a deposed primary: they are reported as stale instead of
      // applied, which fences that primary (see replication.hpp). Everything
      // else is applied to the store and journaled before the ack — the ack
      // is this replica's durability promise to the primary's client.
      uint32_t count = in.read_u32();
      uint32_t applied = 0;
      std::vector<std::string> stale;
      for (uint32_t i = 0; i < count; ++i) {
        std::string name = in.read_lp_string();
        uint32_t epoch = in.read_u32();
        // The tag is the primary's journal tag verbatim: record type plus
        // the compressed-envelope flag. Decode once for application; the
        // encoded bytes are journaled unchanged so the whole chain stores
        // the identical record.
        uint8_t tag = in.read_u8();
        const uint8_t masked = tag & ~kPayloadCompressedTagBit;
        // Only types 1..4 travel the replication stream; kEpochAdopt is a
        // local lineage marker each server journals for itself.
        if (masked < static_cast<uint8_t>(WalRecordType::kSegmentCreate) ||
            masked > static_cast<uint8_t>(WalRecordType::kSegmentDestroy)) {
          throw Error(ErrorCode::kProtocol, "unknown replicated record type");
        }
        auto rtype = static_cast<WalRecordType>(masked);
        const bool compressed = (tag & kPayloadCompressedTagBit) != 0;
        uint32_t len = in.read_u32();
        auto body = in.read_bytes(len);
        std::vector<uint8_t> decoded;
        std::span<const uint8_t> raw = body;
        if (compressed) {
          decoded = decompress_record_payload(body);
          raw = decoded;
        }
        SegmentEntry* entry = find_segment(name, true);
        std::lock_guard el(entry->mu);
        if (epoch < entry->repl_epoch) {
          stats_.repl_stale_rejected.fetch_add(1, std::memory_order_relaxed);
          if (std::find(stale.begin(), stale.end(), name) == stale.end()) {
            stale.push_back(std::move(name));
          }
          continue;
        }
        if (epoch > entry->lineage_epoch) {
          // First record from a newer primary: from here this replica's
          // applied history *is* the promoted lineage; record the adoption
          // before the records produced under it.
          adopt_epoch_locked(*entry, epoch);
        }
        entry->repl_epoch = epoch;
        apply_replicated_locked(*entry, name, rtype, body, compressed, raw);
        ++applied;
      }
      resp.type = MsgType::kWalAck;
      payload.append_u32(applied);
      payload.append_u32(static_cast<uint32_t>(stale.size()));
      for (const std::string& s : stale) payload.append_lp_string(s);
      break;
    }

    case MsgType::kPromote: {
      // The directory elected this server the segment's primary under a new
      // placement epoch. Adopting the epoch makes any late kWalAppend from
      // the old primary stale; answering with our version lets the caller
      // verify it promoted the most-caught-up replica.
      std::string name = in.read_lp_string();
      uint32_t new_epoch = in.read_u32();
      SegmentEntry* entry = find_segment(name, true);
      std::lock_guard el(entry->mu);
      if (new_epoch < entry->repl_epoch) {
        throw Error(ErrorCode::kStaleEpoch,
                    "promotion of '" + name + "' to epoch " +
                        std::to_string(new_epoch) + " is behind epoch " +
                        std::to_string(entry->repl_epoch));
      }
      adopt_epoch_locked(*entry, new_epoch);
      if (options_.replicator != nullptr) {
        // Whatever fenced this server is now behind it: it owns the
        // segment's newest epoch and may gate commits on its links again.
        options_.replicator->unfence(name);
      }
      stats_.promotions_accepted.fetch_add(1, std::memory_order_relaxed);
      IW_LOG(kInfo) << "promoted to primary of " << name << " (epoch "
                    << new_epoch << ", v" << entry->store->version() << ")";
      resp.type = MsgType::kPromoteResp;
      payload.append_u32(entry->store->version());
      break;
    }

    case MsgType::kSyncRequest: {
      return serve_sync_request(session, in);
    }

    case MsgType::kSyncDone: {
      // A replica finished pulling its backfill: flip its link from the
      // paused sync registration to live kWalAppend tailing. Records
      // enqueued since the sync cut are retained on the link and replay
      // now, completing the gap-free handoff.
      std::string name = in.read_lp_string();
      std::string replica_id = in.read_lp_string();
      std::string replica_address = in.read_lp_string();
      const uint32_t adopted_epoch = in.read_u32();
      const uint32_t version = in.read_u32();
      if (options_.replicator != nullptr && !replica_id.empty()) {
        const bool resumed = options_.replicator->resume_replica(replica_id);
        if (!resumed && options_.peer_dial != nullptr &&
            !replica_address.empty()) {
          // The paused registration is gone (sync grace expired during a
          // long pull); the completed backfill still covers the history, so
          // register the link live from here.
          auto dial = options_.peer_dial;
          options_.replicator->add_replica(
              replica_id,
              [dial, replica_address] { return dial(replica_address); });
        }
      }
      IW_LOG(kInfo) << "replica " << replica_id << " completed sync of "
                    << name << " (epoch " << adopted_epoch << ", v" << version
                    << ")";
      resp.type = MsgType::kAck;
      break;
    }

    case MsgType::kRecruit: {
      // The repair loop asks this server to (re)join a segment's replica
      // set: fence-check the recruitment epoch, pull the backfill from the
      // primary, and report the resulting position. A recruit for a
      // caught-up replica degenerates to an empty WAL-tail sync, so the
      // repairer can re-recruit every tick as idempotent anti-entropy.
      std::string name = in.read_lp_string();
      uint32_t epoch = in.read_u32();
      std::string primary_address = in.read_lp_string();
      {
        SegmentEntry* entry = find_segment(name, true);
        std::lock_guard el(entry->mu);
        if (epoch < entry->repl_epoch) {
          // Repair racing a newer failover: this replica already follows a
          // newer placement than the recruiter knows about.
          stats_.recruits_rejected_stale.fetch_add(1,
                                                   std::memory_order_relaxed);
          throw Error(ErrorCode::kStaleEpoch,
                      "recruitment of '" + name + "' at epoch " +
                          std::to_string(epoch) + " is behind epoch " +
                          std::to_string(entry->repl_epoch));
        }
      }
      const uint32_t version = backfill_segment(name, primary_address, epoch);
      resp.type = MsgType::kRecruitResp;
      payload.append_u32(segment_placement_epoch(name));
      payload.append_u32(version);
      break;
    }

    default:
      throw Error(ErrorCode::kProtocol, "unexpected message type");
  }

  resp.payload = payload.take();
  return resp;
}

void SegmentServer::apply_replicated_locked(SegmentEntry& entry,
                                            const std::string& name,
                                            WalRecordType type,
                                            std::span<const uint8_t> body,
                                            bool compressed,
                                            std::span<const uint8_t> raw) {
  BufReader in(raw.data(), raw.size());
  bool mutated = false;
  switch (type) {
    case WalRecordType::kSegmentCreate:
      // find_segment(create) already materialized the segment; the record
      // is still journaled below so a recovering replica has the anchor.
      mutated = entry.store->version() == 0 && entry.store->type_count() == 0;
      break;
    case WalRecordType::kRegisterType: {
      uint32_t serial = in.read_u32();
      auto graph = in.read_bytes(in.remaining());
      if (serial <= entry.store->type_count()) break;  // re-sent batch
      uint32_t got = entry.store->register_type(graph);
      if (got != serial) {
        throw Error(ErrorCode::kProtocol,
                    "replicated type serial gap on '" + name + "' (stream " +
                        std::to_string(serial) + ", store assigned " +
                        std::to_string(got) + ")");
      }
      mutated = true;
      break;
    }
    case WalRecordType::kCommit: {
      uint32_t version = in.read_u32();
      auto diff = in.read_bytes(in.remaining());
      if (version <= entry.store->version()) break;  // re-sent batch
      uint32_t got = entry.store->apply_diff(diff);
      if (got != version) {
        throw Error(ErrorCode::kProtocol,
                    "replicated version gap on '" + name + "' (stream v" +
                        std::to_string(version) + ", store reached v" +
                        std::to_string(got) + ")");
      }
      mutated = true;
      break;
    }
    case WalRecordType::kSegmentDestroy:
      entry.store = std::make_unique<SegmentStore>(name, options_.store);
      // The reborn segment shares nothing with the old checkpoint chain;
      // the next checkpoint must start from a fresh full snapshot.
      entry.checkpoint_base_version = 0;
      entry.last_checkpoint_version = 0;
      entry.checkpoint_chain_len = 0;
      entry.checkpoint_types_recorded = 0;
      mutated = true;
      break;
  }
  if (!mutated) return;
  stats_.repl_records_applied.fetch_add(1, std::memory_order_relaxed);
  // Journal before the batch is acked: the ack tells the primary this
  // record survives *this* server's crash too, which is exactly what the
  // primary promises its client. The encoded bytes go in verbatim —
  // compression was the primary's decision and is inherited, never redone.
  if (entry.wal != nullptr) entry.wal->append(type, body, {}, compressed);
}

void SegmentServer::set_node_identity(std::string id, std::string address) {
  std::lock_guard lock(node_mu_);
  node_id_ = std::move(id);
  node_address_ = std::move(address);
}

Frame SegmentServer::serve_sync_request(SessionId session, BufReader& in) {
  std::string name = in.read_lp_string();
  const uint32_t have_version = in.read_u32();
  const uint32_t have_lineage = in.read_u32();
  const uint32_t have_types = in.read_u32();
  const uint32_t want_epoch = in.read_u32();
  const uint64_t cursor = in.read_u64();
  std::string replica_id = in.read_lp_string();
  std::string replica_address = in.read_lp_string();
  stats_.sync_requests.fetch_add(1, std::memory_order_relaxed);

  SegmentEntry& entry = segment(name);
  std::unique_lock el(entry.mu);
  if (want_epoch > entry.repl_epoch) {
    // The requester was recruited under a placement newer than anything
    // this server has seen: it is asking a deposed primary. Refuse rather
    // than seed it with a dead lineage.
    throw Error(ErrorCode::kStaleEpoch,
                "sync of '" + name + "' wants epoch " +
                    std::to_string(want_epoch) + " but this server is at " +
                    std::to_string(entry.repl_epoch));
  }
  SegmentSession& ss = seg_session(entry, session);
  Frame resp;
  resp.type = MsgType::kSyncChunk;
  Buffer payload;
  if (cursor == 0) {
    if (options_.replicator != nullptr && options_.peer_dial != nullptr &&
        !replica_id.empty() && !replica_address.empty()) {
      // Park the requester's link with its ack cursor pinned *before* the
      // cut below: the sync covers everything up to the pin, the retained
      // log replays everything after it once kSyncDone resumes the link. A
      // link already streaming live is left alone (see register_sync).
      auto dial = options_.peer_dial;
      options_.replicator->register_sync(
          replica_id,
          [dial, replica_address] { return dial(replica_address); });
    }
    const uint32_t version = entry.store->version();
    const uint32_t types = entry.store->type_count();
    bool tail_ok = false;
    Buffer tail;
    if (have_lineage == entry.lineage_epoch && have_version <= version &&
        have_types <= types) {
      // Same lineage and not ahead of us: the requester's gap is exactly
      // what an incremental checkpoint stores — the type graphs registered
      // since, the fold history, one diff. Reuse that encoding as the sync
      // tail; an equal-position requester gets an empty body.
      try {
        if (have_version != version || have_types != types) {
          tail.append_u32(types - have_types);
          for (uint32_t serial = have_types + 1; serial <= types; ++serial) {
            auto graph = entry.store->type_graph(serial);
            tail.append_u32(serial);
            tail.append_u32(static_cast<uint32_t>(graph.size()));
            tail.append(graph.data(), graph.size());
          }
          entry.store->collect_fold_history(have_version, tail);
          auto diff = entry.store->collect_diff(have_version);
          tail.append(diff->data(), diff->size());
        }
        tail_ok = true;
      } catch (const std::exception&) {
        // The store's fold history no longer reaches back to have_version;
        // fall through to a snapshot.
        tail.clear();
      }
    }
    if (tail_ok) {
      stats_.sync_tails_served.fetch_add(1, std::memory_order_relaxed);
      // The epoch stamped on the chunk is the *lineage* of the content: a
      // puller recruited under a newer epoch than our history was produced
      // under must reject it (we may be a deposed primary serving stale
      // state), which its install-side fence does by comparing this value.
      payload.append_u32(entry.lineage_epoch);
      payload.append_u32(version);
      payload.append_u8(0);  // mode: WAL-tail fold
      payload.append_u8(1);  // done
      payload.append_u64(0);
      payload.append(tail.data(), tail.size());
      resp.payload = payload.take();
      return resp;
    }
    // Snapshot: cut once under the lock, cache it on the session, slice per
    // chunk — a large segment streams consistently even while new commits
    // land between chunk requests.
    Buffer full;
    entry.store->serialize(full);
    ss.sync_snapshot =
        std::make_shared<const std::vector<uint8_t>>(full.take());
    ss.sync_version = version;
    ss.sync_epoch = entry.lineage_epoch;
    stats_.sync_snapshots_served.fetch_add(1, std::memory_order_relaxed);
  }
  if (ss.sync_snapshot == nullptr) {
    throw Error(ErrorCode::kState, "no sync in progress for '" + name + "'");
  }
  const std::vector<uint8_t>& snap = *ss.sync_snapshot;
  if (cursor > snap.size()) {
    throw Error(ErrorCode::kProtocol, "sync cursor past snapshot end");
  }
  const size_t step = std::max<uint32_t>(options_.sync_chunk_bytes, 1);
  const size_t n = std::min(step, snap.size() - static_cast<size_t>(cursor));
  const bool done = cursor + n == snap.size();
  payload.append_u32(ss.sync_epoch);
  payload.append_u32(ss.sync_version);
  payload.append_u8(1);  // mode: snapshot
  payload.append_u8(done ? 1 : 0);
  payload.append_u64(cursor + n);
  payload.append(snap.data() + cursor, n);
  if (done) ss.sync_snapshot.reset();
  resp.payload = payload.take();
  return resp;
}

void SegmentServer::seal_backfill_locked(SegmentEntry& entry, uint32_t epoch) {
  entry.repl_epoch = std::max(entry.repl_epoch, epoch);
  entry.lineage_epoch = epoch;
  // The journal may carry a divergent unacked suffix from this server's
  // deposed incarnation; the state just installed supersedes it, so a full
  // checkpoint followed by journal truncation retires it for good.
  if (!options_.checkpoint_dir.empty()) checkpoint_full_locked(entry);
  if (entry.wal != nullptr) {
    entry.wal->truncate_after_checkpoint();
    journal_lineage_locked(entry);
  }
  entry.versions_since_checkpoint = 0;
}

uint32_t SegmentServer::backfill_segment(const std::string& name,
                                         const std::string& primary_address,
                                         uint32_t want_epoch) {
  if (options_.peer_dial == nullptr) {
    throw Error(ErrorCode::kState,
                "backfill of '" + name + "' needs a peer dialer");
  }
  SegmentEntry* entry = find_segment(name, true);
  uint32_t have_version = 0;
  uint32_t have_lineage = 1;
  uint32_t have_types = 0;
  {
    std::lock_guard el(entry->mu);
    have_version = entry->store->version();
    have_lineage = entry->lineage_epoch;
    have_types = entry->store->type_count();
  }
  std::string self_id;
  std::string self_address;
  {
    std::lock_guard nl(node_mu_);
    self_id = node_id_;
    self_address = node_address_;
  }
  auto channel = options_.peer_dial(primary_address);

  uint64_t cursor = 0;
  uint32_t epoch = 0;
  uint32_t version = 0;
  bool done = false;
  bool snapshot_mode = false;
  std::vector<uint8_t> snapshot;
  while (!done) {
    Buffer req;
    req.append_lp_string(name);
    req.append_u32(have_version);
    req.append_u32(have_lineage);
    req.append_u32(have_types);
    req.append_u32(want_epoch);
    req.append_u64(cursor);
    req.append_lp_string(self_id);
    req.append_lp_string(self_address);
    Frame chunk = channel->call(MsgType::kSyncRequest, std::move(req));
    BufReader cin = chunk.reader();
    epoch = cin.read_u32();
    version = cin.read_u32();
    const uint8_t mode = cin.read_u8();
    done = cin.read_u8() != 0;
    cursor = cin.read_u64();
    auto bytes = cin.read_bytes(cin.remaining());
    if (mode == 0) {
      // WAL-tail fold: same lineage, applied in place (single chunk by
      // construction). The fence below rejects content from a lineage
      // older than either what this replica already follows or what the
      // recruiter demanded — repair racing a newer failover resolves
      // toward the newer lineage.
      std::lock_guard el(entry->mu);
      if (epoch < entry->repl_epoch ||
          (want_epoch != 0 && epoch < want_epoch)) {
        throw Error(ErrorCode::kStaleEpoch,
                    "sync tail for '" + name + "' carries epoch " +
                        std::to_string(epoch) + " behind epoch " +
                        std::to_string(std::max(entry->repl_epoch,
                                                want_epoch)));
      }
      bool changed = false;
      if (!bytes.empty()) {
        BufReader tin(bytes.data(), bytes.size());
        uint32_t new_types = tin.read_u32();
        for (uint32_t i = 0; i < new_types; ++i) {
          uint32_t serial = tin.read_u32();
          uint32_t len = tin.read_u32();
          auto graph = tin.read_bytes(len);
          if (serial <= entry->store->type_count()) continue;
          uint32_t got = entry->store->register_type(graph);
          if (got != serial) {
            throw Error(ErrorCode::kProtocol,
                        "sync type serial gap on '" + name + "' (stream " +
                            std::to_string(serial) + ", store assigned " +
                            std::to_string(got) + ")");
          }
          changed = true;
        }
        if (version > entry->store->version()) {
          uint32_t got = entry->store->apply_fold(version, tin);
          if (got != version) {
            throw Error(ErrorCode::kProtocol,
                        "sync version gap on '" + name + "' (stream v" +
                            std::to_string(version) + ", store reached v" +
                            std::to_string(got) + ")");
          }
          changed = true;
        }
      }
      if (changed || epoch != entry->lineage_epoch) {
        // The fold moved the store past the recorded checkpoint chain
        // positions; seal over a fresh full base.
        entry->checkpoint_base_version = 0;
        entry->last_checkpoint_version = 0;
        entry->checkpoint_chain_len = 0;
        entry->checkpoint_types_recorded = 0;
        seal_backfill_locked(*entry, epoch);
      }
      version = entry->store->version();
    } else {
      snapshot_mode = true;
      snapshot.insert(snapshot.end(), bytes.begin(), bytes.end());
    }
  }
  if (snapshot_mode) {
    std::lock_guard el(entry->mu);
    if (epoch < entry->repl_epoch ||
        (want_epoch != 0 && epoch < want_epoch)) {
      throw Error(ErrorCode::kStaleEpoch,
                  "sync snapshot for '" + name + "' carries epoch " +
                      std::to_string(epoch) + " behind epoch " +
                      std::to_string(std::max(entry->repl_epoch,
                                              want_epoch)));
    }
    BufReader sin(snapshot.data(), snapshot.size());
    entry->store = SegmentStore::deserialize(name, options_.store, sin);
    entry->checkpoint_base_version = 0;
    entry->last_checkpoint_version = 0;
    entry->checkpoint_chain_len = 0;
    entry->checkpoint_types_recorded = 0;
    seal_backfill_locked(*entry, epoch);
    version = entry->store->version();
  }
  stats_.backfills_completed.fetch_add(1, std::memory_order_relaxed);
  IW_LOG(kInfo) << "backfilled " << name << " from " << primary_address
                << " (epoch " << epoch << ", v" << version << ", "
                << (snapshot_mode ? "snapshot" : "tail") << ")";
  // Complete the handshake: the primary flips (or re-adds) this server's
  // link to live kWalAppend tailing from the sync's pin.
  Buffer fin;
  fin.append_lp_string(name);
  fin.append_lp_string(self_id);
  fin.append_lp_string(self_address);
  fin.append_u32(epoch);
  fin.append_u32(version);
  channel->call(MsgType::kSyncDone, std::move(fin));
  return version;
}

uint64_t SegmentServer::sweep_expired_grants() {
  if (options_.cached_grant_ttl_ms == 0 || options_.revoke_deadline_ms == 0) {
    return 0;
  }
  const auto cutoff =
      std::chrono::steady_clock::now() -
      std::chrono::milliseconds(options_.cached_grant_ttl_ms);
  uint64_t swept = 0;
  std::shared_lock dir(dir_mu_);
  for (auto& [name, entry] : segments_) {
    std::lock_guard el(entry->mu);
    uint64_t here = 0;
    for (auto& [sid, ss] : entry->sessions) {
      // Grants with a revocation in flight stay with the deadline
      // machinery — the writer driving it owns their fate.
      if (ss.cached_read && !ss.revoke_pending && ss.grant_time < cutoff) {
        ss.cached_read = false;
        ++here;
      }
    }
    if (here != 0) {
      swept += here;
      entry->writer_cv.notify_all();
    }
  }
  if (swept != 0) {
    stats_.expired_grants_swept.fetch_add(swept, std::memory_order_relaxed);
  }
  return swept;
}

std::string SegmentServer::chain_file_path(const std::string& name) const {
  namespace fs = std::filesystem;
  return (fs::path(options_.checkpoint_dir) / encode_file_name(name, ".iwinc"))
      .string();
}

void SegmentServer::checkpoint_full_locked(SegmentEntry& entry) {
  Buffer out;
  out.append_u32(kCheckpointMagic);
  out.append_lp_string(entry.store->name());
  entry.store->serialize(out);

  namespace fs = std::filesystem;
  fs::path dir(options_.checkpoint_dir);
  fs::path final_path = dir / encode_file_name(entry.store->name(), ".iwseg");
  // tmp + fdatasync + rename + parent fsync: the snapshot is durable before
  // it becomes visible under its final name.
  write_file_durable(final_path.string(), {out.data(), out.size()});
  // The old chain extended the *previous* snapshot. Recovery would reject
  // it anyway (base mismatch on the first record), so a crash between the
  // rename above and this unlink is benign; removing it just reclaims the
  // space and keeps the stale-chain path off the common recovery.
  std::error_code ec;
  if (fs::remove(chain_file_path(entry.store->name()), ec)) {
    fsync_parent_dir(final_path.string());
  }
  entry.checkpoint_base_version = entry.store->version();
  entry.last_checkpoint_version = entry.store->version();
  entry.checkpoint_chain_len = 0;
  entry.checkpoint_types_recorded = entry.store->type_count();
  stats_.checkpoints_written.fetch_add(1, std::memory_order_relaxed);
}

void SegmentServer::checkpoint_segment_locked(SegmentEntry& entry) {
  if (options_.checkpoint_dir.empty()) return;
  const uint32_t version = entry.store->version();
  const uint32_t types = entry.store->type_count();
  // A delta record only makes sense when this incarnation wrote the base
  // it extends, the chain is under its rewrite bound, and the store has
  // moved forward (a destroy/recover resets the chain state instead).
  const bool chain_ok = options_.checkpoint_chain_limit != 0 &&
                        entry.checkpoint_base_version != 0 &&
                        entry.checkpoint_chain_len <
                            options_.checkpoint_chain_limit &&
                        version >= entry.last_checkpoint_version &&
                        types >= entry.checkpoint_types_recorded;
  if (chain_ok && version == entry.last_checkpoint_version &&
      types == entry.checkpoint_types_recorded) {
    // Nothing new since the last checkpoint record: just retire the
    // journal, which the existing base + chain already covers.
    if (entry.wal != nullptr) {
      entry.wal->truncate_after_checkpoint();
      journal_lineage_locked(entry);
    }
    entry.versions_since_checkpoint = 0;
    return;
  }
  if (chain_ok) {
    // Delta record: only what changed since the last checkpoint — the type
    // graphs registered since, and the diff from the last covered version
    // (the store tracks dirty subblocks, so this is proportional to what
    // was touched, not to the segment).
    SegmentStore& store = *entry.store;
    Buffer sections;
    sections.append_u32(types - entry.checkpoint_types_recorded);
    for (uint32_t serial = entry.checkpoint_types_recorded + 1;
         serial <= types; ++serial) {
      auto graph = store.type_graph(serial);
      sections.append_u32(serial);
      sections.append_u32(static_cast<uint32_t>(graph.size()));
      sections.append(graph.data(), graph.size());
    }
    store.collect_fold_history(entry.last_checkpoint_version, sections);
    auto diff = store.collect_diff(entry.last_checkpoint_version);
    sections.append(diff->data(), diff->size());
    append_chain_record(chain_file_path(store.name()),
                        entry.checkpoint_base_version,
                        entry.last_checkpoint_version, version,
                        sections.span(), options_.compress_payloads);
    entry.last_checkpoint_version = version;
    entry.checkpoint_types_recorded = types;
    ++entry.checkpoint_chain_len;
    stats_.checkpoints_incremental.fetch_add(1, std::memory_order_relaxed);
    stats_.checkpoints_written.fetch_add(1, std::memory_order_relaxed);
  } else {
    checkpoint_full_locked(entry);
  }
  // Only once the checkpoint is durably in place may the journal records it
  // supersedes be discarded. A crash between the two is benign: replay
  // skips records at or below the covered version. The lineage marker is
  // not covered by the snapshot, so it is re-journaled after the cut.
  if (entry.wal != nullptr) {
    entry.wal->truncate_after_checkpoint();
    journal_lineage_locked(entry);
  }
  entry.versions_since_checkpoint = 0;
}

void SegmentServer::checkpoint() {
  std::shared_lock dir(dir_mu_);
  for (auto& [name, entry] : segments_) {
    std::lock_guard el(entry->mu);
    checkpoint_segment_locked(*entry);
  }
}

uint64_t SegmentServer::replay_wal_records(
    const std::string& name, std::unique_ptr<SegmentStore>& store,
    const WriteAheadLog::Replay& replay, uint32_t* lineage_epoch) {
  uint64_t applied_end = 0;
  uint64_t applied = 0;
  for (const WriteAheadLog::Record& rec : replay.records) {
    try {
      BufReader in(rec.payload.data(), rec.payload.size());
      switch (rec.type) {
        case WalRecordType::kSegmentCreate: {
          std::string recorded = in.read_lp_string();
          if (recorded != name) {
            throw Error(ErrorCode::kProtocol,
                        "journal names segment '" + recorded + "'");
          }
          break;
        }
        case WalRecordType::kRegisterType: {
          uint32_t serial = in.read_u32();
          auto graph = in.read_bytes(in.remaining());
          if (serial <= store->type_count()) break;  // already in snapshot
          uint32_t got = store->register_type(graph);
          if (got != serial) {
            throw Error(ErrorCode::kProtocol,
                        "type serial gap (journal " + std::to_string(serial) +
                            ", store assigned " + std::to_string(got) + ")");
          }
          break;
        }
        case WalRecordType::kCommit: {
          uint32_t version = in.read_u32();
          auto diff = in.read_bytes(in.remaining());
          // At or below the snapshot: the checkpoint already contains this
          // commit (the crash-between-checkpoint-and-truncate window).
          if (version <= store->version()) break;
          uint32_t got = store->apply_diff(diff);
          if (got != version) {
            throw Error(ErrorCode::kProtocol,
                        "version gap (journal v" + std::to_string(version) +
                            ", store reached v" + std::to_string(got) + ")");
          }
          break;
        }
        case WalRecordType::kSegmentDestroy:
          store = std::make_unique<SegmentStore>(name, options_.store);
          break;
        case WalRecordType::kEpochAdopt: {
          uint32_t epoch = in.read_u32();
          if (lineage_epoch != nullptr) {
            *lineage_epoch = std::max(*lineage_epoch, epoch);
          }
          break;
        }
      }
    } catch (const std::exception& e) {
      // A record that cannot be applied (version gap after a quarantined
      // checkpoint, malformed payload) ends replay; everything after it
      // depends on state we do not have. The prefix already applied is
      // kept — the journal is truncated to match it.
      IW_LOG(kWarn) << "journal replay for " << name << " stopped after "
                    << applied << " records: " << e.what();
      break;
    }
    applied_end = rec.end_offset;
    ++applied;
  }
  stats_.wal_replayed_records.fetch_add(applied, std::memory_order_relaxed);
  return applied_end;
}

void SegmentServer::fold_checkpoint_chain(
    const std::string& name, std::unique_ptr<SegmentStore>& store) {
  namespace fs = std::filesystem;
  const std::string path = chain_file_path(name);
  ChainScan scan = scan_chain(path);
  if (scan.missing) return;
  const uint32_t base = store->version();
  uint64_t folded = 0;
  bool stale = false;
  bool corrupt = scan.torn;
  std::string why = corrupt ? "torn or corrupt record framing" : "";
  for (const ChainRecord& rec : scan.records) {
    if (rec.base_version != base) {
      if (folded == 0 && !corrupt) {
        // The whole chain extends an older snapshot than the one we
        // loaded: the residue of a crash between a full rewrite landing
        // and the old chain's unlink. Expected, not corruption.
        stale = true;
      } else {
        corrupt = true;
        why = "base version changed mid-chain (v" +
              std::to_string(rec.base_version) + " after v" +
              std::to_string(base) + ")";
      }
      break;
    }
    if (rec.from_version != store->version()) {
      corrupt = true;
      why = "chain gap (record from v" + std::to_string(rec.from_version) +
            ", store at v" + std::to_string(store->version()) + ")";
      break;
    }
    try {
      BufReader in(rec.sections.data(), rec.sections.size());
      uint32_t new_types = in.read_u32();
      for (uint32_t i = 0; i < new_types; ++i) {
        uint32_t serial = in.read_u32();
        uint32_t len = in.read_u32();
        auto graph = in.read_bytes(len);
        if (serial <= store->type_count()) continue;
        uint32_t got = store->register_type(graph);
        if (got != serial) {
          throw Error(ErrorCode::kProtocol,
                      "type serial gap in chain (record " +
                          std::to_string(serial) + ", store assigned " +
                          std::to_string(got) + ")");
        }
      }
      uint32_t got = store->apply_fold(rec.to_version, in);
      if (got != rec.to_version) {
        throw Error(ErrorCode::kProtocol,
                    "chain version gap (record to v" +
                        std::to_string(rec.to_version) +
                        ", store reached v" + std::to_string(got) + ")");
      }
    } catch (const std::exception& e) {
      corrupt = true;
      why = e.what();
      break;
    }
    ++folded;
  }
  if (folded != 0) {
    stats_.checkpoint_chain_folds.fetch_add(folded, std::memory_order_relaxed);
    IW_LOG(kInfo) << "folded " << folded << " incremental checkpoints onto "
                  << name << " (v" << base << " -> v" << store->version()
                  << ")";
  }
  if (stale) {
    std::error_code ec;
    fs::remove(path, ec);
    IW_LOG(kInfo) << "removed stale checkpoint chain for " << name
                  << " (chain base v" << scan.records.front().base_version
                  << ", snapshot v" << base << ")";
    return;
  }
  if (corrupt) {
    // Keep the good prefix we folded and set the rest aside, exactly like
    // a quarantined snapshot; the journal replay that follows stops at the
    // resulting version gap, so recovery lands on the last good fold.
    fs::path quarantine = fs::path(path);
    quarantine += ".corrupt";
    std::error_code ec;
    fs::rename(path, quarantine, ec);
    IW_LOG(kWarn) << "quarantining checkpoint chain " << path << " after "
                  << folded << " records (" << why << ")"
                  << (ec ? "; rename failed: " + ec.message() : "");
    stats_.checkpoints_quarantined.fetch_add(1, std::memory_order_relaxed);
  }
}

void SegmentServer::recover() {
  if (options_.checkpoint_dir.empty()) return;
  namespace fs = std::filesystem;
  std::unique_lock dir(dir_mu_);
  // Collect paths first: quarantining renames files, which must not race
  // the directory iteration.
  std::vector<fs::path> snapshots;
  std::vector<fs::path> journals;
  std::vector<fs::path> chains;
  for (const auto& dirent : fs::directory_iterator(options_.checkpoint_dir)) {
    if (dirent.path().extension() == ".iwseg") {
      snapshots.push_back(dirent.path());
    } else if (dirent.path().extension() == ".iwlog") {
      journals.push_back(dirent.path());
    } else if (dirent.path().extension() == ".iwinc") {
      chains.push_back(dirent.path());
    }
  }

  // Pass 1: load snapshots. A corrupt checkpoint (bad magic, truncation,
  // flipped bits — deserialize validates throughout) is quarantined and
  // recovery continues; one damaged file must not take down every segment.
  for (const fs::path& path : snapshots) {
    std::string name;
    std::unique_ptr<SegmentStore> store;
    try {
      std::ifstream f(path, std::ios::binary);
      if (!f) throw Error(ErrorCode::kIo, "cannot read " + path.string());
      std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                 std::istreambuf_iterator<char>());
      BufReader in(bytes.data(), bytes.size());
      if (in.read_u32() != kCheckpointMagic) {
        throw Error(ErrorCode::kProtocol, "bad checkpoint magic");
      }
      name = in.read_lp_string();
      store = SegmentStore::deserialize(name, options_.store, in);
    } catch (const Error& e) {
      fs::path quarantine = path;
      quarantine += ".corrupt";
      std::error_code ec;
      fs::rename(path, quarantine, ec);
      IW_LOG(kWarn) << "quarantining corrupt checkpoint " << path << " ("
                    << e.what() << ")"
                    << (ec ? "; rename failed: " + ec.message() : "");
      stats_.checkpoints_quarantined.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Fold the segment's incremental chain (if any) onto the snapshot
    // before the journal tail replays: base + chain + tail, in that order.
    fold_checkpoint_chain(name, store);
    auto it = segments_.find(name);
    if (it != segments_.end()) {
      // Replace the store in place: entry addresses must stay stable.
      std::lock_guard el(it->second->mu);
      it->second->store = std::move(store);
      it->second->versions_since_checkpoint = 0;
      it->second->wal.reset();  // reopened against the journal below
      // Recovery never resumes an inherited chain; the next checkpoint
      // lays down a fresh full base.
      it->second->checkpoint_base_version = 0;
      it->second->last_checkpoint_version = 0;
      it->second->checkpoint_chain_len = 0;
      it->second->checkpoint_types_recorded = 0;
    } else {
      auto entry = std::make_unique<SegmentEntry>();
      entry->store = std::move(store);
      segments_.emplace(std::move(name), std::move(entry));
    }
    IW_LOG(kInfo) << "recovered segment " << path.filename().string();
  }

  // A chain whose base snapshot is missing or was quarantined cannot be
  // applied to anything; set it aside with the same discipline.
  for (const fs::path& path : chains) {
    std::string name = decode_file_name(path.stem().string());
    if (segments_.count(name) != 0 || !fs::exists(path)) continue;
    fs::path quarantine = path;
    quarantine += ".corrupt";
    std::error_code ec;
    fs::rename(path, quarantine, ec);
    IW_LOG(kWarn) << "quarantining orphan checkpoint chain " << path
                  << " (no base snapshot)"
                  << (ec ? "; rename failed: " + ec.message() : "");
    stats_.checkpoints_quarantined.fetch_add(1, std::memory_order_relaxed);
  }

  // Pass 2: replay each journal's tail on top of its snapshot (or from
  // scratch for a segment that was never checkpointed), then reopen the log
  // for appending at exactly the applied prefix. A torn tail — the expected
  // residue of a crash mid-append — is cut off, never an error.
  for (const fs::path& path : journals) {
    std::string name = decode_file_name(path.stem().string());
    WriteAheadLog::Replay replay = WriteAheadLog::replay(path.string());
    if (replay.torn_tail) {
      IW_LOG(kWarn) << "journal " << path.filename().string()
                    << " has a torn tail; truncating "
                    << replay.truncated_bytes << " bytes";
      stats_.wal_truncated_bytes.fetch_add(replay.truncated_bytes,
                                           std::memory_order_relaxed);
    }
    auto it = segments_.find(name);
    if (it == segments_.end()) {
      auto entry = std::make_unique<SegmentEntry>();
      entry->store = std::make_unique<SegmentStore>(name, options_.store);
      it = segments_.emplace(std::move(name), std::move(entry)).first;
    }
    SegmentEntry& entry = *it->second;
    std::lock_guard el(entry.mu);
    uint32_t lineage = 1;
    uint64_t resume =
        replay_wal_records(it->first, entry.store, replay, &lineage);
    // A recovered replica resumes fenced at the lineage it had adopted: a
    // deposed primary that restarts must not believe it still owns the
    // segment's newest epoch.
    entry.lineage_epoch = std::max(entry.lineage_epoch, lineage);
    entry.repl_epoch = std::max(entry.repl_epoch, entry.lineage_epoch);
    if (!wal_on()) continue;  // journal preserved but not extended
    if (resume >= WriteAheadLog::kHeaderSize) {
      entry.wal = std::make_unique<WriteAheadLog>(path.string(), wal_options(),
                                                  resume);
    } else {
      open_fresh_wal(entry, it->first);
    }
  }

  // Pass 3: segments recovered from a snapshot alone (pre-journal state, or
  // a journal lost with its device) still need a live journal.
  if (wal_on()) {
    for (auto& [name, entry] : segments_) {
      std::lock_guard el(entry->mu);
      if (entry->wal == nullptr) open_fresh_wal(*entry, name);
    }
  }
  stats_.recoveries_completed.fetch_add(1, std::memory_order_relaxed);
}

SegmentServer::Stats SegmentServer::stats() const {
  Stats s;
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.updates_sent = stats_.updates_sent.load(std::memory_order_relaxed);
  s.uptodate_responses =
      stats_.uptodate_responses.load(std::memory_order_relaxed);
  s.notifications_sent =
      stats_.notifications_sent.load(std::memory_order_relaxed);
  s.checkpoints_written =
      stats_.checkpoints_written.load(std::memory_order_relaxed);
  s.lease_expirations = stats_.lease_expirations.load(std::memory_order_relaxed);
  s.stale_releases_rejected =
      stats_.stale_releases_rejected.load(std::memory_order_relaxed);
  s.cached_read_grants =
      stats_.cached_read_grants.load(std::memory_order_relaxed);
  s.revokes_sent = stats_.revokes_sent.load(std::memory_order_relaxed);
  s.revokes_acked = stats_.revokes_acked.load(std::memory_order_relaxed);
  s.revokes_expired = stats_.revokes_expired.load(std::memory_order_relaxed);
  s.wal_records_appended =
      wal_counters_.records_appended.load(std::memory_order_relaxed);
  s.wal_bytes_appended =
      wal_counters_.bytes_appended.load(std::memory_order_relaxed);
  s.wal_fsyncs = wal_counters_.fsyncs.load(std::memory_order_relaxed);
  s.wal_replayed_records =
      stats_.wal_replayed_records.load(std::memory_order_relaxed);
  s.wal_truncated_bytes =
      stats_.wal_truncated_bytes.load(std::memory_order_relaxed);
  s.recoveries_completed =
      stats_.recoveries_completed.load(std::memory_order_relaxed);
  s.checkpoints_quarantined =
      stats_.checkpoints_quarantined.load(std::memory_order_relaxed);
  s.checkpoints_incremental =
      stats_.checkpoints_incremental.load(std::memory_order_relaxed);
  s.checkpoint_chain_folds =
      stats_.checkpoint_chain_folds.load(std::memory_order_relaxed);
  s.updates_compressed =
      stats_.updates_compressed.load(std::memory_order_relaxed);
  s.update_raw_bytes = stats_.update_raw_bytes.load(std::memory_order_relaxed);
  s.update_wire_bytes =
      stats_.update_wire_bytes.load(std::memory_order_relaxed);
  s.commits_compressed =
      stats_.commits_compressed.load(std::memory_order_relaxed);
  s.commit_raw_bytes = stats_.commit_raw_bytes.load(std::memory_order_relaxed);
  s.commit_stored_bytes =
      stats_.commit_stored_bytes.load(std::memory_order_relaxed);
  s.repl_records_applied =
      stats_.repl_records_applied.load(std::memory_order_relaxed);
  s.repl_stale_rejected =
      stats_.repl_stale_rejected.load(std::memory_order_relaxed);
  s.promotions_accepted =
      stats_.promotions_accepted.load(std::memory_order_relaxed);
  s.expired_grants_swept =
      stats_.expired_grants_swept.load(std::memory_order_relaxed);
  s.sync_requests = stats_.sync_requests.load(std::memory_order_relaxed);
  s.sync_tails_served =
      stats_.sync_tails_served.load(std::memory_order_relaxed);
  s.sync_snapshots_served =
      stats_.sync_snapshots_served.load(std::memory_order_relaxed);
  s.backfills_completed =
      stats_.backfills_completed.load(std::memory_order_relaxed);
  s.recruits_rejected_stale =
      stats_.recruits_rejected_stale.load(std::memory_order_relaxed);
  return s;
}

StoreStats SegmentServer::segment_stats(const std::string& name) const {
  // StoreStats counters are relaxed atomics; no entry lock needed.
  return segment(name).store->stats();
}

uint32_t SegmentServer::segment_version(const std::string& name) const {
  const SegmentEntry& entry = segment(name);
  std::lock_guard el(entry.mu);
  return entry.store->version();
}

uint32_t SegmentServer::segment_epoch(const std::string& name) const {
  const SegmentEntry& entry = segment(name);
  std::lock_guard el(entry.mu);
  return entry.epoch;
}

uint32_t SegmentServer::segment_placement_epoch(const std::string& name) const {
  const SegmentEntry& entry = segment(name);
  std::lock_guard el(entry.mu);
  return entry.repl_epoch;
}

uint32_t SegmentServer::segment_lineage_epoch(const std::string& name) const {
  const SegmentEntry& entry = segment(name);
  std::lock_guard el(entry.mu);
  return entry.lineage_epoch;
}

}  // namespace iw::server
