#include "server/segment_store.hpp"
#include "util/stopwatch.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "wire/translate.hpp"

namespace iw::server {

namespace {
uint32_t subblocks_for(uint64_t units, uint32_t subblock_units) {
  return static_cast<uint32_t>((units + subblock_units - 1) / subblock_units);
}
}  // namespace

/// Translation hooks over a block's packed-canonical storage: strings and
/// MIPs live out-of-line in vardata, addressed by a per-type offset->slot
/// map. The 4-byte field itself stores the slot id (deterministic bytes).
class ServerHooks final : public TranslationHooks {
 public:
  ServerHooks(SvrBlock* block, const VarMap* vm) : block_(block), vm_(vm) {}

  std::string swizzle_out(const void* field) override {
    return block_->vardata[slot(field)];
  }
  void swizzle_in(std::string_view mip, void* field) override {
    uint32_t s = slot(field);
    block_->vardata[s].assign(mip);
    store_be32(field, s);
  }
  std::string_view read_string(const void* field, uint32_t) override {
    return block_->vardata[slot(field)];
  }
  void write_string(void* field, uint32_t, std::string_view content) override {
    uint32_t s = slot(field);
    block_->vardata[s].assign(content);
    store_be32(field, s);
  }

 private:
  uint32_t slot(const void* field) const {
    auto offset = static_cast<uint32_t>(static_cast<const uint8_t*>(field) -
                                        block_->data.data());
    auto it = vm_->slot_by_offset.find(offset);
    check_internal(it != vm_->slot_by_offset.end(), "no var slot at offset");
    return it->second;
  }

  SvrBlock* block_;
  const VarMap* vm_;
};

SegmentStore::SegmentStore(std::string name, Options options)
    : name_(std::move(name)), options_(options) {}

StoreStats SegmentStore::stats() const noexcept {
  StoreStats s;
  s.diffs_applied = stats_.diffs_applied.load(std::memory_order_relaxed);
  s.diffs_collected = stats_.diffs_collected.load(std::memory_order_relaxed);
  s.diff_cache_hits = stats_.diff_cache_hits.load(std::memory_order_relaxed);
  s.diff_cache_misses =
      stats_.diff_cache_misses.load(std::memory_order_relaxed);
  s.prediction_hits = stats_.prediction_hits.load(std::memory_order_relaxed);
  s.prediction_misses =
      stats_.prediction_misses.load(std::memory_order_relaxed);
  s.bytes_applied = stats_.bytes_applied.load(std::memory_order_relaxed);
  s.bytes_collected = stats_.bytes_collected.load(std::memory_order_relaxed);
  s.apply_ns = stats_.apply_ns.load(std::memory_order_relaxed);
  s.collect_ns = stats_.collect_ns.load(std::memory_order_relaxed);
  TranslationStats t = registry_.translation_stats();
  s.bytes_encoded = t.bytes_encoded;
  s.bytes_decoded = t.bytes_decoded;
  s.plan_cache_hits = t.plan_cache_hits;
  s.plan_cache_misses = t.plan_cache_misses;
  s.isomorphic_fast_path_blocks = t.isomorphic_fast_path_blocks;
  return s;
}

SegmentStore::~SegmentStore() {
  // Intrusive structures reference owned_ storage; drop views first.
  blocks_by_serial_.clear();
  markers_.clear();
  version_list_.clear();
}

const VarMap& SegmentStore::var_map(const TypeDescriptor* type) {
  auto it = var_maps_.find(type);
  if (it != var_maps_.end()) return it->second;
  VarMap vm;
  type->visit_runs(0, type->prim_units(), [&](const PrimRun& run) {
    if (run.kind != PrimitiveKind::kPointer &&
        run.kind != PrimitiveKind::kString) {
      return;
    }
    uint32_t offset = run.local_offset;
    for (uint64_t i = 0; i < run.unit_count; ++i, offset += run.local_stride) {
      vm.slot_by_offset.emplace(offset, vm.slot_count++);
    }
  });
  return var_maps_.emplace(type, std::move(vm)).first->second;
}

uint32_t SegmentStore::register_type(std::span<const uint8_t> graph) {
  std::string key(reinterpret_cast<const char*>(graph.data()), graph.size());
  auto it = type_serial_by_key_.find(key);
  if (it != type_serial_by_key_.end()) return it->second;

  BufReader r(graph.data(), graph.size());
  const TypeDescriptor* type = TypeCodec::decode_graph(r, registry_);
  types_.push_back(type);
  type_graphs_.emplace_back(graph.begin(), graph.end());
  uint32_t serial = static_cast<uint32_t>(types_.size());
  type_serial_by_key_.emplace(std::move(key), serial);
  return serial;
}

std::span<const uint8_t> SegmentStore::type_graph(uint32_t serial) const {
  if (serial == 0 || serial > type_graphs_.size()) {
    throw Error(ErrorCode::kNotFound,
                "type serial " + std::to_string(serial));
  }
  return type_graphs_[serial - 1];
}

const SvrBlock* SegmentStore::find_block(uint32_t serial) const {
  return blocks_by_serial_.find(serial);
}

const SvrBlock* SegmentStore::find_block_by_name(const std::string& name) const {
  // Named blocks are rare (roots); a linear scan keeps the server free of a
  // third per-block tree. Clients resolve names once at bootstrap.
  const SvrBlock* found = nullptr;
  for_each_block([&](const SvrBlock& b) {
    if (b.name == name) found = &b;
  });
  return found;
}

uint64_t SegmentStore::block_bytes(const SvrBlock& block) const {
  // Approximate wire size: fixed units exactly, variable units at a nominal
  // 8 bytes per slot. Used only for Diff-coherence percentage tracking,
  // which the paper computes conservatively anyway.
  return block.type->fixed_wire_size() + 8ull * block.vardata.size();
}

SvrBlock* SegmentStore::create_block(uint32_t serial, uint32_t type_serial,
                                     std::string name, uint32_t at_version) {
  if (type_serial == 0 || type_serial > types_.size()) {
    throw Error(ErrorCode::kProtocol, "new block references unknown type");
  }
  SvrBlock* block;
  if (!free_pool_.empty()) {
    block = free_pool_.back();
    free_pool_.pop_back();
  } else {
    owned_blocks_.push_back(std::make_unique<SvrBlock>());
    block = owned_blocks_.back().get();
  }
  block->serial = serial;
  block->name = std::move(name);
  block->type_serial = type_serial;
  block->type = types_[type_serial - 1];
  block->created_version = at_version;
  block->version = at_version;
  block->data.assign(block->type->local_size(), 0);
  const VarMap& vm = var_map(block->type);
  block->vardata.assign(vm.slot_count, std::string());
  block->subblock_versions.assign(
      subblocks_for(block->type->prim_units(), options_.subblock_units),
      at_version);
  if (!blocks_by_serial_.insert(*block)) {
    free_pool_.push_back(block);
    throw Error(ErrorCode::kProtocol, "duplicate block serial");
  }
  version_list_.push_back(*block);
  next_block_serial_ = std::max(next_block_serial_, serial + 1);
  total_data_bytes_ += block_bytes(*block);
  return block;
}

void SegmentStore::destroy_block(SvrBlock* block, uint32_t at_version) {
  total_data_bytes_ -= std::min(total_data_bytes_, block_bytes(*block));
  free_history_.push_back(
      {block->serial, block->created_version, at_version});
  blocks_by_serial_.erase(*block);
  version_list_.erase(*block);
  block->data.clear();
  block->vardata.clear();
  block->subblock_versions.clear();
  free_pool_.push_back(block);
}

uint32_t SegmentStore::apply_diff(std::span<const uint8_t> diff_bytes) {
  Stopwatch timer;
  BufReader in(diff_bytes.data(), diff_bytes.size());
  DiffReader reader(in);
  if (reader.entry_count() == 0) {
    return version_;  // empty critical section: no new version
  }
  if (reader.from_version() != version_) {
    throw Error(ErrorCode::kState,
                "diff base version " + std::to_string(reader.from_version()) +
                    " != current " + std::to_string(version_));
  }
  // A commit diff steps one version; a folded diff (incremental checkpoint
  // recovery) can span many. Land on what the diff header declares.
  const uint32_t new_version =
      std::max(reader.to_version(), version_ + 1);
  const uint32_t old_version = version_;

  owned_markers_.push_back(std::make_unique<Marker>(new_version));
  Marker* marker = owned_markers_.back().get();
  version_list_.push_back(*marker);
  check_internal(markers_.insert(*marker), "duplicate marker version");

  // Last-block prediction: the block most likely named by the next diff
  // entry is the one that followed the previous entry's block on the
  // version list — captured *before* move_to_back rearranges the list.
  SvrBlock* predicted = nullptr;
  DiffEntry entry;
  auto apply_runs = [&](SvrBlock* block) {
    ServerHooks hooks(block, &var_map(block->type));
    const uint64_t units = block->prim_units();
    while (!entry.runs.at_end()) {
      DiffRun run = DiffReader::read_run(entry.runs);
      if (run.unit_count == 0 ||
          run.start_unit + static_cast<uint64_t>(run.unit_count) > units) {
        throw Error(ErrorCode::kProtocol, "diff run out of block bounds");
      }
      decode_units(*block->type, registry_.rules(), block->data.data(),
                   run.start_unit, run.start_unit + run.unit_count, hooks,
                   entry.runs);
      uint32_t first_sb = run.start_unit / options_.subblock_units;
      uint32_t last_sb =
          (run.start_unit + run.unit_count - 1) / options_.subblock_units;
      for (uint32_t sb = first_sb; sb <= last_sb; ++sb) {
        block->subblock_versions[sb] = new_version;
      }
    }
  };

  while (reader.next(&entry)) {
    if (entry.flags & diff_flags::kFree) {
      SvrBlock* block = blocks_by_serial_.find(entry.serial);
      if (block == nullptr) {
        throw Error(ErrorCode::kProtocol, "free of unknown block");
      }
      if (predicted == block) predicted = nullptr;
      destroy_block(block, new_version);
      continue;
    }
    if (entry.flags & diff_flags::kNew) {
      if (blocks_by_serial_.find(entry.serial) != nullptr) {
        throw Error(ErrorCode::kProtocol, "new block serial already exists");
      }
      SvrBlock* block = create_block(entry.serial, entry.type_serial,
                                     std::move(entry.name), new_version);
      apply_runs(block);
      predicted = nullptr;  // new blocks sit at the tail already
      continue;
    }
    // Modified block: try the prediction before the serial tree (§3.3).
    SvrBlock* block = nullptr;
    if (options_.enable_last_block_prediction && predicted != nullptr &&
        predicted->serial == entry.serial) {
      block = predicted;
      stats_.prediction_hits.fetch_add(1, std::memory_order_relaxed);
    }
    if (block == nullptr) {
      stats_.prediction_misses.fetch_add(1, std::memory_order_relaxed);
      block = blocks_by_serial_.find(entry.serial);
    }
    if (block == nullptr) {
      throw Error(ErrorCode::kProtocol, "update of unknown block");
    }
    // Capture the follower before move_to_back rearranges the list.
    VersionNode* node = version_list_.next(*block);
    while (node != nullptr && node->is_marker) {
      node = version_list_.next(*node);
    }
    predicted = static_cast<SvrBlock*>(node);
    total_data_bytes_ -= std::min(total_data_bytes_, block_bytes(*block));
    apply_runs(block);
    total_data_bytes_ += block_bytes(*block);
    version_list_.move_to_back(*block);
    block->version = new_version;
  }

  version_ = new_version;
  stats_.diffs_applied.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_applied.fetch_add(diff_bytes.size(), std::memory_order_relaxed);
  stats_.apply_ns.fetch_add(timer.elapsed_ns(), std::memory_order_relaxed);

  if (options_.enable_diff_cache) {
    cache_insert(old_version, new_version,
                 std::make_shared<const std::vector<uint8_t>>(
                     diff_bytes.begin(), diff_bytes.end()));
  }
  return version_;
}

void SegmentStore::append_block_update(DiffWriter& writer, SvrBlock& block,
                                       uint32_t from_version) {
  ServerHooks hooks(&block, &var_map(block.type));
  const uint64_t units = block.prim_units();
  if (block.created_version > from_version) {
    writer.begin_block(block.serial, diff_flags::kNew | diff_flags::kWhole,
                       block.type_serial, block.name);
    writer.begin_run(0, static_cast<uint32_t>(units));
    encode_units(*block.type, registry_.rules(), block.data.data(), 0, units,
                 hooks, writer.buffer());
    writer.end_block();
    return;
  }
  // Send full content of every subblock newer than from_version, merging
  // adjacent stale runs (the client just sees runs of modified data).
  writer.begin_block(block.serial, 0);
  const uint32_t su = options_.subblock_units;
  const uint32_t n_sb = block.subblock_count();
  uint32_t sb = 0;
  while (sb < n_sb) {
    if (block.subblock_versions[sb] <= from_version) {
      ++sb;
      continue;
    }
    uint32_t first = sb;
    while (sb < n_sb && block.subblock_versions[sb] > from_version) ++sb;
    uint64_t unit_begin = static_cast<uint64_t>(first) * su;
    uint64_t unit_end = std::min(units, static_cast<uint64_t>(sb) * su);
    writer.begin_run(static_cast<uint32_t>(unit_begin),
                     static_cast<uint32_t>(unit_end - unit_begin));
    encode_units(*block.type, registry_.rules(), block.data.data(), unit_begin,
                 unit_end, hooks, writer.buffer());
  }
  writer.end_block();
}

std::shared_ptr<const std::vector<uint8_t>> SegmentStore::collect_diff(
    uint32_t from_version) {
  if (options_.enable_diff_cache) {
    for (const CachedDiff& c : diff_cache_) {
      if (c.from_version == from_version && c.to_version == version_) {
        stats_.diff_cache_hits.fetch_add(1, std::memory_order_relaxed);
        return c.bytes;
      }
    }
    stats_.diff_cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  Stopwatch timer;
  Buffer out;
  DiffWriter writer(out, from_version, version_);
  for (const FreeRecord& fr : free_history_) {
    if (fr.freed_version > from_version &&
        fr.created_version <= from_version) {
      writer.add_free(fr.serial);
    }
  }
  // First marker newer than from_version; every block after it changed.
  Marker* marker = markers_.lower_bound(from_version + 1);
  VersionNode* node = (marker != nullptr)
                          ? version_list_.next(*marker)
                          : nullptr;
  if (marker == nullptr && version_ > from_version) {
    // No marker (e.g. store recovered from checkpoint): scan everything.
    node = version_list_.front();
  }
  for (; node != nullptr; node = version_list_.next(*node)) {
    if (node->is_marker) continue;
    auto* block = static_cast<SvrBlock*>(node);
    if (block->version <= from_version) continue;
    append_block_update(writer, *block, from_version);
  }
  writer.finish();

  auto bytes = std::make_shared<const std::vector<uint8_t>>(out.take());
  stats_.diffs_collected.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_collected.fetch_add(bytes->size(), std::memory_order_relaxed);
  stats_.collect_ns.fetch_add(timer.elapsed_ns(), std::memory_order_relaxed);
  if (options_.enable_diff_cache) {
    cache_insert(from_version, version_, bytes);
  }
  return bytes;
}

void SegmentStore::collect_fold_history(uint32_t from_version,
                                        Buffer& out) const {
  uint32_t n_created = 0;
  for (const SvrBlock* b = blocks_by_serial_.first(); b != nullptr;
       b = blocks_by_serial_.next(*b)) {
    if (b->created_version > from_version) ++n_created;
  }
  out.append_u32(n_created);
  for (const SvrBlock* b = blocks_by_serial_.first(); b != nullptr;
       b = blocks_by_serial_.next(*b)) {
    if (b->created_version <= from_version) continue;
    out.append_u32(b->serial);
    out.append_u32(b->created_version);
  }
  uint32_t n_freed = 0;
  for (const FreeRecord& fr : free_history_) {
    if (fr.freed_version > from_version) ++n_freed;
  }
  out.append_u32(n_freed);
  for (const FreeRecord& fr : free_history_) {
    if (fr.freed_version <= from_version) continue;
    out.append_u32(fr.serial);
    out.append_u32(fr.created_version);
    out.append_u32(fr.freed_version);
  }
}

uint32_t SegmentStore::apply_fold(uint32_t to_version, BufReader& in) {
  uint32_t n_created = in.read_u32();
  std::vector<std::pair<uint32_t, uint32_t>> created;
  created.reserve(n_created);
  for (uint32_t i = 0; i < n_created; ++i) {
    uint32_t serial = in.read_u32();
    uint32_t cv = in.read_u32();
    created.emplace_back(serial, cv);
  }
  uint32_t n_freed = in.read_u32();
  std::vector<FreeRecord> freed;
  freed.reserve(n_freed);
  for (uint32_t i = 0; i < n_freed; ++i) {
    FreeRecord fr;
    fr.serial = in.read_u32();
    fr.created_version = in.read_u32();
    fr.freed_version = in.read_u32();
    freed.push_back(fr);
  }
  const size_t history_mark = free_history_.size();
  auto diff = in.read_bytes(in.remaining());
  uint32_t got = apply_diff(diff);
  if (got < to_version) {
    // Every change in the window was a create+free pair the diff omits;
    // the version still advances so later chain records line up.
    version_ = to_version;
    got = to_version;
  }
  // destroy_block() during the fold dated frees at the fold's landing
  // version; swap in the exact records (which also cover blocks created
  // and freed inside the window — absent from the diff entirely).
  free_history_.resize(history_mark);
  for (const FreeRecord& fr : freed) {
    free_history_.push_back(fr);
    next_block_serial_ = std::max(next_block_serial_, fr.serial + 1);
  }
  for (const auto& [serial, cv] : created) {
    SvrBlock* b = blocks_by_serial_.find(serial);
    if (b != nullptr) b->created_version = cv;
  }
  return got;
}

void SegmentStore::cache_insert(
    uint32_t from_version, uint32_t to_version,
    std::shared_ptr<const std::vector<uint8_t>> bytes) {
  diff_cache_.push_back({from_version, to_version, std::move(bytes)});
  while (diff_cache_.size() > options_.diff_cache_entries) {
    diff_cache_.pop_front();
  }
}

// ------------------------------------------------------------- checkpoint

void SegmentStore::serialize(Buffer& out) const {
  out.append_u32(version_);
  out.append_u32(next_block_serial_);
  out.append_u32(static_cast<uint32_t>(type_graphs_.size()));
  for (const auto& graph : type_graphs_) {
    out.append_u32(static_cast<uint32_t>(graph.size()));
    out.append(graph.data(), graph.size());
  }
  out.append_u32(static_cast<uint32_t>(free_history_.size()));
  for (const FreeRecord& fr : free_history_) {
    out.append_u32(fr.serial);
    out.append_u32(fr.created_version);
    out.append_u32(fr.freed_version);
  }
  // Preserve blk_version_list order (markers included) so collect_diff
  // behaves identically after recovery.
  out.append_u32(static_cast<uint32_t>(version_list_.size()));
  for (VersionNode* node = version_list_.front(); node != nullptr;
       node = version_list_.next(*node)) {
    out.append_u8(node->is_marker ? 1 : 0);
    if (node->is_marker) {
      out.append_u32(static_cast<Marker*>(node)->version);
      continue;
    }
    auto* b = static_cast<SvrBlock*>(node);
    out.append_u32(b->serial);
    out.append_lp_string(b->name);
    out.append_u32(b->type_serial);
    out.append_u32(b->created_version);
    out.append_u32(b->version);
    out.append_u32(static_cast<uint32_t>(b->data.size()));
    out.append(b->data.data(), b->data.size());
    out.append_u32(static_cast<uint32_t>(b->vardata.size()));
    for (const std::string& v : b->vardata) out.append_lp_string(v);
    out.append_u32(static_cast<uint32_t>(b->subblock_versions.size()));
    for (uint32_t sv : b->subblock_versions) out.append_u32(sv);
  }
}

std::unique_ptr<SegmentStore> SegmentStore::deserialize(std::string name,
                                                        Options options,
                                                        BufReader& in) {
  auto store = std::make_unique<SegmentStore>(std::move(name), options);
  store->version_ = in.read_u32();
  store->next_block_serial_ = in.read_u32();
  uint32_t n_types = in.read_u32();
  for (uint32_t i = 0; i < n_types; ++i) {
    uint32_t len = in.read_u32();
    auto bytes = in.read_bytes(len);
    store->register_type(bytes);
  }
  uint32_t n_free = in.read_u32();
  for (uint32_t i = 0; i < n_free; ++i) {
    FreeRecord fr;
    fr.serial = in.read_u32();
    fr.created_version = in.read_u32();
    fr.freed_version = in.read_u32();
    store->free_history_.push_back(fr);
  }
  uint32_t n_nodes = in.read_u32();
  for (uint32_t i = 0; i < n_nodes; ++i) {
    if (in.read_u8() != 0) {
      uint32_t v = in.read_u32();
      store->owned_markers_.push_back(std::make_unique<Marker>(v));
      Marker* m = store->owned_markers_.back().get();
      store->version_list_.push_back(*m);
      if (!store->markers_.insert(*m)) {
        throw Error(ErrorCode::kProtocol, "checkpoint: duplicate marker");
      }
      continue;
    }
    uint32_t serial = in.read_u32();
    std::string bname = in.read_lp_string();
    uint32_t type_serial = in.read_u32();
    uint32_t created = in.read_u32();
    uint32_t version = in.read_u32();
    SvrBlock* b =
        store->create_block(serial, type_serial, std::move(bname), created);
    b->version = version;
    uint32_t data_len = in.read_u32();
    auto data = in.read_bytes(data_len);
    if (data_len != b->data.size()) {
      throw Error(ErrorCode::kProtocol, "checkpoint: block size mismatch");
    }
    std::copy(data.begin(), data.end(), b->data.begin());
    uint32_t n_var = in.read_u32();
    if (n_var != b->vardata.size()) {
      throw Error(ErrorCode::kProtocol, "checkpoint: vardata size mismatch");
    }
    for (uint32_t v = 0; v < n_var; ++v) b->vardata[v] = in.read_lp_string();
    uint32_t n_sb = in.read_u32();
    if (n_sb != b->subblock_versions.size()) {
      throw Error(ErrorCode::kProtocol, "checkpoint: subblock count mismatch");
    }
    for (uint32_t s = 0; s < n_sb; ++s) b->subblock_versions[s] = in.read_u32();
  }
  return store;
}

}  // namespace iw::server
