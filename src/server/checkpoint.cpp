#include "server/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/fsync.hpp"
#include "wire/payload.hpp"

namespace iw::server {

namespace {

constexpr uint32_t kChainMagic = 0x49574943;  // "IWIC"
constexpr uint32_t kChainFormat = 1;
constexpr size_t kChainHeaderBytes = 8;

void write_all(int fd, const std::string& path, const uint8_t* p, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write(" + path + ")");
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
}

}  // namespace

ChainScan scan_chain(const std::string& path) {
  ChainScan out;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      out.missing = true;
      return out;
    }
    throw_errno("open(" + path + ")");
  }
  std::vector<uint8_t> bytes;
  {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("fstat(" + path + ")");
    }
    bytes.resize(static_cast<size_t>(st.st_size));
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::read(fd, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("read(" + path + ")");
      }
      if (n == 0) break;
      off += static_cast<size_t>(n);
    }
    bytes.resize(off);
    ::close(fd);
  }

  if (bytes.size() < kChainHeaderBytes ||
      load_be32(bytes.data()) != kChainMagic ||
      load_be32(bytes.data() + 4) != kChainFormat) {
    out.torn = !bytes.empty();
    out.valid_bytes = 0;
    return out;
  }

  RecordScanner scanner(
      {bytes.data() + kChainHeaderBytes, bytes.size() - kChainHeaderBytes},
      kChainHeaderBytes);
  uint64_t accepted_end = kChainHeaderBytes;
  ScannedRecord sr;
  while (scanner.next(&sr) == RecordScanner::Status::kRecord) {
    if ((sr.tag & ~kPayloadCompressedTagBit) != kChainDelta) break;
    ChainRecord rec;
    rec.compressed = (sr.tag & kPayloadCompressedTagBit) != 0;
    std::vector<uint8_t> raw;
    std::span<const uint8_t> payload = sr.payload;
    if (rec.compressed) {
      try {
        raw = decompress_record_payload(sr.payload);
      } catch (const Error&) {
        break;  // corrupt envelope inside a CRC-clean frame: stop here
      }
      payload = raw;
    }
    if (payload.size() < 12) break;
    rec.base_version = load_be32(payload.data());
    rec.from_version = load_be32(payload.data() + 4);
    rec.to_version = load_be32(payload.data() + 8);
    rec.sections.assign(payload.begin() + 12, payload.end());
    rec.stored_bytes = sr.end_offset - accepted_end;
    accepted_end = sr.end_offset;
    out.records.push_back(std::move(rec));
  }
  out.valid_bytes = accepted_end;
  out.torn = accepted_end < bytes.size();
  return out;
}

uint64_t append_chain_record(const std::string& path, uint32_t base_version,
                             uint32_t from_version, uint32_t to_version,
                             std::span<const uint8_t> sections,
                             bool try_compress) {
  uint8_t versions[12];
  store_be32(versions, base_version);
  store_be32(versions + 4, from_version);
  store_be32(versions + 8, to_version);

  Buffer framed;
  Buffer envelope;
  if (try_compress &&
      compress_record_payload({versions, sizeof versions}, sections,
                              envelope)) {
    append_framed_record(framed, kChainDelta | kPayloadCompressedTagBit,
                         envelope.span());
  } else {
    append_framed_record(framed, kChainDelta, {versions, sizeof versions},
                         sections);
  }

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) throw_errno("open(" + path + ")");
  try {
    struct stat st;
    if (::fstat(fd, &st) != 0) throw_errno("fstat(" + path + ")");
    const bool created = st.st_size == 0;
    if (created) {
      uint8_t header[kChainHeaderBytes];
      store_be32(header, kChainMagic);
      store_be32(header + 4, kChainFormat);
      write_all(fd, path, header, sizeof header);
    }
    write_all(fd, path, framed.data(), framed.size());
    // The record must be on disk before the WAL it supersedes is truncated,
    // whatever the journal's sync policy; once per checkpoint is cheap next
    // to the full-snapshot rewrite it replaces.
    fdatasync_fd(fd, path);
    ::close(fd);
    if (created) fsync_parent_dir(path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return framed.size();
}

}  // namespace iw::server
