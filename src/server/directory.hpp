// SegmentDirectory: maps segment URLs to a primary + N replica servers and
// drives crash-tolerant failover.
//
// Placement is consistent hashing over a ring of virtual nodes (so adding
// a server moves only its share of segments), with explicit per-segment
// overrides for deployments that pin hot segments. A placement, once
// resolved, is cached with a monotonically increasing *placement epoch*;
// the epoch travels inside every replicated WAL record and is how a
// deposed primary is fenced (see replication.hpp).
//
// Failover: when a client's reconnect supervisor cannot reach its primary,
// its connector re-resolves with `failover` set. The directory then probes
// the recorded primary (kPing over a short-timeout dial); if the probe
// fails it asks every reachable replica for its segment version
// (kOpenSegment), promotes the most-caught-up one with kPromote carrying
// epoch+1, and republishes the placement. Promotion runs under the
// directory mutex, so two clients that observe the same dead primary
// serialize: the first promotes, the second finds the epoch already past
// its observation and simply adopts the new placement — the
// double-promotion race resolves to exactly one epoch bump.
//
// The zero-acked-loss argument: the primary acked a commit only after
// `replication_factor` replicas journaled it, and promotion picks the
// replica with the highest version, so every acknowledged commit is in the
// promoted server's store and journal.
//
// DirectoryCore exposes resolution over the wire (kDirResolve) so clients
// in other processes can use the same connector; make_failover_connector
// builds the ReconnectingChannel-compatible connector either against an
// in-process directory or through a directory channel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace iw::server {

class SegmentDirectory {
 public:
  /// Opens a channel to the server at `address` (an opaque string the
  /// deployment understands — a port, host:port, or a test token). Must
  /// throw promptly when the server is unreachable; the dial timeout
  /// bounds the failover probe, so keep it well under the writer lease.
  using Dialer =
      std::function<std::shared_ptr<ClientChannel>(const std::string&)>;

  struct Options {
    /// Replicas per segment beyond the primary (clamped to nodes - 1).
    uint32_t replicas = 1;
    /// Ring positions per node; more = smoother balance, slower rebuild.
    uint32_t virtual_nodes = 16;
  };

  /// One segment's server set: node ids, primary first, under one epoch.
  struct Placement {
    uint32_t epoch = 0;
    std::vector<std::string> nodes;
  };

  struct Stats {
    uint64_t resolves = 0;           ///< placement lookups served
    uint64_t failover_resolves = 0;  ///< lookups that probed the primary
    uint64_t probes_failed = 0;      ///< primaries found dead
    uint64_t promotions = 0;         ///< replicas promoted to primary
    uint64_t promote_ms_last = 0;    ///< duration of the latest promotion
    uint64_t promote_ms_max = 0;     ///< slowest promotion observed
  };

  SegmentDirectory(Options options, Dialer dial);

  /// Adds a server to the ring. Existing cached placements are untouched
  /// (segments do not migrate on membership change — only new resolutions
  /// see the new ring).
  void add_node(const std::string& id, const std::string& address);

  /// Registers a node, or updates a registered node's address in place — a
  /// restarted server rejoins the ring under its old id (typically at a
  /// new address) without reshuffling any placement.
  void set_node_address(const std::string& id, const std::string& address);

  /// Pins `segment` to an explicit server list (primary first), epoch 1.
  /// Overrides both the ring and any cached placement.
  void set_placement(const std::string& segment,
                     std::vector<std::string> node_ids);

  /// Current placement: the cached one, or a fresh ring walk (epoch 1).
  /// Throws kState when no nodes are registered.
  Placement resolve(const std::string& segment);

  /// Failover resolution: returns the current placement if its epoch
  /// already exceeds `observed_epoch` (another caller promoted first) or
  /// if the primary still answers a ping; otherwise promotes the
  /// most-caught-up reachable replica under epoch+1. Throws kIo when the
  /// primary is dead and no replica is reachable.
  Placement resolve_for_failover(const std::string& segment,
                                 uint32_t observed_epoch);

  /// Address registered for a node id (throws kNotFound).
  std::string address_of(const std::string& node_id) const;

  // --- repair-loop surface ---
  /// Segments with a cached placement: the repair loop's work list.
  std::vector<std::string> placed_segments() const;
  /// Cached placement of `segment` without resolving a fresh one (throws
  /// kNotFound when the segment was never resolved).
  Placement placement_of(const std::string& segment) const;
  /// Replaces `dead` with `substitute` in a segment's cached placement,
  /// preserving order. The epoch is NOT bumped: replica-tail membership
  /// changes, ownership does not, so clients' observed epochs stay valid.
  /// Throws kNotFound when the placement, `dead`, or `substitute` is
  /// unknown; kInvalidArgument when `substitute` is already placed.
  void substitute_replica(const std::string& segment, const std::string& dead,
                          const std::string& substitute);
  /// Registered node ids, in no particular order.
  std::vector<std::string> node_ids() const;
  /// Replicas-per-segment target from the options.
  uint32_t replica_target() const { return options_.replicas; }
  /// The directory's own dialer, shared with the repair loop.
  Dialer dialer() const { return dial_; }

  Stats stats() const;

 private:
  Placement compute_locked(const std::string& segment) const;
  std::string address_of_locked(const std::string& node_id) const;

  Options options_;
  Dialer dial_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> nodes_;  // id -> address
  /// Ring position -> node id. std::map gives the clockwise walk.
  std::map<uint64_t, std::string> ring_;
  std::unordered_map<std::string, Placement> placements_;

  std::atomic<uint64_t> resolves_{0};
  std::atomic<uint64_t> failover_resolves_{0};
  std::atomic<uint64_t> probes_failed_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> promote_ms_last_{0};
  std::atomic<uint64_t> promote_ms_max_{0};
};

/// Anti-entropy repair loop: periodically walks every placed segment and
/// restores its replication factor.
///
/// Each tick, per segment: (1) ping the primary, promoting the
/// most-caught-up replica via resolve_for_failover when it is dead — so
/// repair does not wait for a client to trip over the corpse; (2) send
/// kRecruit to every replica in the placement, which makes the replica
/// pull a backfill from the primary and re-establish its live WAL link
/// (idempotent: a caught-up replica's recruit degenerates to an empty
/// WAL-tail sync); (3) when a replica is unreachable, recruit a ring node
/// outside the placement in its stead and substitute it into the replica
/// tail. A kRecruit refused with kStaleEpoch means the repairer's view
/// raced a newer failover; the next tick re-reads the placement and
/// resolves toward the newer lineage.
///
/// tick() may be driven manually (tests) or by start()'s background
/// thread. Recruit RPCs block for the duration of the backfill, so a tick
/// is as slow as the largest transfer it triggers — acceptable for a
/// repair cadence, and it naturally rate-limits concurrent backfills.
class ReplicationRepairer {
 public:
  struct Options {
    /// Background cadence between ticks.
    uint32_t interval_ms = 250;
  };

  struct Stats {
    uint64_t ticks = 0;
    uint64_t failovers = 0;           ///< dead primaries promoted away
    uint64_t recruits_attempted = 0;  ///< kRecruit RPCs sent
    uint64_t recruits_failed = 0;     ///< kRecruit RPCs that threw
    uint64_t recruits_rejected_stale = 0;  ///< refused: raced newer epoch
    uint64_t substitutions = 0;       ///< replicas replaced from the ring
    /// Gauge: segments below their replication factor after the last tick.
    uint64_t under_replicated_segments = 0;
  };

  explicit ReplicationRepairer(SegmentDirectory& directory);
  ReplicationRepairer(SegmentDirectory& directory, Options options);
  ~ReplicationRepairer();

  ReplicationRepairer(const ReplicationRepairer&) = delete;
  ReplicationRepairer& operator=(const ReplicationRepairer&) = delete;

  /// One repair pass over every placed segment. Returns the number of
  /// segments still below their replication factor afterwards.
  uint64_t tick();

  /// Starts/stops the background loop (idempotent; destructor stops).
  void start();
  void stop();

  Stats stats() const;

 private:
  /// Sends one kRecruit; true on success. `transport_dead` (optional) is
  /// set when the node could not even be reached — the signal to
  /// substitute it, as opposed to an application-level refusal.
  bool recruit(const std::string& segment, uint32_t epoch,
               const std::string& node, const std::string& primary_address,
               bool* transport_dead);

  SegmentDirectory& directory_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread worker_;

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> recruits_attempted_{0};
  std::atomic<uint64_t> recruits_failed_{0};
  std::atomic<uint64_t> recruits_rejected_stale_{0};
  std::atomic<uint64_t> substitutions_{0};
  std::atomic<uint64_t> under_replicated_{0};
};

/// ServerCore fronting a SegmentDirectory, so clients in other processes
/// resolve placements over the wire (kDirResolve / kDirResolveResp, with
/// node addresses included so the caller can dial without a membership
/// view of its own).
class DirectoryCore final : public ServerCore {
 public:
  explicit DirectoryCore(SegmentDirectory& directory)
      : directory_(directory) {}

  void on_connect(SessionId, Notifier) override {}
  void on_disconnect(SessionId) override {}
  Frame handle(SessionId session, const Frame& request) override;

 private:
  SegmentDirectory& directory_;
};

/// Connector for a ReconnectingChannel that re-resolves `segment` through
/// an in-process directory on every (re)connect: the first call resolves
/// plainly; each later call — which only happens after the previous
/// connection died — resolves with failover, so a dead primary is probed
/// and a replica promoted before the client re-dials.
std::function<std::shared_ptr<ClientChannel>()> make_failover_connector(
    SegmentDirectory& directory, std::string segment,
    SegmentDirectory::Dialer dial);

/// Same contract, but resolution travels over a directory channel
/// (kDirResolve) built fresh per attempt by `dial_directory`, and the
/// primary is dialed by address from the response.
std::function<std::shared_ptr<ClientChannel>()> make_failover_connector(
    std::function<std::shared_ptr<ClientChannel>()> dial_directory,
    std::string segment, SegmentDirectory::Dialer dial);

}  // namespace iw::server
