// Server-side segment storage — the paper's §3.2 data structures.
//
// The server keeps every segment's master copy *in wire format* (packed
// canonical layout): numeric units as canonical big-endian bytes, strings
// and MIPs out-of-line in per-block slot tables (they are variable-length,
// and keeping them separate avoids data relocation — and is exactly why
// server-side pointer/small-string handling is the costly case in §4.1).
//
// Change tracking is subblock-granular: every block carries one version
// number per 16 primitive data units. A client at version c receives, for
// each block newer than c, the full content of the subblocks newer than c.
//
// Blocks live in a serial-number AVL tree and on a version-ordered
// intrusive list (blk_version_list) segmented by Markers; markers also form
// a version AVL tree so "first change after version c" is O(log n).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/registry.hpp"
#include "util/avl_tree.hpp"
#include "util/intrusive_list.hpp"
#include "wire/diff.hpp"

namespace iw::server {

/// Primitive data units per subblock (paper's value; gives the flat region
/// for change ratios 1–16 in Fig. 5).
inline constexpr uint32_t kSubblockUnits = 16;

/// Node in a segment's blk_version_list: either a block or a marker.
struct VersionNode {
  explicit VersionNode(bool marker) : is_marker(marker) {}
  bool is_marker;
  ListHook version_hook;
};

/// Version boundary in the blk_version_list: every block *after* a marker
/// with version v was (partially) modified at or after version v.
struct Marker : VersionNode {
  explicit Marker(uint32_t v) : VersionNode(true), version(v) {}
  uint32_t version;
  AvlHook tree_hook;
};

/// One block of a segment, stored in wire format.
struct SvrBlock : VersionNode {
  SvrBlock() : VersionNode(false) {}

  uint32_t serial = 0;
  std::string name;                      // optional symbolic name
  uint32_t type_serial = 0;              // segment-scoped type id
  const TypeDescriptor* type = nullptr;  // packed-canonical instantiation
  uint32_t created_version = 0;
  uint32_t version = 0;                  // last-modified segment version

  std::vector<uint8_t> data;             // fixed units, packed canonical
  std::vector<std::string> vardata;      // out-of-line strings and MIPs
  std::vector<uint32_t> subblock_versions;

  AvlHook serial_hook;

  uint64_t prim_units() const noexcept { return type->prim_units(); }
  uint32_t subblock_count() const noexcept {
    return static_cast<uint32_t>(subblock_versions.size());
  }
};

/// Maps packed-canonical field offsets of variable units (strings/pointers)
/// to slot indices in SvrBlock::vardata. One per type, cached.
struct VarMap {
  std::unordered_map<uint32_t, uint32_t> slot_by_offset;
  uint32_t slot_count = 0;
};

/// A block freed at some version; stale clients must be told.
struct FreeRecord {
  uint32_t serial;
  uint32_t created_version;
  uint32_t freed_version;
};

/// Cached wire diff between two segment versions (paper §3.3 diff caching).
struct CachedDiff {
  uint32_t from_version;
  uint32_t to_version;
  std::shared_ptr<const std::vector<uint8_t>> bytes;
};

/// Statistics snapshot a SegmentStore accumulates (consumed by
/// tests/benches). Maintained internally as relaxed atomics so concurrent
/// readers (stats scrapers, benches) never make the mutation hot path take
/// a lock.
struct StoreStats {
  uint64_t diffs_applied = 0;
  uint64_t diffs_collected = 0;
  uint64_t diff_cache_hits = 0;
  uint64_t diff_cache_misses = 0;
  uint64_t prediction_hits = 0;
  uint64_t prediction_misses = 0;
  uint64_t bytes_applied = 0;
  uint64_t bytes_collected = 0;
  uint64_t apply_ns = 0;    ///< time spent in apply_diff
  uint64_t collect_ns = 0;  ///< time spent building diffs (cache hits free)

  // Plan-compiled translation counters, merged from the store's
  // packed-canonical type registry (see types/translation_plan.hpp).
  uint64_t bytes_encoded = 0;
  uint64_t bytes_decoded = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t isomorphic_fast_path_blocks = 0;
};

/// One segment's master copy plus all its metadata.
class SegmentStore {
 public:
  struct Options {
    bool enable_diff_cache = true;
    size_t diff_cache_entries = 16;
    bool enable_last_block_prediction = true;
    uint32_t subblock_units = kSubblockUnits;
  };

  SegmentStore(std::string name, Options options);
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  const std::string& name() const noexcept { return name_; }
  uint32_t version() const noexcept { return version_; }
  uint32_t next_block_serial() const noexcept { return next_block_serial_; }
  uint64_t block_count() const noexcept { return blocks_by_serial_.size(); }
  /// Approximate current wire size of the segment's data (for Diff
  /// coherence percentage tracking).
  uint64_t total_data_bytes() const noexcept { return total_data_bytes_; }
  /// Snapshot of the relaxed-atomic counters; safe without the owner's lock.
  StoreStats stats() const noexcept;

  /// Registers a type graph (encoded by TypeCodec) and returns its
  /// segment-scoped serial; identical graphs dedup to one serial.
  uint32_t register_type(std::span<const uint8_t> graph);

  uint32_t type_count() const noexcept {
    return static_cast<uint32_t>(types_.size());
  }
  /// Encoded graph for a type serial (1-based), for forwarding to clients.
  std::span<const uint8_t> type_graph(uint32_t serial) const;

  /// Applies a client diff, advancing the segment one version. Returns the
  /// new version. Throws Error(kProtocol) on malformed input and
  /// Error(kState) when the diff's base version is not current.
  uint32_t apply_diff(std::span<const uint8_t> diff_bytes);

  /// Builds (or reuses from cache) a diff bringing a client at
  /// `from_version` to the current version. Returns the bytes.
  std::shared_ptr<const std::vector<uint8_t>> collect_diff(
      uint32_t from_version);

  /// Writes the history tables an incremental checkpoint needs to make a
  /// fold version-exact: the original created_version of every live block
  /// newer than `from_version`, and every free since `from_version` —
  /// including blocks created *and* freed inside the window, which the
  /// diff omits entirely. Without these a recovered server would misdate
  /// creations at the fold's landing version and suppress frees for
  /// clients whose cached version lies inside the folded window.
  void collect_fold_history(uint32_t from_version, Buffer& out) const;

  /// Applies one incremental-checkpoint record body: the tables written by
  /// collect_fold_history followed by a collect_diff(from_version) payload.
  /// Restores exact per-block creation dates and free history, then lands
  /// on `to_version` even when the window's only changes were create+free
  /// pairs (empty diff). Returns the new version.
  uint32_t apply_fold(uint32_t to_version, BufReader& in);

  /// Looks up a block; nullptr when absent.
  const SvrBlock* find_block(uint32_t serial) const;
  const SvrBlock* find_block_by_name(const std::string& name) const;

  /// Iterates blocks in serial order (directory for space reservation).
  template <typename F>
  void for_each_block(F&& fn) const {
    for (const SvrBlock* b = blocks_by_serial_.first(); b != nullptr;
         b = blocks_by_serial_.next(*b)) {
      fn(*b);
    }
  }

  // --- checkpoint support (server/checkpoint.cpp) ---
  /// Serializes the full store state (not a diff) into `out`.
  void serialize(Buffer& out) const;
  /// Reconstructs a store from serialize() output.
  static std::unique_ptr<SegmentStore> deserialize(std::string name,
                                                   Options options,
                                                   BufReader& in);

 private:
  friend class ServerHooks;

  struct SerialOf {
    uint32_t operator()(const SvrBlock& b) const { return b.serial; }
  };
  struct MarkerVersionOf {
    uint32_t operator()(const Marker& m) const { return m.version; }
  };

  const VarMap& var_map(const TypeDescriptor* type);
  SvrBlock* create_block(uint32_t serial, uint32_t type_serial,
                         std::string name, uint32_t at_version);
  void destroy_block(SvrBlock* block, uint32_t at_version);
  uint64_t block_bytes(const SvrBlock& block) const;
  void append_block_update(DiffWriter& writer, SvrBlock& block,
                           uint32_t from_version);
  void cache_insert(uint32_t from_version, uint32_t to_version,
                    std::shared_ptr<const std::vector<uint8_t>> bytes);

  std::string name_;
  Options options_;
  uint32_t version_ = 1;
  uint32_t next_block_serial_ = 1;
  uint64_t total_data_bytes_ = 0;

  TypeRegistry registry_{LayoutRules::packed_canonical()};
  std::vector<const TypeDescriptor*> types_;          // serial-1 -> type
  std::vector<std::vector<uint8_t>> type_graphs_;     // serial-1 -> encoding
  std::map<std::string, uint32_t> type_serial_by_key_;
  std::unordered_map<const TypeDescriptor*, VarMap> var_maps_;

  AvlTree<SvrBlock, &SvrBlock::serial_hook, SerialOf> blocks_by_serial_;
  IntrusiveList<VersionNode, &VersionNode::version_hook> version_list_;
  AvlTree<Marker, &Marker::tree_hook, MarkerVersionOf> markers_;
  std::deque<std::unique_ptr<Marker>> owned_markers_;
  std::deque<std::unique_ptr<SvrBlock>> owned_blocks_;
  std::vector<SvrBlock*> free_pool_;  // reusable destroyed blocks

  std::vector<FreeRecord> free_history_;
  std::deque<CachedDiff> diff_cache_;

  struct AtomicStoreStats {
    std::atomic<uint64_t> diffs_applied{0};
    std::atomic<uint64_t> diffs_collected{0};
    std::atomic<uint64_t> diff_cache_hits{0};
    std::atomic<uint64_t> diff_cache_misses{0};
    std::atomic<uint64_t> prediction_hits{0};
    std::atomic<uint64_t> prediction_misses{0};
    std::atomic<uint64_t> bytes_applied{0};
    std::atomic<uint64_t> bytes_collected{0};
    std::atomic<uint64_t> apply_ns{0};
    std::atomic<uint64_t> collect_ns{0};
  };
  AtomicStoreStats stats_;
};

}  // namespace iw::server
