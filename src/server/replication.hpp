// WalReplicator: chain-streams a primary's write-ahead records to replica
// servers and gates commit acknowledgement on a replication factor.
//
// The primary appends every journaled record (type registrations, commits)
// to an in-memory replication log; one worker thread per replica link
// drains that log into kWalAppend frames. Batching is implicit group
// commit: while one RPC is in flight, every record enqueued behind it rides
// the next frame, so a burst of commits across segments costs one round
// trip per link, mirroring the client-side send coalescing.
//
// replicate() blocks until `replication_factor` links have journaled the
// record (a replica acks only after applying it to its store *and*
// appending it to its own WAL), which is what lets the server ack a client
// commit with the zero-acked-loss guarantee: an acked commit exists in at
// least that many journals, so promoting the most-caught-up replica after
// a primary crash loses nothing that was acknowledged. A timeout fails the
// *acknowledgement*, never the delivery — the record stays queued and the
// links keep re-sending it in order, so a slow replica degrades commit
// latency, not replica consistency.
//
// Epoch fencing: every record carries the segment's placement epoch. A
// replica that has been promoted (or has seen a newer primary) reports
// older-epoch records as stale in its kWalAck instead of applying them;
// the replicator then fences that segment and every later replicate() for
// it throws kStaleEpoch. Because acks gate commit acknowledgement, a
// deposed primary can never again ack a commit — the ack gate doubles as
// the fence.
//
// Links reconnect with backoff and re-send from their last acked record;
// replicas apply idempotently (a commit at or below the store version is
// skipped), so duplicated batches after a reconnect are harmless.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/transport.hpp"
#include "server/wal.hpp"

namespace iw::server {

class WalReplicator {
 public:
  /// Builds a fresh channel to one replica; called on link start and again
  /// after every transport failure. Must throw when the replica is
  /// unreachable.
  using Dialer = std::function<std::shared_ptr<ClientChannel>()>;

  struct Options {
    /// Links that must journal a record before replicate() returns
    /// (clamped to the number of replicas; 0 streams without gating acks).
    uint32_t replication_factor = 1;
    /// Bound on replicate()'s wait for the factor. Expiry throws kTimedOut
    /// to the committing client — the record itself stays queued.
    uint32_t ack_timeout_ms = 5'000;
    /// Backoff between link redial attempts.
    uint32_t reconnect_backoff_ms = 10;
    /// Records per kWalAppend frame; a deeper backlog is sent as several
    /// consecutive frames.
    uint32_t max_batch_records = 256;
  };

  struct Stats {
    uint64_t records_enqueued = 0;   ///< records offered for replication
    uint64_t records_acked = 0;      ///< records that reached the factor
    uint64_t batches_sent = 0;       ///< kWalAppend frames (all links)
    uint64_t records_sent = 0;       ///< records carried, re-sends included
    uint64_t link_reconnects = 0;    ///< link redials after a failure
    uint64_t link_errors = 0;        ///< failed kWalAppend calls
    uint64_t stale_epoch_fences = 0; ///< segments fenced by a replica
    uint64_t backlog_records = 0;    ///< records not yet acked by every link
    uint64_t ack_timeouts = 0;       ///< replicate() waits that expired
  };

  explicit WalReplicator(Options options);
  ~WalReplicator();

  WalReplicator(const WalReplicator&) = delete;
  WalReplicator& operator=(const WalReplicator&) = delete;

  /// Registers a replica link and starts its worker. Call before the
  /// first replicate(); `id` only labels logs and errors.
  void add_replica(std::string id, Dialer dial);

  /// Enqueues one WAL record (body = type byte | head | body, exactly as
  /// journaled locally) for every link and blocks until the replication
  /// factor has journaled it. `compressed` streams the local journal's
  /// compressed-envelope flag unchanged — replicas journal the encoding
  /// they receive, so compression is inherited down the chain, never
  /// re-done. Throws kTimedOut when the factor is not reached in time,
  /// kStaleEpoch when a replica reported this segment fenced (the caller
  /// has been deposed), kState after shutdown().
  void replicate(const std::string& segment, uint32_t epoch,
                 WalRecordType type, std::span<const uint8_t> head,
                 std::span<const uint8_t> body = {}, bool compressed = false);

  /// True when a replica reported this segment as owned by a newer epoch;
  /// replicate() for it fails until the server is re-promoted.
  bool fenced(const std::string& segment) const;

  /// Stops the links and joins the workers. Unsent records are dropped —
  /// they were never acknowledged to any client. Idempotent; the
  /// destructor implies it.
  void shutdown();

  size_t replica_count() const;
  Stats stats() const;

 private:
  struct Rec {
    uint64_t seq;
    std::string segment;
    uint32_t epoch;
    /// WalRecordType, possibly ORed with kPayloadCompressedTagBit — the
    /// same tag byte the local WAL framed, carried verbatim on the wire.
    uint8_t tag;
    std::vector<uint8_t> payload;  // head | body (no tag byte)
  };
  struct Link {
    std::string id;
    Dialer dial;
    std::shared_ptr<ClientChannel> channel;  // worker-owned once started
    uint64_t acked = 0;  ///< highest seq this replica has journaled
    std::thread worker;
  };

  void link_loop(Link* link);
  /// Records acked by at least `need` links at or above `seq`.
  bool quorum_reached_locked(uint64_t seq, uint32_t need) const;
  void trim_locked();

  Options options_;

  mutable std::mutex mu_;
  std::condition_variable send_cv_;  ///< workers: new records / stop
  std::condition_variable ack_cv_;   ///< committers: acks / fences / stop
  std::deque<Rec> log_;
  uint64_t next_seq_ = 0;  ///< seq of the most recently enqueued record
  uint64_t quorum_frontier_ = 0;  ///< highest seq at the replication factor
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_set<std::string> fenced_segments_;
  bool stop_ = false;

  // Counters not derivable from the log (relaxed; stats() snapshots).
  std::atomic<uint64_t> records_enqueued_{0};
  std::atomic<uint64_t> records_acked_{0};
  std::atomic<uint64_t> batches_sent_{0};
  std::atomic<uint64_t> records_sent_{0};
  std::atomic<uint64_t> link_reconnects_{0};
  std::atomic<uint64_t> link_errors_{0};
  std::atomic<uint64_t> stale_epoch_fences_{0};
  std::atomic<uint64_t> ack_timeouts_{0};
};

}  // namespace iw::server
