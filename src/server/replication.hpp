// WalReplicator: chain-streams a primary's write-ahead records to replica
// servers and gates commit acknowledgement on a replication factor.
//
// The primary appends every journaled record (type registrations, commits)
// to an in-memory replication log; one worker thread per replica link
// drains that log into kWalAppend frames. Batching is implicit group
// commit: while one RPC is in flight, every record enqueued behind it rides
// the next frame, so a burst of commits across segments costs one round
// trip per link, mirroring the client-side send coalescing.
//
// replicate() blocks until `replication_factor` links have journaled the
// record (a replica acks only after applying it to its store *and*
// appending it to its own WAL), which is what lets the server ack a client
// commit with the zero-acked-loss guarantee: an acked commit exists in at
// least that many journals, so promoting the most-caught-up replica after
// a primary crash loses nothing that was acknowledged. A timeout fails the
// *acknowledgement*, never the delivery — the record stays queued and the
// links keep re-sending it in order, so a slow replica degrades commit
// latency, not replica consistency.
//
// Epoch fencing: every record carries the segment's placement epoch. A
// replica that has been promoted (or has seen a newer primary) reports
// older-epoch records as stale in its kWalAck instead of applying them;
// the replicator then fences that segment and every later replicate() for
// it throws kStaleEpoch. Because acks gate commit acknowledgement, a
// deposed primary can never again ack a commit — the ack gate doubles as
// the fence. unfence() clears the fence when the server is re-promoted.
//
// Link lifecycle (the self-healing half):
//
//   live ──error──▶ backoff (jittered exponential, backlog retained)
//     ▲                │ grace expired
//     │ redial ok      ▼
//     └────────────  dead  ──add_replica()/register_sync()──▶ revived
//
// A failed link redials with jittered exponential backoff and re-sends
// from its last acked record out of the retained log; replicas apply
// idempotently, so duplicated batches after a reconnect are harmless. A
// link that stays unreachable past the disconnect grace is declared dead:
// it stops pinning the retained log and stops counting toward the quorum,
// so a permanently lost replica degrades the factor instead of wedging
// trim. Re-registering the same id revives a dead link.
//
// Backfill pause: register_sync() parks a link with its ack cursor pinned
// at the current log head — everything at or below the pin is covered by
// the snapshot/tail the caller is cutting, everything after is retained
// and replayed when resume_replica() flips the link live. Paused links are
// excluded from the quorum need, so a bootstrap never blocks commits; the
// sync grace bounds how long an abandoned backfill may pin the log.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/transport.hpp"
#include "server/wal.hpp"

namespace iw::server {

class WalReplicator {
 public:
  /// Builds a fresh channel to one replica; called on link start and again
  /// after every transport failure. Must throw when the replica is
  /// unreachable.
  using Dialer = std::function<std::shared_ptr<ClientChannel>()>;

  struct Options {
    /// Links that must journal a record before replicate() returns
    /// (clamped to the number of live, unpaused links; 0 streams without
    /// gating acks).
    uint32_t replication_factor = 1;
    /// Bound on replicate()'s wait for the factor. Expiry throws kTimedOut
    /// to the committing client — the record itself stays queued.
    uint32_t ack_timeout_ms = 5'000;
    /// Initial backoff between link redial attempts; consecutive failures
    /// double it (with jitter) up to reconnect_backoff_max_ms.
    uint32_t reconnect_backoff_ms = 10;
    uint32_t reconnect_backoff_max_ms = 500;
    /// A link continuously unreachable for this long is declared dead: it
    /// no longer pins the retained log or counts toward the quorum until
    /// revived by add_replica()/register_sync(). 0 = retry forever.
    uint32_t disconnect_grace_ms = 10'000;
    /// A sync-paused link whose backfill has not resumed within this
    /// deadline is declared dead for the same reason. 0 = wait forever.
    uint32_t sync_grace_ms = 30'000;
    /// Records per kWalAppend frame; a deeper backlog is sent as several
    /// consecutive frames.
    uint32_t max_batch_records = 256;
  };

  /// Point-in-time view of one replica link.
  struct LinkStats {
    std::string id;
    uint64_t acked_seq = 0;
    uint64_t replication_lag_records = 0;  ///< records enqueued but unacked
    bool paused = false;                   ///< mid-backfill (register_sync)
    bool dead = false;                     ///< past grace; awaiting revival
  };

  struct Stats {
    uint64_t records_enqueued = 0;   ///< records offered for replication
    uint64_t records_acked = 0;      ///< records that reached the factor
    uint64_t batches_sent = 0;       ///< kWalAppend frames (all links)
    uint64_t records_sent = 0;       ///< records carried, re-sends included
    uint64_t link_reconnects = 0;    ///< link redials after a failure
    uint64_t link_errors = 0;        ///< failed kWalAppend calls
    uint64_t stale_epoch_fences = 0; ///< segments fenced by a replica
    uint64_t backlog_records = 0;    ///< records not yet acked by every link
    uint64_t ack_timeouts = 0;       ///< replicate() waits that expired
    uint64_t backfills_started = 0;  ///< paused sync registrations
    uint64_t backfills_completed = 0;///< syncs flipped to live tailing
    uint64_t dead_links = 0;         ///< links currently declared dead
    /// Segments journaled by this primary while fewer live, unpaused links
    /// exist than the replication factor (0 when the factor is met).
    uint64_t under_replicated_segments = 0;
    std::vector<LinkStats> links;    ///< one entry per registered link
  };

  explicit WalReplicator(Options options);
  ~WalReplicator();

  WalReplicator(const WalReplicator&) = delete;
  WalReplicator& operator=(const WalReplicator&) = delete;

  /// Registers a replica link and starts its worker, or revives an
  /// existing (possibly dead) link under the same id with a fresh dialer —
  /// a restarted replica re-registers here, typically at a new address.
  /// The link streams from the current log head; history it missed is a
  /// sync transfer (register_sync). `id` keys revival and labels logs.
  void add_replica(std::string id, Dialer dial);

  /// Registers (or re-aims) `id` as a *paused* link whose ack cursor is
  /// pinned at the current log head. The primary's sync serving calls this
  /// under the segment lock *before* cutting the snapshot/tail, which is
  /// what makes the handoff gap-free: records enqueued after the pin are
  /// retained and replayed on resume. A link that is already streaming
  /// live is left untouched (anti-entropy over a healthy link must not dip
  /// the quorum) and false is returned.
  bool register_sync(const std::string& id, Dialer dial);

  /// Flips a sync-paused link to live streaming (the kSyncDone edge).
  /// Returns false when no live link with that id exists (e.g. the sync
  /// grace already declared it dead).
  bool resume_replica(const std::string& id);

  /// Enqueues one WAL record (body = type byte | head | body, exactly as
  /// journaled locally) for every link and blocks until the replication
  /// factor has journaled it. `compressed` streams the local journal's
  /// compressed-envelope flag unchanged — replicas journal the encoding
  /// they receive, so compression is inherited down the chain, never
  /// re-done. Throws kTimedOut when the factor is not reached in time,
  /// kStaleEpoch when a replica reported this segment fenced (the caller
  /// has been deposed), kState after shutdown().
  void replicate(const std::string& segment, uint32_t epoch,
                 WalRecordType type, std::span<const uint8_t> head,
                 std::span<const uint8_t> body = {}, bool compressed = false);

  /// True when a replica reported this segment as owned by a newer epoch;
  /// replicate() for it fails until the server is re-promoted.
  bool fenced(const std::string& segment) const;

  /// Clears a segment's stale-epoch fence — the kPromote edge: this server
  /// now owns the segment's newest epoch, so its records are current again.
  void unfence(const std::string& segment);

  /// Stops the links and joins the workers. Unsent records are dropped —
  /// they were never acknowledged to any client. Idempotent; the
  /// destructor implies it.
  void shutdown();

  size_t replica_count() const;
  Stats stats() const;

 private:
  struct Rec {
    uint64_t seq;
    std::string segment;
    uint32_t epoch;
    /// WalRecordType, possibly ORed with kPayloadCompressedTagBit — the
    /// same tag byte the local WAL framed, carried verbatim on the wire.
    uint8_t tag;
    std::vector<uint8_t> payload;  // head | body (no tag byte)
  };
  struct Link {
    std::string id;
    Dialer dial;
    std::shared_ptr<ClientChannel> channel;  // worker-owned once started
    uint64_t acked = 0;   ///< highest seq this replica has journaled
    bool paused = false;  ///< parked mid-backfill; cursor pinned
    bool dead = false;    ///< grace expired; parked until revived
    uint32_t failures = 0;  ///< consecutive failed sends (backoff input)
    std::chrono::steady_clock::time_point down_since{};
    std::chrono::steady_clock::time_point paused_since{};
    std::thread worker;
  };

  void link_loop(Link* link);
  Link* find_link_locked(const std::string& id);
  /// Records acked by at least `need` live, unpaused links at/above `seq`.
  bool quorum_reached_locked(uint64_t seq, uint32_t need) const;
  /// Replication factor clamped to the live, unpaused link count.
  uint32_t active_need_locked() const;
  void advance_quorum_frontier_locked();
  void declare_dead_locked(Link& link, const char* why);
  /// Declares paused links dead once their sync grace expires.
  void reap_expired_locked();
  void trim_locked();

  Options options_;

  mutable std::mutex mu_;
  std::condition_variable send_cv_;  ///< workers: new records / stop
  std::condition_variable ack_cv_;   ///< committers: acks / fences / stop
  std::deque<Rec> log_;
  uint64_t next_seq_ = 0;  ///< seq of the most recently enqueued record
  uint64_t quorum_frontier_ = 0;  ///< highest seq at the replication factor
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_set<std::string> fenced_segments_;
  std::unordered_set<std::string> segments_seen_;  ///< ever replicated
  bool stop_ = false;

  // Counters not derivable from the log (relaxed; stats() snapshots).
  std::atomic<uint64_t> records_enqueued_{0};
  std::atomic<uint64_t> records_acked_{0};
  std::atomic<uint64_t> batches_sent_{0};
  std::atomic<uint64_t> records_sent_{0};
  std::atomic<uint64_t> link_reconnects_{0};
  std::atomic<uint64_t> link_errors_{0};
  std::atomic<uint64_t> stale_epoch_fences_{0};
  std::atomic<uint64_t> ack_timeouts_{0};
  std::atomic<uint64_t> backfills_started_{0};
  std::atomic<uint64_t> backfills_completed_{0};
};

}  // namespace iw::server
