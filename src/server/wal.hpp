// Per-segment write-ahead diff log — the journal half of the server's
// snapshot+journal durability discipline.
//
// Every committed diff (and segment create / type registration / destroy)
// is appended to `<segment>.iwlog` *before* the commit is acknowledged to
// the client, so a crashed server recovers every acknowledged version by
// loading the newest valid checkpoint and replaying the log tail.
//
// On-disk layout (all integers big-endian, matching the wire format):
//
//   file   := header record*
//   header := magic u32 "IWAL" | format u32 (=1)
//   record := body_len u32 | crc u32 | body
//   body   := tag u8 | payload           (body_len = 1 + payload size)
//   tag    := type u8, possibly ORed with kPayloadCompressedTagBit (0x80)
//
// The record framing is the shared codec's (wire/payload.hpp); this file
// composes it with the WAL's header, sync policies, and torn-tail rule.
// When the tag carries kPayloadCompressedTagBit the payload is a
// compress_record_payload envelope (`u32 raw_len | lz bytes`); replay
// decompresses transparently, so Record::payload is always the raw bytes.
// Uncompressed records are byte-identical to format 1 journals written
// before compression existed, and replay sniffs the flag per record, so
// old journals (and mixed old/new journals) replay unchanged.
//
// `crc` is CRC-32C over the whole body. The torn-tail rule: a record is
// valid only if its full header fits, its length is sane, its full body
// fits, the CRC matches, and (when flagged) its payload decompresses;
// replay stops cleanly at the first violation (a crash mid-append leaves
// exactly such a tail) and reopening for append truncates the torn bytes.
// Corruption *before* the tail also stops replay — bytes after a bad
// record cannot be trusted because record boundaries are lost.
//
// Sync policies trade commit latency for durability against OS/power
// failure (process death alone never loses a completed append):
//   kNone   — never fdatasync; the page cache decides.
//   kBatch  — group commit: fdatasync at most once per batch_interval_ms,
//             piggybacking every commit in between on one flush.
//   kCommit — fdatasync before every commit acknowledgement.
//
// Thread-safety: none. A WriteAheadLog belongs to one SegmentEntry and is
// only touched under that entry's mutex, exactly like the store.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/fault.hpp"

namespace iw::server {

enum class WalRecordType : uint8_t {
  kSegmentCreate = 1,  ///< payload: lp segment name
  kRegisterType = 2,   ///< payload: u32 serial, encoded type graph
  kCommit = 3,         ///< payload: u32 resulting version, diff bytes
  kSegmentDestroy = 4, ///< payload: empty; replay resets the segment
  kEpochAdopt = 5,     ///< payload: u32 adopted placement epoch. Local-only
                       ///< lineage marker written at promotion and after a
                       ///< backfill install; never replicated (kWalAppend
                       ///< accepts only types 1..4), so a deposed primary's
                       ///< replayed history carries the epoch it last served
                       ///< under and a rejoin can tell whether its version
                       ///< lineage matches the promoted one.
};

/// Shared relaxed-atomic counters; the owning server aggregates one
/// instance across every segment's log.
struct WalCounters {
  std::atomic<uint64_t> records_appended{0};
  std::atomic<uint64_t> bytes_appended{0};
  std::atomic<uint64_t> fsyncs{0};
};

class WriteAheadLog {
 public:
  enum class Sync : uint8_t { kNone, kBatch, kCommit };

  /// Size of the file header (magic + format); the offset of the first
  /// record, and the smallest meaningful `resume_at`.
  static constexpr uint64_t kHeaderSize = 8;

  struct Options {
    Sync sync = Sync::kBatch;
    /// Group-commit flush interval for Sync::kBatch.
    uint32_t batch_interval_ms = 5;
    /// Aggregated server-wide counters; may be null.
    WalCounters* counters = nullptr;
    /// Crash injection (tests only); may be null.
    std::shared_ptr<WalCrashSchedule> crash;
  };

  struct Record {
    WalRecordType type;
    /// Raw (decompressed) payload bytes, whatever the on-disk encoding.
    std::vector<uint8_t> payload;
    /// True when the on-disk payload was a compressed envelope.
    bool compressed = false;
    /// On-disk size of the whole record (frame header + tag + encoded
    /// payload) — what the journal actually paid for this record.
    uint64_t stored_bytes = 0;
    /// File offset just past this record — the truncation point when a
    /// recovery applies only a prefix of the records.
    uint64_t end_offset = 0;
  };

  /// Result of scanning a log file up to the first invalid record.
  struct Replay {
    std::vector<Record> records;
    /// Byte offset of the end of the last valid record (or the header);
    /// reopening for append truncates the file here.
    uint64_t valid_bytes = 0;
    /// True when bytes past valid_bytes existed but did not parse — a torn
    /// or corrupt tail. Never an error: this is the expected shape of a
    /// crash mid-append.
    bool torn_tail = false;
    /// How many tail bytes did not parse (file size - valid_bytes when
    /// torn_tail, else 0) — surfaced as the server's wal_truncated_bytes
    /// stat so operators can see how much a crash actually cost.
    uint64_t truncated_bytes = 0;
    /// True when the file does not exist (fresh segment, or WAL disabled
    /// when the state was written).
    bool missing = false;
  };

  /// Scans `path` and parses every valid record. Throws Error(kIo) only on
  /// genuine I/O failure (open/read of an existing file); torn or corrupt
  /// content is reported via the result, never thrown.
  static Replay replay(const std::string& path);

  /// Opens `path` for appending. `resume_at` is Replay::valid_bytes from a
  /// preceding replay: the file is truncated there (discarding any torn
  /// tail) before appends continue. Passing 0 starts the log fresh — the
  /// previous content (if any) is discarded and a new header written, which
  /// is also how a brand-new segment's log is born.
  WriteAheadLog(std::string path, Options options, uint64_t resume_at = 0);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record whose payload is `head` followed by `body` (two
  /// spans so a commit's version prefix needs no copy of the diff bytes),
  /// then applies the sync policy. Must complete before the corresponding
  /// commit is acknowledged. `compressed` marks the payload as an
  /// already-built compress_record_payload envelope — the WAL journals
  /// whatever encoding it is handed and only flags the tag; it never
  /// compresses (or re-compresses) itself, so a replica journaling a
  /// primary's stream inherits the primary's encoding byte for byte.
  void append(WalRecordType type, std::span<const uint8_t> head,
              std::span<const uint8_t> body = {}, bool compressed = false);

  /// fdatasyncs now if any append since the last flush; no-op otherwise.
  void sync();

  /// Discards every record — the checkpoint that just landed durably
  /// supersedes them. Truncates back to the file header and flushes, so a
  /// crash right after checkpointing cannot replay stale records on top of
  /// the new snapshot.
  void truncate_after_checkpoint();

  const std::string& path() const noexcept { return path_; }

 private:
  void write_all(const uint8_t* p, size_t n);
  void fdatasync_now();

  std::string path_;
  Options options_;
  int fd_ = -1;
  bool dirty_ = false;
  std::chrono::steady_clock::time_point last_flush_{};
};

}  // namespace iw::server
