#include "server/directory.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace iw::server {

namespace {

/// FNV-1a with a SplitMix64-style finisher: cheap, seedless, and spreads
/// the short id/url strings a ring sees well enough for placement. The
/// salt's bytes go through the multiply-mix loop like ordinary input —
/// XOR-ing it into the seed instead would let (salt, first char) pairs
/// cancel (e.g. ("b", 0) vs ("c", 1)), collapsing short ids' virtual
/// nodes onto one ring position.
uint64_t ring_hash(const std::string& s, uint64_t salt) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    h ^= (salt >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

}  // namespace

SegmentDirectory::SegmentDirectory(Options options, Dialer dial)
    : options_(options), dial_(std::move(dial)) {}

void SegmentDirectory::add_node(const std::string& id,
                                const std::string& address) {
  std::lock_guard lock(mu_);
  if (!nodes_.emplace(id, address).second) {
    throw Error(ErrorCode::kAlreadyExists, "node '" + id + "'");
  }
  for (uint32_t v = 0; v < options_.virtual_nodes; ++v) {
    ring_.emplace(ring_hash(id, v), id);
  }
}

void SegmentDirectory::set_node_address(const std::string& id,
                                        const std::string& address) {
  std::lock_guard lock(mu_);
  auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    it->second = address;  // restarted node: same ring positions
    return;
  }
  nodes_.emplace(id, address);
  for (uint32_t v = 0; v < options_.virtual_nodes; ++v) {
    ring_.emplace(ring_hash(id, v), id);
  }
}

void SegmentDirectory::set_placement(const std::string& segment,
                                     std::vector<std::string> node_ids) {
  std::lock_guard lock(mu_);
  if (node_ids.empty()) {
    throw Error(ErrorCode::kInvalidArgument, "empty placement");
  }
  for (const std::string& id : node_ids) {
    if (nodes_.count(id) == 0) {
      throw Error(ErrorCode::kNotFound, "node '" + id + "'");
    }
  }
  Placement p;
  p.epoch = 1;
  p.nodes = std::move(node_ids);
  placements_[segment] = std::move(p);
}

SegmentDirectory::Placement SegmentDirectory::compute_locked(
    const std::string& segment) const {
  if (nodes_.empty()) {
    throw Error(ErrorCode::kState, "directory has no nodes");
  }
  const size_t want = std::min<size_t>(1 + options_.replicas, nodes_.size());
  Placement p;
  p.epoch = 1;
  // Clockwise walk from the segment's ring position, collecting distinct
  // nodes: the primary plus its successor replicas, so a node joining
  // elsewhere on the ring does not reshuffle this segment. One full cycle
  // bounds the walk — hash collisions can leave the ring with fewer
  // distinct nodes than the membership has, and a shorter placement beats
  // an endless search for one.
  auto it = ring_.lower_bound(ring_hash(segment, 0));
  if (it == ring_.end()) it = ring_.begin();
  for (size_t seen = 0; seen < ring_.size() && p.nodes.size() < want;
       ++seen) {
    if (std::find(p.nodes.begin(), p.nodes.end(), it->second) ==
        p.nodes.end()) {
      p.nodes.push_back(it->second);
    }
    if (++it == ring_.end()) it = ring_.begin();
  }
  return p;
}

SegmentDirectory::Placement SegmentDirectory::resolve(
    const std::string& segment) {
  resolves_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  auto it = placements_.find(segment);
  if (it == placements_.end()) {
    it = placements_.emplace(segment, compute_locked(segment)).first;
  }
  return it->second;
}

SegmentDirectory::Placement SegmentDirectory::resolve_for_failover(
    const std::string& segment, uint32_t observed_epoch) {
  using clock = std::chrono::steady_clock;
  resolves_.fetch_add(1, std::memory_order_relaxed);
  failover_resolves_.fetch_add(1, std::memory_order_relaxed);
  // One mutex for the whole probe-and-promote: two callers that observed
  // the same dead primary serialize here, and the second sees the bumped
  // epoch instead of promoting again.
  std::lock_guard lock(mu_);
  auto it = placements_.find(segment);
  if (it == placements_.end()) {
    it = placements_.emplace(segment, compute_locked(segment)).first;
  }
  Placement& p = it->second;
  if (p.epoch > observed_epoch) return p;  // already failed over

  const auto started = clock::now();
  try {
    auto probe = dial_(address_of_locked(p.nodes.front()));
    probe->call(MsgType::kPing, Buffer());
    return p;  // primary alive; the caller's failure was transient
  } catch (const std::exception&) {
    probes_failed_.fetch_add(1, std::memory_order_relaxed);
  }

  // The primary is dead: promote the most-caught-up reachable replica.
  // Version is the tie-breaker that preserves every acked commit — an ack
  // required `replication_factor` journaled copies, so the highest version
  // among survivors contains all of them.
  std::shared_ptr<ClientChannel> best_channel;
  std::string best_node;
  uint32_t best_version = 0;
  for (size_t i = 1; i < p.nodes.size(); ++i) {
    const std::string& node = p.nodes[i];
    try {
      auto ch = dial_(address_of_locked(node));
      Buffer req;
      req.append_lp_string(segment);
      req.append_u8(0);  // do not create: we are asking, not writing
      uint32_t version = 0;
      try {
        Frame resp = ch->call(MsgType::kOpenSegment, std::move(req));
        version = resp.reader().read_u32();
      } catch (const Error& e) {
        if (e.is_transport() || e.code() != ErrorCode::kNotFound) throw;
        // Reachable but never saw the segment: a viable version-0 pick
        // when no replica has data (nothing was ever acked).
      }
      if (best_channel == nullptr || version > best_version) {
        best_channel = std::move(ch);
        best_node = node;
        best_version = version;
      }
    } catch (const std::exception& e) {
      IW_LOG(kWarn) << "failover probe of replica " << node << " for "
                    << segment << " failed: " << e.what();
    }
  }
  if (best_channel == nullptr) {
    throw Error(ErrorCode::kIo, "no replica of '" + segment +
                                    "' is reachable; cannot fail over");
  }

  Buffer promote;
  promote.append_lp_string(segment);
  promote.append_u32(p.epoch + 1);
  best_channel->call(MsgType::kPromote, std::move(promote));

  // Republish: winner first, the dead primary demoted to the tail (it can
  // rejoin as a replica once it catches up).
  std::string old_primary = p.nodes.front();
  p.nodes.erase(std::remove(p.nodes.begin(), p.nodes.end(), best_node),
                p.nodes.end());
  p.nodes.erase(p.nodes.begin());  // old primary
  p.nodes.insert(p.nodes.begin(), best_node);
  p.nodes.push_back(std::move(old_primary));
  ++p.epoch;

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           clock::now() - started)
                           .count();
  promotions_.fetch_add(1, std::memory_order_relaxed);
  promote_ms_last_.store(static_cast<uint64_t>(elapsed),
                         std::memory_order_relaxed);
  uint64_t prev = promote_ms_max_.load(std::memory_order_relaxed);
  while (static_cast<uint64_t>(elapsed) > prev &&
         !promote_ms_max_.compare_exchange_weak(prev,
                                                static_cast<uint64_t>(elapsed),
                                                std::memory_order_relaxed)) {
  }
  IW_LOG(kInfo) << "promoted " << best_node << " to primary of " << segment
                << " (epoch " << p.epoch << ", v" << best_version << ", "
                << elapsed << " ms)";
  return p;
}

std::string SegmentDirectory::address_of(const std::string& node_id) const {
  std::lock_guard lock(mu_);
  return address_of_locked(node_id);
}

std::string SegmentDirectory::address_of_locked(
    const std::string& node_id) const {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    throw Error(ErrorCode::kNotFound, "node '" + node_id + "'");
  }
  return it->second;
}

std::vector<std::string> SegmentDirectory::placed_segments() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(placements_.size());
  for (const auto& [segment, p] : placements_) out.push_back(segment);
  return out;
}

SegmentDirectory::Placement SegmentDirectory::placement_of(
    const std::string& segment) const {
  std::lock_guard lock(mu_);
  auto it = placements_.find(segment);
  if (it == placements_.end()) {
    throw Error(ErrorCode::kNotFound, "no placement for '" + segment + "'");
  }
  return it->second;
}

void SegmentDirectory::substitute_replica(const std::string& segment,
                                          const std::string& dead,
                                          const std::string& substitute) {
  std::lock_guard lock(mu_);
  auto it = placements_.find(segment);
  if (it == placements_.end()) {
    throw Error(ErrorCode::kNotFound, "no placement for '" + segment + "'");
  }
  if (nodes_.count(substitute) == 0) {
    throw Error(ErrorCode::kNotFound, "node '" + substitute + "'");
  }
  Placement& p = it->second;
  if (std::find(p.nodes.begin(), p.nodes.end(), substitute) !=
      p.nodes.end()) {
    throw Error(ErrorCode::kInvalidArgument,
                "node '" + substitute + "' is already placed for '" +
                    segment + "'");
  }
  auto pos = std::find(p.nodes.begin(), p.nodes.end(), dead);
  if (pos == p.nodes.end()) {
    throw Error(ErrorCode::kNotFound,
                "node '" + dead + "' is not placed for '" + segment + "'");
  }
  if (pos == p.nodes.begin()) {
    throw Error(ErrorCode::kInvalidArgument,
                "cannot substitute the primary of '" + segment +
                    "'; fail over instead");
  }
  *pos = substitute;
  IW_LOG(kInfo) << "substituted replica " << dead << " -> " << substitute
                << " for " << segment << " (epoch " << p.epoch << ")";
}

std::vector<std::string> SegmentDirectory::node_ids() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, address] : nodes_) out.push_back(id);
  return out;
}

SegmentDirectory::Stats SegmentDirectory::stats() const {
  Stats s;
  s.resolves = resolves_.load(std::memory_order_relaxed);
  s.failover_resolves = failover_resolves_.load(std::memory_order_relaxed);
  s.probes_failed = probes_failed_.load(std::memory_order_relaxed);
  s.promotions = promotions_.load(std::memory_order_relaxed);
  s.promote_ms_last = promote_ms_last_.load(std::memory_order_relaxed);
  s.promote_ms_max = promote_ms_max_.load(std::memory_order_relaxed);
  return s;
}

ReplicationRepairer::ReplicationRepairer(SegmentDirectory& directory)
    : ReplicationRepairer(directory, Options{}) {}

ReplicationRepairer::ReplicationRepairer(SegmentDirectory& directory,
                                         Options options)
    : directory_(directory), options_(options) {}

ReplicationRepairer::~ReplicationRepairer() { stop(); }

void ReplicationRepairer::start() {
  std::lock_guard lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  worker_ = std::thread([this] {
    std::unique_lock lock(mu_);
    while (!stop_) {
      lock.unlock();
      try {
        tick();
      } catch (const std::exception& e) {
        IW_LOG(kWarn) << "repair tick failed: " << e.what();
      }
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_; });
    }
  });
}

void ReplicationRepairer::stop() {
  std::thread worker;
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
    stop_ = true;
    running_ = false;
    cv_.notify_all();
    worker = std::move(worker_);
  }
  if (worker.joinable()) worker.join();
}

bool ReplicationRepairer::recruit(const std::string& segment, uint32_t epoch,
                                  const std::string& node,
                                  const std::string& primary_address,
                                  bool* transport_dead) {
  recruits_attempted_.fetch_add(1, std::memory_order_relaxed);
  try {
    auto channel = directory_.dialer()(directory_.address_of(node));
    Buffer req;
    req.append_lp_string(segment);
    req.append_u32(epoch);
    req.append_lp_string(primary_address);
    channel->call(MsgType::kRecruit, std::move(req));
    return true;
  } catch (const Error& e) {
    recruits_failed_.fetch_add(1, std::memory_order_relaxed);
    if (e.is_transport()) {
      if (transport_dead != nullptr) *transport_dead = true;
    } else if (e.code() == ErrorCode::kStaleEpoch) {
      // Raced a newer failover: the replica (or the primary it pulled
      // from) already follows a newer epoch than our placement snapshot.
      // The next tick re-reads the placement and recruits under it.
      recruits_rejected_stale_.fetch_add(1, std::memory_order_relaxed);
    }
    IW_LOG(kWarn) << "recruit of " << node << " for " << segment
                  << " (epoch " << epoch << ") failed: " << e.what();
    return false;
  } catch (const std::exception& e) {
    recruits_failed_.fetch_add(1, std::memory_order_relaxed);
    IW_LOG(kWarn) << "recruit of " << node << " for " << segment
                  << " (epoch " << epoch << ") failed: " << e.what();
    return false;
  }
}

uint64_t ReplicationRepairer::tick() {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  SegmentDirectory::Dialer dial = directory_.dialer();
  const std::vector<std::string> ids = directory_.node_ids();
  uint64_t under = 0;
  for (const std::string& segment : directory_.placed_segments()) {
    SegmentDirectory::Placement p;
    try {
      p = directory_.placement_of(segment);
    } catch (const Error&) {
      continue;  // unplaced since the listing; nothing to repair
    }
    // 1. Primary health: promote away from a dead primary now, instead of
    // waiting for a client to trip over the corpse.
    bool primary_ok = false;
    try {
      auto probe = dial(directory_.address_of(p.nodes.front()));
      probe->call(MsgType::kPing, Buffer());
      primary_ok = true;
    } catch (const std::exception&) {
    }
    if (!primary_ok) {
      try {
        SegmentDirectory::Placement np =
            directory_.resolve_for_failover(segment, p.epoch);
        if (np.epoch != p.epoch) {
          failovers_.fetch_add(1, std::memory_order_relaxed);
        }
        p = std::move(np);
      } catch (const std::exception& e) {
        IW_LOG(kWarn) << "repair cannot fail over " << segment << ": "
                      << e.what();
        ++under;
        continue;
      }
    }
    std::string primary_address;
    try {
      primary_address = directory_.address_of(p.nodes.front());
    } catch (const Error&) {
      ++under;
      continue;
    }
    // 2. Recruit every replica in the placement; 3. substitute the
    // unreachable ones from ring nodes outside it.
    const size_t target = std::min<size_t>(
        directory_.replica_target(), ids.empty() ? 0 : ids.size() - 1);
    size_t live = 0;
    for (size_t i = 1; i < p.nodes.size(); ++i) {
      const std::string node = p.nodes[i];
      bool transport_dead = false;
      if (recruit(segment, p.epoch, node, primary_address,
                  &transport_dead)) {
        ++live;
        continue;
      }
      if (!transport_dead) continue;  // app-level refusal: retry next tick
      for (const std::string& candidate : ids) {
        if (std::find(p.nodes.begin(), p.nodes.end(), candidate) !=
            p.nodes.end()) {
          continue;
        }
        if (!recruit(segment, p.epoch, candidate, primary_address,
                     nullptr)) {
          continue;
        }
        try {
          directory_.substitute_replica(segment, node, candidate);
          substitutions_.fetch_add(1, std::memory_order_relaxed);
          p.nodes[i] = candidate;
          ++live;
        } catch (const Error& e) {
          // The placement changed under us (another failover or repair);
          // the backfill itself was still useful. Reconcile next tick.
          IW_LOG(kWarn) << "substitution of " << node << " -> " << candidate
                        << " for " << segment << " lost a race: " << e.what();
        }
        break;
      }
    }
    if (live < target) ++under;
  }
  under_replicated_.store(under, std::memory_order_relaxed);
  return under;
}

ReplicationRepairer::Stats ReplicationRepairer::stats() const {
  Stats s;
  s.ticks = ticks_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.recruits_attempted =
      recruits_attempted_.load(std::memory_order_relaxed);
  s.recruits_failed = recruits_failed_.load(std::memory_order_relaxed);
  s.recruits_rejected_stale =
      recruits_rejected_stale_.load(std::memory_order_relaxed);
  s.substitutions = substitutions_.load(std::memory_order_relaxed);
  s.under_replicated_segments =
      under_replicated_.load(std::memory_order_relaxed);
  return s;
}

Frame DirectoryCore::handle(SessionId, const Frame& request) {
  Frame resp;
  try {
    Buffer payload;
    BufReader in = request.reader();
    switch (request.type) {
      case MsgType::kPing:
        resp.type = MsgType::kPingResp;
        break;
      case MsgType::kDirResolve: {
        std::string segment = in.read_lp_string();
        uint32_t observed = in.read_u32();
        bool failover = in.read_u8() != 0;
        SegmentDirectory::Placement p =
            failover ? directory_.resolve_for_failover(segment, observed)
                     : directory_.resolve(segment);
        resp.type = MsgType::kDirResolveResp;
        payload.append_u32(p.epoch);
        payload.append_u8(static_cast<uint8_t>(p.nodes.size()));
        for (const std::string& node : p.nodes) {
          payload.append_lp_string(node);
          payload.append_lp_string(directory_.address_of(node));
        }
        break;
      }
      default:
        throw Error(ErrorCode::kProtocol,
                    "unexpected message for directory: " +
                        msg_type_name(request.type));
    }
    resp.payload = payload.take();
  } catch (const Error& e) {
    resp = make_error_frame(e);
  } catch (const std::exception& e) {
    resp = make_error_frame(Error(ErrorCode::kInternal, e.what()));
  }
  resp.request_id = request.request_id;
  return resp;
}

std::function<std::shared_ptr<ClientChannel>()> make_failover_connector(
    SegmentDirectory& directory, std::string segment,
    SegmentDirectory::Dialer dial) {
  auto observed = std::make_shared<uint32_t>(0);
  return [dir = &directory, segment = std::move(segment),
          dial = std::move(dial), observed]() {
    SegmentDirectory::Placement p =
        *observed == 0 ? dir->resolve(segment)
                       : dir->resolve_for_failover(segment, *observed);
    *observed = p.epoch;
    return dial(dir->address_of(p.nodes.front()));
  };
}

std::function<std::shared_ptr<ClientChannel>()> make_failover_connector(
    std::function<std::shared_ptr<ClientChannel>()> dial_directory,
    std::string segment, SegmentDirectory::Dialer dial) {
  auto observed = std::make_shared<uint32_t>(0);
  return [dial_directory = std::move(dial_directory),
          segment = std::move(segment), dial = std::move(dial), observed]() {
    auto dch = dial_directory();
    Buffer req;
    req.append_lp_string(segment);
    req.append_u32(*observed);
    req.append_u8(*observed == 0 ? 0 : 1);
    Frame resp = dch->call(MsgType::kDirResolve, std::move(req));
    BufReader in = resp.reader();
    uint32_t epoch = in.read_u32();
    uint8_t count = in.read_u8();
    if (count == 0) {
      throw Error(ErrorCode::kNotFound, "empty placement for " + segment);
    }
    in.read_lp_string();  // primary node id (informational)
    std::string address = in.read_lp_string();
    *observed = epoch;
    return dial(address);
  };
}

}  // namespace iw::server
