#include "server/replication.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "wire/payload.hpp"

namespace iw::server {

WalReplicator::WalReplicator(Options options) : options_(options) {}

WalReplicator::~WalReplicator() { shutdown(); }

void WalReplicator::add_replica(std::string id, Dialer dial) {
  auto link = std::make_unique<Link>();
  link->id = std::move(id);
  link->dial = std::move(dial);
  Link* raw = link.get();
  std::unique_lock lock(mu_);
  if (stop_) throw Error(ErrorCode::kState, "replicator is shut down");
  // A link added after records were trimmed can only stream from here on;
  // catching a fresh replica up to the past is a snapshot transfer, which
  // the directory's promotion policy (most-caught-up wins) sidesteps.
  link->acked = log_.empty() ? next_seq_ : log_.front().seq - 1;
  links_.push_back(std::move(link));
  raw->worker = std::thread([this, raw] { link_loop(raw); });
}

bool WalReplicator::quorum_reached_locked(uint64_t seq, uint32_t need) const {
  uint32_t acks = 0;
  for (const auto& link : links_) {
    if (link->acked >= seq && ++acks >= need) return true;
  }
  return need == 0;
}

void WalReplicator::trim_locked() {
  uint64_t min_acked = next_seq_;
  for (const auto& link : links_) min_acked = std::min(min_acked, link->acked);
  while (!log_.empty() && log_.front().seq <= min_acked) log_.pop_front();
}

void WalReplicator::replicate(const std::string& segment, uint32_t epoch,
                              WalRecordType type,
                              std::span<const uint8_t> head,
                              std::span<const uint8_t> body, bool compressed) {
  using clock = std::chrono::steady_clock;
  std::unique_lock lock(mu_);
  if (stop_) {
    throw Error(ErrorCode::kState, "replicator is shut down");
  }
  if (fenced_segments_.count(segment) != 0) {
    throw Error(ErrorCode::kStaleEpoch,
                "segment '" + segment + "' is owned by a newer primary");
  }
  Rec rec;
  rec.seq = ++next_seq_;
  rec.segment = segment;
  rec.epoch = epoch;
  rec.tag = static_cast<uint8_t>(type) |
            (compressed ? kPayloadCompressedTagBit : uint8_t{0});
  rec.payload.reserve(head.size() + body.size());
  rec.payload.insert(rec.payload.end(), head.begin(), head.end());
  rec.payload.insert(rec.payload.end(), body.begin(), body.end());
  const uint64_t seq = rec.seq;
  log_.push_back(std::move(rec));
  records_enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (links_.empty()) {
    // Nobody will ever drain the log; standalone operation stays O(1).
    log_.clear();
    return;
  }
  send_cv_.notify_all();

  const uint32_t need = std::min<uint32_t>(
      options_.replication_factor, static_cast<uint32_t>(links_.size()));
  if (need == 0) return;
  const auto deadline =
      clock::now() + std::chrono::milliseconds(options_.ack_timeout_ms);
  while (true) {
    if (fenced_segments_.count(segment) != 0) {
      // A replica running a newer placement epoch refused the record: this
      // server was deposed mid-commit and must not ack.
      throw Error(ErrorCode::kStaleEpoch,
                  "segment '" + segment + "' is owned by a newer primary");
    }
    if (quorum_reached_locked(seq, need)) return;
    if (stop_) {
      throw Error(ErrorCode::kState, "replicator is shut down");
    }
    if (ack_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        clock::now() >= deadline) {
      ack_timeouts_.fetch_add(1, std::memory_order_relaxed);
      // The ack gate failed, not the delivery: the record stays queued and
      // the links keep sending, so the client's retry converges instead of
      // opening a version gap on the replicas.
      throw Error(ErrorCode::kTimedOut,
                  "replication factor " + std::to_string(need) +
                      " not reached for '" + segment + "'");
    }
  }
}

void WalReplicator::link_loop(Link* link) {
  std::unique_lock lock(mu_);
  bool ever_connected = false;
  while (true) {
    send_cv_.wait(lock, [&] { return stop_ || link->acked < next_seq_; });
    if (stop_) return;
    // Everything past this link's ack frontier, oldest first. Deque
    // pointers stay valid across the unlocked send: push_back never moves
    // elements and trim only pops records below every link's frontier.
    std::vector<const Rec*> batch;
    for (const Rec& r : log_) {
      if (r.seq <= link->acked) continue;
      batch.push_back(&r);
      if (batch.size() >= options_.max_batch_records) break;
    }
    if (batch.empty()) continue;  // raced a trim; frontier already moved
    const uint64_t last_seq = batch.back()->seq;
    std::shared_ptr<ClientChannel> channel = link->channel;
    lock.unlock();

    bool sent = false;
    uint32_t stale_count = 0;
    std::vector<std::string> stale;
    try {
      if (channel == nullptr) {
        channel = link->dial();
        if (ever_connected) {
          link_reconnects_.fetch_add(1, std::memory_order_relaxed);
        }
        ever_connected = true;
        std::lock_guard g(mu_);
        link->channel = channel;  // shutdown() can now sever it
      }
      Buffer payload;
      payload.append_u32(static_cast<uint32_t>(batch.size()));
      for (const Rec* r : batch) {
        payload.append_lp_string(r->segment);
        payload.append_u32(r->epoch);
        payload.append_u8(r->tag);
        payload.append_u32(static_cast<uint32_t>(r->payload.size()));
        payload.append(r->payload.data(), r->payload.size());
      }
      Frame resp = channel->call(MsgType::kWalAppend, std::move(payload));
      BufReader in = resp.reader();
      in.read_u32();  // applied count (informational)
      stale_count = in.read_u32();
      for (uint32_t i = 0; i < stale_count; ++i) {
        stale.push_back(in.read_lp_string());
      }
      sent = true;
      batches_sent_.fetch_add(1, std::memory_order_relaxed);
      records_sent_.fetch_add(batch.size(), std::memory_order_relaxed);
    } catch (const std::exception& e) {
      link_errors_.fetch_add(1, std::memory_order_relaxed);
      IW_LOG(kWarn) << "replica link " << link->id
                    << " append failed: " << e.what();
    }

    lock.lock();
    if (sent) {
      // Stale records count as settled for sequencing — the promoted
      // replica will never accept them and the committer is told via the
      // fence instead of hanging on an ack that cannot come.
      link->acked = std::max(link->acked, last_seq);
      for (std::string& s : stale) {
        if (fenced_segments_.insert(std::move(s)).second) {
          stale_epoch_fences_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Advance the factor frontier: everything at or below the need-th
      // highest link frontier has reached the replication factor.
      const uint32_t need = std::min<uint32_t>(
          options_.replication_factor, static_cast<uint32_t>(links_.size()));
      uint64_t frontier = next_seq_;
      if (need > 0) {
        std::vector<uint64_t> acked;
        acked.reserve(links_.size());
        for (const auto& l : links_) acked.push_back(l->acked);
        std::nth_element(acked.begin(), acked.begin() + (need - 1),
                         acked.end(), std::greater<uint64_t>());
        frontier = acked[need - 1];
      }
      if (frontier > quorum_frontier_) {
        records_acked_.fetch_add(frontier - quorum_frontier_,
                                 std::memory_order_relaxed);
        quorum_frontier_ = frontier;
      }
      trim_locked();
      ack_cv_.notify_all();
    } else {
      // Failed send: drop the channel and redial after a backoff (cut
      // short by shutdown).
      link->channel.reset();
      channel.reset();
      send_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.reconnect_backoff_ms),
          [&] { return stop_; });
      if (stop_) return;
    }
  }
}

bool WalReplicator::fenced(const std::string& segment) const {
  std::lock_guard lock(mu_);
  return fenced_segments_.count(segment) != 0;
}

void WalReplicator::shutdown() {
  std::vector<std::shared_ptr<ClientChannel>> channels;
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
    for (auto& link : links_) channels.push_back(link->channel);
    send_cv_.notify_all();
    ack_cv_.notify_all();
  }
  // Sever live channels so a worker blocked in call() fails promptly.
  for (auto& ch : channels) {
    if (ch != nullptr) ch->shutdown();
  }
  for (auto& link : links_) {
    if (link->worker.joinable()) link->worker.join();
  }
}

size_t WalReplicator::replica_count() const {
  std::lock_guard lock(mu_);
  return links_.size();
}

WalReplicator::Stats WalReplicator::stats() const {
  Stats s;
  s.records_enqueued = records_enqueued_.load(std::memory_order_relaxed);
  s.records_acked = records_acked_.load(std::memory_order_relaxed);
  s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  s.records_sent = records_sent_.load(std::memory_order_relaxed);
  s.link_reconnects = link_reconnects_.load(std::memory_order_relaxed);
  s.link_errors = link_errors_.load(std::memory_order_relaxed);
  s.stale_epoch_fences = stale_epoch_fences_.load(std::memory_order_relaxed);
  s.ack_timeouts = ack_timeouts_.load(std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  s.backlog_records = log_.size();
  return s;
}

}  // namespace iw::server
