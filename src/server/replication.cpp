#include "server/replication.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rand.hpp"
#include "wire/payload.hpp"

namespace iw::server {

namespace {
using steady_clock = std::chrono::steady_clock;
}  // namespace

WalReplicator::WalReplicator(Options options) : options_(options) {}

WalReplicator::~WalReplicator() { shutdown(); }

WalReplicator::Link* WalReplicator::find_link_locked(const std::string& id) {
  for (auto& link : links_) {
    if (link->id == id) return link.get();
  }
  return nullptr;
}

void WalReplicator::add_replica(std::string id, Dialer dial) {
  std::shared_ptr<ClientChannel> stale_channel;
  {
    std::unique_lock lock(mu_);
    if (stop_) throw Error(ErrorCode::kState, "replicator is shut down");
    if (Link* link = find_link_locked(id)) {
      // Revival: a restarted replica re-registers under its old id,
      // possibly at a new address. Its missed history is a sync transfer
      // (register_sync); from here it streams live again.
      stale_channel = std::move(link->channel);
      link->dial = std::move(dial);
      link->paused = false;
      link->dead = false;
      link->failures = 0;
      link->down_since = {};
      link->acked = log_.empty() ? next_seq_ : log_.front().seq - 1;
      send_cv_.notify_all();
      ack_cv_.notify_all();
    } else {
      auto fresh = std::make_unique<Link>();
      fresh->id = std::move(id);
      fresh->dial = std::move(dial);
      Link* raw = fresh.get();
      // A link added after records were trimmed can only stream from here
      // on; catching a fresh replica up to the past is a sync transfer
      // (register_sync + the server's kSyncRequest backfill).
      fresh->acked = log_.empty() ? next_seq_ : log_.front().seq - 1;
      links_.push_back(std::move(fresh));
      raw->worker = std::thread([this, raw] { link_loop(raw); });
    }
  }
  // Shut the replaced channel down outside the lock so a worker blocked in
  // call() on it fails over to the fresh dialer promptly.
  if (stale_channel != nullptr) stale_channel->shutdown();
}

bool WalReplicator::register_sync(const std::string& id, Dialer dial) {
  std::shared_ptr<ClientChannel> stale_channel;
  {
    std::unique_lock lock(mu_);
    if (stop_) throw Error(ErrorCode::kState, "replicator is shut down");
    Link* link = find_link_locked(id);
    if (link != nullptr && !link->dead && !link->paused &&
        link->channel != nullptr) {
      // Already streaming live: this sync is anti-entropy over a healthy
      // link. Leave it alone — pausing would dip the quorum — and let the
      // replica's idempotent apply absorb the overlap between the sync cut
      // and the concurrent stream.
      return false;
    }
    if (link == nullptr) {
      auto fresh = std::make_unique<Link>();
      fresh->id = id;
      Link* raw = fresh.get();
      links_.push_back(std::move(fresh));
      link = raw;
      link->worker = std::thread([this, raw] { link_loop(raw); });
    } else {
      stale_channel = std::move(link->channel);
    }
    link->dial = std::move(dial);
    link->paused = true;
    link->dead = false;
    link->failures = 0;
    link->down_since = {};
    link->paused_since = steady_clock::now();
    // Pin the cursor at the log head: everything at or below it is covered
    // by the snapshot/tail the caller is about to cut (it holds the
    // segment lock), everything after is retained and replayed on resume —
    // the no-gap handoff.
    link->acked = next_seq_;
    backfills_started_.fetch_add(1, std::memory_order_relaxed);
  }
  if (stale_channel != nullptr) stale_channel->shutdown();
  return true;
}

bool WalReplicator::resume_replica(const std::string& id) {
  std::lock_guard lock(mu_);
  Link* link = find_link_locked(id);
  if (link == nullptr || link->dead) return false;
  if (link->paused) {
    link->paused = false;
    link->paused_since = {};
    backfills_completed_.fetch_add(1, std::memory_order_relaxed);
    send_cv_.notify_all();
    ack_cv_.notify_all();
  }
  return true;
}

bool WalReplicator::quorum_reached_locked(uint64_t seq, uint32_t need) const {
  uint32_t acks = 0;
  for (const auto& link : links_) {
    if (link->dead || link->paused) continue;
    if (link->acked >= seq && ++acks >= need) return true;
  }
  return need == 0;
}

uint32_t WalReplicator::active_need_locked() const {
  uint32_t active = 0;
  for (const auto& link : links_) {
    if (!link->dead && !link->paused) ++active;
  }
  return std::min(options_.replication_factor, active);
}

void WalReplicator::advance_quorum_frontier_locked() {
  const uint32_t need = active_need_locked();
  uint64_t frontier = next_seq_;
  if (need > 0) {
    std::vector<uint64_t> acked;
    acked.reserve(links_.size());
    for (const auto& link : links_) {
      if (!link->dead && !link->paused) acked.push_back(link->acked);
    }
    std::nth_element(acked.begin(), acked.begin() + (need - 1), acked.end(),
                     std::greater<uint64_t>());
    frontier = acked[need - 1];
  }
  if (frontier > quorum_frontier_) {
    records_acked_.fetch_add(frontier - quorum_frontier_,
                             std::memory_order_relaxed);
    quorum_frontier_ = frontier;
  }
}

void WalReplicator::declare_dead_locked(Link& link, const char* why) {
  if (link.dead) return;
  link.dead = true;
  link.paused = false;
  IW_LOG(kWarn) << "replica link " << link.id << " declared dead (" << why
                << "); awaiting re-registration";
  trim_locked();  // a dead link no longer pins the retained log
  // The quorum need just shrank; blocked committers must re-evaluate, and
  // the link's own worker must park.
  ack_cv_.notify_all();
  send_cv_.notify_all();
}

void WalReplicator::reap_expired_locked() {
  if (options_.sync_grace_ms == 0) return;
  const auto now = steady_clock::now();
  const auto grace = std::chrono::milliseconds(options_.sync_grace_ms);
  for (auto& link : links_) {
    if (link->paused && !link->dead && now - link->paused_since >= grace) {
      declare_dead_locked(*link, "backfill abandoned past sync grace");
    }
  }
}

void WalReplicator::trim_locked() {
  uint64_t min_acked = next_seq_;
  bool any_alive = false;
  for (const auto& link : links_) {
    if (link->dead) continue;
    any_alive = true;
    min_acked = std::min(min_acked, link->acked);
  }
  if (!any_alive) {
    // Nobody left to drain the log; drop it so a dead fleet cannot pin
    // memory. Revived links stream from the new head (their missed history
    // is a sync transfer).
    log_.clear();
    return;
  }
  while (!log_.empty() && log_.front().seq <= min_acked) log_.pop_front();
}

void WalReplicator::replicate(const std::string& segment, uint32_t epoch,
                              WalRecordType type,
                              std::span<const uint8_t> head,
                              std::span<const uint8_t> body, bool compressed) {
  using clock = std::chrono::steady_clock;
  std::unique_lock lock(mu_);
  if (stop_) {
    throw Error(ErrorCode::kState, "replicator is shut down");
  }
  if (fenced_segments_.count(segment) != 0) {
    throw Error(ErrorCode::kStaleEpoch,
                "segment '" + segment + "' is owned by a newer primary");
  }
  reap_expired_locked();
  segments_seen_.insert(segment);
  Rec rec;
  rec.seq = ++next_seq_;
  rec.segment = segment;
  rec.epoch = epoch;
  rec.tag = static_cast<uint8_t>(type) |
            (compressed ? kPayloadCompressedTagBit : uint8_t{0});
  rec.payload.reserve(head.size() + body.size());
  rec.payload.insert(rec.payload.end(), head.begin(), head.end());
  rec.payload.insert(rec.payload.end(), body.begin(), body.end());
  const uint64_t seq = rec.seq;
  log_.push_back(std::move(rec));
  records_enqueued_.fetch_add(1, std::memory_order_relaxed);
  bool any_alive = false;
  for (const auto& link : links_) {
    if (!link->dead) {
      any_alive = true;
      break;
    }
  }
  if (!any_alive) {
    // Nobody will ever drain the log; standalone operation stays O(1).
    log_.clear();
    return;
  }
  send_cv_.notify_all();

  if (active_need_locked() == 0) return;
  const auto deadline =
      clock::now() + std::chrono::milliseconds(options_.ack_timeout_ms);
  while (true) {
    if (fenced_segments_.count(segment) != 0) {
      // A replica running a newer placement epoch refused the record: this
      // server was deposed mid-commit and must not ack.
      throw Error(ErrorCode::kStaleEpoch,
                  "segment '" + segment + "' is owned by a newer primary");
    }
    // Recomputed every pass: links may pause (backfill) or die (grace)
    // while we wait, and the need shrinks with them.
    const uint32_t need = active_need_locked();
    if (quorum_reached_locked(seq, need)) return;
    if (stop_) {
      throw Error(ErrorCode::kState, "replicator is shut down");
    }
    if (ack_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        clock::now() >= deadline) {
      ack_timeouts_.fetch_add(1, std::memory_order_relaxed);
      // The ack gate failed, not the delivery: the record stays queued and
      // the links keep sending, so the client's retry converges instead of
      // opening a version gap on the replicas.
      throw Error(ErrorCode::kTimedOut,
                  "replication factor " + std::to_string(need) +
                      " not reached for '" + segment + "'");
    }
  }
}

void WalReplicator::link_loop(Link* link) {
  std::unique_lock lock(mu_);
  bool ever_connected = false;
  // Per-link jitter stream so links that fail together do not redial in
  // lockstep; seeded from the id for reproducible interleavings in tests.
  uint64_t seed = 0xA0761D6478BD642FULL;
  for (const char c : link->id) {
    seed = seed * 1099511628211ULL + static_cast<uint8_t>(c);
  }
  SplitMix64 jitter(seed);
  while (true) {
    send_cv_.wait(lock, [&] {
      return stop_ ||
             (!link->paused && !link->dead && link->acked < next_seq_);
    });
    if (stop_) return;
    // Everything past this link's ack frontier, oldest first. Deque
    // pointers stay valid across the unlocked send: push_back never moves
    // elements and trim only pops records below every link's frontier.
    std::vector<const Rec*> batch;
    for (const Rec& r : log_) {
      if (r.seq <= link->acked) continue;
      batch.push_back(&r);
      if (batch.size() >= options_.max_batch_records) break;
    }
    if (batch.empty()) continue;  // raced a trim; frontier already moved
    const uint64_t last_seq = batch.back()->seq;
    std::shared_ptr<ClientChannel> channel = link->channel;
    // Copy the dialer under the lock: register_sync/add_replica may re-aim
    // a link at a new address while its worker is unlocked.
    Dialer dial = channel == nullptr ? link->dial : Dialer{};
    lock.unlock();

    bool sent = false;
    uint32_t stale_count = 0;
    std::vector<std::string> stale;
    try {
      if (channel == nullptr) {
        channel = dial();
        if (ever_connected) {
          link_reconnects_.fetch_add(1, std::memory_order_relaxed);
        }
        ever_connected = true;
        std::lock_guard g(mu_);
        link->channel = channel;  // shutdown() can now sever it
      }
      Buffer payload;
      payload.append_u32(static_cast<uint32_t>(batch.size()));
      for (const Rec* r : batch) {
        payload.append_lp_string(r->segment);
        payload.append_u32(r->epoch);
        payload.append_u8(r->tag);
        payload.append_u32(static_cast<uint32_t>(r->payload.size()));
        payload.append(r->payload.data(), r->payload.size());
      }
      Frame resp = channel->call(MsgType::kWalAppend, std::move(payload));
      BufReader in = resp.reader();
      in.read_u32();  // applied count (informational)
      stale_count = in.read_u32();
      for (uint32_t i = 0; i < stale_count; ++i) {
        stale.push_back(in.read_lp_string());
      }
      sent = true;
      batches_sent_.fetch_add(1, std::memory_order_relaxed);
      records_sent_.fetch_add(batch.size(), std::memory_order_relaxed);
    } catch (const std::exception& e) {
      link_errors_.fetch_add(1, std::memory_order_relaxed);
      IW_LOG(kWarn) << "replica link " << link->id
                    << " append failed: " << e.what();
    }

    lock.lock();
    if (sent) {
      link->failures = 0;
      link->down_since = {};
      // Stale records count as settled for sequencing — the promoted
      // replica will never accept them and the committer is told via the
      // fence instead of hanging on an ack that cannot come.
      link->acked = std::max(link->acked, last_seq);
      for (std::string& s : stale) {
        if (fenced_segments_.insert(std::move(s)).second) {
          stale_epoch_fences_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      reap_expired_locked();
      advance_quorum_frontier_locked();
      trim_locked();
      ack_cv_.notify_all();
    } else {
      // Failed send: drop the channel and redial after a jittered
      // exponential backoff (cut short by shutdown or a state flip). The
      // backlog stays in the retained log and replays in order once a
      // redial lands.
      link->channel.reset();
      channel.reset();
      ++link->failures;
      const auto now = steady_clock::now();
      if (link->down_since == steady_clock::time_point{}) {
        link->down_since = now;
      }
      if (!link->dead && options_.disconnect_grace_ms != 0 &&
          now - link->down_since >=
              std::chrono::milliseconds(options_.disconnect_grace_ms)) {
        declare_dead_locked(*link, "unreachable past disconnect grace");
        continue;  // park on the wait predicate until revived
      }
      const uint32_t shift = std::min<uint32_t>(link->failures - 1, 16);
      uint64_t cap = std::max<uint64_t>(options_.reconnect_backoff_ms, 1)
                     << shift;
      cap = std::min<uint64_t>(
          cap, std::max<uint32_t>(options_.reconnect_backoff_max_ms, 1));
      const uint64_t delay = cap / 2 + jitter.below(cap / 2 + 1);
      send_cv_.wait_for(lock, std::chrono::milliseconds(delay), [&] {
        return stop_ || link->dead || link->paused;
      });
      if (stop_) return;
    }
  }
}

bool WalReplicator::fenced(const std::string& segment) const {
  std::lock_guard lock(mu_);
  return fenced_segments_.count(segment) != 0;
}

void WalReplicator::unfence(const std::string& segment) {
  std::lock_guard lock(mu_);
  fenced_segments_.erase(segment);
}

void WalReplicator::shutdown() {
  std::vector<std::shared_ptr<ClientChannel>> channels;
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
    for (auto& link : links_) channels.push_back(link->channel);
    send_cv_.notify_all();
    ack_cv_.notify_all();
  }
  // Sever live channels so a worker blocked in call() fails promptly.
  for (auto& ch : channels) {
    if (ch != nullptr) ch->shutdown();
  }
  for (auto& link : links_) {
    if (link->worker.joinable()) link->worker.join();
  }
}

size_t WalReplicator::replica_count() const {
  std::lock_guard lock(mu_);
  return links_.size();
}

WalReplicator::Stats WalReplicator::stats() const {
  Stats s;
  s.records_enqueued = records_enqueued_.load(std::memory_order_relaxed);
  s.records_acked = records_acked_.load(std::memory_order_relaxed);
  s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  s.records_sent = records_sent_.load(std::memory_order_relaxed);
  s.link_reconnects = link_reconnects_.load(std::memory_order_relaxed);
  s.link_errors = link_errors_.load(std::memory_order_relaxed);
  s.stale_epoch_fences = stale_epoch_fences_.load(std::memory_order_relaxed);
  s.ack_timeouts = ack_timeouts_.load(std::memory_order_relaxed);
  s.backfills_started = backfills_started_.load(std::memory_order_relaxed);
  s.backfills_completed =
      backfills_completed_.load(std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  s.backlog_records = log_.size();
  uint32_t active = 0;
  for (const auto& link : links_) {
    LinkStats ls;
    ls.id = link->id;
    ls.acked_seq = link->acked;
    ls.replication_lag_records =
        next_seq_ - std::min(link->acked, next_seq_);
    ls.paused = link->paused;
    ls.dead = link->dead;
    if (link->dead) {
      ++s.dead_links;
    } else if (!link->paused) {
      ++active;
    }
    s.links.push_back(std::move(ls));
  }
  if (active < options_.replication_factor) {
    for (const auto& seg : segments_seen_) {
      if (fenced_segments_.count(seg) == 0) ++s.under_replicated_segments;
    }
  }
  return s;
}

}  // namespace iw::server
