#include "server/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/fsync.hpp"
#include "util/logging.hpp"
#include "wire/payload.hpp"

namespace iw::server {

namespace {

constexpr uint32_t kWalMagic = 0x4957414C;  // "IWAL"
constexpr uint32_t kWalFormat = 1;
constexpr size_t kHeaderBytes = WriteAheadLog::kHeaderSize;

}  // namespace

WriteAheadLog::Replay WriteAheadLog::replay(const std::string& path) {
  Replay out;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      out.missing = true;
      return out;
    }
    throw_errno("open(" + path + ")");
  }
  std::vector<uint8_t> bytes;
  {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("fstat(" + path + ")");
    }
    bytes.resize(static_cast<size_t>(st.st_size));
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::read(fd, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("read(" + path + ")");
      }
      if (n == 0) break;  // concurrent truncation; parse what we have
      off += static_cast<size_t>(n);
    }
    bytes.resize(off);
    ::close(fd);
  }

  if (bytes.size() < kHeaderBytes || load_be32(bytes.data()) != kWalMagic ||
      load_be32(bytes.data() + 4) != kWalFormat) {
    // Not a log we can trust at all; the caller starts fresh (valid_bytes 0
    // makes the reopen rewrite the header).
    out.torn_tail = !bytes.empty();
    out.truncated_bytes = bytes.size();
    out.valid_bytes = 0;
    return out;
  }

  // The record framing is the shared codec's; WAL-specific policy on top:
  // an unknown type or an undecompressable payload stops replay exactly
  // like a CRC failure, because record boundaries past a record we cannot
  // interpret are not trustworthy.
  RecordScanner scanner({bytes.data() + kHeaderBytes,
                         bytes.size() - kHeaderBytes}, kHeaderBytes);
  uint64_t accepted_end = kHeaderBytes;
  ScannedRecord sr;
  while (scanner.next(&sr) == RecordScanner::Status::kRecord) {
    const uint8_t type = sr.tag & ~kPayloadCompressedTagBit;
    if (type < static_cast<uint8_t>(WalRecordType::kSegmentCreate) ||
        type > static_cast<uint8_t>(WalRecordType::kEpochAdopt)) {
      break;  // unknown type: record boundaries beyond here are unsafe
    }
    Record rec;
    rec.type = static_cast<WalRecordType>(type);
    rec.compressed = (sr.tag & kPayloadCompressedTagBit) != 0;
    if (rec.compressed) {
      try {
        rec.payload = decompress_record_payload(sr.payload);
      } catch (const Error&) {
        break;  // corrupt envelope inside a CRC-clean frame: stop here
      }
    } else {
      rec.payload.assign(sr.payload.begin(), sr.payload.end());
    }
    rec.stored_bytes = sr.end_offset - accepted_end;
    rec.end_offset = sr.end_offset;
    accepted_end = sr.end_offset;
    out.records.push_back(std::move(rec));
  }
  out.valid_bytes = accepted_end;
  out.torn_tail = accepted_end < bytes.size();
  out.truncated_bytes = bytes.size() - accepted_end;
  return out;
}

WriteAheadLog::WriteAheadLog(std::string path, Options options,
                             uint64_t resume_at)
    : path_(std::move(path)), options_(options) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) throw_errno("open(" + path_ + ")");
  try {
    if (resume_at < kHeaderBytes) {
      // Fresh log (new segment, or prior content declared untrustworthy).
      if (::ftruncate(fd_, 0) != 0) throw_errno("ftruncate(" + path_ + ")");
      uint8_t header[kHeaderBytes];
      store_be32(header, kWalMagic);
      store_be32(header + 4, kWalFormat);
      write_all(header, sizeof header);
      // The header (and the file's very existence) must survive a crash
      // regardless of sync policy, or recovery of the first records has
      // nothing to anchor on. Once per segment lifetime: cheap.
      fdatasync_fd(fd_, path_);
      fsync_parent_dir(path_);
      if (options_.counters != nullptr) {
        options_.counters->fsyncs.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // Resume after replay: drop any torn tail so the next record lands
      // on a clean boundary.
      if (::ftruncate(fd_, static_cast<off_t>(resume_at)) != 0) {
        throw_errno("ftruncate(" + path_ + ")");
      }
      if (::lseek(fd_, 0, SEEK_END) < 0) throw_errno("lseek(" + path_ + ")");
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  last_flush_ = std::chrono::steady_clock::now();
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

void WriteAheadLog::write_all(const uint8_t* p, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd_, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write(" + path_ + ")");
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
}

void WriteAheadLog::fdatasync_now() {
  fdatasync_fd(fd_, path_);
  dirty_ = false;
  last_flush_ = std::chrono::steady_clock::now();
  if (options_.counters != nullptr) {
    options_.counters->fsyncs.fetch_add(1, std::memory_order_relaxed);
  }
}

void WriteAheadLog::append(WalRecordType type, std::span<const uint8_t> head,
                           std::span<const uint8_t> body, bool compressed) {
  const uint8_t tag = static_cast<uint8_t>(type) |
                      (compressed ? kPayloadCompressedTagBit : uint8_t{0});
  uint8_t prefix[kFramedPrefixBytes];
  build_record_prefix(tag, head, body, prefix);

  WalCrashPoint crash = options_.crash != nullptr
                            ? options_.crash->next_append()
                            : WalCrashPoint::kNone;
  if (crash == WalCrashPoint::kShortWrite) {
    // Die with only part of the record *header* on disk: replay must see
    // fewer bytes than a header and stop.
    write_all(prefix, kFramedHeaderBytes / 2);
    wal_crash_now();
  }
  if (crash == WalCrashPoint::kMidRecord) {
    // Header complete, payload cut short: the length field promises more
    // bytes than the file holds (and the CRC cannot match a prefix).
    write_all(prefix, sizeof prefix);
    write_all(head.data(), head.size());
    write_all(body.data(), body.size() / 2);
    wal_crash_now();
  }

  struct iovec iov[3];
  int iovcnt = 0;
  iov[iovcnt++] = {prefix, sizeof prefix};
  if (!head.empty()) {
    iov[iovcnt++] = {const_cast<uint8_t*>(head.data()), head.size()};
  }
  if (!body.empty()) {
    iov[iovcnt++] = {const_cast<uint8_t*>(body.data()), body.size()};
  }
  size_t total = sizeof prefix + head.size() + body.size();
  // writev keeps the common small-record case one syscall; fall back to
  // write_all per part only when the vectored write came up short.
  ssize_t w = ::writev(fd_, iov, iovcnt);
  if (w < 0 || static_cast<size_t>(w) != total) {
    if (w < 0 && errno != EINTR) throw_errno("writev(" + path_ + ")");
    size_t done = w < 0 ? 0 : static_cast<size_t>(w);
    for (int i = 0; i < iovcnt; ++i) {
      const auto* base = static_cast<const uint8_t*>(iov[i].iov_base);
      size_t len = iov[i].iov_len;
      size_t skip = std::min(done, len);
      done -= skip;
      write_all(base + skip, len - skip);
    }
  }
  dirty_ = true;
  if (options_.counters != nullptr) {
    options_.counters->records_appended.fetch_add(1,
                                                  std::memory_order_relaxed);
    options_.counters->bytes_appended.fetch_add(total,
                                                std::memory_order_relaxed);
  }

  if (crash == WalCrashPoint::kBeforeSync) wal_crash_now();

  switch (options_.sync) {
    case Sync::kNone:
      break;
    case Sync::kBatch: {
      auto now = std::chrono::steady_clock::now();
      if (now - last_flush_ >=
          std::chrono::milliseconds(options_.batch_interval_ms)) {
        fdatasync_now();
      }
      break;
    }
    case Sync::kCommit:
      fdatasync_now();
      break;
  }
}

void WriteAheadLog::sync() {
  if (dirty_) fdatasync_now();
}

void WriteAheadLog::truncate_after_checkpoint() {
  if (::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) != 0) {
    throw_errno("ftruncate(" + path_ + ")");
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) throw_errno("lseek(" + path_ + ")");
  dirty_ = false;
  fdatasync_fd(fd_, path_);
  if (options_.counters != nullptr) {
    options_.counters->fsyncs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace iw::server
