// SegmentServer: the transport-independent InterWeave server.
//
// One server manages an arbitrary number of segments (§3.2): it stores the
// master copy of each in wire format (SegmentStore), mediates exclusive
// writer locks, decides per-client whether a cached copy is "recent enough"
// under the client's coherence model, ships type definitions and diffs,
// pushes version notifications to subscribed clients, and periodically
// checkpoints segments to disk as partial protection against failure.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/transport.hpp"
#include "server/segment_store.hpp"
#include "wire/coherence.hpp"

namespace iw::server {

class SegmentServer : public ServerCore {
 public:
  struct Options {
    /// Directory for checkpoints; empty disables persistence.
    std::string checkpoint_dir;
    /// Checkpoint a segment every N versions (0 = only on demand).
    uint32_t checkpoint_every = 0;
    /// Store tuning (diff cache, prediction, subblock size).
    SegmentStore::Options store;
  };

  struct Stats {
    uint64_t requests = 0;
    uint64_t updates_sent = 0;
    uint64_t uptodate_responses = 0;
    uint64_t notifications_sent = 0;
    uint64_t checkpoints_written = 0;
  };

  SegmentServer();
  explicit SegmentServer(Options options);
  ~SegmentServer() override;

  // --- ServerCore ---
  void on_connect(SessionId session, Notifier notify) override;
  void on_disconnect(SessionId session) override;
  Frame handle(SessionId session, const Frame& request) override;

  // --- administration ---
  /// Writes every segment to the checkpoint directory (atomic per segment).
  void checkpoint();
  /// Loads all segments found in the checkpoint directory. Call before
  /// serving; existing in-memory segments with the same name are replaced.
  void recover();

  Stats stats() const;
  /// Store-level stats for one segment (throws kNotFound).
  StoreStats segment_stats(const std::string& name) const;
  /// Current version of a segment (throws kNotFound).
  uint32_t segment_version(const std::string& name) const;

 private:
  struct SegmentSession {
    uint32_t types_sent = 0;           // prefix of type serials known
    uint64_t modified_since_update = 0;  // for Diff coherence
    bool subscribed = false;
  };
  struct Session {
    Notifier notify;
    std::unordered_map<std::string, SegmentSession> segments;
  };
  struct SegmentEntry {
    std::unique_ptr<SegmentStore> store;
    SessionId writer = 0;  // 0 = unlocked
    uint32_t versions_since_checkpoint = 0;
  };
  struct PendingNotify {
    Notifier notify;
    Frame frame;
  };

  Frame dispatch(SessionId session, const Frame& request,
                 std::vector<PendingNotify>* notifies,
                 std::unique_lock<std::mutex>& lock);
  SegmentEntry& segment(const std::string& name, bool create);
  Session& session_ref(SessionId id);
  /// Appends status/type-table/diff to `payload` for a client at
  /// `client_version` under `policy`; returns true when an update was sent.
  bool append_update(SegmentEntry& entry, SegmentSession& ss,
                     uint32_t client_version, CoherencePolicy policy,
                     Buffer& payload);
  bool is_stale(SegmentEntry& entry, const SegmentSession& ss,
                uint32_t client_version, CoherencePolicy policy) const;
  void checkpoint_segment_locked(SegmentEntry& entry);

  mutable std::mutex mu_;
  std::condition_variable writer_cv_;
  Options options_;
  std::unordered_map<std::string, SegmentEntry> segments_;
  std::unordered_map<SessionId, Session> sessions_;
  Stats stats_;
};

}  // namespace iw::server
